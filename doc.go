// Package kronlab is a reproduction of "Distributed Kronecker Graph
// Generation with Ground Truth of Many Graph Properties" (Steil, Priest,
// Sanders, Pearce, La Fond, Iwabuchi — IEEE IPDPS Workshops 2019).
//
// The library generates nonstochastic Kronecker product graphs C = A ⊗ B
// (and the full-self-loop variant C = (A+I) ⊗ (B+I)) from two small factor
// graphs, serially or on a simulated distributed cluster, and computes
// ground-truth values for many graph analytics on C directly from the
// factors: degrees, vertex/edge/global triangle counts, clustering
// coefficients, hop distances, diameter, vertex eccentricity, closeness
// centrality, and internal/external community edge counts and densities.
//
// Package layout:
//
//	internal/graph       CSR graph substrate, edge lists, file I/O
//	internal/matrix      dense matrix oracle (⊗, ∘, matmul, diag)
//	internal/core        Kronecker index maps and product generation
//	internal/analytics   exact analytics used as oracles and on factors
//	internal/groundtruth every Kronecker ground-truth formula in the paper
//	internal/gen         factor-graph generators (RMAT, SBM, ER, cliques, …)
//	internal/rejection   hash-based probabilistic edge rejection (Def. 8)
//	internal/dist        simulated distributed cluster + 1D/2D generators
//	internal/havoq       asynchronous visitor engine (distributed BFS,
//	                     eccentricity, triangle counting)
//
// The runnable surface is cmd/krongen, cmd/groundtruth, cmd/experiments and
// the programs under examples/.
package kronlab
