# kronlab build / test / bench entry points. Everything is plain go tool
# invocations; the Makefile just names the common ones.

GO ?= go

.PHONY: all build test race vet fmt-check bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Runs every Benchmark* suite with -benchmem and writes the go test -json
# event stream to BENCH_<date>.json. BENCHTIME=10x make bench for a quick
# pass.
bench:
	sh scripts/bench.sh

clean:
	$(GO) clean ./...
