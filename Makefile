# kronlab build / test / bench entry points. Everything is plain go tool
# invocations; the Makefile just names the common ones.

GO ?= go

.PHONY: all build test race vet fmt-check bench bench-multicore benchcmp allocguard clean recovery-soak head-soak fuzz-smoke lint cluster-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Supervised-recovery soak: the crash-then-recover, reassignment and
# epoch-fencing suites under the race detector, mirroring the CI job.
recovery-soak:
	$(GO) test -race -count 1 -timeout 6m -run 'Recover|Respawn|Epoch' ./internal/dist/

# Head-death soak: the multi-process head kill+respawn suite, the run
# ledger, and the partition/heartbeat failure-detection tests, repeated
# under the race detector. The -timeout is a hard stop — a respawned
# head that never converges or a worker that parks forever must fail the
# run, not hang it.
head-soak:
	$(GO) test -race -count 5 -timeout 8m \
		-run 'ClusterHeadKill|Ledger|Partition|Heartbeat|FailureDetection' ./internal/dist/...

# Short fuzzing pass: every Fuzz* harness for a few seconds each, so the
# corpora stay loadable and cheap wins (a ledger replay panic on
# arbitrary bytes, a frame decode crash) surface without a fuzz farm.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadEdgeList -fuzztime 5s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzBinaryRoundTrip -fuzztime 5s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzChainIndex -fuzztime 5s ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzDecodeBatch -fuzztime 5s ./internal/dist/transport/wire/
	$(GO) test -run '^$$' -fuzz FuzzLedgerReplay -fuzztime 5s ./internal/dist/ledger/

# Lint the concurrency-heavy dist package. staticcheck is optional
# locally (CI installs a pinned version); vet always runs.
lint:
	$(GO) vet ./internal/dist/
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./internal/dist/; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Multi-process cluster smoke: a 4-process krongen TCP cluster on
# localhost against a single-process reference run, failing unless the
# two stores hold the identical edge set. Mirrors the CI job.
cluster-smoke:
	sh scripts/cluster_local.sh

# Runs every Benchmark* suite with -benchmem and writes the go test -json
# event stream to BENCH_<date>.json. BENCHTIME=10x make bench for a quick
# pass.
bench:
	sh scripts/bench.sh

# Multicore throughput sweep (the repo's headline edges/sec metric):
# BenchmarkThroughputSweep over R ranks × GOMAXPROCS, captured as
# BENCH_<date>_multicore.json. Diff snapshots with
# `sh scripts/benchcmp.sh -multicore`.
bench-multicore:
	BENCH=ThroughputSweep OUT=BENCH_$$(date +%Y-%m-%d)_multicore.json \
		sh scripts/bench.sh .

# Compares the two newest BENCH_*.json snapshots (or any two passed as
# OLD=/NEW=) benchmark by benchmark — benchstat when installed, an awk
# delta table otherwise.
benchcmp:
	sh scripts/benchcmp.sh $(OLD) $(NEW)

# Allocation regression guard on the end-to-end generation benchmark:
# fails when allocs/op exceeds the committed snapshot by more than 20%.
# Mirrors the CI step.
allocguard:
	sh scripts/allocguard.sh

clean:
	$(GO) clean ./...
