#!/bin/sh
# Run the repo's benchmark suites with -benchmem and capture the raw
# `go test -json` event stream as BENCH_<date>.json in the repo root.
#
# Usage:
#   scripts/bench.sh                 # all benchmark packages, full runs
#   BENCHTIME=10x scripts/bench.sh   # shorter runs (passed to -benchtime)
#   OUT=BENCH_foo.json scripts/bench.sh  # override the output file name
#   BENCH=ThroughputSweep scripts/bench.sh  # only matching benchmarks
#   scripts/bench.sh ./internal/dist # only the named packages
#
# The multicore throughput sweep snapshot (committed as
# BENCH_<date>_multicore.json, diffed by scripts/benchcmp.sh -multicore):
#   BENCH=ThroughputSweep OUT=BENCH_$(date +%Y-%m-%d)_multicore.json scripts/bench.sh .
#
# The output file is the unfiltered JSON event stream; extract the
# benchmark lines with e.g.
#   jq -r 'select(.Action=="output") | .Output' BENCH_2026-08-05.json \
#     | grep '^Benchmark'
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

if [ "$#" -gt 0 ]; then
    PKGS="$*"
else
    # Packages that define Benchmark* functions.
    PKGS=$(grep -rln 'func Benchmark' --include='*_test.go' . |
        xargs -n1 dirname | sort -u)
fi

echo "benchmarking: $PKGS" >&2
echo "writing $OUT" >&2

# -run '^$' skips unit tests so only benchmarks execute.
# shellcheck disable=SC2086
go test -json -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" $PKGS >"$OUT"

grep -o '"Output":"Benchmark[^"]*' "$OUT" | sed 's/"Output":"//; s/\\n$//; s/\\t/\t/g' >&2
echo "done: $OUT" >&2
