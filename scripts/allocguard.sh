#!/bin/sh
# Allocation regression guard for the end-to-end generation benchmarks
# (two-factor and chain) and the TCP transport exchange benchmark.
#
# Runs BenchmarkE2Generate1D, BenchmarkE2GenerateChain,
# BenchmarkThroughputSweep and BenchmarkTCPExchangeThroughput with
# -benchmem and compares allocs/op per sub-benchmark against the newest
# committed BENCH_*.json snapshot (chain rows come from the newest
# BENCH_*_chain.json, multicore sweep rows from the newest
# BENCH_*_multicore.json — either may be an older file than the overall
# newest snapshot). Fails when any sub-benchmark allocates more than
# ALLOW× the snapshot figure (default 1.2 — a 20% regression budget;
# allocs/op is deterministic enough that this never flakes while still
# catching a reintroduced per-batch allocation, in the engine, the tail
# fold, or on the wire path).
#
# Record guard baselines with the same short regime the guard measures
# under (BENCHTIME=10x scripts/bench.sh . ./internal/dist): cold-start
# allocations amortize differently at long benchtimes, so a 1s snapshot
# under-reports a 10x measurement by a few allocs/op on the small rows.
#
# Usage:
#   scripts/allocguard.sh                 # guard against newest BENCH_*.json
#   SNAPSHOT=BENCH_foo.json scripts/allocguard.sh
#   ALLOW=1.5 scripts/allocguard.sh
set -eu

cd "$(dirname "$0")/.."

SNAPSHOT="${SNAPSHOT:-$(ls -1 BENCH_*.json 2>/dev/null | tail -1)}"
CHAIN_SNAPSHOT="${CHAIN_SNAPSHOT:-$(ls -1 BENCH_*_chain.json 2>/dev/null | tail -1)}"
MULTICORE_SNAPSHOT="${MULTICORE_SNAPSHOT:-$(ls -1 BENCH_*_multicore.json 2>/dev/null | tail -1)}"
ALLOW="${ALLOW:-1.2}"
if [ -z "$SNAPSHOT" ] || [ ! -f "$SNAPSHOT" ]; then
    echo "allocguard: no BENCH_*.json snapshot found" >&2
    exit 2
fi

echo "allocguard: baseline $SNAPSHOT${CHAIN_SNAPSHOT:+ + $CHAIN_SNAPSHOT}${MULTICORE_SNAPSHOT:+ + $MULTICORE_SNAPSHOT}, budget ${ALLOW}x" >&2

# Reassemble a JSON event stream into plain bench output: a benchmark's
# name and its numbers usually arrive as separate events.
extract() {
    grep -o '"Output":"[^"]*' "$1" | sed 's/"Output":"//' | tr -d '\n' |
        sed 's/\\n/\n/g; s/\\t/\t/g' |
        grep 'allocs/op' || true
}

baseline() {
    extract "$SNAPSHOT" |
        grep -e '^BenchmarkE2Generate1D' -e '^BenchmarkTCPExchangeThroughput' || true
    if [ -n "$CHAIN_SNAPSHOT" ] && [ -f "$CHAIN_SNAPSHOT" ]; then
        extract "$CHAIN_SNAPSHOT" | grep '^BenchmarkE2GenerateChain' || true
    fi
    if [ -n "$MULTICORE_SNAPSHOT" ] && [ -f "$MULTICORE_SNAPSHOT" ]; then
        extract "$MULTICORE_SNAPSHOT" | grep '^BenchmarkThroughputSweep' || true
    fi
}

CUR=$(mktemp) && BASE=$(mktemp)
trap 'rm -f "$CUR" "$BASE"' EXIT
baseline >"$BASE"
if ! grep -q '^BenchmarkE2Generate1D' "$BASE"; then
    echo "allocguard: $SNAPSHOT has no BenchmarkE2Generate1D results" >&2
    exit 2
fi

# benchtime 10x keeps the guard fast; allocs/op does not depend on the
# iteration count once pools are warm. The TCP, chain and multicore
# guards only bite when a snapshot contains comparable rows (older
# snapshots have none, and a sweep row for a GOMAXPROCS the other
# machine lacks has no counterpart; the join below skips them).
go test -run '^$' -bench 'BenchmarkE2Generate1D|BenchmarkE2GenerateChain|BenchmarkThroughputSweep' -benchmem -benchtime 10x . >"$CUR"
go test -run '^$' -bench 'BenchmarkTCPExchangeThroughput' -benchmem -benchtime 10x ./internal/dist/ >>"$CUR"

awk -v allow="$ALLOW" '
{
    name = $1
    for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") a[FILENAME, name] = $(i - 1)
    if (FILENAME == ARGV[1] && !(name in seen)) { order[++n_] = name; seen[name] = 1 }
}
END {
    bad = 0
    for (i = 1; i <= n_; i++) {
        name = order[i]
        o = a[ARGV[1], name]; n = a[ARGV[2], name]
        if (o == "" || n == "") continue
        status = "ok"
        if (n > o * allow) { status = "FAIL"; bad = 1 }
        printf "%-40s snapshot %6d  current %6d  budget %6.0f  %s\n", name, o, n, o * allow, status
    }
    if (n_ == 0) { print "allocguard: no comparable benchmarks" > "/dev/stderr"; exit 2 }
    exit bad
}' "$BASE" "$CUR"
