#!/bin/sh
# Compare two BENCH_<date>.json snapshots (the go test -json event
# streams scripts/bench.sh writes) benchmark by benchmark.
#
# Usage:
#   scripts/benchcmp.sh OLD.json NEW.json
#   scripts/benchcmp.sh -multicore   # two newest BENCH_*_multicore.json
#   make benchcmp                # compares the two newest BENCH_*.json
#
# Uses benchstat when it is on PATH (proper statistics across -count
# repetitions); otherwise falls back to an awk delta table of ns/op,
# edges/s (when reported, as the throughput sweep does) and allocs/op
# per benchmark, flagging changes beyond ±5%.
set -eu

if [ "$#" -eq 1 ] && [ "$1" = "-multicore" ]; then
    # The two newest multicore throughput-sweep snapshots, oldest first:
    # the edges/sec diff across BENCH_*_multicore.json generations.
    cd "$(dirname "$0")/.."
    set -- $(ls -1 BENCH_*_multicore.json 2>/dev/null | tail -2)
    if [ "$#" -ne 2 ]; then
        echo "usage: scripts/benchcmp.sh -multicore needs ≥2 BENCH_*_multicore.json snapshots" >&2
        exit 2
    fi
    echo "comparing $1 → $2" >&2
elif [ "$#" -ne 2 ]; then
    # Default: the two newest snapshots in the repo root, oldest first.
    cd "$(dirname "$0")/.."
    set -- $(ls -1 BENCH_*.json 2>/dev/null | tail -2)
    if [ "$#" -ne 2 ]; then
        echo "usage: scripts/benchcmp.sh OLD.json NEW.json (or keep ≥2 BENCH_*.json around)" >&2
        exit 2
    fi
    echo "comparing $1 → $2" >&2
fi

OLD="$1"
NEW="$2"

# Re-extract plain `go test -bench` text from the JSON event stream: the
# format benchstat (and the awk fallback) parses. Output events split
# lines arbitrarily (a benchmark's name and its numbers usually arrive
# as separate events), so the stream is reassembled before filtering.
extract() {
    grep -o '"Output":"[^"]*' "$1" | sed 's/"Output":"//' | tr -d '\n' |
        sed 's/\\n/\n/g; s/\\t/\t/g' |
        grep 'ns/op' | grep '^Benchmark' || true
}

TMP_OLD=$(mktemp) && TMP_NEW=$(mktemp)
trap 'rm -f "$TMP_OLD" "$TMP_NEW"' EXIT
extract "$OLD" >"$TMP_OLD"
extract "$NEW" >"$TMP_NEW"

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$TMP_OLD" "$TMP_NEW"
    exit 0
fi

# Fallback: join on benchmark name, print old/new ns/op, edges/s (when a
# benchmark reports the rate metric, as the throughput sweep does) and
# allocs/op with percentage deltas. Only benchmarks present in both
# files appear. For edges/s higher is better, so the regression flag is
# inverted relative to ns/op.
awk '
function pct(o, n) { return o > 0 ? sprintf("%+.1f%%", (n - o) * 100 / o) : "n/a" }
function flag(o, n) { return (o > 0 && (n - o) / o > 0.05) ? " !" : ((o > 0 && (o - n) / o > 0.05) ? " *" : "") }
function rflag(o, n) { return (o > 0 && (o - n) / o > 0.05) ? " !" : ((o > 0 && (n - o) / o > 0.05) ? " *" : "") }
{
    name = $1
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns[FILENAME, name] = $(i - 1)
        if ($(i) == "edges/s") es[FILENAME, name] = $(i - 1)
        if ($(i) == "allocs/op") al[FILENAME, name] = $(i - 1)
    }
    if (FILENAME == ARGV[1]) { if (!(name in seen)) order[++n_] = name; seen[name] = 1 }
}
END {
    printf "%-50s %14s %14s %9s %13s %13s %9s %10s %10s %9s\n",
        "benchmark", "old ns/op", "new ns/op", "delta",
        "old edges/s", "new edges/s", "delta", "old allocs", "new allocs", "delta"
    for (i = 1; i <= n_; i++) {
        name = order[i]
        o = ns[ARGV[1], name]; n = ns[ARGV[2], name]
        if (o == "" || n == "") continue
        oe = es[ARGV[1], name]; ne = es[ARGV[2], name]
        oa = al[ARGV[1], name]; na = al[ARGV[2], name]
        if (oe != "" && ne != "")
            efield = sprintf("%13.4g %13.4g %8s%s", oe, ne, pct(oe, ne), rflag(oe, ne))
        else
            efield = sprintf("%13s %13s %9s", "-", "-", "-")
        printf "%-50s %14.0f %14.0f %8s%s %s %10d %10d %8s%s\n",
            name, o, n, pct(o, n), flag(o, n), efield, oa, na, pct(oa, na), flag(oa, na)
    }
    print ""
    print "(! = >5% regression, * = >5% improvement; install benchstat for proper statistics)"
}' "$TMP_OLD" "$TMP_NEW"
