#!/bin/sh
# Cluster-mode smoke test: generate the same Kronecker product twice —
# once as a real 4-process TCP cluster on localhost, once in a single
# process — and fail unless the two stores hold the identical edge set.
# A second phase repeats the check for a k=3 power chain (A^{⊗3}) so the
# chain plan wire format and lazy tail fold get the same treatment.
#
# Usage:
#   scripts/cluster_local.sh             # 4 procs, 6 ranks, 1d, bundled factors
#   PROCS=3 RANKS=5 MODE=2d scripts/cluster_local.sh
#   A=mya.txt B=myb.txt scripts/cluster_local.sh
#
# Worker processes are started in the background; the head (process 0)
# runs in the foreground and supervises them, so the script's exit code
# is the cluster run's verdict. Everything lives under a temp directory
# that is removed on exit, workers included.
set -eu

cd "$(dirname "$0")/.."

PROCS="${PROCS:-4}"
RANKS="${RANKS:-6}"
MODE="${MODE:-1d}"
BASE_PORT="${BASE_PORT:-19750}"

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# Factor graphs: bundled defaults are non-regular and non-symmetric in
# size, so rank ownership, routing and the uneven rank/proc split all get
# exercised.
A="${A:-$WORK/A.txt}"
B="${B:-$WORK/B.txt}"
if [ ! -f "$A" ]; then
    printf '0 1\n1 2\n2 3\n3 0\n0 2\n4 0\n4 2\n' >"$A"
fi
if [ ! -f "$B" ]; then
    printf '0 1\n1 2\n2 0\n3 1\n' >"$B"
fi

echo "cluster_local: building krongen" >&2
go build -o "$WORK/krongen" ./cmd/krongen

PEERS=""
i=0
while [ "$i" -lt "$PROCS" ]; do
    PEERS="$PEERS${PEERS:+,}127.0.0.1:$((BASE_PORT + i))"
    i=$((i + 1))
done

echo "cluster_local: $PROCS procs, $RANKS ranks, mode $MODE, peers $PEERS" >&2

# Workers (procs 1..N-1) in the background, head in the foreground.
i=1
while [ "$i" -lt "$PROCS" ]; do
    "$WORK/krongen" -a "$A" -b "$B" -mode "$MODE" -ranks "$RANKS" \
        -store "$WORK/st-cluster" -cluster-peers "$PEERS" -cluster-self "$i" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done
"$WORK/krongen" -a "$A" -b "$B" -mode "$MODE" -ranks "$RANKS" \
    -store "$WORK/st-cluster" -cluster-peers "$PEERS" -cluster-self 0 -stats

for pid in $PIDS; do
    wait "$pid" || { echo "cluster_local: worker pid $pid failed" >&2; exit 1; }
done
PIDS=""

echo "cluster_local: single-process reference run" >&2
"$WORK/krongen" -a "$A" -b "$B" -mode "$MODE" -ranks "$RANKS" -store "$WORK/st-single"

# Shard bytes may legitimately differ (edge arrival order over TCP is
# nondeterministic); the contract is the edge *set*, so compare the
# canonical sorted edge lists.
"$WORK/krongen" -dump-store "$WORK/st-cluster" | sort >"$WORK/cluster.txt"
"$WORK/krongen" -dump-store "$WORK/st-single" | sort >"$WORK/single.txt"
if ! diff -u "$WORK/single.txt" "$WORK/cluster.txt" >&2; then
    echo "cluster_local: FAIL — cluster store differs from single-process store" >&2
    exit 1
fi
EDGES=$(wc -l <"$WORK/cluster.txt" | tr -d ' ')
echo "cluster_local: OK — $EDGES edges identical across both stores" >&2

# Phase 2: a k=3 factor chain (A^{⊗3} via -power) across the same
# 4-process TCP cluster, against a single-process serial reference. This
# exercises the chain plan/tile wire format and the lazy tail fold end
# to end — the k>2 path shares no shortcuts with the two-factor phase.
CHAIN_PORT=$((BASE_PORT + PROCS))
CPEERS=""
i=0
while [ "$i" -lt "$PROCS" ]; do
    CPEERS="$CPEERS${CPEERS:+,}127.0.0.1:$((CHAIN_PORT + i))"
    i=$((i + 1))
done

echo "cluster_local: phase 2 — k=3 power chain, $PROCS procs, peers $CPEERS" >&2
i=1
while [ "$i" -lt "$PROCS" ]; do
    "$WORK/krongen" -a "$A" -power 3 -mode "$MODE" -ranks "$RANKS" \
        -store "$WORK/st-chain-cluster" -cluster-peers "$CPEERS" -cluster-self "$i" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done
"$WORK/krongen" -a "$A" -power 3 -mode "$MODE" -ranks "$RANKS" \
    -store "$WORK/st-chain-cluster" -cluster-peers "$CPEERS" -cluster-self 0 -stats

for pid in $PIDS; do
    wait "$pid" || { echo "cluster_local: chain worker pid $pid failed" >&2; exit 1; }
done
PIDS=""

echo "cluster_local: k=3 single-process serial reference" >&2
"$WORK/krongen" -a "$A" -power 3 -mode serial -store "$WORK/st-chain-single"

"$WORK/krongen" -dump-store "$WORK/st-chain-cluster" | sort >"$WORK/chain-cluster.txt"
"$WORK/krongen" -dump-store "$WORK/st-chain-single" | sort >"$WORK/chain-single.txt"
if ! diff -u "$WORK/chain-single.txt" "$WORK/chain-cluster.txt" >&2; then
    echo "cluster_local: FAIL — k=3 chain cluster store differs from serial store" >&2
    exit 1
fi
CEDGES=$(wc -l <"$WORK/chain-cluster.txt" | tr -d ' ')
echo "cluster_local: OK — $CEDGES k=3 chain edges identical across both stores" >&2
