#!/bin/sh
# Cluster-mode smoke test: generate the same Kronecker product twice —
# once as a real 4-process TCP cluster on localhost, once in a single
# process — and fail unless the two stores hold the identical edge set.
#
# Usage:
#   scripts/cluster_local.sh             # 4 procs, 6 ranks, 1d, bundled factors
#   PROCS=3 RANKS=5 MODE=2d scripts/cluster_local.sh
#   A=mya.txt B=myb.txt scripts/cluster_local.sh
#
# Worker processes are started in the background; the head (process 0)
# runs in the foreground and supervises them, so the script's exit code
# is the cluster run's verdict. Everything lives under a temp directory
# that is removed on exit, workers included.
set -eu

cd "$(dirname "$0")/.."

PROCS="${PROCS:-4}"
RANKS="${RANKS:-6}"
MODE="${MODE:-1d}"
BASE_PORT="${BASE_PORT:-19750}"

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# Factor graphs: bundled defaults are non-regular and non-symmetric in
# size, so rank ownership, routing and the uneven rank/proc split all get
# exercised.
A="${A:-$WORK/A.txt}"
B="${B:-$WORK/B.txt}"
if [ ! -f "$A" ]; then
    printf '0 1\n1 2\n2 3\n3 0\n0 2\n4 0\n4 2\n' >"$A"
fi
if [ ! -f "$B" ]; then
    printf '0 1\n1 2\n2 0\n3 1\n' >"$B"
fi

echo "cluster_local: building krongen" >&2
go build -o "$WORK/krongen" ./cmd/krongen

PEERS=""
i=0
while [ "$i" -lt "$PROCS" ]; do
    PEERS="$PEERS${PEERS:+,}127.0.0.1:$((BASE_PORT + i))"
    i=$((i + 1))
done

echo "cluster_local: $PROCS procs, $RANKS ranks, mode $MODE, peers $PEERS" >&2

# Workers (procs 1..N-1) in the background, head in the foreground.
i=1
while [ "$i" -lt "$PROCS" ]; do
    "$WORK/krongen" -a "$A" -b "$B" -mode "$MODE" -ranks "$RANKS" \
        -store "$WORK/st-cluster" -cluster-peers "$PEERS" -cluster-self "$i" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done
"$WORK/krongen" -a "$A" -b "$B" -mode "$MODE" -ranks "$RANKS" \
    -store "$WORK/st-cluster" -cluster-peers "$PEERS" -cluster-self 0 -stats

for pid in $PIDS; do
    wait "$pid" || { echo "cluster_local: worker pid $pid failed" >&2; exit 1; }
done
PIDS=""

echo "cluster_local: single-process reference run" >&2
"$WORK/krongen" -a "$A" -b "$B" -mode "$MODE" -ranks "$RANKS" -store "$WORK/st-single"

# Shard bytes may legitimately differ (edge arrival order over TCP is
# nondeterministic); the contract is the edge *set*, so compare the
# canonical sorted edge lists.
"$WORK/krongen" -dump-store "$WORK/st-cluster" | sort >"$WORK/cluster.txt"
"$WORK/krongen" -dump-store "$WORK/st-single" | sort >"$WORK/single.txt"
if ! diff -u "$WORK/single.txt" "$WORK/cluster.txt" >&2; then
    echo "cluster_local: FAIL — cluster store differs from single-process store" >&2
    exit 1
fi
EDGES=$(wc -l <"$WORK/cluster.txt" | tr -d ' ')
echo "cluster_local: OK — $EDGES edges identical across both stores" >&2
