// Cross-module integration tests: full pipelines from factor files
// through distributed generation, the asynchronous engine, and
// ground-truth validation — plus exec tests of the actual CLI binaries.
package kronlab_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
	"kronlab/internal/havoq"
	"kronlab/internal/rejection"
	"kronlab/internal/store"
)

// TestFilePipeline walks the krongen user journey in-process: write factor
// edge lists, load them, generate distributedly, write C, reload C, and
// validate ground truth on the reloaded graph.
func TestFilePipeline(t *testing.T) {
	dir := t.TempDir()
	a := gen.PrefAttach(20, 2, 1)
	b := gen.ER(15, 0.3, 2)
	aPath := filepath.Join(dir, "a.txt")
	bPath := filepath.Join(dir, "b.txt")
	if err := a.SaveEdgeList(aPath); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveEdgeList(bPath); err != nil {
		t.Fatal(err)
	}
	aLoaded, err := graph.LoadUndirected(aPath)
	if err != nil {
		t.Fatal(err)
	}
	bLoaded, err := graph.LoadUndirected(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if !aLoaded.Equal(a) || !bLoaded.Equal(b) {
		t.Fatal("file round trip lost structure")
	}

	res, err := dist.Generate2D(aLoaded, bLoaded, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	cPath := filepath.Join(dir, "c.bin")
	f, err := os.Create(cPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(cPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	cLoaded, err := graph.ReadBinary(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !cLoaded.Equal(c) {
		t.Fatal("binary round trip lost structure")
	}

	fa, fb := groundtruth.NewFactor(a), groundtruth.NewFactor(b)
	if got, want := analytics.GlobalTriangles(cLoaded), groundtruth.GlobalTriangles(fa, fb); got != want {
		t.Fatalf("triangles on reloaded product: %d, ground truth %d", got, want)
	}
}

// TestFullStackEccentricity is the complete Fig. 1 pipeline: generate
// distributedly, re-home into the async engine, compute exact distributed
// eccentricities, and compare with Cor. 4 and with the landmark
// approximation's fidelity.
func TestFullStackEccentricity(t *testing.T) {
	a, _ := gen.PrefAttach(30, 2, 3).LargestComponent()
	al := a.WithFullSelfLoops()
	fa := groundtruth.NewFactor(al)
	fa.EnsureDistances()

	res, err := dist.Generate1D(al, al, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := havoq.BuildFromParts(res.NC, 3, res.PerRank)
	if err != nil {
		t.Fatal(err)
	}
	eccRes, err := dg.ExactEccentricities()
	if err != nil {
		t.Fatal(err)
	}
	pred := groundtruth.Eccentricities(fa, fa)
	for p := range pred {
		if pred[p] != eccRes.Ecc[p] {
			t.Fatalf("Cor.4 mismatch at %d: %d vs %d", p, pred[p], eccRes.Ecc[p])
		}
	}
	// Landmark approximation fidelity on the materialized product
	// (the Fig. 1 caption study).
	c, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	est, _ := analytics.ApproxEccentricities(c, 8)
	fracExact, fracOff1 := analytics.EccentricityFidelity(est, eccRes.Ecc)
	if fracExact+fracOff1 < 0.95 {
		t.Fatalf("landmark estimates poor: exact %.2f, off-by-one %.2f", fracExact, fracOff1)
	}
}

// TestRejectionOnDistributedProduct thins a distributed product and
// checks the joint-family property end to end.
func TestRejectionOnDistributedProduct(t *testing.T) {
	a := gen.ER(12, 0.4, 5)
	res, err := dist.Generate1D(a, a, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	h := rejection.NewHasher(9)
	fam := rejection.Family(c, h, []float64{1, 0.9})
	if !fam[0].Equal(c) {
		t.Error("ν=1 must be the full product")
	}
	if fam[1].NumEdges() >= c.NumEdges() {
		t.Error("ν=0.9 should drop edges")
	}
	if !fam[1].IsSymmetric() {
		t.Error("thinned product must remain undirected")
	}
}

// buildTool compiles a cmd/ binary once into a temp dir.
func buildTool(t *testing.T, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestKrongenCLI runs the real krongen binary over temp files and checks
// the generated product against the serial library result.
func TestKrongenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "kronlab/cmd/krongen", "krongen")
	dir := t.TempDir()
	a := gen.Ring(6)
	b := gen.Path(5)
	aPath := filepath.Join(dir, "a.txt")
	bPath := filepath.Join(dir, "b.txt")
	outPath := filepath.Join(dir, "c.txt")
	if err := a.SaveEdgeList(aPath); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveEdgeList(bPath); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-a", aPath, "-b", bPath, "-out", outPath, "-mode", "1d", "-ranks", "3", "-stats")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("krongen: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "edges/s") {
		t.Errorf("missing stats output: %q", stderr.String())
	}
	got, err := graph.LoadUndirected(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Text edge lists drop trailing isolated vertices; compare edges.
	wantEdges := want.EdgeList()
	gotEdges := got.EdgeList()
	if len(wantEdges) != len(gotEdges) {
		t.Fatalf("edge counts differ: %d vs %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}

	// Distributed generate-route-store: -mode 2d streams to one shard per
	// rank through the engine's store sink.
	storeDir := filepath.Join(dir, "cstore")
	cmd = exec.Command(bin, "-a", aPath, "-b", bPath, "-mode", "2d", "-ranks", "4", "-store", storeDir, "-stats")
	stderr.Reset()
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("krongen -store -mode 2d: %v\n%s", err, stderr.String())
	}
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 4 || st.TotalEdges() != want.NumArcs() {
		t.Fatalf("store has %d shards, %d arcs; want 4 shards, %d arcs",
			st.Shards(), st.TotalEdges(), want.NumArcs())
	}
	onDisk, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !onDisk.Equal(want) {
		t.Fatal("2D store stream differs from serial product")
	}
}

// TestGroundtruthCLI runs the groundtruth binary and sanity-checks its
// report.
func TestGroundtruthCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "kronlab/cmd/groundtruth", "groundtruth")
	dir := t.TempDir()
	a := gen.Clique(4)
	aPath := filepath.Join(dir, "a.txt")
	if err := a.SaveEdgeList(aPath); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-a", aPath, "-b", aPath).CombinedOutput()
	if err != nil {
		t.Fatalf("groundtruth: %v\n%s", err, out)
	}
	// τ(K4) = 4 → τ_C = 6·4·4 = 96.
	if !strings.Contains(string(out), "96") {
		t.Errorf("expected τ_C = 96 in output:\n%s", out)
	}
}

// TestExperimentsCLIList checks the registry wiring.
func TestExperimentsCLIList(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "kronlab/cmd/experiments", "experiments")
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -list: %v\n%s", err, out)
	}
	for _, id := range []string{"scaling-laws", "generator", "weak-scaling", "triangles",
		"clustering", "eccentricity", "closeness", "diameter", "community",
		"cliques", "rejection", "spectral", "extensions"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("experiment %q missing from -list", id)
		}
	}
	// And one cheap experiment end to end.
	out, err = exec.Command(bin, "-exp", "cliques").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -exp cliques: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "FAIL") {
		t.Errorf("cliques experiment reported FAIL:\n%s", out)
	}
}

// TestDecorateCLI checks the feature-decoration tool against library
// ground truth.
func TestDecorateCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "kronlab/cmd/decorate", "decorate")
	dir := t.TempDir()
	a := gen.Clique(3) // triangle
	b := gen.Path(3)
	aPath := filepath.Join(dir, "a.txt")
	bPath := filepath.Join(dir, "b.txt")
	if err := a.SaveEdgeList(aPath); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveEdgeList(bPath); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-a", aPath, "-b", bPath, "-count", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("decorate: %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header + 3 rows, got %d lines:\n%s", len(lines), out)
	}
	// Row for vertex 0 of (K3+I)⊗(P3+I): degree 6, 10 triangles (checked
	// against Cor. 1 by hand and by the groundtruth tests).
	if !strings.HasPrefix(lines[1], "0,0,0,6,10,") {
		t.Errorf("vertex 0 row = %q", lines[1])
	}
	// Looped factors must be rejected.
	loopy := filepath.Join(dir, "loopy.txt")
	if err := a.WithFullSelfLoops().SaveEdgeList(loopy); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, "-a", loopy, "-b", bPath).Run(); err == nil {
		t.Error("decorate should reject looped factors")
	}
}

// TestKrongenChainCLI checks the -chain flag (three heterogeneous
// factors, distributed 2D mode) against the materialized chain product,
// plus the up-front validation and expected-size output.
func TestKrongenChainCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "kronlab/cmd/krongen", "krongen")
	dir := t.TempDir()
	gs := []*graph.Graph{gen.Ring(5), gen.Path(4), gen.Clique(3)}
	paths := make([]string, len(gs))
	for i, g := range gs {
		paths[i] = filepath.Join(dir, []string{"a", "b", "c"}[i]+".txt")
		if err := g.SaveEdgeList(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	outPath := filepath.Join(dir, "chain.txt")
	cmd := exec.Command(bin, "-chain", strings.Join(paths, ","), "-mode", "2d", "-ranks", "3", "-out", outPath)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("krongen -chain: %v\n%s", err, stderr.String())
	}
	ch, err := core.NewChain(gs...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ch.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// The closed-form size must be announced before generation.
	if !strings.Contains(stderr.String(), fmt.Sprintf("|V| = %d", want.NumVertices())) ||
		!strings.Contains(stderr.String(), fmt.Sprintf("|E| = %d", want.NumEdges())) {
		t.Errorf("missing expected-size banner in stderr: %q", stderr.String())
	}
	got, err := graph.LoadUndirected(outPath)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges, gotEdges := want.EdgeList(), got.EdgeList()
	if len(wantEdges) != len(gotEdges) {
		t.Fatalf("edge counts differ: %d vs %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}

	// Invalid flag combinations are rejected up front.
	for _, args := range [][]string{
		{"-chain", strings.Join(paths, ","), "-a", paths[0]},
		{"-a", paths[0], "-power", "1"},
		{"-a", paths[0], "-mode", "3d"},
		{"-a", paths[0], "-b", paths[1], "-cluster-peers", "x:1,y:2"},
	} {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("krongen %v should be rejected", args)
		}
	}

	// An overflowing chain is refused with an explicit error before any
	// generation starts: K3^{⊗45} has 3^45 > 2^63 vertices.
	cmd = exec.Command(bin, "-a", paths[2], "-power", "45")
	stderr.Reset()
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Error("krongen should refuse an overflowing power")
	} else if !strings.Contains(stderr.String(), "overflow") {
		t.Errorf("overflow refusal message: %q", stderr.String())
	}
}

// TestKrongenPowerStoreCLI: -power now runs through the distributed
// chain engine (no serial KronPower materialization); the 1d store
// stream must still equal the serial power edge-for-edge.
func TestKrongenPowerStoreCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "kronlab/cmd/krongen", "krongen")
	dir := t.TempDir()
	a := gen.PrefAttach(5, 2, 17)
	aPath := filepath.Join(dir, "a.txt")
	if err := a.SaveEdgeList(aPath); err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "pstore")
	cmd := exec.Command(bin, "-a", aPath, "-power", "3", "-mode", "1d", "-ranks", "4", "-store", storeDir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("krongen -power -store: %v\n%s", err, stderr.String())
	}
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.KronPower(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !onDisk.Equal(want) {
		t.Fatal("distributed power store stream differs from serial KronPower")
	}
}

// TestKrongenPowerCLI checks the -power flag against core.KronPower.
func TestKrongenPowerCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "kronlab/cmd/krongen", "krongen")
	dir := t.TempDir()
	a := gen.Clique(3)
	aPath := filepath.Join(dir, "a.txt")
	outPath := filepath.Join(dir, "c.txt")
	if err := a.SaveEdgeList(aPath); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, "-a", aPath, "-power", "3", "-out", outPath).Run(); err != nil {
		t.Fatalf("krongen -power: %v", err)
	}
	got, err := graph.LoadUndirected(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.KronPower(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("power product edges %d, want %d", got.NumEdges(), want.NumEdges())
	}
	// -power with -b must be rejected.
	if err := exec.Command(bin, "-a", aPath, "-b", aPath, "-power", "2").Run(); err == nil {
		t.Error("krongen should reject -power with -b")
	}
}
