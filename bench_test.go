// Benchmarks regenerating the performance-relevant shape of every paper
// artifact (deliverable d). One benchmark (or formula-vs-oracle pair) per
// table/figure; experiment ids match DESIGN.md §4 and cmd/experiments.
//
// Run with: go test -bench=. -benchmem
package kronlab_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
	"kronlab/internal/havoq"
	"kronlab/internal/rejection"
)

// fixtures are shared across benchmarks and built once.
var (
	fixOnce sync.Once

	benchA    *graph.Graph // RMAT scale-6 factor
	benchB    *graph.Graph // RMAT scale-6 factor
	benchFacA *groundtruth.Factor
	benchFacB *groundtruth.Factor

	benchC      *graph.Graph // (A+I)⊗(B+I), materialized oracle target
	benchCPlain *graph.Graph // A⊗B

	gnut    *graph.Graph // gnutella-like factor with loops
	gnutFac *groundtruth.Factor

	sbmG     *graph.Graph
	sbmParts [][]int64
	sbmFac   *groundtruth.Factor
	sbmStats []analytics.CommunityStats
	sbmC     *graph.Graph
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		benchA = gen.MustRMAT(gen.Graph500Params(5, 10))
		benchB = gen.MustRMAT(gen.Graph500Params(5, 11))
		benchFacA = groundtruth.NewFactor(benchA)
		benchFacB = groundtruth.NewFactor(benchB)
		var err error
		benchCPlain, err = core.Product(benchA, benchB)
		if err != nil {
			panic(err)
		}
		benchC, err = core.ProductWithSelfLoops(benchA, benchB)
		if err != nil {
			panic(err)
		}
		gnut = gen.GnutellaLike(2019).WithFullSelfLoops()
		gnutFac = groundtruth.NewFactor(gnut)
		gnutFac.EnsureDistances()

		sbmG, sbmParts = gen.SBM(gen.SBMParams{BlockSizes: gen.EqualBlocks(4, 30), PIn: 0.35, POut: 0.02, Seed: 5})
		sbmFac = groundtruth.NewFactor(sbmG)
		sbmStats = analytics.Communities(sbmG, sbmParts)
		sbmC, err = core.ProductWithSelfLoops(sbmG, sbmG)
		if err != nil {
			panic(err)
		}
	})
}

// --- E1: Sec. I scaling-law table ---

func BenchmarkE1ScalingLaws(b *testing.B) {
	a := gen.ER(10, 0.4, 1)
	bb := gen.ER(10, 0.4, 2)
	pa := [][]int64{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa, fb := groundtruth.NewFactor(a), groundtruth.NewFactor(bb)
		if _, err := groundtruth.ScalingLaws(fa, fb, pa, pa); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Sec. III generator throughput (the CORAL2 edges/s row) ---

func BenchmarkE2Generate1D(b *testing.B) {
	fixtures(b)
	for _, r := range []int{1, 4, 16} {
		b.Run(rankName(r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dist.Generate1D(benchA, benchB, r, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(res.Stats.EdgesGenerated * 16)
			}
		})
	}
}

func BenchmarkE2Generate2D(b *testing.B) {
	fixtures(b)
	for _, r := range []int{4, 16} {
		b.Run(rankName(r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dist.Generate2D(benchA, benchB, r, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(res.Stats.EdgesGenerated * 16)
			}
		})
	}
}

// BenchmarkE2GenerateChain drives the generator through the chain
// kernel at increasing depth: K=2 takes the direct two-factor expansion
// branch, K=3 the lazy tail-cursor fold. The allocguard budget on this
// benchmark pins the chain path to the same zero-per-arc allocation
// discipline as the two-factor kernel.
func BenchmarkE2GenerateChain(b *testing.B) {
	base := gen.PrefAttach(16, 2, 21)
	for _, k := range []int{2, 3} {
		ch, err := core.PowerChain(base, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("K=%d/R=4", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dist.GenerateChain(ch, 4, nil, false)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(res.Stats.EdgesGenerated * 16)
			}
		})
	}
}

// --- Multicore saturation: edges/sec at R ranks × P cores ---

// BenchmarkThroughputSweep is the repo's headline number: sustained
// edges/sec of the full routed engine (expand → route → sink) swept over
// cluster size R and GOMAXPROCS P. The P axis is what the freelist
// sharding, double-buffered sends and async store sink buy: on multicore
// hardware the R=16 rows should scale with P until the machine
// saturates, and a committed BENCH_<date>_multicore.json snapshot of
// this sweep is the record of where that happened. P values above
// runtime.NumCPU() still run (the scheduler timeslices), so snapshots
// from narrow machines keep every row — flat, but comparable.
func BenchmarkThroughputSweep(b *testing.B) {
	fixtures(b)
	edges := benchA.NumArcs() * benchB.NumArcs()
	procs := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > procs[len(procs)-1] {
		procs = append(procs, n)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, r := range []int{1, 4, 16} {
		for _, p := range procs {
			b.Run(fmt.Sprintf("R=%d/P=%d", r, p), func(b *testing.B) {
				runtime.GOMAXPROCS(p)
				b.SetBytes(edges * 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := dist.Generate1D(benchA, benchB, r, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
			})
		}
	}
}

func BenchmarkE2SerialProduct(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Product(benchA, benchB); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Rem. 1 weak scaling — expansion-only work at the 1D wall ---

func BenchmarkE3WeakScaling(b *testing.B) {
	tiny := gen.Ring(16) // 32 arcs: R beyond 32 starves 1D ranks
	big := gen.MustRMAT(gen.Graph500Params(6, 12))
	for _, mode := range []struct {
		name string
		twoD bool
	}{{"1D", false}, {"2D", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dist.CountOnly(tiny, big, 64, mode.twoD); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: Cor. 1/2 triangle ground truth vs exact counting ---

func BenchmarkE4TriangleGroundTruth(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := groundtruth.VertexTrianglesFullLoops(benchFacA, benchFacB)
		if len(v) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkE4TriangleExact(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := analytics.Triangles(benchC)
		if ts.Global == 0 {
			b.Fatal("no triangles")
		}
	}
}

func BenchmarkE4TriangleDistributed(b *testing.B) {
	fixtures(b)
	dg, err := havoq.Build(benchCPlain, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg.Triangles()
	}
}

// --- E5: Thm. 1/2 clustering laws ---

func BenchmarkE5ClusteringGroundTruth(b *testing.B) {
	fixtures(b)
	n := benchFacA.N() * benchFacB.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		for p := int64(0); p < n; p += 7 {
			s += groundtruth.VertexClusteringAt(benchFacA, benchFacB, p)
		}
	}
}

func BenchmarkE5ClusteringExact(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cc := analytics.VertexClustering(benchCPlain); len(cc) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- E6: Fig. 1 eccentricity — formula vs BFS sweep ---

func BenchmarkE6EccentricityFormula(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Full Fig. 1 histogram for the 40M-vertex product from factor data.
		h := groundtruth.EccentricityHistogram(gnutFac, gnutFac)
		if len(h) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// eccProduct builds a small connected looped product for the BFS-based
// eccentricity comparators (brute force is O(n·m) — the very cost the
// formula avoids, so the oracle side runs on a reduced product).
func eccProduct(b *testing.B) *graph.Graph {
	b.Helper()
	small, _ := gen.PrefAttach(40, 2, 9).LargestComponent()
	sl := small.WithFullSelfLoops()
	c, err := core.Product(sl, sl)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkE6EccentricityBFS(b *testing.B) {
	c := eccProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e := analytics.Eccentricities(c); len(e) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkE6EccentricityDistributed(b *testing.B) {
	dg, err := havoq.Build(eccProduct(b), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dg.ExactEccentricities(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Thm. 4 closeness — direct vs compressed ---

func BenchmarkE7ClosenessDirect(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groundtruth.ClosenessAt(gnutFac, gnutFac, int64(i%1000)*4001)
	}
}

func BenchmarkE7ClosenessCompressed(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groundtruth.ClosenessCompressedAt(gnutFac, gnutFac, int64(i%1000)*4001)
	}
}

// --- E8: Cor. 5 diameter control ---

func BenchmarkE8DiameterGroundTruth(b *testing.B) {
	ring := gen.Ring(64).WithFullSelfLoops()
	fr := groundtruth.NewFactor(ring)
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groundtruth.Diameter(fr, gnutFac)
	}
}

// --- E9: Fig. 2 community densities — Thm. 6 vs counting on product ---

func BenchmarkE9CommunityGroundTruth(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := groundtruth.CommunitiesKron(sbmFac, sbmFac, sbmParts, sbmParts, sbmStats, sbmStats)
		if len(s) != len(sbmParts)*len(sbmParts) {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkE9CommunityExact(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ai := range sbmParts {
			for bi := range sbmParts {
				sc := core.KronSet(sbmParts[ai], sbmParts[bi], sbmFac.N())
				analytics.Community(sbmC, sc)
			}
		}
	}
}

// --- E10: Ex. 1 clique products ---

func BenchmarkE10CliqueProduct(b *testing.B) {
	a := gen.DisjointCliques(4, 6)
	bb := gen.DisjointCliques(3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProductWithSelfLoops(a, bb); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: Def. 8 edge rejection ---

func BenchmarkE11RejectionThin(b *testing.B) {
	fixtures(b)
	h := rejection.NewHasher(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rejection.Thin(benchCPlain, h, 0.95)
	}
}

func BenchmarkE11RejectionFamily(b *testing.B) {
	fixtures(b)
	h := rejection.NewHasher(1)
	levels := []float64{1, 0.99, 0.95, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rejection.Family(benchCPlain, h, levels)
	}
}

func rankName(r int) string {
	return fmt.Sprintf("R=%d", r)
}
