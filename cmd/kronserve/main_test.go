package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/serve"
	"kronlab/internal/store"
)

// TestEndToEnd is the acceptance scenario: register two factors over HTTP
// (one text upload, one binary), query ground truth, stream the product's
// edges in both wire formats, and check every answer against the
// internal/analytics oracles run on the materialized product.
func TestEndToEnd(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxInflight: 4, MaxQueue: 8}))
	defer ts.Close()

	a := gen.PrefAttach(12, 2, 41)
	b := gen.PrefAttach(9, 2, 42)

	// Factor A over the text path.
	var textBody bytes.Buffer
	if err := a.WriteEdgeList(&textBody); err != nil {
		t.Fatal(err)
	}
	ha := postFactor(t, ts.URL+"/factors?name=a", "text/plain", &textBody, http.StatusCreated)
	// Factor B over the binary path.
	var binBody bytes.Buffer
	if err := b.WriteBinary(&binBody); err != nil {
		t.Fatal(err)
	}
	hb := postFactor(t, ts.URL+"/factors", "application/octet-stream", &binBody, http.StatusCreated)

	if ha != a.CanonicalHash() || hb != b.CanonicalHash() {
		t.Fatalf("server addresses (%s, %s) disagree with canonical hashes", ha, hb)
	}

	// Materialize both product variants as the oracle substrate.
	C, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	CL, err := core.ProductWithSelfLoops(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nC := C.NumVertices()
	gtURL := func(prop, params string) string {
		u := fmt.Sprintf("%s/gt/%s/%s/%s", ts.URL, ha, hb, prop)
		if params != "" {
			u += "?" + params
		}
		return u
	}

	t.Run("degree", func(t *testing.T) {
		for _, p := range []int64{0, nC / 3, nC - 1} {
			got := getJSON(t, gtURL("degree", fmt.Sprintf("p=%d", p)))
			if want := C.Degree(p); asInt64(got["degree"]) != want {
				t.Errorf("degree(p=%d) = %v, oracle %d", p, got["degree"], want)
			}
			got = getJSON(t, gtURL("degree", fmt.Sprintf("p=%d&loops=1", p)))
			if want := CL.Degree(p); asInt64(got["degree"]) != want {
				t.Errorf("degree(p=%d, loops) = %v, oracle %d", p, got["degree"], want)
			}
		}
	})

	t.Run("triangles", func(t *testing.T) {
		triC := analytics.Triangles(C)
		triCL := analytics.Triangles(CL)
		if got := getJSON(t, gtURL("triangles", "")); asInt64(got["global_triangles"]) != triC.Global {
			t.Errorf("global triangles = %v, oracle %d", got["global_triangles"], triC.Global)
		}
		if got := getJSON(t, gtURL("triangles", "loops=1")); asInt64(got["global_triangles"]) != triCL.Global {
			t.Errorf("global triangles (loops) = %v, oracle %d", got["global_triangles"], triCL.Global)
		}
		for _, p := range []int64{1, nC / 2} {
			got := getJSON(t, gtURL("triangles", fmt.Sprintf("p=%d", p)))
			if asInt64(got["vertex_triangles"]) != triC.Vertex[p] {
				t.Errorf("t_%d = %v, oracle %d", p, got["vertex_triangles"], triC.Vertex[p])
			}
			got = getJSON(t, gtURL("triangles", fmt.Sprintf("p=%d&loops=1", p)))
			if asInt64(got["vertex_triangles"]) != triCL.Vertex[p] {
				t.Errorf("t_%d (loops) = %v, oracle %d", p, got["vertex_triangles"], triCL.Vertex[p])
			}
		}
		// One representative non-loop edge in each variant.
		u, v := firstProperEdge(t, C)
		got := getJSON(t, gtURL("triangles", fmt.Sprintf("p=%d&q=%d", u, v)))
		if want := analytics.EdgeTriangles(C, u, v); asInt64(got["edge_triangles"]) != want {
			t.Errorf("Δ(%d,%d) = %v, oracle %d", u, v, got["edge_triangles"], want)
		}
		u, v = firstProperEdge(t, CL)
		got = getJSON(t, gtURL("triangles", fmt.Sprintf("p=%d&q=%d&loops=1", u, v)))
		if want := analytics.EdgeTriangles(CL, u, v); asInt64(got["edge_triangles"]) != want {
			t.Errorf("Δ(%d,%d) (loops) = %v, oracle %d", u, v, got["edge_triangles"], want)
		}
	})

	t.Run("clustering", func(t *testing.T) {
		eta := analytics.VertexClustering(C)
		for _, p := range []int64{0, nC - 1} {
			got := getJSON(t, gtURL("clustering", fmt.Sprintf("p=%d", p)))
			if !floatEq(asFloat(got["vertex_clustering"]), eta[p]) {
				t.Errorf("η_%d = %v, oracle %g", p, got["vertex_clustering"], eta[p])
			}
		}
	})

	t.Run("distances", func(t *testing.T) {
		got := getJSON(t, gtURL("diameter", "loops=1"))
		if want := analytics.Diameter(CL); asInt64(got["diameter"]) != want {
			t.Errorf("diameter = %v, oracle %d", got["diameter"], want)
		}
		for _, p := range []int64{0, nC / 2, nC - 1} {
			got := getJSON(t, gtURL("eccentricity", fmt.Sprintf("p=%d&loops=1", p)))
			if want := analytics.Eccentricity(CL, p); asInt64(got["eccentricity"]) != want {
				t.Errorf("ε_%d = %v, oracle %d", p, got["eccentricity"], want)
			}
			got = getJSON(t, gtURL("closeness", fmt.Sprintf("p=%d&loops=1", p)))
			if want := analytics.Closeness(CL, p); !floatEq(asFloat(got["closeness"]), want) {
				t.Errorf("z_%d = %v, oracle %g", p, got["closeness"], want)
			}
		}
		hops := analytics.Hops(CL, 0)
		got = getJSON(t, gtURL("hops", fmt.Sprintf("p=0&q=%d&loops=1", nC-1)))
		if asInt64(got["hops"]) != hops[nC-1] {
			t.Errorf("hops(0,%d) = %v, oracle %d", nC-1, got["hops"], hops[nC-1])
		}
	})

	t.Run("community", func(t *testing.T) {
		sa := []int64{0, 1, 2}
		sb := []int64{0, 1}
		set := core.KronSet(sa, sb, b.NumVertices())
		want := analytics.Community(CL, set)
		got := getJSON(t, gtURL("community", "sa=0,1,2&sb=0,1&loops=1"))
		if asInt64(got["size"]) != want.Size || asInt64(got["m_in"]) != want.MIn || asInt64(got["m_out"]) != want.MOut {
			t.Errorf("community counts = (%v,%v,%v), oracle (%d,%d,%d)",
				got["size"], got["m_in"], got["m_out"], want.Size, want.MIn, want.MOut)
		}
		if !floatEq(asFloat(got["rho_in"]), want.RhoIn) || !floatEq(asFloat(got["rho_out"]), want.RhoOut) {
			t.Errorf("community densities = (%v,%v), oracle (%g,%g)",
				got["rho_in"], got["rho_out"], want.RhoIn, want.RhoOut)
		}
	})

	t.Run("stream-ndjson", func(t *testing.T) {
		resp, err := http.Get(fmt.Sprintf("%s/gen/%s/%s/edges?layout=2d&ranks=3", ts.URL, ha, hb))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var arcs []graph.Edge
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e struct{ U, V int64 }
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("bad stream line %q: %v", sc.Text(), err)
			}
			arcs = append(arcs, graph.Edge{U: e.U, V: e.V})
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		assertStreamedProduct(t, nC, arcs, C)
	})

	t.Run("stream-binary", func(t *testing.T) {
		resp, err := http.Get(fmt.Sprintf("%s/gen/%s/%s/edges?format=binary&loops=1", ts.URL, ha, hb))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw)%store.RecordSize != 0 {
			t.Fatalf("binary stream length %d is not a multiple of %d", len(raw), store.RecordSize)
		}
		arcs := make([]graph.Edge, 0, len(raw)/store.RecordSize)
		for off := 0; off < len(raw); off += store.RecordSize {
			u, v := store.GetRecord(raw[off : off+store.RecordSize])
			arcs = append(arcs, graph.Edge{U: u, V: v})
		}
		assertStreamedProduct(t, nC, arcs, CL)
	})

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		text := string(body)
		for _, metric := range []string{
			"kronserve_requests_total{route=\"gt\"}",
			"kronserve_requests_total{route=\"gen\"}",
			"kronserve_gen_edges_total",
			"kronserve_cache_hits_total",
			"kronserve_summary_builds_total",
		} {
			val := metricValue(t, text, metric)
			if val <= 0 {
				t.Errorf("%s = %g after e2e traffic, want > 0", metric, val)
			}
		}
	})
}

// assertStreamedProduct rebuilds a graph from streamed arcs and demands
// exact equality with the oracle product.
func assertStreamedProduct(t *testing.T, n int64, arcs []graph.Edge, want *graph.Graph) {
	t.Helper()
	if int64(len(arcs)) != want.NumArcs() {
		t.Fatalf("streamed %d arcs, product has %d", len(arcs), want.NumArcs())
	}
	got, err := graph.New(n, arcs)
	if err != nil {
		t.Fatalf("streamed arc set invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("streamed edge set differs from the materialized product")
	}
}

func postFactor(t *testing.T, url, contentType string, body io.Reader, wantStatus int) string {
	t.Helper()
	resp, err := http.Post(url, contentType, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, raw)
	}
	var info struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	return info.Hash
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return out
}

func asInt64(v any) int64 {
	f, ok := v.(float64)
	if !ok {
		return math.MinInt64
	}
	return int64(f)
}

func asFloat(v any) float64 {
	f, ok := v.(float64)
	if !ok {
		return math.NaN()
	}
	return f
}

func floatEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// firstProperEdge returns some non-loop arc (u,v) of g.
func firstProperEdge(t *testing.T, g *graph.Graph) (int64, int64) {
	t.Helper()
	for _, e := range g.EdgeList() {
		if e.U != e.V {
			return e.U, e.V
		}
	}
	t.Fatal("graph has no proper edge")
	return 0, 0
}

// metricValue extracts the sample value of a metric line such as
// `kronserve_gen_edges_total 123`.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("unparseable metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	return 0
}
