// Command kronserve runs the kronlab ground-truth & generation HTTP
// service: register factor graphs, query exact product analytics computed
// from cached factor summaries (the paper's sublinear formulas), and
// stream product edges from the distributed generator.
//
// Usage:
//
//	kronserve [flags]
//
//	-addr           listen address (default :8571)
//	-max-inflight   concurrent heavy requests (default GOMAXPROCS)
//	-max-queue      queued heavy requests before 429 (default 4×inflight)
//	-cache-mb       factor summary cache budget in MiB (default 256)
//	-timeout        per ground-truth request timeout (default 30s)
//	-max-upload-mb  factor upload size cap in MiB (default 64)
//	-max-ranks      cap on the ranks= generation parameter (default 64)
//
// See README.md §Serving for the endpoint reference and a curl
// quickstart.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"kronlab/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8571", "listen address")
	maxInflight := flag.Int("max-inflight", 0, "concurrent heavy requests (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "queued heavy requests before 429 (0 = 4×inflight)")
	cacheMB := flag.Int64("cache-mb", 256, "summary cache budget in MiB")
	timeout := flag.Duration("timeout", 30*time.Second, "ground-truth request timeout")
	uploadMB := flag.Int64("max-upload-mb", 64, "factor upload cap in MiB")
	maxRanks := flag.Int("max-ranks", 64, "cap on the ranks= generation parameter")
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		CacheBytes:     *cacheMB << 20,
		RequestTimeout: *timeout,
		MaxUploadBytes: *uploadMB << 20,
		MaxRanks:       *maxRanks,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("kronserve listening on %s", *addr)
	log.Fatal(hs.ListenAndServe())
}
