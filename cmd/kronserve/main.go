// Command kronserve runs the kronlab ground-truth & generation HTTP
// service: register factor graphs, query exact product analytics computed
// from cached factor summaries (the paper's sublinear formulas), and
// stream product edges from the distributed generator.
//
// Usage:
//
//	kronserve [flags]
//
//	-addr           listen address (default :8571)
//	-max-inflight   concurrent heavy requests (default GOMAXPROCS)
//	-max-queue      queued heavy requests before 429 (default 4×inflight)
//	-cache-mb       factor summary cache budget in MiB (default 256)
//	-timeout        per ground-truth request timeout (default 30s)
//	-gen-timeout    per generation stream timeout (default 5m)
//	-gen-retries    supervised-recovery budget for generation runs (default 1)
//	-max-upload-mb  factor upload size cap in MiB (default 64)
//	-max-ranks      cap on the ranks= generation parameter (default 64)
//	-ledger         run-ledger path reported via /healthz (default none)
//	-drain          graceful shutdown deadline after SIGTERM/SIGINT (default 15s)
//	-pprof          side listener address for net/http/pprof (default off)
//	-pprof-mutex    mutex profile sampling fraction (default 0 = off)
//	-pprof-block    block profile rate in ns blocked per sample (default 0 = off)
//
// -pprof serves the runtime profiling endpoints on a separate listener
// (own mux, never the service address), so profiles of a live server —
// including the engine's phase labels phase=expand|route|store|sink-flush
// — stay off the public surface. Point it at loopback, e.g. -pprof
// localhost:6060, then:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// -pprof-mutex and -pprof-block arm the runtime's contention profiles
// (runtime.SetMutexProfileFraction / runtime.SetBlockProfileRate), which
// are off by default; with them set, /debug/pprof/mutex and
// /debug/pprof/block show where the freelist shards, the exchange's
// blocking sends and the async sink queues actually contend. A mutex
// fraction of 5 and a block rate of 10000 (10µs) are cheap enough to
// leave on for a whole contention hunt.
//
// On SIGTERM or SIGINT the server drains: new heavy requests get 503,
// in-flight generation streams are cancelled and finish with a clean
// X-Kronlab-Complete trailer, and the listener shuts down via
// http.Server.Shutdown bounded by -drain before the process exits.
//
// See README.md §Serving for the endpoint reference and a curl
// quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"kronlab/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8571", "listen address")
	maxInflight := flag.Int("max-inflight", 0, "concurrent heavy requests (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "queued heavy requests before 429 (0 = 4×inflight)")
	cacheMB := flag.Int64("cache-mb", 256, "summary cache budget in MiB")
	timeout := flag.Duration("timeout", 30*time.Second, "ground-truth request timeout")
	genTimeout := flag.Duration("gen-timeout", 5*time.Minute, "generation stream timeout")
	genRetries := flag.Int("gen-retries", 1, "supervised-recovery budget for generation runs (negative disables)")
	uploadMB := flag.Int64("max-upload-mb", 64, "factor upload cap in MiB")
	maxRanks := flag.Int("max-ranks", 64, "cap on the ranks= generation parameter")
	ledgerPath := flag.String("ledger", "", "run-ledger path of the fronted cluster deployment, reported via /healthz")
	drain := flag.Duration("drain", 15*time.Second, "graceful shutdown deadline after SIGTERM/SIGINT")
	pprofAddr := flag.String("pprof", "", "side listener address for net/http/pprof (empty = disabled)")
	pprofMutex := flag.Int("pprof-mutex", 0, "mutex profile sampling fraction, 1-in-N contention events (0 = off)")
	pprofBlock := flag.Int("pprof-block", 0, "block profile sampling rate in ns blocked per sample (0 = off)")
	flag.Parse()

	// Contention profiles are off by default in the runtime; arm them
	// before the engine spawns goroutines so the first request is already
	// covered. Cheap enough at modest fractions to leave on in a
	// contention hunt, but not free — hence opt-in flags, not defaults.
	if *pprofMutex > 0 {
		runtime.SetMutexProfileFraction(*pprofMutex)
	}
	if *pprofBlock > 0 {
		runtime.SetBlockProfileRate(*pprofBlock)
	}

	if *pprofAddr != "" {
		// Dedicated mux on a dedicated listener: the profiling surface is
		// opt-in and bindable to loopback, independent of -addr. Best
		// effort — a dead pprof listener is logged, not fatal.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Addr: *pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("kronserve pprof listening on %s", *pprofAddr)
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("kronserve pprof listener: %v", err)
			}
		}()
	}

	srv := serve.New(serve.Config{
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		CacheBytes:     *cacheMB << 20,
		RequestTimeout: *timeout,
		GenTimeout:     *genTimeout,
		GenRetries:     *genRetries,
		MaxUploadBytes: *uploadMB << 20,
		MaxRanks:       *maxRanks,
		LedgerPath:     *ledgerPath,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("kronserve listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: refuse new heavy work and cancel running generation streams
	// (they finish with a clean trailer), then let Shutdown wait for the
	// remaining handlers up to the deadline before cutting connections.
	log.Printf("kronserve draining (deadline %s)", *drain)
	srv.BeginShutdown()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("kronserve shutdown: %v; closing remaining connections", err)
		_ = hs.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("kronserve listener: %v", err)
	}
	log.Printf("kronserve stopped")
}
