// Command groundtruth prints ground-truth graph analytics for the
// Kronecker product C = A ⊗ B (or (A+I) ⊗ (B+I) with -self-loops) computed
// purely from the factors — without ever materializing C. This is the
// paper's central use case: decorate a massive generated benchmark graph
// with trusted analytic values at factor cost.
//
// Usage:
//
//	groundtruth -a A.txt -b B.txt [-self-loops]
//	            [-degrees] [-triangles] [-distances] [-closeness N] [-laws]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kronlab/internal/analytics"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("groundtruth: ")

	aPath := flag.String("a", "", "edge-list file for factor A (required)")
	bPath := flag.String("b", "", "edge-list file for factor B (required)")
	selfLoops := flag.Bool("self-loops", false, "analyze (A+I) ⊗ (B+I)")
	degrees := flag.Bool("degrees", true, "print the product degree histogram")
	triangles := flag.Bool("triangles", true, "print triangle ground truth")
	distances := flag.Bool("distances", false, "print eccentricity histogram and diameter (needs -self-loops)")
	closeness := flag.Int("closeness", 0, "print closeness centrality for the first N product vertices (needs -self-loops)")
	flag.Parse()

	if *aPath == "" || *bPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ga, err := graph.LoadUndirected(*aPath)
	if err != nil {
		log.Fatalf("loading A: %v", err)
	}
	gb, err := graph.LoadUndirected(*bPath)
	if err != nil {
		log.Fatalf("loading B: %v", err)
	}
	a, b := groundtruth.NewFactor(ga), groundtruth.NewFactor(gb)

	fmt.Printf("factors: A=%v B=%v\n", ga, gb)
	nC := groundtruth.NumVertices(a, b)
	if *selfLoops {
		al := groundtruth.NewFactor(ga.WithFullSelfLoops())
		bl := groundtruth.NewFactor(gb.WithFullSelfLoops())
		fmt.Printf("product: C = (A+I) ⊗ (B+I), n_C = %d, m_C = %d\n",
			nC, groundtruth.NumEdges(al, bl))
		if *degrees {
			printDegreeHistogram(groundtruth.DegreesWithSelfLoops(a, b))
		}
		if *triangles {
			if ga.NumSelfLoops() > 0 || gb.NumSelfLoops() > 0 {
				log.Fatal("-triangles with -self-loops requires loop-free input factors (the +I is added internally)")
			}
			fmt.Printf("\nglobal triangles τ_C = %d (Cor. 1 aggregate)\n",
				groundtruth.GlobalTrianglesFullLoops(a, b))
			printTriangleHistogram(groundtruth.VertexTrianglesFullLoops(a, b))
		}
		if *distances {
			al.EnsureDistances()
			bl.EnsureDistances()
			fmt.Printf("\ndiameter(C) = %d (Cor. 3)\n", groundtruth.Diameter(al, bl))
			ecc := groundtruth.Eccentricities(al, bl)
			fmt.Println("eccentricity histogram (Cor. 4):")
			fmt.Print(analytics.NewHistogram(ecc).Render(40))
		}
		if *closeness > 0 {
			n := int64(*closeness)
			if n > nC {
				n = nC
			}
			fmt.Printf("\ncloseness centrality (Thm. 4, compressed form):\n")
			for p := int64(0); p < n; p++ {
				fmt.Printf("  ζ_C(%d) = %.4f\n", p, groundtruth.ClosenessCompressedAt(al, bl, p))
			}
		}
		return
	}

	fmt.Printf("product: C = A ⊗ B, n_C = %d, m_C = %d\n", nC, groundtruth.NumEdges(a, b))
	if *degrees {
		printDegreeHistogram(groundtruth.Degrees(a, b))
	}
	if *triangles {
		a.RequireNoSelfLoops("t_C = 2·t_A⊗t_B")
		b.RequireNoSelfLoops("t_C = 2·t_A⊗t_B")
		fmt.Printf("\nglobal triangles τ_C = 6·τ_A·τ_B = %d\n", groundtruth.GlobalTriangles(a, b))
		printTriangleHistogram(groundtruth.VertexTriangles(a, b))
	}
	if *distances || *closeness > 0 {
		log.Fatal("-distances and -closeness require -self-loops (Thm. 3 hypothesis)")
	}
}

func printDegreeHistogram(deg []int64) {
	fmt.Println("\ndegree histogram (d_C = d_A ⊗ d_B):")
	fmt.Print(analytics.NewHistogram(deg).Render(40))
}

func printTriangleHistogram(tri []int64) {
	fmt.Println("vertex triangle-count histogram:")
	fmt.Print(analytics.NewHistogram(tri).Render(40))
}
