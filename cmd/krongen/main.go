// Command krongen is the paper's deliverable (a): it reads two factor
// graphs A and B from edge-list files and produces the nonstochastic
// Kronecker product C = A ⊗ B, either serially or on a simulated
// distributed cluster with 1D (Sec. III) or 2D (Rem. 1) partitioning.
//
// Usage:
//
//	krongen -a A.txt -b B.txt [-out C.txt] [-mode serial|1d|2d] [-ranks R]
//	        [-self-loops] [-binary] [-stats] [-store DIR [-shards S]]
//	        [-cluster-peers H:P,H:P,... -cluster-self N [-retries K]]
//
// With -store the product streams to a sharded on-disk store instead of
// an edge-list file: serially (shard count -shards), or under -mode 1d/2d
// with one shard per simulated rank and O(batch) memory per rank.
//
// With -cluster-peers the 1d/2d store generation runs as one process of a
// real multi-process cluster over TCP: every process is started with the
// same factor files, the same full peer list and its own -cluster-self
// index, hosts a contiguous share of the -ranks ranks, and streams its
// owned shards into the shared -store directory. Process 0 supervises
// (assigning work, collecting results, retrying up to -retries times
// after a peer process dies) and finalizes the store manifest.
//
// With -self-loops the product is (A+I) ⊗ (B+I), the construction required
// by the triangle (Cor. 1/2), distance (Thm. 3) and community (Thm. 6)
// ground-truth formulas.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krongen: ")

	aPath := flag.String("a", "", "edge-list file for factor A (required)")
	bPath := flag.String("b", "", "edge-list file for factor B (required unless -power)")
	power := flag.Int("power", 0, "generate the Kronecker power A^{⊗k} instead of A ⊗ B (serial mode)")
	outPath := flag.String("out", "", "output file for C (default: stdout)")
	mode := flag.String("mode", "serial", "generation mode: serial, 1d, 2d")
	ranks := flag.Int("ranks", 4, "simulated ranks for 1d/2d modes")
	selfLoops := flag.Bool("self-loops", false, "generate (A+I) ⊗ (B+I)")
	binary := flag.Bool("binary", false, "write the binary edge-list format")
	stats := flag.Bool("stats", false, "print generation statistics to stderr")
	storeDir := flag.String("store", "", "stream C to a sharded on-disk store at this directory instead of an edge-list file")
	shards := flag.Int("shards", 8, "shard count for -store in serial mode (1d/2d modes use one shard per rank)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated host:port list of every cluster process, in process order (requires -store and -mode 1d|2d)")
	clusterSelf := flag.Int("cluster-self", 0, "this process's index into -cluster-peers")
	retries := flag.Int("retries", 3, "cluster mode: attempts to retry after a recoverable peer failure")
	dumpStore := flag.String("dump-store", "", "load an existing store at this directory and write it as an edge list (to -out or stdout); no generation")
	flag.Parse()

	if *dumpStore != "" {
		st, err := store.Open(*dumpStore)
		if err != nil {
			log.Fatalf("opening store: %v", err)
		}
		g, err := st.LoadGraph()
		if err != nil {
			log.Fatalf("loading store: %v", err)
		}
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatalf("creating output: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := g.WriteEdgeList(out); err != nil {
			log.Fatalf("writing edge list: %v", err)
		}
		return
	}

	if *aPath == "" || (*bPath == "" && *power < 2) {
		flag.Usage()
		os.Exit(2)
	}
	a, err := graph.LoadUndirected(*aPath)
	if err != nil {
		log.Fatalf("loading A: %v", err)
	}
	if *selfLoops {
		a = a.WithFullSelfLoops()
	}
	var b *graph.Graph
	if *power >= 2 {
		// A^{⊗k} = A^{⊗(k−1)} ⊗ A: build the left operand first, then fall
		// through to the usual two-factor path with B = A.
		if *bPath != "" {
			log.Fatal("-power takes only -a; drop -b")
		}
		b = a
		for i := 2; i < *power; i++ {
			a, err = core.Product(a, b)
			if err != nil {
				log.Fatalf("building A^{⊗%d}: %v", i, err)
			}
		}
	} else {
		b, err = graph.LoadUndirected(*bPath)
		if err != nil {
			log.Fatalf("loading B: %v", err)
		}
		if *selfLoops {
			b = b.WithFullSelfLoops()
		}
	}

	if *clusterPeers != "" {
		if *storeDir == "" || (*mode != "1d" && *mode != "2d") {
			log.Fatal("-cluster-peers requires -store and -mode 1d or 2d")
		}
		runCluster(a, b, *mode == "2d", *storeDir, *clusterPeers, *clusterSelf, *ranks, *retries, *stats)
		return
	}

	if *storeDir != "" && *mode != "serial" {
		// Distributed generate-route-store: each rank streams its owned
		// edges to its own shard, O(batch) memory per rank.
		start := time.Now()
		var st *store.Store
		var genStats dist.Stats
		var err error
		switch *mode {
		case "1d":
			st, genStats, err = dist.Generate1DToStore(a, b, *ranks, *storeDir)
		case "2d":
			st, genStats, err = dist.Generate2DToStore(a, b, *ranks, *storeDir)
		default:
			log.Fatalf("unknown mode %q (want serial, 1d or 2d)", *mode)
		}
		if err != nil {
			log.Fatalf("generating to store: %v", err)
		}
		if *stats {
			elapsed := time.Since(start)
			fmt.Fprintf(os.Stderr, "streamed %d arcs to %s (%d shards) in %v (%.0f edges/s)\n",
				st.TotalEdges(), *storeDir, st.Shards(), elapsed, float64(st.TotalEdges())/elapsed.Seconds())
			fmt.Fprintf(os.Stderr, "ranks=%d routed=%d edges, %d bytes, %d messages, max stored/rank=%d\n",
				*ranks, genStats.EdgesRouted, genStats.BytesSent, genStats.Messages, genStats.MaxStored())
		}
		return
	}

	if *storeDir != "" {
		// Streaming path: never materialize C. The expansion is the
		// serial Sec. III loop; edges go straight to the sharded store.
		start := time.Now()
		w, err := store.NewWriter(*storeDir, a.NumVertices()*b.NumVertices(), *shards, nil)
		if err != nil {
			log.Fatal(err)
		}
		var count int64
		var werr error
		core.StreamProduct(a, b, func(u, v int64) bool {
			if err := w.Append(u, v); err != nil {
				werr = err
				return false
			}
			count++
			return true
		})
		if werr != nil {
			log.Fatal(werr)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		if *stats {
			elapsed := time.Since(start)
			fmt.Fprintf(os.Stderr, "streamed %d arcs to %s (%d shards) in %v (%.0f edges/s)\n",
				count, *storeDir, *shards, elapsed, float64(count)/elapsed.Seconds())
		}
		return
	}

	start := time.Now()
	var c *graph.Graph
	var genStats dist.Stats
	switch *mode {
	case "serial":
		c, err = core.Product(a, b)
	case "1d", "2d":
		var res *dist.Result
		if *mode == "1d" {
			res, err = dist.Generate1D(a, b, *ranks, nil)
		} else {
			res, err = dist.Generate2D(a, b, *ranks, nil)
		}
		if err == nil {
			genStats = res.Stats
			c, err = res.Collect()
		}
	default:
		log.Fatalf("unknown mode %q (want serial, 1d or 2d)", *mode)
	}
	if err != nil {
		log.Fatalf("generating product: %v", err)
	}
	elapsed := time.Since(start)

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatalf("creating output: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing output: %v", err)
			}
		}()
		out = f
	}
	if *binary {
		err = c.WriteBinary(out)
	} else {
		err = c.WriteEdgeList(out)
	}
	if err != nil {
		log.Fatalf("writing C: %v", err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "A: %v\nB: %v\nC: %v\n", a, b, c)
		fmt.Fprintf(os.Stderr, "generated in %v (%.0f edges/s)\n",
			elapsed, float64(c.NumArcs())/elapsed.Seconds())
		if *mode != "serial" {
			fmt.Fprintf(os.Stderr, "ranks=%d routed=%d edges, %d bytes, %d messages\n",
				*ranks, genStats.EdgesRouted, genStats.BytesSent, genStats.Messages)
		}
	}
}

// runCluster runs this process's share of a multi-process TCP cluster
// generation. Every peer process runs the same command line except for
// -cluster-self, derives the identical plan from the shared factor files,
// and the plan-hash handshake refuses any peer whose plan disagrees.
// Process 0 finalizes the store and prints the -stats summary; workers
// exit silently on success.
func runCluster(a, b *graph.Graph, twoD bool, dir, peers string, self, ranks, retries int, stats bool) {
	addrs := strings.Split(peers, ",")
	for i, s := range addrs {
		addrs[i] = strings.TrimSpace(s)
	}
	if self < 0 || self >= len(addrs) {
		log.Fatalf("-cluster-self %d out of range for %d peers", self, len(addrs))
	}
	if ranks < len(addrs) {
		log.Fatalf("-ranks %d is fewer than the %d cluster processes", ranks, len(addrs))
	}

	plan, err := dist.Plan1D(a, b, ranks)
	if twoD {
		plan, err = dist.Plan2D(a, b, ranks)
	}
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	node, err := tcp.NewNode(addrs[self], self, dist.PlanHash(plan))
	if err != nil {
		log.Fatalf("listening on %s: %v", addrs[self], err)
	}
	defer node.Close()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	start := time.Now()
	st, genStats, err := dist.GenerateClusterToStore(ctx, a, b, dir, twoD,
		dist.ClusterConfig{
			Procs: transport.SplitRanks(addrs, ranks),
			Self:  self,
			Node:  node,
		},
		dist.Recovery{MaxRetries: retries, Backoff: 250 * time.Millisecond})
	if err != nil {
		log.Fatalf("cluster generation (proc %d): %v", self, err)
	}
	if st == nil {
		return // worker: the head owns the manifest and the summary
	}
	if stats {
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "streamed %d arcs to %s (%d shards) in %v (%.0f edges/s)\n",
			st.TotalEdges(), dir, st.Shards(), elapsed, float64(st.TotalEdges())/elapsed.Seconds())
		fmt.Fprintf(os.Stderr, "procs=%d ranks=%d routed=%d edges, %d bytes, %d messages, max stored/rank=%d, recovered runs=%d\n",
			len(addrs), ranks, genStats.EdgesRouted, genStats.BytesSent, genStats.Messages, genStats.MaxStored(), genStats.RecoveredRuns)
	}
}
