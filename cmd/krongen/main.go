// Command krongen is the paper's deliverable (a): it reads factor graphs
// from edge-list files and produces the nonstochastic Kronecker product,
// either serially or on a simulated distributed cluster with 1D
// (Sec. III) or 2D (Rem. 1) partitioning. The product can be the
// two-factor C = A ⊗ B, a Kronecker power A^{⊗k}, or a heterogeneous
// factor chain A₁⊗A₂⊗…⊗Aₖ — all three run the same chain engine, with
// the tail factors folded lazily so no pairwise intermediate is ever
// materialized.
//
// Usage:
//
//	krongen -a A.txt -b B.txt [flags]          two-factor product A ⊗ B
//	krongen -a A.txt -power k [flags]          Kronecker power A^{⊗k}
//	krongen -chain A1.txt,A2.txt,... [flags]   factor chain A₁⊗A₂⊗…
//
//	flags: [-out C.txt] [-mode serial|1d|2d] [-ranks R] [-self-loops]
//	       [-binary] [-stats] [-store DIR [-shards S]]
//	       [-offset N] [-limit M] [-gomaxprocs N]
//	       [-cluster-peers H:P,H:P,... -cluster-self N [-retries K]
//	        [-ledger FILE] [-head-retries K] [-hb-interval D] [-hb-deadline D]
//	        [-dial-timeout D]]
//
// Before generating, krongen prints the closed-form expected |V| and |E|
// of the product to stderr, and refuses to start when either count
// overflows int64 — a plan built from a wrapped count is garbage.
//
// With -offset/-limit krongen generates a contiguous window of the
// product's deterministic arc stream — shard k of S is
// -offset k·(arcs/S) -limit arcs/S — without ever generating the skipped
// prefix (the start position is located arithmetically). Windowed output
// is headerless "u v" arc lines (or a windowed store with -store); the
// whole-graph -binary format is refused. Under -mode 1d the window of
// the stream equals the serial enumeration's window for any -ranks; 2d
// windows are deterministic per (layout, ranks).
//
// With -store the product streams to a sharded on-disk store instead of
// an edge-list file: serially (shard count -shards), or under -mode 1d/2d
// with one shard per simulated rank and O(batch) memory per rank.
//
// With -cluster-peers the 1d/2d store generation runs as one process of a
// real multi-process cluster over TCP: every process is started with the
// same factor files, the same full peer list and its own -cluster-self
// index, hosts a contiguous share of the -ranks ranks, and streams its
// owned shards into the shared -store directory. Process 0 supervises
// (assigning work, collecting results, retrying up to -retries times
// after a peer process dies) and finalizes the store manifest.
//
// With -self-loops every factor gets full self loops first — the
// ⊗(A_d+I) construction required by the triangle (Cor. 1/2), distance
// (Thm. 3) and community (Thm. 6) ground-truth formulas.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krongen: ")

	aPath := flag.String("a", "", "edge-list file for factor A")
	bPath := flag.String("b", "", "edge-list file for factor B")
	power := flag.Int("power", 0, "generate the Kronecker power A^{⊗k} instead of A ⊗ B (any mode)")
	chainSpec := flag.String("chain", "", "comma-separated edge-list files A1,A2,...: generate the factor chain A1⊗A2⊗… (instead of -a/-b)")
	outPath := flag.String("out", "", "output file for C (default: stdout)")
	mode := flag.String("mode", "serial", "generation mode: serial, 1d, 2d")
	ranks := flag.Int("ranks", 4, "simulated ranks for 1d/2d modes")
	selfLoops := flag.Bool("self-loops", false, "generate the full-self-loop product ⊗(A_d+I)")
	binary := flag.Bool("binary", false, "write the binary edge-list format")
	stats := flag.Bool("stats", false, "print generation statistics to stderr")
	storeDir := flag.String("store", "", "stream C to a sharded on-disk store at this directory instead of an edge-list file")
	shards := flag.Int("shards", 8, "shard count for -store in serial mode (1d/2d modes use one shard per rank)")
	offset := flag.Int64("offset", 0, "start the arc stream this many arcs into the product (the skipped prefix is never generated)")
	limit := flag.Int64("limit", -1, "stop after this many arcs from -offset (-1 = through the end)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated host:port list of every cluster process, in process order (requires -store and -mode 1d|2d)")
	clusterSelf := flag.Int("cluster-self", 0, "this process's index into -cluster-peers")
	retries := flag.Int("retries", 3, "cluster mode: attempts to retry after a recoverable peer failure")
	ledgerPath := flag.String("ledger", "", "cluster mode: durable run-ledger file for process 0; a respawned head replays it and resumes instead of restarting")
	headRetries := flag.Int("head-retries", 5, "cluster mode: how many times a worker re-dials a lost head before giving up")
	hbInterval := flag.Duration("hb-interval", 0, "cluster mode: application heartbeat interval (0 = 2s default; negative disables heartbeats)")
	hbDeadline := flag.Duration("hb-deadline", 0, "cluster mode: peer silence deadline before a partition verdict (0 = 5× interval)")
	dialTimeout := flag.Duration("dial-timeout", 0, "cluster mode: dial and handshake timeout (0 = 10s default); raise on slow networks")
	dumpStore := flag.String("dump-store", "", "load an existing store at this directory and write it as an edge list (to -out or stdout); no generation")
	dumpArcs := flag.Bool("dump-arcs", false, "with -dump-store: write every stored arc as a headerless \"u v\" line instead of the canonical undirected edge list (windowed stores are not arc-symmetric)")
	gomaxprocs := flag.Int("gomaxprocs", 0, "cap the OS threads running Go code (0 = runtime default); makes core-count sweeps scriptable without env juggling")
	flag.Parse()

	if *gomaxprocs < 0 {
		log.Fatalf("-gomaxprocs must be ≥ 0, got %d", *gomaxprocs)
	}
	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}

	if *dumpStore != "" {
		st, err := store.Open(*dumpStore)
		if err != nil {
			log.Fatalf("opening store: %v", err)
		}
		if *dumpArcs {
			out := openOut(*outPath)
			bw := bufio.NewWriterSize(out, 1<<16)
			var werr error
			err := st.Iter(func(u, v int64) bool {
				_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
				return werr == nil
			})
			if err == nil {
				err = werr
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				log.Fatalf("dumping arcs: %v", err)
			}
			return
		}
		g, err := st.LoadGraph()
		if err != nil {
			log.Fatalf("loading store: %v", err)
		}
		if err := g.WriteEdgeList(openOut(*outPath)); err != nil {
			log.Fatalf("writing edge list: %v", err)
		}
		return
	}

	// --- Up-front flag validation: every inconsistency is reported before
	// any file is read or any expander starts. ---
	switch *mode {
	case "serial", "1d", "2d":
	default:
		log.Fatalf("unknown mode %q (want serial, 1d or 2d)", *mode)
	}
	if *mode != "serial" && *ranks < 1 {
		log.Fatalf("-ranks must be ≥ 1, got %d", *ranks)
	}
	if *storeDir != "" && *mode == "serial" && *shards < 1 {
		log.Fatalf("-shards must be ≥ 1, got %d", *shards)
	}
	if *chainSpec != "" {
		if *aPath != "" || *bPath != "" || *power != 0 {
			log.Fatal("-chain replaces -a/-b/-power; drop them")
		}
	} else {
		if *aPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		if *power != 0 {
			if *power < 2 {
				log.Fatalf("-power must be ≥ 2, got %d", *power)
			}
			if *bPath != "" {
				log.Fatal("-power takes only -a; drop -b")
			}
		} else if *bPath == "" {
			flag.Usage()
			os.Exit(2)
		}
	}
	if *clusterPeers != "" && (*storeDir == "" || *mode == "serial") {
		log.Fatal("-cluster-peers requires -store and -mode 1d or 2d")
	}
	if *offset < 0 {
		log.Fatalf("-offset must be ≥ 0, got %d", *offset)
	}
	if *limit < -1 {
		log.Fatalf("-limit must be ≥ 0 (or -1 for no limit), got %d", *limit)
	}
	windowed := *offset != 0 || *limit >= 0
	if windowed && *binary {
		log.Fatal("-offset/-limit write headerless arc windows; the whole-graph -binary format cannot carry one")
	}

	// --- Build the factor chain; every generation path below consumes it. ---
	var ch *core.Chain
	var err error
	switch {
	case *chainSpec != "":
		paths := strings.Split(*chainSpec, ",")
		factors := make([]*graph.Graph, len(paths))
		for i, p := range paths {
			p = strings.TrimSpace(p)
			if p == "" {
				log.Fatalf("-chain has an empty entry in %q", *chainSpec)
			}
			factors[i], err = graph.LoadUndirected(p)
			if err != nil {
				log.Fatalf("loading chain factor %d: %v", i+1, err)
			}
		}
		ch, err = core.NewChain(factors...)
	case *power >= 2:
		var a *graph.Graph
		a, err = graph.LoadUndirected(*aPath)
		if err != nil {
			log.Fatalf("loading A: %v", err)
		}
		ch, err = core.PowerChain(a, *power)
	default:
		var a, b *graph.Graph
		a, err = graph.LoadUndirected(*aPath)
		if err != nil {
			log.Fatalf("loading A: %v", err)
		}
		b, err = graph.LoadUndirected(*bPath)
		if err != nil {
			log.Fatalf("loading B: %v", err)
		}
		ch, err = core.NewChain(a, b)
	}
	if err != nil {
		log.Fatalf("building factor chain: %v", err)
	}
	if *selfLoops {
		ch = ch.WithFullSelfLoops()
	}

	// --- Closed-form expected size, printed before generating; an
	// overflowing count is a refusal, not a wrapped number. ---
	edges, arcs, err := ch.NumEdges()
	if err != nil {
		log.Fatalf("refusing to generate: %v", err)
	}
	fmt.Fprintf(os.Stderr, "expecting |V| = %d, |E| = %d (%d arcs) from %d factor(s)\n",
		ch.NumVertices(), edges, arcs, ch.K())
	fmt.Fprintf(os.Stderr, "running with GOMAXPROCS=%d on %d CPU(s)\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	if *offset > arcs {
		log.Fatalf("-offset %d is beyond the product's %d arcs", *offset, arcs)
	}

	if *clusterPeers != "" {
		runCluster(ch, *mode == "2d", *storeDir, *clusterPeers, *clusterSelf, *ranks, *retries, *stats, *offset, *limit,
			clusterOpts{ledger: *ledgerPath, headRetries: *headRetries,
				hbInterval: *hbInterval, hbDeadline: *hbDeadline, dialTimeout: *dialTimeout})
		return
	}

	if *storeDir != "" && *mode != "serial" {
		// Distributed generate-route-store: each rank streams its owned
		// edges to its own shard, O(batch) memory per rank.
		start := time.Now()
		st, genStats, err := dist.GenerateChainToStoreFrom(ch, *ranks, *storeDir, *mode == "2d", *offset, *limit)
		if err != nil {
			log.Fatalf("generating to store: %v", err)
		}
		if *stats {
			elapsed := time.Since(start)
			fmt.Fprintf(os.Stderr, "streamed %d arcs to %s (%d shards) in %v (%.0f edges/s)\n",
				st.TotalEdges(), *storeDir, st.Shards(), elapsed, float64(st.TotalEdges())/elapsed.Seconds())
			fmt.Fprintf(os.Stderr, "ranks=%d routed=%d edges, %d bytes, %d messages, max stored/rank=%d\n",
				*ranks, genStats.EdgesRouted, genStats.BytesSent, genStats.Messages, genStats.MaxStored())
		}
		return
	}

	if *storeDir != "" {
		// Streaming path: never materialize C. The expansion is the serial
		// chain enumeration (seeked to -offset when windowed); edges go
		// straight to the sharded store.
		start := time.Now()
		w, err := store.NewWriter(*storeDir, ch.NumVertices(), *shards, nil)
		if err != nil {
			log.Fatal(err)
		}
		var count int64
		var werr error
		_, aerr := ch.ArcsFrom(*offset, func(u, v int64) bool {
			if *limit >= 0 && count >= *limit {
				return false
			}
			if err := w.Append(u, v); err != nil {
				werr = err
				return false
			}
			count++
			return true
		})
		if werr == nil {
			werr = aerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		if *stats {
			elapsed := time.Since(start)
			fmt.Fprintf(os.Stderr, "streamed %d arcs to %s (%d shards) in %v (%.0f edges/s)\n",
				count, *storeDir, *shards, elapsed, float64(count)/elapsed.Seconds())
		}
		return
	}

	if windowed {
		// A window of the arc stream is not a whole graph: write headerless
		// "u v" lines. Serial seeks the chain cursor directly; 1d/2d run
		// the engine's seeked stream (1d reproduces the serial order for
		// any -ranks).
		out := openOut(*outPath)
		bw := bufio.NewWriter(out)
		start := time.Now()
		var count int64
		switch *mode {
		case "serial":
			var werr error
			_, aerr := ch.ArcsFrom(*offset, func(u, v int64) bool {
				if *limit >= 0 && count >= *limit {
					return false
				}
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					werr = err
					return false
				}
				count++
				return true
			})
			if werr == nil {
				werr = aerr
			}
			if werr != nil {
				log.Fatalf("writing window: %v", werr)
			}
		default: // 1d, 2d
			_, err := dist.StreamChainFrom(context.Background(), ch, *ranks, *mode == "2d", 0, *offset, *limit, dist.Recovery{},
				func(batch []graph.Edge) error {
					for _, e := range batch {
						if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
							return err
						}
					}
					count += int64(len(batch))
					return nil
				})
			if err != nil {
				log.Fatalf("streaming window: %v", err)
			}
		}
		if err := bw.Flush(); err != nil {
			log.Fatalf("writing window: %v", err)
		}
		if out != os.Stdout {
			if err := out.Close(); err != nil {
				log.Fatalf("closing output: %v", err)
			}
		}
		if *stats {
			elapsed := time.Since(start)
			fmt.Fprintf(os.Stderr, "wrote %d arcs from offset %d in %v (%.0f edges/s)\n",
				count, *offset, elapsed, float64(count)/elapsed.Seconds())
		}
		return
	}

	start := time.Now()
	var c *graph.Graph
	var genStats dist.Stats
	switch *mode {
	case "serial":
		c, err = ch.Materialize()
	case "1d", "2d":
		var res *dist.Result
		res, err = dist.GenerateChain(ch, *ranks, nil, *mode == "2d")
		if err == nil {
			genStats = res.Stats
			c, err = res.Collect()
		}
	}
	if err != nil {
		log.Fatalf("generating product: %v", err)
	}
	elapsed := time.Since(start)

	out := openOut(*outPath)
	if *binary {
		err = c.WriteBinary(out)
	} else {
		err = c.WriteEdgeList(out)
	}
	if err != nil {
		log.Fatalf("writing C: %v", err)
	}
	if out != os.Stdout {
		if err := out.Close(); err != nil {
			log.Fatalf("closing output: %v", err)
		}
	}

	if *stats {
		for i, g := range ch.Factors() {
			fmt.Fprintf(os.Stderr, "A%d: %v\n", i+1, g)
		}
		fmt.Fprintf(os.Stderr, "C: %v\n", c)
		fmt.Fprintf(os.Stderr, "generated in %v (%.0f edges/s)\n",
			elapsed, float64(c.NumArcs())/elapsed.Seconds())
		if *mode != "serial" {
			fmt.Fprintf(os.Stderr, "ranks=%d routed=%d edges, %d bytes, %d messages\n",
				*ranks, genStats.EdgesRouted, genStats.BytesSent, genStats.Messages)
		}
	}
}

// openOut opens the -out file, or stdout when unset.
func openOut(path string) *os.File {
	if path == "" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating output: %v", err)
	}
	return f
}

// clusterOpts bundles the robustness knobs of cluster mode: the head's
// durable run ledger, the workers' head re-dial budget, heartbeat
// tuning, and the dial/handshake timeout.
type clusterOpts struct {
	ledger      string
	headRetries int
	hbInterval  time.Duration
	hbDeadline  time.Duration
	dialTimeout time.Duration
}

// runCluster runs this process's share of a multi-process TCP cluster
// generation of a factor chain. Every peer process runs the same command
// line except for -cluster-self, derives the identical chain plan from
// the shared factor files, and the plan-hash handshake refuses any peer
// whose plan disagrees. Process 0 finalizes the store and prints the
// -stats summary; workers exit silently on success.
//
// The env var KRONLAB_TCP_KILL_FRAMES (> 0) arms the wire-level
// self-SIGKILL after that many outbound batch frames — the chaos hook
// scripts/cluster_local.sh uses to murder a process mid-exchange and
// exercise respawn recovery against a real process tree.
func runCluster(ch *core.Chain, twoD bool, dir, peers string, self, ranks, retries int, stats bool, offset, limit int64, opts clusterOpts) {
	addrs := strings.Split(peers, ",")
	for i, s := range addrs {
		addrs[i] = strings.TrimSpace(s)
	}
	if self < 0 || self >= len(addrs) {
		log.Fatalf("-cluster-self %d out of range for %d peers", self, len(addrs))
	}
	if ranks < len(addrs) {
		log.Fatalf("-ranks %d is fewer than the %d cluster processes", ranks, len(addrs))
	}

	plan, err := dist.PlanChain1D(ch, ranks)
	if twoD {
		plan, err = dist.PlanChain2D(ch, ranks)
	}
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	// The handshake hash must cover the -offset/-limit window: every
	// process must be dumping the same slice, or the shards are garbage.
	// The unwindowed case must NOT slice — the generation path keeps the
	// original plan then (explicit Take values would change the hash).
	if offset != 0 || limit >= 0 {
		plan, err = plan.Slice(offset, limit)
		if err != nil {
			log.Fatalf("slicing plan: %v", err)
		}
	}
	node, err := tcp.NewNode(addrs[self], self, dist.PlanHash(plan))
	if err != nil {
		log.Fatalf("listening on %s: %v", addrs[self], err)
	}
	defer node.Close()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	var faults *dist.FaultPlan
	if kf, _ := strconv.ParseInt(os.Getenv("KRONLAB_TCP_KILL_FRAMES"), 10, 64); kf > 0 {
		faults = &dist.FaultPlan{TCP: transport.TCPFaults{KillAfterFrames: kf}}
	}

	start := time.Now()
	st, genStats, err := dist.GenerateChainClusterToStoreOpts(ctx, ch, dir, twoD, offset, limit,
		dist.ClusterConfig{
			Procs:             transport.SplitRanks(addrs, ranks),
			Self:              self,
			Node:              node,
			LedgerPath:        opts.ledger,
			HeadRetries:       opts.headRetries,
			HeartbeatInterval: opts.hbInterval,
			HeartbeatDeadline: opts.hbDeadline,
			DialTimeout:       opts.dialTimeout,
		},
		dist.Recovery{MaxRetries: retries, Backoff: 250 * time.Millisecond}, faults)
	if err != nil {
		log.Fatalf("cluster generation (proc %d): %v", self, err)
	}
	if st == nil {
		return // worker: the head owns the manifest and the summary
	}
	if stats {
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "streamed %d arcs to %s (%d shards) in %v (%.0f edges/s)\n",
			st.TotalEdges(), dir, st.Shards(), elapsed, float64(st.TotalEdges())/elapsed.Seconds())
		fmt.Fprintf(os.Stderr, "procs=%d ranks=%d routed=%d edges, %d bytes, %d messages, max stored/rank=%d, recovered runs=%d, head generation=%d\n",
			len(addrs), ranks, genStats.EdgesRouted, genStats.BytesSent, genStats.Messages, genStats.MaxStored(), genStats.RecoveredRuns, genStats.HeadGeneration)
	}
}
