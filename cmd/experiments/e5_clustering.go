package main

import (
	"fmt"
	"io"
	"math"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

// runClustering reproduces Thm. 1 and Thm. 2: the vertex clustering
// factor θ_p is confined to [1/3, 1) — a controlled law — while the edge
// factor φ_pq has no lower bound, shown with a disassortative family
// where φ → 0.
func runClustering(w io.Writer) error {
	a := connected(gen.PrefAttach(40, 3, 21))
	b := connected(gen.PrefAttach(40, 3, 22))
	fa, fb := groundtruth.NewFactor(a), groundtruth.NewFactor(b)

	// θ distribution over product vertices.
	thetaHist := map[int64]int64{} // bucketed by percent
	minTheta, maxTheta := math.Inf(1), math.Inf(-1)
	for i := int64(0); i < fa.N(); i++ {
		for k := int64(0); k < fb.N(); k++ {
			if fa.Deg[i] < 2 || fb.Deg[k] < 2 {
				continue
			}
			th := groundtruth.Theta(fa.Deg[i], fb.Deg[k])
			minTheta = math.Min(minTheta, th)
			maxTheta = math.Max(maxTheta, th)
			thetaHist[int64(th*20)]++ // 5%-wide buckets
		}
	}
	fmt.Fprintf(w, "θ_p over all product vertices of PrefAttach(40,3)⊗PrefAttach(40,3):\n")
	fmt.Fprintf(w, "min = %.4f, max = %.4f — confined to [1/3, 1) as Thm. 1 proves. %s\n\n",
		minTheta, maxTheta, check(minTheta >= 1.0/3-1e-12 && maxTheta < 1))
	histogramLines(w, "θ_p histogram (bucket = 0.05, label = bucket index)", thetaHist, 40)

	// φ on a disassortative construction: stars glued tip-to-tip have
	// min-degree-1 ends; use double-stars so all degrees ≥ 2 but highly
	// disassortative, then measure the φ spread.
	ds := doubleStar(24)
	fd := groundtruth.NewFactor(ds)
	minPhi, maxPhi := math.Inf(1), math.Inf(-1)
	ds.Arcs(func(u, v int64) bool {
		if u == v {
			return true
		}
		for _, kl := range [][2]int64{{0, 1}} { // the heavy middle edge of the other factor
			phi := groundtruth.Phi(fd.Deg[u], fd.Deg[v], fd.Deg[kl[0]], fd.Deg[kl[1]])
			minPhi = math.Min(minPhi, phi)
			maxPhi = math.Max(maxPhi, phi)
		}
		return true
	})
	fmt.Fprintf(w, "\nφ_pq on a disassortative double-star factor (Thm. 2's counterexample\n")
	fmt.Fprintf(w, "family): min = %.4f, max = %.4f — the minimum falls toward 0 as hub\n", minPhi, maxPhi)
	fmt.Fprintf(w, "degree grows, so edge clustering admits NO controlled lower bound:\n\n")
	var rows [][]string
	for _, hub := range []int64{4, 16, 64, 256} {
		phi := groundtruth.Phi(2, hub, hub, 2)
		rows = append(rows, []string{fmt.Sprint(hub), fmt.Sprintf("%.5f", phi)})
	}
	table(w, []string{"hub degree d", "φ(2, d, d, 2)"}, rows)

	// Thm. 1 equality spot check against exact clustering on a product.
	small := connected(gen.PrefAttach(14, 2, 23))
	fs := groundtruth.NewFactor(small)
	c, err := core.Product(small, small)
	if err != nil {
		return err
	}
	okCount, total := 0, 0
	ccExact := analytics.VertexClustering(c)
	ix2 := core.NewIndex(fs.N())
	for p := int64(0); p < c.NumVertices(); p++ {
		i, k := ix2.Split(p)
		if fs.Deg[i] < 2 || fs.Deg[k] < 2 {
			continue
		}
		total++
		if math.Abs(ccExact[p]-groundtruth.VertexClusteringAt(fs, fs, p)) < 1e-9 {
			okCount++
		}
	}
	fmt.Fprintf(w, "\nThm. 1 equality η_C(p) = θ_p·η_A(i)·η_B(k) verified exactly on a\n")
	fmt.Fprintf(w, "materialized product at %d/%d eligible vertices. %s\n", okCount, total, check(okCount == total))
	return nil
}

// doubleStar builds two hubs joined by an edge, each with (n−2)/2 leaves,
// leaves also chained to their neighbor leaf so every degree ≥ 2.
func doubleStar(n int64) *graph.Graph {
	var edges []graph.Edge
	edges = append(edges, graph.Edge{U: 0, V: 1})
	half := (n - 2) / 2
	for i := int64(0); i < half; i++ {
		leaf := 2 + i
		edges = append(edges, graph.Edge{U: 0, V: leaf})
		next := 2 + (i+1)%half
		edges = append(edges, graph.Edge{U: leaf, V: next})
	}
	for i := int64(0); i < n-2-half; i++ {
		leaf := 2 + half + i
		edges = append(edges, graph.Edge{U: 1, V: leaf})
		next := 2 + half + (i+1)%(n-2-half)
		edges = append(edges, graph.Edge{U: leaf, V: next})
	}
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
