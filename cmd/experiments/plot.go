package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// scatterPoint is one marked point of an ASCII scatter plot.
type scatterPoint struct {
	X, Y float64
	Mark byte
}

// asciiScatter renders a log-log scatter plot as preformatted text —
// the medium through which Fig. 2's density scatter is reproduced.
func asciiScatter(w io.Writer, title, xlabel, ylabel string, pts []scatterPoint, width, height int) {
	if len(pts) == 0 {
		fmt.Fprintln(w, "(no points)")
		return
	}
	lx := func(v float64) float64 { return math.Log10(v) }
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		if p.X <= 0 || p.Y <= 0 {
			continue
		}
		minX, maxX = math.Min(minX, lx(p.X)), math.Max(maxX, lx(p.X))
		minY, maxY = math.Min(minY, lx(p.Y)), math.Max(maxY, lx(p.Y))
	}
	if math.IsInf(minX, 1) {
		fmt.Fprintln(w, "(no positive points)")
		return
	}
	// Pad degenerate ranges.
	if maxX-minX < 1e-9 {
		minX, maxX = minX-0.5, maxX+0.5
	}
	if maxY-minY < 1e-9 {
		minY, maxY = minY-0.5, maxY+0.5
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		if p.X <= 0 || p.Y <= 0 {
			continue
		}
		cx := int((lx(p.X) - minX) / (maxX - minX) * float64(width-1))
		cy := int((lx(p.Y) - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - cy
		grid[row][cx] = p.Mark
	}
	fmt.Fprintf(w, "```\n%s  (log10 %s vs log10 %s)\n", title, xlabel, ylabel)
	fmt.Fprintf(w, "%8.2f ┐\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "         │%s\n", string(row))
	}
	fmt.Fprintf(w, "%8.2f ┴%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(w, "          %-8.2f%s%8.2f\n```\n", minX, strings.Repeat(" ", width-16), maxX)
}

// histogramLines renders a value→count map as sorted "value count bar"
// lines inside a code fence — the Fig. 1 medium.
func histogramLines(w io.Writer, title string, hist map[int64]int64, barWidth int) {
	keys := make([]int64, 0, len(hist))
	var maxC int64 = 1
	for k, c := range hist {
		keys = append(keys, k)
		if c > maxC {
			maxC = c
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Fprintf(w, "```\n%s\n", title)
	for _, k := range keys {
		c := hist[k]
		bar := int(float64(barWidth) * float64(c) / float64(maxC))
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "%6d | %-*s %d\n", k, barWidth, strings.Repeat("#", bar), c)
	}
	fmt.Fprintln(w, "```")
}

// fmtInt renders ints with thousands separators for readable tables.
func fmtInt(v int64) string {
	s := fmt.Sprint(v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// fmtFloat renders a float compactly in scientific or fixed notation.
func fmtFloat(v float64) string {
	if v == 0 {
		return "0"
	}
	a := math.Abs(v)
	if a >= 0.01 && a < 10000 {
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.3e", v)
}
