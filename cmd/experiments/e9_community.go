package main

import (
	"fmt"
	"io"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

// runCommunity reproduces Sec. VI-A and Fig. 2. The paper: A =
// GraphChallenge groundtruth_20000 (20K vertices, 409K edges, 33
// communities, ρ_in ∈ [3e-2, 1e-1], ρ_out ∈ [2.5e-4, 5.5e-4]);
// C = (A+I)⊗(A+I) has 400M vertices, 83.5B edges and 1089 Kronecker
// communities with ρ_in ∈ [1e-3, 1.2e-2], ρ_out ∈ [5e-7, 3e-6].
//
// Here A is an SBM stand-in with matched size, 33 blocks and the paper's
// density ranges. The 1089 product-community densities come from Thm. 6
// exactly — no materialization — and Thm. 6 itself is validated on a
// materialized product at reduced scale.
func runCommunity(w io.Writer) error {
	// Full scale: 33 blocks of 606 ≈ 20K vertices, internal densities
	// spread over the paper's [3e-2, 1e-1].
	const blocks = 33
	pin := make([]float64, blocks)
	for i := range pin {
		pin[i] = 0.03 + 0.07*float64(i)/float64(blocks-1)
	}
	a, pa := gen.SBMSparse(gen.SBMParams{
		BlockSizes: gen.EqualBlocks(blocks, 606),
		PIn:        0.065, POut: 2.2e-4, Seed: 99, PInBlocks: pin,
	})
	fa := groundtruth.NewFactor(a)
	statsA := analytics.Communities(a, pa)

	nC := fa.N() * fa.N()
	mC := groundtruth.NumEdges(groundtruth.NewFactor(a.WithFullSelfLoops()), groundtruth.NewFactor(a.WithFullSelfLoops()))
	statsC := groundtruth.CommunitiesKron(fa, fa, pa, pa, statsA, statsA)

	minInA, maxInA, minOutA, maxOutA := densityRanges(statsA)
	minInC, maxInC, minOutC, maxOutC := densityRanges(statsC)
	table(w, []string{"", "A", "C = (A+I) ⊗ (A+I)"}, [][]string{
		{"Vertices", fmtInt(fa.N()), fmtInt(nC)},
		{"Edges", fmtInt(a.NumEdges()), fmtInt(mC)},
		{"# comms", fmt.Sprint(len(pa)), fmt.Sprint(len(statsC))},
		{"ρ_in", fmt.Sprintf("[%s, %s]", fmtFloat(minInA), fmtFloat(maxInA)), fmt.Sprintf("[%s, %s]", fmtFloat(minInC), fmtFloat(maxInC))},
		{"ρ_out", fmt.Sprintf("[%s, %s]", fmtFloat(minOutA), fmtFloat(maxOutA)), fmt.Sprintf("[%s, %s]", fmtFloat(minOutC), fmtFloat(maxOutC))},
	})
	fmt.Fprintf(w, "\n(paper: A 20,000 / 408,778 / 33 comms, ρ_in [3e-2,1e-1], ρ_out [2.5e-4,5.5e-4];\n")
	fmt.Fprintf(w, " C 400M / 83.5B / 1089 comms, ρ_in [1e-3,1.2e-2], ρ_out [5e-7,3e-6])\n\n")

	// Fig. 2: scatter of internal vs external density, factor (+) and
	// product (o) communities.
	var pts []scatterPoint
	for _, s := range statsA {
		pts = append(pts, scatterPoint{X: s.RhoOut, Y: s.RhoIn, Mark: '+'})
	}
	for _, s := range statsC {
		pts = append(pts, scatterPoint{X: s.RhoOut, Y: s.RhoIn, Mark: 'o'})
	}
	asciiScatter(w, "Fig. 2: communities of A (+) and of C (o)", "rho_out", "rho_in", pts, 64, 20)
	fmt.Fprintf(w, "\nExpected shape: the product cloud (o) sits down-left of the factor\n")
	fmt.Fprintf(w, "cloud (+) at roughly the squared densities, both separated from the\n")
	fmt.Fprintf(w, "diagonal — communities survive the Kronecker product (Cor. 6/7).\n\n")

	// Bound checks at full scale (no materialization needed).
	boundsOK := true
	for ai := range pa {
		for bi := range pa {
			sa, sb := statsA[ai], statsA[bi]
			pred := groundtruth.CommunityKron(fa, fa, sa, sb)
			if sa.Size > 1 && sb.Size > 1 && pred.RhoIn < groundtruth.RhoInLowerBound(sa, sb)-1e-12 {
				boundsOK = false
			}
			if sa.MOut >= sa.Size && sb.MOut >= sb.Size &&
				pred.RhoOut > groundtruth.RhoOutUpperBound(fa, fa, sa, sb)+1e-12 {
				boundsOK = false
			}
		}
	}
	fmt.Fprintf(w, "Cor. 6 lower bound and (corrected) Cor. 7 upper bound hold for all\n")
	fmt.Fprintf(w, "%d product communities: %s\n\n", len(statsC), check(boundsOK))

	// Reduced scale: validate Thm. 6 counts against a materialized product.
	small, psmall := gen.SBM(gen.SBMParams{BlockSizes: gen.EqualBlocks(4, 40), PIn: 0.3, POut: 0.02, Seed: 7})
	fsm := groundtruth.NewFactor(small)
	c, err := core.ProductWithSelfLoops(small, small)
	if err != nil {
		return err
	}
	statsSmall := analytics.Communities(small, psmall)
	okCount, total := 0, 0
	for ai := range psmall {
		for bi := range psmall {
			total++
			pred := groundtruth.CommunityKron(fsm, fsm, statsSmall[ai], statsSmall[bi])
			sc := core.KronSet(psmall[ai], psmall[bi], fsm.N())
			meas := analytics.Community(c, sc)
			if pred.MIn == meas.MIn && pred.MOut == meas.MOut {
				okCount++
			}
		}
	}
	fmt.Fprintf(w, "Reduced-scale oracle: Thm. 6 m_in/m_out exact on a materialized\n")
	fmt.Fprintf(w, "product (n_C = %s) for %d/%d Kronecker communities. %s\n",
		fmtInt(c.NumVertices()), okCount, total, check(okCount == total))
	return nil
}

func densityRanges(stats []analytics.CommunityStats) (minIn, maxIn, minOut, maxOut float64) {
	first := true
	for _, s := range stats {
		if first {
			minIn, maxIn, minOut, maxOut = s.RhoIn, s.RhoIn, s.RhoOut, s.RhoOut
			first = false
			continue
		}
		if s.RhoIn < minIn {
			minIn = s.RhoIn
		}
		if s.RhoIn > maxIn {
			maxIn = s.RhoIn
		}
		if s.RhoOut < minOut {
			minOut = s.RhoOut
		}
		if s.RhoOut > maxOut {
			maxOut = s.RhoOut
		}
	}
	return minIn, maxIn, minOut, maxOut
}
