package main

import (
	"fmt"
	"io"
	"math"
	"time"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

// runCloseness reproduces Sec. V-B: closeness centrality ζ_C(p) at a
// subset of product vertices from factor hop rows, comparing the direct
// O(n_A·n_B) double sum with the compressed O(h*) histogram form, and
// validating both against BFS on a materialized product at reduced scale.
func runCloseness(w io.Writer) error {
	// Full scale: gnutella-like factor, sample r vertices of C.
	a := gen.GnutellaLike(2019).WithFullSelfLoops()
	fa := groundtruth.NewFactor(a)
	fa.EnsureDistances()
	const samples = 32
	stride := fa.N() * fa.N() / samples

	start := time.Now()
	direct := make([]float64, samples)
	for s := 0; s < samples; s++ {
		direct[s] = groundtruth.ClosenessAt(fa, fa, int64(s)*stride)
	}
	directTime := time.Since(start)

	start = time.Now()
	compressed := make([]float64, samples)
	for s := 0; s < samples; s++ {
		compressed[s] = groundtruth.ClosenessCompressedAt(fa, fa, int64(s)*stride)
	}
	compressedTime := time.Since(start)

	agree := true
	for s := 0; s < samples; s++ {
		if math.Abs(direct[s]-compressed[s]) > 1e-6*math.Max(1, direct[s]) {
			agree = false
		}
	}
	fmt.Fprintf(w, "ζ_C at %d sampled vertices of C = A⊗A (n_C = %s), A = gnutella-like:\n\n",
		samples, fmtInt(fa.N()*fa.N()))
	table(w, []string{"Form", "Cost model", "Time for 32 vertices"}, [][]string{
		{"direct double sum (Thm. 4)", "O(n_A·n_B) per vertex", fmt.Sprint(directTime.Round(time.Millisecond))},
		{"compressed histogram (Sec. V-B)", "O(r·n log n + r²·h*)", fmt.Sprint(compressedTime.Round(time.Microsecond))},
	})
	fmt.Fprintf(w, "\nBoth forms agree on every sample: %s — and the paper's predicted\n", check(agree))
	fmt.Fprintf(w, "speedup of the factored form is the ratio above.\n\n")

	// Reduced scale: validate against BFS on a materialized product.
	small, _ := gen.PrefAttach(40, 2, 88).LargestComponent()
	sl := small.WithFullSelfLoops()
	fs := groundtruth.NewFactor(sl)
	fs.EnsureDistances()
	c, err := core.Product(sl, sl)
	if err != nil {
		return err
	}
	okCount, total := 0, 0
	for p := int64(0); p < c.NumVertices(); p += 17 {
		total++
		exact := analytics.Closeness(c, p)
		pred := groundtruth.ClosenessCompressedAt(fs, fs, p)
		if math.Abs(exact-pred) < 1e-9*math.Max(1, exact) {
			okCount++
		}
	}
	fmt.Fprintf(w, "Reduced-scale oracle: compressed ζ matches BFS-computed ζ on the\n")
	fmt.Fprintf(w, "materialized product at %d/%d sampled vertices. %s\n", okCount, total, check(okCount == total))
	return nil
}
