package main

import (
	"fmt"
	"io"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
	"kronlab/internal/rejection"
)

// runRejection reproduces Sec. IV-C (Def. 8): jointly generate the nested
// family G_C ⊇ G_{C,.99} ⊇ G_{C,.95} ⊇ G_{C,.9}, confirm the surviving
// triangle statistics track the ν³/ν² expectations, and show the degree
// distribution smoothing that motivates rejection as a benchmark hygiene
// measure.
func runRejection(w io.Writer) error {
	a := connected(gen.PrefAttach(40, 3, 121))
	fa := groundtruth.NewFactor(a)
	c, err := core.Product(a, a)
	if err != nil {
		return err
	}
	tauC := groundtruth.GlobalTriangles(fa, fa)
	fmt.Fprintf(w, "C = A⊗A with A = PrefAttach(40,3): %v, τ_C = %s (ground truth).\n\n",
		c, fmtInt(tauC))

	h := rejection.NewHasher(424242)
	levels := []float64{1, 0.99, 0.95, 0.9}
	family := rejection.Family(c, h, levels)
	var rows [][]string
	for i, nu := range levels {
		sub := family[i]
		tau := analytics.GlobalTriangles(sub)
		expect := nu * nu * nu * float64(tauC)
		rel := (float64(tau) - expect) / expect * 100
		rows = append(rows, []string{
			fmt.Sprintf("ν = %.2f", nu),
			fmtInt(sub.NumEdges()),
			fmt.Sprintf("%.1f%%", float64(sub.NumEdges())/float64(c.NumEdges())*100),
			fmtInt(tau),
			fmtInt(int64(expect)),
			fmt.Sprintf("%+.1f%%", rel),
		})
	}
	table(w, []string{"Level", "edges", "kept", "triangles", "E[τ] = ν³·τ_C", "deviation"}, rows)

	// Nestedness check (joint generation property).
	nested := true
	for i := 1; i < len(family); i++ {
		family[i].Arcs(func(u, v int64) bool {
			if !family[i-1].HasArc(u, v) {
				nested = false
				return false
			}
			return true
		})
	}
	fmt.Fprintf(w, "\nFamily is nested (G_{C,ν} ⊆ G_{C,ν'} for ν ≤ ν'): %s\n", check(nested))

	// Degree-distribution smoothing: distinct degree values before/after.
	before := analytics.NewHistogram(c.Degrees())
	after := analytics.NewHistogram(family[3].Degrees()) // ν = 0.9
	fmt.Fprintf(w, "\nDegree-distribution hygiene (Sec. IV-C motivation): the exact\n")
	fmt.Fprintf(w, "Kronecker product only realizes composite degrees d_i·d_k — %d\n", len(before.Keys()))
	fmt.Fprintf(w, "distinct values with holes; after ν = 0.9 rejection the product has\n")
	fmt.Fprintf(w, "%d distinct degrees, filling the gaps. %s\n",
		len(after.Keys()), check(len(after.Keys()) > len(before.Keys())))
	return nil
}
