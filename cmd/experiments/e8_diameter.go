package main

import (
	"fmt"
	"io"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

// runDiameter reproduces Sec. V-C: diameter control. A is a generated
// graph with full self loops and a known large diameter (a ring); B is a
// "real-world-like" undirected graph. Cor. 5 sandwiches diam(C) in
// [max(diam_A, diam_B), max+1], so products with a prescribed diameter
// can be constructed. With self loops on both factors (Cor. 3) the
// diameter is exactly max.
func runDiameter(w io.Writer) error {
	b := connected(gen.MustRMAT(gen.Graph500Params(5, 55))) // small-world B
	fbLoop := groundtruth.NewFactor(b.WithFullSelfLoops())
	fbLoop.EnsureDistances()

	var rows [][]string
	for _, n := range []int64{8, 16, 32, 64} {
		ring := gen.Ring(n).WithFullSelfLoops()
		fr := groundtruth.NewFactor(ring)
		fr.EnsureDistances()

		// Cor. 3 (both factors looped): exact equality.
		c3, err := core.Product(ring, b.WithFullSelfLoops())
		if err != nil {
			return err
		}
		exact3 := analytics.Diameter(c3)
		pred3 := groundtruth.Diameter(fr, fbLoop)

		// Cor. 5 (A looped, B bare): sandwich.
		fb := groundtruth.NewFactor(b)
		fb.EnsureDistances()
		c5, err := core.Product(ring, b)
		if err != nil {
			return err
		}
		exact5 := analytics.Diameter(c5)
		lo, hi := groundtruth.DiameterBounds(fr, fb)

		rows = append(rows, []string{
			fmt.Sprintf("Ring(%d)+I", n),
			fmt.Sprint(fr.Diam),
			fmt.Sprintf("%d = %d %s", pred3, exact3, check(pred3 == exact3)),
			fmt.Sprintf("[%d,%d] ∋ %d %s", lo, hi, exact5, check(exact5 >= lo && exact5 <= hi)),
		})
	}
	fmt.Fprintf(w, "B = RMAT scale-5 LCC (%v), diam(B+I) = %d. A sweeps ring sizes —\n", b, fbLoop.Diam)
	fmt.Fprintf(w, "the product diameter tracks the ring's, demonstrating control:\n\n")
	table(w, []string{"A", "diam(A)", "Cor. 3: diam((A)⊗(B+I)) exact", "Cor. 5: diam(A⊗B) within bounds"}, rows)
	return nil
}
