package main

import (
	"fmt"
	"io"
	"time"

	"kronlab/internal/analytics"
	"kronlab/internal/dist"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
	"kronlab/internal/havoq"
)

// runEccentricity reproduces the paper's Sec. V-A gnutella experiment and
// Fig. 1. The paper: A = undirected LCC of SNAP gnutella08 (6.3K vertices,
// 21K edges) with all self loops, C = A ⊗ A (40M vertices, 1.1B edges);
// the eccentricity histogram of C follows the max law of Cor. 4 and is
// checked against the distributed algorithm of ref [3].
//
// Here (offline environment — DESIGN.md §2): A is a synthetic
// gnutella-like graph at the same scale. The full-size Fig. 1 histogram
// for C is produced from Cor. 4 via the max-law histogram — no
// materialization needed — and the law itself is validated end-to-end at
// reduced scale, where C' is generated distributedly and its exact
// eccentricities computed with the ref-[3]-style pruning algorithm.
func runEccentricity(w io.Writer) error {
	// --- Full scale: the Fig. 1 tables and histograms. ---
	a := gen.GnutellaLike(2019).WithFullSelfLoops()
	fa := groundtruth.NewFactor(a)
	start := time.Now()
	fa.EnsureDistances()
	factorTime := time.Since(start)

	nC := fa.N() * fa.N()
	mC := groundtruth.NumEdges(fa, fa)
	table(w, []string{"Data", "Graph", "Vertices", "Edges"}, [][]string{
		{"gnutella-like (paper: gnutella08)", "A", fmtInt(fa.N()), fmtInt(a.NumEdges())},
		{"", "A ⊗ A", fmtInt(nC), fmtInt(mC)},
	})
	fmt.Fprintf(w, "\n(paper reported A: 6.3K / 21K and A⊗A: 40M / 1.1B; shapes match)\n\n")

	histA := map[int64]int64{}
	for _, e := range fa.Ecc {
		histA[e]++
	}
	histogramLines(w, fmt.Sprintf("Fig. 1 (left): eccentricity histogram of A (diam %d, factor BFS time %v)",
		fa.Diam, factorTime.Round(time.Millisecond)), histA, 40)
	start = time.Now()
	histC := groundtruth.EccentricityHistogram(fa, fa)
	gtTime := time.Since(start)
	histogramLines(w, fmt.Sprintf("Fig. 1 (right): ground-truth eccentricity histogram of C = A ⊗ A (%s vertices, computed in %v via Cor. 4)",
		fmtInt(nC), gtTime.Round(time.Microsecond)), histC, 40)

	// --- Reduced scale: end-to-end validation against the distributed
	// --- eccentricity algorithm (ref [3]) on a materialized product. ---
	small, _ := gen.PrefAttach(60, 2, 77).LargestComponent()
	sl := small.WithFullSelfLoops()
	fs := groundtruth.NewFactor(sl)
	fs.EnsureDistances()
	res, err := dist.Generate1D(sl, sl, 4, nil)
	if err != nil {
		return err
	}
	dg, err := havoq.BuildFromParts(res.NC, 4, res.PerRank)
	if err != nil {
		return err
	}
	start = time.Now()
	eccRes, err := dg.ExactEccentricities()
	if err != nil {
		return err
	}
	distTime := time.Since(start)
	pred := groundtruth.Eccentricities(fs, fs)
	match := true
	for p := range pred {
		if pred[p] != eccRes.Ecc[p] {
			match = false
			break
		}
	}
	fmt.Fprintf(w, "Reduced-scale validation: C' = A'⊗A' with n=%s generated on 4 ranks;\n", fmtInt(res.NC))
	fmt.Fprintf(w, "distributed bound-pruning eccentricity (ref [3] style) used %d BFS\n", eccRes.Sweeps)
	fmt.Fprintf(w, "sweeps instead of %s (took %v) and matches Cor. 4 at every vertex: %s\n\n",
		fmtInt(res.NC), distTime.Round(time.Millisecond), check(match))

	// The Fig. 1 caption's fidelity note: the paper used an approximate
	// algorithm where "30% of vertices may be estimating a value 1
	// greater than actual eccentricity". Reproduce the study with a
	// landmark estimator against the exact values.
	cSmall, err := res.Collect()
	if err != nil {
		return err
	}
	est, sweeps := analytics.ApproxEccentricities(cSmall, 16)
	fracExact, fracOff1 := analytics.EccentricityFidelity(est, eccRes.Ecc)
	lowerBoundOK := true
	for p, e := range est {
		if e != analytics.Unreachable && e > eccRes.Ecc[p] {
			lowerBoundOK = false
		}
	}
	fmt.Fprintf(w, "Fig. 1 caption fidelity study: a %d-sweep landmark estimator gets\n", sweeps)
	fmt.Fprintf(w, "%.1f%% of eccentricities exact and %.1f%% off by one — the same\n",
		100*fracExact, 100*fracOff1)
	fmt.Fprintf(w, "fidelity class the paper reports (\"30%% of vertices may be estimating\n")
	fmt.Fprintf(w, "a value 1 greater\"). Estimates never exceed the truth: %s\n", check(lowerBoundOK))
	return nil
}
