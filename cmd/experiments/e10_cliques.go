package main

import (
	"fmt"
	"io"
	"math"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

// runCliques reproduces Ex. 1: (x_A cliques of size y_A) ⊗ (x_B cliques
// of size y_B) with full self loops yields x_A·x_B disjoint cliques of
// size y_A·y_B, and squaring a stochastic block model yields
// ρ_in(S_C) ≈ ρ0² and ρ_out(S_C) ≈ ρ1².
func runCliques(w io.Writer) error {
	// Part 1: exact clique structure.
	var rows [][]string
	for _, cfg := range [][4]int64{{2, 3, 3, 2}, {3, 4, 2, 5}, {4, 2, 4, 3}} {
		xa, ya, xb, yb := cfg[0], cfg[1], cfg[2], cfg[3]
		a := gen.DisjointCliques(xa, ya)
		b := gen.DisjointCliques(xb, yb)
		c, err := core.ProductWithSelfLoops(a, b)
		if err != nil {
			return err
		}
		_, comps := c.ConnectedComponents()
		// Every component must be a (y_A·y_B)-clique with loops: each
		// vertex degree y_A·y_B and component count x_A·x_B.
		degOK := true
		for v := int64(0); v < c.NumVertices(); v++ {
			if c.Degree(v) != ya*yb {
				degOK = false
				break
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d×K%d ⊗ %d×K%d", xa, ya, xb, yb),
			fmt.Sprintf("%d×K%d", xa*xb, ya*yb),
			fmt.Sprintf("%d comps %s", comps, check(comps == xa*xb)),
			check(degOK),
		})
	}
	table(w, []string{"Factors", "Predicted", "Components", "Clique degrees"}, rows)

	// Part 2: SBM squaring — densities square, up to a finite-size
	// correction. Ex. 1's ρ_out(S_C) ≈ ρ1² needs "factors of significant
	// size": expanding Thm. 6 for equal blocks of size s in an n-vertex
	// factor gives
	//
	//	ρ_out(S_C) ≈ [ρ1²(n−s) + 2ρ1 + 2ρ0ρ1(s−1)] / (n+s),
	//
	// which → ρ1² only when s/n → 0 (i.e. 2ρ0·s/n ≪ ρ1). Both the
	// asymptotic and the corrected predictions are shown.
	rho0, rho1 := 0.3, 0.05
	s, k := int64(10), 60
	a, pa := gen.SBM(gen.SBMParams{BlockSizes: gen.EqualBlocks(k, s), PIn: rho0, POut: rho1, Seed: 31})
	n := float64(a.NumVertices())
	fa := groundtruth.NewFactor(a)
	statsA := analytics.Communities(a, pa)
	statsC := groundtruth.CommunitiesKron(fa, fa, pa, pa, statsA, statsA)
	var sumIn, sumOut float64
	for _, st := range statsC {
		sumIn += st.RhoIn
		sumOut += st.RhoOut
	}
	meanIn := sumIn / float64(len(statsC))
	meanOut := sumOut / float64(len(statsC))
	sf := float64(s)
	corrOut := (rho1*rho1*(n-sf) + 2*rho1 + 2*rho0*rho1*(sf-1)) / (n + sf)
	// Internal density gains a +I loop term the same way:
	// ρ_in(S_C) ≈ ρ0²(s−1)/(s+1) + 2ρ0/(s+1) → ρ0² as s grows.
	corrIn := (rho0*rho0*(sf-1) + 2*rho0) / (sf + 1)
	fmt.Fprintf(w, "\nSBM with %d blocks of %d, ρ0 = %.2f, ρ1 = %.3f squared via (A+I)⊗(A+I):\n",
		k, s, rho0, rho1)
	table(w, []string{"Quantity", "Ex. 1 asymptotic", "finite-size corrected", "Ground truth (Thm. 6)", "OK (±25% of corrected)"}, [][]string{
		{"mean ρ_in(S_C)", fmtFloat(rho0 * rho0), fmtFloat(corrIn), fmtFloat(meanIn),
			check(math.Abs(meanIn-corrIn)/corrIn < 0.25)},
		{"mean ρ_out(S_C)", fmtFloat(rho1 * rho1), fmtFloat(corrOut), fmtFloat(meanOut),
			check(math.Abs(meanOut-corrOut)/corrOut < 0.25)},
	})
	fmt.Fprintf(w, "\nThe gap between the asymptotic ρ1² and the corrected value is the\n")
	fmt.Fprintf(w, "2ρ0ρ1·s/n cross term — the paper's \"factors of significant size\"\n")
	fmt.Fprintf(w, "hypothesis quantified.\n")
	return nil
}
