package main

import (
	"fmt"
	"io"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
	"kronlab/internal/labeled"
)

// runExtensions is an extension experiment covering the lineage the paper
// explicitly points to ("we ... extended these results to the many types
// of directed graphs and labeled graphs" [11]) plus Kronecker powers:
//
//   - directed laws: in/out degree, 3-cycle and transitive-triad counts,
//   - labeled laws: labeled arc counts and the ordered labeled triangle
//     tensor,
//   - power laws: A^{⊗k} versions of the Sec. I table.
func runExtensions(w io.Writer) error {
	// --- Directed laws. ---
	arcsOf := func(n, m int64, seed int64) *graph.Graph {
		// Deterministic pseudo-random DAG-ish directed factor.
		var arcs []graph.Edge
		s := seed
		for i := int64(0); i < m; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			u := (s >> 33) % n
			if u < 0 {
				u = -u
			}
			s = s*6364136223846793005 + 1442695040888963407
			v := (s >> 33) % n
			if v < 0 {
				v = -v
			}
			if u != v {
				arcs = append(arcs, graph.Edge{U: u, V: v})
			}
		}
		g, err := graph.New(n, arcs)
		if err != nil {
			panic(err)
		}
		return g
	}
	da := arcsOf(20, 60, 1)
	db := arcsOf(18, 55, 2)
	fa, fb := groundtruth.NewDirectedFactor(da), groundtruth.NewDirectedFactor(db)
	dc, err := core.Product(da, db)
	if err != nil {
		return err
	}
	exact := analytics.DirectedTriangles(dc)
	cycOK := groundtruth.GlobalCycleTriangles(fa, fb) == exact.CycleGlobal
	transOK := groundtruth.GlobalTransitive(fa, fb) == exact.TransGlobal
	perVertexOK := true
	for p := int64(0); p < dc.NumVertices(); p++ {
		if groundtruth.CycleTrianglesAt(fa, fb, p) != exact.CycleVertex[p] {
			perVertexOK = false
			break
		}
	}
	table(w, []string{"Directed law", "Predicted", "Measured", "OK"}, [][]string{
		{"global 3-cycles τ° = 3·τ°_A·τ°_B", fmtInt(groundtruth.GlobalCycleTriangles(fa, fb)), fmtInt(exact.CycleGlobal), check(cycOK)},
		{"global transitive triads T = T_A·T_B", fmtInt(groundtruth.GlobalTransitive(fa, fb)), fmtInt(exact.TransGlobal), check(transOK)},
		{"per-vertex cycle counts", "vector", "vector", check(perVertexOK)},
	})

	// --- Labeled laws. ---
	lgA := mustLabeled(gen.ER(14, 0.35, 3), 2, 4)
	lgB := mustLabeled(gen.ER(12, 0.4, 5), 3, 6)
	lc, err := labeled.Product(lgA, lgB)
	if err != nil {
		return err
	}
	arcPred := labeled.KronArcCounts(lgA, lgB)
	arcGot := lc.ArcCounts()
	arcOK := true
	for x := range arcGot {
		for y := range arcGot[x] {
			if arcGot[x][y] != arcPred[x][y] {
				arcOK = false
			}
		}
	}
	triPred := labeled.KronOrderedTriangles(lgA, lgB)
	triGot := lc.OrderedTriangles()
	triOK := true
	for x := range triGot {
		for y := range triGot[x] {
			for z := range triGot[x][y] {
				if triGot[x][y][z] != triPred[x][y][z] {
					triOK = false
				}
			}
		}
	}
	fmt.Fprintln(w)
	table(w, []string{"Labeled law", "Size", "OK"}, [][]string{
		{"arc counts by label pair multiply", fmt.Sprintf("%d×%d classes", lc.K, lc.K), check(arcOK)},
		{"ordered labeled triangle tensor multiplies", fmt.Sprintf("%d³ entries", lc.K), check(triOK)},
	})

	// --- Power laws A^{⊗3}. ---
	pg := gen.PrefAttach(7, 2, 7)
	pf := groundtruth.NewFactor(pg)
	const k = 3
	pc, err := core.KronPower(pg, k)
	if err != nil {
		return err
	}
	pcTri := analytics.Triangles(pc)
	powM, err := groundtruth.PowerNumEdges(pf, k)
	if err != nil {
		return err
	}
	powOK := powM == pc.NumEdges() &&
		groundtruth.PowerGlobalTriangles(pf, k) == pcTri.Global
	fmt.Fprintln(w)
	table(w, []string{"Power law (A^{⊗3})", "Predicted", "Measured", "OK"}, [][]string{
		{"m = 2^{k−1}·m_A^k", fmtInt(powM), fmtInt(pc.NumEdges()), check(powOK)},
		{"τ = 6^{k−1}·τ_A^k", fmtInt(groundtruth.PowerGlobalTriangles(pf, k)), fmtInt(pcTri.Global), check(powOK)},
	})
	fmt.Fprintf(w, "\n(Extension beyond the paper's evaluation; laws follow by induction\n")
	fmt.Fprintf(w, "from the two-factor results and are unit-tested per entry.)\n")
	return nil
}

// mustLabeled assigns deterministic labels v mod k to g's vertices.
func mustLabeled(g *graph.Graph, k int64, _ int64) *labeled.Graph {
	labels := make([]int64, g.NumVertices())
	for v := range labels {
		labels[v] = int64(v) % k
	}
	lg, err := labeled.New(g, labels, k)
	if err != nil {
		panic(err)
	}
	return lg
}
