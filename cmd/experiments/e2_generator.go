package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"kronlab/internal/dist"
	"kronlab/internal/gen"
	"kronlab/internal/store"
)

// runGenerator reproduces the Sec. III generator cost model: generation
// time O(|E_A|·|E_B|/R), per-rank storage O(|E_A|/R + |E_B| + owned), and
// the communication volume of owner routing, swept over rank counts. The
// paper's CORAL2 anecdote (trillion edges on 1.57M cores) becomes an
// edges/second throughput row at laptop scale — the shape to check is
// that work per rank, not wall clock on one OS thread, scales as 1/R.
func runGenerator(w io.Writer) error {
	a := gen.MustRMAT(gen.Graph500Params(7, 101))
	b := gen.MustRMAT(gen.Graph500Params(7, 202))
	fmt.Fprintf(w, "Factors: two Graph500 RMAT scale-7 graphs (paper used two scale-18\n")
	fmt.Fprintf(w, "Graph500 graphs for the trillion-edge CORAL2 run).\n")
	fmt.Fprintf(w, "A: %v, B: %v, |arcs_C| = %s.\n\n", a, b, fmtInt(a.NumArcs()*b.NumArcs()))

	var rows [][]string
	for _, r := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		res, err := dist.Generate1D(a, b, r, nil)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		st := res.Stats
		// Ideal per-rank expansion work vs the engine's measured per-rank
		// counters: the max/ideal skew is the Rem. 1 load-balance signal.
		ideal := st.EdgesGenerated / int64(r)
		skew := 1.0
		if ideal > 0 {
			skew = float64(st.MaxGenerated()) / float64(ideal)
		}
		rows = append(rows, []string{
			fmt.Sprint(r),
			fmtInt(st.EdgesGenerated),
			fmtInt(ideal),
			fmt.Sprintf("%.2f", skew),
			fmtInt(res.MaxRankStorage()),
			fmtInt(st.EdgesRouted),
			fmtInt(st.BytesSent),
			fmt.Sprint(st.MaxInboxDepth),
			fmt.Sprintf("%.1fM/s", float64(st.EdgesGenerated)/elapsed.Seconds()/1e6),
		})
	}
	table(w, []string{"R", "edges generated", "ideal edges/rank", "gen skew max/ideal", "max stored/rank", "edges routed", "bytes sent", "max inbox", "throughput"}, rows)
	fmt.Fprintf(w, "\nExpected shape: edges generated is constant (= |arcs_A|·|arcs_B|),\n")
	fmt.Fprintf(w, "ideal per-rank work falls as 1/R, and routed volume approaches\n")
	fmt.Fprintf(w, "(1 − 1/R) of generated edges under a hashed owner map.\n\n")

	// Generation straight to a sharded on-disk store (the "if edges are
	// being stored" path of Sec. III) — O(batch) memory per rank, under
	// both decompositions through the same engine.
	for _, mode := range []struct {
		name string
		gen  func(string) (*store.Store, dist.Stats, error)
	}{
		{"1D", func(dir string) (*store.Store, dist.Stats, error) { return dist.Generate1DToStore(a, b, 8, dir) }},
		{"2D", func(dir string) (*store.Store, dist.Stats, error) { return dist.Generate2DToStore(a, b, 8, dir) }},
	} {
		dir, err := os.MkdirTemp("", "kron-e2-store")
		if err != nil {
			return err
		}
		start := time.Now()
		st, stats, err := mode.gen(dir)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%s generate-to-disk on 8 ranks: %s edges streamed to %d shards in %v\n",
			mode.name, fmtInt(st.TotalEdges()), st.Shards(), elapsed.Round(time.Millisecond))
		fmt.Fprintf(w, "(%.1fM edges/s; max stored/rank %s; complete: %s)\n",
			float64(st.TotalEdges())/elapsed.Seconds()/1e6,
			fmtInt(stats.MaxStored()),
			check(st.TotalEdges() == stats.EdgesGenerated))
		os.RemoveAll(dir)
	}
	return nil
}
