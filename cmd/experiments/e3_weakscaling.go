package main

import (
	"context"
	"fmt"
	"io"

	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

// runWeakScaling reproduces Rem. 1: with only A's edges distributed, at
// most |arcs_A| ranks can do useful work; the 2D decomposition keeps up
// to |arcs_A|·|arcs_B| ranks busy. On a single machine this is exposed as
// effective parallelism (ranks with nonzero work) and the max per-rank
// expansion work relative to ideal.
func runWeakScaling(w io.Writer) error {
	// A deliberately tiny A (few arcs) against a larger B: the 1D wall.
	a := gen.Ring(16) // 32 arcs
	b := gen.MustRMAT(gen.Graph500Params(7, 303))
	fmt.Fprintf(w, "A: %v (%d arcs — the 1D wall), B: %v (%d arcs).\n\n",
		a, a.NumArcs(), b, b.NumArcs())

	var rows [][]string
	for _, r := range []int{1, 8, 32, 64, 128, 256} {
		e1 := dist.EffectiveParallelism1D(a, r)
		e2 := dist.EffectiveParallelism2D(a, b, r)
		// Max per-rank work under each decomposition.
		work1 := maxRankWork1D(a.NumArcs(), b.NumArcs(), r)
		work2 := maxRankWork2D(a.NumArcs(), b.NumArcs(), r)
		ideal := a.NumArcs() * b.NumArcs() / int64(r)
		rows = append(rows, []string{
			fmt.Sprint(r), fmtInt(ideal),
			fmt.Sprint(e1), fmtInt(work1),
			fmt.Sprint(e2), fmtInt(work2),
		})
	}
	table(w, []string{"R", "ideal work/rank", "busy ranks (1D)", "max work/rank (1D)", "busy ranks (2D)", "max work/rank (2D)"}, rows)
	fmt.Fprintf(w, "\nExpected shape (paper's Rem. 1): 1D busy ranks plateau at |arcs_A| = %d\n", a.NumArcs())
	fmt.Fprintf(w, "so 1D max work/rank stops shrinking, while 2D keeps scaling toward\n")
	fmt.Fprintf(w, "O(|E_C|) ranks. Verified against actual count-only engine runs:\n\n")

	var rows2 [][]string
	for _, r := range []int{32, 128} {
		for _, twoD := range []bool{false, true} {
			// Run the engine's count-only sink directly so the measured
			// per-rank expansion counters confirm the predicted skew.
			var plan dist.Plan
			var err error
			if twoD {
				plan, err = dist.Plan2D(a, b, r)
			} else {
				plan, err = dist.Plan1D(a, b, r)
			}
			if err != nil {
				return err
			}
			sink := &dist.CountSink{}
			st, err := dist.Run(context.Background(), dist.Config{Plan: plan, Sink: sink})
			if err != nil {
				return err
			}
			mode := "1D"
			if twoD {
				mode = "2D"
			}
			rows2 = append(rows2, []string{
				fmt.Sprint(r), mode, fmtInt(sink.Total()),
				fmtInt(st.MaxGenerated()),
				check(sink.Total() == a.NumArcs()*b.NumArcs()),
			})
		}
	}
	table(w, []string{"R", "mode", "edges generated", "measured max work/rank", "complete"}, rows2)

	// Factor chains: for A⊗T^{⊗(k-1)} the head A stays the rank-split
	// dimension, so the 1D wall is |arcs_A| at every depth k while the
	// lazy tail fold multiplies per-rank work by |arcs_T| per level.
	tail := gen.PrefAttach(6, 2, 305)
	const rChain = 64
	fmt.Fprintf(w, "\nChain depth: A ⊗ T^(k-1) with T: %v (%d arcs). Busy ranks stay capped\n",
		tail, tail.NumArcs())
	fmt.Fprintf(w, "at |arcs_A| = %d independent of k (R = %d):\n\n", a.NumArcs(), rChain)

	var rows3 [][]string
	for k := 2; k <= 4; k++ {
		factors := []*graph.Graph{a}
		for j := 1; j < k; j++ {
			factors = append(factors, tail)
		}
		ch, err := core.NewChain(factors...)
		if err != nil {
			return err
		}
		wantArcs, err := ch.NumArcs()
		if err != nil {
			return err
		}
		plan, err := dist.PlanChain1D(ch, rChain)
		if err != nil {
			return err
		}
		sink := &dist.CountSink{}
		st, err := dist.Run(context.Background(), dist.Config{Plan: plan, Sink: sink})
		if err != nil {
			return err
		}
		rows3 = append(rows3, []string{
			fmt.Sprint(k), fmtInt(wantArcs),
			fmt.Sprint(dist.EffectiveParallelism1D(a, rChain)),
			fmtInt(st.MaxGenerated()),
			check(sink.Total() == wantArcs),
		})
	}
	table(w, []string{"k", "arcs", "busy ranks (1D)", "measured max work/rank", "complete"}, rows3)
	return nil
}

// maxRankWork1D returns the largest per-rank expansion work under 1D
// block partitioning of A's arcs: ceil(arcsA/R)·arcsB.
func maxRankWork1D(arcsA, arcsB int64, r int) int64 {
	per := (arcsA + int64(r) - 1) / int64(r)
	return per * arcsB
}

// maxRankWork2D returns the largest per-rank work under the Rem. 1 grid
// with round-robin tile assignment.
func maxRankWork2D(arcsA, arcsB int64, r int) int64 {
	grid := dist.NewGrid2D(r)
	perA := (arcsA + int64(grid.RHalf) - 1) / int64(grid.RHalf)
	perB := (arcsB + int64(grid.Q) - 1) / int64(grid.Q)
	tilesPerRank := (grid.Tiles() + r - 1) / r
	return perA * perB * int64(tilesPerRank)
}
