package main

import (
	"fmt"
	"io"

	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

// runScalingLaws reproduces the Sec. I scaling-law table: for several
// factor families, every law is evaluated from the factors and checked
// against exact analytics on the materialized product.
func runScalingLaws(w io.Writer) error {
	type pair struct {
		name   string
		a, b   *graph.Graph
		pa, pb [][]int64
	}
	sbmA, partA := gen.SBM(gen.SBMParams{BlockSizes: gen.EqualBlocks(3, 8), PIn: 0.7, POut: 0.1, Seed: 3})
	sbmB, partB := gen.SBM(gen.SBMParams{BlockSizes: gen.EqualBlocks(2, 9), PIn: 0.6, POut: 0.12, Seed: 4})
	pairs := []pair{
		{"ER(14,.35) ⊗ ER(12,.4)", gen.ER(14, 0.35, 1), gen.ER(12, 0.4, 2),
			[][]int64{{0, 1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12, 13}},
			[][]int64{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}}},
		{"SBM(3×8) ⊗ SBM(2×9)", sbmA, sbmB, partA, partB},
		{"PrefAttach(15,2) ⊗ RMAT(4)", connected(gen.PrefAttach(15, 2, 5)), connected(gen.MustRMAT(gen.Graph500Params(4, 6))),
			[][]int64{{0, 1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12, 13, 14}}, nil},
		{"Ring(10) ⊗ Clique(5)", gen.Ring(10), gen.Clique(5),
			[][]int64{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}},
			[][]int64{{0, 1, 2, 3, 4}}},
	}
	fmt.Fprintf(w, "Each row of the paper's table, predicted from factors and measured\n")
	fmt.Fprintf(w, "exactly on the materialized product. Equality laws must match exactly;\n")
	fmt.Fprintf(w, "bound laws (≳, ≲) must hold as inequalities.\n\n")
	for _, pr := range pairs {
		a, b := groundtruth.NewFactor(pr.a), groundtruth.NewFactor(pr.b)
		pb := pr.pb
		pa := pr.pa
		if pa != nil && pb == nil {
			// Second partition missing → trivial one-set partition.
			all := make([]int64, pr.b.NumVertices())
			for i := range all {
				all[i] = int64(i)
			}
			pb = [][]int64{all}
		}
		rows, err := groundtruth.ScalingLaws(a, b, pa, pb)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "### %s\n\n", pr.name)
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Quantity, r.Law, r.Predicted, r.Measured, check(r.OK)})
		}
		table(w, []string{"Quantity", "Law", "Predicted", "Measured", "OK"}, cells)
		fmt.Fprintln(w)
	}
	return nil
}

// connected extracts the largest connected component so distance laws are
// finite.
func connected(g *graph.Graph) *graph.Graph {
	lcc, _ := g.LargestComponent()
	return lcc
}
