package main

import (
	"fmt"
	"io"
	"time"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

// runTriangles reproduces Sec. IV-A: ground-truth vertex and edge
// triangle counts for C = (A+I)⊗(B+I) from Cor. 1 and (corrected) Cor. 2,
// validated against exact counting on the materialized product, with the
// sublinear-vs-linear cost contrast the paper advertises.
func runTriangles(w io.Writer) error {
	a := connected(gen.PrefAttach(60, 3, 11))
	b := connected(gen.MustRMAT(gen.Graph500Params(6, 12)))
	fa, fb := groundtruth.NewFactor(a), groundtruth.NewFactor(b)

	start := time.Now()
	c, err := core.ProductWithSelfLoops(a, b)
	if err != nil {
		return err
	}
	genTime := time.Since(start)

	fmt.Fprintf(w, "A: %v, B: %v → C = (A+I)⊗(B+I): %v (materialized in %v).\n\n",
		a, b, c, genTime.Round(time.Millisecond))

	// Exact counting on C (the expensive oracle).
	start = time.Now()
	exact := analytics.Triangles(c)
	exactTime := time.Since(start)

	// Ground truth from factors (Cor. 1 vector + aggregate).
	start = time.Now()
	pred := groundtruth.VertexTrianglesFullLoops(fa, fb)
	tau := groundtruth.GlobalTrianglesFullLoops(fa, fb)
	gtTime := time.Since(start)

	vertexOK := true
	for p := range pred {
		if pred[p] != exact.Vertex[p] {
			vertexOK = false
			break
		}
	}
	edgeOK := true
	var checkedEdges int64
	idx := int64(-1)
	c.Arcs(func(u, v int64) bool {
		idx++
		if u == v {
			return true
		}
		checkedEdges++
		if groundtruth.EdgeTrianglesFullLoopsAt(fa, fb, u, v) != exact.Arc[idx] {
			edgeOK = false
			return false
		}
		return true
	})

	table(w, []string{"Quantity", "Ground truth (factors)", "Exact (product)", "OK"}, [][]string{
		{"global triangles τ_C", fmtInt(tau), fmtInt(exact.Global), check(tau == exact.Global)},
		{"vertex counts t_p (all)", fmt.Sprintf("%d values", len(pred)), "counted", check(vertexOK)},
		{"edge counts Δ_pq (all arcs)", fmtInt(checkedEdges), "counted", check(edgeOK)},
	})
	fmt.Fprintf(w, "\nCost contrast (the paper's O(|E_C|^{p/2}) claim): ground truth from\n")
	fmt.Fprintf(w, "factors took %v; exact counting on C took %v (%.0fx).\n",
		gtTime.Round(time.Microsecond), exactTime.Round(time.Microsecond),
		float64(exactTime)/float64(gtTime))
	fmt.Fprintf(w, "\nNote: the printed Cor. 2 overcounts the δ(i,j)/δ(k,l) diagonal cases\n")
	fmt.Fprintf(w, "by 2; this implementation uses the corrected appendix expansion (see\n")
	fmt.Fprintf(w, "groundtruth.EdgeTrianglesFullLoopsAt), which is what validates above.\n")
	return nil
}
