package main

import (
	"fmt"
	"io"
	"math"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/spectral"
)

// runSpectral is an extension experiment (beyond the paper's evaluation
// section) making its Sec. IV-C warning concrete: "due to the Kronecker
// structure a spectral method can efficiently solve for large swathes of
// the eigenspace of C". We eigen-solve only the factors, predict the full
// product spectrum, and recover the product's exact triangle count from
// Σλ³/6 — an algorithm that exploits the structure "without the
// developer even realizing it".
func runSpectral(w io.Writer) error {
	a := gen.ER(24, 0.3, 51)
	b := gen.PrefAttach(20, 2, 52)
	eigA, err := spectral.AdjacencyEig(a)
	if err != nil {
		return err
	}
	eigB, err := spectral.AdjacencyEig(b)
	if err != nil {
		return err
	}
	c, err := core.Product(a, b)
	if err != nil {
		return err
	}
	// Full product spectrum from factor spectra.
	pred := spectral.KronEigenvalues(eigA, eigB)
	got, err := spectral.AdjacencyEig(c)
	if err != nil {
		return err
	}
	maxDiff := 0.0
	for i := range got {
		if d := math.Abs(got[i] - pred[i]); d > maxDiff {
			maxDiff = d
		}
	}
	lam, err := spectral.PowerIteration(a, b, 300)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Factors ER(24,.3) and PrefAttach(20,2); C has %d vertices.\n\n", c.NumVertices())
	table(w, []string{"Quantity", "From factors only", "Direct on product", "OK"}, [][]string{
		{"full spectrum (480 eigenvalues)", "λᵢ·μⱼ products", fmt.Sprintf("max |Δλ| = %.2e", maxDiff), check(maxDiff < 1e-6)},
		{"λmax(C) via implicit power iteration", fmtFloat(lam), fmtFloat(got[len(got)-1]), check(math.Abs(lam-got[len(got)-1]) < 1e-3)},
		{"triangles τ_C = Σλ³/6", fmtFloat(spectral.SpectralTriangles(pred)), fmtInt(analytics.GlobalTriangles(c)),
			check(math.Abs(spectral.SpectralTriangles(pred)-float64(analytics.GlobalTriangles(c))) < 0.5)},
	})
	fmt.Fprintf(w, "\nThe implicit power iteration uses y = A·X·Bᵗ (never forming C):\n")
	fmt.Fprintf(w, "cost O(arcs_A·n_B + n_A·arcs_B) per step instead of O(arcs_C).\n")
	fmt.Fprintf(w, "This is precisely why Sec. IV-C recommends probabilistic edge\n")
	fmt.Fprintf(w, "rejection for good-faith benchmarks (experiment E11).\n")
	return nil
}
