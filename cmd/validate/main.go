// Command validate checks a claimed Kronecker product against its factors
// using the ground-truth battery of internal/validate — the paper's HPC
// validation workflow as a tool: generate C with the system under test,
// then
//
//	validate -a A.txt -b B.txt -c C.txt [-self-loops] [-samples N]
//
// Exit status 0 means every check passed; 1 means at least one ground
// truth was violated (the report on stdout names the first discrepancy).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kronlab/internal/graph"
	"kronlab/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")

	aPath := flag.String("a", "", "edge-list file for factor A (required)")
	bPath := flag.String("b", "", "edge-list file for factor B (required)")
	cPath := flag.String("c", "", "edge-list file for the claimed product C (required)")
	selfLoops := flag.Bool("self-loops", false, "C claims to be (A+I) ⊗ (B+I)")
	samples := flag.Int("samples", 64, "spot-check sample count")
	skipDist := flag.Bool("skip-distances", false, "skip BFS-based distance spot checks")
	flag.Parse()

	if *aPath == "" || *bPath == "" || *cPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	load := func(path string) *graph.Graph {
		g, err := graph.LoadUndirected(path)
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
		return g
	}
	a, b, c := load(*aPath), load(*bPath), load(*cPath)

	rep, err := validate.Run(a, b, c, validate.Options{
		SelfLoops:     *selfLoops,
		Samples:       *samples,
		SkipDistances: *skipDist,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	if !rep.OK() {
		fmt.Printf("FAILED: %d of %d checks\n", len(rep.Failures()), len(rep.Checks))
		os.Exit(1)
	}
	fmt.Printf("OK: all %d checks passed\n", len(rep.Checks))
}
