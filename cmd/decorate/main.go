// Command decorate emits a per-vertex ground-truth feature table for the
// Kronecker product C = (A+I) ⊗ (B+I) — the paper's introduction use
// case: "incorporating various local graph topological properties as
// features in machine learning tasks". Every feature is computed from the
// factors alone (degree, triangle count, clustering coefficient,
// eccentricity, closeness centrality), so decorating even a billion-
// vertex product streams at factor cost.
//
// Usage:
//
//	decorate -a A.txt -b B.txt [-from 0] [-count 1000] [-format csv|tsv]
//
// The output has one row per product vertex p in [from, from+count):
//
//	vertex,i,k,degree,triangles,clustering,eccentricity,closeness
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"kronlab/internal/core"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("decorate: ")

	aPath := flag.String("a", "", "edge-list file for factor A (required)")
	bPath := flag.String("b", "", "edge-list file for factor B (required)")
	from := flag.Int64("from", 0, "first product vertex to decorate")
	count := flag.Int64("count", 1000, "number of product vertices to decorate")
	format := flag.String("format", "csv", "output format: csv or tsv")
	flag.Parse()

	if *aPath == "" || *bPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	sep := ","
	switch *format {
	case "csv":
	case "tsv":
		sep = "\t"
	default:
		log.Fatalf("unknown format %q", *format)
	}

	ga, err := graph.LoadUndirected(*aPath)
	if err != nil {
		log.Fatalf("loading A: %v", err)
	}
	gb, err := graph.LoadUndirected(*bPath)
	if err != nil {
		log.Fatalf("loading B: %v", err)
	}
	if ga.NumSelfLoops() > 0 || gb.NumSelfLoops() > 0 {
		log.Fatal("factors must be loop-free; the +I is added internally (Cor. 1/2 hypothesis)")
	}

	// Loop-free factors feed the triangle formulas; looped factors feed
	// the distance formulas (Thm. 3 hypothesis).
	fa, fb := groundtruth.NewFactor(ga), groundtruth.NewFactor(gb)
	fal := groundtruth.NewFactor(ga.WithFullSelfLoops())
	fbl := groundtruth.NewFactor(gb.WithFullSelfLoops())
	fal.EnsureDistances()
	fbl.EnsureDistances()

	nC := fa.N() * fb.N()
	lo, hi := *from, *from+*count
	if lo < 0 || lo >= nC {
		log.Fatalf("-from %d outside [0,%d)", lo, nC)
	}
	if hi > nC {
		hi = nC
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "vertex%si%sk%sdegree%striangles%sclustering%seccentricity%scloseness\n",
		sep, sep, sep, sep, sep, sep, sep)
	ix := core.NewIndex(fb.N())
	for p := lo; p < hi; p++ {
		i, k := ix.Split(p)
		deg := (fa.Deg[i] + 1) * (fb.Deg[k] + 1) // (A+I)⊗(B+I) degree
		tri := groundtruth.VertexTrianglesFullLoopsAt(fa, fb, p)
		// Clustering of the looped product vertex, from its own degree
		// and triangle count (loops excluded from both by convention).
		simpleDeg := deg - 1 // neighbors excluding the self loop
		cc := math.NaN()
		if simpleDeg >= 2 {
			cc = 2 * float64(tri) / float64(simpleDeg*(simpleDeg-1))
		}
		ecc := groundtruth.EccentricityAt(fal, fbl, p)
		clo := groundtruth.ClosenessCompressedAt(fal, fbl, p)
		fmt.Fprintf(w, "%d%s%d%s%d%s%d%s%d%s%.6g%s%d%s%.6g\n",
			p, sep, i, sep, k, sep, deg, sep, tri, sep, cc, sep, ecc, sep, clo)
	}
}
