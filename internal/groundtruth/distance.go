package groundtruth

import (
	"kronlab/internal/analytics"
	"kronlab/internal/core"
)

// HopsAt returns the ground-truth hop count hops_C(p,q) for
// C = A ⊗ B where both factors have full self loops (Thm. 3):
// hops_C(p,q) = max{hops_A(i,j), hops_B(k,l)}. If either factor pair is
// unreachable, so is the product pair.
func HopsAt(a, b *Factor, p, q int64) int64 {
	a.EnsureDistances()
	b.EnsureDistances()
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	j, l := ix.Split(q)
	return maxHops(a.Hops[i][j], b.Hops[k][l])
}

func maxHops(ha, hb int64) int64 {
	if ha == analytics.Unreachable || hb == analytics.Unreachable {
		return analytics.Unreachable
	}
	if ha > hb {
		return ha
	}
	return hb
}

// HopsBoundsAt returns the Thm. 5 sandwich for C = A ⊗ B when A has full
// self loops and B is merely undirected:
//
//	max{hops_A, hops_B} ≤ hops_C(p,q) ≤ max{hops_A, hops_B} + 1.
func HopsBoundsAt(a, b *Factor, p, q int64) (lo, hi int64) {
	a.EnsureDistances()
	b.EnsureDistances()
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	j, l := ix.Split(q)
	m := maxHops(a.Hops[i][j], b.Hops[k][l])
	if m == analytics.Unreachable {
		return analytics.Unreachable, analytics.Unreachable
	}
	return m, m + 1
}

// EccentricityAt returns ε_C(p) = max{ε_A(i), ε_B(k)} for full-self-loop
// factors (Cor. 4).
func EccentricityAt(a, b *Factor, p int64) int64 {
	a.EnsureDistances()
	b.EnsureDistances()
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	return maxHops(a.Ecc[i], b.Ecc[k])
}

// Eccentricities materializes ε_C for every product vertex — linear in
// n_C from sublinear factor storage, as the paper advertises.
func Eccentricities(a, b *Factor) []int64 {
	a.RequireFullSelfLoops("Cor. 4")
	b.RequireFullSelfLoops("Cor. 4")
	a.EnsureDistances()
	b.EnsureDistances()
	ix := core.NewIndex(b.N())
	out := make([]int64, a.N()*b.N())
	for i := int64(0); i < a.N(); i++ {
		for k := int64(0); k < b.N(); k++ {
			out[ix.Gamma(i, k)] = maxHops(a.Ecc[i], b.Ecc[k])
		}
	}
	return out
}

// Diameter returns diam(G_C) = max{diam(G_A), diam(G_B)} for
// full-self-loop factors (Cor. 3).
func Diameter(a, b *Factor) int64 {
	a.EnsureDistances()
	b.EnsureDistances()
	return maxHops(a.Diam, b.Diam)
}

// DiameterBounds returns the Cor. 5 sandwich for A with full self loops
// and B merely undirected:
// max{diam_A, diam_B} ≤ diam(G_C) ≤ max{diam_A, diam_B} + 1.
func DiameterBounds(a, b *Factor) (lo, hi int64) {
	a.EnsureDistances()
	b.EnsureDistances()
	m := maxHops(a.Diam, b.Diam)
	if m == analytics.Unreachable {
		return analytics.Unreachable, analytics.Unreachable
	}
	return m, m + 1
}

// ClosenessAt returns ζ_C(p) by the direct double sum of Thm. 4:
// ζ_C(p) = Σ_j Σ_l 1/max{hops_A(i,j), hops_B(k,l)}, needing only rows
// hops_A(i,·) and hops_B(k,·) — O(n_A+n_B) storage, O(n_A·n_B) time.
// Unreachable pairs contribute 0.
func ClosenessAt(a, b *Factor, p int64) float64 {
	a.EnsureDistances()
	b.EnsureDistances()
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	rowA, rowB := a.Hops[i], b.Hops[k]
	var s float64
	for _, ha := range rowA {
		if ha == analytics.Unreachable {
			continue
		}
		for _, hb := range rowB {
			if hb == analytics.Unreachable {
				continue
			}
			h := ha
			if hb > h {
				h = hb
			}
			s += 1 / float64(h)
		}
	}
	return s
}

// ClosenessCompressedAt returns ζ_C(p) via the paper's compressed
// histogram form (Sec. V-B): with per-row hop histograms the double sum
// factors as
//
//	ζ_C(p) = Σ_{h=1}^{h*} count(h)/h,
//	count(h) = cntA[h]·cumB[h] + cumA[h−1]·cntB[h],
//
// where cnt[h] is the number of row entries equal to h and cum[h] the
// number ≤ h. Cost O(h*) per vertex after O(n) histogramming, versus
// O(n_A·n_B) for the direct sum.
func ClosenessCompressedAt(a, b *Factor, p int64) float64 {
	a.EnsureDistances()
	b.EnsureDistances()
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	hstar := maxHops(a.Diam, b.Diam)
	if hstar == analytics.Unreachable {
		// Disconnected factors: fall back to the direct sum, which
		// handles unreachable entries pairwise.
		return ClosenessAt(a, b, p)
	}
	cntA := analytics.HopHistogram(a.Hops[i], hstar)
	cntB := analytics.HopHistogram(b.Hops[k], hstar)
	cumA := make([]int64, hstar+1)
	cumB := make([]int64, hstar+1)
	for h := int64(1); h <= hstar; h++ {
		cumA[h] = cumA[h-1] + cntA[h]
		cumB[h] = cumB[h-1] + cntB[h]
	}
	var s float64
	for h := int64(1); h <= hstar; h++ {
		count := cntA[h]*cumB[h] + cumA[h-1]*cntB[h]
		if count != 0 {
			s += float64(count) / float64(h)
		}
	}
	return s
}

// EccentricityHistogram returns the histogram of ε_C over all product
// vertices without materializing the ε_C vector: by Cor. 4 the count of
// product vertices with eccentricity e is
//
//	cnt_C(e) = cnt_A(e)·cum_B(e) + cum_A(e−1)·cnt_B(e)
//
// where cnt is the factor eccentricity histogram and cum its cumulative.
// This makes the paper's Fig. 1 reproducible for 40M-vertex products in
// O(diam) work after the factor eccentricities are known. Both factors
// must be connected (no Unreachable eccentricities).
func EccentricityHistogram(a, b *Factor) map[int64]int64 {
	a.EnsureDistances()
	b.EnsureDistances()
	return MaxLawHistogram(a.Ecc, b.Ecc)
}

// MaxLawHistogram returns the value → count histogram of
// max(x, y) over all pairs (x, y) ∈ xs × ys. It underlies every max-type
// scaling law in the paper (hops, eccentricity, diameter).
func MaxLawHistogram(xs, ys []int64) map[int64]int64 {
	cntX := map[int64]int64{}
	cntY := map[int64]int64{}
	var lo, hi int64
	first := true
	note := func(v int64) {
		if first {
			lo, hi = v, v
			first = false
			return
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for _, v := range xs {
		cntX[v]++
		note(v)
	}
	for _, v := range ys {
		cntY[v]++
		note(v)
	}
	out := make(map[int64]int64)
	var cumX, cumY int64 // counts of values ≤ current−1 handled incrementally
	for v := lo; v <= hi; v++ {
		cx, cy := cntX[v], cntY[v]
		// pairs whose max is exactly v: x = v with y ≤ v, plus y = v with
		// x < v.
		if c := cx*(cumY+cy) + cumX*cy; c > 0 {
			out[v] = c
		}
		cumX += cx
		cumY += cy
	}
	return out
}
