package groundtruth

import (
	"fmt"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
)

// Ground-truth laws for heterogeneous factor chains C = A₁⊗A₂⊗…⊗Aₖ,
// obtained from the paper's two-factor laws by induction over the chain.
// The Power* functions are the all-factors-equal special case. Counting
// laws return explicit errors on int64 overflow (a chain a handful of
// factors deep overflows easily) so callers plan against real numbers or
// refuse loudly — never against wrapped garbage.

// ChainNumVertices returns n_C = Π n_d, checked.
func ChainNumVertices(fs []*Factor) (int64, error) {
	out := int64(1)
	for d, f := range fs {
		p, ok := core.CheckedMul(out, f.N())
		if !ok {
			return 0, fmt.Errorf("groundtruth: chain vertex count overflows int64 at factor %d", d)
		}
		out = p
	}
	return out, nil
}

// ChainNumArcs returns the arc count of the chain product, Π arcs_d,
// checked.
func ChainNumArcs(fs []*Factor) (int64, error) {
	out := int64(1)
	for d, f := range fs {
		p, ok := core.CheckedMul(out, f.G.NumArcs())
		if !ok {
			return 0, fmt.Errorf("groundtruth: chain arc count overflows int64 at factor %d", d)
		}
		out = p
	}
	return out, nil
}

// ChainNumEdges returns the undirected edge count of the chain product,
// checked: arcs and loops both multiply across factors and
// m_C = (arcs + loops)/2. For loop-free factors this reduces to the
// paper's m_C = 2^{k−1}·Π m_d.
func ChainNumEdges(fs []*Factor) (int64, error) {
	arcs, err := ChainNumArcs(fs)
	if err != nil {
		return 0, err
	}
	loops := int64(1)
	for d, f := range fs {
		p, ok := core.CheckedMul(loops, f.G.NumSelfLoops())
		if !ok {
			return 0, fmt.Errorf("groundtruth: chain loop count overflows int64 at factor %d", d)
		}
		loops = p
	}
	return (arcs + loops) / 2, nil
}

// ChainDegreeAt returns d_p = Π_d d_{coords[d]} — the degree law
// composes across any chain because d_C = d_A ⊗ d_B composes.
func ChainDegreeAt(fs []*Factor, coords []int64) int64 {
	out := int64(1)
	for d, f := range fs {
		out *= f.Deg[coords[d]]
	}
	return out
}

// ChainVertexTrianglesAt returns t_p = 2^{k−1}·Π_d t_{coords[d]} for
// loop-free factors (induction on t_C = 2·t_A⊗t_B).
func ChainVertexTrianglesAt(fs []*Factor, coords []int64) int64 {
	out := fs[0].Tri.Vertex[coords[0]]
	for d, f := range fs[1:] {
		out *= 2 * f.Tri.Vertex[coords[d+1]]
	}
	return out
}

// ChainGlobalTriangles returns τ_C = 6^{k−1}·Π τ_d for loop-free factors
// (induction on τ_C = 6·τ_A·τ_B), checked.
func ChainGlobalTriangles(fs []*Factor) (int64, error) {
	out := fs[0].Tri.Global
	for d, f := range fs[1:] {
		six, ok := core.CheckedMul(6, f.Tri.Global)
		if !ok {
			return 0, fmt.Errorf("groundtruth: chain triangle count overflows int64 at factor %d", d+1)
		}
		p, ok := core.CheckedMul(out, six)
		if !ok {
			return 0, fmt.Errorf("groundtruth: chain triangle count overflows int64 at factor %d", d+1)
		}
		out = p
	}
	return out, nil
}

// ChainEccentricityAt returns ε_p = max_d ε_{coords[d]} for factors with
// full self loops (Cor. 4 by induction). Unreachable if any factor's
// vertex is in a disconnected component.
func ChainEccentricityAt(fs []*Factor, coords []int64) int64 {
	out := int64(0)
	for d, f := range fs {
		f.EnsureDistances()
		e := f.Ecc[coords[d]]
		if e == analytics.Unreachable {
			return analytics.Unreachable
		}
		if e > out {
			out = e
		}
	}
	return out
}

// ChainDiameter returns diam(C) = max_d diam(A_d) for full-self-loop
// factors (Cor. 3 by induction).
func ChainDiameter(fs []*Factor) int64 {
	out := int64(0)
	for _, f := range fs {
		f.EnsureDistances()
		if f.Diam == analytics.Unreachable {
			return analytics.Unreachable
		}
		if f.Diam > out {
			out = f.Diam
		}
	}
	return out
}

// ChainHopsAt returns hops between two product vertices given their
// coordinate vectors (Thm. 3 by induction): max_d hops_d(c1[d], c2[d]).
func ChainHopsAt(fs []*Factor, coords1, coords2 []int64) int64 {
	out := int64(0)
	for d, f := range fs {
		f.EnsureDistances()
		h := f.Hops[coords1[d]][coords2[d]]
		if h == analytics.Unreachable {
			return analytics.Unreachable
		}
		if h > out {
			out = h
		}
	}
	return out
}

// ChainEccentricityHistogram returns the ε histogram of the chain
// product by folding the max-law histogram across factors — Fig. 1 for
// heterogeneous chains without materializing anything. Cost is
// O(k·diam²) after factor eccentricities.
func ChainEccentricityHistogram(fs []*Factor) map[int64]int64 {
	fs[0].EnsureDistances()
	cur := map[int64]int64{}
	for _, e := range fs[0].Ecc {
		cur[e]++
	}
	for _, f := range fs[1:] {
		f.EnsureDistances()
		next := map[int64]int64{}
		for _, e := range f.Ecc {
			next[e]++
		}
		cur = maxLawFold(cur, next)
	}
	return cur
}

// ChainCoordsOf returns the mixed-radix coordinates of product vertex p.
func ChainCoordsOf(fs []*Factor, p int64) ([]int64, error) {
	dims := make([]int64, len(fs))
	for d, f := range fs {
		dims[d] = f.N()
	}
	ci, err := core.NewChainIndex(dims)
	if err != nil {
		return nil, err
	}
	return ci.Split(p), nil
}
