package groundtruth

import (
	"fmt"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
)

// LawRow is one row of the paper's Sec. I scaling-law table: the quantity,
// the Kronecker law, the value predicted from the factors, the exact value
// measured on the materialized product, and whether they agree (for
// bounds, whether the bound holds).
type LawRow struct {
	Quantity  string
	Law       string
	Predicted string
	Measured  string
	OK        bool
}

// ScalingLaws evaluates every row of the Sec. I table for loop-free
// factors a and b, materializing the two products (C = A⊗B for the
// equality laws on triangles/degree, and C' = (A+I)⊗(B+I) for the
// distance laws) and comparing prediction to measurement. The partitions
// pa and pb (may be nil to skip the community rows) are factor community
// partitions. Intended for small factors; this is the validation harness
// behind experiment E1.
func ScalingLaws(a, b *Factor, pa, pb [][]int64) ([]LawRow, error) {
	a.RequireNoSelfLoops("ScalingLaws")
	b.RequireNoSelfLoops("ScalingLaws")
	c, err := core.Product(a.G, b.G)
	if err != nil {
		return nil, err
	}
	cLoops, err := core.ProductWithSelfLoops(a.G, b.G)
	if err != nil {
		return nil, err
	}
	var rows []LawRow
	add := func(q, law string, pred, meas int64) {
		rows = append(rows, LawRow{q, law, fmt.Sprint(pred), fmt.Sprint(meas), pred == meas})
	}

	// Vertices and edges.
	add("Vertices", "n_C = n_A·n_B", a.N()*b.N(), c.NumVertices())
	add("Edges", "m_C = 2·m_A·m_B", 2*a.G.NumEdges()*b.G.NumEdges(), c.NumEdges())

	// Degree vector d_C = d_A ⊗ d_B.
	degOK := true
	ix := core.NewIndex(b.N())
	for p := int64(0); p < c.NumVertices() && degOK; p++ {
		i, k := ix.Split(p)
		degOK = c.Degree(p) == a.Deg[i]*b.Deg[k]
	}
	rows = append(rows, LawRow{"Degree", "d_C = d_A ⊗ d_B", "vector", "vector", degOK})

	// Triangle laws on C = A⊗B.
	cTri := analytics.Triangles(c)
	triOK := true
	for p := int64(0); p < c.NumVertices() && triOK; p++ {
		triOK = cTri.Vertex[p] == VertexTrianglesAt(a, b, p)
	}
	rows = append(rows, LawRow{"Vertex Triangles", "t_C = 2·t_A ⊗ t_B", "vector", "vector", triOK})

	edgeOK := true
	idx := int64(-1)
	c.Arcs(func(u, v int64) bool {
		idx++
		if u == v {
			return true
		}
		if cTri.Arc[idx] != EdgeTrianglesAt(a, b, u, v) {
			edgeOK = false
			return false
		}
		return true
	})
	rows = append(rows, LawRow{"Edge Triangles", "Δ_C = Δ_A ⊗ Δ_B", "matrix", "matrix", edgeOK})

	add("Global Triangles", "τ_C = 6·τ_A·τ_B", GlobalTriangles(a, b), cTri.Global)

	// Vertex clustering bound η_C(p) ≥ 1/3·η_A(i)·η_B(k).
	ccOK := true
	cCC := analytics.VertexClustering(c)
	for p := int64(0); p < c.NumVertices() && ccOK; p++ {
		i, k := ix.Split(p)
		if a.Deg[i] < 2 || b.Deg[k] < 2 {
			continue
		}
		etaA := 2 * float64(a.Tri.Vertex[i]) / float64(a.Deg[i]*(a.Deg[i]-1))
		etaB := 2 * float64(b.Tri.Vertex[k]) / float64(b.Deg[k]*(b.Deg[k]-1))
		// Strict Thm. 1 equality with θ, and the 1/3 lower bound.
		pred := VertexClusteringAt(a, b, p)
		if !approxEq(cCC[p], pred) || cCC[p] < etaA*etaB/3-1e-12 {
			ccOK = false
		}
	}
	rows = append(rows, LawRow{"Clustering Coeff.", "η_C = θ·η_A·η_B ≥ ⅓·η_A·η_B", "per-vertex", "per-vertex", ccOK})

	// Distance laws on C' = (A+I)⊗(B+I).
	aL := NewFactor(a.G.WithFullSelfLoops())
	bL := NewFactor(b.G.WithFullSelfLoops())
	aL.EnsureDistances()
	bL.EnsureDistances()
	cEcc := analytics.Eccentricities(cLoops)
	eccOK := true
	for p := int64(0); p < cLoops.NumVertices() && eccOK; p++ {
		eccOK = cEcc[p] == EccentricityAt(aL, bL, p)
	}
	rows = append(rows, LawRow{"Vertex Eccentricity", "ε_C(p) = max{ε_A(i), ε_B(k)}", "vector", "vector", eccOK})
	add("Graph Diameter", "diam = max{diam_A, diam_B}", Diameter(aL, bL), analytics.Diameter(cLoops))

	// Community rows.
	if pa != nil && pb != nil {
		add("# Communities", "|Π_C| = |Π_A|·|Π_B|",
			NumCommunities(pa, pb), int64(len(core.KronPartition(pa, pb, b.N()))))
		statsA := analytics.Communities(a.G, pa)
		statsB := analytics.Communities(b.G, pb)
		inOK, outOK := true, true
		for ai := range pa {
			for bi := range pb {
				pred := CommunityKron(a, b, statsA[ai], statsB[bi])
				sc := core.KronSet(pa[ai], pb[bi], b.N())
				meas := analytics.Community(cLoops, sc)
				if pred.MIn != meas.MIn ||
					(statsA[ai].Size > 1 && statsB[bi].Size > 1 &&
						meas.RhoIn < RhoInLowerBound(statsA[ai], statsB[bi])-1e-12) {
					inOK = false
				}
				if pred.MOut != meas.MOut {
					outOK = false
				}
				if statsA[ai].MOut >= statsA[ai].Size && statsB[bi].MOut >= statsB[bi].Size &&
					meas.RhoOut > RhoOutUpperBound(a, b, statsA[ai], statsB[bi])+1e-12 {
					outOK = false
				}
			}
		}
		rows = append(rows, LawRow{"Internal Density", "m_in exact (Thm. 6); ρ_in ≥ ⅓·ρ_in·ρ_in (Cor. 6)", "per-community", "per-community", inOK})
		rows = append(rows, LawRow{"External Density", "m_out exact (Thm. 6); ρ_out ≤ (3+4ω)Ω·ρ_out·ρ_out (corrected Cor. 7)", "per-community", "per-community", outOK})
	}
	return rows, nil
}

func approxEq(x, y float64) bool {
	d := x - y
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}
