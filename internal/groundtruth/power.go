package groundtruth

import (
	"fmt"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
)

// Ground-truth laws for Kronecker powers C = A^{⊗k}, obtained from the
// paper's two-factor laws by induction. The per-vertex forms take the k
// factor coordinates from core.PowerIndex.

// PowerNumVertices returns n_C = n_A^k, or an explicit error when the
// count overflows int64 — a 10-vertex factor wraps silently at k = 19
// otherwise, and a plan built from a wrapped count is garbage.
func PowerNumVertices(a *Factor, k int) (int64, error) {
	out := int64(1)
	for i := 0; i < k; i++ {
		p, ok := core.CheckedMul(out, a.N())
		if !ok {
			return 0, fmt.Errorf("groundtruth: n_A^k overflows int64 (n=%d, k=%d)", a.N(), k)
		}
		out = p
	}
	return out, nil
}

// PowerNumEdges returns m_C = 2^{k−1}·m_A^k for a loop-free undirected
// factor (induction on m_C = 2·m_A·m_B), or an explicit error when the
// count overflows int64.
func PowerNumEdges(a *Factor, k int) (int64, error) {
	m := a.G.NumEdges()
	out := m
	for i := 1; i < k; i++ {
		twoM, ok := core.CheckedMul(2, m)
		if !ok {
			return 0, fmt.Errorf("groundtruth: 2^{k−1}·m_A^k overflows int64 (m=%d, k=%d)", m, k)
		}
		p, ok := core.CheckedMul(out, twoM)
		if !ok {
			return 0, fmt.Errorf("groundtruth: 2^{k−1}·m_A^k overflows int64 (m=%d, k=%d)", m, k)
		}
		out = p
	}
	return out, nil
}

// PowerDegreeAt returns d_p = Π_d d_{coords[d]}.
func PowerDegreeAt(a *Factor, coords []int64) int64 {
	out := int64(1)
	for _, c := range coords {
		out *= a.Deg[c]
	}
	return out
}

// PowerVertexTrianglesAt returns t_p = 2^{k−1}·Π_d t_{coords[d]} for a
// loop-free factor (induction on t_C = 2·t_A⊗t_B).
func PowerVertexTrianglesAt(a *Factor, coords []int64) int64 {
	out := a.Tri.Vertex[coords[0]]
	for _, c := range coords[1:] {
		out *= 2 * a.Tri.Vertex[c]
	}
	return out
}

// PowerGlobalTriangles returns τ_C = 6^{k−1}·τ_A^k (induction on
// τ_C = 6·τ_A·τ_B).
func PowerGlobalTriangles(a *Factor, k int) int64 {
	out := a.Tri.Global
	for i := 1; i < k; i++ {
		out *= 6 * a.Tri.Global
	}
	return out
}

// PowerEccentricityAt returns ε_p = max_d ε_{coords[d]} for a factor with
// full self loops (induction on Cor. 4). Unreachable if the factor is
// disconnected.
func PowerEccentricityAt(a *Factor, coords []int64) int64 {
	a.EnsureDistances()
	out := int64(0)
	for _, c := range coords {
		e := a.Ecc[c]
		if e == analytics.Unreachable {
			return analytics.Unreachable
		}
		if e > out {
			out = e
		}
	}
	return out
}

// PowerDiameter returns diam(A^{⊗k}) = diam(A) for a full-self-loop
// factor (Cor. 3 collapses under identical factors).
func PowerDiameter(a *Factor) int64 {
	a.EnsureDistances()
	return a.Diam
}

// PowerHopsAt returns hops between two vertices of A^{⊗k} given their
// coordinate vectors (Thm. 3 by induction): max_d hops(coords1[d],
// coords2[d]).
func PowerHopsAt(a *Factor, coords1, coords2 []int64) int64 {
	a.EnsureDistances()
	out := int64(0)
	for d := range coords1 {
		h := a.Hops[coords1[d]][coords2[d]]
		if h == analytics.Unreachable {
			return analytics.Unreachable
		}
		if h > out {
			out = h
		}
	}
	return out
}

// PowerEccentricityHistogram returns the ε histogram of A^{⊗k} by
// folding the max-law histogram k−1 times — Fig. 1 for arbitrary powers
// without materializing anything. The fold uses expanded value lists per
// level, so cost is O(k·diam²) after factor eccentricities.
func PowerEccentricityHistogram(a *Factor, k int) map[int64]int64 {
	a.EnsureDistances()
	cur := map[int64]int64{}
	for _, e := range a.Ecc {
		cur[e]++
	}
	base := cur
	for i := 1; i < k; i++ {
		cur = maxLawFold(cur, base)
	}
	return cur
}

// maxLawFold combines two value→count histograms under the max law.
func maxLawFold(x, y map[int64]int64) map[int64]int64 {
	xs := histToSorted(x)
	ys := histToSorted(y)
	out := map[int64]int64{}
	var cumX, cumY int64
	// Merge over the union of keys in ascending order.
	i, j := 0, 0
	for i < len(xs) || j < len(ys) {
		var v int64
		switch {
		case i >= len(xs):
			v = ys[j].val
		case j >= len(ys):
			v = xs[i].val
		case xs[i].val < ys[j].val:
			v = xs[i].val
		default:
			v = ys[j].val
		}
		var cx, cy int64
		if i < len(xs) && xs[i].val == v {
			cx = xs[i].cnt
			i++
		}
		if j < len(ys) && ys[j].val == v {
			cy = ys[j].cnt
			j++
		}
		if c := cx*(cumY+cy) + cumX*cy; c > 0 {
			out[v] = c
		}
		cumX += cx
		cumY += cy
	}
	return out
}

type valCnt struct{ val, cnt int64 }

func histToSorted(h map[int64]int64) []valCnt {
	out := make([]valCnt, 0, len(h))
	for v, c := range h {
		out = append(out, valCnt{v, c})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].val < out[j-1].val; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PowerCoordsOf is a convenience wrapper returning the coordinates of p
// in A^{⊗k}.
func PowerCoordsOf(a *Factor, k int, p int64) []int64 {
	return core.NewPowerIndex(a.N(), k).Split(p)
}
