package groundtruth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
)

func TestPowerIndexRoundTrip(t *testing.T) {
	f := func(pRaw int64, nRaw, kRaw uint8) bool {
		n := int64(nRaw%9) + 2
		k := int(kRaw%4) + 1
		px := core.NewPowerIndex(n, k)
		p := pRaw
		if p < 0 {
			p = -p
		}
		p %= px.NumVertices()
		return px.Join(px.Split(p)) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPowerIndexConsistentWithPairIndex(t *testing.T) {
	// A^{⊗2} coordinates must agree with the two-factor γ map.
	px := core.NewPowerIndex(7, 2)
	ix := core.NewIndex(7)
	for p := int64(0); p < 49; p++ {
		i, k := ix.Split(p)
		coords := px.Split(p)
		if coords[0] != i || coords[1] != k {
			t.Fatalf("p=%d: power coords %v, pair (%d,%d)", p, coords, i, k)
		}
	}
}

func TestKronPowerMatchesIteratedProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	a := randomLoopFree(rng, 5)
	c2, err := core.KronPower(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Product(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Equal(want) {
		t.Fatal("KronPower(2) != A⊗A")
	}
	if _, err := core.KronPower(a, 0); err == nil {
		t.Error("k=0 should error")
	}
	c1, err := core.KronPower(a, 1)
	if err != nil || !c1.Equal(a) {
		t.Error("KronPower(1) should be A itself")
	}
}

func TestPowerLawsAgainstMaterializedCube(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	ga := randomConnectedLoopFree(rng, 5)
	a := NewFactor(ga)
	const k = 3
	c, err := core.KronPower(ga, k)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := PowerNumVertices(a, k); err != nil || n != c.NumVertices() {
		t.Errorf("n law: %d (err %v) != %d", n, err, c.NumVertices())
	}
	if m, err := PowerNumEdges(a, k); err != nil || m != c.NumEdges() {
		t.Errorf("m law: %d (err %v) != %d", m, err, c.NumEdges())
	}
	exact := analytics.Triangles(c)
	if got := PowerGlobalTriangles(a, k); got != exact.Global {
		t.Errorf("τ law: %d != %d", got, exact.Global)
	}
	px := core.NewPowerIndex(a.N(), k)
	for p := int64(0); p < c.NumVertices(); p++ {
		coords := px.Split(p)
		if PowerDegreeAt(a, coords) != c.Degree(p) {
			t.Fatalf("degree law fails at %d", p)
		}
		if PowerVertexTrianglesAt(a, coords) != exact.Vertex[p] {
			t.Fatalf("triangle law fails at %d: %d != %d",
				p, PowerVertexTrianglesAt(a, coords), exact.Vertex[p])
		}
	}
}

func TestPowerDistanceLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	ga := randomConnectedLoopFree(rng, 4).WithFullSelfLoops()
	a := NewFactor(ga)
	const k = 3
	c, err := core.KronPower(ga, k)
	if err != nil {
		t.Fatal(err)
	}
	exactEcc := analytics.Eccentricities(c)
	px := core.NewPowerIndex(a.N(), k)
	for p := int64(0); p < c.NumVertices(); p++ {
		if got := PowerEccentricityAt(a, px.Split(p)); got != exactEcc[p] {
			t.Fatalf("ε law fails at %d: %d != %d", p, got, exactEcc[p])
		}
	}
	if PowerDiameter(a) != analytics.Diameter(c) {
		t.Errorf("diameter law: %d != %d", PowerDiameter(a), analytics.Diameter(c))
	}
	// Hop law spot checks.
	rows := analytics.AllPairsHops(c)
	for p := int64(0); p < c.NumVertices(); p += 5 {
		for q := int64(0); q < c.NumVertices(); q += 7 {
			if got := PowerHopsAt(a, px.Split(p), px.Split(q)); got != rows[p][q] {
				t.Fatalf("hops law fails at (%d,%d): %d != %d", p, q, got, rows[p][q])
			}
		}
	}
}

func TestPowerEccentricityHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	ga := randomConnectedLoopFree(rng, 5).WithFullSelfLoops()
	a := NewFactor(ga)
	for _, k := range []int{1, 2, 3} {
		c, err := core.KronPower(ga, k)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int64]int64{}
		for _, e := range analytics.Eccentricities(c) {
			want[e]++
		}
		got := PowerEccentricityHistogram(a, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: histogram sizes %d != %d", k, len(got), len(want))
		}
		for v, cnt := range want {
			if got[v] != cnt {
				t.Fatalf("k=%d: hist[%d] = %d, want %d", k, v, got[v], cnt)
			}
		}
	}
}

func TestPowerCoordsOf(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	ga := randomLoopFree(rng, 6)
	a := NewFactor(ga)
	coords := PowerCoordsOf(a, 3, 0)
	if len(coords) != 3 {
		t.Fatalf("coords = %v", coords)
	}
}
