package groundtruth_test

import (
	"fmt"

	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

// ExampleGlobalTriangles reads off τ_C = 6·τ_A·τ_B without generating C.
func ExampleGlobalTriangles() {
	a := groundtruth.NewFactor(gen.Clique(4)) // τ = 4
	b := groundtruth.NewFactor(gen.Clique(5)) // τ = 10
	fmt.Println(groundtruth.GlobalTriangles(a, b))
	// Output: 240
}

// ExampleDegreeAt decomposes a product vertex and multiplies factor
// degrees.
func ExampleDegreeAt() {
	a := groundtruth.NewFactor(gen.Star(5)) // center degree 4
	b := groundtruth.NewFactor(gen.Ring(6)) // all degrees 2
	// Product vertex γ(0, 3): the star center paired with ring vertex 3.
	fmt.Println(groundtruth.DegreeAt(a, b, 0*6+3))
	// Output: 8
}

// ExampleDiameter applies the max law to looped factors (Cor. 3).
func ExampleDiameter() {
	a := groundtruth.NewFactor(gen.Ring(10).WithFullSelfLoops()) // diam 5
	b := groundtruth.NewFactor(gen.Path(4).WithFullSelfLoops())  // diam 3
	fmt.Println(groundtruth.Diameter(a, b))
	// Output: 5
}

// ExampleCommunityKron computes Thm. 6 community counts for the product
// of two disjoint-clique factors.
func ExampleCommunityKron() {
	a := groundtruth.NewFactor(gen.DisjointCliques(2, 3))
	sa := groundtruth.FactorCommunity(a, []int64{0, 1, 2}) // one clique
	sc := groundtruth.CommunityKron(a, a, sa, sa)
	fmt.Println(sc.Size, sc.MIn, sc.MOut)
	// Output: 9 36 0
}
