package groundtruth

import (
	"fmt"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// Directed Kronecker ground-truth laws, extending the undirected results
// the way the paper's predecessor [11] does. For loop-free directed
// factors A and B with C = A ⊗ B:
//
//	out-degree:            d⁺_C = d⁺_A ⊗ d⁺_B       (row sums multiply)
//	in-degree:             d⁻_C = d⁻_A ⊗ d⁻_B       (column sums multiply)
//	cycle triangles:       diag(C³) = diag(A³) ⊗ diag(B³)
//	global 3-cycles:       τ°_C = 3·τ°_A·τ°_B
//	transitive closures:   C∘C² = (A∘A²) ⊗ (B∘B²)   (per-arc counts multiply)
//	global transitive:     T_C = T_A·T_B
//
// All follow from the mixed-product rule (Prop. 1d) and
// Hadamard–Kronecker distributivity (Prop. 2e); validated against
// analytics.DirectedTriangles in tests.

// DirectedFactor bundles a directed factor with its exact directed
// statistics.
type DirectedFactor struct {
	G   *graph.Graph
	Out []int64
	In  []int64
	Tri *analytics.DirectedTriangleStats
}

// NewDirectedFactor computes directed statistics for g.
func NewDirectedFactor(g *graph.Graph) *DirectedFactor {
	return &DirectedFactor{
		G:   g,
		Out: analytics.OutDegrees(g),
		In:  analytics.InDegrees(g),
		Tri: analytics.DirectedTriangles(g),
	}
}

// N returns the factor's vertex count.
func (f *DirectedFactor) N() int64 { return f.G.NumVertices() }

// transArc returns the factor's transitive closure count at arc (i, j).
func (f *DirectedFactor) transArc(i, j int64) int64 {
	idx := f.G.ArcIndex(i, j)
	if idx < 0 {
		panic(fmt.Sprintf("groundtruth: (%d,%d) is not an arc of the directed factor", i, j))
	}
	return f.Tri.TransArc[idx]
}

// DirectedOutDegreeAt returns d⁺_p = d⁺_i·d⁺_k.
func DirectedOutDegreeAt(a, b *DirectedFactor, p int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	return a.Out[i] * b.Out[k]
}

// DirectedInDegreeAt returns d⁻_p = d⁻_i·d⁻_k.
func DirectedInDegreeAt(a, b *DirectedFactor, p int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	return a.In[i] * b.In[k]
}

// CycleTrianglesAt returns the directed 3-cycle count through product
// vertex p: cyc_C(p) = cyc_A(i)·cyc_B(k).
func CycleTrianglesAt(a, b *DirectedFactor, p int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	return a.Tri.CycleVertex[i] * b.Tri.CycleVertex[k]
}

// GlobalCycleTriangles returns τ°_C = 3·τ°_A·τ°_B.
func GlobalCycleTriangles(a, b *DirectedFactor) int64 {
	return 3 * a.Tri.CycleGlobal * b.Tri.CycleGlobal
}

// TransitiveAt returns the transitive-closure count of product arc (p,q):
// (C∘C²)_pq = (A∘A²)_ij·(B∘B²)_kl.
func TransitiveAt(a, b *DirectedFactor, p, q int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	j, l := ix.Split(q)
	return a.transArc(i, j) * b.transArc(k, l)
}

// GlobalTransitive returns T_C = T_A·T_B.
func GlobalTransitive(a, b *DirectedFactor) int64 {
	return a.Tri.TransGlobal * b.Tri.TransGlobal
}

// ReciprocityKron returns the ground-truth mutual-pair and one-way arc
// counts of C = A ⊗ B from the factor counts. With M = A∘Aᵗ the mutual
// pattern and W = A − M the one-way pattern (both loop-free):
//
//	C∘Cᵗ = (A∘Aᵗ) ⊗ (B∘Bᵗ)       (Prop. 2e)
//
// so mutual ordered arcs multiply: 2·mut_C = (2·mut_A)·(2·mut_B), i.e.
// mut_C = 2·mut_A·mut_B, and one-way arcs are the remainder
// arcs_C − loops_C − 2·mut_C. Factors must be loop-free (loops would
// enter the diagonal of C∘Cᵗ).
func ReciprocityKron(a, b *DirectedFactor) (mutual, oneWay int64) {
	mutA, _ := analytics.Reciprocity(a.G)
	mutB, _ := analytics.Reciprocity(b.G)
	mutual = 2 * mutA * mutB
	arcsC := a.G.NumArcs() * b.G.NumArcs()
	loopsC := a.G.NumSelfLoops() * b.G.NumSelfLoops()
	oneWay = arcsC - loopsC - 2*mutual
	return mutual, oneWay
}
