package groundtruth

import "kronlab/internal/graph"

// Summary is an immutable, cacheable bundle of per-factor statistics — the
// unit kronserve's analytics cache stores and deduplicates. It wraps a
// fully built Factor: unlike a bare Factor, whose EnsureDistances mutates
// it on first use, a Summary is completed at construction time (including
// distance data when requested) and must never be written afterwards, so
// it is safe to share across concurrent readers without locking.
type Summary struct {
	F *Factor

	// Hash is the canonical hash of the graph the summary was requested
	// for (before any +I transform), i.e. the registry key.
	Hash string

	// Loops records that the Factor was built on g.WithFullSelfLoops()
	// rather than g itself — the variant the paper's distance formulas
	// (Thm. 3–5, Cor. 3–5) require.
	Loops bool

	// Distances records that F's hop matrix, eccentricities and diameter
	// were populated.
	Distances bool
}

// NewSummary builds the summary of g at the requested tier. With loops
// set, statistics are computed on g + I (full self loops); with distances
// set, the O(n·(n+arcs)) all-pairs hop data is included.
func NewSummary(g *graph.Graph, hash string, loops, distances bool) *Summary {
	if loops {
		g = g.WithFullSelfLoops()
	}
	f := NewFactor(g)
	if distances {
		f.EnsureDistances()
	}
	return &Summary{F: f, Hash: hash, Loops: loops, Distances: distances}
}

// CostBytes estimates the resident size of the summary: the CSR graph,
// degree and triangle vectors, and — when present — the n×n hop matrix
// that dominates the distance tier. kronserve's LRU budgets on this.
func (s *Summary) CostBytes() int64 {
	n := s.F.G.NumVertices()
	arcs := s.F.G.NumArcs()
	cost := (n+1)*8 + arcs*8 // CSR offsets + adjacency
	cost += n * 8            // Deg
	cost += n*8 + arcs*8 + 8 // Tri.Vertex, Tri.Arc, Tri.Global
	if s.Distances {
		cost += n*n*8 + n*8 + 8 // Hops, Ecc, Diam
	}
	return cost
}
