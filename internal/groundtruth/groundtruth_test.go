package groundtruth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// randomLoopFree returns a random loop-free undirected graph.
func randomLoopFree(rng *rand.Rand, maxN int64) *graph.Graph {
	n := 2 + rng.Int63n(maxN-1)
	m := 1 + rng.Int63n(3*n)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// randomConnectedLoopFree retries until the graph is connected (needed by
// distance laws so eccentricities are finite).
func randomConnectedLoopFree(rng *rand.Rand, maxN int64) *graph.Graph {
	for {
		g := randomLoopFree(rng, maxN)
		if g.IsConnected() {
			return g
		}
	}
}

func mustProduct(t *testing.T, a, b *graph.Graph) *graph.Graph {
	t.Helper()
	c, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ---------- degree law ----------

func TestDegreeLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		ga, gb := randomLoopFree(rng, 9), randomLoopFree(rng, 9)
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		pred := Degrees(a, b)
		for p := int64(0); p < c.NumVertices(); p++ {
			if c.Degree(p) != pred[p] {
				t.Fatalf("trial %d: d_%d = %d, predicted %d", trial, p, c.Degree(p), pred[p])
			}
			if DegreeAt(a, b, p) != pred[p] {
				t.Fatalf("trial %d: DegreeAt disagrees with Degrees at %d", trial, p)
			}
		}
		if NumVertices(a, b) != c.NumVertices() || NumEdges(a, b) != c.NumEdges() {
			t.Fatalf("trial %d: size laws broken", trial)
		}
	}
}

func TestDegreeLawWithSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		ga, gb := randomLoopFree(rng, 8), randomLoopFree(rng, 8)
		a, b := NewFactor(ga), NewFactor(gb)
		c, err := core.ProductWithSelfLoops(ga, gb)
		if err != nil {
			t.Fatal(err)
		}
		pred := DegreesWithSelfLoops(a, b)
		for p := int64(0); p < c.NumVertices(); p++ {
			if c.Degree(p) != pred[p] {
				t.Fatalf("trial %d: loop-product d_%d = %d, predicted %d",
					trial, p, c.Degree(p), pred[p])
			}
		}
	}
}

// ---------- triangle laws, loop-free product ----------

func TestVertexTriangleLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		ga, gb := randomLoopFree(rng, 9), randomLoopFree(rng, 9)
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		exact := analytics.Triangles(c)
		pred := VertexTriangles(a, b)
		for p := int64(0); p < c.NumVertices(); p++ {
			if exact.Vertex[p] != pred[p] {
				t.Fatalf("trial %d: t_%d exact %d, predicted %d", trial, p, exact.Vertex[p], pred[p])
			}
		}
		if got := GlobalTriangles(a, b); got != exact.Global {
			t.Fatalf("trial %d: τ exact %d, predicted %d", trial, exact.Global, got)
		}
	}
}

func TestEdgeTriangleLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		ga, gb := randomLoopFree(rng, 8), randomLoopFree(rng, 8)
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		exact := analytics.Triangles(c)
		idx := int64(-1)
		c.Arcs(func(u, v int64) bool {
			idx++
			if u == v {
				return true
			}
			if got := EdgeTrianglesAt(a, b, u, v); got != exact.Arc[idx] {
				t.Fatalf("trial %d: Δ(%d,%d) exact %d, predicted %d",
					trial, u, v, exact.Arc[idx], got)
			}
			return true
		})
	}
}

// ---------- Cor. 1 / Cor. 2: full self loops ----------

func TestCor1VertexTrianglesFullLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 20; trial++ {
		ga, gb := randomLoopFree(rng, 8), randomLoopFree(rng, 8)
		a, b := NewFactor(ga), NewFactor(gb)
		c, err := core.ProductWithSelfLoops(ga, gb)
		if err != nil {
			t.Fatal(err)
		}
		exact := analytics.Triangles(c)
		pred := VertexTrianglesFullLoops(a, b)
		for p := int64(0); p < c.NumVertices(); p++ {
			if exact.Vertex[p] != pred[p] {
				t.Fatalf("trial %d: Cor.1 t_%d exact %d, predicted %d",
					trial, p, exact.Vertex[p], pred[p])
			}
		}
		if got := GlobalTrianglesFullLoops(a, b); got != exact.Global {
			t.Fatalf("trial %d: Cor.1 τ exact %d, predicted %d", trial, exact.Global, got)
		}
	}
}

func TestCor1KnownExample(t *testing.T) {
	// A = B = K2: C = (K2+I)⊗(K2+I) = K4 with loops; t_p = 3 everywhere.
	k2, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 1}})
	a := NewFactor(k2)
	for p := int64(0); p < 4; p++ {
		if got := VertexTrianglesFullLoopsAt(a, a, p); got != 3 {
			t.Errorf("K2⊗K2 Cor.1 t_%d = %d, want 3", p, got)
		}
	}
}

func TestCor2EdgeTrianglesFullLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		ga, gb := randomLoopFree(rng, 7), randomLoopFree(rng, 7)
		a, b := NewFactor(ga), NewFactor(gb)
		c, err := core.ProductWithSelfLoops(ga, gb)
		if err != nil {
			t.Fatal(err)
		}
		exact := analytics.Triangles(c)
		idx := int64(-1)
		c.Arcs(func(u, v int64) bool {
			idx++
			if u == v {
				return true
			}
			if got := EdgeTrianglesFullLoopsAt(a, b, u, v); got != exact.Arc[idx] {
				t.Fatalf("trial %d: Cor.2 Δ(%d,%d) exact %d, predicted %d",
					trial, u, v, exact.Arc[idx], got)
			}
			return true
		})
	}
}

// TestCor2PaperTypo documents why this implementation deviates from the
// printed Cor. 2: on C = (K2+I)⊗(K2+I) = K4+loops, the edge
// (γ(0,0), γ(0,1)) has i=j, and the printed formula gives 4 while the true
// count (and the appendix expansion) give 2.
func TestCor2PaperTypo(t *testing.T) {
	k2, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 1}})
	a := NewFactor(k2)
	c, err := core.ProductWithSelfLoops(k2, k2)
	if err != nil {
		t.Fatal(err)
	}
	// Edge p=γ(0,0)=0, q=γ(0,1)=1 (A-side diagonal, i=j=0).
	exact := analytics.EdgeTriangles(c, 0, 1)
	if exact != 2 {
		t.Fatalf("exact Δ(0,1) on K4 = %d, want 2", exact)
	}
	if got := EdgeTrianglesFullLoopsAt(a, a, 0, 1); got != exact {
		t.Fatalf("corrected Cor.2 = %d, exact %d", got, exact)
	}
	// The printed formula: Δkl(di+1)δ(i,j) + 2(diδ(i,j) + dkδ(k,l) + 1)
	// = 0·2·1 + 2·(1+0+1) = 4 ≠ 2.
	printed := int64(0*2 + 2*(1+0+1))
	if printed == exact {
		t.Fatal("paper formula unexpectedly matches; typo note is stale")
	}
}

func TestCor2PanicsOnLoop(t *testing.T) {
	k2, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 1}})
	a := NewFactor(k2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p == q")
		}
	}()
	EdgeTrianglesFullLoopsAt(a, a, 0, 0)
}

func TestRequireGuards(t *testing.T) {
	loopy, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}})
	f := NewFactor(loopy)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RequireNoSelfLoops should panic")
			}
		}()
		f.RequireNoSelfLoops("test")
	}()
	bare, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 1}})
	fb := NewFactor(bare)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RequireFullSelfLoops should panic")
			}
		}()
		fb.RequireFullSelfLoops("test")
	}()
	// And the happy paths must not panic.
	fb.RequireNoSelfLoops("test")
	NewFactor(bare.WithFullSelfLoops()).RequireFullSelfLoops("test")
}

func TestEdgeTriPanicsOnNonArc(t *testing.T) {
	k2, _ := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 1}})
	f := NewFactor(k2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-arc")
		}
	}()
	f.EdgeTri(0, 2)
}

// ---------- clustering scaling laws ----------

func TestThm1VertexClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 15; trial++ {
		ga, gb := randomLoopFree(rng, 9), randomLoopFree(rng, 9)
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		exact := analytics.VertexClustering(c)
		ix := core.NewIndex(b.N())
		for p := int64(0); p < c.NumVertices(); p++ {
			i, k := ix.Split(p)
			if a.Deg[i] < 2 || b.Deg[k] < 2 {
				continue
			}
			pred := VertexClusteringAt(a, b, p)
			if math.Abs(exact[p]-pred) > 1e-9 {
				t.Fatalf("trial %d: η(%d) exact %v, predicted %v", trial, p, exact[p], pred)
			}
		}
	}
}

func TestThetaRange(t *testing.T) {
	if th := Theta(2, 2); math.Abs(th-1.0/3) > 1e-12 {
		t.Errorf("θ(2,2) = %v, want 1/3", th)
	}
	f := func(diRaw, dkRaw uint8) bool {
		di, dk := int64(diRaw%60)+2, int64(dkRaw%60)+2
		th := Theta(di, dk)
		return th >= 1.0/3-1e-12 && th < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Monotone increasing in each argument.
	if Theta(3, 2) <= Theta(2, 2) || Theta(2, 3) <= Theta(2, 2) {
		t.Error("θ must increase with degree")
	}
}

func TestThm2EdgeClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		ga, gb := randomLoopFree(rng, 8), randomLoopFree(rng, 8)
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		exact := analytics.EdgeClustering(c)
		ix := core.NewIndex(b.N())
		idx := int64(-1)
		c.Arcs(func(u, v int64) bool {
			idx++
			if u == v {
				return true
			}
			// Thm. 2 hypothesis: Δ_ij, Δ_kl > 0 and all four factor
			// degrees ≥ 2. Outside it, the law does not apply.
			i, k := ix.Split(u)
			j, l := ix.Split(v)
			if a.Deg[i] < 2 || a.Deg[j] < 2 || b.Deg[k] < 2 || b.Deg[l] < 2 ||
				a.EdgeTri(i, j) == 0 || b.EdgeTri(k, l) == 0 {
				return true
			}
			pred := EdgeClusteringAt(a, b, u, v)
			if math.IsNaN(pred) {
				t.Fatalf("trial %d: ξ(%d,%d) NaN under Thm.2 hypothesis", trial, u, v)
			}
			if math.Abs(exact[idx]-pred) > 1e-9 {
				t.Fatalf("trial %d: ξ(%d,%d) exact %v, predicted %v",
					trial, u, v, exact[idx], pred)
			}
			return true
		})
	}
}

func TestPhiCanBeArbitrarilySmall(t *testing.T) {
	// Thm. 2's point: with disassortative degrees,
	// φ = (d_i−1)(d_l−1)/(d_i·d_k−1) → 0 as d_k grows.
	small := Phi(2, 100, 100, 2)
	if small > 0.05 {
		t.Errorf("φ(2,100,100,2) = %v, expected near 0", small)
	}
	if small <= 0 || small >= 1 {
		t.Errorf("φ out of (0,1): %v", small)
	}
}

// ---------- distances ----------

func TestThm3HopsMaxLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		ga := randomConnectedLoopFree(rng, 7).WithFullSelfLoops()
		gb := randomConnectedLoopFree(rng, 7).WithFullSelfLoops()
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		rows := analytics.AllPairsHops(c)
		for p := int64(0); p < c.NumVertices(); p++ {
			for q := int64(0); q < c.NumVertices(); q++ {
				if got := HopsAt(a, b, p, q); got != rows[p][q] {
					t.Fatalf("trial %d: hops(%d,%d) exact %d, predicted %d",
						trial, p, q, rows[p][q], got)
				}
			}
		}
	}
}

func TestCor4Eccentricity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 10; trial++ {
		ga := randomConnectedLoopFree(rng, 8).WithFullSelfLoops()
		gb := randomConnectedLoopFree(rng, 8).WithFullSelfLoops()
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		exact := analytics.Eccentricities(c)
		pred := Eccentricities(a, b)
		for p := range exact {
			if exact[p] != pred[p] {
				t.Fatalf("trial %d: ε(%d) exact %d, predicted %d", trial, p, exact[p], pred[p])
			}
		}
	}
}

func TestCor3Diameter(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		ga := randomConnectedLoopFree(rng, 8).WithFullSelfLoops()
		gb := randomConnectedLoopFree(rng, 8).WithFullSelfLoops()
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		if got, want := Diameter(a, b), analytics.Diameter(c); got != want {
			t.Fatalf("trial %d: diameter predicted %d, exact %d", trial, got, want)
		}
	}
}

func TestThm5AndCor5Bounds(t *testing.T) {
	// A with full self loops, B undirected loop-free.
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 10; trial++ {
		ga := randomConnectedLoopFree(rng, 7).WithFullSelfLoops()
		gb := randomConnectedLoopFree(rng, 7)
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		if !c.IsSymmetric() {
			t.Fatal("product should be symmetric")
		}
		rows := analytics.AllPairsHops(c)
		diamLo, diamHi := DiameterBounds(a, b)
		cd := analytics.Diameter(c)
		if cd != analytics.Unreachable && (cd < diamLo || cd > diamHi) {
			t.Fatalf("trial %d: diam %d outside [%d,%d]", trial, cd, diamLo, diamHi)
		}
		for p := int64(0); p < c.NumVertices(); p++ {
			for q := int64(0); q < c.NumVertices(); q++ {
				lo, hi := HopsBoundsAt(a, b, p, q)
				h := rows[p][q]
				if h == analytics.Unreachable {
					continue // B disconnected pairs may be unreachable in C
				}
				if lo == analytics.Unreachable {
					continue
				}
				if h < lo || h > hi {
					t.Fatalf("trial %d: hops(%d,%d)=%d outside [%d,%d]", trial, p, q, h, lo, hi)
				}
			}
		}
	}
}

func TestThm4ClosenessDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 8; trial++ {
		ga := randomConnectedLoopFree(rng, 7).WithFullSelfLoops()
		gb := randomConnectedLoopFree(rng, 7).WithFullSelfLoops()
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		for p := int64(0); p < c.NumVertices(); p++ {
			exact := analytics.Closeness(c, p)
			if pred := ClosenessAt(a, b, p); math.Abs(exact-pred) > 1e-9 {
				t.Fatalf("trial %d: ζ(%d) exact %v, predicted %v", trial, p, exact, pred)
			}
		}
	}
}

func TestClosenessCompressedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		ga := randomConnectedLoopFree(rng, 9).WithFullSelfLoops()
		gb := randomConnectedLoopFree(rng, 9).WithFullSelfLoops()
		a, b := NewFactor(ga), NewFactor(gb)
		for p := int64(0); p < a.N()*b.N(); p += 3 {
			direct := ClosenessAt(a, b, p)
			compressed := ClosenessCompressedAt(a, b, p)
			if math.Abs(direct-compressed) > 1e-9 {
				t.Fatalf("trial %d: ζ(%d) direct %v, compressed %v", trial, p, direct, compressed)
			}
		}
	}
}

func TestClosenessCompressedDisconnectedFallback(t *testing.T) {
	// Disconnected factor: compressed form must fall back to direct sum.
	ga, _ := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 1}})
	gal := ga.WithFullSelfLoops()
	a := NewFactor(gal)
	if d, c := ClosenessAt(a, a, 0), ClosenessCompressedAt(a, a, 0); math.Abs(d-c) > 1e-9 {
		t.Errorf("disconnected: direct %v != compressed %v", d, c)
	}
}

// ---------- communities ----------

func randomPartition(rng *rand.Rand, n int64, k int) [][]int64 {
	parts := make([][]int64, k)
	for v := int64(0); v < n; v++ {
		b := rng.Intn(k)
		parts[b] = append(parts[b], v)
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

func TestThm6CommunityCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 15; trial++ {
		ga, gb := randomLoopFree(rng, 9), randomLoopFree(rng, 9)
		a, b := NewFactor(ga), NewFactor(gb)
		c, err := core.ProductWithSelfLoops(ga, gb)
		if err != nil {
			t.Fatal(err)
		}
		pa := randomPartition(rng, ga.NumVertices(), 3)
		pb := randomPartition(rng, gb.NumVertices(), 3)
		statsA := analytics.Communities(ga, pa)
		statsB := analytics.Communities(gb, pb)
		for ai := range pa {
			for bi := range pb {
				pred := CommunityKron(a, b, statsA[ai], statsB[bi])
				sc := core.KronSet(pa[ai], pb[bi], b.N())
				meas := analytics.Community(c, sc)
				if pred.MIn != meas.MIn {
					t.Fatalf("trial %d: m_in predicted %d, exact %d", trial, pred.MIn, meas.MIn)
				}
				if pred.MOut != meas.MOut {
					t.Fatalf("trial %d: m_out predicted %d, exact %d", trial, pred.MOut, meas.MOut)
				}
				if math.Abs(pred.RhoIn-meas.RhoIn) > 1e-12 || math.Abs(pred.RhoOut-meas.RhoOut) > 1e-12 {
					t.Fatalf("trial %d: densities disagree", trial)
				}
			}
		}
	}
}

func TestCor6Cor7Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 15; trial++ {
		ga, gb := randomLoopFree(rng, 10), randomLoopFree(rng, 10)
		a, b := NewFactor(ga), NewFactor(gb)
		pa := randomPartition(rng, ga.NumVertices(), 3)
		pb := randomPartition(rng, gb.NumVertices(), 3)
		statsA := analytics.Communities(ga, pa)
		statsB := analytics.Communities(gb, pb)
		for ai := range pa {
			for bi := range pb {
				sa, sb := statsA[ai], statsB[bi]
				pred := CommunityKron(a, b, sa, sb)
				if sa.Size > 1 && sb.Size > 1 {
					if lo := RhoInLowerBound(sa, sb); pred.RhoIn < lo-1e-12 {
						t.Fatalf("trial %d: Cor.6 violated: ρ_in %v < bound %v", trial, pred.RhoIn, lo)
					}
				}
				if sa.MOut >= sa.Size && sb.MOut >= sb.Size {
					if hi := RhoOutUpperBound(a, b, sa, sb); pred.RhoOut > hi+1e-12 {
						t.Fatalf("trial %d: Cor.7 violated: ρ_out %v > bound %v", trial, pred.RhoOut, hi)
					}
				}
			}
		}
	}
}

func TestEx1DisjointCliques(t *testing.T) {
	// Ex. 1: x_A cliques of size y_A ⊗ x_B cliques of size y_B gives
	// x_A·x_B cliques of size y_A·y_B.
	cliques := func(x, y int64) *graph.Graph {
		var edges []graph.Edge
		for c := int64(0); c < x; c++ {
			for u := int64(0); u < y; u++ {
				for v := u + 1; v < y; v++ {
					edges = append(edges, graph.Edge{U: c*y + u, V: c*y + v})
				}
			}
		}
		g, err := graph.NewUndirected(x*y, edges)
		if err != nil {
			panic(err)
		}
		return g
	}
	ga, gb := cliques(2, 3), cliques(3, 2)
	c, err := core.ProductWithSelfLoops(ga, gb)
	if err != nil {
		t.Fatal(err)
	}
	_, count := c.ConnectedComponents()
	if count != 6 {
		t.Fatalf("components = %d, want 2·3 = 6", count)
	}
	// Each component is a clique of size 6 with loops: every vertex degree 6.
	for v := int64(0); v < c.NumVertices(); v++ {
		if c.Degree(v) != 6 {
			t.Fatalf("degree(%d) = %d, want 6 (clique of 6 + loop)", v, c.Degree(v))
		}
	}
}

func TestNumCommunities(t *testing.T) {
	if NumCommunities([][]int64{{0}, {1}}, [][]int64{{0}, {1}, {2}}) != 6 {
		t.Error("|Π_C| should be 6")
	}
}

// ---------- scaling-law table ----------

func TestScalingLawsAllHold(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	ga := randomConnectedLoopFree(rng, 8)
	gb := randomConnectedLoopFree(rng, 8)
	a, b := NewFactor(ga), NewFactor(gb)
	pa := randomPartition(rng, ga.NumVertices(), 2)
	pb := randomPartition(rng, gb.NumVertices(), 2)
	rows, err := ScalingLaws(a, b, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12 (the full Sec. I table)", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("law %q failed: predicted %s, measured %s", r.Quantity, r.Predicted, r.Measured)
		}
	}
}

// MaxLawHistogram must agree with brute-force pair enumeration.
func TestMaxLawHistogram(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int64, 1+rng.Intn(20))
		ys := make([]int64, 1+rng.Intn(20))
		for i := range xs {
			xs[i] = rng.Int63n(6)
		}
		for i := range ys {
			ys[i] = rng.Int63n(6)
		}
		brute := map[int64]int64{}
		for _, x := range xs {
			for _, y := range ys {
				m := x
				if y > m {
					m = y
				}
				brute[m]++
			}
		}
		got := MaxLawHistogram(xs, ys)
		if len(got) != len(brute) {
			return false
		}
		for k, v := range brute {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// EccentricityHistogram must equal the histogram of the materialized ε_C.
func TestEccentricityHistogramMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	ga := randomConnectedLoopFree(rng, 8).WithFullSelfLoops()
	gb := randomConnectedLoopFree(rng, 8).WithFullSelfLoops()
	a, b := NewFactor(ga), NewFactor(gb)
	hist := EccentricityHistogram(a, b)
	vec := Eccentricities(a, b)
	counts := map[int64]int64{}
	for _, e := range vec {
		counts[e]++
	}
	if len(hist) != len(counts) {
		t.Fatalf("histogram size %d, want %d", len(hist), len(counts))
	}
	for k, v := range counts {
		if hist[k] != v {
			t.Fatalf("hist[%d] = %d, want %d", k, hist[k], v)
		}
	}
}

// Weichsel's theorem (paper ref [1]): A⊗B connectivity from factor
// bipartiteness, validated against materialized component counts.
func TestWeichselProductComponents(t *testing.T) {
	even := func(n int64) *graph.Graph { // even ring = bipartite
		edges := make([]graph.Edge, n)
		for v := int64(0); v < n; v++ {
			edges[v] = graph.Edge{U: v, V: (v + 1) % n}
		}
		g, _ := graph.NewUndirected(n, edges)
		return g
	}
	odd := func(n int64) *graph.Graph { return even(n) } // odd ring = non-bipartite
	cases := []struct {
		name string
		a, b *graph.Graph
		want int64
	}{
		{"bipartite ⊗ bipartite", even(4), even(6), 2},
		{"bipartite ⊗ odd", even(4), odd(5), 1},
		{"odd ⊗ odd", odd(3), odd(5), 1},
		{"loops force connectivity", even(4).WithFullSelfLoops(), even(6).WithFullSelfLoops(), 1},
	}
	for _, tc := range cases {
		fa, fb := NewFactor(tc.a), NewFactor(tc.b)
		got, err := ProductComponents(fa, fb)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: predicted %d, want %d", tc.name, got, tc.want)
		}
		c, err := core.Product(tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if _, meas := c.ConnectedComponents(); meas != got {
			t.Errorf("%s: predicted %d, measured %d", tc.name, got, meas)
		}
	}
	// Random validation.
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 15; trial++ {
		ga := randomConnectedLoopFree(rng, 8)
		gb := randomConnectedLoopFree(rng, 8)
		if ga.NumEdges() == 0 || gb.NumEdges() == 0 {
			continue
		}
		fa, fb := NewFactor(ga), NewFactor(gb)
		pred, err := ProductComponents(fa, fb)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Product(ga, gb)
		if err != nil {
			t.Fatal(err)
		}
		if _, meas := c.ConnectedComponents(); meas != pred {
			t.Fatalf("trial %d: Weichsel predicted %d, measured %d", trial, pred, meas)
		}
	}
	// Error paths.
	dis, _ := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := ProductComponents(NewFactor(dis), NewFactor(dis)); err == nil {
		t.Error("disconnected factors should error")
	}
}

// Eigenvector centrality law: x_C = x_A ⊗ x_B and λ_C = λ_A·λ_B, checked
// against direct power iteration on the materialized product. Requires
// connected non-bipartite factors so the Perron vector is unique; full
// self loops guarantee non-bipartiteness.
func TestEigenvectorCentralityKron(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 6; trial++ {
		ga := randomConnectedLoopFree(rng, 7).WithFullSelfLoops()
		gb := randomConnectedLoopFree(rng, 7).WithFullSelfLoops()
		a, b := NewFactor(ga), NewFactor(gb)
		c := mustProduct(t, ga, gb)
		pred, lamPred := EigenvectorCentralityKron(a, b, 400)
		got, lamGot := analytics.EigenvectorCentrality(c, 400)
		if math.Abs(lamPred-lamGot) > 1e-6*math.Max(1, lamGot) {
			t.Fatalf("trial %d: λ law %v vs %v", trial, lamPred, lamGot)
		}
		// Eigenvectors agree up to sign; Perron vectors are positive so
		// direct comparison is fine once both are positive.
		for p := range pred {
			if math.Abs(pred[p]-got[p]) > 1e-5 {
				t.Fatalf("trial %d: x(%d) law %v vs %v", trial, p, pred[p], got[p])
			}
		}
	}
}
