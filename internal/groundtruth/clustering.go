package groundtruth

import (
	"math"

	"kronlab/internal/core"
)

// Theta returns the vertex clustering scaling factor of Thm. 1:
// θ_p = (d_i − 1)·(d_k − 1) / (d_i·d_k − 1), which lies in [1/3, 1) for
// d_i, d_k ≥ 2 and is minimized (1/3) at d_i = d_k = 2.
func Theta(di, dk int64) float64 {
	return float64((di-1)*(dk-1)) / float64(di*dk-1)
}

// VertexClusteringAt returns the ground-truth vertex clustering
// coefficient η_C(p) = θ_p·η_A(i)·η_B(k) for C = A ⊗ B with loop-free
// factors (Thm. 1). NaN when d_i < 2 or d_k < 2 (η undefined).
func VertexClusteringAt(a, b *Factor, p int64) float64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	di, dk := a.Deg[i], b.Deg[k]
	if di < 2 || dk < 2 {
		return math.NaN()
	}
	etaA := 2 * float64(a.Tri.Vertex[i]) / float64(di*(di-1))
	etaB := 2 * float64(b.Tri.Vertex[k]) / float64(dk*(dk-1))
	return Theta(di, dk) * etaA * etaB
}

// Phi returns the edge clustering scaling factor of Thm. 2:
//
//	φ_pq = (min(d_i,d_j) − 1)·(min(d_k,d_l) − 1) / (min(d_i·d_k, d_j·d_l) − 1)
//
// which lies in (0, 1) but — unlike θ — has no positive lower bound, so
// edge clustering coefficients are not controllable.
func Phi(di, dj, dk, dl int64) float64 {
	minA := di
	if dj < minA {
		minA = dj
	}
	minB := dk
	if dl < minB {
		minB = dl
	}
	minC := di * dk
	if dj*dl < minC {
		minC = dj * dl
	}
	return float64((minA-1)*(minB-1)) / float64(minC-1)
}

// EdgeClusteringAt returns the ground-truth edge clustering coefficient
// ξ_C(p,q) = φ_pq·ξ_A(i,j)·ξ_B(k,l) for C = A ⊗ B with loop-free factors
// (Thm. 2). NaN when any relevant min-degree is < 2.
func EdgeClusteringAt(a, b *Factor, p, q int64) float64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	j, l := ix.Split(q)
	di, dj, dk, dl := a.Deg[i], a.Deg[j], b.Deg[k], b.Deg[l]
	minA := di
	if dj < minA {
		minA = dj
	}
	minB := dk
	if dl < minB {
		minB = dl
	}
	if minA < 2 || minB < 2 {
		return math.NaN()
	}
	xiA := float64(a.EdgeTri(i, j)) / float64(minA-1)
	xiB := float64(b.EdgeTri(k, l)) / float64(minB-1)
	return Phi(di, dj, dk, dl) * xiA * xiB
}
