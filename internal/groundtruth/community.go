package groundtruth

import (
	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// CommunityKron computes the exact ground-truth CommunityStats of the
// Kronecker community S_C = S_A ⊗ S_B in C = (A+I) ⊗ (B+I) from factor
// community statistics only (Thm. 6):
//
//	m_in(S_C)  = 2·m_in(S_A)·m_in(S_B) + m_in(S_A)·|S_B| + |S_A|·m_in(S_B)
//	m_out(S_C) = m_out(S_A)·(½·m_out(S_B) + |S_B| + 2·m_in(S_B))
//	           + m_out(S_B)·(½·m_out(S_A) + |S_A| + 2·m_in(S_A))
//
// Both factors must be loop-free; the +I loops are supplied by the
// construction and excluded from edge counts (C − I_C convention).
func CommunityKron(a, b *Factor, sa, sb analytics.CommunityStats) analytics.CommunityStats {
	nC := a.N() * b.N()
	sizeC := sa.Size * sb.Size
	mIn := 2*sa.MIn*sb.MIn + sa.MIn*sb.Size + sa.Size*sb.MIn
	// The two ½·m_out products merge into a single m_out(S_A)·m_out(S_B).
	mOut := sa.MOut*sb.MOut + sa.MOut*(sb.Size+2*sb.MIn) + sb.MOut*(sa.Size+2*sa.MIn)
	cs := analytics.CommunityStats{Size: sizeC, MIn: mIn, MOut: mOut}
	if sizeC >= 2 {
		cs.RhoIn = 2 * float64(mIn) / float64(sizeC*(sizeC-1))
	}
	if sizeC >= 1 && sizeC < nC {
		cs.RhoOut = float64(mOut) / float64(sizeC*(nC-sizeC))
	}
	return cs
}

// CommunitiesKron computes ground-truth stats for the whole Kronecker
// partition Π_C = Π_A ⊗ Π_B (Def. 16) from factor partitions, ordered
// with the B index varying fastest (matching core.KronPartition). It also
// fills in the product vertex sets.
func CommunitiesKron(a, b *Factor, pa, pb [][]int64, statsA, statsB []analytics.CommunityStats) []analytics.CommunityStats {
	out := make([]analytics.CommunityStats, 0, len(pa)*len(pb))
	for ai := range pa {
		for bi := range pb {
			cs := CommunityKron(a, b, statsA[ai], statsB[bi])
			cs.Vertices = core.KronSet(pa[ai], pb[bi], b.N())
			out = append(out, cs)
		}
	}
	return out
}

// RhoInLowerBound returns the Cor. 6 bound
// ρ_in(S_C) ≥ θ·ρ_in(S_A)·ρ_in(S_B) with
// θ = (|S_A|−1)(|S_B|−1)/(|S_A||S_B|−1) ≥ 1/3, valid for |S_A|,|S_B| > 1.
func RhoInLowerBound(sa, sb analytics.CommunityStats) float64 {
	return Theta(sa.Size, sb.Size) * sa.RhoIn * sb.RhoIn
}

// RhoOutUpperBound returns a provable version of the Cor. 7 scaling law
// ρ_out(S_C) ≤ const(ω)·Ω·ρ_out(S_A)·ρ_out(S_B), requiring the paper's
// hypothesis m_out(S_A) ≥ |S_A| and m_out(S_B) ≥ |S_B|.
//
// NOTE — deviation from the paper as printed. With
// ω = max(m_in(S_A)/m_out(S_A), m_in(S_B)/m_out(S_B)), bounding each term
// of Thm. 6's m_out(S_C) by the hypothesis gives
//
//	m_out(S_C) ≤ (3 + 4ω)·m_out(S_A)·m_out(S_B),
//
// not the paper's (1 + 3ω) — e.g. two communities with m_in = 0,
// m_out = |S| give m_out(S_C) near 3·m_out(S_A)·m_out(S_B) > 1·…
// Likewise the exact size-ratio factor relating ρ_out(S_C) to the product
// of factor densities is
//
//	Ω = (n_A·n_B − |S_A||S_B|) / ((n_A − |S_A|)·(n_B − |S_B|)),
//
// for which the paper's (1+s)/(1−s) with s = |S_A||S_B|/(n_A n_B) is a
// valid approximation only when |S_A| ≪ n_A and |S_B| ≪ n_B (both
// expressions → 1). The paper's qualitative claim — external density is
// controlled from above by ρ_out(S_A)·ρ_out(S_B) times a modest factor —
// survives intact; this function returns the tight corrected bound, which
// the tests verify is an actual upper bound on the exact Thm. 6 density.
func RhoOutUpperBound(a, b *Factor, sa, sb analytics.CommunityStats) float64 {
	omega := float64(sa.MIn) / float64(sa.MOut)
	if w := float64(sb.MIn) / float64(sb.MOut); w > omega {
		omega = w
	}
	num := float64(a.N()*b.N() - sa.Size*sb.Size)
	den := float64((a.N() - sa.Size) * (b.N() - sb.Size))
	return (3 + 4*omega) * (num / den) * sa.RhoOut * sb.RhoOut
}

// NumCommunities returns |Π_C| = |Π_A|·|Π_B| (Sec. I table).
func NumCommunities(pa, pb [][]int64) int64 {
	return int64(len(pa)) * int64(len(pb))
}

// FactorCommunity is a convenience wrapper: exact CommunityStats of a set
// in the factor graph, used as input to CommunityKron.
func FactorCommunity(f *Factor, s []int64) analytics.CommunityStats {
	return analytics.Community(f.G, s)
}

// ProductCommunityOracle computes exact stats of S_C directly on a
// materialized product C — the oracle the Thm. 6 formulas are validated
// against in tests and experiments.
func ProductCommunityOracle(c *graph.Graph, sc []int64) analytics.CommunityStats {
	return analytics.Community(c, sc)
}
