package groundtruth

import (
	"fmt"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
)

// DegreeAt returns the ground-truth degree of product vertex p = γ(i,k) of
// C = A ⊗ B: d_C = d_A ⊗ d_B, i.e. d_p = d_i · d_k.
func DegreeAt(a, b *Factor, p int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	return a.Deg[i] * b.Deg[k]
}

// Degrees materializes the full degree vector d_C = d_A ⊗ d_B of
// C = A ⊗ B (length n_A·n_B).
func Degrees(a, b *Factor) []int64 {
	out := make([]int64, a.N()*b.N())
	ix := core.NewIndex(b.N())
	for i := int64(0); i < a.N(); i++ {
		for k := int64(0); k < b.N(); k++ {
			out[ix.Gamma(i, k)] = a.Deg[i] * b.Deg[k]
		}
	}
	return out
}

// DegreesWithSelfLoops returns the degree vector of the full-self-loop
// product C = (A+I) ⊗ (B+I) for loop-free factors:
// d_p = (d_i + 1)·(d_k + 1), counting the self loop at p once.
func DegreesWithSelfLoops(a, b *Factor) []int64 {
	out := make([]int64, a.N()*b.N())
	ix := core.NewIndex(b.N())
	for i := int64(0); i < a.N(); i++ {
		for k := int64(0); k < b.N(); k++ {
			out[ix.Gamma(i, k)] = (a.Deg[i] + 1) * (b.Deg[k] + 1)
		}
	}
	return out
}

// NumVertices returns n_C = n_A · n_B.
func NumVertices(a, b *Factor) int64 { return a.N() * b.N() }

// NumEdges returns m_C for C = A ⊗ B. For loop-free undirected factors
// this is the paper's scaling law m_C = 2·m_A·m_B; in general it is
// (arcs_A·arcs_B + loops_A·loops_B) / 2.
func NumEdges(a, b *Factor) int64 {
	edges, _ := core.NumProductEdges(a.G, b.G)
	return edges
}

// ProductComponents returns the ground-truth number of connected
// components of C = A ⊗ B for CONNECTED undirected factors with at least
// one edge each, by Weichsel's theorem (the paper's ref [1]): the tensor
// product of two connected graphs is connected iff at least one factor
// has an odd closed walk (is non-bipartite, counting self loops); if both
// are bipartite the product splits into exactly 2 components.
//
// The full-self-loop construction (A+I)⊗(B+I) is therefore always
// connected for connected factors — the design reason the paper's
// distance formulas assume loops.
func ProductComponents(a, b *Factor) (int64, error) {
	if !a.G.IsConnected() || !b.G.IsConnected() {
		return 0, fmt.Errorf("groundtruth: Weichsel's theorem needs connected factors")
	}
	if a.G.NumEdges() == 0 || b.G.NumEdges() == 0 {
		return 0, fmt.Errorf("groundtruth: factors need at least one edge")
	}
	if analytics.IsBipartite(a.G) && analytics.IsBipartite(b.G) {
		return 2, nil
	}
	return 1, nil
}

// EigenvectorCentralityKron returns the ground-truth eigenvector
// centrality of C = A ⊗ B from factor centralities: if x_A and x_B are
// the (unit) Perron vectors of A and B, then x_A ⊗ x_B is a unit
// eigenvector of A ⊗ B with eigenvalue λ_A·λ_B, and for connected
// non-bipartite factors it is C's Perron vector restricted to the
// component containing the mass — so eigenvector centrality is exactly
// controllable, the counterpart of the paper's distance-based centrality
// formulas for spectral centrality. iters is forwarded to the factor
// power iterations.
func EigenvectorCentralityKron(a, b *Factor, iters int) (vec []float64, lambda float64) {
	xa, la := analytics.EigenvectorCentrality(a.G, iters)
	xb, lb := analytics.EigenvectorCentrality(b.G, iters)
	ix := core.NewIndex(b.N())
	vec = make([]float64, a.N()*b.N())
	for i, va := range xa {
		for k, vb := range xb {
			vec[ix.Gamma(int64(i), int64(k))] = va * vb
		}
	}
	return vec, la * lb
}
