package groundtruth

import "kronlab/internal/core"

// --- Loop-free factors, C = A ⊗ B (results from [11], restated in the
// --- paper's Sec. I scaling-law table) ---

// VertexTrianglesAt returns t_p for p = γ(i,k) of C = A ⊗ B with loop-free
// factors: t_C = 2·t_A ⊗ t_B, i.e. t_p = 2·t_i·t_k.
func VertexTrianglesAt(a, b *Factor, p int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	return 2 * a.Tri.Vertex[i] * b.Tri.Vertex[k]
}

// VertexTriangles materializes t_C = 2·t_A ⊗ t_B.
func VertexTriangles(a, b *Factor) []int64 {
	a.RequireNoSelfLoops("t_C = 2·t_A⊗t_B")
	b.RequireNoSelfLoops("t_C = 2·t_A⊗t_B")
	ix := core.NewIndex(b.N())
	out := make([]int64, a.N()*b.N())
	for i := int64(0); i < a.N(); i++ {
		for k := int64(0); k < b.N(); k++ {
			out[ix.Gamma(i, k)] = 2 * a.Tri.Vertex[i] * b.Tri.Vertex[k]
		}
	}
	return out
}

// EdgeTrianglesAt returns Δ_pq for the product edge (p,q) of C = A ⊗ B
// with loop-free factors: Δ_C = Δ_A ⊗ Δ_B, i.e. Δ_pq = Δ_ij·Δ_kl.
func EdgeTrianglesAt(a, b *Factor, p, q int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	j, l := ix.Split(q)
	return a.EdgeTri(i, j) * b.EdgeTri(k, l)
}

// GlobalTriangles returns τ_C = 6·τ_A·τ_B for loop-free factors.
func GlobalTriangles(a, b *Factor) int64 {
	return 6 * a.Tri.Global * b.Tri.Global
}

// --- Full self loops in both factors, C = (A+I) ⊗ (B+I), with A and B
// --- loop-free (Sec. IV-A; Cor. 1 and Cor. 2) ---

// VertexTrianglesFullLoopsAt returns t_p for p = γ(i,k) of
// C = (A+I)⊗(B+I) (Cor. 1):
//
//	t_p = 2·t_i·t_k + 3·(t_i·d_k + d_i·d_k + d_i·t_k) + t_i + t_k.
func VertexTrianglesFullLoopsAt(a, b *Factor, p int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	ti, di := a.Tri.Vertex[i], a.Deg[i]
	tk, dk := b.Tri.Vertex[k], b.Deg[k]
	return 2*ti*tk + 3*(ti*dk+di*dk+di*tk) + ti + tk
}

// VertexTrianglesFullLoops materializes the Cor. 1 vector for all product
// vertices. Both factors must be loop-free (the loops are added by the
// construction itself).
func VertexTrianglesFullLoops(a, b *Factor) []int64 {
	a.RequireNoSelfLoops("Cor. 1")
	b.RequireNoSelfLoops("Cor. 1")
	ix := core.NewIndex(b.N())
	out := make([]int64, a.N()*b.N())
	for i := int64(0); i < a.N(); i++ {
		for k := int64(0); k < b.N(); k++ {
			out[ix.Gamma(i, k)] = VertexTrianglesFullLoopsAt(a, b, ix.Gamma(i, k))
		}
	}
	return out
}

// EdgeTrianglesFullLoopsAt returns Δ_pq for a non-loop edge (p,q) of
// C = (A+I)⊗(B+I) with loop-free factors (Cor. 2).
//
// NOTE — deviation from the paper as printed: expanding the appendix's
// (C² − 2C + I) ∘ (C − I) by cases gives
//
//	i≠j, k≠l:  Δ_pq = Δ_ij·Δ_kl + 2·(Δ_ij + Δ_kl) + 2
//	i=j, k≠l:  Δ_pq = Δ_kl·(d_i + 1) + 2·d_i
//	i≠j, k=l:  Δ_pq = Δ_ij·(d_k + 1) + 2·d_k
//
// whereas the paper's single displayed formula adds the same trailing
// "+2(d_i δ(i,j) + d_k δ(k,l) + 1)" in every case, overcounting the
// diagonal cases by 2 (e.g. A = B = K₂ gives C = K₄ with loops, where
// every edge is in exactly 2 triangles, but the printed formula yields 4
// on edges with i=j). The case expansion below is validated against exact
// counting on materialized products in this package's tests.
func EdgeTrianglesFullLoopsAt(a, b *Factor, p, q int64) int64 {
	ix := core.NewIndex(b.N())
	i, k := ix.Split(p)
	j, l := ix.Split(q)
	switch {
	case i != j && k != l:
		dij, dkl := a.EdgeTri(i, j), b.EdgeTri(k, l)
		return dij*dkl + 2*(dij+dkl) + 2
	case i == j && k != l:
		return b.EdgeTri(k, l)*(a.Deg[i]+1) + 2*a.Deg[i]
	case i != j && k == l:
		return a.EdgeTri(i, j)*(b.Deg[k]+1) + 2*b.Deg[k]
	default:
		panic("groundtruth: Cor. 2 applies to edges with p ≠ q, got a self loop")
	}
}

// GlobalTrianglesFullLoops returns τ for C = (A+I)⊗(B+I) by summing the
// Cor. 1 vertex vector: τ = Σ_p t_p / 3. Still polynomial in the factors
// only; closed form in factor aggregates:
//
//	3τ = 2·T_A·T_B + 3·(T_A·D_B + D_A·D_B + D_A·T_B) + T_A·n_B + n_A·T_B
//
// where T = Σ t_i and D = Σ d_i over each factor.
func GlobalTrianglesFullLoops(a, b *Factor) int64 {
	var ta, da, tb, db int64
	for i := int64(0); i < a.N(); i++ {
		ta += a.Tri.Vertex[i]
		da += a.Deg[i]
	}
	for k := int64(0); k < b.N(); k++ {
		tb += b.Tri.Vertex[k]
		db += b.Deg[k]
	}
	sum := 2*ta*tb + 3*(ta*db+da*db+da*tb) + ta*b.N() + a.N()*tb
	return sum / 3
}
