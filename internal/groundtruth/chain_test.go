package groundtruth

import (
	"math/rand"
	"testing"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// materializeChain builds the heterogeneous product the Chain* laws are
// checked against, by left-folding core.Product.
func materializeChain(t *testing.T, gs ...*graph.Graph) *graph.Graph {
	t.Helper()
	ch, err := core.NewChain(gs...)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ch.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func factorsOf(gs ...*graph.Graph) []*Factor {
	fs := make([]*Factor, len(gs))
	for i, g := range gs {
		fs[i] = NewFactor(g)
	}
	return fs
}

func chainIndexFor(t *testing.T, fs []*Factor) core.ChainIndex {
	t.Helper()
	dims := make([]int64, len(fs))
	for d, f := range fs {
		dims[d] = f.N()
	}
	ci, err := core.NewChainIndex(dims)
	if err != nil {
		t.Fatal(err)
	}
	return ci
}

func TestChainCountingLawsAgainstMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	ga := randomConnectedLoopFree(rng, 5)
	gb := randomConnectedLoopFree(rng, 4)
	gc := randomConnectedLoopFree(rng, 3)
	c := materializeChain(t, ga, gb, gc)
	fs := factorsOf(ga, gb, gc)

	if n, err := ChainNumVertices(fs); err != nil || n != c.NumVertices() {
		t.Errorf("n law: %d (err %v) != %d", n, err, c.NumVertices())
	}
	if arcs, err := ChainNumArcs(fs); err != nil || arcs != c.NumArcs() {
		t.Errorf("arc law: %d (err %v) != %d", arcs, err, c.NumArcs())
	}
	if m, err := ChainNumEdges(fs); err != nil || m != c.NumEdges() {
		t.Errorf("m law: %d (err %v) != %d", m, err, c.NumEdges())
	}

	exact := analytics.Triangles(c)
	if tau, err := ChainGlobalTriangles(fs); err != nil || tau != exact.Global {
		t.Errorf("τ law: %d (err %v) != %d", tau, err, exact.Global)
	}
	ci := chainIndexFor(t, fs)
	buf := make([]int64, len(fs))
	for p := int64(0); p < c.NumVertices(); p++ {
		coords := ci.SplitInto(p, buf)
		if got := ChainDegreeAt(fs, coords); got != c.Degree(p) {
			t.Fatalf("degree law fails at %d: %d != %d", p, got, c.Degree(p))
		}
		if got := ChainVertexTrianglesAt(fs, coords); got != exact.Vertex[p] {
			t.Fatalf("triangle law fails at %d: %d != %d", p, got, exact.Vertex[p])
		}
	}
}

func TestChainNumEdgesWithLoops(t *testing.T) {
	// The general (arcs+loops)/2 form must hold for factors with loops,
	// where the 2^{k−1} special case does not apply.
	rng := rand.New(rand.NewSource(409))
	ga := randomConnectedLoopFree(rng, 4).WithFullSelfLoops()
	gb := randomConnectedLoopFree(rng, 3)
	gc := randomConnectedLoopFree(rng, 3).WithFullSelfLoops()
	c := materializeChain(t, ga, gb, gc)
	fs := factorsOf(ga, gb, gc)
	if m, err := ChainNumEdges(fs); err != nil || m != c.NumEdges() {
		t.Errorf("m law with loops: %d (err %v) != %d", m, err, c.NumEdges())
	}
}

func TestChainDistanceLawsAgainstMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	ga := randomConnectedLoopFree(rng, 4).WithFullSelfLoops()
	gb := randomConnectedLoopFree(rng, 3).WithFullSelfLoops()
	gc := randomConnectedLoopFree(rng, 3).WithFullSelfLoops()
	c := materializeChain(t, ga, gb, gc)
	fs := factorsOf(ga, gb, gc)
	ci := chainIndexFor(t, fs)

	exactEcc := analytics.Eccentricities(c)
	for p := int64(0); p < c.NumVertices(); p++ {
		if got := ChainEccentricityAt(fs, ci.Split(p)); got != exactEcc[p] {
			t.Fatalf("ε law fails at %d: %d != %d", p, got, exactEcc[p])
		}
	}
	if got := ChainDiameter(fs); got != analytics.Diameter(c) {
		t.Errorf("diameter law: %d != %d", got, analytics.Diameter(c))
	}
	rows := analytics.AllPairsHops(c)
	for p := int64(0); p < c.NumVertices(); p += 3 {
		for q := int64(0); q < c.NumVertices(); q += 5 {
			if got := ChainHopsAt(fs, ci.Split(p), ci.Split(q)); got != rows[p][q] {
				t.Fatalf("hops law fails at (%d,%d): %d != %d", p, q, got, rows[p][q])
			}
		}
	}

	want := map[int64]int64{}
	for _, e := range exactEcc {
		want[e]++
	}
	got := ChainEccentricityHistogram(fs)
	if len(got) != len(want) {
		t.Fatalf("histogram sizes %d != %d", len(got), len(want))
	}
	for v, cnt := range want {
		if got[v] != cnt {
			t.Fatalf("hist[%d] = %d, want %d", v, got[v], cnt)
		}
	}
}

func TestChainCoordsOf(t *testing.T) {
	fs := factorsOf(clique3WithLoops(t), triangleGraph(t))
	coords, err := ChainCoordsOf(fs, 7)
	if err != nil || len(coords) != 2 {
		t.Fatalf("coords = %v, err %v", coords, err)
	}
	if got := coords[0]*3 + coords[1]; got != 7 {
		t.Fatalf("coords %v do not recompose to 7", coords)
	}
}

func TestChainAndPowerCountOverflow(t *testing.T) {
	// A 3-vertex, 9-arc clique-with-loops factor: n^k fits far past the
	// point where arcs^k overflows.
	ga := clique3WithLoops(t)
	f := NewFactor(ga)
	fs := make([]*Factor, 21)
	for i := range fs {
		fs[i] = f
	}
	if _, err := ChainNumArcs(fs); err == nil {
		t.Error("want arc-count overflow at 9^21")
	}
	if _, err := ChainNumEdges(fs); err == nil {
		t.Error("want edge-count overflow at 9^21")
	}
	// Vertex overflow: 40 factors of 3 vertices is 3^40 > 2^63.
	fs40 := make([]*Factor, 40)
	for i := range fs40 {
		fs40[i] = f
	}
	if _, err := ChainNumVertices(fs40); err == nil {
		t.Error("want vertex-count overflow at 3^40")
	}
	if _, err := PowerNumVertices(f, 40); err == nil {
		t.Error("want PowerNumVertices overflow at 3^40")
	}
	// PowerNumEdges overflow: a loop-free 3-clique has m=3; 2^{k−1}·3^k
	// overflows for k = 40 (6^40 ≫ 2^63).
	lf := NewFactor(triangleGraph(t))
	if _, err := PowerNumEdges(lf, 40); err == nil {
		t.Error("want PowerNumEdges overflow at k=40")
	}
	if m, err := PowerNumEdges(lf, 3); err != nil || m != 108 {
		t.Errorf("PowerNumEdges(triangle, 3) = %d (err %v), want 108", m, err)
	}
}

func clique3WithLoops(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.NewUndirected(3, []graph.Edge{
		{U: 0, V: 0}, {U: 1, V: 1}, {U: 2, V: 2},
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func triangleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
