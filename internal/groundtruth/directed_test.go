package groundtruth

import (
	"math/rand"
	"testing"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/graph"
	"kronlab/internal/matrix"
)

// randomDirected returns a random loop-free directed graph (no
// symmetrization).
func randomDirected(rng *rand.Rand, maxN int64) *graph.Graph {
	n := 2 + rng.Int63n(maxN-1)
	m := 1 + rng.Int63n(3*n)
	arcs := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if u == v {
			continue
		}
		arcs = append(arcs, graph.Edge{U: u, V: v})
	}
	g, err := graph.New(n, arcs)
	if err != nil {
		panic(err)
	}
	return g
}

func TestDirectedDegrees(t *testing.T) {
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	out := analytics.OutDegrees(g)
	in := analytics.InDegrees(g)
	if out[0] != 2 || out[1] != 1 || out[2] != 0 {
		t.Errorf("out = %v", out)
	}
	if in[0] != 0 || in[1] != 1 || in[2] != 2 {
		t.Errorf("in = %v", in)
	}
}

// Oracle: DirectedTriangles against matrix arithmetic
// (cycle = diag(A³), transitive = A ∘ A² with loops stripped).
func TestDirectedTrianglesMatchMatrixOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 25; trial++ {
		g := randomDirected(rng, 9)
		adj := matrix.FromGraph(g)
		noDiag := adj.Sub(adj.DiagMatrix())
		cube := noDiag.Pow(3)
		trans := noDiag.Hadamard(noDiag.Pow(2))
		st := analytics.DirectedTriangles(g)
		for v := 0; v < int(g.NumVertices()); v++ {
			if st.CycleVertex[v] != cube.At(v, v) {
				t.Fatalf("trial %d: cyc(%d) = %d, oracle %d", trial, v, st.CycleVertex[v], cube.At(v, v))
			}
		}
		var total int64
		idx := int64(-1)
		g.Arcs(func(u, v int64) bool {
			idx++
			if u == v {
				return true
			}
			if st.TransArc[idx] != trans.At(int(u), int(v)) {
				t.Fatalf("trial %d: trans(%d,%d) = %d, oracle %d",
					trial, u, v, st.TransArc[idx], trans.At(int(u), int(v)))
			}
			total += st.TransArc[idx]
			return true
		})
		if st.TransGlobal != total {
			t.Fatalf("trial %d: TransGlobal %d != Σ %d", trial, st.TransGlobal, total)
		}
	}
}

func TestDirectedTrianglesKnown(t *testing.T) {
	// A single directed 3-cycle: each vertex on 1 cycle, no transitive
	// closures.
	cyc, _ := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	st := analytics.DirectedTriangles(cyc)
	for v, c := range st.CycleVertex {
		if c != 1 {
			t.Errorf("cycle: cyc(%d) = %d", v, c)
		}
	}
	if st.CycleGlobal != 1 || st.TransGlobal != 0 {
		t.Errorf("cycle: global %d, trans %d", st.CycleGlobal, st.TransGlobal)
	}
	// A transitive triad 0→1→2, 0→2: one transitive closure, no cycles.
	tri, _ := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	st2 := analytics.DirectedTriangles(tri)
	if st2.CycleGlobal != 0 || st2.TransGlobal != 1 {
		t.Errorf("triad: cycles %d, trans %d", st2.CycleGlobal, st2.TransGlobal)
	}
	if st2.TransArc[tri.ArcIndex(0, 2)] != 1 {
		t.Error("closing arc (0,2) should carry the transitive count")
	}
}

// The directed Kronecker laws against exact counting on the product.
func TestDirectedKroneckerLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	for trial := 0; trial < 15; trial++ {
		ga, gb := randomDirected(rng, 8), randomDirected(rng, 8)
		a, b := NewDirectedFactor(ga), NewDirectedFactor(gb)
		c, err := core.Product(ga, gb)
		if err != nil {
			t.Fatal(err)
		}
		exact := analytics.DirectedTriangles(c)
		outC := analytics.OutDegrees(c)
		inC := analytics.InDegrees(c)
		for p := int64(0); p < c.NumVertices(); p++ {
			if DirectedOutDegreeAt(a, b, p) != outC[p] {
				t.Fatalf("trial %d: out-degree law fails at %d", trial, p)
			}
			if DirectedInDegreeAt(a, b, p) != inC[p] {
				t.Fatalf("trial %d: in-degree law fails at %d", trial, p)
			}
			if CycleTrianglesAt(a, b, p) != exact.CycleVertex[p] {
				t.Fatalf("trial %d: cycle law fails at %d: %d != %d",
					trial, p, CycleTrianglesAt(a, b, p), exact.CycleVertex[p])
			}
		}
		if GlobalCycleTriangles(a, b) != exact.CycleGlobal {
			t.Fatalf("trial %d: global cycle law %d != %d",
				trial, GlobalCycleTriangles(a, b), exact.CycleGlobal)
		}
		if GlobalTransitive(a, b) != exact.TransGlobal {
			t.Fatalf("trial %d: global transitive law %d != %d",
				trial, GlobalTransitive(a, b), exact.TransGlobal)
		}
		idx := int64(-1)
		c.Arcs(func(u, v int64) bool {
			idx++
			if u == v {
				return true
			}
			if TransitiveAt(a, b, u, v) != exact.TransArc[idx] {
				t.Fatalf("trial %d: transitive law fails at arc (%d,%d)", trial, u, v)
			}
			return true
		})
	}
}

func TestTransArcPanicsOnNonArc(t *testing.T) {
	g, _ := graph.New(3, []graph.Edge{{U: 0, V: 1}})
	f := NewDirectedFactor(g)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.transArc(1, 2)
}

func TestReciprocityKnown(t *testing.T) {
	// 0↔1 mutual, 1→2 one-way.
	g, _ := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}})
	mut, ow := analytics.Reciprocity(g)
	if mut != 1 || ow != 1 {
		t.Errorf("reciprocity = (%d,%d), want (1,1)", mut, ow)
	}
	// Undirected graphs are fully reciprocal.
	und, _ := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	mut, ow = analytics.Reciprocity(und)
	if mut != 2 || ow != 0 {
		t.Errorf("undirected reciprocity = (%d,%d), want (2,0)", mut, ow)
	}
}

func TestReciprocityKronLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	for trial := 0; trial < 20; trial++ {
		ga, gb := randomDirected(rng, 9), randomDirected(rng, 9)
		a, b := NewDirectedFactor(ga), NewDirectedFactor(gb)
		c, err := core.Product(ga, gb)
		if err != nil {
			t.Fatal(err)
		}
		wantMut, wantOW := analytics.Reciprocity(c)
		gotMut, gotOW := ReciprocityKron(a, b)
		if gotMut != wantMut || gotOW != wantOW {
			t.Fatalf("trial %d: reciprocity law (%d,%d) != exact (%d,%d)",
				trial, gotMut, gotOW, wantMut, wantOW)
		}
	}
}
