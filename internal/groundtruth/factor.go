// Package groundtruth implements every Kronecker ground-truth formula in
// the paper: degree (d_C = d_A ⊗ d_B), vertex/edge/global triangle counts
// for loop-free factors and for full-self-loop products (Cor. 1, Cor. 2),
// vertex and edge clustering coefficient scaling laws (Thm. 1, Thm. 2),
// hop distance, diameter, eccentricity and closeness centrality
// (Thm. 3–5, Cor. 3–5, including the compressed histogram form of
// Sec. V-B), and internal/external community edge counts and densities
// (Thm. 6, Cor. 6, Cor. 7).
//
// Formulas take factor-level quantities (degrees, triangle counts, hop
// rows) computed once per factor with internal/analytics; a Factor bundles
// them. Everything here runs in time polynomial in the factor sizes —
// sublinear in |E_C| — which is the paper's point.
package groundtruth

import (
	"fmt"

	"kronlab/internal/analytics"
	"kronlab/internal/graph"
)

// Factor bundles a factor graph with the exact per-factor statistics the
// Kronecker formulas consume. Build one per factor with NewFactor; the
// cost is polynomial in the (small) factor, never in the product.
type Factor struct {
	G   *graph.Graph
	Deg []int64                  // degree vector d
	Tri *analytics.TriangleStats // t (vertex), Δ (arc), τ (global)

	// Distance data, computed lazily by EnsureDistances: hop-count rows
	// hops(i, ·), eccentricities, and the diameter.
	Hops [][]int64
	Ecc  []int64
	Diam int64

	hasDistances bool
}

// NewFactor computes degrees and triangle statistics for g.
func NewFactor(g *graph.Graph) *Factor {
	return &Factor{
		G:   g,
		Deg: g.Degrees(),
		Tri: analytics.Triangles(g),
	}
}

// EnsureDistances computes the all-pairs hop matrix, eccentricities and
// diameter of the factor if not already present. Cost O(n·(n+arcs)).
func (f *Factor) EnsureDistances() {
	if f.hasDistances {
		return
	}
	f.Hops = analytics.AllPairsHops(f.G)
	n := f.G.NumVertices()
	f.Ecc = make([]int64, n)
	f.Diam = 0
	for i := int64(0); i < n; i++ {
		ecc := int64(0)
		for _, h := range f.Hops[i] {
			if h == analytics.Unreachable {
				ecc = analytics.Unreachable
				break
			}
			if h > ecc {
				ecc = h
			}
		}
		f.Ecc[i] = ecc
		if ecc == analytics.Unreachable {
			f.Diam = analytics.Unreachable
		} else if f.Diam != analytics.Unreachable && ecc > f.Diam {
			f.Diam = ecc
		}
	}
	f.hasDistances = true
}

// N returns the factor's vertex count.
func (f *Factor) N() int64 { return f.G.NumVertices() }

// EdgeTri returns Δ_ij for the factor, with the Cor. 2 convention that
// diagonal entries (i = j) are 0 for loop-free factors.
func (f *Factor) EdgeTri(i, j int64) int64 {
	if i == j {
		return 0
	}
	idx := f.G.ArcIndex(i, j)
	if idx < 0 {
		panic(fmt.Sprintf("groundtruth: (%d,%d) is not an arc of the factor", i, j))
	}
	return f.Tri.Arc[idx]
}

// RequireNoSelfLoops panics if the factor has self loops; used by formulas
// whose hypotheses demand A∘I = O (e.g. Thm. 1, Cor. 1).
func (f *Factor) RequireNoSelfLoops(formula string) {
	if f.G.NumSelfLoops() != 0 {
		panic(fmt.Sprintf("groundtruth: %s requires a loop-free factor, got %d self loops", formula, f.G.NumSelfLoops()))
	}
}

// RequireFullSelfLoops panics if any vertex of the factor lacks a self
// loop; used by the distance formulas (Thm. 3, Cor. 3–4, Thm. 4) whose
// hypothesis is A∘I = I.
func (f *Factor) RequireFullSelfLoops(formula string) {
	if f.G.NumSelfLoops() != f.G.NumVertices() {
		panic(fmt.Sprintf("groundtruth: %s requires full self loops, got %d/%d", formula, f.G.NumSelfLoops(), f.G.NumVertices()))
	}
}
