// Package labeled extends the Kronecker ground-truth machinery to
// vertex-labeled graphs, the second extension axis of the paper's
// predecessor [11] ("extended these results to the many types of directed
// graphs and labeled graphs"). A labeled factor assigns each vertex a
// small integer label; product vertices inherit the label PAIR
//
//	ℓ_C(γ(i,k)) = (ℓ_A(i), ℓ_B(k)),
//
// and labeled pattern statistics factor through label-restricted
// adjacency matrices: with D_x the diagonal indicator of label x,
// D_{(x,u)} = D_x ⊗ D_u, so for any pattern expressible as a trace or
// bilinear form of products of (D_* A) terms, the product statistic is
// the product of factor statistics. The package implements the two most
// used instances: labeled edge counts and ordered labeled triangle
// counts.
package labeled

import (
	"fmt"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// Graph is a vertex-labeled graph: labels[v] ∈ [0, NumLabels).
type Graph struct {
	G      *graph.Graph
	Labels []int64
	K      int64 // number of distinct labels (label space size)
}

// New validates labels and wraps g. Labels must lie in [0, k).
func New(g *graph.Graph, labels []int64, k int64) (*Graph, error) {
	if int64(len(labels)) != g.NumVertices() {
		return nil, fmt.Errorf("labeled: %d labels for %d vertices", len(labels), g.NumVertices())
	}
	for v, l := range labels {
		if l < 0 || l >= k {
			return nil, fmt.Errorf("labeled: vertex %d has label %d outside [0,%d)", v, l, k)
		}
	}
	return &Graph{G: g, Labels: labels, K: k}, nil
}

// PairLabel encodes the product label (x, u) as x·kB + u — the same γ map
// applied to label space, so product labels are again dense integers in
// [0, kA·kB).
func PairLabel(x, u, kB int64) int64 { return x*kB + u }

// ProductLabels returns the label vector of C = A ⊗ B under the pair
// encoding: ℓ_C(γ(i,k)) = PairLabel(ℓ_A(i), ℓ_B(k)).
func ProductLabels(a, b *Graph) []int64 {
	ix := core.NewIndex(b.G.NumVertices())
	out := make([]int64, a.G.NumVertices()*b.G.NumVertices())
	for i := int64(0); i < a.G.NumVertices(); i++ {
		for k := int64(0); k < b.G.NumVertices(); k++ {
			out[ix.Gamma(i, k)] = PairLabel(a.Labels[i], b.Labels[k], b.K)
		}
	}
	return out
}

// Product materializes the labeled Kronecker product.
func Product(a, b *Graph) (*Graph, error) {
	cg, err := core.Product(a.G, b.G)
	if err != nil {
		return nil, err
	}
	return New(cg, ProductLabels(a, b), a.K*b.K)
}

// ArcCounts returns the k×k matrix of arc counts by endpoint labels:
// counts[x][y] = #{ (u,v) arcs : ℓ(u)=x, ℓ(v)=y } = 1ᵗ D_x A D_y 1.
func (lg *Graph) ArcCounts() [][]int64 {
	out := make([][]int64, lg.K)
	for i := range out {
		out[i] = make([]int64, lg.K)
	}
	lg.G.Arcs(func(u, v int64) bool {
		out[lg.Labels[u]][lg.Labels[v]]++
		return true
	})
	return out
}

// KronArcCounts predicts the product's labeled arc counts from factor
// counts: since D_{(x,u)} (A⊗B) D_{(y,w)} = (D_x A D_y) ⊗ (D_u B D_w),
// counts_C[(x,u)][(y,w)] = counts_A[x][y] · counts_B[u][w].
func KronArcCounts(a, b *Graph) [][]int64 {
	ca, cb := a.ArcCounts(), b.ArcCounts()
	kC := a.K * b.K
	out := make([][]int64, kC)
	for i := range out {
		out[i] = make([]int64, kC)
	}
	for x := int64(0); x < a.K; x++ {
		for y := int64(0); y < a.K; y++ {
			if ca[x][y] == 0 {
				continue
			}
			for u := int64(0); u < b.K; u++ {
				for w := int64(0); w < b.K; w++ {
					out[PairLabel(x, u, b.K)][PairLabel(y, w, b.K)] = ca[x][y] * cb[u][w]
				}
			}
		}
	}
	return out
}

// LabelHistogram returns the count of vertices per label.
func (lg *Graph) LabelHistogram() []int64 {
	out := make([]int64, lg.K)
	for _, l := range lg.Labels {
		out[l]++
	}
	return out
}

// OrderedTriangles returns the k×k×k tensor of ordered labeled closed
// triangles: T[x][y][z] = trace(D_x A D_y A D_z A) — the number of closed
// walks i→j→m→i with ℓ(i)=x, ℓ(j)=y, ℓ(m)=z, on the loop-stripped graph.
// Each undirected triangle appears 6 times across its ordered label
// rotations/reflections (fewer distinct entries when labels repeat, but
// the total over the tensor is always 6τ).
func (lg *Graph) OrderedTriangles() [][][]int64 {
	k := lg.K
	out := make([][][]int64, k)
	for x := range out {
		out[x] = make([][]int64, k)
		for y := range out[x] {
			out[x][y] = make([]int64, k)
		}
	}
	g := lg.G
	for i := int64(0); i < g.NumVertices(); i++ {
		for _, j := range g.Neighbors(i) {
			if j == i {
				continue
			}
			for _, m := range g.Neighbors(j) {
				if m == j || m == i {
					continue
				}
				if g.HasArc(m, i) {
					out[lg.Labels[i]][lg.Labels[j]][lg.Labels[m]]++
				}
			}
		}
	}
	return out
}

// KronOrderedTriangles predicts the product's ordered labeled triangle
// tensor: trace((D_xA D_yA D_zA) ⊗ (D_uB D_wB D_sB)) factors, so
// T_C[(x,u)][(y,w)][(z,s)] = T_A[x][y][z] · T_B[u][w][s].
func KronOrderedTriangles(a, b *Graph) [][][]int64 {
	ta, tb := a.OrderedTriangles(), b.OrderedTriangles()
	kC := a.K * b.K
	out := make([][][]int64, kC)
	for x := range out {
		out[x] = make([][]int64, kC)
		for y := range out[x] {
			out[x][y] = make([]int64, kC)
		}
	}
	for x := int64(0); x < a.K; x++ {
		for y := int64(0); y < a.K; y++ {
			for z := int64(0); z < a.K; z++ {
				va := ta[x][y][z]
				if va == 0 {
					continue
				}
				for u := int64(0); u < b.K; u++ {
					for w := int64(0); w < b.K; w++ {
						for s := int64(0); s < b.K; s++ {
							out[PairLabel(x, u, b.K)][PairLabel(y, w, b.K)][PairLabel(z, s, b.K)] = va * tb[u][w][s]
						}
					}
				}
			}
		}
	}
	return out
}
