package labeled

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronlab/internal/graph"
)

// randomLabeled builds a random undirected labeled graph.
func randomLabeled(rng *rand.Rand, maxN, k int64) *Graph {
	n := 2 + rng.Int63n(maxN-1)
	m := rng.Int63n(3 * n)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = rng.Int63n(k)
	}
	lg, err := New(g, labels, k)
	if err != nil {
		panic(err)
	}
	return lg
}

func TestNewValidation(t *testing.T) {
	g, _ := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := New(g, []int64{0, 1}, 2); err == nil {
		t.Error("wrong label count should error")
	}
	if _, err := New(g, []int64{0, 1, 2}, 2); err == nil {
		t.Error("out-of-range label should error")
	}
	if _, err := New(g, []int64{0, 1, 1}, 2); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestPairLabelBijective(t *testing.T) {
	seen := map[int64]bool{}
	for x := int64(0); x < 3; x++ {
		for u := int64(0); u < 4; u++ {
			p := PairLabel(x, u, 4)
			if p < 0 || p >= 12 || seen[p] {
				t.Fatalf("PairLabel(%d,%d) = %d not a bijection", x, u, p)
			}
			seen[p] = true
		}
	}
}

func TestProductLabelsMatchCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomLabeled(rng, 6, 2)
	b := randomLabeled(rng, 5, 3)
	c, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nB := b.G.NumVertices()
	for p := int64(0); p < c.G.NumVertices(); p++ {
		i, k := p/nB, p%nB
		want := PairLabel(a.Labels[i], b.Labels[k], b.K)
		if c.Labels[p] != want {
			t.Fatalf("label(%d) = %d, want %d", p, c.Labels[p], want)
		}
	}
	if c.K != a.K*b.K {
		t.Errorf("K_C = %d, want %d", c.K, a.K*b.K)
	}
}

func TestLabelHistogramLaw(t *testing.T) {
	// Product label histogram = outer product of factor histograms.
	rng := rand.New(rand.NewSource(3))
	a := randomLabeled(rng, 8, 3)
	b := randomLabeled(rng, 7, 2)
	c, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ha, hb, hc := a.LabelHistogram(), b.LabelHistogram(), c.LabelHistogram()
	for x := int64(0); x < a.K; x++ {
		for u := int64(0); u < b.K; u++ {
			if hc[PairLabel(x, u, b.K)] != ha[x]*hb[u] {
				t.Fatalf("label histogram law fails at (%d,%d)", x, u)
			}
		}
	}
}

// The labeled arc-count Kronecker law against direct counting on the
// materialized product.
func TestKronArcCountsLaw(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomLabeled(rng, 7, 2)
		b := randomLabeled(rng, 6, 3)
		c, err := Product(a, b)
		if err != nil {
			return false
		}
		pred := KronArcCounts(a, b)
		got := c.ArcCounts()
		for x := range got {
			for y := range got[x] {
				if got[x][y] != pred[x][y] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The ordered labeled triangle tensor law against direct enumeration.
func TestKronOrderedTrianglesLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		a := randomLabeled(rng, 7, 2)
		b := randomLabeled(rng, 6, 2)
		c, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pred := KronOrderedTriangles(a, b)
		got := c.OrderedTriangles()
		for x := range got {
			for y := range got[x] {
				for z := range got[x][y] {
					if got[x][y][z] != pred[x][y][z] {
						t.Fatalf("trial %d: tensor law fails at (%d,%d,%d): %d != %d",
							trial, x, y, z, got[x][y][z], pred[x][y][z])
					}
				}
			}
		}
	}
}

// Tensor total = 6τ (every undirected triangle has 6 ordered walks).
func TestOrderedTrianglesTotal(t *testing.T) {
	// K4 with labels 0,0,1,1: τ = 4 → tensor total 24.
	g, _ := graph.NewUndirected(4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	lg, err := New(g, []int64{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tens := lg.OrderedTriangles()
	var total int64
	for _, m := range tens {
		for _, row := range m {
			for _, v := range row {
				total += v
			}
		}
	}
	if total != 24 {
		t.Errorf("tensor total = %d, want 6·4", total)
	}
	// Monochromatic (0,0,0) triangles: only {0,1,x} triangles need a
	// third 0-labeled vertex — none exist, so T[0][0][0] = 0.
	if tens[0][0][0] != 0 {
		t.Errorf("T[0][0][0] = %d, want 0", tens[0][0][0])
	}
	// Mixed (0,0,1): triangles {0,1,2} and {0,1,3} traversed i→j→m with
	// labels 0,0,1: ordered walks 0→1→2, 1→0→2, 0→1→3, 1→0→3 → 4.
	if tens[0][0][1] != 4 {
		t.Errorf("T[0][0][1] = %d, want 4", tens[0][0][1])
	}
}

func TestOrderedTrianglesIgnoreLoops(t *testing.T) {
	g, _ := graph.NewUndirected(3, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 0, V: 0}})
	lg, err := New(g, []int64{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := lg.OrderedTriangles()[0][0][0]; got != 6 {
		t.Errorf("loop-contaminated triangle count = %d, want 6", got)
	}
}
