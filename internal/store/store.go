// Package store provides a sharded on-disk edge store for product graphs
// too large for memory — the storage side the paper's Sec. III leaves
// open ("the processor responsible for generating an edge must then send
// it to the processor responsible for its storage"). A store is a
// directory with a small text manifest and S binary shard files of raw
// little-endian (u, v) int64 pairs; edges are routed to shards by a
// pluggable shard function, mirroring the owner maps of internal/dist.
//
// Layout:
//
//	dir/MANIFEST    "kronstore 1\nn <vertices>\nshards <S>\ncount <c0> <c1> …"
//	dir/shard-0000  raw 16-byte edge records
//	dir/…
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"kronlab/internal/graph"
)

// RecordSize is the byte length of one binary edge record: two
// little-endian int64 endpoints. The record format is shared by shard
// files and by kronserve's binary edge stream.
const RecordSize = 16

// PutRecord encodes the edge (u, v) into b, which must be at least
// RecordSize bytes.
func PutRecord(b []byte, u, v int64) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(u))
	binary.LittleEndian.PutUint64(b[8:16], uint64(v))
}

// GetRecord decodes one edge record from b.
func GetRecord(b []byte) (u, v int64) {
	return int64(binary.LittleEndian.Uint64(b[0:8])),
		int64(binary.LittleEndian.Uint64(b[8:16]))
}

// ShardFunc routes an edge to one of s shards.
type ShardFunc func(u, v int64, s int) int

// BySource hashes the source endpoint (matches dist.OwnerBySource).
func BySource(u, _ int64, s int) int {
	return int((uint64(u) * 0x9e3779b97f4a7c15) % uint64(s))
}

const manifestName = "MANIFEST"

func shardName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// Writer streams edges into a sharded store.
type Writer struct {
	dir    string
	n      int64
	files  []*os.File
	bufs   []*bufio.Writer
	counts []int64
	shard  ShardFunc
	closed bool
}

// NewWriter creates (or truncates) a store under dir for a graph on n
// vertices with the given shard count. shard may be nil (BySource).
func NewWriter(dir string, n int64, shards int, shard ShardFunc) (*Writer, error) {
	if shards < 1 || shards > 9999 {
		return nil, fmt.Errorf("store: shard count %d out of range [1,9999]", shards)
	}
	if n < 0 {
		return nil, fmt.Errorf("store: negative vertex count %d", n)
	}
	if shard == nil {
		shard = BySource
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	w := &Writer{dir: dir, n: n, shard: shard,
		files:  make([]*os.File, shards),
		bufs:   make([]*bufio.Writer, shards),
		counts: make([]int64, shards)}
	for i := range w.files {
		f, err := os.Create(filepath.Join(dir, shardName(i)))
		if err != nil {
			w.abort()
			return nil, fmt.Errorf("store: creating shard %d: %w", i, err)
		}
		w.files[i] = f
		w.bufs[i] = bufio.NewWriterSize(f, 1<<16)
	}
	return w, nil
}

func (w *Writer) abort() {
	for _, f := range w.files {
		if f != nil {
			f.Close()
		}
	}
}

// Append routes one edge to its shard.
func (w *Writer) Append(u, v int64) error {
	if w.closed {
		return fmt.Errorf("store: Append after Close")
	}
	if u < 0 || u >= w.n || v < 0 || v >= w.n {
		return fmt.Errorf("store: edge (%d,%d) out of range [0,%d)", u, v, w.n)
	}
	s := w.shard(u, v, len(w.files))
	var rec [RecordSize]byte
	PutRecord(rec[:], u, v)
	if _, err := w.bufs[s].Write(rec[:]); err != nil {
		return fmt.Errorf("store: writing shard %d: %w", s, err)
	}
	w.counts[s]++
	return nil
}

// Close flushes shards and writes the manifest. The store is unreadable
// until Close succeeds.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	for i, b := range w.bufs {
		if err := b.Flush(); err != nil {
			w.abort()
			return fmt.Errorf("store: flushing shard %d: %w", i, err)
		}
		if err := w.files[i].Close(); err != nil {
			return fmt.Errorf("store: closing shard %d: %w", i, err)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "kronstore 1\nn %d\nshards %d\ncount", w.n, len(w.files))
	for _, c := range w.counts {
		fmt.Fprintf(&sb, " %d", c)
	}
	sb.WriteByte('\n')
	return os.WriteFile(filepath.Join(w.dir, manifestName), []byte(sb.String()), 0o644)
}

// Store is a read handle on a closed store.
type Store struct {
	Dir    string
	N      int64
	Counts []int64
}

// Open validates the manifest and shard files of a store directory.
func Open(dir string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 || lines[0] != "kronstore 1" {
		return nil, fmt.Errorf("store: bad manifest in %s", dir)
	}
	n, err := parseField(lines[1], "n")
	if err != nil {
		return nil, err
	}
	shards, err := parseField(lines[2], "shards")
	if err != nil {
		return nil, err
	}
	countFields := strings.Fields(lines[3])
	if len(countFields) != int(shards)+1 || countFields[0] != "count" {
		return nil, fmt.Errorf("store: malformed count line %q", lines[3])
	}
	st := &Store{Dir: dir, N: n, Counts: make([]int64, shards)}
	for i := range st.Counts {
		c, err := strconv.ParseInt(countFields[i+1], 10, 64)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("store: bad count %q", countFields[i+1])
		}
		st.Counts[i] = c
		info, err := os.Stat(filepath.Join(dir, shardName(i)))
		if err != nil {
			return nil, fmt.Errorf("store: missing shard %d: %w", i, err)
		}
		if info.Size() != c*RecordSize {
			return nil, fmt.Errorf("store: shard %d has %d bytes, manifest says %d edges", i, info.Size(), c)
		}
	}
	return st, nil
}

// TotalEdges returns the edge count across shards.
func (st *Store) TotalEdges() int64 {
	var t int64
	for _, c := range st.Counts {
		t += c
	}
	return t
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.Counts) }

// IterShard streams the edges of one shard through yield; yield returning
// false stops early.
func (st *Store) IterShard(i int, yield func(u, v int64) bool) error {
	if i < 0 || i >= len(st.Counts) {
		return fmt.Errorf("store: shard %d out of range", i)
	}
	f, err := os.Open(filepath.Join(st.Dir, shardName(i)))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var rec [RecordSize]byte
	for e := int64(0); e < st.Counts[i]; e++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("store: shard %d edge %d: %w", i, e, err)
		}
		u, v := GetRecord(rec[:])
		if !yield(u, v) {
			return nil
		}
	}
	return nil
}

// Iter streams every edge of every shard.
func (st *Store) Iter(yield func(u, v int64) bool) error {
	stop := false
	for i := range st.Counts {
		if err := st.IterShard(i, func(u, v int64) bool {
			if !yield(u, v) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// LoadGraph materializes the whole store as a Graph (arcs as stored).
func (st *Store) LoadGraph() (*graph.Graph, error) {
	arcs := make([]graph.Edge, 0, st.TotalEdges())
	if err := st.Iter(func(u, v int64) bool {
		arcs = append(arcs, graph.Edge{U: u, V: v})
		return true
	}); err != nil {
		return nil, err
	}
	return graph.New(st.N, arcs)
}

func parseField(line, name string) (int64, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != name {
		return 0, fmt.Errorf("store: malformed manifest line %q", line)
	}
	v, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("store: bad %s value %q", name, fields[1])
	}
	return v, nil
}

// ShardWriter writes a single shard file — the per-rank half of a
// distributed generation-to-disk pipeline, where each simulated rank owns
// exactly one shard and no coordination is needed until the manifest.
type ShardWriter struct {
	f     *os.File
	buf   *bufio.Writer
	scr   []byte // AppendBlock's encode scratch, reused across blocks
	count int64
}

// NewShardWriter creates (or truncates) shard i under dir.
func NewShardWriter(dir string, i int) (*ShardWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, shardName(i)))
	if err != nil {
		return nil, err
	}
	return &ShardWriter{f: f, buf: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Append writes one edge record.
func (sw *ShardWriter) Append(u, v int64) error {
	var rec [RecordSize]byte
	PutRecord(rec[:], u, v)
	if _, err := sw.buf.Write(rec[:]); err != nil {
		return err
	}
	sw.count++
	return nil
}

// AppendBlock writes a whole block of edges as one contiguous run of
// 16-byte records — header-free, so the encoded block passes through the
// bufio layer in large aligned writes (writev-shaped) instead of one
// 16-byte Write per edge. The encode scratch is owned by the writer and
// reused across blocks; callers retain ownership of edges.
func (sw *ShardWriter) AppendBlock(edges []graph.Edge) error {
	need := len(edges) * RecordSize
	if cap(sw.scr) < need {
		sw.scr = make([]byte, need)
	}
	scr := sw.scr[:need]
	for i, e := range edges {
		PutRecord(scr[i*RecordSize:], e.U, e.V)
	}
	if _, err := sw.buf.Write(scr); err != nil {
		return err
	}
	sw.count += int64(len(edges))
	return nil
}

// Count returns the records written so far.
func (sw *ShardWriter) Count() int64 { return sw.count }

// Close flushes and closes the shard file.
func (sw *ShardWriter) Close() error {
	if err := sw.buf.Flush(); err != nil {
		sw.f.Close()
		return err
	}
	return sw.f.Close()
}

// Recover rebuilds the manifest of a store whose writer died before (or
// while) finalizing: it scans the consecutive run of shard files starting
// at shard-0000, truncates any trailing partial record left by an
// interrupted Append, writes a fresh manifest from the surviving sizes,
// and returns the reopened store. Complete records are never discarded. A
// gap in the shard numbering ends the scan — shards past the gap cannot
// be distinguished from another store's leftovers, so recovering them is
// refused with an error rather than silently dropping data.
func Recover(dir string, n int64) (*Store, error) {
	var counts []int64
	for i := 0; ; i++ {
		info, err := os.Stat(filepath.Join(dir, shardName(i)))
		if os.IsNotExist(err) {
			for j := i + 1; j <= i+1+len(counts); j++ {
				if _, err := os.Stat(filepath.Join(dir, shardName(j))); err == nil {
					return nil, fmt.Errorf("store: recover %s: shard %d missing but shard %d exists", dir, i, j)
				}
			}
			break
		}
		if err != nil {
			return nil, fmt.Errorf("store: recover %s: %w", dir, err)
		}
		c := info.Size() / RecordSize
		if rem := info.Size() % RecordSize; rem != 0 {
			if err := os.Truncate(filepath.Join(dir, shardName(i)), c*RecordSize); err != nil {
				return nil, fmt.Errorf("store: recover shard %d: truncating partial record: %w", i, err)
			}
		}
		counts = append(counts, c)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("store: recover %s: no shard files", dir)
	}
	if err := WriteManifest(dir, n, counts); err != nil {
		return nil, err
	}
	return Open(dir)
}

// WriteManifest finalizes a store whose shards were written externally
// (e.g. one per rank by NewShardWriter).
func WriteManifest(dir string, n int64, counts []int64) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kronstore 1\nn %d\nshards %d\ncount", n, len(counts))
	for _, c := range counts {
		fmt.Fprintf(&sb, " %d", c)
	}
	sb.WriteByte('\n')
	return os.WriteFile(filepath.Join(dir, manifestName), []byte(sb.String()), 0o644)
}
