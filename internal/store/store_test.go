package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

func writeAll(t *testing.T, dir string, g *graph.Graph, shards int, f ShardFunc) *Store {
	t.Helper()
	w, err := NewWriter(dir, g.NumVertices(), shards, f)
	if err != nil {
		t.Fatal(err)
	}
	g.Arcs(func(u, v int64) bool {
		if err := w.Append(u, v); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRoundTrip(t *testing.T) {
	g := gen.MustRMAT(gen.Graph500Params(5, 1))
	for _, shards := range []int{1, 3, 8} {
		dir := t.TempDir()
		st := writeAll(t, dir, g, shards, nil)
		if st.TotalEdges() != g.NumArcs() {
			t.Fatalf("shards=%d: stored %d arcs, want %d", shards, st.TotalEdges(), g.NumArcs())
		}
		if st.Shards() != shards || st.N != g.NumVertices() {
			t.Fatalf("shards=%d: manifest fields wrong: %+v", shards, st)
		}
		loaded, err := st.LoadGraph()
		if err != nil {
			t.Fatal(err)
		}
		if !loaded.Equal(g) {
			t.Fatalf("shards=%d: round trip lost structure", shards)
		}
	}
}

func TestShardRouting(t *testing.T) {
	g := gen.ER(30, 0.4, 2)
	dir := t.TempDir()
	st := writeAll(t, dir, g, 4, BySource)
	// Every edge in shard i must be routed there by BySource.
	for i := 0; i < 4; i++ {
		if err := st.IterShard(i, func(u, v int64) bool {
			if BySource(u, v, 4) != i {
				t.Fatalf("edge (%d,%d) misrouted to shard %d", u, v, i)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIterEarlyStop(t *testing.T) {
	g := gen.ER(20, 0.5, 3)
	st := writeAll(t, t.TempDir(), g, 2, nil)
	var seen int
	if err := st.Iter(func(u, v int64) bool {
		seen++
		return seen < 5
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Errorf("early stop saw %d", seen)
	}
}

func TestWriterValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewWriter(dir, 10, 0, nil); err == nil {
		t.Error("0 shards should error")
	}
	if _, err := NewWriter(dir, -1, 2, nil); err == nil {
		t.Error("negative n should error")
	}
	w, err := NewWriter(dir, 5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, 0); err == nil {
		t.Error("out-of-range edge should error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, 1); err == nil {
		t.Error("Append after Close should error")
	}
	if err := w.Close(); err != nil {
		t.Error("double Close should be a no-op")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	g := gen.ER(15, 0.4, 5)
	dir := t.TempDir()
	writeAll(t, dir, g, 2, nil)

	// Truncated shard.
	shard0 := filepath.Join(dir, "shard-0000")
	data, err := os.ReadFile(shard0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard0, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("truncated shard should fail Open")
	}
	if err := os.WriteFile(shard0, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Corrupt manifest variants.
	man := filepath.Join(dir, manifestName)
	for _, bad := range []string{
		"wrongmagic 1\nn 15\nshards 2\ncount 1 1\n",
		"kronstore 1\nn -3\nshards 2\ncount 1 1\n",
		"kronstore 1\nn 15\nshards 2\ncount 1\n",
		"kronstore 1\nn 15\n",
	} {
		if err := os.WriteFile(man, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Errorf("manifest %q should fail Open", strings.Split(bad, "\n")[0])
		}
	}

	// Missing manifest entirely.
	if err := os.Remove(man); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("missing manifest should fail Open")
	}
}

func TestOpenRejectsMissingShardAndBadCounts(t *testing.T) {
	g := gen.ER(20, 0.4, 11)
	dir := t.TempDir()
	st := writeAll(t, dir, g, 3, nil)

	// Count line with a non-numeric entry.
	man := filepath.Join(dir, manifestName)
	bad := "kronstore 1\nn 20\nshards 3\ncount 1 x 1\n"
	if err := os.WriteFile(man, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("non-numeric count should fail Open")
	}

	// Count line disagreeing with a shard's actual size.
	wrong := fmt.Sprintf("kronstore 1\nn 20\nshards 3\ncount %d %d %d\n",
		st.Counts[0]+1, st.Counts[1], st.Counts[2])
	if err := os.WriteFile(man, []byte(wrong), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("count/size mismatch should fail Open")
	}

	// Shard file deleted out from under a valid manifest.
	if err := WriteManifest(dir, st.N, st.Counts); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, shardName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("missing shard file should fail Open")
	}
}

// TestRecoverPartialShards simulates a writer that died mid-stream: no
// manifest, one shard ending in a partial record. Recover must truncate
// the torn record, keep every complete one, and yield an openable store.
func TestRecoverPartialShards(t *testing.T) {
	g := gen.ER(25, 0.4, 13)
	dir := t.TempDir()
	st := writeAll(t, dir, g, 3, nil)
	wantTotal := st.TotalEdges()

	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	shard1 := filepath.Join(dir, shardName(1))
	data, err := os.ReadFile(shard1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < RecordSize {
		t.Fatalf("test graph too small: shard 1 has %d bytes", len(data))
	}
	// Leave a torn record: strip the last 7 bytes of the final record.
	if err := os.WriteFile(shard1, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.TotalEdges(); got != wantTotal-1 {
		t.Errorf("recovered %d edges, want %d (one torn record dropped)", got, wantTotal-1)
	}
	if rec.Shards() != 3 || rec.N != g.NumVertices() {
		t.Errorf("recovered store fields wrong: %+v", rec)
	}
	// Every surviving record must be intact and routable.
	if err := rec.Iter(func(u, v int64) bool {
		if u < 0 || u >= rec.N || v < 0 || v >= rec.N {
			t.Fatalf("recovered edge (%d,%d) out of range", u, v)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// And the recovered store must survive a normal Open.
	if _, err := Open(dir); err != nil {
		t.Errorf("recovered store fails Open: %v", err)
	}
}

func TestRecoverRefusesGaps(t *testing.T) {
	dir := t.TempDir()
	if _, err := Recover(dir, 5); err == nil {
		t.Error("recover of empty dir should error")
	}
	// shard-0000 absent but shard-0001 present: ambiguous, must refuse.
	if err := os.WriteFile(filepath.Join(dir, shardName(1)), make([]byte, RecordSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, 5); err == nil {
		t.Error("recover across a shard gap should error")
	}
}

func TestIterShardRange(t *testing.T) {
	st := writeAll(t, t.TempDir(), gen.ER(10, 0.5, 7), 2, nil)
	if err := st.IterShard(5, func(u, v int64) bool { return true }); err == nil {
		t.Error("out-of-range shard should error")
	}
}

// The intended use: stream a product straight to disk during generation,
// reload, validate against ground truth.
func TestStoreProductPipeline(t *testing.T) {
	a := gen.PrefAttach(10, 2, 8)
	b := gen.ER(8, 0.5, 9)
	dir := t.TempDir()
	w, err := NewWriter(dir, a.NumVertices()*b.NumVertices(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	core.StreamProduct(a, b, func(u, v int64) bool {
		if err := w.Append(u, v); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Equal(want) {
		t.Fatal("streamed store differs from in-memory product")
	}
}
