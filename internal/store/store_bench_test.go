package store

import (
	"testing"

	"kronlab/internal/core"
	"kronlab/internal/gen"
)

// Streaming a product to disk: edges/second through the sharded writer.
func BenchmarkStreamToStore(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(5, 1))
	bb := gen.MustRMAT(gen.Graph500Params(5, 2))
	n := a.NumVertices() * bb.NumVertices()
	b.SetBytes(a.NumArcs() * bb.NumArcs() * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		w, err := NewWriter(dir, n, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		core.StreamProduct(a, bb, func(u, v int64) bool {
			if err := w.Append(u, v); err != nil {
				b.Fatal(err)
			}
			return true
		})
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreIter(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(5, 3))
	dir := b.TempDir()
	w, err := NewWriter(dir, a.NumVertices(), 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	a.Arcs(func(u, v int64) bool {
		if err := w.Append(u, v); err != nil {
			b.Fatal(err)
		}
		return true
	})
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.TotalEdges() * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var count int64
		if err := st.Iter(func(u, v int64) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}
