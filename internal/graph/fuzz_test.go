package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that anything
// it accepts round-trips through a graph build.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n3 4 extra\n")
	f.Add("a b\n")
	f.Add("-1 5\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		edges, n, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range edges {
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				t.Fatalf("accepted out-of-range edge %v with n=%d", e, n)
			}
		}
		// CSR construction allocates O(n); the parser legitimately accepts
		// sparse ids up to 2⁶³, so cap before materializing.
		if n > 1<<20 {
			return
		}
		g, err := NewUndirected(n, edges)
		if err != nil {
			t.Fatalf("parsed edges failed to build: %v", err)
		}
		if !g.IsSymmetric() {
			t.Fatal("built graph not symmetric")
		}
	})
}

// FuzzBinaryRoundTrip checks ReadBinary on arbitrary bytes never panics,
// and on valid payloads reproduces the writer's graph.
func FuzzBinaryRoundTrip(f *testing.F) {
	g, _ := NewUndirected(4, []Edge{{0, 1}, {1, 2}, {3, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 23))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize to an equal graph.
		var out bytes.Buffer
		if err := got.WriteBinary(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil || !again.Equal(got) {
			t.Fatalf("binary round trip unstable: %v", err)
		}
	})
}
