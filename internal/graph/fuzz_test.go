package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that anything
// it accepts round-trips through a graph build.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n3 4 extra\n")
	f.Add("a b\n")
	f.Add("-1 5\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		edges, n, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range edges {
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				t.Fatalf("accepted out-of-range edge %v with n=%d", e, n)
			}
		}
		// CSR construction allocates O(n); the parser legitimately accepts
		// sparse ids up to 2⁶³, so cap before materializing.
		if n > 1<<20 {
			return
		}
		g, err := NewUndirected(n, edges)
		if err != nil {
			t.Fatalf("parsed edges failed to build: %v", err)
		}
		if !g.IsSymmetric() {
			t.Fatal("built graph not symmetric")
		}
	})
}

// FuzzBinaryRoundTrip checks ReadBinary on arbitrary bytes never panics,
// and on valid payloads reproduces the writer's graph.
func FuzzBinaryRoundTrip(f *testing.F) {
	g, _ := NewUndirected(4, []Edge{{0, 1}, {1, 2}, {3, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 23))
	// Truncations of a valid payload: mid-header, exactly at the header
	// boundary, and mid-record — all must error, never panic.
	f.Add(buf.Bytes()[:12])
	f.Add(buf.Bytes()[:binaryHeaderSize])
	f.Add(buf.Bytes()[:binaryHeaderSize+binaryRecordSize-3])
	// Wrong magic and a header promising more records than follow.
	corrupt := bytes.Clone(buf.Bytes())
	corrupt[0] ^= 0xff
	f.Add(corrupt)
	inflated := bytes.Clone(buf.Bytes())
	binary.LittleEndian.PutUint64(inflated[16:24], 1<<20)
	f.Add(inflated)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize to an equal graph.
		var out bytes.Buffer
		if err := got.WriteBinary(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil || !again.Equal(got) {
			t.Fatalf("binary round trip unstable: %v", err)
		}
	})
}

// TestReadBinaryErrors pins the contract the fuzz target can only probe:
// truncated and malformed binary inputs fail with errors that name the
// offending byte offset and wrap io.ErrUnexpectedEOF for truncation.
func TestReadBinaryErrors(t *testing.T) {
	g, err := NewUndirected(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name     string
		data     []byte
		wantEOF  bool
		wantText string // substring the error must carry
	}{
		{"empty input", nil, true, `field "magic" at offset 0`},
		{"mid-header cut", valid[:12], true, `field "n" at offset 8`},
		{"header only, edges promised", valid[:binaryHeaderSize], true, "edge 0 of 4 at offset 24"},
		{"mid-record cut", valid[:binaryHeaderSize+binaryRecordSize+5], true, "edge 1 of 4 at offset 40"},
		{"bad magic", append([]byte{1, 2, 3, 4, 5, 6, 7, 8}, valid[8:]...), false, "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if tc.wantEOF != errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("errors.Is(err, io.ErrUnexpectedEOF) = %v, want %v (err: %v)",
					!tc.wantEOF, tc.wantEOF, err)
			}
			if !strings.Contains(err.Error(), tc.wantText) {
				t.Errorf("error %q does not mention %q", err, tc.wantText)
			}
		})
	}

	// An inflated edge count over a complete-looking stream is truncation
	// at the first missing record, not an allocation blow-up.
	inflated := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(inflated[16:24], 1<<20)
	if _, err := ReadBinary(bytes.NewReader(inflated)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("inflated header: want io.ErrUnexpectedEOF, got %v", err)
	}
}
