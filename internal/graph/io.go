package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated text edge list: one "u v" pair
// per line, '#' or '%' comment lines and blank lines ignored. It returns
// the edges and the implied vertex count (max endpoint + 1). Negative
// endpoints are an error.
func ReadEdgeList(r io.Reader) (edges []Edge, n int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: need two endpoints, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad endpoint %q: %v", line, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad endpoint %q: %v", line, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, 0, fmt.Errorf("graph: line %d: negative endpoint in %q", line, text)
		}
		edges = append(edges, Edge{u, v})
		if u+1 > n {
			n = u + 1
		}
		if v+1 > n {
			n = v + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, n, nil
}

// WriteEdgeList writes the undirected edges of g as text, one canonical
// "u v" pair per line, preceded by a comment header with n and m.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# kronlab edge list n=%d m=%d\n", g.n, g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int64) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// binaryMagic identifies the kronlab binary edge-list format.
const binaryMagic = uint64(0x4b524f4e4c414201) // "KRONLAB\x01"

// maxBinaryCount caps the vertex and edge counts ReadBinary will accept
// (2²⁸ ≈ 268M): CSR construction allocates O(n), so a corrupt or hostile
// header must not be able to demand an absurd allocation (found by
// FuzzBinaryRoundTrip). Larger graphs should be sharded or kept as text.
const maxBinaryCount = int64(1) << 28

// WriteBinary writes g's undirected edge list in a compact little-endian
// binary format: magic, n, m, then m (u,v) int64 pairs.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, uint64(g.n), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	var werr error
	g.Edges(func(u, v int64) bool {
		if err := binary.Write(bw, binary.LittleEndian, [2]int64{u, v}); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// binaryHeaderSize is the byte length of the WriteBinary header
// (magic, n, m) and binaryRecordSize that of one (u, v) edge record.
const (
	binaryHeaderSize = 24
	binaryRecordSize = 16
)

// ReadBinary reads the format produced by WriteBinary and returns the
// undirected graph. Malformed input fails with a wrapped error naming the
// byte offset of the offending header field or edge record; truncation
// anywhere — including a clean EOF where more records were promised —
// surfaces as io.ErrUnexpectedEOF so callers can distinguish a cut-off
// file from other corruption with errors.Is.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	hdrFields := [3]string{"magic", "n", "m"}
	var magic, n, m uint64
	for i, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: binary header field %q at offset %d: %w",
				hdrFields[i], i*8, noEOF(err))
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x at offset 0", magic)
	}
	if int64(n) < 0 || int64(n) > maxBinaryCount || int64(m) < 0 || int64(m) > maxBinaryCount {
		return nil, fmt.Errorf("graph: implausible binary header n=%d m=%d", n, m)
	}
	// Grow incrementally so a truncated stream with an inflated header
	// fails on read, not on allocation.
	edges := make([]Edge, 0, min(m, 1<<20))
	for i := uint64(0); i < m; i++ {
		var pair [2]int64
		if err := binary.Read(br, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("graph: binary edge %d of %d at offset %d: %w",
				i, m, binaryHeaderSize+i*binaryRecordSize, noEOF(err))
		}
		edges = append(edges, Edge{pair[0], pair[1]})
	}
	g, err := NewUndirected(int64(n), edges)
	if err != nil {
		return nil, fmt.Errorf("graph: binary edge list invalid: %w", err)
	}
	return g, nil
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF: inside ReadBinary
// every read is for bytes the header promised, so running out of input at
// a field or record boundary is truncation, not a normal end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// LoadUndirected reads a text edge list from path and returns the
// symmetrized graph.
func LoadUndirected(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	edges, n, err := ReadEdgeList(f)
	if err != nil {
		return nil, err
	}
	return NewUndirected(n, edges)
}

// SaveEdgeList writes g's text edge list to path, creating or truncating
// the file.
func (g *Graph) SaveEdgeList(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
