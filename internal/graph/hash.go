package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// CanonicalHash returns a content address for the graph: the hex SHA-256
// of its canonical serialization (vertex count followed by every stored
// arc in CSR order, all little-endian int64). Because a Graph is built
// sorted and deduplicated, two Graphs have equal hashes iff Equal reports
// true — the property the kronserve factor registry relies on to make
// registration idempotent.
func (g *Graph) CanonicalHash() string {
	h := sha256.New()
	var buf [8]byte
	put := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	put(g.n)
	g.Arcs(func(u, v int64) bool {
		put(u)
		put(v)
		return true
	})
	return hex.EncodeToString(h.Sum(nil))
}
