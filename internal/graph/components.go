package graph

// ConnectedComponents labels the connected components of g (treating arcs
// as undirected) and returns the label of each vertex (labels are dense,
// starting at 0 in order of discovery) together with the number of
// components.
func (g *Graph) ConnectedComponents() (labels []int64, count int64) {
	labels = make([]int64, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int64
	for s := int64(0); s < g.n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponent returns the subgraph induced by the largest connected
// component (ties broken by smallest label), with vertices relabeled, and
// the old-label mapping. Mirrors the paper's gnutella preprocessing.
func (g *Graph) LargestComponent() (*Graph, []int64) {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return &Graph{offsets: []int64{0}}, nil
	}
	sizes := make([]int64, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := int64(0)
	for l := int64(1); l < count; l++ {
		if sizes[l] > sizes[best] {
			best = l
		}
	}
	keep := make([]int64, 0, sizes[best])
	for v := int64(0); v < g.n; v++ {
		if labels[v] == best {
			keep = append(keep, v)
		}
	}
	return g.InducedSubgraph(keep)
}

// IsConnected reports whether g has exactly one connected component
// (the empty graph is not connected).
func (g *Graph) IsConnected() bool {
	_, count := g.ConnectedComponents()
	return count == 1
}
