package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, n int64, arcs []Edge) *Graph {
	t.Helper()
	g, err := New(n, arcs)
	if err != nil {
		t.Fatalf("New(%d): %v", n, err)
	}
	return g
}

func mustUnd(t *testing.T, n int64, edges []Edge) *Graph {
	t.Helper()
	g, err := NewUndirected(n, edges)
	if err != nil {
		t.Fatalf("NewUndirected(%d): %v", n, err)
	}
	return g
}

// randomGraph builds a random undirected graph for property tests.
func randomGraph(rng *rand.Rand, maxN int64) *Graph {
	n := 1 + rng.Int63n(maxN)
	m := rng.Int63n(2*n + 1)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{rng.Int63n(n), rng.Int63n(n)}
	}
	g, err := NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustNew(t, 0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.NumArcs() != 0 {
		t.Errorf("empty graph: got %v", g)
	}
	if !g.IsSymmetric() {
		t.Error("empty graph should be symmetric")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(3, []Edge{{0, 3}}); err == nil {
		t.Error("expected out-of-range error for arc (0,3) with n=3")
	}
	if _, err := New(3, []Edge{{-1, 0}}); err == nil {
		t.Error("expected out-of-range error for negative endpoint")
	}
	if _, err := New(-1, nil); err == nil {
		t.Error("expected error for negative n")
	}
}

func TestDedupAndSort(t *testing.T) {
	g := mustNew(t, 3, []Edge{{0, 2}, {0, 1}, {0, 2}, {0, 1}, {0, 1}})
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Errorf("Neighbors(0) = %v, want [1 2]", got)
	}
	if g.NumArcs() != 2 {
		t.Errorf("NumArcs = %d, want 2", g.NumArcs())
	}
}

func TestUndirectedTriangle(t *testing.T) {
	g := mustUnd(t, 3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	if g.NumEdges() != 3 || g.NumArcs() != 6 {
		t.Fatalf("triangle: edges=%d arcs=%d", g.NumEdges(), g.NumArcs())
	}
	if !g.IsSymmetric() {
		t.Error("undirected triangle must be symmetric")
	}
	for v := int64(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestSelfLoopCounting(t *testing.T) {
	g := mustUnd(t, 3, []Edge{{0, 0}, {0, 1}, {2, 2}})
	if g.NumSelfLoops() != 2 {
		t.Errorf("NumSelfLoops = %d, want 2", g.NumSelfLoops())
	}
	// arcs: (0,0),(0,1),(1,0),(2,2) = 4; edges = (4+2)/2 = 3.
	if g.NumArcs() != 4 {
		t.Errorf("NumArcs = %d, want 4", g.NumArcs())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	// Self loop counts once toward degree.
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d, want 2 (loop + edge)", g.Degree(0))
	}
	if !g.HasSelfLoop(0) || g.HasSelfLoop(1) || !g.HasSelfLoop(2) {
		t.Error("HasSelfLoop wrong")
	}
}

func TestHasArcAndArcIndex(t *testing.T) {
	g := mustUnd(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if !g.HasArc(1, 2) || !g.HasArc(2, 1) {
		t.Error("expected arcs (1,2) and (2,1)")
	}
	if g.HasArc(0, 3) {
		t.Error("unexpected arc (0,3)")
	}
	idx := g.ArcIndex(1, 2)
	if idx < 0 || g.ArcTarget(idx) != 2 || g.ArcSource(idx) != 1 {
		t.Errorf("ArcIndex/Source/Target inconsistent: idx=%d", idx)
	}
	if g.ArcIndex(0, 3) != -1 {
		t.Error("ArcIndex of absent arc should be -1")
	}
}

func TestArcSourceConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30)
	idx := int64(-1)
	g.Arcs(func(u, v int64) bool {
		idx++
		if g.ArcSource(idx) != u || g.ArcTarget(idx) != v {
			t.Fatalf("arc %d: ArcSource/Target = (%d,%d), want (%d,%d)",
				idx, g.ArcSource(idx), g.ArcTarget(idx), u, v)
		}
		return true
	})
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	g := mustUnd(t, 4, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 3}})
	var edges []Edge
	g.Edges(func(u, v int64) bool {
		edges = append(edges, Edge{u, v})
		return true
	})
	if len(edges) != 4 {
		t.Fatalf("Edges visited %d, want 4 (3 edges + loop)", len(edges))
	}
	for _, e := range edges {
		if e.U > e.V {
			t.Errorf("non-canonical edge %v", e)
		}
	}
}

func TestEdgeListArcListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 25)
		h := mustUnd(t, g.NumVertices(), g.EdgeList())
		if !g.Equal(h) {
			t.Fatalf("trial %d: EdgeList round trip mismatch", trial)
		}
		h2 := mustNew(t, g.NumVertices(), g.ArcList())
		if !g.Equal(h2) {
			t.Fatalf("trial %d: ArcList round trip mismatch", trial)
		}
	}
}

func TestWithFullSelfLoops(t *testing.T) {
	g := mustUnd(t, 3, []Edge{{0, 1}})
	gl := g.WithFullSelfLoops()
	if gl.NumSelfLoops() != 3 {
		t.Errorf("loops = %d, want 3", gl.NumSelfLoops())
	}
	if gl.NumEdges() != g.NumEdges()+3 {
		t.Errorf("edges = %d, want %d", gl.NumEdges(), g.NumEdges()+3)
	}
	// Idempotent on already-looped graphs.
	gl2 := gl.WithFullSelfLoops()
	if !gl.Equal(gl2) {
		t.Error("WithFullSelfLoops not idempotent")
	}
}

func TestStripSelfLoopsInvertsAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 25).StripSelfLoops()
		if got := g.WithFullSelfLoops().StripSelfLoops(); !got.Equal(g) {
			t.Fatalf("trial %d: strip(add(g)) != g", trial)
		}
	}
}

func TestSymmetrized(t *testing.T) {
	g := mustNew(t, 3, []Edge{{0, 1}, {1, 2}}) // directed arcs only
	if g.IsSymmetric() {
		t.Fatal("directed input should not be symmetric")
	}
	s := g.Symmetrized()
	if !s.IsSymmetric() {
		t.Error("Symmetrized result must be symmetric")
	}
	if s.NumArcs() != 4 {
		t.Errorf("arcs = %d, want 4", s.NumArcs())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustUnd(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	sub, old := g.InducedSubgraph([]int64{1, 2, 3})
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Errorf("induced path: n=%d m=%d, want 3, 2", sub.NumVertices(), sub.NumEdges())
	}
	if !reflect.DeepEqual(old, []int64{1, 2, 3}) {
		t.Errorf("old labels = %v", old)
	}
}

func TestFilterArcs(t *testing.T) {
	g := mustUnd(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	f := g.FilterArcs(func(u, v int64) bool { return u != 1 && v != 1 })
	if f.NumEdges() != 1 {
		t.Errorf("filtered edges = %d, want 1", f.NumEdges())
	}
	if f.NumVertices() != 4 {
		t.Errorf("vertex count changed: %d", f.NumVertices())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := mustUnd(t, 6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3 (triangle-ish, pair, isolate)", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0,1,2 must share a component")
	}
	if labels[3] != labels[4] {
		t.Error("3,4 must share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("5 must be isolated")
	}
}

func TestLargestComponent(t *testing.T) {
	g := mustUnd(t, 7, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}})
	lcc, old := g.LargestComponent()
	if lcc.NumVertices() != 3 || lcc.NumEdges() != 3 {
		t.Errorf("LCC: n=%d m=%d, want 3,3", lcc.NumVertices(), lcc.NumEdges())
	}
	sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })
	if !reflect.DeepEqual(old, []int64{0, 1, 2}) {
		t.Errorf("old = %v, want [0 1 2]", old)
	}
}

func TestIsConnected(t *testing.T) {
	if !mustUnd(t, 3, []Edge{{0, 1}, {1, 2}}).IsConnected() {
		t.Error("path should be connected")
	}
	if mustUnd(t, 3, []Edge{{0, 1}}).IsConnected() {
		t.Error("graph with isolate should not be connected")
	}
	if mustNew(t, 0, nil).IsConnected() {
		t.Error("empty graph is not connected")
	}
}

func TestEdgeCanon(t *testing.T) {
	if (Edge{5, 2}).Canon() != (Edge{2, 5}) {
		t.Error("Canon should order endpoints")
	}
	if (Edge{2, 5}).Canon() != (Edge{2, 5}) {
		t.Error("Canon must be idempotent")
	}
	if !(Edge{3, 3}).IsLoop() || (Edge{3, 4}).IsLoop() {
		t.Error("IsLoop wrong")
	}
}

func TestDegreesAndMaxDegree(t *testing.T) {
	g := mustUnd(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if !reflect.DeepEqual(g.Degrees(), []int64{3, 1, 1, 1}) {
		t.Errorf("Degrees = %v", g.Degrees())
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestTextIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 20)
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		edges, n, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n > g.NumVertices() {
			t.Fatalf("read n=%d > wrote n=%d", n, g.NumVertices())
		}
		h := mustUnd(t, g.NumVertices(), edges)
		// Trailing isolated vertices are lost by edge-list text format;
		// compare edge sets instead of full equality.
		if !reflect.DeepEqual(g.EdgeList(), h.EdgeList()) {
			t.Fatalf("trial %d: text round-trip edge mismatch", trial)
		}
	}
}

func TestBinaryIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 20)
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(h) {
			t.Fatalf("trial %d: binary round trip mismatch", trial)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% also comment\n\n0 1\n1 2 weight-ignored\n"
	edges, n, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 2 {
		t.Errorf("n=%d edges=%v", n, edges)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 b\n", "-1 2\n"}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected parse error", in)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("expected bad-magic error")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("expected short-read error")
	}
}

// Property: for any undirected graph, 2·NumEdges − NumSelfLoops == NumArcs.
func TestPropertyArcEdgeRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40)
		return 2*g.NumEdges()-g.NumSelfLoops() == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the degree sum equals the arc count.
func TestPropertyDegreeSumEqualsArcs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40)
		var sum int64
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: NewUndirected always produces a symmetric graph.
func TestPropertySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return randomGraph(rng, 40).IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	g := mustUnd(t, 3, []Edge{{0, 1}, {2, 2}})
	want := "graph{n=3 m=2 loops=1}"
	if g.String() != want {
		t.Errorf("String = %q, want %q", g.String(), want)
	}
}
