package graph

import (
	"math/rand"
	"testing"
)

func benchEdges(n, m int64, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{rng.Int63n(n), rng.Int63n(n)}
	}
	return edges
}

// CSR construction from raw edges dominates ingest cost; the sort+dedup
// pass is the hot path.
func BenchmarkNewUndirected(b *testing.B) {
	edges := benchEdges(10_000, 50_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewUndirected(10_000, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasArc(b *testing.B) {
	g, err := NewUndirected(10_000, benchEdges(10_000, 50_000, 2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasArc(int64(i)%10_000, int64(i*7)%10_000)
	}
}

func BenchmarkArcsIteration(b *testing.B) {
	g, err := NewUndirected(10_000, benchEdges(10_000, 50_000, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var count int64
		g.Arcs(func(u, v int64) bool {
			count++
			return true
		})
		if count != g.NumArcs() {
			b.Fatal("miscount")
		}
	}
}

func BenchmarkWithFullSelfLoops(b *testing.B) {
	g, err := NewUndirected(10_000, benchEdges(10_000, 50_000, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WithFullSelfLoops()
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g, err := NewUndirected(10_000, benchEdges(10_000, 20_000, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}
