package graph

// WithFullSelfLoops returns A + I: a copy of g with a self loop added at
// every vertex. Existing self loops are preserved (the adjacency pattern is
// boolean, so A + I saturates at 1).
func (g *Graph) WithFullSelfLoops() *Graph {
	arcs := g.ArcList()
	for v := int64(0); v < g.n; v++ {
		if !g.HasSelfLoop(v) {
			arcs = append(arcs, Edge{v, v})
		}
	}
	out, err := New(g.n, arcs)
	if err != nil {
		panic("graph: WithFullSelfLoops: " + err.Error()) // arcs from a valid graph cannot be out of range
	}
	return out
}

// StripSelfLoops returns A − A∘I: a copy of g with all self loops removed.
func (g *Graph) StripSelfLoops() *Graph {
	arcs := make([]Edge, 0, len(g.adj))
	g.Arcs(func(u, v int64) bool {
		if u != v {
			arcs = append(arcs, Edge{u, v})
		}
		return true
	})
	out, err := New(g.n, arcs)
	if err != nil {
		panic("graph: StripSelfLoops: " + err.Error())
	}
	return out
}

// Symmetrized returns the undirected closure of g: for every arc (u,v) the
// arc (v,u) is added.
func (g *Graph) Symmetrized() *Graph {
	arcs := make([]Edge, 0, 2*len(g.adj))
	g.Arcs(func(u, v int64) bool {
		arcs = append(arcs, Edge{u, v})
		if u != v {
			arcs = append(arcs, Edge{v, u})
		}
		return true
	})
	out, err := New(g.n, arcs)
	if err != nil {
		panic("graph: Symmetrized: " + err.Error())
	}
	return out
}

// InducedSubgraph returns the subgraph induced by the vertex set keep,
// with vertices relabeled 0..len(keep)-1 in the order given, plus the
// mapping from new labels back to old ones. Vertices listed more than once
// are an error at the caller; behavior is then undefined.
func (g *Graph) InducedSubgraph(keep []int64) (*Graph, []int64) {
	newID := make(map[int64]int64, len(keep))
	for i, v := range keep {
		newID[v] = int64(i)
	}
	var arcs []Edge
	for _, v := range keep {
		for _, w := range g.Neighbors(v) {
			if nw, ok := newID[w]; ok {
				arcs = append(arcs, Edge{newID[v], nw})
			}
		}
	}
	out, err := New(int64(len(keep)), arcs)
	if err != nil {
		panic("graph: InducedSubgraph: " + err.Error())
	}
	old := make([]int64, len(keep))
	copy(old, keep)
	return out, old
}

// FilterArcs returns a copy of g keeping only the arcs for which keep
// returns true. The vertex count is unchanged.
func (g *Graph) FilterArcs(keep func(u, v int64) bool) *Graph {
	var arcs []Edge
	g.Arcs(func(u, v int64) bool {
		if keep(u, v) {
			arcs = append(arcs, Edge{u, v})
		}
		return true
	})
	out, err := New(g.n, arcs)
	if err != nil {
		panic("graph: FilterArcs: " + err.Error())
	}
	return out
}
