// Package graph provides the compressed sparse row (CSR) graph substrate
// used throughout kronlab: construction from edge lists, undirected and
// self-loop transforms, connected components, degrees, and edge-list file
// I/O.
//
// Conventions (see DESIGN.md §5):
//
//   - Vertices are int64 and 0-based.
//   - A Graph stores the full adjacency matrix pattern: an undirected edge
//     {u,v} with u≠v appears as the two arcs (u,v) and (v,u); a self loop
//     (v,v) appears as a single arc.
//   - NumArcs is the number of stored arcs (nonzeros of the adjacency
//     matrix); NumEdges is the undirected edge count (off-diagonal arc
//     pairs counted once, plus self loops).
package graph

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Edge is a directed arc (U, V). Undirected edges are represented by the
// canonical form U ≤ V in edge lists and by both arcs in a Graph.
type Edge struct {
	U, V int64
}

// Canon returns e with endpoints swapped if necessary so that U ≤ V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// IsLoop reports whether e is a self loop.
func (e Edge) IsLoop() bool { return e.U == e.V }

// Graph is an immutable CSR adjacency structure. The zero value is the
// empty graph on zero vertices.
type Graph struct {
	n       int64
	offsets []int64 // len n+1
	adj     []int64 // neighbor lists, sorted ascending within each row
	loops   int64   // number of self loops

	arcsOnce sync.Once
	arcs     []Edge // flat CSR-order arc list, built lazily by ArcSlice
}

// New builds a Graph on n vertices from the given arcs. Each arc is
// inserted exactly as given (no symmetrization); duplicates are removed.
// Arc endpoints must lie in [0, n). Use NewUndirected to symmetrize.
func New(n int64, arcs []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, a := range arcs {
		if a.U < 0 || a.U >= n || a.V < 0 || a.V >= n {
			return nil, fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", a.U, a.V, n)
		}
	}
	g := &Graph{n: n}
	g.offsets = make([]int64, n+1)
	for _, a := range arcs {
		g.offsets[a.U+1]++
	}
	for i := int64(0); i < n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	g.adj = make([]int64, len(arcs))
	next := make([]int64, n)
	copy(next, g.offsets[:n])
	for _, a := range arcs {
		g.adj[next[a.U]] = a.V
		next[a.U]++
	}
	g.sortAndDedup()
	return g, nil
}

// NewUndirected builds an undirected Graph on n vertices: every off-diagonal
// edge {u,v} is stored as both arcs, self loops as a single arc. Input
// edges may be in either orientation and may contain duplicates.
func NewUndirected(n int64, edges []Edge) (*Graph, error) {
	arcs := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		arcs = append(arcs, e)
		if e.U != e.V {
			arcs = append(arcs, Edge{e.V, e.U})
		}
	}
	return New(n, arcs)
}

// sortAndDedup sorts each adjacency row and removes duplicate arcs,
// recomputing offsets and the loop count.
func (g *Graph) sortAndDedup() {
	newAdj := g.adj[:0]
	newOff := make([]int64, g.n+1)
	var loops int64
	for v := int64(0); v < g.n; v++ {
		row := g.adj[g.offsets[v]:g.offsets[v+1]]
		slices.Sort(row)
		start := int64(len(newAdj))
		for i, w := range row {
			if i > 0 && row[i-1] == w {
				continue
			}
			if w == v {
				loops++
			}
			newAdj = append(newAdj, w)
		}
		newOff[v] = start
	}
	newOff[g.n] = int64(len(newAdj))
	// newAdj aliases g.adj's backing array; compaction above only moves
	// elements leftward so this in-place rewrite is safe.
	g.adj = newAdj
	g.offsets = newOff
	g.loops = loops
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int64 { return g.n }

// NumArcs returns the number of stored arcs, i.e. the number of nonzeros
// of the adjacency matrix.
func (g *Graph) NumArcs() int64 { return int64(len(g.adj)) }

// NumEdges returns the undirected edge count: off-diagonal arc pairs
// counted once plus self loops. For a symmetric graph this is
// (NumArcs+NumSelfLoops)/2.
func (g *Graph) NumEdges() int64 { return (int64(len(g.adj)) + g.loops) / 2 }

// NumSelfLoops returns the number of self loops.
func (g *Graph) NumSelfLoops() int64 { return g.loops }

// Degree returns the out-degree of v: the row sum of the adjacency matrix,
// counting a self loop once. This matches the d_i used by the paper's
// formulas when the graph is symmetric.
func (g *Graph) Degree(v int64) int64 { return g.offsets[v+1] - g.offsets[v] }

// Degrees returns the degree vector.
func (g *Graph) Degrees() []int64 {
	d := make([]int64, g.n)
	for v := int64(0); v < g.n; v++ {
		d[v] = g.Degree(v)
	}
	return d
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int64 {
	var m int64
	for v := int64(0); v < g.n; v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// Neighbors returns the sorted adjacency row of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int64) []int64 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasArc reports whether the arc (u, v) is present, via binary search.
func (g *Graph) HasArc(u, v int64) bool {
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// HasSelfLoop reports whether vertex v has a self loop.
func (g *Graph) HasSelfLoop(v int64) bool { return g.HasArc(v, v) }

// ArcIndex returns the position of arc (u,v) in ArcTargets ordering, or -1
// if absent. It is used to align per-arc annotation slices (e.g. edge
// triangle counts) with the CSR layout.
func (g *Graph) ArcIndex(u, v int64) int64 {
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return g.offsets[u] + int64(i)
	}
	return -1
}

// ArcSource returns the source vertex of the arc at CSR position idx.
// It is the inverse of the row component of ArcIndex and costs a binary
// search over the offset array.
func (g *Graph) ArcSource(idx int64) int64 {
	v := sort.Search(int(g.n), func(i int) bool { return g.offsets[i+1] > idx })
	return int64(v)
}

// ArcTarget returns the target vertex of the arc at CSR position idx.
func (g *Graph) ArcTarget(idx int64) int64 { return g.adj[idx] }

// Arcs calls f for every stored arc (u, v) in CSR order; f returning false
// stops the iteration early.
func (g *Graph) Arcs(f func(u, v int64) bool) {
	for u := int64(0); u < g.n; u++ {
		for _, v := range g.adj[g.offsets[u]:g.offsets[u+1]] {
			if !f(u, v) {
				return
			}
		}
	}
}

// Edges calls f for every undirected edge exactly once, in canonical
// (u ≤ v) order; f returning false stops early. Arcs with u > v are
// skipped, so on a symmetric graph every edge is visited once.
func (g *Graph) Edges(f func(u, v int64) bool) {
	g.Arcs(func(u, v int64) bool {
		if u > v {
			return true
		}
		return f(u, v)
	})
}

// EdgeList returns all undirected edges in canonical order.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.Edges(func(u, v int64) bool {
		out = append(out, Edge{u, v})
		return true
	})
	return out
}

// ArcList returns all arcs in CSR order.
func (g *Graph) ArcList() []Edge {
	out := make([]Edge, 0, len(g.adj))
	g.Arcs(func(u, v int64) bool {
		out = append(out, Edge{u, v})
		return true
	})
	return out
}

// ArcSlice returns all arcs in CSR order as a flat slice, built once and
// cached on the graph — the plain-loop input the blocked expansion
// kernel (core.ExpandBlock) iterates, with no callback per arc. The
// returned slice is shared across callers and must not be modified; use
// ArcList for a private copy. Safe for concurrent use.
func (g *Graph) ArcSlice() []Edge {
	g.arcsOnce.Do(func() { g.arcs = g.ArcList() })
	return g.arcs
}

// IsSymmetric reports whether for every arc (u,v) the reverse arc (v,u) is
// also present, i.e. the graph is undirected.
func (g *Graph) IsSymmetric() bool {
	sym := true
	g.Arcs(func(u, v int64) bool {
		if !g.HasArc(v, u) {
			sym = false
			return false
		}
		return true
	})
	return sym
}

// Equal reports whether g and h have identical vertex counts and arc sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.adj) != len(h.adj) {
		return false
	}
	for i := range g.offsets {
		if g.offsets[i] != h.offsets[i] {
			return false
		}
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			return false
		}
	}
	return true
}

// String returns a short description like "graph{n=5 m=7 loops=2}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d loops=%d}", g.n, g.NumEdges(), g.loops)
}
