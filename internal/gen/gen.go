// Package gen provides deterministic, seeded factor-graph generators used
// throughout the reproduction: Erdős–Rényi, R-MAT (the stochastic
// Kronecker generator the paper contrasts against, with Graph500
// parameters), stochastic block models with planted communities,
// disjoint cliques, structured graphs (ring, path, star, grid, complete,
// complete bipartite), preferential attachment, and a synthetic stand-in
// for the SNAP gnutella08 peer-to-peer graph used in the paper's Fig. 1
// (see DESIGN.md §2 for the substitution rationale).
//
// All generators return loop-free undirected graphs unless documented
// otherwise; callers add self loops with Graph.WithFullSelfLoops when a
// formula's hypothesis requires them.
package gen

import (
	"math/rand"

	"kronlab/internal/graph"
)

func mustUndirected(n int64, edges []graph.Edge) *graph.Graph {
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return g
}

// ER returns a G(n, p) Erdős–Rényi graph: each of the n·(n−1)/2 possible
// edges is present independently with probability p.
func ER(n int64, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	return mustUndirected(n, edges)
}

// ERm returns a G(n, m) Erdős–Rényi graph with exactly m distinct edges
// sampled uniformly (no loops). m is clamped to the number of possible
// edges.
func ERm(n, m int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	seen := make(map[graph.Edge]bool, m)
	edges := make([]graph.Edge, 0, m)
	for int64(len(edges)) < m {
		u := rng.Int63n(n)
		v := rng.Int63n(n)
		if u == v {
			continue
		}
		e := (graph.Edge{U: u, V: v}).Canon()
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return mustUndirected(n, edges)
}

// Clique returns the complete graph K_n (no self loops).
func Clique(n int64) *graph.Graph {
	var edges []graph.Edge
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return mustUndirected(n, edges)
}

// DisjointCliques returns x disjoint cliques of size y each (Ex. 1), with
// the natural partition recoverable via CliquePartition.
func DisjointCliques(x, y int64) *graph.Graph {
	var edges []graph.Edge
	for c := int64(0); c < x; c++ {
		base := c * y
		for u := int64(0); u < y; u++ {
			for v := u + 1; v < y; v++ {
				edges = append(edges, graph.Edge{U: base + u, V: base + v})
			}
		}
	}
	return mustUndirected(x*y, edges)
}

// CliquePartition returns the natural x-set partition of DisjointCliques(x, y).
func CliquePartition(x, y int64) [][]int64 {
	out := make([][]int64, x)
	for c := int64(0); c < x; c++ {
		s := make([]int64, y)
		for i := int64(0); i < y; i++ {
			s[i] = c*y + i
		}
		out[c] = s
	}
	return out
}

// Ring returns the cycle C_n (n ≥ 3), a graph with known diameter ⌊n/2⌋ —
// the paper's suggested tool for diameter control (Sec. V-C).
func Ring(n int64) *graph.Graph {
	edges := make([]graph.Edge, n)
	for v := int64(0); v < n; v++ {
		edges[v] = graph.Edge{U: v, V: (v + 1) % n}
	}
	return mustUndirected(n, edges)
}

// Path returns the path P_n with n vertices and n−1 edges (diameter n−1).
func Path(n int64) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := int64(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	return mustUndirected(n, edges)
}

// Star returns the star K_{1,n−1} with center 0.
func Star(n int64) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := int64(1); v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	return mustUndirected(n, edges)
}

// Grid returns the r×c grid graph with vertices numbered row-major.
func Grid(r, c int64) *graph.Graph {
	var edges []graph.Edge
	id := func(i, j int64) int64 { return i*c + j }
	for i := int64(0); i < r; i++ {
		for j := int64(0); j < c; j++ {
			if j+1 < c {
				edges = append(edges, graph.Edge{U: id(i, j), V: id(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, graph.Edge{U: id(i, j), V: id(i+1, j)})
			}
		}
	}
	return mustUndirected(r*c, edges)
}

// CompleteBipartite returns K_{a,b} with parts {0..a−1} and {a..a+b−1}.
func CompleteBipartite(a, b int64) *graph.Graph {
	var edges []graph.Edge
	for u := int64(0); u < a; u++ {
		for v := int64(0); v < b; v++ {
			edges = append(edges, graph.Edge{U: u, V: a + v})
		}
	}
	return mustUndirected(a+b, edges)
}
