package gen

import (
	"math/rand"

	"kronlab/internal/graph"
)

// SBMParams configures a stochastic block model with planted communities:
// an edge inside a block appears with probability PIn, an edge between
// blocks with probability POut.
type SBMParams struct {
	BlockSizes []int64
	PIn, POut  float64
	Seed       int64
	// PInBlocks optionally overrides PIn per block, giving communities a
	// spread of internal densities (as in the GraphChallenge ground-truth
	// graphs, where ρ_in ranges over [3e-2, 1e-1]). Length must match
	// BlockSizes when set.
	PInBlocks []float64
}

// pin returns the internal density for block b.
func (p *SBMParams) pin(b int) float64 {
	if len(p.PInBlocks) > 0 {
		return p.PInBlocks[b]
	}
	return p.PIn
}

// SBM samples a stochastic block model and returns the graph together
// with its planted partition (one vertex set per block, Def. 15). Used as
// the stand-in for the GraphChallenge groundtruth_20000 factor of the
// paper's community experiment (Sec. VI-A).
func SBM(p SBMParams) (*graph.Graph, [][]int64) {
	rng := rand.New(rand.NewSource(p.Seed))
	var n int64
	block := make([]int64, 0)          // vertex → block id
	partition := make([][]int64, 0, 8) // block id → vertices
	for b, size := range p.BlockSizes {
		set := make([]int64, size)
		for i := int64(0); i < size; i++ {
			set[i] = n + i
		}
		partition = append(partition, set)
		for i := int64(0); i < size; i++ {
			block = append(block, int64(b))
		}
		n += size
	}
	var edges []graph.Edge
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			prob := p.POut
			if block[u] == block[v] {
				prob = p.pin(int(block[u]))
			}
			if rng.Float64() < prob {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	return mustUndirected(n, edges), partition
}

// EqualBlocks returns k block sizes of n each.
func EqualBlocks(k int, n int64) []int64 {
	out := make([]int64, k)
	for i := range out {
		out[i] = n
	}
	return out
}

// SBMSparse samples a stochastic block model by drawing a Binomial-
// approximating number of edges per block pair instead of testing every
// vertex pair; suitable for large sparse models such as the 20000-vertex
// community factor, where the O(n²) loop of SBM would dominate. Expected
// densities match SBM.
func SBMSparse(p SBMParams) (*graph.Graph, [][]int64) {
	rng := rand.New(rand.NewSource(p.Seed))
	var n int64
	starts := make([]int64, len(p.BlockSizes))
	partition := make([][]int64, 0, len(p.BlockSizes))
	for b, size := range p.BlockSizes {
		starts[b] = n
		set := make([]int64, size)
		for i := int64(0); i < size; i++ {
			set[i] = n + i
		}
		partition = append(partition, set)
		n += size
	}
	seen := make(map[graph.Edge]bool)
	var edges []graph.Edge
	sample := func(b1, b2 int, prob float64) {
		var pairs int64
		if b1 == b2 {
			pairs = p.BlockSizes[b1] * (p.BlockSizes[b1] - 1) / 2
		} else {
			pairs = p.BlockSizes[b1] * p.BlockSizes[b2]
		}
		want := int64(prob * float64(pairs))
		// Rejection-sample distinct pairs; prob is assumed small enough
		// that want << pairs, which holds for the sparse regimes used.
		for count := int64(0); count < want; {
			u := starts[b1] + rng.Int63n(p.BlockSizes[b1])
			v := starts[b2] + rng.Int63n(p.BlockSizes[b2])
			if u == v {
				continue
			}
			e := (graph.Edge{U: u, V: v}).Canon()
			if seen[e] {
				continue
			}
			seen[e] = true
			edges = append(edges, e)
			count++
		}
	}
	for b1 := range p.BlockSizes {
		sample(b1, b1, p.pin(b1))
		for b2 := b1 + 1; b2 < len(p.BlockSizes); b2++ {
			sample(b1, b2, p.POut)
		}
	}
	return mustUndirected(n, edges), partition
}
