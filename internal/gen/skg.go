package gen

import (
	"fmt"
	"math/rand"

	"kronlab/internal/graph"
)

// SKGParams configures an exact stochastic Kronecker graph (Leskovec et
// al., the paper's ref [16]): the adjacency of C = P^{⊗s} where P is a
// k×k initiator of edge probabilities, so edge (u,v) appears
// independently with probability Π_d P[u_d][v_d] over the base-k digits
// of u and v. This is the model the paper contrasts nonstochastic
// products against: properties hold only in expectation and nothing is
// known exactly until generation finishes.
type SKGParams struct {
	Initiator  [][]float64 // k×k, entries in [0,1]
	S          int         // number of Kronecker powers, n = k^S
	Seed       int64
	Undirected bool // sample only u ≤ v and mirror (requires symmetric initiator)
	DropLoops  bool
}

// SKG samples the model exactly, testing every vertex pair — O(k^{2S}),
// intended for factor-scale graphs (the asymptotic R-MAT "ball dropping"
// approximation is available as RMAT). With a 0/1 initiator the sample is
// deterministic and equals the nonstochastic Kronecker power of the
// initiator's graph, which is how the tests pin the probability formula.
func SKG(p SKGParams) (*graph.Graph, error) {
	k := len(p.Initiator)
	if k == 0 {
		return nil, fmt.Errorf("gen: SKG needs a nonempty initiator")
	}
	for i, row := range p.Initiator {
		if len(row) != k {
			return nil, fmt.Errorf("gen: SKG initiator row %d has %d entries, want %d", i, len(row), k)
		}
		for j, v := range row {
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("gen: SKG initiator[%d][%d] = %v outside [0,1]", i, j, v)
			}
			if p.Undirected && p.Initiator[j][i] != v {
				return nil, fmt.Errorf("gen: undirected SKG needs a symmetric initiator")
			}
		}
	}
	if p.S < 1 || p.S > 20 {
		return nil, fmt.Errorf("gen: SKG power %d out of range [1,20]", p.S)
	}
	n := int64(1)
	for i := 0; i < p.S; i++ {
		n *= int64(k)
		if n > 1<<22 {
			return nil, fmt.Errorf("gen: SKG exact sampling capped at 2^22 vertices, got k=%d S=%d", k, p.S)
		}
	}
	prob := func(u, v int64) float64 {
		pr := 1.0
		for d := 0; d < p.S; d++ {
			pr *= p.Initiator[u%int64(k)][v%int64(k)]
			u /= int64(k)
			v /= int64(k)
		}
		return pr
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var edges []graph.Edge
	if p.Undirected {
		for u := int64(0); u < n; u++ {
			for v := u; v < n; v++ {
				if p.DropLoops && u == v {
					continue
				}
				if pr := prob(u, v); pr == 1 || (pr > 0 && rng.Float64() < pr) {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
		return graph.NewUndirected(n, edges)
	}
	for u := int64(0); u < n; u++ {
		for v := int64(0); v < n; v++ {
			if p.DropLoops && u == v {
				continue
			}
			if pr := prob(u, v); pr == 1 || (pr > 0 && rng.Float64() < pr) {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	return graph.New(n, edges)
}
