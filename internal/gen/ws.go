package gen

import (
	"math/rand"

	"kronlab/internal/graph"
)

// WattsStrogatz returns a small-world graph after Watts & Strogatz (the
// paper's clustering-coefficient reference [19]): a ring lattice where
// each vertex connects to its k nearest neighbors (k even), with each
// lattice edge rewired to a uniform random endpoint with probability
// beta. beta = 0 keeps the high-clustering lattice; beta = 1 approaches
// a random graph; small beta gives the small-world regime the paper's
// factors are meant to resemble.
func WattsStrogatz(n int64, k int, beta float64, seed int64) *graph.Graph {
	if k%2 != 0 {
		k++
	}
	if int64(k) >= n {
		k = int(n) - 1
		if k%2 != 0 {
			k--
		}
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.Edge]bool, n*int64(k)/2)
	edges := make([]graph.Edge, 0, n*int64(k)/2)
	add := func(u, v int64) bool {
		if u == v {
			return false
		}
		e := (graph.Edge{U: u, V: v}).Canon()
		if seen[e] {
			return false
		}
		seen[e] = true
		edges = append(edges, e)
		return true
	}
	for u := int64(0); u < n; u++ {
		for d := int64(1); d <= int64(k/2); d++ {
			v := (u + d) % n
			if rng.Float64() < beta {
				// Rewire: keep u, choose a fresh random endpoint.
				for tries := 0; tries < 32; tries++ {
					w := rng.Int63n(n)
					if add(u, w) {
						v = -1
						break
					}
				}
				if v == -1 {
					continue
				}
			}
			add(u, v)
		}
	}
	return mustUndirected(n, edges)
}
