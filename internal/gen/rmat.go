package gen

import (
	"fmt"
	"math/rand"

	"kronlab/internal/graph"
)

// RMATParams configures the recursive-matrix (stochastic Kronecker)
// generator of Chakrabarti et al., the generator family used by Graph500
// and contrasted against nonstochastic Kronecker products in the paper's
// introduction.
type RMATParams struct {
	Scale      int     // n = 2^Scale vertices
	EdgeFactor int64   // m = EdgeFactor · n sampled edges (before dedup)
	A, B, C    float64 // quadrant probabilities; D = 1−A−B−C
	Seed       int64
	Undirected bool // symmetrize and drop duplicates
	DropLoops  bool // discard sampled self loops
}

// Graph500Params returns the standard Graph500 R-MAT parameters
// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) at the given scale with the
// standard edge factor 16.
func Graph500Params(scale int, seed int64) RMATParams {
	return RMATParams{
		Scale: scale, EdgeFactor: 16,
		A: 0.57, B: 0.19, C: 0.19,
		Seed: seed, Undirected: true, DropLoops: true,
	}
}

// RMAT samples an R-MAT graph. Duplicate sampled edges are merged by the
// graph constructor, so the resulting edge count is at most
// EdgeFactor·2^Scale.
func RMAT(p RMATParams) (*graph.Graph, error) {
	if p.Scale < 0 || p.Scale > 40 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [0,40]", p.Scale)
	}
	d := 1 - p.A - p.B - p.C
	if p.A < 0 || p.B < 0 || p.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: RMAT probabilities (%v,%v,%v) invalid", p.A, p.B, p.C)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := int64(1) << uint(p.Scale)
	m := p.EdgeFactor * n
	edges := make([]graph.Edge, 0, m)
	for e := int64(0); e < m; e++ {
		var u, v int64
		for bit := p.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < p.A:
				// top-left: no bits set
			case r < p.A+p.B:
				v |= 1 << uint(bit)
			case r < p.A+p.B+p.C:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if p.DropLoops && u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	if p.Undirected {
		return graph.NewUndirected(n, edges)
	}
	return graph.New(n, edges)
}

// MustRMAT is RMAT but panics on invalid parameters; convenient in
// experiments with fixed known-good parameters.
func MustRMAT(p RMATParams) *graph.Graph {
	g, err := RMAT(p)
	if err != nil {
		panic(err)
	}
	return g
}
