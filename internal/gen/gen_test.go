package gen

import (
	"kronlab/internal/core"
	"kronlab/internal/graph"
	"testing"

	"kronlab/internal/analytics"
)

func TestERBasics(t *testing.T) {
	g := ER(30, 0.3, 1)
	if g.NumVertices() != 30 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumSelfLoops() != 0 {
		t.Error("ER must be loop-free")
	}
	if !g.IsSymmetric() {
		t.Error("ER must be undirected")
	}
	// Determinism.
	if !g.Equal(ER(30, 0.3, 1)) {
		t.Error("same seed must reproduce the same graph")
	}
	if g.Equal(ER(30, 0.3, 2)) {
		t.Error("different seeds should differ (w.h.p.)")
	}
}

func TestERDensity(t *testing.T) {
	g := ER(100, 0.5, 3)
	m := g.NumEdges()
	expect := int64(100 * 99 / 2 / 2)
	if m < expect*8/10 || m > expect*12/10 {
		t.Errorf("edge count %d far from expectation %d", m, expect)
	}
}

func TestERmExactCount(t *testing.T) {
	g := ERm(20, 50, 7)
	if g.NumEdges() != 50 {
		t.Errorf("ERm edges = %d, want 50", g.NumEdges())
	}
	// Clamp to max possible.
	g2 := ERm(5, 100, 7)
	if g2.NumEdges() != 10 {
		t.Errorf("clamped ERm edges = %d, want 10", g2.NumEdges())
	}
}

func TestClique(t *testing.T) {
	g := Clique(5)
	if g.NumEdges() != 10 {
		t.Errorf("K5 edges = %d", g.NumEdges())
	}
	if analytics.GlobalTriangles(g) != 10 {
		t.Errorf("K5 triangles = %d, want C(5,3)=10", analytics.GlobalTriangles(g))
	}
}

func TestDisjointCliquesAndPartition(t *testing.T) {
	g := DisjointCliques(3, 4)
	if g.NumVertices() != 12 || g.NumEdges() != 3*6 {
		t.Fatalf("disjoint cliques: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	_, count := g.ConnectedComponents()
	if count != 3 {
		t.Errorf("components = %d, want 3", count)
	}
	p := CliquePartition(3, 4)
	if !analytics.IsPartition(g, p) {
		t.Error("CliquePartition must partition the vertex set")
	}
	for _, s := range p {
		cs := analytics.Community(g, s)
		if cs.RhoIn != 1 || cs.MOut != 0 {
			t.Errorf("clique community stats wrong: %+v", cs)
		}
	}
}

func TestRingDiameter(t *testing.T) {
	for _, n := range []int64{3, 6, 9, 10} {
		g := Ring(n)
		if g.NumEdges() != n {
			t.Errorf("C%d edges = %d", n, g.NumEdges())
		}
		// Paper hop semantics: hops(i,i) = 2 on loop-free graphs, so the
		// diameter of C3 is 2, not the metric 1; larger rings match ⌊n/2⌋.
		want := n / 2
		if want < 2 {
			want = 2
		}
		if d := analytics.Diameter(g); d != want {
			t.Errorf("C%d diameter = %d, want %d", n, d, want)
		}
	}
}

func TestPathStarGrid(t *testing.T) {
	if d := analytics.Diameter(Path(7)); d != 6 {
		t.Errorf("P7 diameter = %d, want 6", d)
	}
	s := Star(6)
	if s.Degree(0) != 5 || analytics.Diameter(s) != 2 {
		t.Errorf("star: center degree %d diameter %d", s.Degree(0), analytics.Diameter(s))
	}
	g := Grid(3, 4)
	if g.NumVertices() != 12 || g.NumEdges() != 3*3+2*4 {
		t.Errorf("grid: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if d := analytics.Diameter(g); d != 5 {
		t.Errorf("3x4 grid diameter = %d, want 5", d)
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.NumEdges() != 12 {
		t.Errorf("K3,4 edges = %d", g.NumEdges())
	}
	if analytics.GlobalTriangles(g) != 0 {
		t.Error("bipartite graph has no triangles")
	}
}

func TestRMATGraph500(t *testing.T) {
	g := MustRMAT(Graph500Params(8, 42))
	if g.NumVertices() != 256 {
		t.Fatalf("n = %d, want 256", g.NumVertices())
	}
	if g.NumSelfLoops() != 0 {
		t.Error("DropLoops must remove loops")
	}
	if !g.IsSymmetric() {
		t.Error("undirected RMAT must be symmetric")
	}
	// Heavy tail: max degree far above mean.
	mean := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 3*mean {
		t.Errorf("expected skewed degrees: max %d vs mean %.1f", g.MaxDegree(), mean)
	}
	// Determinism.
	if !g.Equal(MustRMAT(Graph500Params(8, 42))) {
		t.Error("RMAT must be deterministic per seed")
	}
}

func TestRMATInvalidParams(t *testing.T) {
	if _, err := RMAT(RMATParams{Scale: -1}); err == nil {
		t.Error("negative scale should error")
	}
	if _, err := RMAT(RMATParams{Scale: 4, A: 0.9, B: 0.9, C: 0.9}); err == nil {
		t.Error("probabilities summing over 1 should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRMAT should panic on bad params")
			}
		}()
		MustRMAT(RMATParams{Scale: -1})
	}()
}

func TestSBMStructure(t *testing.T) {
	g, p := SBM(SBMParams{BlockSizes: EqualBlocks(4, 25), PIn: 0.5, POut: 0.02, Seed: 5})
	if g.NumVertices() != 100 || len(p) != 4 {
		t.Fatalf("SBM: n=%d blocks=%d", g.NumVertices(), len(p))
	}
	if !analytics.IsPartition(g, p) {
		t.Fatal("SBM partition invalid")
	}
	for _, s := range analytics.Communities(g, p) {
		if s.RhoIn < 0.3 {
			t.Errorf("block internal density %v too low for PIn=0.5", s.RhoIn)
		}
		if s.RhoOut > 0.1 {
			t.Errorf("block external density %v too high for POut=0.02", s.RhoOut)
		}
	}
}

func TestSBMSparseMatchesDensities(t *testing.T) {
	g, p := SBMSparse(SBMParams{BlockSizes: EqualBlocks(3, 200), PIn: 0.05, POut: 0.002, Seed: 9})
	if g.NumVertices() != 600 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !analytics.IsPartition(g, p) {
		t.Fatal("partition invalid")
	}
	for _, s := range analytics.Communities(g, p) {
		if s.RhoIn < 0.03 || s.RhoIn > 0.07 {
			t.Errorf("sparse SBM ρ_in = %v, want ≈0.05", s.RhoIn)
		}
		if s.RhoOut < 0.0005 || s.RhoOut > 0.005 {
			t.Errorf("sparse SBM ρ_out = %v, want ≈0.002", s.RhoOut)
		}
	}
}

func TestPrefAttachProperties(t *testing.T) {
	g := PrefAttach(500, 3, 11)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !g.IsConnected() {
		t.Error("preferential attachment graph must be connected")
	}
	if g.NumSelfLoops() != 0 {
		t.Error("must be loop-free")
	}
	// Heavy tail.
	mean := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*mean {
		t.Errorf("expected hub: max %d vs mean %.1f", g.MaxDegree(), mean)
	}
}

func TestPrefAttachTinyN(t *testing.T) {
	g := PrefAttach(2, 3, 1)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("tiny PA: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestGnutellaLikeMatchesPaperScale(t *testing.T) {
	g := GnutellaLike(2019)
	// Paper: 6.3K vertices, 21K edges after LCC extraction.
	if g.NumVertices() < 6000 || g.NumVertices() > 6301 {
		t.Errorf("gnutella-like n = %d, want ≈6.3K", g.NumVertices())
	}
	if g.NumEdges() < 19000 || g.NumEdges() > 21500 {
		t.Errorf("gnutella-like m = %d, want ≈21K", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("LCC extraction must leave a connected graph")
	}
	if g.NumSelfLoops() != 0 {
		t.Error("loops are added later by the experiment, not the generator")
	}
	// Scale-free-ish: a few high-degree hubs.
	if g.MaxDegree() < 50 {
		t.Errorf("max degree %d too small for a scale-free graph", g.MaxDegree())
	}
	// Small world: diameter of LCC should be modest. Eccentricity of one
	// vertex bounds diameter within factor 2.
	ecc := analytics.Eccentricity(g, 0)
	if ecc <= 0 || ecc > 20 {
		t.Errorf("eccentricity %d suggests wrong structure", ecc)
	}
}

// Regression test: PrefAttach once leaked Go's randomized map iteration
// order into its degree-proportional sampling, making "seeded" graphs
// differ across process runs. Equality across rebuilds within one process
// can't catch that, but identical edge ORDER can: the map-order bug
// shuffled construction order first.
func TestPrefAttachDeterministicConstruction(t *testing.T) {
	a := PrefAttach(300, 3, 99)
	b := PrefAttach(300, 3, 99)
	if !a.Equal(b) {
		t.Fatal("PrefAttach not deterministic for a fixed seed")
	}
	ea, eb := a.EdgeList(), b.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge order diverges at %d: %v vs %v", i, ea[i], eb[i])
		}
	}
	if GnutellaLike(7).NumEdges() != GnutellaLike(7).NumEdges() {
		t.Fatal("GnutellaLike not deterministic")
	}
}

func TestWattsStrogatz(t *testing.T) {
	// beta = 0: pure ring lattice, every vertex degree k, high clustering.
	g := WattsStrogatz(50, 4, 0, 1)
	if g.NumVertices() != 50 || g.NumEdges() != 100 {
		t.Fatalf("lattice: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := int64(0); v < 50; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("lattice degree(%d) = %d", v, g.Degree(v))
		}
	}
	cc0 := analytics.MeanClustering(g)
	if cc0 < 0.4 {
		t.Errorf("lattice clustering %v too low", cc0)
	}
	// Small rewiring keeps clustering-ish but shrinks diameter.
	g1 := WattsStrogatz(50, 4, 0.1, 2)
	if !g1.IsSymmetric() || g1.NumSelfLoops() != 0 {
		t.Error("WS must stay simple undirected")
	}
	// Heavy rewiring destroys clustering.
	g9 := WattsStrogatz(200, 6, 0.9, 3)
	if cc9 := analytics.MeanClustering(g9); cc9 > cc0 {
		t.Errorf("rewired clustering %v should fall below lattice %v", cc9, cc0)
	}
	// Odd k rounds up; k ≥ n clamps.
	if WattsStrogatz(10, 3, 0, 4).MaxDegree() != 4 {
		t.Error("odd k should round to 4")
	}
	tiny := WattsStrogatz(4, 8, 0, 5)
	if tiny.MaxDegree() > 3 {
		t.Error("k must clamp below n")
	}
	// Determinism.
	if !WattsStrogatz(30, 4, 0.3, 6).Equal(WattsStrogatz(30, 4, 0.3, 6)) {
		t.Error("WS must be deterministic per seed")
	}
}

func TestSKGDegeneratesToNonstochasticPower(t *testing.T) {
	// A 0/1 initiator makes SKG deterministic: it must equal the
	// nonstochastic Kronecker power of the initiator's graph — the bridge
	// between the two generator families the paper contrasts.
	init := [][]float64{
		{1, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
	}
	skg, err := SKG(SKGParams{Initiator: init, S: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := graph.New(3, []graph.Edge{
		{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}, {U: 2, V: 1}, {U: 2, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.KronPower(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !skg.Equal(want) {
		t.Fatal("0/1 SKG must equal the nonstochastic Kronecker power")
	}
}

func TestSKGExpectedEdgeCount(t *testing.T) {
	// Uniform initiator p: every directed pair appears with prob p^S.
	init := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	const s = 6 // n = 64, pair prob = 1/64
	var total int64
	const reps = 20
	for seed := int64(0); seed < reps; seed++ {
		g, err := SKG(SKGParams{Initiator: init, S: s, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		total += g.NumArcs()
	}
	mean := float64(total) / reps
	want := 64.0 * 64.0 / 64.0 // n² · p^S = 64
	if mean < want*0.8 || mean > want*1.2 {
		t.Errorf("mean arcs %v, want ≈%v", mean, want)
	}
}

func TestSKGValidation(t *testing.T) {
	if _, err := SKG(SKGParams{}); err == nil {
		t.Error("empty initiator should error")
	}
	if _, err := SKG(SKGParams{Initiator: [][]float64{{0.5, 0.5}}, S: 2}); err == nil {
		t.Error("ragged initiator should error")
	}
	if _, err := SKG(SKGParams{Initiator: [][]float64{{1.5}}, S: 2}); err == nil {
		t.Error("out-of-range probability should error")
	}
	if _, err := SKG(SKGParams{Initiator: [][]float64{{0.5}}, S: 0}); err == nil {
		t.Error("S=0 should error")
	}
	asym := [][]float64{{0.5, 0.1}, {0.9, 0.5}}
	if _, err := SKG(SKGParams{Initiator: asym, S: 2, Undirected: true}); err == nil {
		t.Error("asymmetric initiator with Undirected should error")
	}
	big := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	if _, err := SKG(SKGParams{Initiator: big, S: 40}); err == nil {
		t.Error("oversized power should error")
	}
}

func TestSKGUndirectedSymmetric(t *testing.T) {
	init := [][]float64{{0.9, 0.4}, {0.4, 0.2}}
	g, err := SKG(SKGParams{Initiator: init, S: 5, Seed: 7, Undirected: true, DropLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() || g.NumSelfLoops() != 0 {
		t.Error("undirected loop-free SKG violated its contract")
	}
}
