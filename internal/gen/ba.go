package gen

import (
	"math/rand"

	"kronlab/internal/graph"
)

// PrefAttach returns a Barabási–Albert preferential-attachment graph:
// starting from a small seed clique of m+1 vertices, each new vertex
// attaches m edges to existing vertices chosen proportionally to degree.
// The result is connected with a heavy-tailed degree distribution.
func PrefAttach(n int64, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	// targets holds one entry per arc endpoint; sampling uniformly from
	// it realizes degree-proportional selection.
	var targets []int64
	seedSize := int64(m + 1)
	if seedSize > n {
		seedSize = n
	}
	for u := int64(0); u < seedSize; u++ {
		for v := u + 1; v < seedSize; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
			targets = append(targets, u, v)
		}
	}
	for v := seedSize; v < n; v++ {
		chosen := make(map[int64]bool, m)
		// Insertion order is recorded separately: ranging over the map
		// would feed Go's randomized map order back into the
		// degree-proportional sampling and break seed determinism.
		order := make([]int64, 0, m)
		for len(chosen) < m {
			w := targets[rng.Intn(len(targets))]
			if w != v && !chosen[w] {
				chosen[w] = true
				order = append(order, w)
			}
		}
		for _, w := range order {
			edges = append(edges, graph.Edge{U: v, V: w})
			targets = append(targets, v, w)
		}
	}
	return mustUndirected(n, edges)
}

// GnutellaLike returns a synthetic stand-in for the paper's preprocessed
// gnutella08 factor (SNAP): the undirected largest connected component
// with ~6.3K vertices and ~21K edges, scale-free degrees and small
// diameter. Built as preferential attachment (heavy tail) plus sprinkled
// uniform edges (peer-to-peer randomness), then reduced to the largest
// component. Self loops are NOT added here; callers add them with
// WithFullSelfLoops exactly as the paper does before forming C = A ⊗ A.
func GnutellaLike(seed int64) *graph.Graph {
	const n = 6301
	base := PrefAttach(n, 2, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	edges := base.EdgeList()
	// PrefAttach(m=2) yields ~2n edges; top up with ~8.3K random edges to
	// reach the paper's ~21K total while keeping the heavy tail.
	extra := int64(21000) - base.NumEdges()
	seen := make(map[graph.Edge]bool, len(edges))
	for _, e := range edges {
		seen[e] = true
	}
	for added := int64(0); added < extra; {
		u := rng.Int63n(n)
		v := rng.Int63n(n)
		if u == v {
			continue
		}
		e := (graph.Edge{U: u, V: v}).Canon()
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
		added++
	}
	g := mustUndirected(n, edges)
	lcc, _ := g.LargestComponent()
	return lcc
}
