package serve

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// errStreamLimit signals that the client-requested edge cap was reached;
// it truncates the stream without being an error to report.
var errStreamLimit = errors.New("serve: stream limit reached")

// handleGenerate serves GET /gen/{a}/{b}/edges — the two-factor spelling
// of the chain generate endpoint. Parsing, counting, emission, Range and
// resume handling all live in streamChainEdges, shared with
// /gen/{chain}/edges, so the two routes cannot drift.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	ga, hashA, ok := s.resolveFactor(w, r.PathValue("a"))
	if !ok {
		return
	}
	gb, hashB, ok := s.resolveFactor(w, r.PathValue("b"))
	if !ok {
		return
	}
	s.streamChainEdges(w, r, []*graph.Graph{ga, gb}, []string{hashA, hashB})
}

// resumeTokenPrefix versions the resume-token format; a token is
// "kr1.<16-hex fnv64a stream digest>.<decimal arc position>".
const resumeTokenPrefix = "kr1"

// streamDigest fingerprints everything that determines the stream's
// content and order: the factor hashes, the loops transform, the layout,
// the effective rank count and the wire format. A resume token minted for
// one digest is refused for any other — resuming a different stream (or
// the same chain under a different layout) would silently return wrong
// bytes. The client-side window (offset/limit/Range) is deliberately
// excluded: a token names a position in the one underlying stream, from
// wherever the cut happened.
func streamDigest(hashes []string, loops bool, twoD bool, ranks int, binaryFmt bool) string {
	h := fnv.New64a()
	for _, fh := range hashes {
		fmt.Fprintf(h, "%s,", fh)
	}
	fmt.Fprintf(h, "|loops=%t|twoD=%t|ranks=%d|binary=%t", loops, twoD, ranks, binaryFmt)
	return fmt.Sprintf("%016x", h.Sum64())
}

func makeResumeToken(digest string, pos int64) string {
	return fmt.Sprintf("%s.%s.%d", resumeTokenPrefix, digest, pos)
}

// parseResumeToken validates a client token against the current request's
// stream digest and returns the resume position.
func parseResumeToken(token, digest string, totalArcs int64) (int64, error) {
	parts := strings.Split(token, ".")
	if len(parts) != 3 || parts[0] != resumeTokenPrefix {
		return 0, fmt.Errorf("malformed resume token")
	}
	if parts[1] != digest {
		return 0, fmt.Errorf("resume token was issued for a different stream (digest %s, this stream %s)", parts[1], digest)
	}
	pos, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil || pos < 0 || pos > totalArcs {
		return 0, fmt.Errorf("resume token position %q out of range [0,%d]", parts[2], totalArcs)
	}
	return pos, nil
}

// byteRange is one parsed "bytes=start-end" request range; end < 0 means
// open-ended.
type byteRange struct {
	start, end int64
}

// parseRangeHeader parses a single-range bytes Range header. ok=false
// means the header is absent or of an unsupported form (suffix ranges,
// multiple ranges, other units) — per RFC 9110 an unsupported Range is
// ignored, not an error.
func parseRangeHeader(h string) (byteRange, bool) {
	raw, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(raw, ",") {
		return byteRange{}, false
	}
	lo, hi, found := strings.Cut(raw, "-")
	if !found || lo == "" {
		return byteRange{}, false // suffix ranges need the unknown-length tail
	}
	start, err := strconv.ParseInt(lo, 10, 64)
	if err != nil || start < 0 {
		return byteRange{}, false
	}
	if hi == "" {
		return byteRange{start: start, end: -1}, true
	}
	end, err := strconv.ParseInt(hi, 10, 64)
	if err != nil || end < start {
		return byteRange{}, false
	}
	return byteRange{start: start, end: end}, true
}

// streamChainEdges is the one generate-stream implementation behind both
// /gen/{a}/{b}/edges and /gen/{chain}/edges: the chain product's arcs,
// produced by the dist chain engine on bounded concurrency and streamed
// without ever materializing the product server-side.
//
// Query parameters: loops=1 generates ⊗(A_d+I); layout=1d|2d picks the
// partitioning (default 1d); ranks=N the expander count (default
// GOMAXPROCS-bounded by Config.MaxRanks); format=ndjson|binary the wire
// format (default ndjson; binary is the 16-byte record format of
// internal/store); limit=N truncates the stream after N arcs; offset=N
// starts the stream N arcs in — the skipped prefix is never generated
// (dist.StreamChainFrom seeks arithmetically); resume=<token> continues
// a previous stream from the position its X-Kronlab-Resume-Token trailer
// recorded.
//
// Binary streams additionally honor single-range "Range: bytes=N-[M]"
// headers byte-exactly (the stream order is deterministic, so a byte
// position names a unique record prefix): 206 with Content-Range on
// success, 416 past the end. offset=, resume= and Range are three
// spellings of the same thing, so at most one may be used per request.
func (s *Server) streamChainEdges(w http.ResponseWriter, r *http.Request, gs []*graph.Graph, hashes []string) {
	q := r.URL.Query()
	loops := q.Get("loops") == "1"
	if loops {
		for i, g := range gs {
			gs[i] = g.WithFullSelfLoops()
		}
	}

	twoD := false
	switch q.Get("layout") {
	case "", "1d":
	case "2d":
		twoD = true
	default:
		writeError(w, http.StatusBadRequest, "layout must be 1d or 2d")
		return
	}

	ranks := s.cfg.MaxInflight
	if raw := q.Get("ranks"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad ranks=%q", raw)
			return
		}
		ranks = v
	}
	if ranks > s.cfg.MaxRanks {
		ranks = s.cfg.MaxRanks
	}

	var limit int64 = -1
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad limit=%q", raw)
			return
		}
		limit = v
	}

	binaryFmt := false
	switch q.Get("format") {
	case "", "ndjson":
	case "binary":
		binaryFmt = true
	default:
		writeError(w, http.StatusBadRequest, "format must be ndjson or binary")
		return
	}

	// The chain build and its arc count are overflow-checked — a product
	// whose counts exceed int64 is a 400, never a silently wrapped header
	// (the old two-factor path multiplied counts unchecked).
	ch, err := core.NewChain(gs...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	totalArcs, err := ch.NumArcs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	digest := streamDigest(hashes, loops, twoD, ranks, binaryFmt)

	// offset=, resume= and a binary Range header all name the stream's
	// start position; accepting two at once would mean silently ignoring
	// one of them.
	var offset int64
	starts := 0
	if raw := q.Get("offset"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 || v > totalArcs {
			writeError(w, http.StatusBadRequest, "offset must be an integer in [0,%d], got %q", totalArcs, raw)
			return
		}
		offset = v
		starts++
	}
	if raw := q.Get("resume"); raw != "" {
		pos, err := parseResumeToken(raw, digest, totalArcs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		offset = pos
		starts++
	}

	// totalBytes < 0 flags int64 overflow of the byte length; Range needs
	// exact byte arithmetic, so such streams fall back to whole responses.
	totalBytes, bytesOK := core.CheckedMul(totalArcs, store.RecordSize)
	if !bytesOK {
		totalBytes = -1
	}
	var (
		ranged     bool
		rangeStart int64
		skipBytes  int64 // leading bytes of the first record outside the range
		byteBudget int64 = -1
	)
	if h := r.Header.Get("Range"); h != "" && binaryFmt && totalBytes >= 0 {
		if br, ok := parseRangeHeader(h); ok {
			if br.start >= totalBytes {
				w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", totalBytes))
				writeError(w, http.StatusRequestedRangeNotSatisfiable,
					"range start %d beyond stream length %d", br.start, totalBytes)
				return
			}
			ranged = true
			rangeStart = br.start
			offset = br.start / store.RecordSize
			skipBytes = br.start % store.RecordSize
			if br.end >= 0 {
				end := br.end
				if end >= totalBytes {
					end = totalBytes - 1
				}
				byteBudget = end - br.start + 1
			}
			starts++
		}
	}
	if starts > 1 {
		writeError(w, http.StatusBadRequest, "offset=, resume= and Range are mutually exclusive stream positions")
		return
	}

	// Bound the engine's generation window to what the response can carry:
	// the client arc limit, and under a bounded Range the arcs its bytes
	// span. The emit path still enforces both exactly.
	streamLimit := limit
	if byteBudget >= 0 {
		arcs := (skipBytes + byteBudget + store.RecordSize - 1) / store.RecordSize
		if streamLimit < 0 || arcs < streamLimit {
			streamLimit = arcs
		}
	}

	if binaryFmt {
		w.Header().Set("Content-Type", "application/octet-stream")
		if totalBytes >= 0 {
			w.Header().Set("Accept-Ranges", "bytes")
		}
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Kronlab-Product-N", strconv.FormatInt(ch.NumVertices(), 10))
	w.Header().Set("X-Kronlab-Product-Arcs", strconv.FormatInt(totalArcs, 10))
	w.Header().Set("X-Kronlab-Factors", strings.Join(hashes, ","))
	w.Header().Set("X-Kronlab-Stream-Offset", strconv.FormatInt(offset, 10))
	// Declared before the body starts, set after it ends: the trailers are
	// how a client distinguishes a complete stream from one cut short by
	// shutdown, timeout or a mid-run failure — the status line is long
	// gone by then. A client-requested limit= truncation counts complete,
	// and the resume token names the arc position right after the last
	// one emitted, ready to be passed back as resume=.
	w.Header().Set("Trailer", "X-Kronlab-Complete, X-Kronlab-Arcs-Written, X-Kronlab-Resume-Token")
	if ranged {
		end := totalBytes - 1
		if byteBudget >= 0 {
			end = rangeStart + byteBudget - 1
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", rangeStart, end, totalBytes))
		w.WriteHeader(http.StatusPartialContent)
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	flusher, _ := w.(http.Flusher)
	var written int64
	var rec [store.RecordSize]byte
	// writeBytes applies the byte-exact Range window: trim the skipped
	// prefix of the first record, truncate the last to the budget. The
	// skip is always intra-record (start % RecordSize < RecordSize), so a
	// record never vanishes here — the caller's budget check gates whole
	// records.
	writeBytes := func(p []byte) error {
		if skipBytes > 0 {
			p = p[skipBytes:]
			skipBytes = 0
		}
		if byteBudget >= 0 {
			if int64(len(p)) > byteBudget {
				p = p[:byteBudget]
			}
			byteBudget -= int64(len(p))
		}
		_, err := bw.Write(p)
		return err
	}
	emit := func(batch []graph.Edge) error {
		for _, e := range batch {
			if limit >= 0 && written >= limit {
				return errStreamLimit
			}
			var err error
			if binaryFmt {
				if byteBudget == 0 {
					return errStreamLimit // range satisfied before this arc
				}
				store.PutRecord(rec[:], e.U, e.V)
				err = writeBytes(rec[:])
			} else {
				_, err = fmt.Fprintf(bw, "{\"u\":%d,\"v\":%d}\n", e.U, e.V)
			}
			if err != nil {
				return err // client went away; the stream tears down the expanders
			}
			written++
		}
		// Flush per batch so the stream reaches the client while the
		// generator is still running; a long product otherwise sits in
		// bufio and the response buffers until the run completes.
		if err := bw.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// Reassign is left off: StreamChainFrom pins tiles to their planned
	// ranks (ordered delivery) and forces it off anyway.
	recov := dist.Recovery{MaxRetries: s.cfg.GenRetries, Backoff: 5 * time.Millisecond}
	stats, err := dist.StreamChainFrom(r.Context(), ch, ranks, twoD, 0, offset, streamLimit, recov, emit)
	s.metrics.AddGenStats(stats)
	complete := err == nil || errors.Is(err, errStreamLimit)
	if complete {
		_ = bw.Flush()
	}
	// Trailer values: with the names declared up front, setting them on
	// the header map after the body is written sends them as trailers.
	w.Header().Set("X-Kronlab-Complete", strconv.FormatBool(complete))
	w.Header().Set("X-Kronlab-Arcs-Written", strconv.FormatInt(written, 10))
	w.Header().Set("X-Kronlab-Resume-Token", makeResumeToken(digest, offset+written))
}
