package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"kronlab/internal/dist"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// errStreamLimit signals that the client-requested edge cap was reached;
// it truncates the stream without being an error to report.
var errStreamLimit = errors.New("serve: stream limit reached")

// handleGenerate serves GET /gen/{a}/{b}/edges: the product's arcs,
// produced by the dist generator on bounded concurrency and streamed
// without ever materializing the product server-side.
//
// Query parameters: loops=1 generates (A+I)⊗(B+I); layout=1d|2d picks the
// partitioning (default 1d); ranks=N the expander count (default
// GOMAXPROCS-bounded by Config.MaxRanks); format=ndjson|binary the wire
// format (default ndjson; binary is the 16-byte record format of
// internal/store); limit=N truncates the stream after N arcs.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	ga, hashA, ok := s.resolveFactor(w, r.PathValue("a"))
	if !ok {
		return
	}
	gb, hashB, ok := s.resolveFactor(w, r.PathValue("b"))
	if !ok {
		return
	}
	q := r.URL.Query()
	if q.Get("loops") == "1" {
		ga, gb = ga.WithFullSelfLoops(), gb.WithFullSelfLoops()
	}

	twoD := false
	switch q.Get("layout") {
	case "", "1d":
	case "2d":
		twoD = true
	default:
		writeError(w, http.StatusBadRequest, "layout must be 1d or 2d")
		return
	}

	ranks := s.cfg.MaxInflight
	if raw := q.Get("ranks"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad ranks=%q", raw)
			return
		}
		ranks = v
	}
	if ranks > s.cfg.MaxRanks {
		ranks = s.cfg.MaxRanks
	}

	var limit int64 = -1
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad limit=%q", raw)
			return
		}
		limit = v
	}

	binaryFmt := false
	switch q.Get("format") {
	case "", "ndjson":
	case "binary":
		binaryFmt = true
	default:
		writeError(w, http.StatusBadRequest, "format must be ndjson or binary")
		return
	}

	totalArcs := ga.NumArcs() * gb.NumArcs()
	if binaryFmt {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Kronlab-Product-N", strconv.FormatInt(ga.NumVertices()*gb.NumVertices(), 10))
	w.Header().Set("X-Kronlab-Product-Arcs", strconv.FormatInt(totalArcs, 10))
	w.Header().Set("X-Kronlab-Factors", fmt.Sprintf("%s,%s", hashA, hashB))
	// Declared before the body starts, set after it ends: the trailer is
	// how a client distinguishes a complete stream from one cut short by
	// shutdown, timeout or a mid-run failure — the status line is long
	// gone by then. A client-requested limit= truncation counts complete.
	w.Header().Set("Trailer", "X-Kronlab-Complete, X-Kronlab-Arcs-Written")

	bw := bufio.NewWriterSize(w, 1<<16)
	flusher, _ := w.(http.Flusher)
	var written int64
	var rec [store.RecordSize]byte
	emit := func(batch []graph.Edge) error {
		for _, e := range batch {
			if limit >= 0 && written >= limit {
				return errStreamLimit
			}
			var err error
			if binaryFmt {
				store.PutRecord(rec[:], e.U, e.V)
				_, err = bw.Write(rec[:])
			} else {
				_, err = fmt.Fprintf(bw, "{\"u\":%d,\"v\":%d}\n", e.U, e.V)
			}
			if err != nil {
				return err // client went away; Stream tears down the expanders
			}
			written++
		}
		// Flush per batch so the stream reaches the client while the
		// generator is still running; a long product otherwise sits in
		// bufio and the response buffers until the run completes.
		if err := bw.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	recov := dist.Recovery{MaxRetries: s.cfg.GenRetries, Backoff: 5 * time.Millisecond, Reassign: true}
	stats, err := dist.Stream(r.Context(), ga, gb, ranks, twoD, 0, recov, emit)
	s.metrics.AddGenStats(stats)
	complete := err == nil || errors.Is(err, errStreamLimit)
	if complete {
		_ = bw.Flush()
	}
	// Trailer values: with the names declared up front, setting them on
	// the header map after the body is written sends them as trailers.
	w.Header().Set("X-Kronlab-Complete", strconv.FormatBool(complete))
	w.Header().Set("X-Kronlab-Arcs-Written", strconv.FormatInt(written, 10))
}
