package serve

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

// gtRequest carries the resolved inputs of one ground-truth query: both
// factor summaries at the tier the property needs, plus the product
// indexing. All formula evaluation below is O(1)–O(diam) against the
// cached summaries — the paper's sublinear serving claim.
type gtRequest struct {
	a, b  *groundtruth.Summary
	hashA string
	hashB string
	loops bool // query the (A+I) ⊗ (B+I) product
	ix    core.Index
	nC    int64
}

// summaries resolves both factors through the cache at the requested
// tier. loopVariant selects the +I graphs (distance formulas); distances
// selects the hop-data tier.
func (s *Server) summaries(r *http.Request, ga, gb *graph.Graph, hashA, hashB string, loopVariant, distances bool) (*groundtruth.Summary, *groundtruth.Summary, error) {
	sa, err := s.cache.Get(r.Context(), SummaryKey{Hash: hashA, Loops: loopVariant, Distances: distances},
		func() (*groundtruth.Summary, error) {
			return groundtruth.NewSummary(ga, hashA, loopVariant, distances), nil
		})
	if err != nil {
		return nil, nil, err
	}
	sb, err := s.cache.Get(r.Context(), SummaryKey{Hash: hashB, Loops: loopVariant, Distances: distances},
		func() (*groundtruth.Summary, error) {
			return groundtruth.NewSummary(gb, hashB, loopVariant, distances), nil
		})
	if err != nil {
		return nil, nil, err
	}
	return sa, sb, nil
}

// handleGroundTruth serves GET /gt/{a}/{b}/{property}. Common query
// parameters: loops=1 queries the full-self-loop product
// C = (A+I) ⊗ (B+I) instead of C = A ⊗ B; p (and q) address product
// vertices (edges); sa/sb give factor community vertex lists.
func (s *Server) handleGroundTruth(w http.ResponseWriter, r *http.Request) {
	ga, hashA, ok := s.resolveFactor(w, r.PathValue("a"))
	if !ok {
		return
	}
	gb, hashB, ok := s.resolveFactor(w, r.PathValue("b"))
	if !ok {
		return
	}
	loops := r.URL.Query().Get("loops") == "1"
	prop := r.PathValue("property")

	// Which summary variant/tier does the property need?
	distProp := prop == "diameter" || prop == "eccentricity" || prop == "closeness" || prop == "hops"
	loopVariant := loops && distProp // distance formulas run on the +I factors
	if distProp && !loops {
		// Thm. 3–5 hypotheses: without loops=1 the registered factors
		// themselves must carry full self loops.
		if ga.NumSelfLoops() != ga.NumVertices() || gb.NumSelfLoops() != gb.NumVertices() {
			writeError(w, http.StatusBadRequest,
				"distance ground truth requires full-self-loop factors; pass loops=1 to query (A+I)⊗(B+I)")
			return
		}
	}
	if loops && !distProp {
		// Cor. 1/2, Thm. 6 and the degree formula assume the +I loops are
		// supplied by the construction, not already present.
		if ga.NumSelfLoops() != 0 || gb.NumSelfLoops() != 0 {
			writeError(w, http.StatusBadRequest,
				"loops=1 ground truth requires loop-free registered factors (the construction adds the loops)")
			return
		}
	}

	sa, sb, err := s.summaries(r, ga, gb, hashA, hashB, loopVariant, distProp)
	if err != nil {
		writeError(w, statusForContextErr(err), "resolving factor summaries: %v", err)
		return
	}
	req := &gtRequest{
		a: sa, b: sb, hashA: hashA, hashB: hashB, loops: loops,
		ix: core.NewIndex(sb.F.N()), nC: sa.F.N() * sb.F.N(),
	}

	switch prop {
	case "degree":
		s.gtDegree(w, r, req)
	case "triangles":
		s.gtTriangles(w, r, req)
	case "clustering":
		s.gtClustering(w, r, req)
	case "diameter":
		writeJSON(w, http.StatusOK, req.base(map[string]any{
			"diameter": hopValue(groundtruth.Diameter(req.a.F, req.b.F)),
		}))
	case "eccentricity":
		s.gtEccentricity(w, r, req)
	case "closeness":
		s.gtCloseness(w, r, req)
	case "hops":
		s.gtHops(w, r, req)
	case "community":
		s.gtCommunity(w, r, req)
	case "summary":
		s.gtSummary(w, r, req)
	default:
		writeError(w, http.StatusNotFound,
			"unknown property %q (have degree, triangles, clustering, diameter, eccentricity, closeness, hops, community, summary)", prop)
	}
}

// base stamps the product identification onto a response body.
func (req *gtRequest) base(extra map[string]any) map[string]any {
	extra["a"] = req.hashA
	extra["b"] = req.hashB
	extra["loops"] = req.loops
	return extra
}

// vertexParam parses and range-checks a product vertex id parameter.
func (req *gtRequest) vertexParam(r *http.Request, name string) (int64, bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, false, nil
	}
	p, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s=%q: %v", name, raw, err)
	}
	if p < 0 || p >= req.nC {
		return 0, false, fmt.Errorf("%s=%d out of range [0,%d)", name, p, req.nC)
	}
	return p, true, nil
}

// hopValue maps analytics.Unreachable to a JSON null.
func hopValue(h int64) any {
	if h == analytics.Unreachable {
		return nil
	}
	return h
}

// floatValue maps NaN (undefined clustering) to a JSON null.
func floatValue(f float64) any {
	if math.IsNaN(f) {
		return nil
	}
	return f
}

// hasProductArc reports whether (p,q) is an arc of the queried product.
func (req *gtRequest) hasProductArc(p, q int64) bool {
	i, k := req.ix.Split(p)
	j, l := req.ix.Split(q)
	inA := req.a.F.G.HasArc(i, j) || (req.loops && i == j)
	inB := req.b.F.G.HasArc(k, l) || (req.loops && k == l)
	return inA && inB
}

func (s *Server) gtDegree(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	p, ok, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "degree needs p=<product vertex>")
		return
	}
	i, k := req.ix.Split(p)
	var d int64
	if req.loops {
		d = (req.a.F.Deg[i] + 1) * (req.b.F.Deg[k] + 1) // d_p of (A+I)⊗(B+I)
	} else {
		d = req.a.F.Deg[i] * req.b.F.Deg[k] // d_C = d_A ⊗ d_B
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "i": i, "k": k, "degree": d}))
}

func (s *Server) gtTriangles(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	// Triangle formulas (plain and Cor. 1/2) assume loop-free factors.
	if req.a.F.G.NumSelfLoops() != 0 || req.b.F.G.NumSelfLoops() != 0 {
		writeError(w, http.StatusBadRequest, "triangle ground truth requires loop-free factors")
		return
	}
	p, hasP, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, hasQ, err := req.vertexParam(r, "q")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch {
	case hasP && hasQ: // edge count Δ_pq
		if p == q || !req.hasProductArc(p, q) {
			writeError(w, http.StatusBadRequest, "(%d,%d) is not a non-loop edge of the product", p, q)
			return
		}
		var tri int64
		if req.loops {
			tri = groundtruth.EdgeTrianglesFullLoopsAt(req.a.F, req.b.F, p, q) // Cor. 2
		} else {
			tri = groundtruth.EdgeTrianglesAt(req.a.F, req.b.F, p, q) // Δ_C = Δ_A ⊗ Δ_B
		}
		writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "q": q, "edge_triangles": tri}))
	case hasP: // vertex count t_p
		var tri int64
		if req.loops {
			tri = groundtruth.VertexTrianglesFullLoopsAt(req.a.F, req.b.F, p) // Cor. 1
		} else {
			tri = groundtruth.VertexTrianglesAt(req.a.F, req.b.F, p) // t_C = 2·t_A ⊗ t_B
		}
		writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "vertex_triangles": tri}))
	default: // global count τ_C
		var tau int64
		if req.loops {
			tau = groundtruth.GlobalTrianglesFullLoops(req.a.F, req.b.F)
		} else {
			tau = groundtruth.GlobalTriangles(req.a.F, req.b.F) // τ_C = 6·τ_A·τ_B
		}
		writeJSON(w, http.StatusOK, req.base(map[string]any{"global_triangles": tau}))
	}
}

func (s *Server) gtClustering(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	if req.loops {
		writeError(w, http.StatusBadRequest, "clustering ground truth (Thm. 1/2) applies to the loop-free product; drop loops=1")
		return
	}
	if req.a.F.G.NumSelfLoops() != 0 || req.b.F.G.NumSelfLoops() != 0 {
		writeError(w, http.StatusBadRequest, "clustering ground truth requires loop-free factors")
		return
	}
	p, hasP, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, hasQ, err := req.vertexParam(r, "q")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch {
	case hasP && hasQ:
		if p == q || !req.hasProductArc(p, q) {
			writeError(w, http.StatusBadRequest, "(%d,%d) is not a non-loop edge of the product", p, q)
			return
		}
		xi := groundtruth.EdgeClusteringAt(req.a.F, req.b.F, p, q) // Thm. 2
		writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "q": q, "edge_clustering": floatValue(xi)}))
	case hasP:
		eta := groundtruth.VertexClusteringAt(req.a.F, req.b.F, p) // Thm. 1
		writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "vertex_clustering": floatValue(eta)}))
	default:
		writeError(w, http.StatusBadRequest, "clustering needs p=<vertex> or p,q=<edge>")
	}
}

func (s *Server) gtEccentricity(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	if r.URL.Query().Get("hist") == "1" {
		// O(diam) histogram over all n_C vertices without materializing ε_C.
		hist := groundtruth.EccentricityHistogram(req.a.F, req.b.F)
		out := make(map[string]int64, len(hist))
		for e, c := range hist {
			out[strconv.FormatInt(e, 10)] = c
		}
		writeJSON(w, http.StatusOK, req.base(map[string]any{"histogram": out}))
		return
	}
	p, ok, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "eccentricity needs p=<product vertex> or hist=1")
		return
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{
		"p": p, "eccentricity": hopValue(groundtruth.EccentricityAt(req.a.F, req.b.F, p)),
	}))
}

func (s *Server) gtCloseness(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	p, ok, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "closeness needs p=<product vertex>")
		return
	}
	// Thm. 4 via the Sec. V-B compressed histogram: O(diam) per query.
	z := groundtruth.ClosenessCompressedAt(req.a.F, req.b.F, p)
	writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "closeness": z}))
}

func (s *Server) gtHops(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	p, hasP, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, hasQ, err := req.vertexParam(r, "q")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !hasP || !hasQ {
		writeError(w, http.StatusBadRequest, "hops needs p=<vertex>&q=<vertex>")
		return
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{
		"p": p, "q": q, "hops": hopValue(groundtruth.HopsAt(req.a.F, req.b.F, p, q)),
	}))
}

// parseVertexList parses a comma-separated factor vertex list.
func parseVertexList(raw string, n int64, name string) ([]int64, error) {
	if raw == "" {
		return nil, fmt.Errorf("community needs %s=<comma-separated factor vertices>", name)
	}
	parts := strings.Split(raw, ",")
	out := make([]int64, 0, len(parts))
	seen := make(map[int64]bool, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %v", name, part, err)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%s vertex %d out of range [0,%d)", name, v, n)
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out, nil
}

func (s *Server) gtCommunity(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	if !req.loops {
		writeError(w, http.StatusBadRequest, "community ground truth (Thm. 6) is for the loops=1 product (A+I)⊗(B+I)")
		return
	}
	setA, err := parseVertexList(r.URL.Query().Get("sa"), req.a.F.N(), "sa")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	setB, err := parseVertexList(r.URL.Query().Get("sb"), req.b.F.N(), "sb")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	statsA := groundtruth.FactorCommunity(req.a.F, setA)
	statsB := groundtruth.FactorCommunity(req.b.F, setB)
	cs := groundtruth.CommunityKron(req.a.F, req.b.F, statsA, statsB) // Thm. 6
	writeJSON(w, http.StatusOK, req.base(map[string]any{
		"sa": setA, "sb": setB,
		"size": cs.Size, "m_in": cs.MIn, "m_out": cs.MOut,
		"rho_in": cs.RhoIn, "rho_out": cs.RhoOut,
	}))
}

func (s *Server) gtSummary(w http.ResponseWriter, r *http.Request, req *gtRequest) {
	ga, gb := req.a.F.G, req.b.F.G
	if req.loops {
		ga, gb = ga.WithFullSelfLoops(), gb.WithFullSelfLoops()
	}
	edges, arcs := core.NumProductEdges(ga, gb)
	out := map[string]any{
		"n":     req.nC,
		"edges": edges,
		"arcs":  arcs,
	}
	// Weichsel component count needs connected factors with an edge each.
	fa, fb := groundtruth.NewFactor(ga), groundtruth.NewFactor(gb)
	if comps, err := groundtruth.ProductComponents(fa, fb); err == nil {
		out["components"] = comps
	}
	writeJSON(w, http.StatusOK, req.base(out))
}
