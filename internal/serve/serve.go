// Package serve implements kronserve, the HTTP ground-truth and
// generation service over the repo's Kronecker machinery. The paper's
// central economics make such a service viable: every supported analytic
// of a product C = A ⊗ B (or (A+I) ⊗ (B+I)) has closed form in factor
// quantities, so queries are answered from small cached factor summaries
// in microseconds — C itself is only ever materialized as a stream, never
// in server memory.
//
// The subsystem has four parts:
//
//   - a factor Registry, content-addressed by canonical hash
//     (POST/GET /factors);
//   - a SummaryCache of per-factor analytics (degrees, triangles, hop
//     data) behind singleflight deduplication and a byte-budgeted LRU
//     (GET /gt/{a}/{b}/{property});
//   - a generation endpoint streaming product edges as NDJSON or the
//     binary record format of internal/store, produced by the dist
//     1D/2D generator with bounded concurrency (GET /gen/{a}/{b}/edges);
//   - chain variants of both: GET /gt/{chain}/{property} and
//     GET /gen/{chain}/edges take a comma-separated factor key list
//     (optionally power=k) and serve the k-factor product A₁⊗…⊗Aₖ
//     through the same closed-form laws and the same streaming engine;
//   - an operational surface: semaphore admission control with bounded
//     queueing and 429s, request timeouts threaded through context, and
//     /healthz + /metrics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"kronlab/internal/dist/transport/wire"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// MaxInflight bounds concurrently executing heavy requests
	// (ground-truth queries and generation streams). Default GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds heavy requests waiting for a slot; beyond it the
	// server answers 429 immediately. Default 4×MaxInflight.
	MaxQueue int
	// CacheBytes budgets the factor summary LRU. Default 256 MiB.
	CacheBytes int64
	// RequestTimeout bounds one ground-truth request including queueing.
	// Generation streams are exempt (they are bounded by client
	// disconnect and context cancellation instead). Default 30s.
	RequestTimeout time.Duration
	// MaxUploadBytes bounds a factor registration body. Default 64 MiB.
	MaxUploadBytes int64
	// MaxRanks caps the ranks= parameter of generation requests.
	// Default 64.
	MaxRanks int
	// GenTimeout bounds one generation stream end to end; the deadline
	// propagates as context.WithTimeout into the dist engine, which tears
	// the expander ranks down when it fires. Default 5m.
	GenTimeout time.Duration
	// GenRetries is the supervised-recovery budget passed to generation
	// runs (dist.Recovery.MaxRetries): a rank crash or lost batch inside
	// the engine is replayed exactly-once instead of tearing the stream.
	// Default 1; negative disables supervision.
	GenRetries int
	// LedgerPath is the durable run-ledger file of the cluster deployment
	// this server fronts, if any. Informational: it is reported through
	// /healthz so an operator can confirm which ledger a respawned head
	// would replay. Empty means no ledger is configured.
	LedgerPath string
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 64
	}
	if c.GenTimeout <= 0 {
		c.GenTimeout = 5 * time.Minute
	}
	if c.GenRetries == 0 {
		c.GenRetries = 1
	} else if c.GenRetries < 0 {
		c.GenRetries = 0
	}
	return c
}

// Server is the kronserve HTTP handler. Create with New; it is safe for
// concurrent use and carries no per-request state.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *SummaryCache
	lim     *Limiter
	metrics *Metrics
	mux     *http.ServeMux

	// drain closes when BeginShutdown is called: new heavy requests are
	// refused with 503 and in-flight generation streams are cancelled so
	// they terminate with a clean trailer inside the drain deadline.
	drain     chan struct{}
	drainOnce sync.Once
}

// New builds a Server from cfg (zero value: all defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		cache:   NewSummaryCache(cfg.CacheBytes, m),
		lim:     NewLimiter(cfg.MaxInflight, cfg.MaxQueue),
		metrics: m,
		mux:     http.NewServeMux(),
		drain:   make(chan struct{}),
	}
	s.mux.HandleFunc("GET /healthz", s.instrument("meta", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("meta", s.handleMetrics))
	s.mux.HandleFunc("POST /factors", s.instrument("factors", s.handleRegister))
	s.mux.HandleFunc("GET /factors", s.instrument("factors", s.handleListFactors))
	s.mux.HandleFunc("GET /factors/{hash}", s.instrument("factors", s.handleGetFactor))
	s.mux.HandleFunc("GET /gt/{a}/{b}/{property}", s.instrument("gt", s.admitted(s.timed(s.handleGroundTruth))))
	s.mux.HandleFunc("GET /gen/{a}/{b}/edges", s.instrument("gen", s.admitted(s.genTimed(s.handleGenerate))))
	// Chain routes: {chain} is a comma-separated factor key list (with
	// optional power=k), so these two-segment patterns coexist with the
	// three-segment two-factor routes above.
	s.mux.HandleFunc("GET /gt/{chain}/{property}", s.instrument("gt", s.admitted(s.timed(s.handleChainGroundTruth))))
	s.mux.HandleFunc("GET /gen/{chain}/edges", s.instrument("gen", s.admitted(s.genTimed(s.handleChainGenerate))))
	return s
}

// BeginShutdown puts the server into drain mode: heavy requests are
// refused with 503 and running generation streams are cancelled (their
// handlers finish with a clean trailer, so http.Server.Shutdown can
// complete inside its deadline). Light endpoints keep answering so
// health checks observe the drain. Safe to call more than once.
func (s *Server) BeginShutdown() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// Draining reports whether BeginShutdown has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the live counters (used by tests and cmd/kronserve).
func (s *Server) Metrics() *Metrics { return s.metrics }

// statusRecorder captures the response code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush passes http.Flusher through the wrapper. Without it the recorder
// hides the underlying connection's Flusher from handlers, so generation
// streams buffer server-side until the run completes instead of reaching
// the client incrementally.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request counting and latency tracking
// under the given route label.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		s.metrics.Observe(route, sr.status, time.Since(start))
	}
}

// admitted gates a handler behind the admission controller: a draining
// server refuses outright, a full queue means 429 now (with a Retry-After
// computed from observed run durations), not an unbounded wait. Admitted
// requests feed their duration back into the estimator.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			s.metrics.AdmissionRejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		if err := s.lim.Acquire(r.Context()); err != nil {
			s.metrics.AdmissionRejected.Add(1)
			if errors.Is(err, ErrBusy) {
				w.Header().Set("Retry-After", s.retryAfterSeconds())
				writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			} else {
				writeError(w, statusForContextErr(err), "cancelled while queued: %v", err)
			}
			return
		}
		defer s.lim.Release()
		start := time.Now()
		h(w, r)
		s.metrics.ObserveHeavy(time.Since(start))
	}
}

// retryAfterSeconds estimates when a retried heavy request would find a
// free slot: the smoothed heavy-request duration, scaled by how many
// requests are already queued ahead per slot. Clamped to [1, 60]s; with
// no observations yet it falls back to the old fixed 1s.
func (s *Server) retryAfterSeconds() string {
	est := s.metrics.HeavyEWMA()
	if est <= 0 {
		return "1"
	}
	depth := float64(s.lim.Waiting()+1) / float64(s.cfg.MaxInflight)
	secs := math.Ceil(est.Seconds() * math.Max(depth, 1))
	if secs < 1 {
		secs = 1
	} else if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(int(secs))
}

// timed bounds a handler by the configured request timeout.
func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// genTimed bounds a generation stream by Config.GenTimeout and cancels it
// when the server starts draining — the context reaches the dist engine,
// which tears the expander ranks down, so the handler returns (with its
// completion trailer) instead of holding http.Server.Shutdown open.
func (s *Server) genTimed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.GenTimeout)
		defer cancel()
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-s.drain:
				cancel()
			case <-done:
			}
		}()
		h(w, r.WithContext(ctx))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.metrics.Start).Seconds(),
		"factors":        s.reg.Len(),
		"inflight":       s.lim.Inflight(),
		"queued":         s.lim.Waiting(),
		// The wire protocol this build speaks as a cluster peer, so an
		// operator can spot a version-skewed deployment before the
		// transport handshake refuses it.
		"transport_protocol": wire.Version,
		// Cluster-robustness state: the configured run ledger (empty when
		// none), plus the head generation and attempt epoch of the most
		// recent run that reported them (0 / -0 until one does). A head
		// generation above 1 means some run survived a head respawn.
		"ledger":          s.cfg.LedgerPath,
		"head_generation": s.metrics.HeadGeneration.Load(),
		"last_epoch":      s.metrics.LastEpoch.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w, s.cache, s.lim, s.reg.Len())
}

// writeJSON renders v with a status code; encoding errors past the header
// are unrecoverable and ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError renders a JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func statusForContextErr(err error) int {
	// 503 for server-imposed deadlines; client cancels get 408.
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusRequestTimeout
}
