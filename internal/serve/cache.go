package serve

import (
	"container/list"
	"context"
	"fmt"

	"sync"

	"kronlab/internal/groundtruth"
)

// SummaryKey identifies one cacheable factor summary: the factor's
// registry hash, whether the +I (full self loops) variant is wanted, and
// whether the distance tier (hop matrix, eccentricities, diameter) is
// included. Distinct keys are distinct immutable cache entries, so a
// summary is never mutated after it is published.
type SummaryKey struct {
	Hash      string
	Loops     bool
	Distances bool
}

func (k SummaryKey) String() string {
	return fmt.Sprintf("%.12s/loops=%v/dist=%v", k.Hash, k.Loops, k.Distances)
}

// call is an in-flight summary build shared by all requests that asked
// for the same key while it was computing (singleflight).
type call struct {
	done chan struct{}
	s    *groundtruth.Summary
	err  error
}

// SummaryCache is a size-bounded LRU of factor summaries with
// singleflight deduplication: N concurrent requests for the same key cost
// exactly one build. The byte budget is accounted with
// groundtruth.Summary.CostBytes; the distance tier of a factor is a
// separate (larger) entry from its basic tier, so cheap degree/triangle
// queries never pay for hop matrices they don't need.
type SummaryCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recent; values are *cacheEntry
	items    map[SummaryKey]*list.Element
	inflight map[SummaryKey]*call
	metrics  *Metrics
}

type cacheEntry struct {
	key  SummaryKey
	s    *groundtruth.Summary
	cost int64
}

// NewSummaryCache returns a cache with the given byte budget. A budget
// ≤ 0 still caches the single most recent entry (the cache also serves as
// the synchronization point for builds, so it is never fully disabled).
func NewSummaryCache(maxBytes int64, m *Metrics) *SummaryCache {
	return &SummaryCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[SummaryKey]*list.Element),
		inflight: make(map[SummaryKey]*call),
		metrics:  m,
	}
}

// Get returns the summary for key, building it with build at most once no
// matter how many goroutines ask concurrently. Waiters abandon the wait
// (but not the build) when ctx is done.
func (c *SummaryCache) Get(ctx context.Context, key SummaryKey, build func() (*groundtruth.Summary, error)) (*groundtruth.Summary, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		s := el.Value.(*cacheEntry).s
		c.mu.Unlock()
		c.metrics.CacheHits.Add(1)
		return s, nil
	}
	c.metrics.CacheMisses.Add(1)
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.s, cl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	c.metrics.SummaryBuilds.Add(1)
	cl.s, cl.err = build()
	close(cl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.insertLocked(key, cl.s)
	}
	c.mu.Unlock()
	return cl.s, cl.err
}

// insertLocked adds a freshly built entry and evicts from the cold end
// until the budget holds. The newest entry itself is never evicted even
// when it alone exceeds the budget — serving beats strict accounting.
func (c *SummaryCache) insertLocked(key SummaryKey, s *groundtruth.Summary) {
	cost := s.CostBytes()
	c.curBytes += cost
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, s: s, cost: cost})
	for c.curBytes > c.maxBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.curBytes -= e.cost
		c.metrics.CacheEvictions.Add(1)
	}
}

// Len returns the number of resident entries.
func (c *SummaryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted resident size.
func (c *SummaryCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
