package serve

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"kronlab/internal/dist"
)

// routeNames are the fixed instrumentation labels; every endpoint maps to
// one of them. A fixed set keeps the hot path allocation- and lock-free.
var routeNames = []string{"factors", "gt", "gen", "meta"}

// RouteStats aggregates request counts, response codes by class, and
// latency for one route label. All fields are atomics; a snapshot read
// during traffic is approximate, which is fine for monitoring.
type RouteStats struct {
	Requests atomic.Int64
	NanosSum atomic.Int64
	NanosMax atomic.Int64
	Status   [6]atomic.Int64 // index = HTTP status / 100 (0 unused)
}

// Metrics is kronserve's operational counter set, exposed at /metrics in
// Prometheus text exposition format (no client library — stdlib only).
type Metrics struct {
	Start  time.Time
	routes map[string]*RouteStats

	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	SummaryBuilds  atomic.Int64
	CacheEvictions atomic.Int64

	AdmissionRejected atomic.Int64

	// heavyNanos is an exponentially-weighted moving average (α = 1/8) of
	// admitted heavy-request durations, feeding the Retry-After estimate.
	heavyNanos atomic.Int64

	// Generation traffic, accumulated from dist.Stats after each stream.
	GenEdges    atomic.Int64
	GenBatches  atomic.Int64
	GenBytes    atomic.Int64
	GenRequests atomic.Int64

	// Supervised-recovery activity inside generation runs.
	GenRetries    atomic.Int64
	GenRecovered  atomic.Int64
	GenReassigned atomic.Int64
	GenDupSkipped atomic.Int64
	GenStale      atomic.Int64
	GenHBMisses   atomic.Int64

	// Cluster-robustness gauges from the most recent run that reported
	// them: head incarnation count and final attempt epoch. Zero until a
	// cluster-backed run folds its stats in.
	HeadGeneration atomic.Int64
	LastEpoch      atomic.Int64
}

// ObserveHeavy folds one admitted heavy-request duration into the
// smoothed estimate behind Retry-After.
func (m *Metrics) ObserveHeavy(d time.Duration) {
	for {
		old := m.heavyNanos.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/8
		}
		if m.heavyNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// HeavyEWMA returns the smoothed heavy-request duration (0 before the
// first observation).
func (m *Metrics) HeavyEWMA() time.Duration {
	return time.Duration(m.heavyNanos.Load())
}

// NewMetrics returns a zeroed metric set with the clock started.
func NewMetrics() *Metrics {
	m := &Metrics{Start: time.Now(), routes: make(map[string]*RouteStats, len(routeNames))}
	for _, r := range routeNames {
		m.routes[r] = &RouteStats{}
	}
	return m
}

// Route returns the stats bucket for a known route label, or the "meta"
// bucket for anything unrecognized.
func (m *Metrics) Route(name string) *RouteStats {
	if rs, ok := m.routes[name]; ok {
		return rs
	}
	return m.routes["meta"]
}

// Observe records one finished request.
func (m *Metrics) Observe(route string, status int, d time.Duration) {
	rs := m.Route(route)
	rs.Requests.Add(1)
	rs.NanosSum.Add(int64(d))
	for {
		old := rs.NanosMax.Load()
		if int64(d) <= old || rs.NanosMax.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	cls := status / 100
	if cls < 1 || cls > 5 {
		cls = 5
	}
	rs.Status[cls].Add(1)
}

// AddGenStats folds one generation stream's traffic and recovery
// counters in.
func (m *Metrics) AddGenStats(st dist.Stats) {
	m.GenRequests.Add(1)
	m.GenEdges.Add(st.EdgesGenerated)
	m.GenBatches.Add(st.Messages)
	m.GenBytes.Add(st.BytesSent)
	m.GenRetries.Add(st.TotalRetries())
	m.GenRecovered.Add(st.RecoveredRuns)
	m.GenReassigned.Add(st.TilesReassigned)
	m.GenDupSkipped.Add(st.DuplicatesSkipped)
	m.GenStale.Add(st.StaleBatches)
	m.GenHBMisses.Add(st.HeartbeatMisses)
	if st.HeadGeneration > 0 {
		m.HeadGeneration.Store(st.HeadGeneration)
		m.LastEpoch.Store(st.LastEpoch)
	}
}

// WriteText renders the counters in Prometheus text exposition format.
func (m *Metrics) WriteText(w io.Writer, cache *SummaryCache, lim *Limiter, factors int) {
	fmt.Fprintf(w, "# TYPE kronserve_uptime_seconds gauge\n")
	fmt.Fprintf(w, "kronserve_uptime_seconds %g\n", time.Since(m.Start).Seconds())
	fmt.Fprintf(w, "# TYPE kronserve_factors_registered gauge\n")
	fmt.Fprintf(w, "kronserve_factors_registered %d\n", factors)

	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# TYPE kronserve_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "kronserve_requests_total{route=%q} %d\n", name, m.routes[name].Requests.Load())
	}
	fmt.Fprintf(w, "# TYPE kronserve_request_seconds_sum counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "kronserve_request_seconds_sum{route=%q} %g\n", name,
			time.Duration(m.routes[name].NanosSum.Load()).Seconds())
	}
	fmt.Fprintf(w, "# TYPE kronserve_request_seconds_max gauge\n")
	for _, name := range names {
		fmt.Fprintf(w, "kronserve_request_seconds_max{route=%q} %g\n", name,
			time.Duration(m.routes[name].NanosMax.Load()).Seconds())
	}
	fmt.Fprintf(w, "# TYPE kronserve_responses_total counter\n")
	for _, name := range names {
		for cls := 1; cls <= 5; cls++ {
			if c := m.routes[name].Status[cls].Load(); c > 0 {
				fmt.Fprintf(w, "kronserve_responses_total{route=%q,code=\"%dxx\"} %d\n", name, cls, c)
			}
		}
	}

	fmt.Fprintf(w, "# TYPE kronserve_cache_hits_total counter\n")
	fmt.Fprintf(w, "kronserve_cache_hits_total %d\n", m.CacheHits.Load())
	fmt.Fprintf(w, "# TYPE kronserve_cache_misses_total counter\n")
	fmt.Fprintf(w, "kronserve_cache_misses_total %d\n", m.CacheMisses.Load())
	fmt.Fprintf(w, "# TYPE kronserve_summary_builds_total counter\n")
	fmt.Fprintf(w, "kronserve_summary_builds_total %d\n", m.SummaryBuilds.Load())
	fmt.Fprintf(w, "# TYPE kronserve_cache_evictions_total counter\n")
	fmt.Fprintf(w, "kronserve_cache_evictions_total %d\n", m.CacheEvictions.Load())
	fmt.Fprintf(w, "# TYPE kronserve_cache_entries gauge\n")
	fmt.Fprintf(w, "kronserve_cache_entries %d\n", cache.Len())
	fmt.Fprintf(w, "# TYPE kronserve_cache_bytes gauge\n")
	fmt.Fprintf(w, "kronserve_cache_bytes %d\n", cache.Bytes())

	fmt.Fprintf(w, "# TYPE kronserve_admission_rejected_total counter\n")
	fmt.Fprintf(w, "kronserve_admission_rejected_total %d\n", m.AdmissionRejected.Load())
	fmt.Fprintf(w, "# TYPE kronserve_inflight_requests gauge\n")
	fmt.Fprintf(w, "kronserve_inflight_requests %d\n", lim.Inflight())
	fmt.Fprintf(w, "# TYPE kronserve_queued_requests gauge\n")
	fmt.Fprintf(w, "kronserve_queued_requests %d\n", lim.Waiting())

	fmt.Fprintf(w, "# TYPE kronserve_gen_requests_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_requests_total %d\n", m.GenRequests.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_edges_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_edges_total %d\n", m.GenEdges.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_batches_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_batches_total %d\n", m.GenBatches.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_bytes_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_bytes_total %d\n", m.GenBytes.Load())

	fmt.Fprintf(w, "# TYPE kronserve_heavy_seconds_ewma gauge\n")
	fmt.Fprintf(w, "kronserve_heavy_seconds_ewma %g\n", m.HeavyEWMA().Seconds())
	fmt.Fprintf(w, "# TYPE kronserve_gen_retries_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_retries_total %d\n", m.GenRetries.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_recovered_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_recovered_total %d\n", m.GenRecovered.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_tiles_reassigned_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_tiles_reassigned_total %d\n", m.GenReassigned.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_duplicates_skipped_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_duplicates_skipped_total %d\n", m.GenDupSkipped.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_stale_batches_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_stale_batches_total %d\n", m.GenStale.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_heartbeat_misses_total counter\n")
	fmt.Fprintf(w, "kronserve_gen_heartbeat_misses_total %d\n", m.GenHBMisses.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_head_generation gauge\n")
	fmt.Fprintf(w, "kronserve_gen_head_generation %d\n", m.HeadGeneration.Load())
	fmt.Fprintf(w, "# TYPE kronserve_gen_last_epoch gauge\n")
	fmt.Fprintf(w, "kronserve_gen_last_epoch %d\n", m.LastEpoch.Load())
}
