package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// genBody performs one /gen request with extra query parameters and an
// optional Range header, returning the response. The caller owns Body.
func genGet(t *testing.T, url, rangeHeader string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rangeHeader != "" {
		req.Header.Set("Range", rangeHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readAll reads the body to completion (so trailers populate) and closes.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func seekTestFactors(t *testing.T, ts *httptest.Server) (ha, hb string, total int64) {
	t.Helper()
	a := gen.PrefAttach(7, 2, 101)
	b := gen.ER(5, 0.6, 102)
	return registerText(t, ts, a, "seek-a"), registerText(t, ts, b, "seek-b"),
		a.NumArcs() * b.NumArcs()
}

func TestGenerateOffsetParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ha, hb, total := seekTestFactors(t, ts)
	base := fmt.Sprintf("%s/gen/%s/%s/edges", ts.URL, ha, hb)

	full := string(readAll(t, genGet(t, base, "")))
	lines := strings.Split(strings.TrimSuffix(full, "\n"), "\n")
	if int64(len(lines)) != total {
		t.Fatalf("full stream has %d lines, want %d", len(lines), total)
	}
	for _, off := range []int64{0, 1, total / 2, total - 1, total} {
		resp := genGet(t, fmt.Sprintf("%s?offset=%d", base, off), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("offset=%d: status %d", off, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Kronlab-Stream-Offset"); got != strconv.FormatInt(off, 10) {
			t.Errorf("offset=%d: X-Kronlab-Stream-Offset = %q", off, got)
		}
		body := string(readAll(t, resp))
		want := ""
		if off < total {
			want = strings.Join(lines[off:], "\n") + "\n"
		}
		if body != want {
			t.Fatalf("offset=%d: body is not the full stream's tail", off)
		}
	}
	// Out-of-range offsets refuse.
	for _, raw := range []string{"-1", fmt.Sprint(total + 1), "zap"} {
		resp := genGet(t, base+"?offset="+raw, "")
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("offset=%s: status %d, want 400", raw, resp.StatusCode)
		}
	}
}

// TestGenerateCutAndResume is the tentpole's serve-level guarantee: a
// stream cut at an arbitrary point and resumed via its
// X-Kronlab-Resume-Token trailer concatenates byte-identically to the
// uncut stream — for both wire formats.
func TestGenerateCutAndResume(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ha, hb, total := seekTestFactors(t, ts)
	for _, format := range []string{"ndjson", "binary"} {
		t.Run(format, func(t *testing.T) {
			base := fmt.Sprintf("%s/gen/%s/%s/edges?format=%s", ts.URL, ha, hb, format)
			full := readAll(t, genGet(t, base, ""))

			cut := total / 3
			first := genGet(t, fmt.Sprintf("%s&limit=%d", base, cut), "")
			part1 := readAll(t, first)
			if got := first.Trailer.Get("X-Kronlab-Complete"); got != "true" {
				t.Fatalf("limit-cut stream X-Kronlab-Complete = %q, want true", got)
			}
			token := first.Trailer.Get("X-Kronlab-Resume-Token")
			if token == "" {
				t.Fatal("cut stream carried no resume token")
			}
			if !strings.HasSuffix(token, "."+strconv.FormatInt(cut, 10)) {
				t.Fatalf("resume token %q does not end at position %d", token, cut)
			}

			second := genGet(t, base+"&resume="+token, "")
			if second.StatusCode != http.StatusOK {
				body := readAll(t, second)
				t.Fatalf("resume: status %d: %s", second.StatusCode, body)
			}
			part2 := readAll(t, second)
			if got := second.Trailer.Get("X-Kronlab-Resume-Token"); !strings.HasSuffix(got, "."+strconv.FormatInt(total, 10)) {
				t.Fatalf("final resume token %q does not end at position %d", got, total)
			}
			joined := append(append([]byte{}, part1...), part2...)
			if string(joined) != string(full) {
				t.Fatalf("cut-and-resume concatenation differs from the uncut stream (%d+%d vs %d bytes)",
					len(part1), len(part2), len(full))
			}
		})
	}
}

func TestGenerateResumeTokenRefusals(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ha, hb, _ := seekTestFactors(t, ts)
	base := fmt.Sprintf("%s/gen/%s/%s/edges", ts.URL, ha, hb)

	// Mint a real token at a pinned layout, then replay it against
	// requests whose stream digest differs — layout, ranks, format and
	// loops all change the stream, so all must refuse.
	first := genGet(t, base+"?limit=2&ranks=2", "")
	readAll(t, first)
	token := first.Trailer.Get("X-Kronlab-Resume-Token")
	if token == "" {
		t.Fatal("no resume token")
	}
	for _, q := range []string{
		"?resume=" + token + "&ranks=2&layout=2d",
		"?resume=" + token + "&ranks=3",
		"?resume=" + token + "&ranks=2&format=binary",
		"?resume=" + token + "&ranks=2&loops=1",
		"?resume=garbage",
		"?resume=kr1.0123456789abcdef.0",         // wrong digest
		"?resume=" + token + "&ranks=2&offset=1", // two start positions
	} {
		resp := genGet(t, base+q, "")
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// The token is honored by an otherwise-identical request.
	resp := genGet(t, base+"?resume="+token+"&ranks=2", "")
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid resume refused: status %d", resp.StatusCode)
	}
}

func TestGenerateRangeRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ha, hb, total := seekTestFactors(t, ts)
	base := fmt.Sprintf("%s/gen/%s/%s/edges?format=binary", ts.URL, ha, hb)
	totalBytes := total * store.RecordSize

	probe := genGet(t, base, "")
	full := readAll(t, probe)
	if probe.Header.Get("Accept-Ranges") != "bytes" {
		t.Fatal("binary stream does not advertise Accept-Ranges")
	}
	if int64(len(full)) != totalBytes {
		t.Fatalf("full stream is %d bytes, want %d", len(full), totalBytes)
	}

	for _, tc := range []struct {
		name string
		hdr  string
		want []byte
		cr   string
	}{
		{"open-aligned", fmt.Sprintf("bytes=%d-", 3*store.RecordSize),
			full[3*store.RecordSize:], fmt.Sprintf("bytes %d-%d/%d", 3*store.RecordSize, totalBytes-1, totalBytes)},
		{"open-unaligned", "bytes=5-", full[5:], fmt.Sprintf("bytes 5-%d/%d", totalBytes-1, totalBytes)},
		{"bounded-unaligned", "bytes=7-40", full[7:41], fmt.Sprintf("bytes 7-40/%d", totalBytes)},
		{"bounded-overlong", fmt.Sprintf("bytes=8-%d", totalBytes+100),
			full[8:], fmt.Sprintf("bytes 8-%d/%d", totalBytes-1, totalBytes)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := genGet(t, base, tc.hdr)
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusPartialContent {
				t.Fatalf("status %d, want 206", resp.StatusCode)
			}
			if got := resp.Header.Get("Content-Range"); got != tc.cr {
				t.Errorf("Content-Range = %q, want %q", got, tc.cr)
			}
			if string(body) != string(tc.want) {
				t.Fatalf("ranged body differs from the full stream's slice (%d vs %d bytes)", len(body), len(tc.want))
			}
			if got := resp.Trailer.Get("X-Kronlab-Complete"); got != "true" {
				t.Errorf("X-Kronlab-Complete = %q, want true", got)
			}
		})
	}

	t.Run("past-end-416", func(t *testing.T) {
		resp := genGet(t, base, fmt.Sprintf("bytes=%d-", totalBytes))
		readAll(t, resp)
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("status %d, want 416", resp.StatusCode)
		}
		if got, want := resp.Header.Get("Content-Range"), fmt.Sprintf("bytes */%d", totalBytes); got != want {
			t.Errorf("Content-Range = %q, want %q", got, want)
		}
	})

	t.Run("unsupported-forms-ignored", func(t *testing.T) {
		for _, hdr := range []string{"bytes=-100", "bytes=0-5,10-15", "arcs=0-5"} {
			resp := genGet(t, base, hdr)
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("Range %q: status %d, want 200 (ignored)", hdr, resp.StatusCode)
			}
			if int64(len(body)) != totalBytes {
				t.Errorf("Range %q: body %d bytes, want the whole stream", hdr, len(body))
			}
		}
	})

	t.Run("ndjson-ignores-range", func(t *testing.T) {
		nd := fmt.Sprintf("%s/gen/%s/%s/edges", ts.URL, ha, hb)
		resp := genGet(t, nd, "bytes=0-10")
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("ndjson with Range: status %d, want 200", resp.StatusCode)
		}
		if resp.Header.Get("Accept-Ranges") != "" {
			t.Error("ndjson stream advertises Accept-Ranges")
		}
	})
}

// TestGenerateTwoFactorChainParity pins the handler collapse: the
// two-factor route and the chain route spelled with the same factors
// must return identical bytes and identical product headers.
func TestGenerateTwoFactorChainParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ha, hb, _ := seekTestFactors(t, ts)
	for _, q := range []string{"", "?format=binary", "?layout=2d&offset=5"} {
		two := genGet(t, fmt.Sprintf("%s/gen/%s/%s/edges%s", ts.URL, ha, hb, q), "")
		chain := genGet(t, fmt.Sprintf("%s/gen/%s,%s/edges%s", ts.URL, ha, hb, q), "")
		twoBody := readAll(t, two)
		chainBody := readAll(t, chain)
		if two.StatusCode != chain.StatusCode {
			t.Fatalf("%q: status %d vs %d", q, two.StatusCode, chain.StatusCode)
		}
		if string(twoBody) != string(chainBody) {
			t.Fatalf("%q: two-factor and chain bodies differ", q)
		}
		for _, h := range []string{"X-Kronlab-Product-N", "X-Kronlab-Product-Arcs", "X-Kronlab-Factors", "X-Kronlab-Stream-Offset"} {
			if two.Header.Get(h) != chain.Header.Get(h) {
				t.Errorf("%q: header %s: %q vs %q", q, h, two.Header.Get(h), chain.Header.Get(h))
			}
		}
	}
}

// TestGenerateProductOverflowRefused is the header-overflow regression
// test: a product whose arc count exceeds int64 must be a 400, not a
// silently wrapped X-Kronlab-Product-Arcs. A 2-vertex factor with all
// four arcs raised to the 32nd power has 4^32 = 2^64 arcs (overflow)
// over 2^32 vertices (fits), so the count — not the vertex space — is
// what trips.
func TestGenerateProductOverflowRefused(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	k2, err := graph.New(2, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	h := registerText(t, ts, k2, "full2")
	resp := genGet(t, fmt.Sprintf("%s/gen/%s/edges?power=32", ts.URL, h), "")
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Kronlab-Product-Arcs") != "" {
		t.Error("overflowing product still sent an arc-count header")
	}
}
