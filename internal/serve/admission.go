package serve

import (
	"context"
	"errors"
)

// ErrBusy is returned by Limiter.Acquire when the queue is at capacity;
// the HTTP layer maps it to 429 Too Many Requests.
var ErrBusy = errors.New("serve: admission queue full")

// Limiter is the semaphore-based admission controller for heavy requests
// (ground-truth queries and generation streams): at most maxInflight
// requests execute concurrently, at most maxQueue more wait for a slot,
// and anything beyond that is rejected immediately with ErrBusy — bounded
// latency instead of an unbounded queue.
type Limiter struct {
	slots chan struct{} // capacity maxInflight: held while executing
	queue chan struct{} // capacity maxInflight+maxQueue: held while waiting or executing
}

// NewLimiter returns a limiter admitting maxInflight concurrent requests
// with maxQueue waiters. Both arguments are clamped to ≥ 1 and ≥ 0.
func NewLimiter(maxInflight, maxQueue int) *Limiter {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		slots: make(chan struct{}, maxInflight),
		queue: make(chan struct{}, maxInflight+maxQueue),
	}
}

// Acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns ErrBusy without blocking when the queue is
// full, or ctx.Err() if the context ends while waiting. On success the
// caller must Release exactly once.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.queue <- struct{}{}:
	default:
		return ErrBusy
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-l.queue
		return ctx.Err()
	}
}

// Release returns the slot claimed by a successful Acquire.
func (l *Limiter) Release() {
	<-l.slots
	<-l.queue
}

// Inflight returns the number of requests currently executing.
func (l *Limiter) Inflight() int { return len(l.slots) }

// Waiting returns the number of requests queued for a slot.
func (l *Limiter) Waiting() int { return len(l.queue) - len(l.slots) }
