package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"kronlab/internal/core"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

// Chain routes generalize the two-factor endpoints to factor chains
// C = A₁⊗A₂⊗…⊗Aₖ: GET /gt/{chain}/{property} and
// GET /gen/{chain}/edges, where {chain} is a comma-separated list of
// registry keys (hash, ≥8-char prefix, or name). A single-key chain with
// power=k queries the Kronecker power A^{⊗k} without registering k
// copies. The two-factor routes stay as the k=2 spelling; both run the
// same chain laws and the same chain engine underneath.

// maxChainPower caps power=k: past this even 2-vertex factors overflow
// int64 vertex counts, so larger k only buys a bigger error message.
const maxChainPower = 64

// resolveChainList maps the {chain} path component plus an optional
// power=k to the ordered factor list. It writes the failure response
// itself: 404 for unknown keys, 400 for a malformed spec.
func (s *Server) resolveChainList(w http.ResponseWriter, r *http.Request, raw string) ([]*graph.Graph, []string, bool) {
	keys := strings.Split(raw, ",")
	for i := range keys {
		keys[i] = strings.TrimSpace(keys[i])
		if keys[i] == "" {
			writeError(w, http.StatusBadRequest, "empty factor key in chain %q", raw)
			return nil, nil, false
		}
	}
	if rawK := r.URL.Query().Get("power"); rawK != "" {
		k, err := strconv.Atoi(rawK)
		if err != nil || k < 1 || k > maxChainPower {
			writeError(w, http.StatusBadRequest, "power must be an integer in [1,%d], got %q", maxChainPower, rawK)
			return nil, nil, false
		}
		if len(keys) != 1 {
			writeError(w, http.StatusBadRequest, "power=%d needs a single-factor chain, got %d keys", k, len(keys))
			return nil, nil, false
		}
		rep := make([]string, k)
		for i := range rep {
			rep[i] = keys[0]
		}
		keys = rep
	}
	gs := make([]*graph.Graph, len(keys))
	hashes := make([]string, len(keys))
	for i, key := range keys {
		g, h, ok := s.resolveFactor(w, key)
		if !ok {
			return nil, nil, false
		}
		gs[i], hashes[i] = g, h
	}
	return gs, hashes, true
}

// chainGTRequest carries the resolved inputs of one chain ground-truth
// query: the per-position factor summaries (shared pointers for repeated
// factors) plus the mixed-radix product indexing.
type chainGTRequest struct {
	sums   []*groundtruth.Summary
	hashes []string
	loops  bool
	ci     core.ChainIndex
	ciErr  error // vertex-count overflow; vertex-addressed props refuse
}

// factors returns the per-position groundtruth factors.
func (req *chainGTRequest) factors() []*groundtruth.Factor {
	fs := make([]*groundtruth.Factor, len(req.sums))
	for i, s := range req.sums {
		fs[i] = s.F
	}
	return fs
}

// base stamps the chain identification onto a response body.
func (req *chainGTRequest) base(extra map[string]any) map[string]any {
	extra["chain"] = req.hashes
	extra["k"] = len(req.hashes)
	extra["loops"] = req.loops
	return extra
}

// vertexParam parses and range-checks a product vertex id parameter,
// refusing when the product vertex count itself overflows int64.
func (req *chainGTRequest) vertexParam(r *http.Request, name string) (int64, bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, false, nil
	}
	if req.ciErr != nil {
		return 0, false, fmt.Errorf("cannot address product vertices: %v", req.ciErr)
	}
	p, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s=%q: %v", name, raw, err)
	}
	if p < 0 || p >= req.ci.NumVertices() {
		return 0, false, fmt.Errorf("%s=%d out of range [0,%d)", name, p, req.ci.NumVertices())
	}
	return p, true, nil
}

// handleChainGroundTruth serves GET /gt/{chain}/{property}. The
// supported properties are the ones whose laws compose across arbitrary
// chains: summary, degree, triangles, diameter, eccentricity, hops.
// loops=1 queries the full-self-loop product ⊗(A_d+I).
func (s *Server) handleChainGroundTruth(w http.ResponseWriter, r *http.Request) {
	gs, hashes, ok := s.resolveChainList(w, r, r.PathValue("chain"))
	if !ok {
		return
	}
	loops := r.URL.Query().Get("loops") == "1"
	prop := r.PathValue("property")

	distProp := prop == "diameter" || prop == "eccentricity" || prop == "hops"
	loopVariant := loops && distProp
	if distProp && !loops {
		for i, g := range gs {
			if g.NumSelfLoops() != g.NumVertices() {
				writeError(w, http.StatusBadRequest,
					"distance ground truth requires full-self-loop factors (factor %d is not); pass loops=1 to query ⊗(A_d+I)", i)
				return
			}
		}
	}
	if loops && !distProp {
		for i, g := range gs {
			if g.NumSelfLoops() != 0 {
				writeError(w, http.StatusBadRequest,
					"loops=1 ground truth requires loop-free registered factors (factor %d has loops; the construction adds them)", i)
				return
			}
		}
	}

	sums := make([]*groundtruth.Summary, len(gs))
	for i := range gs {
		sum, err := s.cache.Get(r.Context(), SummaryKey{Hash: hashes[i], Loops: loopVariant, Distances: distProp},
			func() (*groundtruth.Summary, error) {
				return groundtruth.NewSummary(gs[i], hashes[i], loopVariant, distProp), nil
			})
		if err != nil {
			writeError(w, statusForContextErr(err), "resolving factor summaries: %v", err)
			return
		}
		sums[i] = sum
	}
	dims := make([]int64, len(sums))
	for i, sum := range sums {
		dims[i] = sum.F.N()
	}
	req := &chainGTRequest{sums: sums, hashes: hashes, loops: loops}
	req.ci, req.ciErr = core.NewChainIndex(dims)

	switch prop {
	case "summary":
		s.chainGTSummary(w, r, req, gs)
	case "degree":
		s.chainGTDegree(w, r, req)
	case "triangles":
		s.chainGTTriangles(w, r, req)
	case "diameter":
		writeJSON(w, http.StatusOK, req.base(map[string]any{
			"diameter": hopValue(groundtruth.ChainDiameter(req.factors())),
		}))
	case "eccentricity":
		s.chainGTEccentricity(w, r, req)
	case "hops":
		s.chainGTHops(w, r, req)
	default:
		writeError(w, http.StatusNotFound,
			"unknown chain property %q (have summary, degree, triangles, diameter, eccentricity, hops)", prop)
	}
}

func (s *Server) chainGTSummary(w http.ResponseWriter, r *http.Request, req *chainGTRequest, gs []*graph.Graph) {
	fs := make([]*groundtruth.Factor, len(gs))
	for i, g := range gs {
		if req.loops {
			g = g.WithFullSelfLoops()
		}
		fs[i] = groundtruth.NewFactor(g)
	}
	n, err := groundtruth.ChainNumVertices(fs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	arcs, err := groundtruth.ChainNumArcs(fs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	edges, err := groundtruth.ChainNumEdges(fs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{
		"n": n, "arcs": arcs, "edges": edges,
	}))
}

func (s *Server) chainGTDegree(w http.ResponseWriter, r *http.Request, req *chainGTRequest) {
	p, ok, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "degree needs p=<product vertex>")
		return
	}
	coords := req.ci.Split(p)
	d := int64(1)
	for i, sum := range req.sums {
		if req.loops {
			d *= sum.F.Deg[coords[i]] + 1 // d_p of ⊗(A_d+I)
		} else {
			d *= sum.F.Deg[coords[i]] // d_C = ⊗ d_{A_d}
		}
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "coords": coords, "degree": d}))
}

func (s *Server) chainGTTriangles(w http.ResponseWriter, r *http.Request, req *chainGTRequest) {
	if req.loops {
		writeError(w, http.StatusBadRequest, "chain triangle ground truth covers the loop-free product; drop loops=1")
		return
	}
	for i, sum := range req.sums {
		if sum.F.G.NumSelfLoops() != 0 {
			writeError(w, http.StatusBadRequest, "triangle ground truth requires loop-free factors (factor %d has loops)", i)
			return
		}
	}
	p, hasP, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if hasP {
		tri := groundtruth.ChainVertexTrianglesAt(req.factors(), req.ci.Split(p)) // t_C = 2^{k−1}·Π t_d
		writeJSON(w, http.StatusOK, req.base(map[string]any{"p": p, "vertex_triangles": tri}))
		return
	}
	tau, err := groundtruth.ChainGlobalTriangles(req.factors()) // τ_C = 6^{k−1}·Π τ_d
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{"global_triangles": tau}))
}

func (s *Server) chainGTEccentricity(w http.ResponseWriter, r *http.Request, req *chainGTRequest) {
	if r.URL.Query().Get("hist") == "1" {
		hist := groundtruth.ChainEccentricityHistogram(req.factors())
		out := make(map[string]int64, len(hist))
		for e, c := range hist {
			out[strconv.FormatInt(e, 10)] = c
		}
		writeJSON(w, http.StatusOK, req.base(map[string]any{"histogram": out}))
		return
	}
	p, ok, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "eccentricity needs p=<product vertex> or hist=1")
		return
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{
		"p": p, "eccentricity": hopValue(groundtruth.ChainEccentricityAt(req.factors(), req.ci.Split(p))),
	}))
}

func (s *Server) chainGTHops(w http.ResponseWriter, r *http.Request, req *chainGTRequest) {
	p, hasP, err := req.vertexParam(r, "p")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, hasQ, err := req.vertexParam(r, "q")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !hasP || !hasQ {
		writeError(w, http.StatusBadRequest, "hops needs p=<vertex>&q=<vertex>")
		return
	}
	writeJSON(w, http.StatusOK, req.base(map[string]any{
		"p": p, "q": q,
		"hops": hopValue(groundtruth.ChainHopsAt(req.factors(), req.ci.Split(p), req.ci.Split(q))),
	}))
}

// handleChainGenerate serves GET /gen/{chain}/edges: the chain product's
// arcs streamed by the dist chain engine without ever materializing the
// product (or any pairwise intermediate) server-side. Query parameters
// match /gen/{a}/{b}/edges (one shared implementation — see
// streamChainEdges), plus power=k for single-key chains.
func (s *Server) handleChainGenerate(w http.ResponseWriter, r *http.Request) {
	gs, hashes, ok := s.resolveChainList(w, r, r.PathValue("chain"))
	if !ok {
		return
	}
	s.streamChainEdges(w, r, gs, hashes)
}
