package serve

import (
	"bufio"
	"encoding/binary"
	"net/http"

	"kronlab/internal/graph"
)

// kronlabBinaryMagic mirrors the magic of graph.WriteBinary, used here
// only to sniff the upload format when no explicit Content-Type is set.
const kronlabBinaryMagic = uint64(0x4b524f4e4c414201)

// handleRegister ingests a factor graph from the request body — text edge
// list or the kronlab binary format, auto-detected by magic unless forced
// with Content-Type: application/octet-stream — symmetrizes text input,
// and registers it content-addressed. Registering an already-known graph
// is a 200 with the existing record; a new graph is a 201.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	head, _ := body.Peek(8)
	isBinary := r.Header.Get("Content-Type") == "application/octet-stream" ||
		(len(head) == 8 && binary.LittleEndian.Uint64(head) == kronlabBinaryMagic)

	var g *graph.Graph
	if isBinary {
		var err error
		g, err = graph.ReadBinary(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "binary edge list: %v", err)
			return
		}
	} else {
		edges, n, err := graph.ReadEdgeList(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "text edge list: %v", err)
			return
		}
		if n == 0 {
			writeError(w, http.StatusBadRequest, "empty edge list")
			return
		}
		g, err = graph.NewUndirected(n, edges)
		if err != nil {
			writeError(w, http.StatusBadRequest, "building graph: %v", err)
			return
		}
	}

	info, created := s.reg.Register(g, r.URL.Query().Get("name"))
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, info)
}

func (s *Server) handleListFactors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"factors": s.reg.List()})
}

func (s *Server) handleGetFactor(w http.ResponseWriter, r *http.Request) {
	hash, err := s.reg.Resolve(r.PathValue("hash"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	_, info, _ := s.reg.Get(hash)
	writeJSON(w, http.StatusOK, info)
}

// resolveFactor maps a path component (hash, prefix, or name) to the
// registered graph, writing the 404 itself on failure.
func (s *Server) resolveFactor(w http.ResponseWriter, key string) (*graph.Graph, string, bool) {
	hash, err := s.reg.Resolve(key)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return nil, "", false
	}
	g, _, _ := s.reg.Get(hash)
	return g, hash, true
}
