package serve

import (
	"fmt"
	"sync"
	"time"

	"kronlab/internal/graph"
)

// FactorInfo is the registry's public record of one factor graph.
type FactorInfo struct {
	Hash       string    `json:"hash"`
	Name       string    `json:"name,omitempty"`
	N          int64     `json:"n"`
	Edges      int64     `json:"edges"`
	Arcs       int64     `json:"arcs"`
	SelfLoops  int64     `json:"self_loops"`
	Registered time.Time `json:"registered"`
}

// Registry is the content-addressed factor store: graphs are keyed by
// their canonical-serialization hash, so registering the same graph twice
// (under any name, in either wire format) is idempotent and every product
// A⊗B is identified by an unambiguous pair of hashes.
type Registry struct {
	mu     sync.RWMutex
	byHash map[string]*factorEntry
	order  []string // registration order, for stable listings
}

type factorEntry struct {
	info FactorInfo
	g    *graph.Graph
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byHash: make(map[string]*factorEntry)}
}

// Register adds g under its canonical hash and returns its record plus
// whether it was newly added. Re-registration keeps the first record (the
// graph is identical by construction) but fills in a name if the original
// registration had none.
func (r *Registry) Register(g *graph.Graph, name string) (FactorInfo, bool) {
	h := g.CanonicalHash()
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byHash[h]; ok {
		if e.info.Name == "" && name != "" {
			e.info.Name = name
		}
		return e.info, false
	}
	e := &factorEntry{
		info: FactorInfo{
			Hash:       h,
			Name:       name,
			N:          g.NumVertices(),
			Edges:      g.NumEdges(),
			Arcs:       g.NumArcs(),
			SelfLoops:  g.NumSelfLoops(),
			Registered: time.Now().UTC(),
		},
		g: g,
	}
	r.byHash[h] = e
	r.order = append(r.order, h)
	return e.info, true
}

// Get returns the graph and record for an exact hash.
func (r *Registry) Get(hash string) (*graph.Graph, FactorInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byHash[hash]
	if !ok {
		return nil, FactorInfo{}, false
	}
	return e.g, e.info, true
}

// minPrefix is the shortest hash prefix Resolve accepts; shorter strings
// are too collision-prone to be useful addresses.
const minPrefix = 8

// Resolve maps a full hash, a unique hash prefix (≥ 8 hex chars), or a
// registered name to the full hash.
func (r *Registry) Resolve(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.byHash[key]; ok {
		return key, nil
	}
	var match string
	for h, e := range r.byHash {
		ok := e.info.Name != "" && e.info.Name == key
		if !ok && len(key) >= minPrefix && len(key) < len(h) && h[:len(key)] == key {
			ok = true
		}
		if ok {
			if match != "" {
				return "", fmt.Errorf("factor %q is ambiguous", key)
			}
			match = h
		}
	}
	if match == "" {
		return "", fmt.Errorf("factor %q not registered", key)
	}
	return match, nil
}

// List returns all records in registration order.
func (r *Registry) List() []FactorInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FactorInfo, 0, len(r.order))
	for _, h := range r.order {
		out = append(out, r.byHash[h].info)
	}
	return out
}

// Len returns the number of registered factors.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byHash)
}
