package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// registerText uploads g as a text edge list and returns its hash.
func registerText(t *testing.T, ts *httptest.Server, g *graph.Graph, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	u := ts.URL + "/factors"
	if name != "" {
		u += "?name=" + url.QueryEscape(name)
	}
	resp, err := http.Post(u, "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var info FactorInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info.Hash
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return out
}

func TestRegisterContentAddressed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g := gen.PrefAttach(10, 2, 1)

	hash := registerText(t, ts, g, "alpha")
	if hash != g.CanonicalHash() {
		t.Fatalf("hash %s != canonical %s", hash, g.CanonicalHash())
	}

	// Same graph as binary: idempotent, same address, 200 not 201.
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/factors", "application/octet-stream", &bin)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: status %d, want 200", resp.StatusCode)
	}
	var info FactorInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Hash != hash {
		t.Fatalf("binary re-register changed address: %s vs %s", info.Hash, hash)
	}

	// Lookup by full hash, by 12-char prefix, and by name.
	for _, key := range []string{hash, hash[:12], "alpha"} {
		got := getJSON(t, ts.URL+"/factors/"+key, http.StatusOK)
		if got["hash"] != hash {
			t.Errorf("lookup %q returned %v", key, got["hash"])
		}
	}
	getJSON(t, ts.URL+"/factors/nosuchthing", http.StatusNotFound)

	list := getJSON(t, ts.URL+"/factors", http.StatusOK)
	if n := len(list["factors"].([]any)); n != 1 {
		t.Errorf("listing has %d factors, want 1", n)
	}
}

func TestRegisterRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{"", "a b\n", "0 -4\n"} {
		resp, err := http.Post(ts.URL+"/factors", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Truncated binary payload.
	g := gen.Ring(6)
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/factors", "application/octet-stream",
		bytes.NewReader(bin.Bytes()[:bin.Len()-5]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated binary: status %d, want 400", resp.StatusCode)
	}
}

// TestSummarySingleflight is the acceptance concurrency test: N parallel
// identical analytics requests must compute each factor summary exactly
// once, with every response identical.
func TestSummarySingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 32, MaxQueue: 64})
	a := gen.PrefAttach(14, 2, 3)
	b := gen.PrefAttach(11, 2, 4)
	ha := registerText(t, ts, a, "")
	hb := registerText(t, ts, b, "")

	const parallel = 16
	urlStr := fmt.Sprintf("%s/gt/%s/%s/diameter?loops=1", ts.URL, ha, hb)
	results := make([]string, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(urlStr)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			results[i] = string(body)
		}(i)
	}
	wg.Wait()

	for i := 1; i < parallel; i++ {
		if results[i] != results[0] {
			t.Fatalf("response %d differs: %s vs %s", i, results[i], results[0])
		}
	}
	if builds := s.Metrics().SummaryBuilds.Load(); builds != 2 {
		t.Errorf("summary built %d times for 2 factors under %d parallel requests, want exactly 2",
			builds, parallel)
	}
	if hits := s.Metrics().CacheHits.Load() + s.Metrics().CacheMisses.Load(); hits == 0 {
		t.Error("cache saw no traffic")
	}
}

// TestAdmissionControl is the acceptance 429 test: with 1 execution slot
// and a queue of 1, a third concurrent request is rejected immediately
// instead of queueing unboundedly.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{MaxInflight: 1, MaxQueue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	blocked := s.admitted(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})

	req := httptest.NewRequest("GET", "/x", nil)
	codes := make([]int, 3)
	var wg sync.WaitGroup
	run := func(i int) {
		defer wg.Done()
		rec := httptest.NewRecorder()
		blocked(rec, req)
		codes[i] = rec.Code
	}

	wg.Add(1)
	go run(0)
	<-started // request 0 holds the slot

	wg.Add(1)
	go run(1) // request 1 waits in the queue
	waitFor(t, func() bool { return s.lim.Waiting() == 1 })

	wg.Add(1)
	go run(2) // request 2 must bounce
	waitFor(t, func() bool { return s.Metrics().AdmissionRejected.Load() == 1 })

	close(release)
	wg.Wait()
	if codes[2] != http.StatusTooManyRequests {
		t.Errorf("overflow request got %d, want 429", codes[2])
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Errorf("admitted requests got %d, %d, want 200, 200", codes[0], codes[1])
	}
}

func TestAcquireContextCancel(t *testing.T) {
	lim := NewLimiter(1, 2)
	if err := lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := lim.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire under dead context: %v", err)
	}
	// The abandoned wait must have returned its queue token.
	if lim.Waiting() != 0 {
		t.Errorf("abandoned waiter leaked a queue token: %d waiting", lim.Waiting())
	}
	lim.Release()
	if err := lim.Acquire(context.Background()); err != nil {
		t.Errorf("limiter unusable after cancelled wait: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheEvictionBudget(t *testing.T) {
	m := NewMetrics()
	g1 := gen.PrefAttach(20, 2, 1)
	g2 := gen.PrefAttach(20, 2, 2)
	s1 := groundtruth.NewSummary(g1, "h1", false, false)
	// Budget fits exactly one basic summary.
	c := NewSummaryCache(s1.CostBytes()+8, m)

	ctx := context.Background()
	build := func(g *graph.Graph, h string) func() (*groundtruth.Summary, error) {
		return func() (*groundtruth.Summary, error) { return groundtruth.NewSummary(g, h, false, false), nil }
	}
	if _, err := c.Get(ctx, SummaryKey{Hash: "h1"}, build(g1, "h1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, SummaryKey{Hash: "h2"}, build(g2, "h2")); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries over budget, want 1", c.Len())
	}
	if m.CacheEvictions.Load() != 1 {
		t.Errorf("evictions = %d, want 1", m.CacheEvictions.Load())
	}
	// h1 was evicted: asking again rebuilds.
	if _, err := c.Get(ctx, SummaryKey{Hash: "h1"}, build(g1, "h1")); err != nil {
		t.Fatal(err)
	}
	if m.SummaryBuilds.Load() != 3 {
		t.Errorf("builds = %d, want 3 (h1, h2, h1 again)", m.SummaryBuilds.Load())
	}
	// An entry larger than the whole budget is still admitted (and alone).
	big := groundtruth.NewSummary(gen.PrefAttach(40, 3, 3), "big", false, true)
	if _, err := c.Get(ctx, SummaryKey{Hash: "big", Distances: true},
		func() (*groundtruth.Summary, error) { return big, nil }); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("oversized entry handling: %d entries, want 1", c.Len())
	}
}

func TestGroundTruthValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := gen.PrefAttach(8, 2, 5) // loop-free
	ha := registerText(t, ts, a, "")

	cases := []struct {
		name, url string
		status    int
	}{
		{"unknown factor", "/gt/" + strings.Repeat("0", 64) + "/" + ha + "/degree?p=0", http.StatusNotFound},
		{"unknown property", "/gt/" + ha + "/" + ha + "/frobnicate", http.StatusNotFound},
		{"degree missing p", "/gt/" + ha + "/" + ha + "/degree", http.StatusBadRequest},
		{"degree p out of range", "/gt/" + ha + "/" + ha + "/degree?p=9999", http.StatusBadRequest},
		{"distance without loops on loop-free factors", "/gt/" + ha + "/" + ha + "/diameter", http.StatusBadRequest},
		{"clustering under loops", "/gt/" + ha + "/" + ha + "/clustering?p=0&loops=1", http.StatusBadRequest},
		{"community without loops", "/gt/" + ha + "/" + ha + "/community?sa=0&sb=0", http.StatusBadRequest},
		{"community bad set", "/gt/" + ha + "/" + ha + "/community?sa=0,99&sb=0&loops=1", http.StatusBadRequest},
		{"triangles non-edge", "/gt/" + ha + "/" + ha + "/triangles?p=0&q=0", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			getJSON(t, ts.URL+tc.url, tc.status)
		})
	}

	// A factor with loops cannot serve loops=1 triangle formulas.
	loopy := gen.Ring(5).WithFullSelfLoops()
	hl := registerText(t, ts, loopy, "")
	getJSON(t, ts.URL+"/gt/"+hl+"/"+hl+"/triangles?loops=1", http.StatusBadRequest)
	// But it serves plain-mode distance directly (it has full self loops).
	got := getJSON(t, ts.URL+"/gt/"+hl+"/"+hl+"/diameter", http.StatusOK)
	if got["diameter"] != float64(2) {
		t.Errorf("ring-with-loops squared diameter = %v, want 2", got["diameter"])
	}
}

func TestGenerateStreamLimitAndHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := gen.PrefAttach(10, 2, 6)
	b := gen.PrefAttach(7, 2, 7)
	ha := registerText(t, ts, a, "")
	hb := registerText(t, ts, b, "")

	resp, err := http.Get(fmt.Sprintf("%s/gen/%s/%s/edges?limit=10", ts.URL, ha, hb))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Kronlab-Product-Arcs"); got != fmt.Sprint(a.NumArcs()*b.NumArcs()) {
		t.Errorf("arc header %q", got)
	}
	lines := 0
	sc := newLineCounter(resp.Body, &lines)
	if _, err := io.Copy(io.Discard, sc); err != nil {
		t.Fatal(err)
	}
	if lines != 10 {
		t.Errorf("limit=10 streamed %d lines", lines)
	}

	for _, bad := range []string{"?format=xml", "?layout=3d", "?ranks=0", "?limit=-2"} {
		resp, err := http.Get(fmt.Sprintf("%s/gen/%s/%s/edges%s", ts.URL, ha, hb, bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// newLineCounter counts newlines flowing through a reader.
func newLineCounter(r io.Reader, n *int) io.Reader {
	return &lineCounter{r: r, n: n}
}

type lineCounter struct {
	r io.Reader
	n *int
}

func (lc *lineCounter) Read(p []byte) (int, error) {
	n, err := lc.r.Read(p)
	*lc.n += bytes.Count(p[:n], []byte("\n"))
	return n, err
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := gen.PrefAttach(9, 2, 8)
	ha := registerText(t, ts, a, "")
	getJSON(t, fmt.Sprintf("%s/gt/%s/%s/triangles", ts.URL, ha, ha), http.StatusOK)
	getJSON(t, ts.URL+"/healthz", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`kronserve_requests_total{route="factors"} 1`,
		`kronserve_requests_total{route="gt"} 1`,
		"kronserve_summary_builds_total 1", // A ⊗ A: one factor, one build
		"kronserve_factors_registered 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// flushRecorder is a ResponseWriter that implements http.Flusher and
// records when flushes happen relative to the bytes written — the probe
// for incremental stream delivery.
type flushRecorder struct {
	header            http.Header
	status            int
	body              bytes.Buffer
	flushes           int
	bytesAtFirstFlush int
}

func (f *flushRecorder) Header() http.Header {
	if f.header == nil {
		f.header = make(http.Header)
	}
	return f.header
}

func (f *flushRecorder) Write(p []byte) (int, error) { return f.body.Write(p) }

func (f *flushRecorder) WriteHeader(code int) { f.status = code }

func (f *flushRecorder) Flush() {
	f.flushes++
	if f.flushes == 1 {
		f.bytesAtFirstFlush = f.body.Len()
	}
}

// TestGenerateFlushesIncrementally is the streaming regression: the
// instrumentation wrapper used to hide http.Flusher from handleGenerate,
// and the handler only flushed once at end of stream, so a long product
// buffered server-side in its entirety. The response must reach the
// client in increments while generation is still running.
func TestGenerateFlushesIncrementally(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	a := gen.ER(20, 0.5, 31)
	b := gen.ER(20, 0.5, 32)
	ha := registerText(t, ts, a, "")
	hb := registerText(t, ts, b, "")
	wantArcs := a.NumArcs() * b.NumArcs() // ~40k edges, dozens of batches

	// Drive the full handler chain (instrument → admitted → generate) so
	// the Flush passthrough on the wrapping ResponseWriter is exercised.
	rec := &flushRecorder{}
	req := httptest.NewRequest("GET", fmt.Sprintf("/gen/%s/%s/edges", ha, hb), nil)
	s.ServeHTTP(rec, req)

	if rec.status != 0 && rec.status != http.StatusOK {
		t.Fatalf("status %d: %s", rec.status, rec.body.Bytes())
	}
	lines := bytes.Count(rec.body.Bytes(), []byte("\n"))
	if int64(lines) != wantArcs {
		t.Fatalf("streamed %d edges, want %d", lines, wantArcs)
	}
	if rec.flushes < 2 {
		t.Fatalf("stream flushed %d times; want ≥ 2 (incremental delivery)", rec.flushes)
	}
	if rec.bytesAtFirstFlush == 0 {
		t.Fatal("first flush carried no bytes: stream is not reaching the client incrementally")
	}
	if rec.bytesAtFirstFlush >= rec.body.Len() {
		t.Fatalf("first flush only happened at end of stream (%d of %d bytes)",
			rec.bytesAtFirstFlush, rec.body.Len())
	}
}

// TestGenerateCompletionTrailer: a finished stream must carry the
// declared trailers — complete=true and the exact arc count — and a
// client-requested limit= truncation still counts as complete.
func TestGenerateCompletionTrailer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := gen.ER(12, 0.4, 91)
	b := gen.ER(11, 0.4, 92)
	ha := registerText(t, ts, a, "")
	hb := registerText(t, ts, b, "")
	total := a.NumArcs() * b.NumArcs()

	for _, tc := range []struct {
		query     string
		wantArcs  int64
		wantLines int64
	}{
		{"", total, total},
		{"?limit=5", 5, 5},
	} {
		resp, err := http.Get(ts.URL + "/gen/" + ha + "/" + hb + "/edges" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		// The client surfaces declared trailer names as placeholder keys
		// in resp.Trailer before the body is read.
		if _, declared := resp.Trailer["X-Kronlab-Complete"]; !declared {
			t.Fatalf("trailer not declared up front: %v", resp.Trailer)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if lines := int64(strings.Count(string(body), "\n")); lines != tc.wantLines {
			t.Fatalf("%q: streamed %d lines, want %d", tc.query, lines, tc.wantLines)
		}
		if got := resp.Trailer.Get("X-Kronlab-Complete"); got != "true" {
			t.Fatalf("%q: X-Kronlab-Complete = %q, want true", tc.query, got)
		}
		if got := resp.Trailer.Get("X-Kronlab-Arcs-Written"); got != fmt.Sprint(tc.wantArcs) {
			t.Fatalf("%q: X-Kronlab-Arcs-Written = %q, want %d", tc.query, got, tc.wantArcs)
		}
	}
}

// TestRetryAfterComputed: a 429 must carry a Retry-After derived from the
// observed heavy-request duration and the queue depth, not the old
// hardcoded "1".
func TestRetryAfterComputed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1})
	// Seed the estimator with a known duration: first observation sets
	// the EWMA exactly.
	s.metrics.ObserveHeavy(3 * time.Second)

	// Occupy the single slot, then queue one waiter so the next request
	// is rejected with the queue at depth 1.
	if err := s.lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.lim.Acquire(context.Background()); err == nil {
			s.lim.Release()
		}
	}()
	for i := 0; s.lim.Waiting() != 1; i++ {
		if i > 1000 {
			t.Fatal("queued waiter never showed up")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/gt/nosuch/nosuch/degree")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	// est 3s × (1 waiting + 1) / 1 slot = 6s.
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Fatalf("Retry-After = %q, want 6 (3s EWMA × queue depth 2)", got)
	}

	s.lim.Release()
	wg.Wait()
}

// TestDrainModeRefusesHeavy: after BeginShutdown heavy endpoints answer
// 503 with a Retry-After while health stays up and reports draining.
func TestDrainModeRefusesHeavy(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if h := getJSON(t, ts.URL+"/healthz", http.StatusOK); h["status"] != "ok" {
		t.Fatalf("pre-drain health = %v", h["status"])
	}
	s.BeginShutdown()
	s.BeginShutdown() // idempotent

	resp, err := http.Get(ts.URL + "/gt/nosuch/nosuch/degree")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /gt status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection missing Retry-After")
	}
	if h := getJSON(t, ts.URL+"/healthz", http.StatusOK); h["status"] != "draining" {
		t.Fatalf("draining health = %v, want draining", h["status"])
	}
}

// TestShutdownCancelsGenStream: BeginShutdown must cancel an in-flight
// generation stream — the handler finishes with complete=false in the
// trailer instead of holding the connection (and http.Server.Shutdown)
// open until the product is exhausted.
func TestShutdownCancelsGenStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Large enough that the stream must block on client backpressure
	// (~1M product edges ≈ 19 MB of NDJSON) long before it completes.
	a := gen.ER(60, 0.3, 93)
	b := gen.ER(60, 0.3, 94)
	ha := registerText(t, ts, a, "")
	hb := registerText(t, ts, b, "")
	total := a.NumArcs() * b.NumArcs()

	resp, err := http.Get(ts.URL + "/gen/" + ha + "/" + hb + "/edges")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadFull(resp.Body, make([]byte, 1024)); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	s.BeginShutdown()
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("draining cancelled stream: %v", err)
	}
	if got := resp.Trailer.Get("X-Kronlab-Complete"); got != "false" {
		t.Fatalf("X-Kronlab-Complete = %q after shutdown, want false", got)
	}
	written, err := strconv.ParseInt(resp.Trailer.Get("X-Kronlab-Arcs-Written"), 10, 64)
	if err != nil {
		t.Fatalf("bad X-Kronlab-Arcs-Written trailer: %v", err)
	}
	if written >= total {
		t.Fatalf("shutdown did not cut the stream: %d of %d arcs written", written, total)
	}
	if int64(len(rest)) > total*20 {
		t.Fatalf("stream kept flowing after shutdown: read %d bytes", len(rest))
	}
}
