package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

// TestChainGroundTruthLaws checks the /gt/{chain}/{property} routes
// against a materialized three-factor product: every served value must
// equal the measured one.
func TestChainGroundTruthLaws(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := gen.PrefAttach(6, 2, 11)
	b := gen.PrefAttach(5, 2, 12)
	c := gen.PrefAttach(4, 2, 13)
	chain := strings.Join([]string{
		registerText(t, ts, a, ""),
		registerText(t, ts, b, ""),
		registerText(t, ts, c, ""),
	}, ",")

	ch, err := core.NewChain(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := ch.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	sum := getJSON(t, ts.URL+"/gt/"+chain+"/summary", http.StatusOK)
	if sum["n"] != float64(mat.NumVertices()) || sum["arcs"] != float64(mat.NumArcs()) || sum["edges"] != float64(mat.NumEdges()) {
		t.Errorf("summary %v vs n=%d arcs=%d edges=%d", sum, mat.NumVertices(), mat.NumArcs(), mat.NumEdges())
	}
	if sum["k"] != float64(3) {
		t.Errorf("summary k = %v, want 3", sum["k"])
	}

	exact := analytics.Triangles(mat)
	tri := getJSON(t, ts.URL+"/gt/"+chain+"/triangles", http.StatusOK)
	if tri["global_triangles"] != float64(exact.Global) {
		t.Errorf("global triangles %v, want %d", tri["global_triangles"], exact.Global)
	}
	for p := int64(0); p < mat.NumVertices(); p += 17 {
		got := getJSON(t, fmt.Sprintf("%s/gt/%s/degree?p=%d", ts.URL, chain, p), http.StatusOK)
		if got["degree"] != float64(mat.Degree(p)) {
			t.Errorf("degree(%d) = %v, want %d", p, got["degree"], mat.Degree(p))
		}
		gotTri := getJSON(t, fmt.Sprintf("%s/gt/%s/triangles?p=%d", ts.URL, chain, p), http.StatusOK)
		if gotTri["vertex_triangles"] != float64(exact.Vertex[p]) {
			t.Errorf("triangles(%d) = %v, want %d", p, gotTri["vertex_triangles"], exact.Vertex[p])
		}
	}

	// Distance laws run on the ⊗(A_d+I) product under loops=1.
	chLoops, err := core.NewChain(a.WithFullSelfLoops(), b.WithFullSelfLoops(), c.WithFullSelfLoops())
	if err != nil {
		t.Fatal(err)
	}
	matL, err := chLoops.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	diam := getJSON(t, ts.URL+"/gt/"+chain+"/diameter?loops=1", http.StatusOK)
	if diam["diameter"] != float64(analytics.Diameter(matL)) {
		t.Errorf("diameter %v, want %d", diam["diameter"], analytics.Diameter(matL))
	}
	eccs := analytics.Eccentricities(matL)
	ecc := getJSON(t, ts.URL+"/gt/"+chain+"/eccentricity?loops=1&p=7", http.StatusOK)
	if ecc["eccentricity"] != float64(eccs[7]) {
		t.Errorf("ε(7) = %v, want %d", ecc["eccentricity"], eccs[7])
	}
	rows := analytics.AllPairsHops(matL)
	hops := getJSON(t, ts.URL+"/gt/"+chain+"/hops?loops=1&p=3&q=55", http.StatusOK)
	if hops["hops"] != float64(rows[3][55]) {
		t.Errorf("hops(3,55) = %v, want %d", hops["hops"], rows[3][55])
	}
	hist := getJSON(t, ts.URL+"/gt/"+chain+"/eccentricity?loops=1&hist=1", http.StatusOK)
	want := map[string]float64{}
	for _, e := range eccs {
		want[fmt.Sprint(e)]++
	}
	gotHist := hist["histogram"].(map[string]any)
	if len(gotHist) != len(want) {
		t.Fatalf("histogram %v, want %v", gotHist, want)
	}
	for k, v := range want {
		if gotHist[k] != v {
			t.Errorf("hist[%s] = %v, want %v", k, gotHist[k], v)
		}
	}
}

// TestChainPowerQuery: a single-key chain with power=k serves A^{⊗k},
// and malformed or overflowing powers are refused with explicit errors.
func TestChainPowerQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := gen.PrefAttach(5, 2, 21)
	ha := registerText(t, ts, a, "alpha")
	fa := groundtruth.NewFactor(a)

	// Chain keys resolve like factor keys: by name too.
	sum := getJSON(t, ts.URL+"/gt/alpha/summary?power=3", http.StatusOK)
	wantN, err := groundtruth.PowerNumVertices(fa, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := groundtruth.PowerNumEdges(fa, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum["n"] != float64(wantN) || sum["edges"] != float64(wantM) {
		t.Errorf("power summary %v, want n=%d edges=%d", sum, wantN, wantM)
	}

	for _, bad := range []string{
		"/gt/" + ha + "/summary?power=0",
		"/gt/" + ha + "/summary?power=65",
		"/gt/" + ha + "/summary?power=abc",
		"/gt/" + ha + "," + ha + "/summary?power=2", // power needs a single key
		"/gt/" + ha + ",/summary",                   // empty key in chain
	} {
		getJSON(t, ts.URL+bad, http.StatusBadRequest)
	}
	getJSON(t, ts.URL+"/gt/"+ha+",nosuchfactor/summary", http.StatusNotFound)
	getJSON(t, ts.URL+"/gt/"+ha+"/frobnicate", http.StatusNotFound)

	// Counting overflow surfaces as a 400 with an explicit error, not a
	// wrapped number: 5^40 vertices is far past int64.
	resp := getJSON(t, ts.URL+"/gt/"+ha+"/summary?power=40", http.StatusBadRequest)
	if !strings.Contains(resp["error"].(string), "overflow") {
		t.Errorf("overflow error = %v", resp["error"])
	}
	// Vertex-addressed properties on an overflowing chain refuse too.
	getJSON(t, ts.URL+"/gt/"+ha+"/degree?power=40&p=0", http.StatusBadRequest)
}

// TestChainGenerateMatchesSerial: the /gen/{chain}/edges stream must be
// exactly the arc set of the materialized chain product.
func TestChainGenerateMatchesSerial(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := gen.PrefAttach(6, 2, 31)
	b := gen.PrefAttach(4, 2, 32)
	c := gen.PrefAttach(4, 2, 33)
	chain := strings.Join([]string{
		registerText(t, ts, a, ""),
		registerText(t, ts, b, ""),
		registerText(t, ts, c, ""),
	}, ",")

	ch, err := core.NewChain(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := ch.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/gen/" + chain + "/edges?layout=2d")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Kronlab-Product-N"); got != fmt.Sprint(mat.NumVertices()) {
		t.Errorf("N header %q, want %d", got, mat.NumVertices())
	}
	if got := resp.Header.Get("X-Kronlab-Product-Arcs"); got != fmt.Sprint(mat.NumArcs()) {
		t.Errorf("arcs header %q, want %d", got, mat.NumArcs())
	}

	got := map[graph.Edge]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e struct{ U, V int64 }
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		got[graph.Edge{U: e.U, V: e.V}]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if resp.Trailer.Get("X-Kronlab-Complete") != "true" {
		t.Fatalf("stream incomplete: %v", resp.Trailer)
	}

	var total int64
	for u := int64(0); u < mat.NumVertices(); u++ {
		for _, v := range mat.Neighbors(u) {
			if got[graph.Edge{U: u, V: v}] != 1 {
				t.Fatalf("arc (%d,%d) streamed %d times", u, v, got[graph.Edge{U: u, V: v}])
			}
			total++
		}
	}
	if int64(len(got)) != total {
		t.Fatalf("stream carried %d distinct arcs, product has %d", len(got), total)
	}

	// power=k goes through the same path; 9^40 arcs is an explicit refusal.
	resp2, err := http.Get(ts.URL + "/gen/" + chain[:strings.Index(chain, ",")] + "/edges?power=40")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("overflowing generation: status %d, want 400", resp2.StatusCode)
	}
}
