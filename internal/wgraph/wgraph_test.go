package wgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kronlab/internal/core"
	"kronlab/internal/gen"
)

func approx(x, y float64) bool { return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)) }

func randWeighted(rng *rand.Rand, maxN int64, loops bool) *Graph {
	n := 2 + rng.Int63n(maxN-1)
	m := 1 + rng.Int63n(3*n)
	edges := make([]WEdge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if !loops && u == v {
			continue
		}
		edges = append(edges, WEdge{u, v, 0.25 + rng.Float64()})
	}
	g, err := NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewMergesParallelArcs(t *testing.T) {
	g, err := New(3, []WEdge{{0, 1, 2}, {0, 1, 3}, {0, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2", g.NumArcs())
	}
	if g.Weight(0, 1) != 5 {
		t.Errorf("merged weight = %v, want 5", g.Weight(0, 1))
	}
	if g.Weight(1, 0) != 0 {
		t.Error("absent arc weight should be 0")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Error("negative n should error")
	}
	if _, err := New(2, []WEdge{{0, 2, 1}}); err == nil {
		t.Error("out-of-range arc should error")
	}
}

func TestOffsetsWithIsolatedVertices(t *testing.T) {
	g, err := New(5, []WEdge{{0, 1, 1}, {3, 4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var arcs int
	g.Arcs(func(u, v int64, w float64) bool {
		arcs++
		return true
	})
	if arcs != 2 {
		t.Errorf("iterated %d arcs, want 2", arcs)
	}
	if g.Weight(3, 4) != 2 {
		t.Error("gap fill broke row lookup")
	}
}

func TestUndirectedSymmetryAndStrength(t *testing.T) {
	g, err := NewUndirected(3, []WEdge{{0, 1, 2.5}, {1, 2, 1.5}, {2, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != g.Weight(1, 0) {
		t.Error("symmetrization lost weight")
	}
	s := g.Strengths()
	if !approx(s[1], 4) { // 2.5 + 1.5
		t.Errorf("s(1) = %v, want 4", s[1])
	}
	if !approx(s[2], 5.5) { // 1.5 + loop 4
		t.Errorf("s(2) = %v, want 5.5", s[2])
	}
}

func TestPatternAndLift(t *testing.T) {
	base := gen.ER(12, 0.4, 1)
	lifted, err := FromUnweighted(base)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lifted.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(base) {
		t.Fatal("lift/pattern round trip lost structure")
	}
	for _, s := range lifted.Strengths() {
		if s != math.Trunc(s) {
			t.Fatal("unit lift should have integer strengths")
		}
	}
}

// The weighted product law against brute-force dense multiplication.
func TestProductWeightsMatchDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		a := randWeighted(rng, 6, true)
		b := randWeighted(rng, 6, true)
		c, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ix := core.NewIndex(b.NumVertices())
		bad := false
		c.Arcs(func(p, q int64, w float64) bool {
			i, k := ix.Split(p)
			j, l := ix.Split(q)
			if !approx(w, a.Weight(i, j)*b.Weight(k, l)) {
				bad = true
				return false
			}
			return true
		})
		if bad {
			t.Fatalf("trial %d: product weight law fails", trial)
		}
		if c.NumArcs() != a.NumArcs()*b.NumArcs() {
			t.Fatalf("trial %d: arc count %d, want %d", trial, c.NumArcs(), a.NumArcs()*b.NumArcs())
		}
	}
}

// Strength law s_C = s_A ⊗ s_B.
func TestStrengthLaw(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		a := randWeighted(rngA, 7, true)
		b := randWeighted(rngB, 7, true)
		c, err := Product(a, b)
		if err != nil {
			return false
		}
		want := StrengthsKron(a, b)
		got := c.Strengths()
		for i := range want {
			if !approx(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Triangle intensity law for loop-free factors.
func TestTriangleIntensityLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		a := randWeighted(rng, 7, false)
		b := randWeighted(rng, 7, false)
		c, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := TriangleIntensityKron(a, b)
		got := c.TriangleIntensity()
		for i := range want {
			if !approx(got[i], want[i]) {
				t.Fatalf("trial %d: intensity law fails at %d: %v != %v",
					trial, i, got[i], want[i])
			}
		}
	}
}

// Unit-weight intensity equals 2·t_v from the unweighted oracle.
func TestIntensityReducesToTriangleCounts(t *testing.T) {
	base := gen.Clique(5)
	w, err := FromUnweighted(base)
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range w.TriangleIntensity() {
		// K5: t_v = C(4,2) = 6 → intensity 12.
		if !approx(in, 12) {
			t.Errorf("intensity(%d) = %v, want 12", v, in)
		}
	}
}
