// Package wgraph extends the Kronecker machinery to weighted graphs. The
// paper's Def. 1 is stated over ℝ, so the product of weighted adjacency
// matrices is already defined: C = A ⊗ B carries edge weights
//
//	w_C(γ(i,k), γ(j,l)) = w_A(i,j) · w_B(k,l),
//
// and the multiplicative ground-truth laws survive verbatim wherever the
// unweighted argument used only matrix algebra: vertex strengths (weighted
// degrees, s = W·1) satisfy s_C = s_A ⊗ s_B, and weighted closed-walk
// quantities such as the triangle intensity diag((W−D)³) multiply.
package wgraph

import (
	"fmt"
	"sort"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// WEdge is a weighted arc.
type WEdge struct {
	U, V int64
	W    float64
}

// Graph is an immutable weighted CSR structure; parallel input arcs are
// merged by summing weights. Zero-weight arcs are kept (they are
// structural entries).
type Graph struct {
	n       int64
	offsets []int64
	adj     []int64
	w       []float64
}

// New builds a weighted graph from arcs as given (no symmetrization).
func New(n int64, arcs []WEdge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("wgraph: negative vertex count %d", n)
	}
	for _, a := range arcs {
		if a.U < 0 || a.U >= n || a.V < 0 || a.V >= n {
			return nil, fmt.Errorf("wgraph: arc (%d,%d) out of range [0,%d)", a.U, a.V, n)
		}
	}
	sorted := append([]WEdge(nil), arcs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	g := &Graph{n: n, offsets: make([]int64, n+1)}
	for idx := 0; idx < len(sorted); {
		u, v := sorted[idx].U, sorted[idx].V
		w := 0.0
		for idx < len(sorted) && sorted[idx].U == u && sorted[idx].V == v {
			w += sorted[idx].W
			idx++
		}
		g.adj = append(g.adj, v)
		g.w = append(g.w, w)
		g.offsets[u+1] = int64(len(g.adj))
	}
	// Fill gaps for vertices with no arcs.
	for v := int64(1); v <= n; v++ {
		if g.offsets[v] < g.offsets[v-1] {
			g.offsets[v] = g.offsets[v-1]
		}
	}
	return g, nil
}

// NewUndirected symmetrizes off-diagonal edges.
func NewUndirected(n int64, edges []WEdge) (*Graph, error) {
	arcs := make([]WEdge, 0, 2*len(edges))
	for _, e := range edges {
		arcs = append(arcs, e)
		if e.U != e.V {
			arcs = append(arcs, WEdge{e.V, e.U, e.W})
		}
	}
	return New(n, arcs)
}

// NumVertices returns n.
func (g *Graph) NumVertices() int64 { return g.n }

// NumArcs returns the stored arc count.
func (g *Graph) NumArcs() int64 { return int64(len(g.adj)) }

// Arcs iterates all weighted arcs in CSR order.
func (g *Graph) Arcs(f func(u, v int64, w float64) bool) {
	for u := int64(0); u < g.n; u++ {
		for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
			if !f(u, g.adj[i], g.w[i]) {
				return
			}
		}
	}
}

// Weight returns w(u,v), or 0 if the arc is absent.
func (g *Graph) Weight(u, v int64) float64 {
	lo, hi := g.offsets[u], g.offsets[u+1]
	row := g.adj[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return g.w[lo+int64(i)]
	}
	return 0
}

// Strengths returns the vertex strength vector s = W·1 (weighted
// degrees, self loops counted once).
func (g *Graph) Strengths() []float64 {
	s := make([]float64, g.n)
	g.Arcs(func(u, _ int64, w float64) bool {
		s[u] += w
		return true
	})
	return s
}

// Pattern returns the unweighted structure as a graph.Graph.
func (g *Graph) Pattern() (*graph.Graph, error) {
	arcs := make([]graph.Edge, 0, len(g.adj))
	g.Arcs(func(u, v int64, _ float64) bool {
		arcs = append(arcs, graph.Edge{U: u, V: v})
		return true
	})
	return graph.New(g.n, arcs)
}

// FromUnweighted lifts a graph.Graph with unit weights.
func FromUnweighted(g *graph.Graph) (*Graph, error) {
	arcs := make([]WEdge, 0, g.NumArcs())
	g.Arcs(func(u, v int64) bool {
		arcs = append(arcs, WEdge{u, v, 1})
		return true
	})
	return New(g.NumVertices(), arcs)
}

// Product materializes the weighted Kronecker product C = A ⊗ B.
func Product(a, b *Graph) (*Graph, error) {
	nC := a.n * b.n
	ix := core.NewIndex(b.n)
	arcs := make([]WEdge, 0, a.NumArcs()*b.NumArcs())
	a.Arcs(func(i, j int64, wa float64) bool {
		b.Arcs(func(k, l int64, wb float64) bool {
			arcs = append(arcs, WEdge{ix.Gamma(i, k), ix.Gamma(j, l), wa * wb})
			return true
		})
		return true
	})
	return New(nC, arcs)
}

// StrengthsKron returns the ground-truth strength vector of A ⊗ B:
// s_C = s_A ⊗ s_B, since (A⊗B)·(1⊗1) = (A·1) ⊗ (B·1).
func StrengthsKron(a, b *Graph) []float64 {
	sa, sb := a.Strengths(), b.Strengths()
	out := make([]float64, a.n*b.n)
	ix := core.NewIndex(b.n)
	for i, x := range sa {
		for k, y := range sb {
			out[ix.Gamma(int64(i), int64(k))] = x * y
		}
	}
	return out
}

// TriangleIntensity returns diag((W − D)³): the weighted closed-triangle
// intensity at each vertex — the weighted analogue of 2·t_v, summing the
// weight products of all closed 3-walks through v that avoid loops.
func (g *Graph) TriangleIntensity() []float64 {
	out := make([]float64, g.n)
	for i := int64(0); i < g.n; i++ {
		for xi := g.offsets[i]; xi < g.offsets[i+1]; xi++ {
			j := g.adj[xi]
			if j == i {
				continue
			}
			wij := g.w[xi]
			for xj := g.offsets[j]; xj < g.offsets[j+1]; xj++ {
				k := g.adj[xj]
				if k == j || k == i {
					continue
				}
				if wki := g.Weight(k, i); wki != 0 {
					out[i] += wij * g.w[xj] * wki
				}
			}
		}
	}
	return out
}

// TriangleIntensityKron returns the ground-truth intensity vector of
// A ⊗ B for loop-free factors: diag(C³) = diag(A³) ⊗ diag(B³).
func TriangleIntensityKron(a, b *Graph) []float64 {
	ia, ib := a.TriangleIntensity(), b.TriangleIntensity()
	out := make([]float64, a.n*b.n)
	ix := core.NewIndex(b.n)
	for i, x := range ia {
		for k, y := range ib {
			out[ix.Gamma(int64(i), int64(k))] = x * y
		}
	}
	return out
}
