package wgraph

import (
	"testing"

	"kronlab/internal/gen"
)

func BenchmarkWeightedProduct(b *testing.B) {
	ga := gen.MustRMAT(gen.Graph500Params(5, 1))
	gb := gen.MustRMAT(gen.Graph500Params(5, 2))
	a, err := FromUnweighted(ga)
	if err != nil {
		b.Fatal(err)
	}
	bb, err := FromUnweighted(gb)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Product(a, bb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangleIntensity(b *testing.B) {
	g, err := FromUnweighted(gen.PrefAttach(500, 3, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.TriangleIntensity()
	}
}
