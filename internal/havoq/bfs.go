package havoq

import "kronlab/internal/analytics"

// BFS runs an asynchronous distributed breadth-first search from src and
// returns the full distance vector (gathered), with
// analytics.Unreachable for other components. Asynchronous label
// correction: a vertex re-propagates whenever its distance improves, the
// standard visitor formulation in HavoqGT.
func (dg *DistGraph) BFS(src int64) []int64 {
	// Per-rank distance shards, touched only by the owning rank's visits.
	dist := make([][]int64, dg.R)
	for r := range dist {
		dist[r] = make([]int64, len(dg.rows[r]))
		for i := range dist[r] {
			dist[r][i] = analytics.Unreachable
		}
	}
	e := NewEngine(dg)
	e.Run([]Msg{{Target: src, A: 0}}, func(rank int, m Msg, send func(Msg)) {
		li := dg.localIndex(m.Target)
		d := dist[rank][li]
		if d != analytics.Unreachable && d <= m.A {
			return
		}
		dist[rank][li] = m.A
		for _, w := range dg.rows[rank][li] {
			send(Msg{Target: w, A: m.A + 1})
		}
	})
	out := make([]int64, dg.N)
	for v := int64(0); v < dg.N; v++ {
		out[v] = dist[dg.Owner(v)][dg.localIndex(v)]
	}
	return out
}

// Hops runs a distributed BFS and applies the paper's diagonal convention
// (Def. 9): hops(src,src) = 1 with a self loop, 2 with any neighbor,
// unreachable for an isolated vertex. Matches analytics.Hops exactly.
func (dg *DistGraph) Hops(src int64) []int64 {
	h := dg.BFS(src)
	switch {
	case dg.HasSelfLoop(src):
		h[src] = 1
	case dg.Degree(src) > 0:
		h[src] = 2
	default:
		h[src] = analytics.Unreachable
	}
	return h
}

// Eccentricity returns ε(src) computed by one distributed BFS, or
// Unreachable if the graph is disconnected from src.
func (dg *DistGraph) Eccentricity(src int64) int64 {
	h := dg.Hops(src)
	var ecc int64
	for _, d := range h {
		if d == analytics.Unreachable {
			return analytics.Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
