package havoq

import (
	"sync"
	"sync/atomic"
)

// Msg is a visitor message addressed to a vertex; Kind and the payload
// fields are interpreted by the algorithm's visit function.
type Msg struct {
	Target  int64
	Kind    uint8
	A, B, C int64
}

// mailbox is an unbounded MPSC queue with blocking pop, so the
// asynchronous engine can never deadlock on full channels regardless of
// message fan-out.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Msg
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg Msg) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.mu.Unlock()
	m.cond.Signal()
}

// popAll blocks until at least one message is available (returning the
// whole queued batch, which amortizes lock traffic) or the mailbox is
// closed and drained; ok is false in the latter case.
func (m *mailbox) popAll() ([]Msg, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.q) == 0 {
		return nil, false
	}
	batch := m.q
	m.q = nil
	return batch, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Engine runs asynchronous visitor traversals over a DistGraph. Each rank
// is a goroutine draining its mailbox; global termination is detected by
// an in-flight message counter that sends increment before the producing
// message's decrement, so the counter reaches zero exactly at quiescence
// (the visitor-queue termination scheme of asynchronous graph frameworks
// like HavoqGT).
type Engine struct {
	DG       *DistGraph
	boxes    []*mailbox
	inFlight int64
	visited  int64 // messages processed, for instrumentation
}

// NewEngine returns an engine over dg.
func NewEngine(dg *DistGraph) *Engine {
	e := &Engine{DG: dg, boxes: make([]*mailbox, dg.R)}
	for i := range e.boxes {
		e.boxes[i] = newMailbox()
	}
	return e
}

// send routes a message to the owner of its target, counting it in
// flight. Must only be called from inside a visit or with a prior
// external increment (Run handles the seeds).
func (e *Engine) send(m Msg) {
	atomic.AddInt64(&e.inFlight, 1)
	e.boxes[e.DG.Owner(m.Target)].push(m)
}

// Run seeds the traversal with the given messages and processes until
// quiescence. visit is called on the owning rank for every delivered
// message; it may emit further messages through its send argument.
// visit runs concurrently across ranks but serially within a rank, so
// per-rank (owned-vertex) state needs no locking.
func (e *Engine) Run(seeds []Msg, visit func(rank int, m Msg, send func(Msg))) {
	atomic.StoreInt64(&e.visited, 0)
	if len(seeds) == 0 {
		return
	}
	for i := range e.boxes {
		e.boxes[i] = newMailbox()
	}
	atomic.AddInt64(&e.inFlight, int64(len(seeds)))
	for _, m := range seeds {
		e.boxes[e.DG.Owner(m.Target)].push(m)
	}
	var wg sync.WaitGroup
	for rank := 0; rank < e.DG.R; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			box := e.boxes[rank]
			for {
				batch, ok := box.popAll()
				if !ok {
					return
				}
				for _, m := range batch {
					visit(rank, m, e.send)
				}
				atomic.AddInt64(&e.visited, int64(len(batch)))
				// Decrement after all child sends: the counter hits zero
				// only at true quiescence, at which point the finisher
				// closes every mailbox.
				if atomic.AddInt64(&e.inFlight, -int64(len(batch))) == 0 {
					for _, b := range e.boxes {
						b.close()
					}
				}
			}
		}(rank)
	}
	wg.Wait()
}

// Visited returns the number of messages processed by the last Run.
func (e *Engine) Visited() int64 { return atomic.LoadInt64(&e.visited) }
