package havoq

import (
	"fmt"

	"kronlab/internal/analytics"
)

// EccResult is the output of ExactEccentricities: per-vertex eccentricity
// plus the number of BFS sweeps used, reported so pruning effectiveness
// can be compared to the n-sweep brute force.
type EccResult struct {
	Ecc    []int64
	Sweeps int
}

// ExactEccentricities computes the exact eccentricity of every vertex
// with the distributed bound-pruning algorithm of the paper's ref [3]
// (Iwabuchi, Sanders, Henderson, Pearce, CLUSTER'18): repeated BFS sweeps
// from strategically chosen sources maintain per-vertex bounds
//
//	lower(v) = max(lower(v), dist(s,v), ecc(s) − dist(s,v))
//	upper(v) = min(upper(v), ecc(s) + dist(s,v))
//
// and a vertex is resolved when the bounds meet. Sources alternate
// between the unresolved vertex of maximum upper bound (resolves the
// periphery) and minimum lower bound (resolves the center), seeded by the
// maximum-degree vertex.
//
// Eccentricity here is over BFS distances; for connected graphs with full
// self loops and n ≥ 2 this equals the paper's hop-count eccentricity
// (Def. 11), which is the regime of Cor. 4. Disconnected graphs return an
// error.
func (dg *DistGraph) ExactEccentricities() (*EccResult, error) {
	n := dg.N
	if n == 0 {
		return &EccResult{}, nil
	}
	lower := make([]int64, n)
	upper := make([]int64, n)
	const inf = int64(1) << 62
	for v := range upper {
		upper[v] = inf
	}
	resolved := make([]bool, n)
	var nResolved int64
	ecc := make([]int64, n)

	// Seed: max-degree vertex.
	pick := int64(0)
	for v := int64(1); v < n; v++ {
		if dg.Degree(v) > dg.Degree(pick) {
			pick = v
		}
	}
	sweeps := 0
	wantMaxUpper := true
	for nResolved < n {
		s := pick
		h := dg.BFS(s)
		sweeps++
		var eccS int64
		for _, d := range h {
			if d == analytics.Unreachable {
				return nil, fmt.Errorf("havoq: ExactEccentricities requires a connected graph")
			}
			if d > eccS {
				eccS = d
			}
		}
		for v := int64(0); v < n; v++ {
			if resolved[v] {
				continue
			}
			d := h[v]
			if d > lower[v] {
				lower[v] = d
			}
			if e := eccS - d; e > lower[v] {
				lower[v] = e
			}
			if e := eccS + d; e < upper[v] {
				upper[v] = e
			}
			if lower[v] >= upper[v] || v == s {
				ecc[v] = lower[v]
				if v == s {
					ecc[v] = eccS
				}
				resolved[v] = true
				nResolved++
			}
		}
		if nResolved >= n {
			break
		}
		// Choose the next source among unresolved vertices.
		pick = -1
		for v := int64(0); v < n; v++ {
			if resolved[v] {
				continue
			}
			if pick == -1 {
				pick = v
				continue
			}
			if wantMaxUpper {
				if upper[v] > upper[pick] || (upper[v] == upper[pick] && dg.Degree(v) > dg.Degree(pick)) {
					pick = v
				}
			} else {
				if lower[v] < lower[pick] || (lower[v] == lower[pick] && dg.Degree(v) > dg.Degree(pick)) {
					pick = v
				}
			}
		}
		wantMaxUpper = !wantMaxUpper
	}
	return &EccResult{Ecc: ecc, Sweeps: sweeps}, nil
}

// Diameter returns max_v ε(v) from an ExactEccentricities run.
func (r *EccResult) Diameter() int64 {
	var d int64
	for _, e := range r.Ecc {
		if e > d {
			d = e
		}
	}
	return d
}
