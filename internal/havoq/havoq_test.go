package havoq

import (
	"reflect"
	"testing"
	"testing/quick"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

func mustBuild(t *testing.T, g *graph.Graph, r int) *DistGraph {
	t.Helper()
	dg, err := Build(g, r)
	if err != nil {
		t.Fatal(err)
	}
	return dg
}

func TestBuildValidation(t *testing.T) {
	g := gen.ER(5, 0.5, 1)
	if _, err := Build(g, 0); err == nil {
		t.Error("0 ranks should error")
	}
}

func TestStoreAccessors(t *testing.T) {
	g := gen.Ring(10).WithFullSelfLoops()
	for _, r := range []int{1, 3, 4, 10, 13} {
		dg := mustBuild(t, g, r)
		for v := int64(0); v < 10; v++ {
			if dg.Degree(v) != g.Degree(v) {
				t.Fatalf("R=%d: degree(%d) = %d, want %d", r, v, dg.Degree(v), g.Degree(v))
			}
			if !reflect.DeepEqual(dg.Neighbors(v), g.Neighbors(v)) {
				t.Fatalf("R=%d: neighbors(%d) differ", r, v)
			}
			if dg.HasSelfLoop(v) != g.HasSelfLoop(v) {
				t.Fatalf("R=%d: loop flag differs at %d", r, v)
			}
		}
	}
}

func TestBuildFromParts(t *testing.T) {
	a := gen.ER(6, 0.5, 2)
	b := gen.ER(5, 0.5, 3)
	res, err := dist.Generate1D(a, b, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := BuildFromParts(res.NC, 4, res.PerRank)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < want.NumVertices(); v++ {
		if !reflect.DeepEqual(dg.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("vertex %d adjacency differs", v)
		}
	}
}

func TestDistributedBFSMatchesSerial(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Ring(17),
		gen.PrefAttach(60, 2, 5),
		gen.ER(40, 0.1, 7), // possibly disconnected
		gen.Star(9).WithFullSelfLoops(),
	}
	for gi, g := range graphs {
		for _, r := range []int{1, 2, 5} {
			dg := mustBuild(t, g, r)
			for src := int64(0); src < g.NumVertices(); src += 7 {
				want := analytics.BFS(g, src)
				got := dg.BFS(src)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("graph %d R=%d src %d: BFS differs", gi, r, src)
				}
			}
		}
	}
}

func TestDistributedHopsMatchesSerial(t *testing.T) {
	g := gen.PrefAttach(40, 2, 9).WithFullSelfLoops()
	dg := mustBuild(t, g, 3)
	for src := int64(0); src < g.NumVertices(); src += 5 {
		if !reflect.DeepEqual(dg.Hops(src), analytics.Hops(g, src)) {
			t.Fatalf("Hops(%d) differs from serial", src)
		}
	}
	// Diagonal conventions on a mixed graph.
	mixed, _ := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}})
	dgm := mustBuild(t, mixed, 2)
	for src := int64(0); src < 3; src++ {
		if !reflect.DeepEqual(dgm.Hops(src), analytics.Hops(mixed, src)) {
			t.Fatalf("diagonal convention differs at %d", src)
		}
	}
}

func TestDistributedEccentricity(t *testing.T) {
	g := gen.Ring(12).WithFullSelfLoops()
	dg := mustBuild(t, g, 4)
	for v := int64(0); v < 12; v++ {
		if got, want := dg.Eccentricity(v), analytics.Eccentricity(g, v); got != want {
			t.Fatalf("ε(%d) = %d, want %d", v, got, want)
		}
	}
	// Disconnected → Unreachable.
	dis, _ := graph.NewUndirected(4, []graph.Edge{{U: 0, V: 1}})
	dgd := mustBuild(t, dis, 2)
	if dgd.Eccentricity(0) != analytics.Unreachable {
		t.Error("disconnected eccentricity should be unreachable")
	}
}

func TestExactEccentricitiesMatchesBruteForce(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Ring(15).WithFullSelfLoops(),
		gen.PrefAttach(50, 2, 11).WithFullSelfLoops(),
		gen.Grid(4, 5).WithFullSelfLoops(),
		gen.Clique(6).WithFullSelfLoops(),
	}
	for gi, g := range graphs {
		dg := mustBuild(t, g, 3)
		res, err := dg.ExactEccentricities()
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		want := analytics.Eccentricities(g)
		if !reflect.DeepEqual(res.Ecc, want) {
			t.Fatalf("graph %d: eccentricities differ\n got %v\nwant %v", gi, res.Ecc, want)
		}
		if res.Sweeps <= 0 || res.Sweeps > int(g.NumVertices()) {
			t.Errorf("graph %d: sweeps = %d out of range", gi, res.Sweeps)
		}
		if res.Diameter() != analytics.Diameter(g) {
			t.Errorf("graph %d: diameter %d, want %d", gi, res.Diameter(), analytics.Diameter(g))
		}
	}
}

func TestExactEccentricitiesPrunes(t *testing.T) {
	// On a structured small-world graph the pruning should use far fewer
	// sweeps than n.
	g := gen.PrefAttach(200, 3, 13).WithFullSelfLoops()
	dg := mustBuild(t, g, 2)
	res, err := dg.ExactEccentricities()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps >= 100 {
		t.Errorf("pruning ineffective: %d sweeps for n=200", res.Sweeps)
	}
}

func TestExactEccentricitiesDisconnected(t *testing.T) {
	dis, _ := graph.NewUndirected(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	dg := mustBuild(t, dis, 2)
	if _, err := dg.ExactEccentricities(); err == nil {
		t.Error("expected error on disconnected graph")
	}
}

func TestDistributedTrianglesMatchExact(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Clique(7),
		gen.PrefAttach(50, 3, 17),
		gen.ER(40, 0.15, 19),
		gen.Ring(10),
		gen.Clique(5).WithFullSelfLoops(), // loops must not count
	}
	for gi, g := range graphs {
		want := analytics.Triangles(g)
		for _, r := range []int{1, 3, 6} {
			dg := mustBuild(t, g, r)
			got := dg.Triangles()
			if got.Global != want.Global {
				t.Fatalf("graph %d R=%d: τ = %d, want %d", gi, r, got.Global, want.Global)
			}
			if !reflect.DeepEqual(got.Vertex, want.Vertex) {
				t.Fatalf("graph %d R=%d: per-vertex triangle counts differ", gi, r)
			}
			if got.Messages <= 0 {
				t.Errorf("graph %d R=%d: no messages recorded", gi, r)
			}
		}
	}
}

// Property: distributed triangle counting agrees with the exact oracle on
// random graphs across random rank counts.
func TestPropertyTriangles(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		r := int(rRaw%6) + 1
		g := gen.ER(20, 0.25, seed)
		dg, err := Build(g, r)
		if err != nil {
			return false
		}
		return dg.Triangles().Global == analytics.GlobalTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEngineEmptySeeds(t *testing.T) {
	dg := mustBuild(t, gen.Ring(5), 2)
	e := NewEngine(dg)
	e.Run(nil, func(rank int, m Msg, send func(Msg)) {
		t.Error("visit called with no seeds")
	})
	if e.Visited() != 0 {
		t.Error("visited should be 0")
	}
}

// The paper's Fig. 1 pipeline at miniature scale: generate C = A ⊗ A
// distributedly, load it into the engine, and check the distributed
// eccentricities against Cor. 4's max law.
func TestEndToEndEccentricityPipeline(t *testing.T) {
	a := gen.PrefAttach(12, 2, 23)
	al := a.WithFullSelfLoops()
	res, err := dist.Generate1D(al, al, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := BuildFromParts(res.NC, 3, res.PerRank)
	if err != nil {
		t.Fatal(err)
	}
	eccRes, err := dg.ExactEccentricities()
	if err != nil {
		t.Fatal(err)
	}
	eccA := analytics.Eccentricities(al)
	ix := core.NewIndex(al.NumVertices())
	for p := int64(0); p < res.NC; p++ {
		i, k := ix.Split(p)
		want := eccA[i]
		if eccA[k] > want {
			want = eccA[k]
		}
		if eccRes.Ecc[p] != want {
			t.Fatalf("ε(%d) = %d, Cor.4 predicts %d", p, eccRes.Ecc[p], want)
		}
	}
}

func TestLabelPropagationDisjointCliques(t *testing.T) {
	// Two disjoint cliques must converge to exactly two labels, each
	// constant within a clique.
	g := gen.DisjointCliques(2, 6)
	for _, r := range []int{1, 3} {
		dg := mustBuild(t, g, r)
		labels := dg.LabelPropagation(20)
		for c := int64(0); c < 2; c++ {
			want := labels[c*6]
			for v := c * 6; v < (c+1)*6; v++ {
				if labels[v] != want {
					t.Fatalf("R=%d: clique %d not label-uniform: %v", r, c, labels[:12])
				}
			}
		}
		if labels[0] == labels[6] {
			t.Fatalf("R=%d: disjoint cliques share a label", r)
		}
	}
}

func TestLabelPropagationRecoversSBMBlocks(t *testing.T) {
	g, parts := gen.SBM(gen.SBMParams{BlockSizes: gen.EqualBlocks(3, 20), PIn: 0.8, POut: 0.01, Seed: 6})
	dg := mustBuild(t, g, 4)
	labels := dg.LabelPropagation(30)
	// Within-block label agreement should dominate: measure purity.
	var agree, total int
	for _, block := range parts {
		counts := map[int64]int{}
		for _, v := range block {
			counts[labels[v]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		agree += best
		total += len(block)
	}
	if purity := float64(agree) / float64(total); purity < 0.9 {
		t.Errorf("block purity %.2f too low for a strong SBM", purity)
	}
}

func TestLabelPropagationIsolatedVertices(t *testing.T) {
	g, _ := graph.New(3, nil)
	dg := mustBuild(t, g, 2)
	labels := dg.LabelPropagation(5)
	for v, l := range labels {
		if l != int64(v) {
			t.Errorf("isolated vertex %d changed label to %d", v, l)
		}
	}
}
