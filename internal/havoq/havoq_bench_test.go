package havoq

import (
	"fmt"
	"testing"

	"kronlab/internal/gen"
)

func BenchmarkDistributedBFS(b *testing.B) {
	g := gen.PrefAttach(20_000, 3, 1)
	for _, r := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			dg, err := Build(g, r)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dg.BFS(int64(i) % g.NumVertices())
			}
		})
	}
}

func BenchmarkDistributedTriangles(b *testing.B) {
	g := gen.PrefAttach(2_000, 3, 2)
	dg, err := Build(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg.Triangles()
	}
}

func BenchmarkExactEccentricities(b *testing.B) {
	g := gen.PrefAttach(600, 3, 3).WithFullSelfLoops()
	dg, err := Build(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dg.ExactEccentricities(); err != nil {
			b.Fatal(err)
		}
	}
}

// Engine message rate: a flood visitor that forwards a fixed hop budget,
// isolating mailbox and termination overhead from algorithmic work.
func BenchmarkEngineMessageRate(b *testing.B) {
	g := gen.Ring(1_000)
	dg, err := Build(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(dg)
		e.Run([]Msg{{Target: 0, A: 20_000}}, func(rank int, m Msg, send func(Msg)) {
			if m.A == 0 {
				return
			}
			send(Msg{Target: (m.Target + 1) % g.NumVertices(), A: m.A - 1})
		})
		b.ReportMetric(float64(e.Visited()), "msgs/op")
	}
}
