package havoq

import "sync/atomic"

// LabelPropagation runs asynchronous distributed community detection by
// label propagation on the visitor engine: every vertex starts in its own
// community; on each visit a vertex adopts the most frequent label among
// its neighbors (ties toward the smaller label, which guarantees
// progress), re-notifying neighbors whenever its label changes, up to
// maxUpdates label changes per vertex. Returns the final label vector.
//
// This supplies the "community membership" vertex feature from the
// paper's introduction (ref [6] uses Grappolo; label propagation is the
// standard asynchronous analogue and exercises the same engine paths as
// the triangle and BFS visitors). Neighbor labels are read via atomics —
// the shared-memory stand-in for the label-exchange messages a real
// cluster would use; stale reads are part of the asynchronous algorithm's
// contract.
func (dg *DistGraph) LabelPropagation(maxUpdates int) []int64 {
	labels := make([]int64, dg.N)
	for v := range labels {
		labels[v] = int64(v)
	}
	updates := make([][]int, dg.R)
	for r := range updates {
		updates[r] = make([]int, len(dg.rows[r]))
	}
	e := NewEngine(dg)
	seeds := make([]Msg, 0, dg.N)
	for v := int64(0); v < dg.N; v++ {
		seeds = append(seeds, Msg{Target: v})
	}
	e.Run(seeds, func(rank int, m Msg, send func(Msg)) {
		v := m.Target
		li := dg.localIndex(v)
		if updates[rank][li] >= maxUpdates {
			return
		}
		row := dg.rows[rank][li]
		if len(row) == 0 {
			return
		}
		counts := make(map[int64]int, len(row))
		for _, w := range row {
			if w == v {
				continue
			}
			counts[atomic.LoadInt64(&labels[w])]++
		}
		cur := atomic.LoadInt64(&labels[v])
		best, bestC := cur, 0
		for l, c := range counts {
			if c > bestC || (c == bestC && l < best) {
				best, bestC = l, c
			}
		}
		if best != cur {
			atomic.StoreInt64(&labels[v], best)
			updates[rank][li]++
			for _, w := range row {
				if w != v {
					send(Msg{Target: w})
				}
			}
		}
	})
	return labels
}
