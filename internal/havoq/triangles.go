package havoq

// Distributed triangle counting by degree-ordered wedge checks, after the
// approach of the paper's ref [23] (Pearce, HPEC'17): orient each edge
// from lower to higher (degree, id) rank, enumerate wedges at their
// minimum vertex, and ship each wedge to the owner of one endpoint to
// test closure. Self loops never participate (Def. 5 strips the
// diagonal). Message kinds:
//
//	kindSeed  — enumerate wedges at Target
//	kindCheck — does edge (Target, A) exist? wedge apex is B
//	kindInc   — credit one triangle to Target
const (
	kindSeed uint8 = iota
	kindCheck
	kindInc
)

// TriangleResult holds distributed triangle-count output.
type TriangleResult struct {
	Vertex   []int64 // t_v per vertex
	Global   int64   // τ
	Messages int64   // visitor messages processed, for cost reporting
}

// less reports whether u precedes v in the degree-then-id total order
// used to orient edges.
func (dg *DistGraph) less(u, v int64) bool {
	du, dv := dg.Degree(u), dg.Degree(v)
	if du != dv {
		return du < dv
	}
	return u < v
}

// Triangles counts triangles with the asynchronous engine. Per-vertex
// counts and the global count are exact for undirected graphs; ordering
// uses locally readable degrees (a degree exchange in a real cluster,
// a shared read in this simulation).
func (dg *DistGraph) Triangles() *TriangleResult {
	counts := make([][]int64, dg.R)
	for r := range counts {
		counts[r] = make([]int64, len(dg.rows[r]))
	}
	seeds := make([]Msg, 0, dg.N)
	for v := int64(0); v < dg.N; v++ {
		seeds = append(seeds, Msg{Target: v, Kind: kindSeed})
	}
	e := NewEngine(dg)
	e.Run(seeds, func(rank int, m Msg, send func(Msg)) {
		switch m.Kind {
		case kindSeed:
			u := m.Target
			row := dg.rows[rank][dg.localIndex(u)]
			// adj⁺(u): neighbors after u in the total order, loops dropped.
			var higher []int64
			for _, w := range row {
				if w != u && dg.less(u, w) {
					higher = append(higher, w)
				}
			}
			for i := 0; i < len(higher); i++ {
				for j := i + 1; j < len(higher); j++ {
					v, w := higher[i], higher[j]
					if dg.less(w, v) {
						v, w = w, v
					}
					send(Msg{Target: v, Kind: kindCheck, A: w, B: u})
				}
			}
		case kindCheck:
			v, w, u := m.Target, m.A, m.B
			row := dg.rows[rank][dg.localIndex(v)]
			for _, x := range row {
				if x == w {
					counts[rank][dg.localIndex(v)]++
					send(Msg{Target: u, Kind: kindInc})
					send(Msg{Target: w, Kind: kindInc})
					break
				}
			}
		case kindInc:
			counts[rank][dg.localIndex(m.Target)]++
		}
	})
	res := &TriangleResult{Vertex: make([]int64, dg.N), Messages: e.Visited()}
	for v := int64(0); v < dg.N; v++ {
		res.Vertex[v] = counts[dg.Owner(v)][dg.localIndex(v)]
		res.Global += res.Vertex[v]
	}
	res.Global /= 3
	return res
}
