// Package havoq is a small asynchronous distributed graph engine modeled
// on HavoqGT (the paper's ref [18]), the framework the paper's generator
// ships in. It provides a vertex-partitioned distributed graph store and
// an asynchronous visitor-queue engine with quiescence-based termination,
// on top of which distributed BFS, exact vertex eccentricity (the
// bound-pruning algorithm of ref [3]) and distributed triangle counting
// (degree-ordered wedge checks, ref [23]) are implemented. These are the
// "trusted distributed algorithms" the paper validates its ground-truth
// formulas against in Fig. 1.
package havoq

import (
	"fmt"

	"kronlab/internal/graph"
)

// DistGraph is a distributed CSR store: vertex v lives on rank v mod R,
// which holds v's full adjacency row.
type DistGraph struct {
	R int
	N int64
	// rows[r][v/R] is the adjacency of owned vertex v on rank r.
	rows [][][]int64
	// degs[r][v/R] is the degree of owned vertex v.
	degs [][]int64
}

// Owner returns the rank owning vertex v.
func (dg *DistGraph) Owner(v int64) int { return int(v % int64(dg.R)) }

// localIndex returns v's slot in its owner's arrays.
func (dg *DistGraph) localIndex(v int64) int64 { return v / int64(dg.R) }

// Build partitions g across r ranks by v mod r.
func Build(g *graph.Graph, r int) (*DistGraph, error) {
	if r < 1 {
		return nil, fmt.Errorf("havoq: need ≥ 1 rank, got %d", r)
	}
	n := g.NumVertices()
	dg := &DistGraph{R: r, N: n, rows: make([][][]int64, r), degs: make([][]int64, r)}
	for rank := 0; rank < r; rank++ {
		owned := (n - int64(rank) + int64(r) - 1) / int64(r)
		dg.rows[rank] = make([][]int64, owned)
		dg.degs[rank] = make([]int64, owned)
	}
	for v := int64(0); v < n; v++ {
		row := g.Neighbors(v)
		cp := make([]int64, len(row))
		copy(cp, row)
		dg.rows[dg.Owner(v)][dg.localIndex(v)] = cp
		dg.degs[dg.Owner(v)][dg.localIndex(v)] = int64(len(cp))
	}
	return dg, nil
}

// BuildFromParts assembles a DistGraph directly from per-rank edge sets,
// such as the output of dist.Generate1D with an OwnerBySource-compatible
// mapping. Edges may land on any rank; they are re-homed to the owner of
// their source vertex. n is the product vertex count.
func BuildFromParts(n int64, r int, parts [][]graph.Edge) (*DistGraph, error) {
	var arcs []graph.Edge
	for _, p := range parts {
		arcs = append(arcs, p...)
	}
	g, err := graph.New(n, arcs)
	if err != nil {
		return nil, err
	}
	return Build(g, r)
}

// Neighbors returns the adjacency row of v (owner-local read).
func (dg *DistGraph) Neighbors(v int64) []int64 {
	return dg.rows[dg.Owner(v)][dg.localIndex(v)]
}

// Degree returns v's degree.
func (dg *DistGraph) Degree(v int64) int64 {
	return dg.degs[dg.Owner(v)][dg.localIndex(v)]
}

// HasSelfLoop reports whether v's row contains v.
func (dg *DistGraph) HasSelfLoop(v int64) bool {
	for _, w := range dg.Neighbors(v) {
		if w == v {
			return true
		}
	}
	return false
}
