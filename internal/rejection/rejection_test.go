package rejection

import (
	"math"
	"testing"
	"testing/quick"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
)

func TestHashSymmetricAndDeterministic(t *testing.T) {
	h := NewHasher(1)
	f := func(u, v int64) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		return h.Hash(u, v) == h.Hash(v, u) && h.Hash(u, v) == h.Hash(u, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashRange(t *testing.T) {
	h := NewHasher(7)
	for u := int64(0); u < 100; u++ {
		for v := u; v < u+20; v++ {
			x := h.Hash(u, v)
			if x < 0 || x >= 1 {
				t.Fatalf("hash(%d,%d) = %v out of [0,1)", u, v, x)
			}
		}
	}
}

func TestHashSeedIndependence(t *testing.T) {
	h1, h2 := NewHasher(1), NewHasher(2)
	same := 0
	for u := int64(0); u < 50; u++ {
		if h1.Bits(u, u+1) == h2.Bits(u, u+1) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/50 hashes identical across seeds", same)
	}
}

func TestHashUniformity(t *testing.T) {
	h := NewHasher(3)
	var sum float64
	n := 0
	for u := int64(0); u < 200; u++ {
		for v := u + 1; v < u+10; v++ {
			sum += h.Hash(u, v)
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("hash mean %v, want ≈0.5", mean)
	}
}

func TestThinEdgeFraction(t *testing.T) {
	g := gen.ER(120, 0.4, 5)
	h := NewHasher(11)
	for _, nu := range []float64{0.9, 0.5, 0.1} {
		sub := Thin(g, h, nu)
		frac := float64(sub.NumEdges()) / float64(g.NumEdges())
		if math.Abs(frac-nu) > 0.08 {
			t.Errorf("ν=%v: kept fraction %v", nu, frac)
		}
		if !sub.IsSymmetric() {
			t.Errorf("ν=%v: thinned graph lost symmetry", nu)
		}
		if sub.NumVertices() != g.NumVertices() {
			t.Errorf("ν=%v: vertex count changed", nu)
		}
	}
}

func TestThinBoundaries(t *testing.T) {
	g := gen.ER(40, 0.5, 6)
	h := NewHasher(13)
	if !Thin(g, h, 1.0).Equal(g) {
		t.Error("ν=1 must keep the whole graph")
	}
	if Thin(g, h, -0.1).NumEdges() != 0 {
		t.Error("ν<0 must drop everything")
	}
}

// Property (Def. 8): the family is nested — ν ≤ ν' ⇒ G_ν ⊆ G_ν'.
func TestPropertyFamilyNested(t *testing.T) {
	g := gen.ER(60, 0.3, 8)
	h := NewHasher(17)
	levels := []float64{1, 0.99, 0.95, 0.9, 0.5}
	fam := Family(g, h, levels)
	for i := 1; i < len(fam); i++ {
		sub, sup := fam[i], fam[i-1]
		sub.Arcs(func(u, v int64) bool {
			if !sup.HasArc(u, v) {
				t.Fatalf("G_%v has arc (%d,%d) missing from G_%v", levels[i], u, v, levels[i-1])
			}
			return true
		})
	}
}

func TestTriangleSurvivesIffAllEdgesSurvive(t *testing.T) {
	g := gen.ER(40, 0.5, 21)
	h := NewHasher(23)
	nu := 0.8
	sub := Thin(g, h, nu)
	// Enumerate triangles of g; check survival rule matches membership.
	n := g.NumVertices()
	for u := int64(0); u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w <= v || !g.HasArc(u, w) {
					continue
				}
				inSub := sub.HasArc(u, v) && sub.HasArc(v, w) && sub.HasArc(u, w)
				if TriangleSurvives(h, u, v, w, nu) != inSub {
					t.Fatalf("survival rule mismatch for (%d,%d,%d)", u, v, w)
				}
			}
		}
	}
}

// The headline statistical claim of Def. 8: thinning a Kronecker product
// leaves E[t_p] = ν³·t_p. Verified in aggregate: the global triangle count
// of the thinned product should be ≈ ν³ · τ_C.
func TestThinnedTriangleExpectation(t *testing.T) {
	a := gen.ER(12, 0.5, 31)
	c, err := core.Product(a, a)
	if err != nil {
		t.Fatal(err)
	}
	tauC := analytics.GlobalTriangles(c)
	if tauC < 500 {
		t.Fatalf("need a triangle-rich product for a stable average, got τ=%d", tauC)
	}
	nu := 0.9
	want := nu * nu * nu * float64(tauC)
	// Average over several independent hash seeds.
	var got float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		sub := Thin(c, NewHasher(100+s), nu)
		got += float64(analytics.GlobalTriangles(sub))
	}
	got /= seeds
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("thinned τ = %v, want ≈ %v (ν³·τ_C)", got, want)
	}
}

// Per-edge expectation: for surviving edges, E[Δ] = ν²·Δ.
func TestThinnedEdgeTriangleExpectation(t *testing.T) {
	a := gen.ER(12, 0.5, 37)
	c, err := core.Product(a, a)
	if err != nil {
		t.Fatal(err)
	}
	exact := analytics.Triangles(c)
	nu := 0.9
	var sumExact, sumThinned float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		h := NewHasher(200 + s)
		sub := Thin(c, h, nu)
		subTri := analytics.Triangles(sub)
		idx := int64(-1)
		sub.Arcs(func(u, v int64) bool {
			idx++
			if u >= v {
				return true
			}
			sumThinned += float64(subTri.Arc[idx])
			origIdx := c.ArcIndex(u, v)
			sumExact += ExpectedEdgeTriangles(exact.Arc[origIdx], nu)
			return true
		})
	}
	if sumExact == 0 {
		t.Fatal("no surviving edges with triangles")
	}
	ratio := sumThinned / sumExact
	if math.Abs(ratio-1) > 0.1 {
		t.Errorf("aggregate thinned Δ ratio = %v, want ≈1", ratio)
	}
}

func TestExpectedHelpers(t *testing.T) {
	if ExpectedVertexTriangles(100, 0.5) != 12.5 {
		t.Error("ν³ expectation wrong")
	}
	if ExpectedEdgeTriangles(100, 0.5) != 25 {
		t.Error("ν² expectation wrong")
	}
}

// Rejection smooths the degree distribution: the thinned product has more
// distinct degrees than the exact Kronecker product (which only realizes
// products d_i·d_k — no large primes, big holes).
func TestRejectionSmoothsDegreeHoles(t *testing.T) {
	a := gen.PrefAttach(40, 2, 41)
	c, err := core.Product(a, a)
	if err != nil {
		t.Fatal(err)
	}
	before := analytics.NewHistogram(c.Degrees())
	after := analytics.NewHistogram(Thin(c, NewHasher(43), 0.9).Degrees())
	if len(after.Keys()) <= len(before.Keys()) {
		t.Errorf("distinct degrees: before %d, after %d — expected smoothing",
			len(before.Keys()), len(after.Keys()))
	}
}

func TestLevelIndex(t *testing.T) {
	g := gen.ER(40, 0.4, 99)
	h := NewHasher(5)
	levels := []float64{1, 0.9, 0.5, 0.1}
	idx, err := LevelIndex(g, h, levels)
	if err != nil {
		t.Fatal(err)
	}
	fam := Family(g, h, levels)
	// Membership via the level index must match Thin exactly.
	pos := int64(-1)
	g.Arcs(func(u, v int64) bool {
		pos++
		for li := range levels {
			inFam := fam[li].HasArc(u, v)
			inIdx := int(idx[pos]) > li
			if inFam != inIdx {
				t.Fatalf("arc (%d,%d) level %d: family %v, index %v", u, v, li, inFam, inIdx)
			}
		}
		return true
	})
	// ν = 1 keeps everything → every arc has level ≥ 1.
	for _, l := range idx {
		if l < 1 {
			t.Fatal("level 0 arc under ν=1 ladder")
		}
	}
	// Validation.
	if _, err := LevelIndex(g, h, []float64{0.5, 0.9}); err == nil {
		t.Error("increasing ladder should error")
	}
	if _, err := LevelIndex(g, h, make([]float64, 300)); err == nil {
		t.Error("too many levels should error")
	}
}
