// Package rejection implements the paper's probabilistic edge rejection
// (Sec. IV-C, Def. 8): a deterministic hash hash(p,q) → [0,1] over
// undirected edges defines a nested family of subgraphs
// G_{C,ν} = { (p,q) ∈ G_C : hash(p,q) ≤ ν }. Thinning breaks the exact
// Kronecker structure (smoothing the degree/triangle distributions and
// making accidental exploitation unlikely) while keeping local triangle
// ground truth checkable: a triangle survives in G_{C,ν} iff the max of
// its three edge hashes is ≤ ν, so E[t_p] = ν³·t_p and E[Δ_pq] = ν²·Δ_pq.
package rejection

import (
	"fmt"

	"kronlab/internal/graph"
)

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hasher is a seeded edge-hash function mapping undirected edges to
// [0, 1). It is symmetric: Hash(u,v) == Hash(v,u).
type Hasher struct {
	seed uint64
}

// NewHasher returns a Hasher with the given seed; distinct seeds give
// independent hash families.
func NewHasher(seed uint64) Hasher { return Hasher{seed: seed} }

// Bits returns the raw 64-bit hash of the canonical edge {u, v}.
func (h Hasher) Bits(u, v int64) uint64 {
	if u > v {
		u, v = v, u
	}
	x := splitmix64(uint64(u) ^ h.seed)
	return splitmix64(x ^ splitmix64(uint64(v)+0x632be59bd9b4e019))
}

// Hash returns hash(u,v) ∈ [0, 1).
func (h Hasher) Hash(u, v int64) float64 {
	// 53 high bits → uniform double in [0,1).
	return float64(h.Bits(u, v)>>11) / float64(1<<53)
}

// Keep reports whether edge (u,v) survives at level ν, i.e. whether
// (u,v) ∈ G_{C,ν}.
func (h Hasher) Keep(u, v int64, nu float64) bool {
	return h.Hash(u, v) <= nu
}

// Thin returns the subgraph G_ν of g keeping exactly the arcs whose
// canonical edge hash is ≤ ν. Both directions of an undirected edge share
// one hash, so symmetry is preserved.
func Thin(g *graph.Graph, h Hasher, nu float64) *graph.Graph {
	return g.FilterArcs(func(u, v int64) bool { return h.Keep(u, v, nu) })
}

// Family jointly classifies every edge of g against a set of levels
// (e.g. {1, .99, .95, .9}) in one pass, as the paper describes: the hash
// value of each edge is computed once and the edge belongs to every
// G_{C,ν} with hash ≤ ν. Returns one subgraph per level, in input order.
func Family(g *graph.Graph, h Hasher, levels []float64) []*graph.Graph {
	out := make([]*graph.Graph, len(levels))
	for i, nu := range levels {
		out[i] = Thin(g, h, nu)
	}
	return out
}

// TriangleSurvives reports whether the triangle (p1, p2, p3) of G_C
// exists in G_{C,ν}: max of the three edge hashes ≤ ν.
func TriangleSurvives(h Hasher, p1, p2, p3 int64, nu float64) bool {
	m := h.Hash(p1, p2)
	if x := h.Hash(p1, p3); x > m {
		m = x
	}
	if x := h.Hash(p2, p3); x > m {
		m = x
	}
	return m <= nu
}

// ExpectedVertexTriangles returns E[t_p in G_{C,ν}] = ν³ · t_p.
func ExpectedVertexTriangles(tp int64, nu float64) float64 {
	return nu * nu * nu * float64(tp)
}

// ExpectedEdgeTriangles returns E[Δ_pq in G_{C,ν} | (p,q) ∈ G_{C,ν}]
// = ν² · Δ_pq.
func ExpectedEdgeTriangles(dpq int64, nu float64) float64 {
	return nu * nu * float64(dpq)
}

// LevelIndex classifies every arc of g against a descending level ladder
// (e.g. {1, .99, .95, .9}): out[idx] is the number of levels the arc
// belongs to — the joint-generation representation the paper describes
// ("generate G_C, G_{C,.99}, … jointly by storing the hash values of
// every edge"), but storing one small int per arc instead of a float.
// An arc with out[idx] = t belongs to G_{C,levels[0]} … G_{C,levels[t−1]}.
// Levels must be non-increasing.
func LevelIndex(g *graph.Graph, h Hasher, levels []float64) ([]uint8, error) {
	for i := 1; i < len(levels); i++ {
		if levels[i] > levels[i-1] {
			return nil, fmt.Errorf("rejection: levels must be non-increasing, got %v", levels)
		}
	}
	if len(levels) > 255 {
		return nil, fmt.Errorf("rejection: at most 255 levels, got %d", len(levels))
	}
	out := make([]uint8, g.NumArcs())
	idx := int64(-1)
	g.Arcs(func(u, v int64) bool {
		idx++
		x := h.Hash(u, v)
		var t uint8
		for _, nu := range levels {
			if x <= nu {
				t++
			} else {
				break
			}
		}
		out[idx] = t
		return true
	})
	return out, nil
}
