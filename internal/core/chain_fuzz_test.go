package core

import (
	"testing"
)

// FuzzChainIndex fuzzes the mixed-radix chain index maps: dims are
// derived from raw bytes (1–9 vertices per factor, 1–6 factors), and two
// vertex seeds pick product vertices p and q. Checked properties:
// encode/decode round-trip (Join ∘ Split = id, digit ranges respected,
// Digit consistent with Split) and lexicographic-order preservation
// (p < q exactly when Split(p) precedes Split(q) lexicographically) —
// the invariant the engine's odometer-ordered tail expansion and the
// checkpoint substream identity both rely on.
func FuzzChainIndex(f *testing.F) {
	f.Add([]byte{2, 2}, uint64(0), uint64(3))
	f.Add([]byte{3, 4, 5}, uint64(17), uint64(42))
	f.Add([]byte{9, 1, 7, 2}, uint64(1), uint64(1))
	f.Add([]byte{1}, uint64(0), uint64(0))
	f.Add([]byte{5, 5, 5, 5, 5, 5}, uint64(1<<40), uint64(7))

	f.Fuzz(func(t *testing.T, raw []byte, pSeed, qSeed uint64) {
		k := len(raw)
		if k == 0 || k > 6 {
			t.Skip()
		}
		dims := make([]int64, k)
		for d, b := range raw {
			dims[d] = 1 + int64(b%9)
		}
		ci, err := NewChainIndex(dims)
		if err != nil {
			t.Fatalf("NewChainIndex(%v): %v", dims, err)
		}
		n := ci.NumVertices()
		p := int64(pSeed % uint64(n))
		q := int64(qSeed % uint64(n))

		// Round trip and digit-range invariants.
		coords := ci.Split(p)
		if len(coords) != k {
			t.Fatalf("Split(%d) has %d digits, want %d", p, len(coords), k)
		}
		for d, c := range coords {
			if c < 0 || c >= dims[d] {
				t.Fatalf("Split(%d) digit %d = %d out of [0,%d)", p, d, c, dims[d])
			}
			if got := ci.Digit(p, d); got != c {
				t.Fatalf("Digit(%d,%d) = %d, Split gave %d", p, d, got, c)
			}
		}
		if got := ci.Join(coords); got != p {
			t.Fatalf("Join(Split(%d)) = %d (dims %v)", p, got, dims)
		}

		// Lexicographic order: the mixed-radix encoding with leftmost
		// digit outermost orders vertices exactly like their digit
		// vectors.
		qc := ci.Split(q)
		cmp := 0
		for d := 0; d < k; d++ {
			if coords[d] != qc[d] {
				if coords[d] < qc[d] {
					cmp = -1
				} else {
					cmp = 1
				}
				break
			}
		}
		switch {
		case p < q && cmp != -1:
			t.Fatalf("p=%d < q=%d but digits %v !< %v", p, q, coords, qc)
		case p > q && cmp != 1:
			t.Fatalf("p=%d > q=%d but digits %v !> %v", p, q, coords, qc)
		case p == q && cmp != 0:
			t.Fatalf("p == q == %d but digits differ: %v vs %v", p, coords, qc)
		}
	})
}
