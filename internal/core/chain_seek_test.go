package core

import (
	"testing"

	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

// chainArcsRef collects the chain's full arc stream serially — the
// reference order every seek test compares against.
func chainArcsRef(t testing.TB, c *Chain) []graph.Edge {
	t.Helper()
	total, err := c.NumArcs()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]graph.Edge, 0, total)
	c.Arcs(func(u, v int64) bool {
		out = append(out, graph.Edge{U: u, V: v})
		return true
	})
	return out
}

func TestTailCursorSeekTo(t *testing.T) {
	tail := []*graph.Graph{gen.ER(5, 0.5, 11), gen.Ring(4), gen.ER(3, 0.7, 12)}
	ref := NewTailCursor(tail)
	var want []graph.Edge
	for {
		block := ref.ExpandNext(0, 0, nil, 1<<20)
		if len(block) == 0 {
			break
		}
		want = append(want, block...)
	}
	total := ref.Total()
	if int64(len(want)) != total {
		t.Fatalf("reference stream has %d arcs, Total() says %d", len(want), total)
	}

	// Seeking to pos then expanding everything must reproduce the
	// reference tail from pos — for every position, including 0 and the
	// exhausted position total.
	for pos := int64(0); pos <= total; pos++ {
		cur := NewTailCursor(tail)
		cur.SeekTo(pos)
		var got []graph.Edge
		for {
			block := cur.ExpandNext(0, 0, nil, 7) // odd max to cross run boundaries
			if len(block) == 0 {
				break
			}
			got = append(got, block...)
		}
		if int64(len(got)) != total-pos {
			t.Fatalf("SeekTo(%d): got %d arcs, want %d", pos, len(got), total-pos)
		}
		for i, e := range got {
			if e != want[pos+int64(i)] {
				t.Fatalf("SeekTo(%d): arc %d = %v, want %v", pos, i, e, want[pos+int64(i)])
			}
		}
	}
}

func TestTailCursorSeekToPanicsOutOfRange(t *testing.T) {
	tail := []*graph.Graph{gen.Ring(3)}
	for _, pos := range []int64{-1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SeekTo(%d) did not panic", pos)
				}
			}()
			NewTailCursor(tail).SeekTo(pos)
		}()
	}
}

func TestChainArcsFromMatchesArcs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factors []*graph.Graph
	}{
		{"k2", []*graph.Graph{gen.PrefAttach(7, 2, 21), gen.ER(5, 0.5, 22)}},
		{"k3", []*graph.Graph{gen.ER(4, 0.6, 23), gen.Ring(3), gen.ER(3, 0.8, 24)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ch, err := NewChain(tc.factors...)
			if err != nil {
				t.Fatal(err)
			}
			want := chainArcsRef(t, ch)
			total := int64(len(want))
			for _, off := range []int64{0, 1, total / 3, total / 2, total - 1, total} {
				var got []graph.Edge
				n, err := ch.ArcsFrom(off, func(u, v int64) bool {
					got = append(got, graph.Edge{U: u, V: v})
					return true
				})
				if err != nil {
					t.Fatalf("ArcsFrom(%d): %v", off, err)
				}
				if n != total {
					t.Fatalf("ArcsFrom(%d) total = %d, want %d", off, n, total)
				}
				if int64(len(got)) != total-off {
					t.Fatalf("ArcsFrom(%d): %d arcs, want %d", off, len(got), total-off)
				}
				for i, e := range got {
					if e != want[off+int64(i)] {
						t.Fatalf("ArcsFrom(%d): arc %d = %v, want %v", off, i, e, want[off+int64(i)])
					}
				}
			}
		})
	}
}

func TestChainArcsFromRejectsBadOffset(t *testing.T) {
	ch, err := NewChain(gen.Ring(3), gen.Ring(3))
	if err != nil {
		t.Fatal(err)
	}
	total, err := ch.NumArcs()
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{-1, total + 1} {
		if _, err := ch.ArcsFrom(off, func(u, v int64) bool { return true }); err == nil {
			t.Errorf("ArcsFrom(%d) accepted an out-of-range offset", off)
		}
	}
}

func TestChainArcsFromEarlyStop(t *testing.T) {
	ch, err := NewChain(gen.ER(6, 0.5, 25), gen.ER(6, 0.5, 26))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := ch.ArcsFrom(3, func(u, v int64) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("yield called %d times after returning false, want 5", count)
	}
}

// BenchmarkSeek pins the tentpole's cost claim: positioning the stream
// at offset N is O(k) mixed-radix division plus O(tiles) plan walking —
// independent of N. Each case seeks to a different offset magnitude in
// the same large chain and reads a fixed 1024-arc window; if seek cost
// grew with the offset the far cases would be visibly slower.
func BenchmarkSeek(b *testing.B) {
	factors := []*graph.Graph{
		gen.PrefAttach(64, 3, 41),
		gen.ER(64, 0.25, 42),
		gen.ER(32, 0.25, 43),
	}
	ch, err := NewChain(factors...)
	if err != nil {
		b.Fatal(err)
	}
	total, err := ch.NumArcs()
	if err != nil {
		b.Fatal(err)
	}
	const window = 1024
	for _, tc := range []struct {
		name   string
		offset int64
	}{
		{"offset-0", 0},
		{"offset-1e3", 1_000},
		{"offset-mid", total / 2},
		{"offset-end", total - window},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got := 0
				_, err := ch.ArcsFrom(tc.offset, func(u, v int64) bool {
					got++
					return got < window
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tc.offset), "offset")
		})
	}
}
