package core_test

import (
	"fmt"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// ExampleProduct forms the Kronecker product of a triangle and an edge.
func ExampleProduct() {
	tri, _ := graph.NewUndirected(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	k2, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 1}})
	c, _ := core.Product(tri, k2)
	fmt.Println(c)
	// Output: graph{n=6 m=6 loops=0}
}

// ExampleIndex shows the block-index maps of Sec. II-A.
func ExampleIndex() {
	ix := core.NewIndex(4) // block size n_B = 4
	i, k := ix.Split(10)
	fmt.Println(i, k, ix.Gamma(i, k))
	// Output: 2 2 10
}

// ExampleStreamProduct enumerates product arcs without materializing C.
func ExampleStreamProduct() {
	k2, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 1}})
	count := 0
	core.StreamProduct(k2, k2, func(u, v int64) bool {
		count++
		return true
	})
	fmt.Println(count) // 2 arcs × 2 arcs
	// Output: 4
}

// ExampleKronPower builds the third Kronecker power of an edge.
func ExampleKronPower() {
	k2, _ := graph.NewUndirected(2, []graph.Edge{{U: 0, V: 1}})
	c, _ := core.KronPower(k2, 3)
	fmt.Println(c.NumVertices(), c.NumEdges())
	// Output: 8 4
}
