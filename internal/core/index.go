// Package core implements the paper's primary contribution: Kronecker
// block-index arithmetic (the α, β, γ maps of Sec. II-A), streaming and
// materialized nonstochastic Kronecker product generation C = A ⊗ B and
// the full-self-loop variant C = (A+I) ⊗ (B+I) (Sec. III), and Kronecker
// products of vertex sets and partitions (Defs. 14 and 16).
//
// All indices are 0-based (the paper is 1-based); the maps below satisfy
// the same composition law γ(α(p), β(p)) = p.
package core

import "fmt"

// Index performs block-index arithmetic for a block size nB = |V_B|.
// For a product vertex p of C = A ⊗ B, Alpha(p) is the factor-A vertex and
// Beta(p) the factor-B vertex; Gamma inverts the pair back to p.
type Index struct {
	NB int64 // block size: the number of vertices of the B factor
}

// NewIndex returns an Index for block size nB. nB must be positive.
func NewIndex(nB int64) Index {
	if nB <= 0 {
		panic(fmt.Sprintf("core: block size must be positive, got %d", nB))
	}
	return Index{NB: nB}
}

// Alpha returns the block number of p: α(p) = ⌊p / nB⌋.
func (ix Index) Alpha(p int64) int64 { return p / ix.NB }

// Beta returns the intra-block index of p: β(p) = p mod nB.
func (ix Index) Beta(p int64) int64 { return p % ix.NB }

// Gamma composes a block number and intra-block index back into a global
// index: γ(i, k) = i·nB + k. It inverts (Alpha, Beta).
func (ix Index) Gamma(i, k int64) int64 { return i*ix.NB + k }

// Split returns (Alpha(p), Beta(p)) in one call.
func (ix Index) Split(p int64) (i, k int64) { return p / ix.NB, p % ix.NB }

// Alpha is the package-level form of Index.Alpha for callers that don't
// want to build an Index: α_n(p) = ⌊p/n⌋.
func Alpha(p, n int64) int64 { return p / n }

// Beta is the package-level form of Index.Beta: β_n(p) = p mod n.
func Beta(p, n int64) int64 { return p % n }

// Gamma is the package-level form of Index.Gamma: γ_n(i, k) = i·n + k.
func Gamma(i, k, n int64) int64 { return i*n + k }
