package core

import (
	"fmt"

	"kronlab/internal/graph"
)

// StreamProduct enumerates the arcs of C = A ⊗ B without materializing C:
// for every arc (i,j) of A and every arc (k,l) of B it yields the product
// arc (γ(i,k), γ(j,l)). Iteration stops early if yield returns false.
//
// This is exactly the expansion each processor performs in the paper's
// generator (Sec. III): a processor holding a subset of A's arcs and all
// of B streams its share of C's arcs.
func StreamProduct(a, b *graph.Graph, yield func(u, v int64) bool) {
	ix := NewIndex(b.NumVertices())
	stop := false
	a.Arcs(func(i, j int64) bool {
		b.Arcs(func(k, l int64) bool {
			if !yield(ix.Gamma(i, k), ix.Gamma(j, l)) {
				stop = true
				return false
			}
			return true
		})
		return !stop
	})
}

// StreamProductArcs is StreamProduct restricted to an explicit slice of
// A-arcs — the per-processor work unit of the distributed generator.
func StreamProductArcs(aArcs []graph.Edge, b *graph.Graph, yield func(u, v int64) bool) {
	ix := NewIndex(b.NumVertices())
	for _, e := range aArcs {
		stop := false
		b.Arcs(func(k, l int64) bool {
			if !yield(ix.Gamma(e.U, k), ix.Gamma(e.V, l)) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ExpandBlock expands one A-arc against an explicit slice of B-arcs,
// appending the len(bArcs) product arcs to out and returning it. It is
// the blocked form of the paper's Sec. III expansion and the kernel
// behind the distributed engine's Expand stage: the γ offsets of the
// A-arc are hoisted out of the loop, so the body is two adds and an
// append — no interface or closure calls per product arc (contrast
// StreamProductArcs, which stays as the per-edge reference
// implementation).
//
// Pass bArcs = b.ArcSlice() and nB = b.NumVertices(); reuse out (len 0,
// cap ≥ len(bArcs)) across calls to make expansion allocation-free.
// Output order is bArcs order — B's CSR arc order — which matches
// StreamProduct exactly; the deterministic per-tile expansion order that
// tile checkpoints and prefix-dedup recovery key on is preserved.
func ExpandBlock(aArc graph.Edge, bArcs []graph.Edge, nB int64, out []graph.Edge) []graph.Edge {
	uBase := aArc.U * nB
	vBase := aArc.V * nB
	for _, e := range bArcs {
		out = append(out, graph.Edge{U: uBase + e.U, V: vBase + e.V})
	}
	return out
}

// Product materializes C = A ⊗ B as a Graph on n_A·n_B vertices.
// If A and B are symmetric, so is C.
func Product(a, b *graph.Graph) (*graph.Graph, error) {
	nC := a.NumVertices() * b.NumVertices()
	if a.NumVertices() != 0 && nC/a.NumVertices() != b.NumVertices() {
		return nil, fmt.Errorf("core: product vertex count overflows int64: %d * %d", a.NumVertices(), b.NumVertices())
	}
	arcs := make([]graph.Edge, 0, a.NumArcs()*b.NumArcs())
	StreamProduct(a, b, func(u, v int64) bool {
		arcs = append(arcs, graph.Edge{U: u, V: v})
		return true
	})
	return graph.New(nC, arcs)
}

// ProductWithSelfLoops materializes C = (A+I_A) ⊗ (B+I_B), the
// "full self loops in both factors" construction used by Cor. 1, Cor. 2
// and Thm. 6. The inputs are used as given (existing loops are preserved
// by the +I saturation).
func ProductWithSelfLoops(a, b *graph.Graph) (*graph.Graph, error) {
	return Product(a.WithFullSelfLoops(), b.WithFullSelfLoops())
}

// NumProductEdges returns |E_C| (undirected) and the arc count of
// C = A ⊗ B without generating it: arcs multiply, and the undirected edge
// count follows from the loop structure — a product arc is a loop iff both
// factor arcs are loops.
func NumProductEdges(a, b *graph.Graph) (edges, arcs int64) {
	arcs = a.NumArcs() * b.NumArcs()
	loops := a.NumSelfLoops() * b.NumSelfLoops()
	return (arcs + loops) / 2, arcs
}

// KronSet returns the Kronecker product of vertex sets S_A ⊗ S_B
// (Def. 14): { γ(i,k) : i ∈ S_A, k ∈ S_B }, in ascending order when the
// inputs are ascending.
func KronSet(sa, sb []int64, nB int64) []int64 {
	ix := NewIndex(nB)
	out := make([]int64, 0, len(sa)*len(sb))
	for _, i := range sa {
		for _, k := range sb {
			out = append(out, ix.Gamma(i, k))
		}
	}
	return out
}

// KronPartition returns the Kronecker partition Π_C = Π_A ⊗ Π_B
// (Def. 16): the a_max·b_max sets S_A^(a) ⊗ S_B^(b), ordered with the
// B-partition index varying fastest.
func KronPartition(pa, pb [][]int64, nB int64) [][]int64 {
	out := make([][]int64, 0, len(pa)*len(pb))
	for _, sa := range pa {
		for _, sb := range pb {
			out = append(out, KronSet(sa, sb, nB))
		}
	}
	return out
}
