package core

import (
	"fmt"

	"kronlab/internal/graph"
)

// KronPower materializes the k-fold Kronecker power A^{⊗k} =
// A ⊗ A ⊗ … ⊗ A (k ≥ 1). Repeated powers of a single small factor are
// the nonstochastic analogue of the recursive R-MAT construction; all of
// the paper's two-factor laws extend to powers by induction (see
// groundtruth's *Power functions).
func KronPower(a *graph.Graph, k int) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: KronPower needs k ≥ 1, got %d", k)
	}
	c := a
	var err error
	for i := 1; i < k; i++ {
		c, err = Product(c, a)
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// PowerIndex maps between a vertex of A^{⊗k} and its k factor
// coordinates, generalizing the α/β/γ maps: with n = n_A, vertex p
// decomposes in base n as p = Σ digits[d]·n^{k−1−d}, the leftmost digit
// being the outermost factor (matching the associativity of KronPower,
// which folds left).
type PowerIndex struct {
	N int64 // factor vertex count
	K int   // number of factors
}

// NewPowerIndex returns the index map for A^{⊗k} with n-vertex A.
func NewPowerIndex(n int64, k int) PowerIndex {
	if n <= 0 || k < 1 {
		panic(fmt.Sprintf("core: bad power index (n=%d, k=%d)", n, k))
	}
	return PowerIndex{N: n, K: k}
}

// Split returns the k factor coordinates of product vertex p.
func (px PowerIndex) Split(p int64) []int64 {
	out := make([]int64, px.K)
	for d := px.K - 1; d >= 0; d-- {
		out[d] = p % px.N
		p /= px.N
	}
	return out
}

// Join inverts Split.
func (px PowerIndex) Join(coords []int64) int64 {
	if len(coords) != px.K {
		panic(fmt.Sprintf("core: Join got %d coords, want %d", len(coords), px.K))
	}
	var p int64
	for _, c := range coords {
		p = p*px.N + c
	}
	return p
}

// NumVertices returns n^k.
func (px PowerIndex) NumVertices() int64 {
	out := int64(1)
	for i := 0; i < px.K; i++ {
		out *= px.N
	}
	return out
}
