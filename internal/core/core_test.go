package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronlab/internal/graph"
	"kronlab/internal/matrix"
)

func randomGraph(rng *rand.Rand, maxN int64, loops bool) *graph.Graph {
	n := 1 + rng.Int63n(maxN)
	m := rng.Int63n(2*n + 1)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if !loops && u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestIndexMapsKnown(t *testing.T) {
	ix := NewIndex(4)
	// p = 10, nB = 4 → α = 2, β = 2, γ(2,2) = 10.
	if ix.Alpha(10) != 2 || ix.Beta(10) != 2 {
		t.Fatalf("Alpha/Beta(10) = (%d,%d), want (2,2)", ix.Alpha(10), ix.Beta(10))
	}
	if ix.Gamma(2, 2) != 10 {
		t.Fatalf("Gamma(2,2) = %d, want 10", ix.Gamma(2, 2))
	}
	i, k := ix.Split(7)
	if i != 1 || k != 3 {
		t.Fatalf("Split(7) = (%d,%d), want (1,3)", i, k)
	}
}

// Property: γ(α(p), β(p)) = p for all p ≥ 0 — the composition law of
// Sec. II-A.
func TestPropertyIndexBijection(t *testing.T) {
	f := func(pRaw int64, nRaw uint16) bool {
		n := int64(nRaw%1000) + 1
		p := pRaw
		if p < 0 {
			p = -p
		}
		ix := NewIndex(n)
		return ix.Gamma(ix.Alpha(p), ix.Beta(p)) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the inverse direction — α(γ(i,k)) = i, β(γ(i,k)) = k for
// 0 ≤ k < n.
func TestPropertyIndexInverse(t *testing.T) {
	f := func(iRaw int64, kRaw, nRaw uint16) bool {
		n := int64(nRaw%1000) + 1
		k := int64(kRaw) % n
		i := iRaw
		if i < 0 {
			i = -i
		}
		i %= 1 << 30
		ix := NewIndex(n)
		p := ix.Gamma(i, k)
		return ix.Alpha(p) == i && ix.Beta(p) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewIndexPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int64{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewIndex(%d): expected panic", n)
				}
			}()
			NewIndex(n)
		}()
	}
}

func TestPackageLevelIndexHelpers(t *testing.T) {
	if Alpha(10, 4) != 2 || Beta(10, 4) != 2 || Gamma(2, 2, 4) != 10 {
		t.Error("package-level α/β/γ disagree with Index methods")
	}
}

// Product vs the dense-matrix oracle: pattern(A) ⊗ pattern(B) as a matrix
// equals the adjacency of Product(A, B).
func TestProductMatchesMatrixOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		a := randomGraph(rng, 8, true)
		b := randomGraph(rng, 8, true)
		c, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.FromGraph(a).Kron(matrix.FromGraph(b))
		got := matrix.FromGraph(c)
		if !got.Equal(want) {
			t.Fatalf("trial %d: product adjacency mismatch\nA=%v\nB=%v", trial, a, b)
		}
	}
}

func TestProductWithSelfLoopsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		a := randomGraph(rng, 7, false)
		b := randomGraph(rng, 7, false)
		c, err := ProductWithSelfLoops(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ma := matrix.FromGraph(a).Add(matrix.Identity(int(a.NumVertices())))
		mb := matrix.FromGraph(b).Add(matrix.Identity(int(b.NumVertices())))
		if !matrix.FromGraph(c).Equal(ma.Kron(mb)) {
			t.Fatalf("trial %d: (A+I)⊗(B+I) mismatch", trial)
		}
	}
}

func TestProductEdgeCountLaw(t *testing.T) {
	// m_C = 2·m_A·m_B for loop-free undirected factors (Sec. I table).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a := randomGraph(rng, 10, false)
		b := randomGraph(rng, 10, false)
		c, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumEdges() != 2*a.NumEdges()*b.NumEdges() {
			t.Fatalf("trial %d: m_C=%d want %d", trial, c.NumEdges(), 2*a.NumEdges()*b.NumEdges())
		}
		edges, arcs := NumProductEdges(a, b)
		if edges != c.NumEdges() || arcs != c.NumArcs() {
			t.Fatalf("trial %d: NumProductEdges=(%d,%d) want (%d,%d)",
				trial, edges, arcs, c.NumEdges(), c.NumArcs())
		}
	}
}

func TestNumProductEdgesWithLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		a := randomGraph(rng, 8, true)
		b := randomGraph(rng, 8, true)
		c, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		edges, arcs := NumProductEdges(a, b)
		if edges != c.NumEdges() || arcs != c.NumArcs() {
			t.Fatalf("trial %d: predicted (%d,%d), got (%d,%d)",
				trial, edges, arcs, c.NumEdges(), c.NumArcs())
		}
	}
}

func TestProductSymmetryPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		a := randomGraph(rng, 8, true)
		b := randomGraph(rng, 8, true)
		c, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsSymmetric() {
			t.Fatalf("trial %d: product of symmetric factors must be symmetric", trial)
		}
	}
}

func TestStreamProductEarlyStop(t *testing.T) {
	a := randomGraph(rand.New(rand.NewSource(13)), 6, true)
	b := randomGraph(rand.New(rand.NewSource(14)), 6, true)
	var seen int64
	StreamProduct(a, b, func(u, v int64) bool {
		seen++
		return seen < 5
	})
	if seen != 5 && a.NumArcs()*b.NumArcs() >= 5 {
		t.Errorf("early stop: yielded %d arcs, want 5", seen)
	}
}

func TestStreamProductArcsMatchesStreamProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomGraph(rng, 8, true)
	b := randomGraph(rng, 8, true)
	var viaGraph, viaArcs []graph.Edge
	StreamProduct(a, b, func(u, v int64) bool {
		viaGraph = append(viaGraph, graph.Edge{U: u, V: v})
		return true
	})
	StreamProductArcs(a.ArcList(), b, func(u, v int64) bool {
		viaArcs = append(viaArcs, graph.Edge{U: u, V: v})
		return true
	})
	if len(viaGraph) != len(viaArcs) {
		t.Fatalf("lengths differ: %d vs %d", len(viaGraph), len(viaArcs))
	}
	for i := range viaGraph {
		if viaGraph[i] != viaArcs[i] {
			t.Fatalf("arc %d differs: %v vs %v", i, viaGraph[i], viaArcs[i])
		}
	}
}

func TestKronSet(t *testing.T) {
	got := KronSet([]int64{0, 2}, []int64{1}, 3)
	want := []int64{1, 7}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("KronSet = %v, want %v", got, want)
	}
}

func TestKronPartitionCoversProduct(t *testing.T) {
	pa := [][]int64{{0, 1}, {2}}
	pb := [][]int64{{0}, {1, 2}}
	pc := KronPartition(pa, pb, 3)
	if len(pc) != 4 {
		t.Fatalf("|Π_C| = %d, want 4", len(pc))
	}
	seen := make(map[int64]bool)
	total := 0
	for _, s := range pc {
		for _, v := range s {
			if seen[v] {
				t.Fatalf("vertex %d in two parts", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != 9 {
		t.Errorf("covered %d vertices, want 9", total)
	}
}

// Kronecker product of cliques is Ex. 1's structure check at the core
// level: (K_y + I) ⊗ (K_z + I) = K_{yz} + I.
func TestCliqueProductIsClique(t *testing.T) {
	ky := cliqueWithLoops(3)
	kz := cliqueWithLoops(4)
	c, err := Product(ky, kz)
	if err != nil {
		t.Fatal(err)
	}
	want := cliqueWithLoops(12)
	if !c.Equal(want) {
		t.Error("(K3+I)⊗(K4+I) should be K12+I")
	}
}

func cliqueWithLoops(n int64) *graph.Graph {
	var edges []graph.Edge
	for u := int64(0); u < n; u++ {
		for v := u; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Kronecker products are associative: (A⊗B)⊗C = A⊗(B⊗C), which is what
// makes KronPower's left fold canonical.
func TestProductAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		a := randomGraph(rng, 5, true)
		b := randomGraph(rng, 5, true)
		c := randomGraph(rng, 5, true)
		ab, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		left, err := Product(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Product(b, c)
		if err != nil {
			t.Fatal(err)
		}
		right, err := Product(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !left.Equal(right) {
			t.Fatalf("trial %d: associativity fails", trial)
		}
	}
}

// The identity graph (I_n as a graph: n self loops) is the unit of ⊗ up
// to the index embedding: A ⊗ I₁ = A = I₁ ⊗ A.
func TestProductIdentity(t *testing.T) {
	one, err := graph.New(1, []graph.Edge{{U: 0, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	a := randomGraph(rand.New(rand.NewSource(19)), 8, true)
	l, err := Product(a, one)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Product(one, a)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Equal(a) || !r.Equal(a) {
		t.Fatal("I₁ must be the ⊗ unit")
	}
}

func TestPowerIndexInCore(t *testing.T) {
	px := NewPowerIndex(3, 4)
	if px.NumVertices() != 81 {
		t.Fatalf("3^4 = %d?", px.NumVertices())
	}
	for _, p := range []int64{0, 1, 40, 80} {
		if got := px.Join(px.Split(p)); got != p {
			t.Fatalf("Join(Split(%d)) = %d", p, got)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad power index should panic")
			}
		}()
		NewPowerIndex(0, 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong coord length should panic")
			}
		}()
		px.Join([]int64{1, 2})
	}()
}

func TestStreamProductArcsEarlyStop(t *testing.T) {
	a := randomGraph(rand.New(rand.NewSource(23)), 6, true)
	b := randomGraph(rand.New(rand.NewSource(24)), 6, true)
	if a.NumArcs() == 0 || b.NumArcs() == 0 {
		t.Skip("degenerate sample")
	}
	var seen int
	StreamProductArcs(a.ArcList(), b, func(u, v int64) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("early stop saw %d arcs", seen)
	}
}
