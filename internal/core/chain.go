package core

import (
	"fmt"

	"kronlab/internal/graph"
)

// CheckedMul returns a·b for nonnegative a, b and reports whether the
// product fits in int64. Every closed-form count in a factor chain is a
// product over factors, so a single checked multiply is the primitive
// behind all of them (chain vertex counts, arc counts, the groundtruth
// Power*/Chain* laws).
func CheckedMul(a, b int64) (int64, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b {
		return 0, false
	}
	return p, true
}

// CheckedProduct folds CheckedMul over vals (empty product = 1),
// returning an error naming the offending partial product on overflow.
func CheckedProduct(vals ...int64) (int64, error) {
	out := int64(1)
	for _, v := range vals {
		p, ok := CheckedMul(out, v)
		if !ok {
			return 0, fmt.Errorf("core: product overflows int64 at %d × %d", out, v)
		}
		out = p
	}
	return out, nil
}

// ChainIndex maps between a vertex of A₁⊗A₂⊗…⊗Aₖ and its k factor
// coordinates — the mixed-radix generalization of the two-factor α/β/γ
// maps and of PowerIndex. Vertex p decomposes as p = Σ_d digit[d]·stride[d]
// with stride[d] = Π_{e>d} n_e: the leftmost digit is the outermost
// factor, matching the left-fold associativity of KronPower and
// Chain.Materialize.
type ChainIndex struct {
	dims    []int64 // per-factor vertex counts, leftmost outermost
	strides []int64 // strides[d] = Π_{e>d} dims[e]; strides[k-1] = 1
	n       int64   // Π dims
}

// NewChainIndex builds the index map for per-factor vertex counts dims
// (each ≥ 1). It fails if Π dims overflows int64.
func NewChainIndex(dims []int64) (ChainIndex, error) {
	if len(dims) == 0 {
		return ChainIndex{}, fmt.Errorf("core: chain index needs ≥ 1 factor")
	}
	for d, n := range dims {
		if n <= 0 {
			return ChainIndex{}, fmt.Errorf("core: chain factor %d has nonpositive vertex count %d", d, n)
		}
	}
	strides := make([]int64, len(dims))
	n := int64(1)
	for d := len(dims) - 1; d >= 0; d-- {
		strides[d] = n
		p, ok := CheckedMul(n, dims[d])
		if !ok {
			return ChainIndex{}, fmt.Errorf("core: chain vertex count overflows int64 at factor %d (%d × %d)", d, n, dims[d])
		}
		n = p
	}
	return ChainIndex{dims: append([]int64(nil), dims...), strides: strides, n: n}, nil
}

// MustChainIndex is NewChainIndex panicking on error, for tests and
// literals with known-safe dimensions.
func MustChainIndex(dims ...int64) ChainIndex {
	ci, err := NewChainIndex(dims)
	if err != nil {
		panic(err)
	}
	return ci
}

// K returns the number of factors.
func (ci ChainIndex) K() int { return len(ci.dims) }

// Dims returns the per-factor vertex counts. The slice is shared; do not
// modify.
func (ci ChainIndex) Dims() []int64 { return ci.dims }

// NumVertices returns Π n_d, checked at construction.
func (ci ChainIndex) NumVertices() int64 { return ci.n }

// Stride returns Π_{e>d} n_e, the vertex stride of digit d. For k = 2,
// Stride(0) is the classic block size n_B.
func (ci ChainIndex) Stride(d int) int64 { return ci.strides[d] }

// Digit returns factor coordinate d of product vertex p — the mixed-radix
// generalization of α (d = 0 up to division) and β (d = k−1).
func (ci ChainIndex) Digit(p int64, d int) int64 {
	return (p / ci.strides[d]) % ci.dims[d]
}

// Split returns the k factor coordinates of product vertex p.
func (ci ChainIndex) Split(p int64) []int64 {
	return ci.SplitInto(p, make([]int64, len(ci.dims)))
}

// SplitInto is Split writing into a caller-provided slice of length k.
func (ci ChainIndex) SplitInto(p int64, out []int64) []int64 {
	if len(out) != len(ci.dims) {
		panic(fmt.Sprintf("core: SplitInto got %d-slot slice, want %d", len(out), len(ci.dims)))
	}
	for d := len(ci.dims) - 1; d >= 0; d-- {
		out[d] = p % ci.dims[d]
		p /= ci.dims[d]
	}
	return out
}

// Join inverts Split: p = Σ coords[d]·stride[d].
func (ci ChainIndex) Join(coords []int64) int64 {
	if len(coords) != len(ci.dims) {
		panic(fmt.Sprintf("core: Join got %d coords, want %d", len(coords), len(ci.dims)))
	}
	var p int64
	for d, c := range coords {
		p = p*ci.dims[d] + c
	}
	return p
}

// Chain is an ordered list of Kronecker factors A₁⊗A₂⊗…⊗Aₖ — the
// currency of the generation pipeline. The head factor A₁ keeps the
// two-factor A role (its arcs are the rank-split dimension of a Plan);
// the tail A₂⊗…⊗Aₖ generalizes B and is folded lazily during expansion,
// never materialized. A two-factor product is exactly the k = 2 case.
type Chain struct {
	factors []*graph.Graph
	index   ChainIndex
}

// NewChain validates the factors (k ≥ 1, all non-nil and nonempty) and
// precomputes the mixed-radix index map, failing if the product vertex
// count overflows int64 — so a Chain that constructs is one whose vertex
// space is addressable.
func NewChain(factors ...*graph.Graph) (*Chain, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("core: chain needs ≥ 1 factor")
	}
	dims := make([]int64, len(factors))
	for d, g := range factors {
		if g == nil {
			return nil, fmt.Errorf("core: chain factor %d is nil", d)
		}
		dims[d] = g.NumVertices()
	}
	ci, err := NewChainIndex(dims)
	if err != nil {
		return nil, err
	}
	return &Chain{factors: append([]*graph.Graph(nil), factors...), index: ci}, nil
}

// PowerChain returns the chain A⊗A⊗…⊗A of k copies — A^{⊗k} as a chain,
// so the distributed engine can generate powers without the serial
// KronPower materialization.
func PowerChain(a *graph.Graph, k int) (*Chain, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: PowerChain needs k ≥ 1, got %d", k)
	}
	factors := make([]*graph.Graph, k)
	for i := range factors {
		factors[i] = a
	}
	return NewChain(factors...)
}

// K returns the number of factors.
func (c *Chain) K() int { return len(c.factors) }

// Factors returns the ordered factor list. The slice is shared; do not
// modify.
func (c *Chain) Factors() []*graph.Graph { return c.factors }

// Head returns A₁, the rank-split factor.
func (c *Chain) Head() *graph.Graph { return c.factors[0] }

// Tail returns A₂⊗…⊗Aₖ as a factor list (empty for k = 1).
func (c *Chain) Tail() []*graph.Graph { return c.factors[1:] }

// Index returns the chain's mixed-radix index map.
func (c *Chain) Index() ChainIndex { return c.index }

// NumVertices returns Π n_d, verified at construction not to overflow.
func (c *Chain) NumVertices() int64 { return c.index.NumVertices() }

// NumArcs returns Π arcs_d with overflow checking.
func (c *Chain) NumArcs() (int64, error) {
	arcs := int64(1)
	for d, g := range c.factors {
		p, ok := CheckedMul(arcs, g.NumArcs())
		if !ok {
			return 0, fmt.Errorf("core: chain arc count overflows int64 at factor %d", d)
		}
		arcs = p
	}
	return arcs, nil
}

// NumEdges returns the undirected edge count and the arc count of the
// chain product without generating it — the k-factor form of
// NumProductEdges: arcs and loops both multiply across factors, and a
// product arc is a loop iff every factor arc is a loop.
func (c *Chain) NumEdges() (edges, arcs int64, err error) {
	arcs, err = c.NumArcs()
	if err != nil {
		return 0, 0, err
	}
	loops := int64(1)
	for d, g := range c.factors {
		p, ok := CheckedMul(loops, g.NumSelfLoops())
		if !ok {
			return 0, 0, fmt.Errorf("core: chain loop count overflows int64 at factor %d", d)
		}
		loops = p
	}
	return (arcs + loops) / 2, arcs, nil
}

// WithFullSelfLoops returns the chain (A₁+I)⊗…⊗(Aₖ+I), the k-factor
// form of ProductWithSelfLoops.
func (c *Chain) WithFullSelfLoops() *Chain {
	factors := make([]*graph.Graph, len(c.factors))
	for d, g := range c.factors {
		factors[d] = g.WithFullSelfLoops()
	}
	nc, err := NewChain(factors...)
	if err != nil { // +I changes no dimensions; cannot fail
		panic(err)
	}
	return nc
}

// Arcs enumerates the arcs of the chain product in canonical order —
// factor 1 arcs outermost, factor k arcs innermost, each factor in CSR
// arc order — without materializing anything. For k = 2 this is exactly
// StreamProduct's order. It is the per-arc reference implementation the
// blocked TailCursor path is tested against. Iteration stops early if
// yield returns false.
func (c *Chain) Arcs(yield func(u, v int64) bool) {
	var rec func(d int, u, v int64) bool
	rec = func(d int, u, v int64) bool {
		if d == len(c.factors) {
			return yield(u, v)
		}
		s := c.index.strides[d]
		ok := true
		c.factors[d].Arcs(func(i, j int64) bool {
			ok = rec(d+1, u+i*s, v+j*s)
			return ok
		})
		return ok
	}
	rec(0, 0, 0)
}

// ArcsFrom enumerates the chain's arcs in canonical order starting at
// global arc index offset, without generating the skipped prefix: the
// canonical order is the mixed-radix odometer order over the factors'
// arc lists, so the starting position is located in O(k) (TailCursor.
// SeekTo) and enumeration proceeds from there. ArcsFrom(0, yield) is
// Arcs(yield). It returns the total arc count, erring when that count
// overflows int64 or offset is outside [0, total].
func (c *Chain) ArcsFrom(offset int64, yield func(u, v int64) bool) (int64, error) {
	total, err := c.NumArcs()
	if err != nil {
		return 0, err
	}
	if offset < 0 || offset > total {
		return total, fmt.Errorf("core: arc offset %d out of range [0,%d]", offset, total)
	}
	if offset == total {
		return total, nil
	}
	// A cursor over all k factors enumerates exactly Arcs' order: factor 1
	// outermost, factor k's CSR runs innermost, with the full-chain vertex
	// strides.
	cur := NewTailCursor(c.factors)
	cur.SeekTo(offset)
	block := make([]graph.Edge, 0, 1024)
	for {
		block = cur.ExpandNext(0, 0, block[:0], cap(block))
		if len(block) == 0 {
			return total, nil
		}
		for _, e := range block {
			if !yield(e.U, e.V) {
				return total, nil
			}
		}
	}
}

// Materialize builds the chain product as a Graph, folding left exactly
// like KronPower — the serial reference the distributed chain paths are
// compared against. It is meant for small chains (tests, closed-form
// cross-checks); real generation streams.
func (c *Chain) Materialize() (*graph.Graph, error) {
	arcsTotal, err := c.NumArcs()
	if err != nil {
		return nil, err
	}
	arcs := make([]graph.Edge, 0, arcsTotal)
	c.Arcs(func(u, v int64) bool {
		arcs = append(arcs, graph.Edge{U: u, V: v})
		return true
	})
	return graph.New(c.NumVertices(), arcs)
}

// TailCursor lazily enumerates the composed arcs of a factor list
// T = A₁⊗…⊗A_m in lexicographic CSR order — an odometer over the outer
// factors' arc lists with a run of the innermost factor's CSR ArcSlice
// at each position. It is how the engine folds a chain's tail inside the
// block-expansion kernel without materializing intermediate products:
// the cursor yields tail arcs in the exact order a materialized tail's
// ArcSlice would, so the deterministic per-tile expansion order that
// checkpoints and prefix-dedup recovery key on is preserved at k > 2.
//
// The zero-allocation contract of the k = 2 kernel carries over:
// ExpandNext appends into a caller-owned scratch buffer and the cursor
// itself allocates only at construction.
type TailCursor struct {
	arcs     [][]graph.Edge // per-factor CSR arc slices (shared; read-only)
	strides  []int64        // vertex strides within the tail space
	idx      []int          // odometer over arcs[0..m-2]
	uPre     int64          // Σ_{d<m-1} arcs[d][idx[d]].U·strides[d]
	vPre     int64          // likewise for V
	innerPos int            // position within arcs[m-1]
	done     bool
	total    int64 // Π len(arcs[d])
	nTail    int64 // Π n_d — the composed tail vertex count
}

// NewTailCursor builds a cursor over the given factors (m ≥ 1). The
// total composed arc count must fit in int64 — guaranteed whenever the
// factors come from a validated Plan, whose tile arc counts are checked.
func NewTailCursor(tail []*graph.Graph) *TailCursor {
	if len(tail) == 0 {
		panic("core: TailCursor needs ≥ 1 factor")
	}
	tc := &TailCursor{
		arcs:    make([][]graph.Edge, len(tail)),
		strides: make([]int64, len(tail)),
		idx:     make([]int, len(tail)-1),
		total:   1,
	}
	stride := int64(1)
	for d := len(tail) - 1; d >= 0; d-- {
		tc.arcs[d] = tail[d].ArcSlice()
		tc.strides[d] = stride
		stride *= tail[d].NumVertices()
		tc.total *= int64(len(tc.arcs[d]))
	}
	tc.nTail = stride
	tc.Reset()
	return tc
}

// Total returns the number of composed tail arcs, Π arcs_d.
func (tc *TailCursor) Total() int64 { return tc.total }

// NumVertices returns the tail's composed vertex count, Π n_d.
func (tc *TailCursor) NumVertices() int64 { return tc.nTail }

// Reset rewinds the cursor to the first composed arc. Expansion replay
// after a recovery respawn starts here, making attempt output
// byte-identical.
func (tc *TailCursor) Reset() {
	for d := range tc.idx {
		tc.idx[d] = 0
	}
	tc.innerPos = 0
	tc.done = tc.total == 0
	tc.recomputePrefix()
}

// Seek positions the cursor at composed arc index pos in [0, Total()],
// without enumerating the skipped prefix: the composed order is mixed
// radix (outer odometer digits most significant, the innermost factor's
// arc index least), so locating pos is a constant number of divisions
// per factor — O(k), independent of pos. Seek(0) is Reset; Seek(Total())
// exhausts the cursor. This is the primitive behind resumable streams:
// a rank can start generating mid-tile at exactly the edge a cut stream
// stopped at.
func (tc *TailCursor) SeekTo(pos int64) {
	if pos < 0 || pos > tc.total {
		panic(fmt.Sprintf("core: TailCursor.SeekTo(%d) out of range [0,%d]", pos, tc.total))
	}
	if pos == tc.total {
		tc.done = true
		tc.uPre, tc.vPre = 0, 0
		return
	}
	tc.done = false
	inner := int64(len(tc.arcs[len(tc.arcs)-1]))
	tc.innerPos = int(pos % inner)
	rest := pos / inner
	for d := len(tc.idx) - 1; d >= 0; d-- {
		n := int64(len(tc.arcs[d]))
		tc.idx[d] = int(rest % n)
		rest /= n
	}
	tc.recomputePrefix()
}

func (tc *TailCursor) recomputePrefix() {
	tc.uPre, tc.vPre = 0, 0
	if tc.done {
		return
	}
	for d := range tc.idx {
		a := tc.arcs[d][tc.idx[d]]
		tc.uPre += a.U * tc.strides[d]
		tc.vPre += a.V * tc.strides[d]
	}
}

// advance steps the outer odometer (rightmost digit fastest) after the
// innermost arc list has been exhausted.
func (tc *TailCursor) advance() {
	for d := len(tc.idx) - 1; d >= 0; d-- {
		tc.idx[d]++
		if tc.idx[d] < len(tc.arcs[d]) {
			tc.recomputePrefix()
			return
		}
		tc.idx[d] = 0
	}
	tc.done = true
}

// ExpandNext appends up to max product arcs to out and returns it,
// composing each pending tail arc (tu, tv) with the caller's bases as
// (uBase+tu, vBase+tv). With uBase = aArc.U·n_T and vBase = aArc.V·n_T
// (n_T the tail vertex count) this is exactly ExpandBlock with the
// B-arc block generated on the fly — the chain form of the kernel. With
// bases 0 it yields the raw tail arcs. An empty return means the cursor
// is exhausted; call Reset to rewind.
//
// The inner loop is the same two adds + append as ExpandBlock: the outer
// digits' contribution is prefix-summed into uPre/vPre and only changes
// once per innermost-factor sweep.
func (tc *TailCursor) ExpandNext(uBase, vBase int64, out []graph.Edge, max int) []graph.Edge {
	inner := tc.arcs[len(tc.arcs)-1]
	for !tc.done && len(out) < max {
		u0 := uBase + tc.uPre
		v0 := vBase + tc.vPre
		n := max - len(out)
		if rem := len(inner) - tc.innerPos; rem < n {
			n = rem
		}
		for _, e := range inner[tc.innerPos : tc.innerPos+n] {
			out = append(out, graph.Edge{U: u0 + e.U, V: v0 + e.V})
		}
		tc.innerPos += n
		if tc.innerPos == len(inner) {
			tc.innerPos = 0
			tc.advance()
		}
	}
	return out
}
