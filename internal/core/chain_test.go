package core

import (
	"math/rand"
	"testing"

	"kronlab/internal/graph"
)

// chainOf builds a Chain from factors, failing the test on error.
func chainOf(t *testing.T, factors ...*graph.Graph) *Chain {
	t.Helper()
	c, err := NewChain(factors...)
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	return c
}

func TestChainIndexMatchesPowerIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Int63n(6)
		k := 1 + rng.Intn(5)
		px := NewPowerIndex(n, k)
		dims := make([]int64, k)
		for d := range dims {
			dims[d] = n
		}
		ci, err := NewChainIndex(dims)
		if err != nil {
			t.Fatalf("NewChainIndex(%v): %v", dims, err)
		}
		if ci.NumVertices() != px.NumVertices() {
			t.Fatalf("NumVertices: chain %d, power %d", ci.NumVertices(), px.NumVertices())
		}
		for i := 0; i < 20; i++ {
			p := rng.Int63n(ci.NumVertices())
			cs, ps := ci.Split(p), px.Split(p)
			for d := range cs {
				if cs[d] != ps[d] {
					t.Fatalf("Split(%d): chain %v, power %v", p, cs, ps)
				}
			}
			if got := ci.Join(cs); got != px.Join(ps) || got != p {
				t.Fatalf("Join(Split(%d)) = %d", p, got)
			}
		}
	}
}

func TestChainIndexDigitsAndStrides(t *testing.T) {
	ci := MustChainIndex(3, 4, 5)
	if ci.NumVertices() != 60 {
		t.Fatalf("NumVertices = %d, want 60", ci.NumVertices())
	}
	wantStrides := []int64{20, 5, 1}
	for d, w := range wantStrides {
		if ci.Stride(d) != w {
			t.Fatalf("Stride(%d) = %d, want %d", d, ci.Stride(d), w)
		}
	}
	// p = 2·20 + 3·5 + 4 = 59, the largest vertex.
	for d, w := range []int64{2, 3, 4} {
		if got := ci.Digit(59, d); got != w {
			t.Fatalf("Digit(59, %d) = %d, want %d", d, got, w)
		}
	}
	// k = 2 Digit specializes to α/β.
	two := MustChainIndex(7, 11)
	ix := NewIndex(11)
	for p := int64(0); p < 77; p++ {
		if two.Digit(p, 0) != ix.Alpha(p) || two.Digit(p, 1) != ix.Beta(p) {
			t.Fatalf("Digit(%d) disagrees with α/β", p)
		}
	}
}

func TestChainIndexSplitJoinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(5)
		dims := make([]int64, k)
		for d := range dims {
			dims[d] = 1 + rng.Int63n(9)
		}
		ci, err := NewChainIndex(dims)
		if err != nil {
			t.Fatalf("NewChainIndex(%v): %v", dims, err)
		}
		buf := make([]int64, k)
		for i := 0; i < 50; i++ {
			p := rng.Int63n(ci.NumVertices())
			coords := ci.SplitInto(p, buf)
			for d, c := range coords {
				if c < 0 || c >= dims[d] {
					t.Fatalf("Split(%d) digit %d = %d out of [0,%d)", p, d, c, dims[d])
				}
				if got := ci.Digit(p, d); got != c {
					t.Fatalf("Digit(%d,%d) = %d, Split gave %d", p, d, got, c)
				}
			}
			if got := ci.Join(coords); got != p {
				t.Fatalf("Join(Split(%d)) = %d (dims %v)", p, got, dims)
			}
		}
	}
}

func TestChainIndexOverflow(t *testing.T) {
	if _, err := NewChainIndex([]int64{1 << 32, 1 << 32}); err == nil {
		t.Fatal("want overflow error for 2^32 × 2^32 vertices")
	}
	if _, err := NewChainIndex(nil); err == nil {
		t.Fatal("want error for empty dims")
	}
	if _, err := NewChainIndex([]int64{4, 0}); err == nil {
		t.Fatal("want error for zero dim")
	}
}

func TestCheckedMulAndProduct(t *testing.T) {
	if p, ok := CheckedMul(1<<31, 1<<31); !ok || p != 1<<62 {
		t.Fatalf("CheckedMul(2^31,2^31) = %d,%v", p, ok)
	}
	if _, ok := CheckedMul(1<<32, 1<<32); ok {
		t.Fatal("CheckedMul(2^32,2^32) should overflow")
	}
	if p, ok := CheckedMul(0, 1<<62); !ok || p != 0 {
		t.Fatalf("CheckedMul(0,big) = %d,%v", p, ok)
	}
	if _, ok := CheckedMul(-1, 2); ok {
		t.Fatal("CheckedMul rejects negatives")
	}
	if p, err := CheckedProduct(3, 4, 5); err != nil || p != 60 {
		t.Fatalf("CheckedProduct(3,4,5) = %d,%v", p, err)
	}
	if _, err := CheckedProduct(1<<22, 1<<22, 1<<22); err == nil {
		t.Fatal("CheckedProduct(2^66) should overflow")
	}
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(); err == nil {
		t.Fatal("want error for empty chain")
	}
	g := cliqueWithLoops(3)
	if _, err := NewChain(g, nil, g); err == nil {
		t.Fatal("want error for nil factor")
	}
	if _, err := PowerChain(g, 0); err == nil {
		t.Fatal("want error for k = 0")
	}
}

func TestChainMaterializeMatchesKronPower(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		a := randomGraph(rng, 5, true)
		for k := 1; k <= 3; k++ {
			want, err := KronPower(a, k)
			if err != nil {
				t.Fatalf("KronPower: %v", err)
			}
			ch, err := PowerChain(a, k)
			if err != nil {
				t.Fatalf("PowerChain: %v", err)
			}
			got, err := ch.Materialize()
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d k=%d: chain materialization differs from KronPower", trial, k)
			}
		}
	}
}

func TestChainMaterializeMatchesLeftFold(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		a := randomGraph(rng, 4, true)
		b := randomGraph(rng, 3, false)
		c := randomGraph(rng, 4, true)
		ab, err := Product(a, b)
		if err != nil {
			t.Fatalf("Product(a,b): %v", err)
		}
		want, err := Product(ab, c)
		if err != nil {
			t.Fatalf("Product(ab,c): %v", err)
		}
		got, err := chainOf(t, a, b, c).Materialize()
		if err != nil {
			t.Fatalf("Materialize: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: heterogeneous chain differs from left-fold product", trial)
		}
	}
}

func TestChainArcsOrderMatchesStreamProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomGraph(rng, 5, true)
	b := randomGraph(rng, 4, false)
	var want, got []graph.Edge
	StreamProduct(a, b, func(u, v int64) bool {
		want = append(want, graph.Edge{U: u, V: v})
		return true
	})
	chainOf(t, a, b).Arcs(func(u, v int64) bool {
		got = append(got, graph.Edge{U: u, V: v})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("arc count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arc %d: got %v, want %v (order must match StreamProduct)", i, got[i], want[i])
		}
	}
}

func TestChainArcsEarlyStop(t *testing.T) {
	ch := chainOf(t, cliqueWithLoops(3), cliqueWithLoops(2), cliqueWithLoops(2))
	seen := 0
	ch.Arcs(func(u, v int64) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("early stop saw %d arcs, want 5", seen)
	}
}

func TestChainNumEdgesMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		ch := chainOf(t,
			randomGraph(rng, 4, true),
			randomGraph(rng, 3, trial%2 == 0),
			randomGraph(rng, 3, true))
		g, err := ch.Materialize()
		if err != nil {
			t.Fatalf("Materialize: %v", err)
		}
		edges, arcs, err := ch.NumEdges()
		if err != nil {
			t.Fatalf("NumEdges: %v", err)
		}
		if arcs != g.NumArcs() || edges != g.NumEdges() {
			t.Fatalf("trial %d: closed form edges=%d arcs=%d, materialized edges=%d arcs=%d",
				trial, edges, arcs, g.NumEdges(), g.NumArcs())
		}
	}
}

func TestChainWithFullSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, b := randomGraph(rng, 4, false), randomGraph(rng, 3, false)
	want, err := ProductWithSelfLoops(a, b)
	if err != nil {
		t.Fatalf("ProductWithSelfLoops: %v", err)
	}
	got, err := chainOf(t, a, b).WithFullSelfLoops().Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("chain +I differs from ProductWithSelfLoops")
	}
}

func TestChainNumArcsOverflow(t *testing.T) {
	// A 2-vertex graph with 4 arcs (complete with loops): 4^32 arcs
	// overflows int64 while 2^32 vertices still... does not fit either,
	// so use a 1-vertex loop chain for vertices and check arcs via a
	// factor list that keeps n small: n=2, arcs=4, k=32 → n^32 = 2^64
	// overflows too. Instead: n=2 (2 vertices, 4 arcs), k=31:
	// vertices 2^31 ok, arcs 4^31 = 2^62 ok; k=32 overflows vertices
	// first. Use a 3-vertex, 9-arc factor: n^k = 3^k fits through k=39,
	// arcs 9^k overflows at k=21.
	f := cliqueWithLoops(3)
	ch, err := PowerChain(f, 21)
	if err != nil {
		t.Fatalf("PowerChain: %v", err)
	}
	if _, err := ch.NumArcs(); err == nil {
		t.Fatal("want arc-count overflow error at 9^21")
	}
	if _, _, err := ch.NumEdges(); err == nil {
		t.Fatal("want edge-count overflow error at 9^21")
	}
	if _, err := ch.Materialize(); err == nil {
		t.Fatal("Materialize must refuse an overflowing chain")
	}
}

// tailCursorReference collects composed tail arcs through a materialized
// tail product, the slow oracle for TailCursor.
func tailCursorReference(t *testing.T, tail []*graph.Graph) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	ch := chainOf(t, tail...)
	ch.Arcs(func(u, v int64) bool {
		out = append(out, graph.Edge{U: u, V: v})
		return true
	})
	return out
}

func TestTailCursorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(3)
		tail := make([]*graph.Graph, m)
		for d := range tail {
			tail[d] = randomGraph(rng, 4, d%2 == 0)
		}
		want := tailCursorReference(t, tail)
		tc := NewTailCursor(tail)
		if tc.Total() != int64(len(want)) {
			t.Fatalf("Total = %d, want %d", tc.Total(), len(want))
		}
		for _, batch := range []int{1, 3, 7, 1024} {
			tc.Reset()
			var got []graph.Edge
			buf := make([]graph.Edge, 0, batch)
			for {
				block := tc.ExpandNext(0, 0, buf[:0], batch)
				if len(block) == 0 {
					break
				}
				got = append(got, block...)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d batch %d: %d arcs, want %d", trial, batch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d batch %d arc %d: got %v, want %v", trial, batch, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTailCursorExpandMatchesExpandBlock(t *testing.T) {
	// With a materialized tail, ExpandNext(aU·nT, aV·nT, …) must equal
	// ExpandBlock(aArc, tailArcs, nT, …) — the cursor IS the kernel's
	// B-block, generated on the fly.
	rng := rand.New(rand.NewSource(53))
	tail := []*graph.Graph{randomGraph(rng, 4, true), randomGraph(rng, 3, true)}
	tailG, err := chainOf(t, tail...).Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	nT := tailG.NumVertices()
	aArc := graph.Edge{U: 2, V: 5}
	want := ExpandBlock(aArc, tailG.ArcSlice(), nT, nil)

	tc := NewTailCursor(tail)
	if tc.NumVertices() != nT {
		t.Fatalf("cursor NumVertices = %d, want %d", tc.NumVertices(), nT)
	}
	var got []graph.Edge
	buf := make([]graph.Edge, 0, 5)
	for {
		block := tc.ExpandNext(aArc.U*nT, aArc.V*nT, buf[:0], 5)
		if len(block) == 0 {
			break
		}
		got = append(got, block...)
	}
	if len(got) != len(want) {
		t.Fatalf("%d arcs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arc %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTailCursorEmptyFactor(t *testing.T) {
	empty, err := graph.New(3, nil)
	if err != nil {
		t.Fatalf("graph.New: %v", err)
	}
	tc := NewTailCursor([]*graph.Graph{cliqueWithLoops(2), empty})
	if tc.Total() != 0 {
		t.Fatalf("Total = %d, want 0", tc.Total())
	}
	if block := tc.ExpandNext(0, 0, nil, 16); len(block) != 0 {
		t.Fatalf("empty tail yielded %d arcs", len(block))
	}
}
