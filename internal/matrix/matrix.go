// Package matrix provides small dense integer matrices and vectors used as
// a brute-force oracle for the Kronecker and Hadamard algebra of the paper
// (Prop. 1 and Prop. 2) and for validating ground-truth formulas on tiny
// instances. It is not meant to scale; the product graphs themselves are
// handled by internal/core and internal/graph.
package matrix

import (
	"fmt"

	"kronlab/internal/graph"
)

// Dense is a row-major dense int64 matrix. Entries of adjacency matrices
// are 0/1 but powers and counts exceed 1, so int64 is used throughout.
type Dense struct {
	Rows, Cols int
	data       []int64
}

// NewDense returns a zero Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, data: make([]int64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length.
func FromRows(rows [][]int64) *Dense {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: %d != %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromGraph returns the adjacency matrix of g.
func FromGraph(g *graph.Graph) *Dense {
	n := int(g.NumVertices())
	m := NewDense(n, n)
	g.Arcs(func(u, v int64) bool {
		m.Set(int(u), int(v), 1)
		return true
	})
	return m
}

// ToGraph interprets a square 0/1 matrix as a graph (nonzero = arc).
func (m *Dense) ToGraph() (*graph.Graph, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("matrix: ToGraph on %dx%d non-square", m.Rows, m.Cols)
	}
	var arcs []graph.Edge
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != 0 {
				arcs = append(arcs, graph.Edge{U: int64(i), V: int64(j)})
			}
		}
	}
	return graph.New(int64(m.Rows), arcs)
}

// At returns entry (i, j).
func (m *Dense) At(i, j int) int64 { return m.data[i*m.Cols+j] }

// Set assigns entry (i, j).
func (m *Dense) Set(i, j int, v int64) { m.data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.mustSameShape(b, "Add")
	out := NewDense(m.Rows, m.Cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Dense) Sub(b *Dense) *Dense {
	m.mustSameShape(b, "Sub")
	out := NewDense(m.Rows, m.Cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// Scale returns a·m.
func (m *Dense) Scale(a int64) *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := range m.data {
		out.data[i] = a * m.data[i]
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// Pow returns mᵖ for p ≥ 1 (square matrices only).
func (m *Dense) Pow(p int) *Dense {
	if m.Rows != m.Cols {
		panic("matrix: Pow on non-square matrix")
	}
	if p < 1 {
		panic("matrix: Pow exponent must be ≥ 1")
	}
	out := m.Clone()
	for i := 1; i < p; i++ {
		out = out.Mul(m)
	}
	return out
}

// Kron returns the Kronecker product m ⊗ b (Def. 1).
func (m *Dense) Kron(b *Dense) *Dense {
	out := NewDense(m.Rows*b.Rows, m.Cols*b.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			a := m.At(i, j)
			if a == 0 {
				continue
			}
			for k := 0; k < b.Rows; k++ {
				for l := 0; l < b.Cols; l++ {
					out.Set(i*b.Rows+k, j*b.Cols+l, a*b.At(k, l))
				}
			}
		}
	}
	return out
}

// Hadamard returns the entrywise product m ∘ b (Def. 2).
func (m *Dense) Hadamard(b *Dense) *Dense {
	m.mustSameShape(b, "Hadamard")
	out := NewDense(m.Rows, m.Cols)
	for i := range m.data {
		out.data[i] = m.data[i] * b.data[i]
	}
	return out
}

// Transpose returns mᵗ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Diag returns diag(m) = (I ∘ m)·1, the diagonal as a vector (Def. 4).
func (m *Dense) Diag() []int64 {
	if m.Rows != m.Cols {
		panic("matrix: Diag on non-square matrix")
	}
	d := make([]int64, m.Rows)
	for i := range d {
		d[i] = m.At(i, i)
	}
	return d
}

// DiagMatrix returns D = I ∘ m, the matrix of m's diagonal entries.
func (m *Dense) DiagMatrix() *Dense {
	if m.Rows != m.Cols {
		panic("matrix: DiagMatrix on non-square matrix")
	}
	out := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		out.Set(i, i, m.At(i, i))
	}
	return out
}

// Boolify returns the 0/1 pattern of m (nonzero → 1).
func (m *Dense) Boolify() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.data {
		if v != 0 {
			out.data[i] = 1
		}
	}
	return out
}

// Equal reports whether m and b have identical shape and entries.
func (m *Dense) Equal(b *Dense) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []int64) []int64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("matrix: MulVec length %d != cols %d", len(x), m.Cols))
	}
	out := make([]int64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s int64
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}

func (m *Dense) mustSameShape(b *Dense, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprint(m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Trace returns Σ m[i][i] for square matrices.
func (m *Dense) Trace() int64 {
	if m.Rows != m.Cols {
		panic("matrix: Trace on non-square matrix")
	}
	var s int64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}
