package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randMat builds a random small matrix with entries in [-3, 3].
func randMat(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.Int63n(7)-3)
		}
	}
	return m
}

// randAdj builds a random symmetric 0/1 adjacency matrix.
func randAdj(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if rng.Float64() < 0.4 {
				m.Set(i, j, 1)
				m.Set(j, i, 1)
			}
		}
	}
	return m
}

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 40} }

func TestAtSetClone(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 0 {
		t.Error("Clone must not share storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	FromRows([][]int64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	m := FromRows([][]int64{{1, 2, 0}, {0, 1, 1}, {2, 0, 1}})
	if !m.Mul(id).Equal(m) || !id.Mul(m).Equal(m) {
		t.Error("identity law fails")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]int64{{1, 2}, {3, 4}})
	b := FromRows([][]int64{{5, 6}, {7, 8}})
	want := FromRows([][]int64{{19, 22}, {43, 50}})
	if !a.Mul(b).Equal(want) {
		t.Errorf("Mul = \n%v want \n%v", a.Mul(b), want)
	}
}

func TestPow(t *testing.T) {
	a := FromRows([][]int64{{0, 1}, {1, 0}})
	if !a.Pow(1).Equal(a) {
		t.Error("Pow(1) should be identity operation")
	}
	if !a.Pow(2).Equal(Identity(2)) {
		t.Error("swap² = I")
	}
	if !a.Pow(3).Equal(a) {
		t.Error("swap³ = swap")
	}
}

func TestKronKnown(t *testing.T) {
	// Worked example of Def. 1.
	a := FromRows([][]int64{{1, 2}, {3, 0}})
	b := FromRows([][]int64{{0, 1}, {1, 1}})
	got := a.Kron(b)
	want := FromRows([][]int64{
		{0, 1, 0, 2},
		{1, 1, 2, 2},
		{0, 3, 0, 0},
		{3, 3, 0, 0},
	})
	if !got.Equal(want) {
		t.Errorf("Kron = \n%v want \n%v", got, want)
	}
}

func TestKronIndexFormula(t *testing.T) {
	// (A ⊗ B)[i·nB+k][j·nB+l] == A[i][j]·B[k][l] for random matrices.
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 3, 4)
	b := randMat(rng, 2, 5)
	k := a.Kron(b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for p := 0; p < 2; p++ {
				for q := 0; q < 5; q++ {
					if k.At(i*2+p, j*5+q) != a.At(i, j)*b.At(p, q) {
						t.Fatalf("index law fails at (%d,%d,%d,%d)", i, j, p, q)
					}
				}
			}
		}
	}
}

// Prop. 1(a): scalar multiplication distributes over ⊗.
func TestPropKronScalar(t *testing.T) {
	f := func(seed int64, a1, a2 int8) bool {
		rng := rand.New(rand.NewSource(seed))
		m1, m2 := randMat(rng, 2, 3), randMat(rng, 3, 2)
		s1, s2 := int64(a1%5), int64(a2%5)
		lhs := m1.Kron(m2).Scale(s1 * s2)
		rhs := m1.Scale(s1).Kron(m2.Scale(s2))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 1(b): distributivity of ⊗ over +, both sides.
func TestPropKronDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1, a2 := randMat(rng, 2, 3), randMat(rng, 2, 3)
		a3 := randMat(rng, 3, 2)
		left := a1.Add(a2).Kron(a3).Equal(a1.Kron(a3).Add(a2.Kron(a3)))
		right := a3.Kron(a1.Add(a2)).Equal(a3.Kron(a1).Add(a3.Kron(a2)))
		return left && right
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 1(c): (A₁ ⊗ A₂)ᵗ = A₁ᵗ ⊗ A₂ᵗ.
func TestPropKronTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, 2, 4), randMat(rng, 3, 2)
		return a.Kron(b).Transpose().Equal(a.Transpose().Kron(b.Transpose()))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 1(d): (A₁⊗A₂)(A₃⊗A₄) = (A₁A₃)⊗(A₂A₄) — the mixed-product rule
// every hop/triangle formula in the paper rests on.
func TestPropKronMixedProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1 := randMat(rng, 2, 3)
		a2 := randMat(rng, 4, 2)
		a3 := randMat(rng, 3, 2)
		a4 := randMat(rng, 2, 3)
		lhs := a1.Kron(a2).Mul(a3.Kron(a4))
		rhs := a1.Mul(a3).Kron(a2.Mul(a4))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 2(a): Hadamard commutativity.
func TestPropHadamardCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, 3, 3), randMat(rng, 3, 3)
		return a.Hadamard(b).Equal(b.Hadamard(a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 2(c): Hadamard distributivity over +.
func TestPropHadamardDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1, a2, a3 := randMat(rng, 3, 2), randMat(rng, 3, 2), randMat(rng, 3, 2)
		return a1.Add(a2).Hadamard(a3).Equal(a1.Hadamard(a3).Add(a2.Hadamard(a3)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 2(d): (A₁ ∘ A₂)ᵗ = A₁ᵗ ∘ A₂ᵗ.
func TestPropHadamardTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, 2, 4), randMat(rng, 2, 4)
		return a.Hadamard(b).Transpose().Equal(a.Transpose().Hadamard(b.Transpose()))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 2(e): (A₁⊗A₂) ∘ (A₃⊗A₄) = (A₁∘A₃) ⊗ (A₂∘A₄).
func TestPropHadamardKronDistributivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1, a3 := randMat(rng, 2, 3), randMat(rng, 2, 3)
		a2, a4 := randMat(rng, 3, 2), randMat(rng, 3, 2)
		lhs := a1.Kron(a2).Hadamard(a3.Kron(a4))
		rhs := a1.Hadamard(a3).Kron(a2.Hadamard(a4))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Prop. 2(f): diag(A₁ ⊗ A₂) = diag(A₁) ⊗ diag(A₂).
func TestPropDiagKronDistributivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, 3, 3), randMat(rng, 2, 2)
		return VecEqual(a.Kron(b).Diag(), VecKron(a.Diag(), b.Diag()))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDiagMatrix(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	want := FromRows([][]int64{{1, 0}, {0, 4}})
	if !m.DiagMatrix().Equal(want) {
		t.Error("DiagMatrix wrong")
	}
	// D_A = I ∘ A (Def. 4).
	if !m.DiagMatrix().Equal(Identity(2).Hadamard(m)) {
		t.Error("DiagMatrix must equal I ∘ A")
	}
}

func TestBoolify(t *testing.T) {
	m := FromRows([][]int64{{0, 5}, {-2, 0}})
	want := FromRows([][]int64{{0, 1}, {1, 0}})
	if !m.Boolify().Equal(want) {
		t.Error("Boolify wrong")
	}
}

func TestGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		adj := randAdj(rng, 6)
		g, err := adj.ToGraph()
		if err != nil {
			t.Fatal(err)
		}
		if !FromGraph(g).Equal(adj) {
			t.Fatalf("trial %d: graph↔matrix round trip", trial)
		}
	}
}

func TestToGraphNonSquare(t *testing.T) {
	if _, err := NewDense(2, 3).ToGraph(); err == nil {
		t.Error("expected error for non-square ToGraph")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	got := m.MulVec([]int64{1, 1})
	if !VecEqual(got, []int64{3, 7}) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { NewDense(2, 2).Add(NewDense(3, 3)) },
		func() { NewDense(2, 2).Hadamard(NewDense(2, 3)) },
		func() { NewDense(2, 3).Mul(NewDense(2, 3)) },
		func() { NewDense(2, 3).Diag() },
		func() { NewDense(2, 3).Pow(2) },
		func() { NewDense(2, 2).MulVec([]int64{1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestVectorHelpers(t *testing.T) {
	if !VecEqual(Ones(3), []int64{1, 1, 1}) {
		t.Error("Ones wrong")
	}
	if !VecEqual(Unit(3, 1), []int64{0, 1, 0}) {
		t.Error("Unit wrong")
	}
	if Dot([]int64{1, 2, 3}, []int64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !VecEqual(VecKron([]int64{1, 2}, []int64{3, 4}), []int64{3, 4, 6, 8}) {
		t.Error("VecKron wrong")
	}
	if !VecEqual(VecScale(2, []int64{1, 2}), []int64{2, 4}) {
		t.Error("VecScale wrong")
	}
	if !VecEqual(VecAdd([]int64{1, 2}, []int64{3, 4}), []int64{4, 6}) {
		t.Error("VecAdd wrong")
	}
	if VecSum([]int64{1, 2, 3}) != 6 {
		t.Error("VecSum wrong")
	}
	if !VecEqual(Indicator(4, []int64{1, 3}), []int64{0, 1, 0, 1}) {
		t.Error("Indicator wrong")
	}
}

// Degree via matrix: d = A·1 matches graph degrees.
func TestDegreeViaMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	adj := randAdj(rng, 8)
	g, err := adj.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(adj.MulVec(Ones(8)), g.Degrees()) {
		t.Error("A·1 must equal degree vector")
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	if m.Trace() != 5 {
		t.Errorf("Trace = %d", m.Trace())
	}
	defer func() {
		if recover() == nil {
			t.Error("non-square Trace should panic")
		}
	}()
	NewDense(2, 3).Trace()
}

// Closed-walk trace law: tr((A⊗B)^k) = tr(A^k)·tr(B^k) — the spectral
// exploitability the paper warns benchmark designers about.
func TestTraceKroneckerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		a, b := randAdj(rng, 5), randAdj(rng, 4)
		for k := 1; k <= 4; k++ {
			lhs := a.Kron(b).Pow(k).Trace()
			rhs := a.Pow(k).Trace() * b.Pow(k).Trace()
			if lhs != rhs {
				t.Fatalf("trial %d k=%d: tr law %d != %d", trial, k, lhs, rhs)
			}
		}
	}
}
