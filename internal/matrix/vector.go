package matrix

import "fmt"

// Ones returns the all-ones vector 1 of length n (Def. 3).
func Ones(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Unit returns the standard basis vector e_i of length n.
func Unit(n, i int) []int64 {
	v := make([]int64, n)
	v[i] = 1
	return v
}

// Dot returns xᵗ·y.
func Dot(x, y []int64) int64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s int64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// VecKron returns the Kronecker product of vectors x ⊗ y:
// (x⊗y)[i·len(y)+k] = x[i]·y[k].
func VecKron(x, y []int64) []int64 {
	out := make([]int64, len(x)*len(y))
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		base := i * len(y)
		for k, yv := range y {
			out[base+k] = xv * yv
		}
	}
	return out
}

// VecScale returns a·x.
func VecScale(a int64, x []int64) []int64 {
	out := make([]int64, len(x))
	for i, v := range x {
		out[i] = a * v
	}
	return out
}

// VecAdd returns x + y.
func VecAdd(x, y []int64) []int64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: VecAdd length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]int64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// VecEqual reports elementwise equality.
func VecEqual(x, y []int64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// VecSum returns Σ x[i].
func VecSum(x []int64) int64 {
	var s int64
	for _, v := range x {
		s += v
	}
	return s
}

// Indicator returns 1_S ∈ {0,1}ⁿ with ones at the positions in S (Def. 13).
func Indicator(n int, s []int64) []int64 {
	v := make([]int64, n)
	for _, i := range s {
		v[i] = 1
	}
	return v
}
