package analytics

import (
	"math"

	"kronlab/internal/graph"
)

// DegreeAssortativity returns Newman's degree assortativity coefficient r
// (the paper's ref [20]), the Pearson correlation of remaining degrees
// across edges. Thm. 2's discussion uses it: factors with negative
// assortativity (hubs attached to leaves) produce product edges whose
// clustering scaling factor φ collapses toward 0. Self loops are
// excluded. Returns NaN when the degree variance over edge endpoints is
// zero (e.g. regular graphs).
func DegreeAssortativity(g *graph.Graph) float64 {
	var m float64 // arc count (ordered endpoint pairs)
	var sumJK, sumJ, sumJ2 float64
	g.Arcs(func(u, v int64) bool {
		if u == v {
			return true
		}
		j := float64(g.Degree(u) - 1) // remaining degree
		k := float64(g.Degree(v) - 1)
		m++
		sumJK += j * k
		sumJ += j // symmetric arcs make Σj == Σk
		sumJ2 += j * j
		return true
	})
	if m == 0 {
		return math.NaN()
	}
	mean := sumJ / m
	num := sumJK/m - mean*mean
	den := sumJ2/m - mean*mean
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
