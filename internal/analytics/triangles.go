package analytics

import "kronlab/internal/graph"

// TriangleStats holds exact triangle participation counts for an
// undirected graph, following the paper's Defs. 5 and 6: self loops never
// participate in triangles (the definitions use A − A∘I), so loops are
// ignored structurally and loop arcs carry an edge count of 0.
type TriangleStats struct {
	// Vertex[v] is t_v, the number of undirected triangles incident to v:
	// t = ½·diag((A − A∘I)³).
	Vertex []int64
	// Arc[idx] is Δ_uv for the arc at CSR position idx of the analyzed
	// graph: Δ = (A − A∘I) ∘ (A − A∘I)². Symmetric in (u,v).
	Arc []int64
	// Global is τ, the total number of distinct triangles: Σ_v t_v / 3.
	Global int64
}

// Triangles computes exact triangle participation at vertices and arcs by
// sorted adjacency intersection. Cost is O(Σ_arcs min(d_u, d_v)), fine for
// the factor graphs and the test-scale products used as oracles.
func Triangles(g *graph.Graph) *TriangleStats {
	n := g.NumVertices()
	ts := &TriangleStats{
		Vertex: make([]int64, n),
		Arc:    make([]int64, g.NumArcs()),
	}
	arcIdx := int64(-1)
	g.Arcs(func(u, v int64) bool {
		arcIdx++
		if u == v {
			return true // loops carry no triangles
		}
		ts.Arc[arcIdx] = commonNeighbors(g, u, v)
		return true
	})
	// t_v = ½ Σ_{(v,w) arcs} Δ_vw: each triangle at v is counted on the
	// two arcs from v it spans.
	arcIdx = -1
	g.Arcs(func(u, v int64) bool {
		arcIdx++
		ts.Vertex[u] += ts.Arc[arcIdx]
		return true
	})
	var total int64
	for v := int64(0); v < n; v++ {
		ts.Vertex[v] /= 2
		total += ts.Vertex[v]
	}
	ts.Global = total / 3
	return ts
}

// commonNeighbors counts w ∉ {u, v} adjacent to both u and v, by merging
// the two sorted adjacency rows.
func commonNeighbors(g *graph.Graph, u, v int64) int64 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if w := a[i]; w != u && w != v {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// EdgeTriangles returns Δ_uv for a single arc (u, v), or 0 for a loop.
func EdgeTriangles(g *graph.Graph, u, v int64) int64 {
	if u == v {
		return 0
	}
	return commonNeighbors(g, u, v)
}

// GlobalTriangles returns τ, the number of distinct triangles in g.
func GlobalTriangles(g *graph.Graph) int64 {
	return Triangles(g).Global
}
