package analytics

import (
	"runtime"
	"sync"
	"sync/atomic"

	"kronlab/internal/graph"
)

// Parallel variants of the embarrassingly parallel oracles. The exact
// analytics are the expensive side of every formula-vs-oracle comparison
// in this reproduction; spreading the per-source BFS sweeps and per-vertex
// neighborhood intersections over a worker pool keeps the oracles usable
// at larger scales. workers ≤ 0 selects GOMAXPROCS.

func workerCount(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// parallelFor runs body(v) for v in [0, n) over a worker pool, handing
// out indices via an atomic cursor (cheap dynamic load balancing, since
// per-vertex costs are highly skewed on scale-free graphs).
func parallelFor(n int64, workers int, body func(v int64)) {
	workers = workerCount(workers)
	if workers > int(n) {
		workers = int(n)
	}
	if workers <= 1 {
		for v := int64(0); v < n; v++ {
			body(v)
		}
		return
	}
	var cursor int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := atomic.AddInt64(&cursor, 1)
				if v >= n {
					return
				}
				body(v)
			}
		}()
	}
	wg.Wait()
}

// EccentricitiesParallel computes ε(v) for every vertex with one BFS per
// vertex spread across workers. Matches Eccentricities exactly.
func EccentricitiesParallel(g *graph.Graph, workers int) []int64 {
	out := make([]int64, g.NumVertices())
	parallelFor(g.NumVertices(), workers, func(v int64) {
		out[v] = Eccentricity(g, v)
	})
	return out
}

// ClosenessAllParallel computes ζ(v) for every vertex in parallel.
func ClosenessAllParallel(g *graph.Graph, workers int) []float64 {
	out := make([]float64, g.NumVertices())
	parallelFor(g.NumVertices(), workers, func(v int64) {
		out[v] = Closeness(g, v)
	})
	return out
}

// TrianglesParallel computes the same TriangleStats as Triangles with the
// per-arc intersections spread across workers. Arc counts are written to
// disjoint slots (one per arc) and vertex counts reduced afterwards, so
// no locking is needed.
func TrianglesParallel(g *graph.Graph, workers int) *TriangleStats {
	n := g.NumVertices()
	ts := &TriangleStats{
		Vertex: make([]int64, n),
		Arc:    make([]int64, g.NumArcs()),
	}
	// Partition by source vertex: each worker fills the arc slots of its
	// own rows.
	parallelFor(n, workers, func(u int64) {
		row := g.Neighbors(u)
		if len(row) == 0 {
			return
		}
		base := g.ArcIndex(u, row[0])
		for off, v := range row {
			if u == v {
				continue
			}
			ts.Arc[base+int64(off)] = commonNeighbors(g, u, v)
		}
	})
	idx := int64(-1)
	g.Arcs(func(u, v int64) bool {
		idx++
		ts.Vertex[u] += ts.Arc[idx]
		return true
	})
	var total int64
	for v := int64(0); v < n; v++ {
		ts.Vertex[v] /= 2
		total += ts.Vertex[v]
	}
	ts.Global = total / 3
	return ts
}
