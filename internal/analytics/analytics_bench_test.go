package analytics

import (
	"math/rand"
	"testing"

	"kronlab/internal/graph"
)

func benchGraph(b *testing.B, n, m int64, seed int64) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: rng.Int63n(n), V: rng.Int63n(n)}
	}
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b, 20_000, 100_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, int64(i)%g.NumVertices())
	}
}

func BenchmarkTrianglesExact(b *testing.B) {
	g := benchGraph(b, 5_000, 50_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Triangles(g)
	}
}

func BenchmarkDirectedTriangles(b *testing.B) {
	g := benchGraph(b, 3_000, 30_000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DirectedTriangles(g)
	}
}

func BenchmarkVertexClustering(b *testing.B) {
	g := benchGraph(b, 5_000, 50_000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VertexClustering(g)
	}
}

func BenchmarkCloseness(b *testing.B) {
	g := benchGraph(b, 20_000, 100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closeness(g, int64(i)%g.NumVertices())
	}
}

func BenchmarkBetweenness(b *testing.B) {
	g := benchGraph(b, 500, 2_500, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Betweenness(g)
	}
}

func BenchmarkApproxEccentricities(b *testing.B) {
	g := benchGraph(b, 20_000, 100_000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxEccentricities(g, 8)
	}
}

func BenchmarkCommunity(b *testing.B) {
	g := benchGraph(b, 20_000, 100_000, 8)
	set := make([]int64, 2_000)
	for i := range set {
		set[i] = int64(i) * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Community(g, set)
	}
}
