package analytics

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram is a sparse value → count table over int64 data, used for
// degree, eccentricity and triangle distributions.
type Histogram struct {
	counts map[int64]int64
	total  int64
}

// NewHistogram builds a histogram of the given values.
func NewHistogram(values []int64) *Histogram {
	h := &Histogram{counts: make(map[int64]int64)}
	for _, v := range values {
		h.counts[v]++
		h.total++
	}
	return h
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int64) int64 { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Keys returns the distinct observed values in ascending order.
func (h *Histogram) Keys() []int64 {
	keys := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Min returns the smallest observed value (0 if empty).
func (h *Histogram) Min() int64 {
	keys := h.Keys()
	if len(keys) == 0 {
		return 0
	}
	return keys[0]
}

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() int64 {
	keys := h.Keys()
	if len(keys) == 0 {
		return 0
	}
	return keys[len(keys)-1]
}

// Equal reports whether two histograms have identical counts.
func (h *Histogram) Equal(o *Histogram) bool {
	if len(h.counts) != len(o.counts) || h.total != o.total {
		return false
	}
	for k, c := range h.counts {
		if o.counts[k] != c {
			return false
		}
	}
	return true
}

// Render draws a fixed-width ASCII bar chart of the histogram, one row per
// distinct value, bars scaled to width characters. Used by cmd/experiments
// to reproduce the paper's figures as text.
func (h *Histogram) Render(width int) string {
	keys := h.Keys()
	var maxCount int64 = 1
	for _, k := range keys {
		if h.counts[k] > maxCount {
			maxCount = h.counts[k]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		c := h.counts[k]
		bar := int(float64(width) * float64(c) / float64(maxCount))
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%8d | %-*s %d\n", k, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
