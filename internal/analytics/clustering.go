package analytics

import (
	"math"

	"kronlab/internal/graph"
)

// VertexClustering returns the clustering coefficient at every vertex
// (Def. 7): η(i) = 2·t_i / (d_i·(d_i − 1)). Entries with d_i < 2 are NaN
// (undefined). The caller should pass a loop-free graph, matching the
// hypothesis of Thm. 1; self loops would inflate d_i without adding
// triangles.
func VertexClustering(g *graph.Graph) []float64 {
	ts := Triangles(g)
	out := make([]float64, g.NumVertices())
	for v := range out {
		d := g.Degree(int64(v))
		if d < 2 {
			out[v] = math.NaN()
			continue
		}
		out[v] = 2 * float64(ts.Vertex[v]) / float64(d*(d-1))
	}
	return out
}

// EdgeClustering returns the clustering coefficient for every arc
// (Def. 7): ξ(i,j) = Δ_ij / (min{d_i, d_j} − 1), aligned with CSR arc
// indices. Loop arcs and arcs with min degree < 2 are NaN.
func EdgeClustering(g *graph.Graph) []float64 {
	ts := Triangles(g)
	out := make([]float64, g.NumArcs())
	idx := int64(-1)
	g.Arcs(func(u, v int64) bool {
		idx++
		if u == v {
			out[idx] = math.NaN()
			return true
		}
		du, dv := g.Degree(u), g.Degree(v)
		m := du
		if dv < m {
			m = dv
		}
		if m < 2 {
			out[idx] = math.NaN()
			return true
		}
		out[idx] = float64(ts.Arc[idx]) / float64(m-1)
		return true
	})
	return out
}

// MeanClustering returns the average vertex clustering coefficient over
// vertices where it is defined, or NaN if none.
func MeanClustering(g *graph.Graph) float64 {
	cc := VertexClustering(g)
	var s float64
	var n int
	for _, c := range cc {
		if !math.IsNaN(c) {
			s += c
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
