package analytics

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kronlab/internal/graph"
	"kronlab/internal/matrix"
)

func randomGraph(rng *rand.Rand, maxN int64, loops bool) *graph.Graph {
	n := 1 + rng.Int63n(maxN)
	m := rng.Int63n(3*n + 1)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if !loops && u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func mustUnd(t *testing.T, n int64, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.NewUndirected(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func triangle(t *testing.T) *graph.Graph {
	return mustUnd(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
}

func path(t *testing.T, n int64) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := int64(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	return mustUnd(t, n, edges)
}

// ---------- BFS / hops ----------

func TestBFSPath(t *testing.T) {
	g := path(t, 5)
	d := BFS(g, 0)
	for v := int64(0); v < 5; v++ {
		if d[v] != v {
			t.Errorf("dist(0,%d) = %d, want %d", v, d[v], v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}})
	d := BFS(g, 0)
	if d[2] != Unreachable || d[3] != Unreachable {
		t.Errorf("expected unreachable, got %v", d)
	}
}

func TestHopsDiagonalConvention(t *testing.T) {
	// Def. 9: hops(i,i) = 1 with a self loop, 2 with a neighbor,
	// unreachable if isolated.
	g := mustUnd(t, 3, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}})
	if h := Hops(g, 0); h[0] != 1 {
		t.Errorf("loop vertex: hops(0,0) = %d, want 1", h[0])
	}
	if h := Hops(g, 1); h[1] != 2 {
		t.Errorf("loop-free vertex with neighbor: hops(1,1) = %d, want 2", h[1])
	}
	if h := Hops(g, 2); h[2] != Unreachable {
		t.Errorf("isolated: hops(2,2) = %d, want unreachable", h[2])
	}
}

// Oracle: hops(i,j) = min{h ≥ 1 : (Aʰ)_ij > 0} via matrix powers.
func TestHopsMatchesMatrixPowerOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 8, true)
		n := int(g.NumVertices())
		adj := matrix.FromGraph(g)
		pow := adj.Clone()
		oracle := make([][]int64, n)
		for i := range oracle {
			oracle[i] = make([]int64, n)
			for j := range oracle[i] {
				oracle[i][j] = Unreachable
			}
		}
		for h := int64(1); h <= int64(n)+2; h++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if oracle[i][j] == Unreachable && pow.At(i, j) > 0 {
						oracle[i][j] = h
					}
				}
			}
			pow = pow.Mul(adj)
		}
		rows := AllPairsHops(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rows[i][int64(j)] != oracle[i][j] {
					t.Fatalf("trial %d: hops(%d,%d) = %d, oracle %d",
						trial, i, j, rows[i][j], oracle[i][j])
				}
			}
		}
	}
}

func TestHopsSymmetricOnUndirected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12, true)
		rows := AllPairsHops(g)
		for i := int64(0); i < g.NumVertices(); i++ {
			for j := int64(0); j < g.NumVertices(); j++ {
				if rows[i][j] != rows[j][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ---------- eccentricity / diameter / closeness ----------

func TestEccentricityPath(t *testing.T) {
	g := path(t, 5)
	ecc := Eccentricities(g)
	want := []int64{4, 3, 2, 3, 4}
	for v := range want {
		if ecc[v] != want[v] {
			t.Errorf("ecc(%d) = %d, want %d", v, ecc[v], want[v])
		}
	}
	if Diameter(g) != 4 {
		t.Errorf("diameter = %d, want 4", Diameter(g))
	}
	if Radius(g) != 2 {
		t.Errorf("radius = %d, want 2", Radius(g))
	}
}

func TestEccentricityDisconnected(t *testing.T) {
	g := mustUnd(t, 3, []graph.Edge{{U: 0, V: 1}})
	if Eccentricity(g, 0) != Unreachable {
		t.Error("ecc must be unreachable on disconnected graph")
	}
	if Diameter(g) != Unreachable || Radius(g) != Unreachable {
		t.Error("diameter/radius must be unreachable on disconnected graph")
	}
}

func TestDiameterEmpty(t *testing.T) {
	g, _ := graph.New(0, nil)
	if Diameter(g) != Unreachable {
		t.Error("empty graph diameter should be unreachable")
	}
}

func TestClosenessTriangleWithLoops(t *testing.T) {
	// Triangle with full self loops: hops(i,i)=1, hops(i,j)=1 → ζ = 3.
	g := triangle(t).WithFullSelfLoops()
	for v := int64(0); v < 3; v++ {
		if z := Closeness(g, v); math.Abs(z-3) > 1e-12 {
			t.Errorf("ζ(%d) = %v, want 3", v, z)
		}
	}
}

func TestClosenessPath(t *testing.T) {
	// P3 without loops: from vertex 0, hops = (2, 1, 2) → ζ = 1/2+1+1/2 = 2.
	g := path(t, 3)
	if z := Closeness(g, 0); math.Abs(z-2) > 1e-12 {
		t.Errorf("ζ(0) = %v, want 2", z)
	}
	// Center: hops = (1, 2, 1) → 1 + 1/2 + 1 = 2.5.
	if z := Closeness(g, 1); math.Abs(z-2.5) > 1e-12 {
		t.Errorf("ζ(1) = %v, want 2.5", z)
	}
}

func TestHopHistogram(t *testing.T) {
	row := []int64{1, 2, 2, 3, Unreachable, 1}
	h := HopHistogram(row, 3)
	if h[1] != 2 || h[2] != 2 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
	// Values above maxH are dropped.
	h2 := HopHistogram([]int64{5}, 3)
	if h2[1]+h2[2]+h2[3] != 0 {
		t.Error("out-of-range value leaked into histogram")
	}
}

// ---------- triangles ----------

// Oracle test for Def. 5/6: t = ½·diag((A−D)³), Δ = (A−D) ∘ (A−D)².
func TestTrianglesMatchMatrixOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 10, true)
		n := int(g.NumVertices())
		adj := matrix.FromGraph(g)
		noDiag := adj.Sub(adj.DiagMatrix())
		cube := noDiag.Pow(3)
		ts := Triangles(g)
		for v := 0; v < n; v++ {
			if ts.Vertex[v] != cube.At(v, v)/2 {
				t.Fatalf("trial %d: t_%d = %d, oracle %d", trial, v, ts.Vertex[v], cube.At(v, v)/2)
			}
		}
		deltaM := noDiag.Hadamard(noDiag.Pow(2))
		idx := int64(-1)
		g.Arcs(func(u, v int64) bool {
			idx++
			if ts.Arc[idx] != deltaM.At(int(u), int(v)) {
				t.Fatalf("trial %d: Δ(%d,%d) = %d, oracle %d",
					trial, u, v, ts.Arc[idx], deltaM.At(int(u), int(v)))
			}
			return true
		})
	}
}

func TestTrianglesKnownGraphs(t *testing.T) {
	// Triangle: every vertex in 1, every edge in 1, global 1.
	ts := Triangles(triangle(t))
	for v, tv := range ts.Vertex {
		if tv != 1 {
			t.Errorf("triangle: t_%d = %d", v, tv)
		}
	}
	if ts.Global != 1 {
		t.Errorf("triangle: τ = %d", ts.Global)
	}
	// K4: t_v = 3, Δ_e = 2, τ = 4.
	k4 := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	ts4 := Triangles(k4)
	if ts4.Global != 4 {
		t.Errorf("K4: τ = %d, want 4", ts4.Global)
	}
	for v, tv := range ts4.Vertex {
		if tv != 3 {
			t.Errorf("K4: t_%d = %d, want 3", v, tv)
		}
	}
	for i, d := range ts4.Arc {
		if d != 2 {
			t.Errorf("K4: Δ arc %d = %d, want 2", i, d)
		}
	}
	// Path has no triangles.
	if GlobalTriangles(path(t, 6)) != 0 {
		t.Error("path must have no triangles")
	}
}

func TestSelfLoopsDoNotCreateTriangles(t *testing.T) {
	g := triangle(t)
	gl := g.WithFullSelfLoops()
	ts, tsl := Triangles(g), Triangles(gl)
	for v := range ts.Vertex {
		if ts.Vertex[v] != tsl.Vertex[v] {
			t.Errorf("loops changed t_%d: %d → %d", v, ts.Vertex[v], tsl.Vertex[v])
		}
	}
	if tsl.Global != ts.Global {
		t.Errorf("loops changed τ: %d → %d", ts.Global, tsl.Global)
	}
}

func TestEdgeTrianglesSingle(t *testing.T) {
	g := triangle(t)
	if EdgeTriangles(g, 0, 1) != 1 {
		t.Error("Δ(0,1) on triangle should be 1")
	}
	if EdgeTriangles(g, 0, 0) != 0 {
		t.Error("loop Δ must be 0")
	}
}

// Property: Σ_v t_v = 3τ and Σ_arcs Δ = 6τ (each triangle on 3 vertices
// and 3 undirected edges = 6 arcs).
func TestPropertyTriangleSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 15, true)
		ts := Triangles(g)
		var vs, as int64
		for _, x := range ts.Vertex {
			vs += x
		}
		for _, x := range ts.Arc {
			as += x
		}
		return vs == 3*ts.Global && as == 6*ts.Global
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// ---------- clustering ----------

func TestClusteringKnown(t *testing.T) {
	// Triangle: η = 1 everywhere, ξ = 1 on every edge.
	cc := VertexClustering(triangle(t))
	for v, c := range cc {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("triangle η(%d) = %v", v, c)
		}
	}
	ec := EdgeClustering(triangle(t))
	for i, c := range ec {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("triangle ξ arc %d = %v", i, c)
		}
	}
	// Star: center has η = 0; leaves have degree 1 → NaN.
	star := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	sc := VertexClustering(star)
	if sc[0] != 0 {
		t.Errorf("star center η = %v, want 0", sc[0])
	}
	for v := 1; v < 4; v++ {
		if !math.IsNaN(sc[v]) {
			t.Errorf("star leaf η(%d) = %v, want NaN", v, sc[v])
		}
	}
}

func TestMeanClustering(t *testing.T) {
	if m := MeanClustering(triangle(t)); math.Abs(m-1) > 1e-12 {
		t.Errorf("triangle mean clustering = %v", m)
	}
	// All-NaN case: single edge.
	g := mustUnd(t, 2, []graph.Edge{{U: 0, V: 1}})
	if !math.IsNaN(MeanClustering(g)) {
		t.Error("mean clustering of K2 should be NaN")
	}
}

func TestClusteringBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12, false)
		for _, c := range VertexClustering(g) {
			if !math.IsNaN(c) && (c < 0 || c > 1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// ---------- communities ----------

func TestCommunityKnown(t *testing.T) {
	// Two triangles joined by one edge.
	g := mustUnd(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		{U: 2, V: 3},
	})
	s := Community(g, []int64{0, 1, 2})
	if s.MIn != 3 || s.MOut != 1 {
		t.Errorf("m_in=%d m_out=%d, want 3,1", s.MIn, s.MOut)
	}
	if math.Abs(s.RhoIn-1) > 1e-12 {
		t.Errorf("ρ_in = %v, want 1", s.RhoIn)
	}
	if math.Abs(s.RhoOut-1.0/9) > 1e-12 {
		t.Errorf("ρ_out = %v, want 1/9", s.RhoOut)
	}
}

func TestCommunityIgnoresSelfLoops(t *testing.T) {
	g := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 0}, {U: 2, V: 2}})
	s := Community(g, []int64{0, 1})
	if s.MIn != 1 || s.MOut != 0 {
		t.Errorf("loops leaked into community counts: %+v", s)
	}
}

// Property: Σ_S m_in(S) + ½·Σ_S m_out(S) = m (loop-free edges) for any
// partition.
func TestPropertyCommunityEdgeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 14, false)
		n := g.NumVertices()
		// Random 3-way partition.
		parts := make([][]int64, 3)
		for v := int64(0); v < n; v++ {
			b := rng.Intn(3)
			parts[b] = append(parts[b], v)
		}
		var mIn, mOut int64
		for _, s := range Communities(g, parts) {
			mIn += s.MIn
			mOut += s.MOut
		}
		return mIn+mOut/2 == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsPartition(t *testing.T) {
	g := path(t, 4)
	if !IsPartition(g, [][]int64{{0, 1}, {2, 3}}) {
		t.Error("valid partition rejected")
	}
	if IsPartition(g, [][]int64{{0, 1}, {1, 2, 3}}) {
		t.Error("overlapping partition accepted")
	}
	if IsPartition(g, [][]int64{{0, 1}, {3}}) {
		t.Error("non-covering partition accepted")
	}
	if IsPartition(g, [][]int64{{0, 1, 2, 3, 4}}) {
		t.Error("out-of-range partition accepted")
	}
}

// ---------- histogram ----------

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{3, 1, 3, 3, 2})
	if h.Total() != 5 || h.Count(3) != 3 || h.Count(1) != 1 || h.Count(9) != 0 {
		t.Errorf("histogram counts wrong: %v", h.Keys())
	}
	if h.Min() != 1 || h.Max() != 3 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("keys = %v", keys)
	}
	if !h.Equal(NewHistogram([]int64{1, 2, 3, 3, 3})) {
		t.Error("order must not matter")
	}
	if h.Equal(NewHistogram([]int64{1, 2, 3})) {
		t.Error("different histograms compare equal")
	}
	if h.Render(10) == "" {
		t.Error("Render should produce output")
	}
	empty := NewHistogram(nil)
	if empty.Min() != 0 || empty.Max() != 0 || empty.Render(5) != "" {
		t.Error("empty histogram edge cases")
	}
}

// ---------- betweenness ----------

func TestBetweennessKnown(t *testing.T) {
	// Path 0-1-2: vertex 1 lies on the two ordered shortest paths
	// (0→2, 2→0) → bc(1) = 2; endpoints 0.
	g := path(t, 3)
	bc := Betweenness(g)
	if bc[0] != 0 || bc[2] != 0 {
		t.Errorf("endpoints: %v", bc)
	}
	if math.Abs(bc[1]-2) > 1e-12 {
		t.Errorf("bc(1) = %v, want 2", bc[1])
	}
	// Star with 3 leaves: center on all 3·2 ordered leaf pairs.
	star := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	bcs := Betweenness(star)
	if math.Abs(bcs[0]-6) > 1e-12 {
		t.Errorf("star center bc = %v, want 6", bcs[0])
	}
	// Clique: nobody is intermediate.
	k4 := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	for v, b := range Betweenness(k4) {
		if b != 0 {
			t.Errorf("K4 bc(%d) = %v", v, b)
		}
	}
}

func TestBetweennessSplitPaths(t *testing.T) {
	// 4-cycle: two shortest paths between opposite corners, each middle
	// vertex carries half of each of the 2 ordered opposite pairs → 1.
	c4 := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	for v, b := range Betweenness(c4) {
		if math.Abs(b-1) > 1e-12 {
			t.Errorf("C4 bc(%d) = %v, want 1", v, b)
		}
	}
}

func TestBetweennessIgnoresSelfLoops(t *testing.T) {
	g := path(t, 3)
	gl := g.WithFullSelfLoops()
	b1, b2 := Betweenness(g), Betweenness(gl)
	for v := range b1 {
		if math.Abs(b1[v]-b2[v]) > 1e-12 {
			t.Errorf("loops changed bc(%d): %v → %v", v, b1[v], b2[v])
		}
	}
}

// Sanity on random graphs: total betweenness equals Σ over ordered pairs
// of (path length − 1) when shortest paths are unique... in general
// Σ_v bc(v) = Σ_{s≠t, connected} (hops(s,t) − 1) regardless of path
// multiplicity.
func TestBetweennessSumIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 12, false)
		bc := Betweenness(g)
		var total float64
		for _, b := range bc {
			total += b
		}
		var want float64
		n := g.NumVertices()
		for s := int64(0); s < n; s++ {
			d := BFS(g, s)
			for t2 := int64(0); t2 < n; t2++ {
				if t2 != s && d[t2] > 0 {
					want += float64(d[t2] - 1)
				}
			}
		}
		if math.Abs(total-want) > 1e-6 {
			t.Fatalf("trial %d: Σbc = %v, identity gives %v", trial, total, want)
		}
	}
}

// ---------- approximate eccentricity ----------

func TestApproxEccentricitiesLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 25, false)
		exact := Eccentricities(g)
		est, sweeps := ApproxEccentricities(g, 4)
		if sweeps < 1 || sweeps > 4 {
			t.Fatalf("sweeps = %d", sweeps)
		}
		for v := range est {
			if exact[v] == Unreachable {
				continue
			}
			if est[v] != Unreachable && est[v] > exact[v] {
				t.Fatalf("trial %d: estimate %d exceeds exact %d at %d",
					trial, est[v], exact[v], v)
			}
		}
	}
}

func TestApproxEccentricitiesExactOnPath(t *testing.T) {
	// On a path, two sweeps from the endpoints give exact eccentricities.
	g := path(t, 9)
	est, _ := ApproxEccentricities(g, 3)
	exact := Eccentricities(g)
	fe, _ := EccentricityFidelity(est, exact)
	if fe != 1 {
		t.Errorf("path fidelity = %v, want exact everywhere (est %v, exact %v)", fe, est, exact)
	}
}

func TestApproxEccentricitiesEdgeCases(t *testing.T) {
	empty, _ := graph.New(0, nil)
	est, sweeps := ApproxEccentricities(empty, 3)
	if len(est) != 0 || sweeps != 0 {
		t.Error("empty graph should do nothing")
	}
	g := path(t, 4)
	est, sweeps = ApproxEccentricities(g, 0)
	if sweeps != 0 || est[0] != Unreachable {
		t.Error("k=0 should do nothing")
	}
}

func TestEccentricityFidelity(t *testing.T) {
	est := []int64{3, 4, 2, Unreachable}
	exact := []int64{3, 5, 4, 7}
	fe, f1 := EccentricityFidelity(est, exact)
	if math.Abs(fe-1.0/3) > 1e-12 || math.Abs(f1-1.0/3) > 1e-12 {
		t.Errorf("fidelity = (%v, %v), want (1/3, 1/3)", fe, f1)
	}
	fe, f1 = EccentricityFidelity(nil, nil)
	if fe != 0 || f1 != 0 {
		t.Error("empty fidelity should be (0,0)")
	}
}

// ---------- assortativity ----------

func TestDegreeAssortativityKnown(t *testing.T) {
	// A star is perfectly disassortative: r = -1.
	star := mustUnd(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	if r := DegreeAssortativity(star); math.Abs(r+1) > 1e-12 {
		t.Errorf("star r = %v, want -1", r)
	}
	// Regular graphs have zero variance → NaN.
	if r := DegreeAssortativity(triangle(t)); !math.IsNaN(r) {
		t.Errorf("triangle r = %v, want NaN", r)
	}
	// Edgeless → NaN.
	bare, _ := graph.New(3, nil)
	if !math.IsNaN(DegreeAssortativity(bare)) {
		t.Error("edgeless r should be NaN")
	}
}

func TestDegreeAssortativityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 20, false)
		r := DegreeAssortativity(g)
		if !math.IsNaN(r) && (r < -1-1e-9 || r > 1+1e-9) {
			t.Fatalf("trial %d: r = %v outside [-1,1]", trial, r)
		}
	}
}

func TestDegreeAssortativityIgnoresLoops(t *testing.T) {
	star := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	r1 := DegreeAssortativity(star)
	// Loops change degrees, so compare against a graph where only loop
	// ARCS are added but the remaining-degree change is what it is; the
	// test just asserts loop arcs themselves are skipped (finite result).
	r2 := DegreeAssortativity(star.WithFullSelfLoops())
	if math.IsNaN(r1) || math.IsNaN(r2) {
		t.Errorf("unexpected NaN: %v %v", r1, r2)
	}
}

func TestIsBipartite(t *testing.T) {
	if !IsBipartite(path(t, 5)) {
		t.Error("path must be bipartite")
	}
	if IsBipartite(triangle(t)) {
		t.Error("triangle must not be bipartite")
	}
	loop := mustUnd(t, 2, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 1}})
	if IsBipartite(loop) {
		t.Error("self loop must break bipartiteness")
	}
	// Disconnected: bipartite iff every component is.
	two := mustUnd(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2}})
	if IsBipartite(two) {
		t.Error("component with triangle must break bipartiteness")
	}
	empty, _ := graph.New(0, nil)
	if !IsBipartite(empty) {
		t.Error("empty graph is vacuously bipartite")
	}
}

// ---------- k-core ----------

// bruteCore computes core numbers by repeated peeling per k — the slow
// oracle for CoreNumbers.
func bruteCore(g *graph.Graph) []int64 {
	n := g.NumVertices()
	core := make([]int64, n)
	for k := int64(1); ; k++ {
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		deg := func(v int64) int64 {
			var d int64
			for _, w := range g.Neighbors(v) {
				if w != v && alive[w] {
					d++
				}
			}
			return d
		}
		for changed := true; changed; {
			changed = false
			for v := int64(0); v < n; v++ {
				if alive[v] && deg(v) < k {
					alive[v] = false
					changed = true
				}
			}
		}
		any := false
		for v := int64(0); v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestCoreNumbersKnown(t *testing.T) {
	// K4 plus a pendant: clique vertices core 3, pendant core 1.
	g := mustUnd(t, 5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 3, V: 4},
	})
	core := CoreNumbers(g)
	want := []int64{3, 3, 3, 3, 1}
	for v := range want {
		if core[v] != want[v] {
			t.Errorf("core(%d) = %d, want %d", v, core[v], want[v])
		}
	}
	if Degeneracy(g) != 3 {
		t.Errorf("degeneracy = %d, want 3", Degeneracy(g))
	}
	if CoreNumbers(path(t, 6))[2] != 1 {
		t.Error("path core numbers should be 1")
	}
	empty, _ := graph.New(0, nil)
	if CoreNumbers(empty) != nil {
		t.Error("empty graph core should be nil")
	}
}

func TestCoreNumbersMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 18, false)
		fast := CoreNumbers(g)
		slow := bruteCore(g)
		for v := range fast {
			if fast[v] != slow[v] {
				t.Fatalf("trial %d: core(%d) = %d, oracle %d", trial, v, fast[v], slow[v])
			}
		}
	}
}

// ---------- parallel variants ----------

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 30, true)
		for _, workers := range []int{0, 1, 3, 16} {
			serialE := Eccentricities(g)
			if got := EccentricitiesParallel(g, workers); !reflect.DeepEqual(got, serialE) {
				t.Fatalf("trial %d workers %d: parallel eccentricities differ", trial, workers)
			}
			serialC := ClosenessAll(g)
			gotC := ClosenessAllParallel(g, workers)
			for v := range serialC {
				if math.Abs(serialC[v]-gotC[v]) > 1e-12 {
					t.Fatalf("trial %d workers %d: parallel closeness differs at %d", trial, workers, v)
				}
			}
			serialT := Triangles(g)
			gotT := TrianglesParallel(g, workers)
			if gotT.Global != serialT.Global ||
				!reflect.DeepEqual(gotT.Vertex, serialT.Vertex) ||
				!reflect.DeepEqual(gotT.Arc, serialT.Arc) {
				t.Fatalf("trial %d workers %d: parallel triangles differ", trial, workers)
			}
		}
	}
}

func TestParallelEmptyGraph(t *testing.T) {
	g, _ := graph.New(0, nil)
	if len(EccentricitiesParallel(g, 4)) != 0 {
		t.Error("empty graph should yield empty result")
	}
	if TrianglesParallel(g, 4).Global != 0 {
		t.Error("empty graph should have 0 triangles")
	}
}

func TestEigenvectorCentralityKnown(t *testing.T) {
	// K4: Perron vector uniform, λ = 3.
	k4 := mustUnd(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	vec, lam := EigenvectorCentrality(k4, 200)
	if math.Abs(lam-3) > 1e-9 {
		t.Errorf("K4 λ = %v, want 3", lam)
	}
	for v, x := range vec {
		if math.Abs(x-0.5) > 1e-9 {
			t.Errorf("K4 x(%d) = %v, want 0.5", v, x)
		}
	}
	// Star: center dominates; λ = √(n−1).
	star := mustUnd(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	vec, lam = EigenvectorCentrality(star, 400)
	if math.Abs(lam-2) > 1e-6 {
		t.Errorf("star λ = %v, want 2", lam)
	}
	if vec[0] <= vec[1] {
		t.Error("star center must dominate leaves")
	}
	// Edge cases.
	empty, _ := graph.New(0, nil)
	if v, _ := EigenvectorCentrality(empty, 5); v != nil {
		t.Error("empty graph should return nil")
	}
	bare, _ := graph.New(3, nil)
	if _, lam := EigenvectorCentrality(bare, 5); lam != 0 {
		t.Error("edgeless λ should be 0")
	}
}
