package analytics

import "kronlab/internal/graph"

// Betweenness computes exact betweenness centrality for every vertex with
// Brandes' algorithm (the paper's ref [24]), O(n·m) for unweighted
// graphs. The paper lists betweenness among the distance-based metrics
// that motivate ground-truth formulas but derives no Kronecker law for
// it; kronlab provides the exact oracle so users can study products
// empirically (and tests document that no naive product law holds).
//
// Scores use the standard convention: each ordered pair (s, t), s ≠ t,
// contributes the fraction of shortest s–t paths through v; for
// undirected graphs every unordered pair is therefore counted twice.
// Self loops never lie on shortest paths and are ignored.
func Betweenness(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	dist := make([]int64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int64, n)
	stack := make([]int64, 0, n)
	queue := make([]int64, 0, n)

	for s := int64(0); s < n; s++ {
		for i := int64(0); i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		stack = stack[:0]
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if w == v {
					continue
				}
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}
