// Package analytics implements exact graph analytics by direct
// computation: BFS hop distances, eccentricity, closeness centrality,
// diameter, exact per-vertex and per-edge triangle counts, clustering
// coefficients, community edge counts and densities, and histograms.
//
// These serve two roles in the reproduction: (1) they are run on the small
// factors A and B to obtain the inputs of the Kronecker ground-truth
// formulas, and (2) they are run on the materialized product C as the
// oracle the formulas are validated against.
package analytics

import "kronlab/internal/graph"

// Unreachable marks vertex pairs with no connecting walk in hop vectors.
const Unreachable = int64(-1)

// BFS returns the standard BFS distance from src to every vertex, with
// dist[src] = 0 and Unreachable (-1) for vertices in other components.
func BFS(g *graph.Graph, src int64) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int64, 0, 64)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Hops returns the paper's hop counts from src (Def. 9):
// hops(i,j) = min { h ≥ 1 : (A^h)_ij > 0 }.
//
// For i ≠ j this is the BFS distance. For the diagonal it is the length of
// the shortest closed walk at src: 1 if src has a self loop, 2 if src has
// any neighbor, and Unreachable for an isolated vertex. Under the
// theorems' hypothesis of full self loops, hops(i,i) = 1 always.
func Hops(g *graph.Graph, src int64) []int64 {
	h := BFS(g, src)
	switch {
	case g.HasSelfLoop(src):
		h[src] = 1
	case g.Degree(src) > 0:
		h[src] = 2
	default:
		h[src] = Unreachable
	}
	return h
}

// AllPairsHops returns the full hop-count matrix as n row vectors. Cost is
// O(n·(n+arcs)); intended for the small factors and small test products.
func AllPairsHops(g *graph.Graph) [][]int64 {
	n := g.NumVertices()
	rows := make([][]int64, n)
	for v := int64(0); v < n; v++ {
		rows[v] = Hops(g, v)
	}
	return rows
}

// IsBipartite reports whether g is 2-colorable, treating arcs as
// undirected. A self loop makes a graph non-bipartite (an odd closed
// walk). Needed by Weichsel's connectivity theorem for Kronecker
// products (the paper's ref [1]).
func IsBipartite(g *graph.Graph) bool {
	n := g.NumVertices()
	color := make([]int8, n) // 0 unvisited, 1/2 the two sides
	var queue []int64
	for s := int64(0); s < n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if w == v {
					return false // loop = odd cycle
				}
				if color[w] == 0 {
					color[w] = 3 - color[v]
					queue = append(queue, w)
				} else if color[w] == color[v] {
					return false
				}
			}
		}
	}
	return true
}
