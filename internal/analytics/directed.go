package analytics

import "kronlab/internal/graph"

// Directed analytics. The paper builds on [11], which extends the
// triangle ground-truth formulas to "the many types of directed graphs";
// these are the exact directed counterparts used to validate the directed
// Kronecker laws in groundtruth. All functions treat the graph exactly as
// stored (arcs are directed) and ignore self loops structurally.

// OutDegrees returns the out-degree (row-sum) vector.
func OutDegrees(g *graph.Graph) []int64 { return g.Degrees() }

// InDegrees returns the in-degree (column-sum) vector.
func InDegrees(g *graph.Graph) []int64 {
	in := make([]int64, g.NumVertices())
	g.Arcs(func(u, v int64) bool {
		in[v]++
		return true
	})
	return in
}

// DirectedTriangleStats holds exact directed triangle counts.
type DirectedTriangleStats struct {
	// CycleVertex[i] counts directed 3-cycles i→j→k→i through i, i.e.
	// diag(A³)_i for loop-free A. A 3-cycle contributes 1 at each of its
	// three vertices; if both orientations exist they count separately.
	CycleVertex []int64
	// CycleGlobal is the number of directed 3-cycles: trace(A³)/3.
	CycleGlobal int64
	// TransArc[idx] counts, for the arc (i,k) at CSR position idx, the
	// directed 2-paths i→j→k it transitively closes: (A∘A²) at (i,k).
	TransArc []int64
	// TransGlobal is the total number of transitive triads:
	// Σ (A∘A²) = 1ᵗ(A∘A²)1.
	TransGlobal int64
}

// DirectedTriangles computes exact directed cycle and transitive triangle
// statistics by wedge enumeration: O(Σ_i Σ_{j∈N⁺(i)} d⁺_j) plus arc
// lookups.
func DirectedTriangles(g *graph.Graph) *DirectedTriangleStats {
	n := g.NumVertices()
	st := &DirectedTriangleStats{
		CycleVertex: make([]int64, n),
		TransArc:    make([]int64, g.NumArcs()),
	}
	// paths2[i→k] = (A²)_ik is needed per arc; compute per source row to
	// bound memory: for source i, walk j ∈ N⁺(i), k ∈ N⁺(j).
	counts := make(map[int64]int64)
	for i := int64(0); i < n; i++ {
		clear(counts)
		for _, j := range g.Neighbors(i) {
			if j == i {
				continue
			}
			for _, k := range g.Neighbors(j) {
				if k == j {
					continue
				}
				counts[k]++
			}
		}
		// Cycle closes with an arc (k, i), k ≠ i (counts[i] itself holds
		// i→j→i round trips, which are 2-cycles, not triangles).
		var cyc int64
		for k, c := range counts {
			if k != i && g.HasArc(k, i) {
				cyc += c
			}
		}
		st.CycleVertex[i] = cyc
		// Transitive closure via each outgoing arc (i,k), k ≠ i.
		for _, k := range g.Neighbors(i) {
			if k == i {
				continue
			}
			if c := counts[k]; c > 0 {
				st.TransArc[g.ArcIndex(i, k)] = c
				st.TransGlobal += c
			}
		}
	}
	var trace int64
	for _, c := range st.CycleVertex {
		trace += c
	}
	st.CycleGlobal = trace / 3
	return st
}

// Reciprocity returns the number of reciprocal (mutual) arc pairs — arcs
// (u,v), u≠v, whose reverse also exists, counted once per unordered pair
// — and the number of one-way arcs. Together with DirectedTriangles these
// cover the directed-graph taxonomy of the paper's predecessor [11]:
// the mutual pattern is A ∘ Aᵗ and the one-way pattern A − A∘Aᵗ.
func Reciprocity(g *graph.Graph) (mutual, oneWay int64) {
	g.Arcs(func(u, v int64) bool {
		if u == v {
			return true
		}
		if g.HasArc(v, u) {
			if u < v { // count each mutual pair once
				mutual++
			}
		} else {
			oneWay++
		}
		return true
	})
	return mutual, oneWay
}
