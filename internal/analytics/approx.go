package analytics

import "kronlab/internal/graph"

// ApproxEccentricities estimates ε(v) for every vertex from k landmark
// BFS sweeps, the style of estimator behind the paper's Fig. 1 caption
// ("30% of vertices may be estimating a value 1 greater than actual
// eccentricity"). Landmarks are chosen by the double-sweep heuristic:
// the first landmark is the max-degree vertex, each next is the vertex
// farthest from all previous landmarks. The estimate is the landmark
// lower bound
//
//	ε̂(v) = max_s hops(v, s) ≤ ε(v),
//
// which is exact whenever some landmark realizes v's eccentricity —
// typically for the vast majority of vertices of small-world graphs with
// few landmarks. Returns the estimates and the number of sweeps used.
// Unreachable estimates mark vertices disconnected from every landmark.
func ApproxEccentricities(g *graph.Graph, k int) ([]int64, int) {
	n := g.NumVertices()
	est := make([]int64, n)
	for i := range est {
		est[i] = Unreachable
	}
	if n == 0 || k < 1 {
		return est, 0
	}
	landmark := int64(0)
	for v := int64(1); v < n; v++ {
		if g.Degree(v) > g.Degree(landmark) {
			landmark = v
		}
	}
	used := make(map[int64]bool, k)
	sweeps := 0
	for s := 0; s < k; s++ {
		used[landmark] = true
		h := Hops(g, landmark)
		sweeps++
		var next int64 = -1
		for v := int64(0); v < n; v++ {
			if h[v] == Unreachable {
				continue
			}
			if h[v] > est[v] {
				est[v] = h[v]
			}
			// Next landmark: the farthest not-yet-used vertex under the
			// current estimates (ties toward low degree, which tends to
			// sit on the periphery).
			if used[v] {
				continue
			}
			if next == -1 || est[v] > est[next] ||
				(est[v] == est[next] && g.Degree(v) < g.Degree(next)) {
				next = v
			}
		}
		if next == -1 {
			break
		}
		landmark = next
	}
	return est, sweeps
}

// EccentricityFidelity compares an estimate vector against exact
// eccentricities and returns the fractions that are exact and off by
// exactly one — the quantities the paper's Fig. 1 caption reports.
// Unreachable entries in either vector are skipped.
func EccentricityFidelity(est, exact []int64) (fracExact, fracOffByOne float64) {
	var total, same, off1 int64
	for i := range est {
		if est[i] == Unreachable || exact[i] == Unreachable {
			continue
		}
		total++
		switch exact[i] - est[i] {
		case 0:
			same++
		case 1, -1:
			off1++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(same) / float64(total), float64(off1) / float64(total)
}
