package analytics

import (
	"math"

	"kronlab/internal/graph"
)

// EigenvectorCentrality computes the Perron eigenvector of the adjacency
// matrix, normalized to unit Euclidean length, plus the dominant
// eigenvalue estimate. Power iteration runs on the shifted operator
// A + I, which has the same Perron vector as A but breaks the ±λ
// eigenvalue tie of bipartite graphs (where the unshifted iteration
// oscillates forever); λ is reported for A itself. Eigenvector centrality
// is the one distance-free centrality in the paper's intro taxonomy with
// an *exact* Kronecker law — see groundtruth.EigenvectorCentralityKron.
func EigenvectorCentrality(g *graph.Graph, iters int) (vec []float64, lambda float64) {
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	y := make([]float64, n)
	edgeless := true
	g.Arcs(func(u, v int64) bool {
		edgeless = false
		return false
	})
	if edgeless {
		return x, 0
	}
	for it := 0; it < iters; it++ {
		copy(y, x) // the +I shift
		g.Arcs(func(u, v int64) bool {
			y[u] += x[v]
			return true
		})
		var norm float64
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		var dot float64
		for i := range x {
			dot += x[i] * y[i]
		}
		lambda = dot - 1 // Rayleigh quotient of A+I, shifted back
		for i := range y {
			y[i] /= norm
		}
		x, y = y, x
	}
	return x, lambda
}
