package analytics

import "kronlab/internal/graph"

// CoreNumbers computes the k-core decomposition: core[v] is the largest k
// such that v belongs to a subgraph of minimum degree k. Computed with
// the linear-time peeling algorithm (bucket queue over degrees). Self
// loops contribute 1 to the degree, consistent with Graph.Degree. Part of
// the "local topological features" the paper's introduction motivates
// decorating benchmark graphs with.
func CoreNumbers(g *graph.Graph) []int64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	deg := g.Degrees()
	maxDeg := int64(0)
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int64, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := int64(1); d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int64, n)  // position of v in vert
	vert := make([]int64, n) // vertices sorted by current degree
	next := append([]int64(nil), binStart[:maxDeg+1]...)
	for v := int64(0); v < n; v++ {
		pos[v] = next[deg[v]]
		vert[pos[v]] = v
		next[deg[v]]++
	}
	core := append([]int64(nil), deg...)
	for i := int64(0); i < n; i++ {
		v := vert[i]
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			if core[u] > core[v] {
				// Move u one bucket down: swap with first vertex of its
				// bucket, then shrink the bucket.
				du := core[u]
				pu := pos[u]
				pw := binStart[du]
				w := vert[pw]
				if u != w {
					vert[pu], vert[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				binStart[du]++
				core[u]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph degeneracy: max_v core(v).
func Degeneracy(g *graph.Graph) int64 {
	var d int64
	for _, c := range CoreNumbers(g) {
		if c > d {
			d = c
		}
	}
	return d
}
