package analytics

import "kronlab/internal/graph"

// Eccentricity returns ε(src) = max_j hops(src, j) over reachable j
// (Def. 11). If any vertex is unreachable from src it returns Unreachable,
// mirroring the convention that eccentricity is infinite on disconnected
// graphs.
func Eccentricity(g *graph.Graph, src int64) int64 {
	h := Hops(g, src)
	var ecc int64
	for _, d := range h {
		if d == Unreachable {
			return Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Eccentricities returns ε(v) for every vertex by running a BFS from each.
func Eccentricities(g *graph.Graph) []int64 {
	n := g.NumVertices()
	out := make([]int64, n)
	for v := int64(0); v < n; v++ {
		out[v] = Eccentricity(g, v)
	}
	return out
}

// Diameter returns diam(G) = max_v ε(v) (Def. 10), or Unreachable for a
// disconnected or empty graph.
func Diameter(g *graph.Graph) int64 {
	if g.NumVertices() == 0 {
		return Unreachable
	}
	var d int64
	for v := int64(0); v < g.NumVertices(); v++ {
		e := Eccentricity(g, v)
		if e == Unreachable {
			return Unreachable
		}
		if e > d {
			d = e
		}
	}
	return d
}

// Radius returns min_v ε(v), or Unreachable for a disconnected graph.
func Radius(g *graph.Graph) int64 {
	if g.NumVertices() == 0 {
		return Unreachable
	}
	r := int64(-1)
	for v := int64(0); v < g.NumVertices(); v++ {
		e := Eccentricity(g, v)
		if e == Unreachable {
			return Unreachable
		}
		if r == -1 || e < r {
			r = e
		}
	}
	return r
}

// Closeness returns ζ(src) = Σ_j 1/hops(src, j) (Def. 12), summing over
// reachable j only (unreachable vertices contribute 0, the 1/∞ limit).
// Note the sum includes j = src via hops(src,src) ∈ {1,2}.
func Closeness(g *graph.Graph, src int64) float64 {
	h := Hops(g, src)
	var s float64
	for _, d := range h {
		if d != Unreachable {
			s += 1 / float64(d)
		}
	}
	return s
}

// ClosenessAll returns ζ(v) for every vertex.
func ClosenessAll(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	for v := int64(0); v < n; v++ {
		out[v] = Closeness(g, v)
	}
	return out
}

// HopHistogram returns, for the row hops(src, ·), the count of vertices at
// each hop value h ∈ [1, maxH]; index 0 is unused. Unreachable entries are
// dropped. This is the compressed representation used by the paper's
// efficient closeness formula (Sec. V-B).
func HopHistogram(row []int64, maxH int64) []int64 {
	hist := make([]int64, maxH+1)
	for _, d := range row {
		if d == Unreachable {
			continue
		}
		if d >= 1 && d <= maxH {
			hist[d]++
		}
	}
	return hist
}
