package analytics

import "kronlab/internal/graph"

// CommunityStats holds internal/external edge counts and densities for a
// vertex set S (Def. 13). Counts ignore self loops, matching the paper's
// use of C − I_C in Thm. 6.
type CommunityStats struct {
	Size     int64   // |S|
	MIn      int64   // m_in(S): undirected edges with both endpoints in S
	MOut     int64   // m_out(S): arcs from S to V∖S
	RhoIn    float64 // 2·m_in / (|S|·(|S|−1)), 0 when |S| < 2
	RhoOut   float64 // m_out / (|S|·(n−|S|)), 0 when S is everything or empty
	Vertices []int64 // the set S as given
}

// Community computes internal/external edge counts and densities of the
// vertex set s in g. Cost is O(Σ_{v∈S} d_v).
func Community(g *graph.Graph, s []int64) CommunityStats {
	in := make(map[int64]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	var arcsInside, arcsOut int64
	for _, v := range s {
		for _, w := range g.Neighbors(v) {
			if w == v {
				continue // self loops excluded (C − I_C)
			}
			if in[w] {
				arcsInside++
			} else {
				arcsOut++
			}
		}
	}
	cs := CommunityStats{
		Size:     int64(len(s)),
		MIn:      arcsInside / 2,
		MOut:     arcsOut,
		Vertices: s,
	}
	n := g.NumVertices()
	if cs.Size >= 2 {
		cs.RhoIn = 2 * float64(cs.MIn) / float64(cs.Size*(cs.Size-1))
	}
	if cs.Size >= 1 && cs.Size < n {
		cs.RhoOut = float64(cs.MOut) / float64(cs.Size*(n-cs.Size))
	}
	return cs
}

// Communities computes CommunityStats for every set of a partition.
func Communities(g *graph.Graph, partition [][]int64) []CommunityStats {
	out := make([]CommunityStats, len(partition))
	for i, s := range partition {
		out[i] = Community(g, s)
	}
	return out
}

// IsPartition reports whether the sets cover every vertex of g exactly
// once (Def. 15).
func IsPartition(g *graph.Graph, partition [][]int64) bool {
	seen := make([]bool, g.NumVertices())
	var covered int64
	for _, s := range partition {
		for _, v := range s {
			if v < 0 || v >= g.NumVertices() || seen[v] {
				return false
			}
			seen[v] = true
			covered++
		}
	}
	return covered == g.NumVertices()
}
