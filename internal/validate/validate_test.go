package validate

import (
	"strings"
	"testing"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

func TestRunPassesOnCorrectProduct(t *testing.T) {
	a := gen.PrefAttach(12, 2, 1)
	b := gen.ER(10, 0.4, 2)
	c, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(a, b, c, Options{Samples: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("correct product failed validation:\n%s", rep)
	}
	if len(rep.Checks) < 5 {
		t.Errorf("expected ≥5 checks, got %d", len(rep.Checks))
	}
}

func TestRunPassesWithSelfLoopsAndCommunities(t *testing.T) {
	a, pa := gen.SBM(gen.SBMParams{BlockSizes: gen.EqualBlocks(2, 8), PIn: 0.6, POut: 0.1, Seed: 3})
	c, err := core.ProductWithSelfLoops(a, a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(a, a, c, Options{
		SelfLoops: true, Samples: 16,
		PartitionA: pa, PartitionB: pa,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("looped product failed validation:\n%s", rep)
	}
	found := false
	for _, ch := range rep.Checks {
		if strings.Contains(ch.Name, "communities") {
			found = true
		}
	}
	if !found {
		t.Error("community check missing")
	}
}

// The whole point: a single perturbed edge must trip the battery.
func TestRunCatchesSingleEdgePerturbations(t *testing.T) {
	a := gen.PrefAttach(10, 2, 5)
	b := gen.ER(8, 0.5, 6)
	c, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"edge removed": c.FilterArcs(func(u, v int64) bool {
			e := c.EdgeList()[3]
			return !(u == e.U && v == e.V) && !(u == e.V && v == e.U)
		}),
		"edge added": mustAddEdge(t, c),
	}
	for name, bad := range cases {
		rep, err := Run(a, b, bad, Options{Samples: 64})
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Errorf("%s: validation passed on a corrupted product:\n%s", name, rep)
		}
	}
}

func mustAddEdge(t *testing.T, c *graph.Graph) *graph.Graph {
	t.Helper()
	// Find a non-edge (u,v), u≠v, and add it.
	n := c.NumVertices()
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !c.HasArc(u, v) {
				arcs := append(c.ArcList(), graph.Edge{U: u, V: v}, graph.Edge{U: v, V: u})
				g, err := graph.New(n, arcs)
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
		}
	}
	t.Fatal("product is complete; cannot add an edge")
	return nil
}

func TestRunCatchesWrongVertexCount(t *testing.T) {
	a := gen.Ring(5)
	b := gen.Ring(4)
	wrong, _ := graph.New(7, nil)
	rep, err := Run(a, b, wrong, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("wrong vertex count passed")
	}
	if len(rep.Failures()) == 0 {
		t.Error("Failures() empty on failing report")
	}
}

func TestRunOptionValidation(t *testing.T) {
	a := gen.Ring(4).WithFullSelfLoops()
	if _, err := Run(a, a, a, Options{SelfLoops: true}); err == nil {
		t.Error("looped input factors with SelfLoops mode should error")
	}
	bare := gen.Ring(4)
	c, _ := core.Product(bare, bare)
	if _, err := Run(bare, bare, c, Options{PartitionA: [][]int64{{0}}, PartitionB: [][]int64{{0}}}); err == nil {
		t.Error("community checks without SelfLoops should error")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Checks: []Check{{"x", "1", "2", false}, {"y", "1", "1", true}}}
	s := rep.String()
	if !strings.Contains(s, "FAIL") || !strings.Contains(s, "PASS") {
		t.Errorf("report rendering: %q", s)
	}
}
