// Package validate packages the paper's central use case — validating a
// graph system's output at scales where no trusted implementation exists
// — as a reusable check battery. Given the two factors and a claimed
// product graph (e.g. produced by the system under test), Run executes a
// configurable set of ground-truth checks: global counts, degree
// histogram, sampled per-vertex triangle counts, sampled hop distances
// and eccentricities, community counts under a Kronecker partition, and
// Weichsel connectivity. Every check compares a Kronecker formula against
// a measurement on the claimed product, so a single wrong edge is
// overwhelmingly likely to trip at least one check.
package validate

import (
	"fmt"
	"math/rand"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
)

// Check is one named validation outcome.
type Check struct {
	Name     string
	Expected string
	Actual   string
	OK       bool
}

// Report is the outcome of a validation Run.
type Report struct {
	Checks []Check
}

// OK reports whether every check passed.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Failures returns the failed checks.
func (r *Report) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// String renders a human-readable summary.
func (r *Report) String() string {
	s := ""
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		s += fmt.Sprintf("%-4s %-28s expected %s, got %s\n", mark, c.Name, c.Expected, c.Actual)
	}
	return s
}

// Options configures a validation run.
type Options struct {
	// SelfLoops asserts the claimed product is (A+I) ⊗ (B+I) rather than
	// A ⊗ B; triangle checks then use the Cor. 1 formulas and distance
	// checks are enabled (their hypothesis requires the loops).
	SelfLoops bool
	// Samples is the number of random vertices (and vertex pairs) to
	// spot-check for per-vertex/per-pair quantities. Default 64.
	Samples int
	// Seed drives sample selection. A fixed default keeps reports
	// reproducible.
	Seed int64
	// PartitionA/PartitionB, when both non-nil, enable the Thm. 6
	// community checks over the full Kronecker partition.
	PartitionA, PartitionB [][]int64
	// SkipDistances disables the BFS-based hop/eccentricity spot checks
	// (which cost O(samples·(n_C+m_C))).
	SkipDistances bool
}

// Run validates the claimed product c against factors a and b.
func Run(a, b, c *graph.Graph, opts Options) (*Report, error) {
	if opts.Samples <= 0 {
		opts.Samples = 64
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &Report{}
	add := func(name string, expected, actual any) {
		e, g := fmt.Sprint(expected), fmt.Sprint(actual)
		rep.Checks = append(rep.Checks, Check{name, e, g, e == g})
	}

	fa, fb := groundtruth.NewFactor(a), groundtruth.NewFactor(b)
	effA, effB := a, b
	if opts.SelfLoops {
		if a.NumSelfLoops() != 0 || b.NumSelfLoops() != 0 {
			return nil, fmt.Errorf("validate: SelfLoops mode needs loop-free input factors")
		}
		effA, effB = a.WithFullSelfLoops(), b.WithFullSelfLoops()
	}
	feA, feB := groundtruth.NewFactor(effA), groundtruth.NewFactor(effB)
	ix := core.NewIndex(fb.N())

	// Global counts.
	add("vertices", groundtruth.NumVertices(fa, fb), c.NumVertices())
	add("edges", groundtruth.NumEdges(feA, feB), c.NumEdges())
	arcsWant := effA.NumArcs() * effB.NumArcs()
	add("arcs", arcsWant, c.NumArcs())
	if c.NumVertices() != groundtruth.NumVertices(fa, fb) {
		// Remaining checks index into c; bail out with what we have.
		return rep, nil
	}

	// Degree histogram: d_C = d_A ⊗ d_B exactly.
	wantDeg := map[int64]int64{}
	for i := int64(0); i < feA.N(); i++ {
		for k := int64(0); k < feB.N(); k++ {
			wantDeg[feA.Deg[i]*feB.Deg[k]]++
		}
	}
	gotDeg := map[int64]int64{}
	for _, d := range c.Degrees() {
		gotDeg[d]++
	}
	add("degree histogram", histString(wantDeg), histString(gotDeg))

	// Global triangles.
	var wantTau int64
	if opts.SelfLoops {
		wantTau = groundtruth.GlobalTrianglesFullLoops(fa, fb)
	} else {
		wantTau = groundtruth.GlobalTriangles(fa, fb)
	}
	cTri := analytics.Triangles(c)
	add("global triangles", wantTau, cTri.Global)

	// Sampled per-vertex triangle counts.
	triOK := true
	var firstBad string
	for s := 0; s < opts.Samples; s++ {
		p := rng.Int63n(c.NumVertices())
		var want int64
		if opts.SelfLoops {
			want = groundtruth.VertexTrianglesFullLoopsAt(fa, fb, p)
		} else {
			want = groundtruth.VertexTrianglesAt(fa, fb, p)
		}
		if cTri.Vertex[p] != want {
			triOK = false
			firstBad = fmt.Sprintf("t_%d: want %d, got %d", p, want, cTri.Vertex[p])
			break
		}
	}
	actual := "all match"
	if !triOK {
		actual = firstBad
	}
	rep.Checks = append(rep.Checks, Check{
		fmt.Sprintf("vertex triangles (%d samples)", opts.Samples), "all match", actual, triOK})

	// Connectivity (Weichsel, ref [1]).
	if effA.IsConnected() && effB.IsConnected() && effA.NumEdges() > 0 && effB.NumEdges() > 0 {
		wantComp, err := groundtruth.ProductComponents(feA, feB)
		if err == nil {
			_, gotComp := c.ConnectedComponents()
			add("components (Weichsel)", wantComp, gotComp)
		}
	}

	// Distance spot checks (Thm. 3 / Cor. 4) need full self loops.
	if opts.SelfLoops && !opts.SkipDistances {
		feA.EnsureDistances()
		feB.EnsureDistances()
		distOK := true
		var bad string
		for s := 0; s < opts.Samples; s++ {
			p := rng.Int63n(c.NumVertices())
			hops := analytics.Hops(c, p)
			q := rng.Int63n(c.NumVertices())
			if want := groundtruth.HopsAt(feA, feB, p, q); hops[q] != want {
				distOK = false
				bad = fmt.Sprintf("hops(%d,%d): want %d, got %d", p, q, want, hops[q])
				break
			}
			var ecc int64
			for _, h := range hops {
				if h > ecc {
					ecc = h
				}
			}
			i, k := ix.Split(p)
			want := feA.Ecc[i]
			if feB.Ecc[k] > want {
				want = feB.Ecc[k]
			}
			if ecc != want {
				distOK = false
				bad = fmt.Sprintf("ecc(%d): want %d, got %d", p, want, ecc)
				break
			}
		}
		actual = "all match"
		if !distOK {
			actual = bad
		}
		rep.Checks = append(rep.Checks, Check{
			fmt.Sprintf("hops+eccentricity (%d samples)", opts.Samples), "all match", actual, distOK})
	}

	// Community checks over the Kronecker partition (Thm. 6).
	if opts.PartitionA != nil && opts.PartitionB != nil {
		if !opts.SelfLoops {
			return nil, fmt.Errorf("validate: community checks require SelfLoops mode (Thm. 6 hypothesis)")
		}
		statsA := analytics.Communities(a, opts.PartitionA)
		statsB := analytics.Communities(b, opts.PartitionB)
		commOK := true
		var bad string
		for ai := range opts.PartitionA {
			for bi := range opts.PartitionB {
				pred := groundtruth.CommunityKron(fa, fb, statsA[ai], statsB[bi])
				sc := core.KronSet(opts.PartitionA[ai], opts.PartitionB[bi], fb.N())
				meas := analytics.Community(c, sc)
				if pred.MIn != meas.MIn || pred.MOut != meas.MOut {
					commOK = false
					bad = fmt.Sprintf("community (%d,%d): want (%d,%d), got (%d,%d)",
						ai, bi, pred.MIn, pred.MOut, meas.MIn, meas.MOut)
				}
			}
		}
		actual = "all match"
		if !commOK {
			actual = bad
		}
		rep.Checks = append(rep.Checks, Check{
			fmt.Sprintf("communities (%d×%d)", len(opts.PartitionA), len(opts.PartitionB)),
			"all match", actual, commOK})
	}
	return rep, nil
}

// histString renders a histogram map deterministically for comparison.
func histString(h map[int64]int64) string {
	keys := make([]int64, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%d:%d ", k, h[k])
	}
	return s
}
