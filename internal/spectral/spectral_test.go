package spectral

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

func approx(x, y, tol float64) bool { return math.Abs(x-y) <= tol }

func TestSymEigKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	eig, err := SymEig([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(eig[0], 1, 1e-9) || !approx(eig[1], 3, 1e-9) {
		t.Errorf("eig = %v, want [1 3]", eig)
	}
	// Identity.
	eig, err = SymEig([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range eig {
		if !approx(l, 1, 1e-12) {
			t.Errorf("identity eigenvalue %v", l)
		}
	}
}

func TestSymEigPathGraph(t *testing.T) {
	// P3 adjacency eigenvalues: -√2, 0, √2.
	eig, err := AdjacencyEig(gen.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-math.Sqrt2, 0, math.Sqrt2}
	for i := range want {
		if !approx(eig[i], want[i], 1e-9) {
			t.Errorf("P3 eig[%d] = %v, want %v", i, eig[i], want[i])
		}
	}
}

func TestSymEigCompleteGraph(t *testing.T) {
	// K_n: eigenvalues n−1 (once) and −1 (n−1 times).
	eig, err := AdjacencyEig(gen.Clique(5))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(eig[4], 4, 1e-9) {
		t.Errorf("K5 λmax = %v, want 4", eig[4])
	}
	for i := 0; i < 4; i++ {
		if !approx(eig[i], -1, 1e-9) {
			t.Errorf("K5 eig[%d] = %v, want -1", i, eig[i])
		}
	}
}

func TestSymEigValidation(t *testing.T) {
	if _, err := SymEig([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged input should error")
	}
	if _, err := SymEig([][]float64{{1, 2}, {3, 1}}); err == nil {
		t.Error("asymmetric input should error")
	}
	dir, _ := graph.New(2, []graph.Edge{{U: 0, V: 1}})
	if _, err := AdjacencyEig(dir); err == nil {
		t.Error("directed graph should error")
	}
}

func TestSymEigTraceAndFrobeniusInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := gen.ER(12, 0.4, int64(trial))
		eig, err := AdjacencyEig(g)
		if err != nil {
			t.Fatal(err)
		}
		// Σλ = trace(A) = 0 (loop-free); Σλ² = arcs.
		var sum, sq float64
		for _, l := range eig {
			sum += l
			sq += l * l
		}
		if !approx(sum, 0, 1e-7) {
			t.Errorf("trial %d: Σλ = %v", trial, sum)
		}
		if !approx(sq, float64(g.NumArcs()), 1e-6) {
			t.Errorf("trial %d: Σλ² = %v, arcs %d", trial, sq, g.NumArcs())
		}
		_ = rng
	}
}

// The headline law: spec(A⊗B) = {λμ}, checked against a direct eigensolve
// of the materialized product.
func TestKroneckerEigenvalueLaw(t *testing.T) {
	a := gen.ER(6, 0.5, 3)
	b := gen.ER(5, 0.5, 4)
	eigA, err := AdjacencyEig(a)
	if err != nil {
		t.Fatal(err)
	}
	eigB, err := AdjacencyEig(b)
	if err != nil {
		t.Fatal(err)
	}
	pred := KronEigenvalues(eigA, eigB)
	c, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AdjacencyEig(c)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(got)
	if len(got) != len(pred) {
		t.Fatalf("spectrum sizes %d vs %d", len(got), len(pred))
	}
	for i := range got {
		if !approx(got[i], pred[i], 1e-6) {
			t.Fatalf("eig[%d]: product %v, law %v", i, got[i], pred[i])
		}
	}
}

// Spectral triangle counting: τ = Σλ³/6 matches exact counting, and via
// the Kronecker law this gives product triangle counts from factor
// spectra alone.
func TestSpectralTriangles(t *testing.T) {
	a := gen.ER(10, 0.5, 7)
	eigA, err := AdjacencyEig(a)
	if err != nil {
		t.Fatal(err)
	}
	wantA := triangleCount(a)
	if got := SpectralTriangles(eigA); !approx(got, float64(wantA), 1e-5) {
		t.Errorf("spectral τ_A = %v, exact %d", got, wantA)
	}
	b := gen.ER(8, 0.5, 8)
	eigB, err := AdjacencyEig(b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantC := triangleCount(c)
	if got := SpectralTriangles(KronEigenvalues(eigA, eigB)); !approx(got, float64(wantC), 1e-4) {
		t.Errorf("spectral τ_C = %v, exact %d", got, wantC)
	}
}

// triangleCount is a local brute-force triangle counter (avoids importing
// analytics, keeping the package dependency-light).
func triangleCount(g *graph.Graph) int64 {
	var count int64
	n := g.NumVertices()
	for u := int64(0); u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w <= v {
					continue
				}
				if g.HasArc(u, w) {
					count++
				}
			}
		}
	}
	return count
}

func TestKronMatVecMatchesMaterializedProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := gen.ER(7, 0.5, 5)
	b := gen.ER(6, 0.5, 6)
	c, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	n := c.NumVertices()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := KronMatVec(a, b, x)
	if err != nil {
		t.Fatal(err)
	}
	// Direct multiply on the materialized product.
	want := make([]float64, n)
	c.Arcs(func(u, v int64) bool {
		want[u] += x[v]
		return true
	})
	for i := range want {
		if !approx(got[i], want[i], 1e-9) {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := KronMatVec(a, b, x[:3]); err == nil {
		t.Error("wrong-length x should error")
	}
}

func TestPowerIterationMatchesEigMaxProduct(t *testing.T) {
	a := gen.Clique(4) // λmax = 3
	b := gen.Clique(3) // λmax = 2
	lam, err := PowerIteration(a, b, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lam, 6, 1e-6) {
		t.Errorf("λmax(K4⊗K3) = %v, want 6", lam)
	}
	// And on irregular factors: λmax(C) = λmax(A)·λmax(B).
	ga := gen.PrefAttach(12, 2, 9)
	gb := gen.ER(9, 0.5, 10)
	eigA, _ := AdjacencyEig(ga)
	eigB, _ := AdjacencyEig(gb)
	want := eigA[len(eigA)-1] * eigB[len(eigB)-1]
	lam, err = PowerIteration(ga, gb, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lam, want, 1e-4*math.Max(1, want)) {
		t.Errorf("power iteration %v, factor-spectra law %v", lam, want)
	}
}

func TestPowerIterationEdgeCases(t *testing.T) {
	empty, _ := graph.New(0, nil)
	if _, err := PowerIteration(empty, empty, 5); err == nil {
		t.Error("empty product should error")
	}
	// Edgeless graphs: dominant eigenvalue 0.
	bare, _ := graph.New(3, nil)
	lam, err := PowerIteration(bare, bare, 5)
	if err != nil || lam != 0 {
		t.Errorf("edgeless: λ = %v, err %v", lam, err)
	}
}
