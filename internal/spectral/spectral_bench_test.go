package spectral

import (
	"testing"

	"kronlab/internal/core"
	"kronlab/internal/gen"
)

// Implicit Kronecker matvec vs a direct multiply on the materialized
// product — the structural advantage the paper's Sec. IV-C warns about.
func BenchmarkKronMatVecImplicit(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(6, 1))
	bb := gen.MustRMAT(gen.Graph500Params(6, 2))
	x := make([]float64, a.NumVertices()*bb.NumVertices())
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KronMatVec(a, bb, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKronMatVecMaterialized(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(6, 1))
	bb := gen.MustRMAT(gen.Graph500Params(6, 2))
	c, err := core.Product(a, bb)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, c.NumVertices())
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	y := make([]float64, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range y {
			y[j] = 0
		}
		c.Arcs(func(u, v int64) bool {
			y[u] += x[v]
			return true
		})
	}
}

func BenchmarkJacobiEig(b *testing.B) {
	g := gen.ER(64, 0.3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AdjacencyEig(g); err != nil {
			b.Fatal(err)
		}
	}
}
