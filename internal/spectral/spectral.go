// Package spectral demonstrates the paper's Sec. IV-C observation that
// "due to the Kronecker structure a spectral method can efficiently solve
// for large swathes of the eigenspace of C": the spectrum of C = A ⊗ B is
// exactly {λ·μ : λ ∈ spec(A), μ ∈ spec(B)}, so factor-sized eigensolves
// expose product-sized spectral information — including spectral triangle
// counts τ = Σλ³/6 — making the structure exploitable by algorithms that
// never see the factors.
//
// The package provides a dense Jacobi eigensolver for small symmetric
// matrices (stdlib only), the Kronecker eigenvalue law, an implicit
// matrix-vector product y = (A ⊗ B)·x that never materializes C (the vec
// trick y = A·X·Bᵗ), and power iteration on that implicit operator.
package spectral

import (
	"fmt"
	"math"
	"sort"

	"kronlab/internal/graph"
)

// SymEig computes all eigenvalues of a symmetric matrix given as rows,
// using the cyclic Jacobi rotation method. Input is not modified.
// Returns eigenvalues in ascending order. Intended for factor-sized
// matrices (n up to a few thousand).
func SymEig(rows [][]float64) ([]float64, error) {
	n := len(rows)
	a := make([][]float64, n)
	for i := range rows {
		if len(rows[i]) != n {
			return nil, fmt.Errorf("spectral: row %d has length %d, want %d", i, len(rows[i]), n)
		}
		a[i] = append([]float64(nil), rows[i]...)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, fmt.Errorf("spectral: matrix is not symmetric at (%d,%d)", i, j)
			}
		}
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-15 {
					continue
				}
				// Compute the Jacobi rotation that zeroes a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation: A ← JᵗAJ.
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a[i][i]
	}
	sort.Float64s(eig)
	return eig, nil
}

// AdjacencyEig returns the eigenvalues of g's (symmetric) adjacency
// matrix in ascending order.
func AdjacencyEig(g *graph.Graph) ([]float64, error) {
	if !g.IsSymmetric() {
		return nil, fmt.Errorf("spectral: AdjacencyEig requires an undirected graph")
	}
	n := int(g.NumVertices())
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	g.Arcs(func(u, v int64) bool {
		rows[u][v] = 1
		return true
	})
	return SymEig(rows)
}

// KronEigenvalues returns the sorted spectrum of A ⊗ B from factor
// spectra: every pairwise product λ·μ.
func KronEigenvalues(eigA, eigB []float64) []float64 {
	out := make([]float64, 0, len(eigA)*len(eigB))
	for _, l := range eigA {
		for _, m := range eigB {
			out = append(out, l*m)
		}
	}
	sort.Float64s(out)
	return out
}

// SpectralTriangles returns the triangle count implied by a loop-free
// adjacency spectrum: τ = Σ λ³ / 6 (trace(A³) counts each triangle 6
// times). The float result is exact up to eigensolver accuracy; round.
func SpectralTriangles(eig []float64) float64 {
	var s float64
	for _, l := range eig {
		s += l * l * l
	}
	return s / 6
}

// KronMatVec computes y = (A ⊗ B)·x without materializing the product:
// viewing x as the n_A×n_B matrix X with x[γ(i,k)] = X[i][k], the output
// is Y = A·X·Bᵗ (row-major vec identity), at cost
// O(arcs_A·n_B + n_A·arcs_B) instead of O(arcs_A·arcs_B).
func KronMatVec(a, b *graph.Graph, x []float64) ([]float64, error) {
	nA, nB := a.NumVertices(), b.NumVertices()
	if int64(len(x)) != nA*nB {
		return nil, fmt.Errorf("spectral: KronMatVec length %d, want %d", len(x), nA*nB)
	}
	// T = A·X  (T[i][k] = Σ_j A_ij X[j][k]).
	t := make([]float64, nA*nB)
	a.Arcs(func(i, j int64) bool {
		xi, ti := x[j*nB:(j+1)*nB], t[i*nB:(i+1)*nB]
		for k := range ti {
			ti[k] += xi[k]
		}
		return true
	})
	// Y = T·Bᵗ  (Y[i][k] = Σ_l T[i][l] B_kl).
	y := make([]float64, nA*nB)
	b.Arcs(func(k, l int64) bool {
		for i := int64(0); i < nA; i++ {
			y[i*nB+k] += t[i*nB+l]
		}
		return true
	})
	return y, nil
}

// PowerIteration estimates the dominant eigenvalue (largest |λ|) of
// A ⊗ B via the implicit operator, returning the Rayleigh-quotient
// estimate after iters steps from a deterministic start vector.
func PowerIteration(a, b *graph.Graph, iters int) (float64, error) {
	n := a.NumVertices() * b.NumVertices()
	if n == 0 {
		return 0, fmt.Errorf("spectral: empty product")
	}
	x := make([]float64, n)
	var norm0 float64
	for i := range x {
		// Deterministic, non-orthogonal-to-Perron start.
		x[i] = 1 + 0.001*float64(i%7)
		norm0 += x[i] * x[i]
	}
	norm0 = math.Sqrt(norm0)
	for i := range x {
		x[i] /= norm0
	}
	var lambda float64
	for it := 0; it < iters; it++ {
		y, err := KronMatVec(a, b, x)
		if err != nil {
			return 0, err
		}
		var norm float64
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0, nil // nilpotent / empty graph
		}
		var dot float64
		for i := range x {
			dot += x[i] * y[i]
		}
		lambda = dot // x is unit length from previous normalization
		for i := range y {
			y[i] /= norm
		}
		x = y
	}
	return lambda, nil
}
