package dist

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

// chainStreamRef captures the full deterministic stream of a chain at a
// layout — the reference every seeked stream is pinned against,
// edge for edge.
func chainStreamRef(t testing.TB, ch *core.Chain, r int, twoD bool) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	_, err := StreamChain(context.Background(), ch, r, twoD, 64, Recovery{}, func(batch []graph.Edge) error {
		out = append(out, batch...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPlanLocate(t *testing.T) {
	a := gen.PrefAttach(10, 2, 51)
	b := gen.ER(7, 0.5, 52)
	for _, tc := range []struct {
		name string
		r    int
		twoD bool
	}{
		{"1d-3", 3, false}, {"2d-5", 5, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := planFor(a, b, tc.r, tc.twoD)
			if err != nil {
				t.Fatal(err)
			}
			total, err := plan.TotalArcs()
			if err != nil {
				t.Fatal(err)
			}
			if want := a.NumArcs() * b.NumArcs(); total != want {
				t.Fatalf("TotalArcs = %d, want %d", total, want)
			}
			// Walk every offset and cross-check Locate against a manual
			// cumulative walk of the ordered tiles.
			tiles := plan.orderedTiles()
			cum := int64(0)
			ti := 0
			for off := int64(0); off <= total; off++ {
				for ti < len(tiles)-1 && off-cum >= tiles[ti].Arcs() {
					cum += tiles[ti].Arcs()
					ti++
				}
				id, within, err := plan.Locate(off)
				if err != nil {
					t.Fatalf("Locate(%d): %v", off, err)
				}
				if id != tiles[ti].ID || within != off-cum {
					t.Fatalf("Locate(%d) = (%d,%d), want (%d,%d)", off, id, within, tiles[ti].ID, off-cum)
				}
			}
			if _, _, err := plan.Locate(-1); err == nil {
				t.Error("Locate(-1) should error")
			}
			if _, _, err := plan.Locate(total + 1); err == nil {
				t.Error("Locate(total+1) should error")
			}
		})
	}
}

func TestPlanSliceComposes(t *testing.T) {
	a := gen.ER(8, 0.5, 53)
	b := gen.ER(6, 0.6, 54)
	plan, err := planFor(a, b, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	total, err := plan.TotalArcs()
	if err != nil {
		t.Fatal(err)
	}
	// Slice [10, 10+40), then slice that again [5, 5+20): must equal the
	// direct slice [15, 15+20) — window composition.
	if total < 40 {
		t.Fatalf("graph too small for the composition windows: total %d", total)
	}
	s1, err := plan.Slice(10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s1.TotalArcs(); got != 40 {
		t.Fatalf("first slice generates %d arcs, want 40", got)
	}
	s2, err := s1.Slice(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := plan.Slice(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", s2.Tiles) != fmt.Sprintf("%+v", direct.Tiles) {
		t.Fatalf("composed slice differs from direct slice:\n  composed %+v\n  direct   %+v", s2.Tiles, direct.Tiles)
	}
	// Out-of-range offsets refuse; a negative limit runs to the end.
	if _, err := plan.Slice(total+1, -1); err == nil {
		t.Error("Slice past the end should error")
	}
	open, err := plan.Slice(total-3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := open.TotalArcs(); got != 3 {
		t.Fatalf("open-ended tail slice generates %d arcs, want 3", got)
	}
	// An empty window is a valid degenerate plan.
	empty, err := plan.Slice(total, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := empty.TotalArcs(); got != 0 {
		t.Fatalf("empty slice generates %d arcs, want 0", got)
	}
}

// TestStreamChainFromParity is the tentpole's core guarantee: a stream
// started at offset N with limit L is edge-for-edge the [N, N+L) window
// of the full stream — at every layout, chain depth, and window shape.
func TestStreamChainFromParity(t *testing.T) {
	chains := map[string][]*graph.Graph{
		"k2": {gen.PrefAttach(9, 2, 61), gen.ER(7, 0.5, 62)},
		"k3": {gen.ER(5, 0.5, 63), gen.Ring(4), gen.ER(3, 0.8, 64)},
	}
	layouts := []struct {
		name string
		r    int
		twoD bool
	}{
		{"1d-1", 1, false}, {"1d-4", 4, false}, {"2d-4", 4, true}, {"2d-7-uneven", 7, true},
	}
	for cname, factors := range chains {
		ch, err := core.NewChain(factors...)
		if err != nil {
			t.Fatal(err)
		}
		for _, lt := range layouts {
			t.Run(cname+"/"+lt.name, func(t *testing.T) {
				want := chainStreamRef(t, ch, lt.r, lt.twoD)
				total := int64(len(want))
				plan, err := planForChain(ch, lt.r, lt.twoD)
				if err != nil {
					t.Fatal(err)
				}
				// Offsets that cross tile boundaries: 0, mid-tile, an exact
				// tile boundary, and the stream's last arc and end.
				offsets := []int64{0, 1, total / 3, total - 1, total}
				if id0, _, err := plan.Locate(0); err == nil {
					// First tile's boundary, when it is interior.
					for _, ts := range plan.Tiles {
						for _, tl := range ts {
							if tl.ID == id0 && tl.Arcs() < total {
								offsets = append(offsets, tl.Arcs())
							}
						}
					}
				}
				for _, off := range offsets {
					for _, limit := range []int64{-1, 0, 1, (total - off) / 2} {
						var got []graph.Edge
						_, err := StreamChainFrom(context.Background(), ch, lt.r, lt.twoD, 16, off, limit, Recovery{},
							func(batch []graph.Edge) error {
								got = append(got, batch...)
								return nil
							})
						if err != nil {
							t.Fatalf("StreamChainFrom(off=%d, limit=%d): %v", off, limit, err)
						}
						wantN := total - off
						if limit >= 0 && limit < wantN {
							wantN = limit
						}
						if int64(len(got)) != wantN {
							t.Fatalf("off=%d limit=%d: got %d arcs, want %d", off, limit, len(got), wantN)
						}
						for i, e := range got {
							if e != want[off+int64(i)] {
								t.Fatalf("off=%d limit=%d: arc %d = %v, want %v", off, limit, i, e, want[off+int64(i)])
							}
						}
					}
				}
			})
		}
	}
}

// TestStream1DOrderMatchesSerial pins the canonical-order law resume
// depends on: under 1D partitioning the stream equals the serial chain
// enumeration regardless of rank count, so a seeked 1D stream is the
// serial enumeration's tail.
func TestStream1DOrderMatchesSerial(t *testing.T) {
	ch, err := core.NewChain(gen.PrefAttach(8, 2, 71), gen.ER(6, 0.5, 72))
	if err != nil {
		t.Fatal(err)
	}
	var serial []graph.Edge
	ch.Arcs(func(u, v int64) bool {
		serial = append(serial, graph.Edge{U: u, V: v})
		return true
	})
	total := int64(len(serial))
	for _, r := range []int{1, 3, 5} {
		off := total / 2
		var got []graph.Edge
		_, err := StreamChainFrom(context.Background(), ch, r, false, 32, off, -1, Recovery{},
			func(batch []graph.Edge) error {
				got = append(got, batch...)
				return nil
			})
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if int64(len(got)) != total-off {
			t.Fatalf("r=%d: got %d arcs, want %d", r, len(got), total-off)
		}
		for i, e := range got {
			if e != serial[off+int64(i)] {
				t.Fatalf("r=%d: arc %d = %v, want serial %v", r, i, e, serial[off+int64(i)])
			}
		}
	}
}

func TestStreamChainFromBadWindow(t *testing.T) {
	ch, err := core.NewChain(gen.Ring(3), gen.Ring(3))
	if err != nil {
		t.Fatal(err)
	}
	emit := func([]graph.Edge) error { return nil }
	if _, err := StreamChainFrom(context.Background(), ch, 2, false, 0, -1, -1, Recovery{}, emit); err == nil {
		t.Error("negative offset should error")
	}
	total, _ := ch.NumArcs()
	if _, err := StreamChainFrom(context.Background(), ch, 2, false, 0, total+1, -1, Recovery{}, emit); err == nil {
		t.Error("offset past the end should error")
	}
}

// TestStreamEmitErrorReturnsBuffers is the regression test for the
// batch-buffer leak: when emit fails mid-stream (a truncated HTTP
// response), every pooled buffer — including the batch in flight at the
// failure — must come back, leaving the outstanding counter at zero.
func TestStreamEmitErrorReturnsBuffers(t *testing.T) {
	a := gen.ER(30, 0.4, 81)
	b := gen.ER(30, 0.4, 82)
	sentinel := errors.New("client went away")
	calls := 0
	stats, err := Stream(context.Background(), a, b, 4, true, 32, Recovery{}, func([]graph.Edge) error {
		calls++
		if calls >= 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
	if stats.OutstandingBufs != 0 {
		t.Fatalf("emit error leaked %d stream buffers", stats.OutstandingBufs)
	}
}

// TestStreamCleanFinishReturnsBuffers: the happy path must balance too,
// including Close-time residual batches from sub-batch tile tails.
func TestStreamCleanFinishReturnsBuffers(t *testing.T) {
	a := gen.PrefAttach(11, 2, 83)
	b := gen.ER(9, 0.5, 84)
	for _, tc := range []struct {
		name string
		r    int
		twoD bool
	}{
		{"1d-4", 4, false}, {"2d-7", 7, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stats, err := Stream(context.Background(), a, b, tc.r, tc.twoD, 64, Recovery{},
				func([]graph.Edge) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			if stats.OutstandingBufs != 0 {
				t.Fatalf("clean finish left %d stream buffers outstanding", stats.OutstandingBufs)
			}
		})
	}
}
