package dist

import (
	"context"
	"sync"
	"testing"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// TestClusterSeekParity drives the windowed store path over a real
// 4-process TCP mesh: the cluster generating the [offset, offset+limit)
// window must store exactly the arcs the full stream's window holds —
// and a cluster sliced at a different offset must refuse the handshake
// (PlanHash folds the window into every tile's identity).
func TestClusterSeekParity(t *testing.T) {
	ch, err := core.NewChain(gen.PrefAttach(10, 2, 91), gen.ER(8, 0.5, 92))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		r    int
		twoD bool
	}{
		{"1d/r5-uneven", 5, false},
		{"2d/r6", 6, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const nprocs = 4
			want := chainStreamRef(t, ch, tc.r, tc.twoD)
			total := int64(len(want))
			offset, limit := total/4, total/2
			window := want[offset : offset+limit]

			plan, err := planForChain(ch, tc.r, tc.twoD)
			if err != nil {
				t.Fatal(err)
			}
			sliced, err := plan.Slice(offset, limit)
			if err != nil {
				t.Fatal(err)
			}
			hash := PlanHash(sliced)
			if hash == PlanHash(plan) {
				t.Fatal("PlanHash does not fold the stream window")
			}
			nodes := make([]*tcp.Node, nprocs)
			addrs := make([]string, nprocs)
			for i := range nodes {
				n, err := tcp.NewNode("127.0.0.1:0", i, hash)
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
				defer n.Close()
				nodes[i] = n
				addrs[i] = n.Addr()
			}
			procs := transport.SplitRanks(addrs, tc.r)
			dir := t.TempDir()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			var wg sync.WaitGroup
			stores := make([]*storeResult, nprocs)
			for p := 0; p < nprocs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					cc := ClusterConfig{Procs: procs, Self: p, Node: nodes[p]}
					st, _, err := GenerateChainClusterToStoreFrom(ctx, ch, dir, tc.twoD, offset, limit, cc, Recovery{})
					stores[p] = &storeResult{st: st, err: err}
				}(p)
			}
			wg.Wait()
			for p, res := range stores {
				if res.err != nil {
					t.Errorf("proc %d: %v", p, res.err)
				}
			}
			if t.Failed() {
				t.FailNow()
			}
			st := stores[0].st
			if st == nil {
				t.Fatal("head returned no store")
			}
			if st.TotalEdges() != limit {
				t.Fatalf("cluster stored %d arcs, want the window's %d", st.TotalEdges(), limit)
			}
			got, err := st.LoadGraph()
			if err != nil {
				t.Fatal(err)
			}
			wantG, err := graph.New(ch.NumVertices(), window)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(wantG) {
				t.Fatal("cluster window differs from the full stream's window")
			}
		})
	}
}

type storeResult struct {
	st  *store.Store
	err error
}
