package dist

import (
	"context"
	"fmt"
	"testing"

	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

// Owner-map ablation (DESIGN.md design choice): routing policy determines
// per-rank storage balance. These benches report the load-imbalance ratio
// (max/ideal) as a custom metric alongside time.
func BenchmarkOwnerMapAblation(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(5, 1))
	bb := gen.MustRMAT(gen.Graph500Params(5, 2))
	nC := a.NumVertices() * bb.NumVertices()
	owners := []struct {
		name string
		f    OwnerFunc
	}{
		{"bySource", OwnerBySource},
		{"byEdge", OwnerByEdge},
		{"byBlock", OwnerByBlock(nC)},
	}
	for _, o := range owners {
		b.Run(o.name, func(b *testing.B) {
			var imbalance float64
			for i := 0; i < b.N; i++ {
				res, err := Generate1D(a, bb, 8, o.f)
				if err != nil {
					b.Fatal(err)
				}
				ideal := float64(res.TotalStored()) / 8
				imbalance = float64(res.MaxRankStorage()) / ideal
			}
			b.ReportMetric(imbalance, "max/ideal")
		})
	}
}

// Owned (communication-free CSR) generation vs routed generation at the
// same block storage map — the Sec. III optimization ablation.
func BenchmarkOwnedVsRouted(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(5, 3))
	bb := gen.MustRMAT(gen.Graph500Params(5, 4))
	nC := a.NumVertices() * bb.NumVertices()
	b.Run("routedBlock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Generate1D(a, bb, 8, OwnerByBlock(nC)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("owned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GenerateOwned(a, bb, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Sustained edge-generation rate of the blocked kernel across the rank
// sweep the scaling argument is about — the headline metric of this
// generator family (Sanders et al., Kepner et al.). Reports edges/s so
// regressions in the routed hot path show up as rate, not just ns/op.
func BenchmarkKernelRSweep(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(5, 10))
	bb := gen.MustRMAT(gen.Graph500Params(5, 11))
	edges := a.NumArcs() * bb.NumArcs()
	for _, r := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.SetBytes(edges * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Generate1D(a, bb, r, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// Batch-size sweep of the routed kernel at a fixed rank count — the
// measurement behind DefaultBatchSize (README §Performance): too small
// pays per-message overhead, too large blows the staging working set.
func BenchmarkKernelBatchSize(b *testing.B) {
	a := gen.MustRMAT(gen.Graph500Params(5, 10))
	bb := gen.MustRMAT(gen.Graph500Params(5, 11))
	edges := a.NumArcs() * bb.NumArcs()
	for _, batch := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("B=%d", batch), func(b *testing.B) {
			plan, err := Plan1D(a, bb, 16)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(edges * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink := NewMemorySink(16)
				sink.Hints = sourceHashLoads(a, bb, 16)
				cfg := Config{Plan: plan, Owner: sourceHashOwner{}, Sink: sink, BatchSize: batch}
				if _, err := Run(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Raw exchange throughput of the simulated transport, by cluster size:
// every rank sends `per` edges round-robin and drains its inbox.
func BenchmarkExchangeThroughput(b *testing.B) {
	for _, r := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			const per = 20_000
			b.SetBytes(int64(r) * per * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := NewCluster(r)
				if err != nil {
					b.Fatal(err)
				}
				err = c.Run(func(rk *Rank) error {
					var got int
					rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
						for j := 0; j < per; j++ {
							emit(j%r, graph.Edge{U: int64(j), V: int64(rk.ID())})
						}
					}, func(e graph.Edge) {
						got++
					})
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
