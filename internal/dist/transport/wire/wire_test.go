package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// TestBatchRoundTrip encodes batches of assorted shapes and asserts the
// decode returns the identical header fields and edge sequence.
func TestBatchRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		edges []graph.Edge
		eof   bool
	}{
		{"empty-eof", nil, true},
		{"single", []graph.Edge{{U: 1, V: 2}}, false},
		{"negative-endpoints", []graph.Edge{{U: -9, V: 1 << 62}}, false},
		{"batch-with-eof", []graph.Edge{{U: 3, V: 4}, {U: 5, V: 6}, {U: 7, V: 8}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := AppendBatch(nil, 3, 11, 42, -7, tc.edges, tc.eof)
			if want := BatchFrameSize(len(tc.edges)); len(frame) != want {
				t.Fatalf("frame size %d, want %d", len(frame), want)
			}
			h, edges, n, err := DecodeBatch(nil, frame)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(frame) {
				t.Fatalf("consumed %d of %d bytes", n, len(frame))
			}
			if h.From != 3 || h.Dest != 11 || h.Epoch != 42 || h.Tile != -7 || h.EOF() != tc.eof {
				t.Fatalf("header mismatch: %+v", h)
			}
			if len(edges) != len(tc.edges) {
				t.Fatalf("decoded %d edges, want %d", len(edges), len(tc.edges))
			}
			for i, e := range edges {
				if e != tc.edges[i] {
					t.Fatalf("edge %d = %v, want %v", i, e, tc.edges[i])
				}
			}
		})
	}
}

// TestBatchPayloadMatchesStoreRecords pins the zero-copy claim: the
// payload bytes of a batch frame are exactly the store records the disk
// sink would write for the same edges.
func TestBatchPayloadMatchesStoreRecords(t *testing.T) {
	edges := []graph.Edge{{U: 17, V: -1}, {U: 0, V: 1 << 40}}
	frame := AppendBatch(nil, 0, 1, 1, 0, edges, false)
	var want bytes.Buffer
	var rec [store.RecordSize]byte
	for _, e := range edges {
		store.PutRecord(rec[:], e.U, e.V)
		want.Write(rec[:])
	}
	if got := frame[HeaderSize:]; !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("payload bytes differ from store records:\n got %x\nwant %x", got, want.Bytes())
	}
}

// TestDecodeRejections drives every validation branch: truncation at
// each boundary, bad magic, version skew, oversized and ragged
// payloads, wrong kind.
func TestDecodeRejections(t *testing.T) {
	good := AppendBatch(nil, 0, 1, 5, 2, []graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}}, false)

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShortFrame},
		{"short-header", good[:HeaderSize-1], ErrShortFrame},
		{"truncated-payload", good[:len(good)-1], ErrShortFrame},
		{"bad-magic", corrupt(func(b []byte) { b[0] ^= 0xff }), ErrBadMagic},
		{"version-skew", corrupt(func(b []byte) { binary.LittleEndian.PutUint16(b[6:], Version+1) }), ErrVersion},
		{"oversized", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], MaxPayload+1) }), ErrOversized},
		{"ragged-payload", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 17) }), ErrBadPayload},
		{"wrong-kind", corrupt(func(b []byte) { b[4] = KindControl }), ErrBadPayload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := DecodeBatch(nil, tc.b); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeBatch = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeBatchConsumesOneFrame decodes two concatenated frames and
// asserts the consumed count lands exactly on the second header.
func TestDecodeBatchConsumesOneFrame(t *testing.T) {
	stream := AppendBatch(nil, 0, 1, 1, 0, []graph.Edge{{U: 1, V: 1}}, false)
	stream = AppendBatch(stream, 0, 1, 1, 1, []graph.Edge{{U: 2, V: 2}}, true)
	h1, edges, n, err := DecodeBatch(nil, stream)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Tile != 0 || len(edges) != 1 || edges[0].U != 1 {
		t.Fatalf("first frame decoded wrong: %+v %v", h1, edges)
	}
	h2, edges2, _, err := DecodeBatch(nil, stream[n:])
	if err != nil {
		t.Fatal(err)
	}
	if h2.Tile != 1 || !h2.EOF() || len(edges2) != 1 || edges2[0].U != 2 {
		t.Fatalf("second frame decoded wrong: %+v %v", h2, edges2)
	}
}

// FuzzDecodeBatch holds the decoder to its no-panic contract: arbitrary
// bytes either decode to a well-formed batch or return an error —
// truncated and oversized frames are rejected loudly, and any frame
// that does decode must re-encode to the same bytes it consumed.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBatch(nil, 0, 1, 1, 0, nil, true))
	f.Add(AppendBatch(nil, 2, 3, 9, 4, []graph.Edge{{U: 1, V: 2}}, false))
	big := AppendBatch(nil, 0, 1, 1, 0, make([]graph.Edge, 64), false)
	f.Add(big[:40])          // truncated mid-payload
	f.Add(append(big, 1, 2)) // trailing garbage (must be ignored)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, edges, n, err := DecodeBatch(nil, b)
		if err != nil {
			return
		}
		if n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if len(edges)*store.RecordSize != int(h.PayloadLen) {
			t.Fatalf("decoded %d edges from %d payload bytes", len(edges), h.PayloadLen)
		}
		re := AppendBatch(nil, h.From, h.Dest, h.Epoch, h.Tile, edges, h.EOF())
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", re, b[:n])
		}
	})
}
