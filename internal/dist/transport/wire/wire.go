// Package wire is the frame codec of the TCP transport: the batches the
// blocked kernel stages per destination, serialized as a fixed header
// followed by raw store records. The kernel's staging buffers are
// already wire-shaped — []graph.Edge is pairs of int64 endpoints, and
// internal/store's 16-byte record codec is the on-disk format — so a
// frame is header + store.PutRecord per edge, with no intermediate
// representation between the staging buffer and the socket.
//
// Frame layout (little-endian throughout):
//
//	offset  size  field
//	     0     4  magic  0x4b524f4e ("KRON")
//	     4     1  kind   (Batch, Control, Reduce, Release, Hello, Ack, Ping)
//	     5     1  flags  bit0 = EOF (end of sender's stream this exchange)
//	     6     2  version (protocol version, checked at handshake AND on
//	              every frame so a mid-stream impostor fails loudly)
//	     8     4  from   (global source rank, or proc index for control)
//	    12     4  dest   (global destination rank, or proc index)
//	    16     8  epoch  (run attempt the frame belongs to)
//	    24     8  tile   (plan tile framing the payload; int64)
//	    32     4  payloadLen (bytes following the header)
//	    36     …  payload: Batch → count·store.RecordSize edge records;
//	              Control → opaque control bytes (JSON in cluster mode);
//	              Reduce/Release → 16 bytes (sequence, value)
//
// Decoding is defensive at every step: short header, bad magic, version
// skew, payload over MaxPayload, or a Batch payload that is not a
// multiple of store.RecordSize are all errors, never panics — the fuzz
// target in wire_test.go holds the codec to that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// Version is the transport protocol version. Peers with different
// versions refuse each other at handshake; every frame repeats it so
// skew introduced mid-stream is caught too. Version 2: plan hashes
// cover factor chains (dist.PlanHash folds the chain dimensions and
// per-tile tail shapes), so a v1 peer's hash of the "same" plan would
// not match — the version bump turns that silent mismatch into a loud
// handshake refusal. Version 3: plan hashes fold the per-tile stream
// windows (Tile.Skip/Take, seekable generation), shifting every plan's
// hash — same posture, a version refusal instead of a baffling plan
// mismatch against a v2 peer.
const Version = 3

// Magic opens every frame — a cheap desynchronization tripwire: if a
// torn or corrupt frame shifts the stream, the next header read fails
// on magic instead of misparsing record bytes as a header.
const Magic = 0x4b524f4e // "KRON"

// HeaderSize is the byte length of the fixed frame header.
const HeaderSize = 36

// MaxPayload bounds a frame's payload so a corrupt or hostile length
// field cannot make the receiver allocate gigabytes. 1<<24 (16 MiB) is
// ~1M edges — three orders of magnitude above the default batch size.
const MaxPayload = 1 << 24

// Frame kinds.
const (
	KindBatch   = 1 // edge batch (or bare EOF marker when flags&FlagEOF)
	KindControl = 2 // cluster-mode control message (opaque payload)
	KindReduce  = 3 // collective contribution: proc → proc 0
	KindRelease = 4 // collective release: proc 0 → all procs
	KindHello   = 5 // connection handshake: dialer → listener
	KindAck     = 6 // handshake accept: listener → dialer
	KindPing    = 7 // application heartbeat: any direction, empty payload
)

// FlagEOF marks a Batch frame as the end of the sender's stream for the
// current exchange.
const FlagEOF = 1

// Codec errors, distinguished so transports and tests can tell a
// protocol mismatch from a torn frame.
var (
	ErrShortFrame = errors.New("wire: truncated frame")
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrVersion    = errors.New("wire: protocol version mismatch")
	ErrOversized  = errors.New("wire: frame payload exceeds MaxPayload")
	ErrBadPayload = errors.New("wire: payload length not a whole number of records")
	ErrBadFlags   = errors.New("wire: undefined flag bits set")
)

// Header is the decoded fixed header of one frame.
type Header struct {
	Kind       uint8
	Flags      uint8
	From       uint32
	Dest       uint32
	Epoch      int64
	Tile       int64
	PayloadLen uint32
}

// EOF reports whether the frame carries the end-of-stream flag.
func (h Header) EOF() bool { return h.Flags&FlagEOF != 0 }

// PutHeader encodes h into b, which must hold HeaderSize bytes.
func PutHeader(b []byte, h Header) {
	_ = b[HeaderSize-1]
	binary.LittleEndian.PutUint32(b[0:], Magic)
	b[4] = h.Kind
	b[5] = h.Flags
	binary.LittleEndian.PutUint16(b[6:], Version)
	binary.LittleEndian.PutUint32(b[8:], h.From)
	binary.LittleEndian.PutUint32(b[12:], h.Dest)
	binary.LittleEndian.PutUint64(b[16:], uint64(h.Epoch))
	binary.LittleEndian.PutUint64(b[24:], uint64(h.Tile))
	binary.LittleEndian.PutUint32(b[32:], h.PayloadLen)
}

// ParseHeader decodes and validates a fixed header: length, magic,
// version, and the payload bound. It does not validate kind-specific
// payload shape — DecodeBatchPayload does that for batches.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: header %d/%d bytes", ErrShortFrame, len(b), HeaderSize)
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != Magic {
		return Header{}, fmt.Errorf("%w: 0x%08x", ErrBadMagic, m)
	}
	if v := binary.LittleEndian.Uint16(b[6:]); v != Version {
		return Header{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	if b[5]&^FlagEOF != 0 {
		// Undefined flag bits are a protocol error, not future headroom:
		// accepting them silently would let peers disagree about frame
		// semantics without either side noticing.
		return Header{}, fmt.Errorf("%w: 0x%02x", ErrBadFlags, b[5])
	}
	h := Header{
		Kind:       b[4],
		Flags:      b[5],
		From:       binary.LittleEndian.Uint32(b[8:]),
		Dest:       binary.LittleEndian.Uint32(b[12:]),
		Epoch:      int64(binary.LittleEndian.Uint64(b[16:])),
		Tile:       int64(binary.LittleEndian.Uint64(b[24:])),
		PayloadLen: binary.LittleEndian.Uint32(b[32:]),
	}
	if h.PayloadLen > MaxPayload {
		return Header{}, fmt.Errorf("%w: %d bytes", ErrOversized, h.PayloadLen)
	}
	return h, nil
}

// BatchFrameSize returns the encoded size of a batch of n edges.
func BatchFrameSize(n int) int { return HeaderSize + n*store.RecordSize }

// AppendBatch encodes one edge batch frame onto dst and returns the
// extended slice — header then one store record per edge, the exact
// bytes store.ShardWriter would put on disk for the same edges.
func AppendBatch(dst []byte, from, dest uint32, epoch, tile int64, edges []graph.Edge, eof bool) []byte {
	var flags uint8
	if eof {
		flags = FlagEOF
	}
	n := len(dst)
	dst = append(dst, make([]byte, BatchFrameSize(len(edges)))...)
	PutHeader(dst[n:], Header{
		Kind: KindBatch, Flags: flags,
		From: from, Dest: dest, Epoch: epoch, Tile: tile,
		PayloadLen: uint32(len(edges) * store.RecordSize),
	})
	p := dst[n+HeaderSize:]
	for i, e := range edges {
		store.PutRecord(p[i*store.RecordSize:], e.U, e.V)
	}
	return dst
}

// DecodeBatchPayload decodes a batch frame's payload into dst (appended
// and returned; pass a pooled buffer to decode without allocating). The
// payload must be exactly h.PayloadLen bytes and a whole number of
// records.
func DecodeBatchPayload(dst []graph.Edge, h Header, payload []byte) ([]graph.Edge, error) {
	if uint32(len(payload)) != h.PayloadLen {
		return dst, fmt.Errorf("%w: payload %d/%d bytes", ErrShortFrame, len(payload), h.PayloadLen)
	}
	if len(payload)%store.RecordSize != 0 {
		return dst, fmt.Errorf("%w: %d bytes", ErrBadPayload, len(payload))
	}
	for off := 0; off < len(payload); off += store.RecordSize {
		u, v := store.GetRecord(payload[off:])
		dst = append(dst, graph.Edge{U: u, V: v})
	}
	return dst, nil
}

// DecodeBatch parses one complete batch frame from b — header,
// validation, payload — returning the header, the decoded edges
// (appended to dst) and the number of bytes consumed. It rejects
// truncated and oversized frames with an error, never a panic; frames
// of another kind are rejected with ErrBadPayload.
func DecodeBatch(dst []graph.Edge, b []byte) (Header, []graph.Edge, int, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return Header{}, dst, 0, err
	}
	if h.Kind != KindBatch {
		return Header{}, dst, 0, fmt.Errorf("%w: kind %d is not a batch", ErrBadPayload, h.Kind)
	}
	end := HeaderSize + int(h.PayloadLen)
	if len(b) < end {
		return Header{}, dst, 0, fmt.Errorf("%w: frame %d/%d bytes", ErrShortFrame, len(b), end)
	}
	dst, err = DecodeBatchPayload(dst, h, b[HeaderSize:end])
	if err != nil {
		return Header{}, dst, 0, err
	}
	return h, dst, end, nil
}
