// Package tcp is the multi-process Transport: a full mesh of
// length-prefixed TCP links between N processes, each hosting a
// contiguous range of the cluster's R ranks. Frames are the wire
// package's header + raw store records, so a staged batch buffer is
// serialized straight onto the socket with no intermediate
// representation — the paper's MPI deployment shape with the link layer
// swapped for TCP.
//
// A process keeps one persistent Node (listener, handshake, connection
// parking) for its lifetime and builds one attempt-scoped Transport per
// run attempt. Connections handshake with protocol version (checked on
// every frame by the wire codec), plan hash and epoch; a mismatched
// peer is refused loudly. A dialer whose epoch is ahead of the acceptor
// is parked until the acceptor's process reaches that attempt — the ack
// is deferred until the local Transport claims the connection — which
// is how a respawned worker and its survivors agree on the recovery
// epoch without a shared clock.
//
// Collectives are hierarchical: local ranks combine in-process (the
// same generation-channel barrier the chan transport uses), then proc 0
// runs a star reduce over the mesh (KindReduce in, KindRelease out,
// sequence-numbered so attempts' collectives cannot interleave).
package tcp

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/wire"
	"kronlab/internal/graph"
)

// handshake purposes, carried in the Hello payload's first byte.
const (
	purposeData = 1 // attempt-scoped data link between two procs
	purposeCtrl = 2 // persistent control link, worker → head
)

// ack statuses, carried in the Ack payload's first byte.
const (
	ackOK       = 0
	ackBadPlan  = 1
	ackRejected = 2
)

// helloPayloadLen is purpose (1) + plan hash (8).
const helloPayloadLen = 9

// outQDepth is the per-link writer queue, in frames. Deep enough that a
// burst of flushes from every local rank doesn't serialize on the
// socket; bounded so a stalled peer exerts backpressure instead of
// buffering the whole exchange in memory.
const outQDepth = 256

// inboxDepth mirrors the chan transport's per-rank buffering.
func inboxDepth(r int) int { return 4*r + 16 }

// framePool recycles encoded frame buffers between SendBatch and the
// link writers.
var framePool = sync.Pool{New: func() any { return []byte(nil) }}

// ErrHandshake wraps every handshake refusal so both sides fail loudly
// and identifiably.
var ErrHandshake = errors.New("tcp: handshake refused")

// Config describes one process's place in the static cluster.
type Config struct {
	// Procs is the cluster layout — identical on every process (the plan
	// hash guards against drift in everything the layout derives from).
	Procs []transport.Proc
	// Self is this process's index in Procs.
	Self int
	// PlanHash fingerprints the generation plan (factors, decomposition,
	// rank count). Peers with different hashes refuse each other.
	PlanHash uint64
	// Pool recycles decoded batch buffers; nil allocates per batch.
	Pool transport.BufferPool
	// Faults, when non-nil, arms wire-level fault injection (see
	// transport.TCPFaults). Shared across attempts so frame countdowns
	// fire once per process lifetime.
	Faults *FaultState
	// DialTimeout bounds mesh establishment per attempt; ≤ 0 means 10s.
	// It also drives the per-connection dial and handshake-read deadlines,
	// so a slow network widens every timeout together instead of tripping
	// over a hardcoded one.
	DialTimeout time.Duration
	// HeartbeatInterval is how often each link sends an application-level
	// ping when otherwise idle; ≤ 0 disables heartbeats (and with them
	// deadline-based failure detection).
	HeartbeatInterval time.Duration
	// HeartbeatDeadline is the longest a link may stay silent before the
	// peer is declared dead with a PeerError. ≤ 0 with a positive interval
	// means 5× the interval.
	HeartbeatDeadline time.Duration
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 10 * time.Second
}

func (c Config) heartbeatDeadline() time.Duration {
	if c.HeartbeatDeadline > 0 {
		return c.HeartbeatDeadline
	}
	return 5 * c.HeartbeatInterval
}

// FaultState is an armed transport.TCPFaults schedule with its lifetime
// frame counter — process-wide across links and attempts, so a schedule
// is deterministic in the number of batch frames written, regardless of
// how traffic interleaves across peers.
type FaultState struct {
	plan        transport.TCPFaults
	frames      int64
	partitioned atomic.Bool
}

// NewFaultState arms a schedule.
func NewFaultState(plan transport.TCPFaults) *FaultState { return &FaultState{plan: plan} }

// Partition black-holes the process immediately: sockets stay open, but
// from now on outbound frames are discarded and inbound frames dropped.
// The scheduled form is TCPFaults.PartitionAfterFrames.
func (f *FaultState) Partition() { f.partitioned.Store(true) }

// Partitioned reports whether the black-hole is active.
func (f *FaultState) Partitioned() bool { return f.partitioned.Load() }

// errInjectedReset tags a fault-injected link death so tests can tell it
// from a real one.
var errInjectedReset = errors.New("tcp: injected connection reset")

// key identifies a parked inbound data connection.
type key struct {
	from  int
	epoch int64
}

// parkedConn is an accepted, handshake-validated data connection
// awaiting its Claim.
type parkedConn struct {
	conn net.Conn
	br   *bufio.Reader // may hold bytes read past the Hello
}

// Node is a process's persistent listening endpoint: it owns the
// listener, validates every inbound handshake, parks data connections
// by (peer, epoch) until the matching attempt claims them, and hands
// control connections to the head's accept loop.
type Node struct {
	ln       net.Listener
	self     int
	planHash uint64

	// hsTimeout bounds how long an accepted connection may take to
	// present its Hello, in nanoseconds (atomic: Connect derives it from
	// Config.DialTimeout while the accept loop reads it).
	hsTimeout atomic.Int64

	mu      sync.Mutex
	parked  map[key]parkedConn
	waiters map[key]chan parkedConn
	closed  bool

	ctrl chan *CtrlConn
}

// NewNode listens on addr and starts the accept loop.
func NewNode(addr string, self int, planHash uint64) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	n := &Node{ln: ln, self: self, planHash: planHash,
		parked:  make(map[key]parkedConn),
		waiters: make(map[key]chan parkedConn),
		ctrl:    make(chan *CtrlConn, 16)}
	n.hsTimeout.Store(int64(10 * time.Second))
	go n.acceptLoop()
	return n, nil
}

// SetHandshakeTimeout bounds how long an inbound connection may take to
// present its Hello. Connect calls this with the config's dial timeout
// so both sides of the handshake honor the same deadline.
func (n *Node) SetHandshakeTimeout(d time.Duration) {
	if d > 0 {
		n.hsTimeout.Store(int64(d))
	}
}

// Addr returns the bound listen address (useful with ":0" test configs).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close shuts the listener and every parked connection.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	for k, p := range n.parked {
		p.conn.Close()
		delete(n.parked, k)
	}
	n.mu.Unlock()
	return n.ln.Close()
}

func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go n.handshake(conn)
	}
}

// handshake validates one inbound connection's Hello. Version skew is
// caught by the wire codec's header parse; a plan-hash mismatch is
// refused with an explicit Ack so the dialer fails loudly too.
func (n *Node) handshake(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Duration(n.hsTimeout.Load())))
	br := bufio.NewReaderSize(conn, 1<<16)
	h, payload, err := readFrame(br)
	if err != nil || h.Kind != wire.KindHello || len(payload) < helloPayloadLen {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	purpose := payload[0]
	hash := binary.LittleEndian.Uint64(payload[1:])
	if hash != n.planHash {
		writeAck(conn, n.self, int(h.From), 0, ackBadPlan,
			fmt.Sprintf("plan hash %016x, want %016x", hash, n.planHash))
		conn.Close()
		return
	}
	switch purpose {
	case purposeCtrl:
		if err := writeAck(conn, n.self, int(h.From), h.Epoch, ackOK, ""); err != nil {
			conn.Close()
			return
		}
		cc := newCtrlConn(conn, br, n.self, int(h.From))
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			conn.Close()
			return
		}
		n.ctrl <- cc
	case purposeData:
		k := key{from: int(h.From), epoch: h.Epoch}
		p := parkedConn{conn: conn, br: br}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		if w, ok := n.waiters[k]; ok {
			delete(n.waiters, k)
			n.mu.Unlock()
			w <- p
			return
		}
		if old, ok := n.parked[k]; ok {
			old.conn.Close() // superseded by a redial
		}
		n.parked[k] = p
		n.mu.Unlock()
	default:
		conn.Close()
	}
}

// claim waits for the inbound data connection from proc `from` for the
// given epoch, then sends the deferred Ack that releases the dialer.
// Parked connections from earlier epochs belong to dead attempts and
// are closed as they are superseded (handshake parks by exact key, so
// they simply never match).
func (n *Node) claim(ctx context.Context, from int, epoch int64) (parkedConn, error) {
	k := key{from: from, epoch: epoch}
	n.mu.Lock()
	if p, ok := n.parked[k]; ok {
		delete(n.parked, k)
		n.mu.Unlock()
		if err := writeAck(p.conn, n.self, from, epoch, ackOK, ""); err != nil {
			p.conn.Close()
			return parkedConn{}, err
		}
		return p, nil
	}
	ch := make(chan parkedConn, 1)
	n.waiters[k] = ch
	n.mu.Unlock()
	select {
	case p := <-ch:
		if err := writeAck(p.conn, n.self, from, epoch, ackOK, ""); err != nil {
			p.conn.Close()
			return parkedConn{}, err
		}
		return p, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.waiters, k)
		n.mu.Unlock()
		select {
		case p := <-ch: // raced: arrived as we withdrew
			p.conn.Close()
		default:
		}
		return parkedConn{}, fmt.Errorf("tcp: waiting for proc %d (epoch %d): %w", from, epoch, context.Cause(ctx))
	}
}

// AcceptControl returns the next inbound control connection (head use).
func (n *Node) AcceptControl(ctx context.Context) (*CtrlConn, error) {
	select {
	case cc := <-n.ctrl:
		return cc, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// dialPeer establishes one outbound connection with retry (the peer may
// not be listening yet) and runs the dialer side of the handshake. The
// Ack may be deferred arbitrarily long — until the peer reaches this
// epoch — so only ctx bounds the wait.
func dialPeer(ctx context.Context, addr string, self, to int, epoch int64, planHash uint64, purpose byte, faults *FaultState, dialTimeout time.Duration) (net.Conn, *bufio.Reader, error) {
	if faults != nil && faults.plan.DialDelay > 0 {
		select {
		case <-time.After(faults.plan.DialDelay):
		case <-ctx.Done():
			return nil, nil, context.Cause(ctx)
		}
	}
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	var conn net.Conn
	for backoff := 10 * time.Millisecond; ; {
		d := net.Dialer{Timeout: dialTimeout}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			conn = c
			break
		}
		if ctx.Err() != nil {
			return nil, nil, fmt.Errorf("tcp: dialing proc %d at %s: %w", to, addr, context.Cause(ctx))
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("tcp: dialing proc %d at %s: %w", to, addr, context.Cause(ctx))
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
	var payload [helloPayloadLen]byte
	payload[0] = purpose
	binary.LittleEndian.PutUint64(payload[1:], planHash)
	if err := writeSmallFrame(conn, wire.KindHello, self, to, epoch, 0, payload[:]); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	h, ack, err := readFrameCtx(ctx, conn, br)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("tcp: handshake with proc %d: %w", to, err)
	}
	if h.Kind != wire.KindAck || len(ack) < 1 {
		conn.Close()
		return nil, nil, fmt.Errorf("%w: proc %d sent kind %d instead of ack", ErrHandshake, to, h.Kind)
	}
	if ack[0] != ackOK {
		conn.Close()
		return nil, nil, fmt.Errorf("%w by proc %d: %s", ErrHandshake, to, string(ack[1:]))
	}
	return conn, br, nil
}

// link is one live connection to a peer process.
type link struct {
	proc   int
	conn   net.Conn
	outQ   chan []byte
	closed chan struct{} // closes writer on Transport.Close

	// lastRecv is the UnixNano of the last frame read from this peer
	// (any kind, heartbeats included) — the liveness signal the monitor
	// holds against the heartbeat deadline.
	lastRecv atomic.Int64
}

// redFrame is one collective frame (reduce contribution or release).
type redFrame struct {
	seq int64
	val int64
}

// Transport is one attempt's full mesh. It implements
// transport.Transport for the rank range its process hosts.
type Transport struct {
	cfg      Config
	epoch    int64
	r        int
	lo, hi   int
	rankProc []int // global rank → proc index

	links map[int]*link // peer proc → link

	inboxes  []chan transport.Batch // local ranks, indexed rank-lo
	maxDepth int64
	stale    int64 // frames dropped by the transport-level epoch fence
	hbMisses int64 // heartbeat intervals that passed without peer traffic

	// dead closes once on the first link failure; err carries the
	// PeerError every subsequently blocked call returns.
	dead     chan struct{}
	deadOnce sync.Once
	err      error

	closed chan struct{}
	wg     sync.WaitGroup
	wWg    sync.WaitGroup // writer goroutines only: Close waits for their
	// drain-and-flush before dropping the sockets

	// Hierarchical collective state (see package doc). pending holds
	// reduce contributions that arrived ahead of proc 0's local ranks —
	// a peer can be at most one collective ahead, but its frames for the
	// next sequence can land early.
	coll struct {
		mu    sync.Mutex
		cnt   int
		acc   int64
		seq   int64
		total int64
		err   error
		gen   chan struct{}
	}
	reduceCh  chan redFrame
	releaseCh chan redFrame
	pending   map[int64][]int64
}

// Connect builds the attempt's mesh: this process dials every peer with
// a lower index and claims the inbound connection from every peer with
// a higher one, all concurrently, failing if the mesh is not complete
// within the dial timeout.
func Connect(ctx context.Context, n *Node, cfg Config, epoch int64) (*Transport, error) {
	n.SetHandshakeTimeout(cfg.dialTimeout())
	self := cfg.Self
	p := cfg.Procs[self]
	r := cfg.Procs[len(cfg.Procs)-1].Hi
	t := &Transport{
		cfg: cfg, epoch: epoch, r: r, lo: p.Lo, hi: p.Hi,
		rankProc:  make([]int, r),
		links:     make(map[int]*link, len(cfg.Procs)-1),
		inboxes:   make([]chan transport.Batch, p.Hi-p.Lo),
		dead:      make(chan struct{}),
		closed:    make(chan struct{}),
		reduceCh:  make(chan redFrame, 4*len(cfg.Procs)+4),
		releaseCh: make(chan redFrame, 4),
		pending:   make(map[int64][]int64),
	}
	t.coll.gen = make(chan struct{})
	for pi, pr := range cfg.Procs {
		for rk := pr.Lo; rk < pr.Hi; rk++ {
			t.rankProc[rk] = pi
		}
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan transport.Batch, inboxDepth(r))
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.dialTimeout())
	defer cancel()
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for peer := range cfg.Procs {
		if peer == self {
			continue
		}
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var conn net.Conn
			var br *bufio.Reader
			var err error
			if self > peer {
				conn, br, err = dialPeer(ctx, cfg.Procs[peer].Addr, self, peer, epoch, cfg.PlanHash, purposeData, cfg.Faults, cfg.dialTimeout())
			} else {
				var pc parkedConn
				pc, err = n.claim(ctx, peer, epoch)
				conn, br = pc.conn, pc.br
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			l := &link{proc: peer, conn: conn, outQ: make(chan []byte, outQDepth), closed: t.closed}
			l.lastRecv.Store(time.Now().UnixNano())
			t.links[peer] = l
			t.wg.Add(2)
			t.wWg.Add(1)
			go t.writeLoop(l)
			go t.readLoop(l, br)
		}(peer)
	}
	wg.Wait()
	if firstErr != nil {
		t.Close()
		return nil, firstErr
	}
	if cfg.HeartbeatInterval > 0 && len(t.links) > 0 {
		t.wg.Add(1)
		go t.heartbeatLoop(cfg.HeartbeatInterval, cfg.heartbeatDeadline())
	}
	return t, nil
}

// ErrHeartbeat tags a peer declared dead by heartbeat deadline rather
// than by socket error — the partition detector's verdict.
var ErrHeartbeat = errors.New("tcp: heartbeat deadline exceeded")

// heartbeatLoop is the per-attempt liveness engine: every interval it
// queues a ping on each link and checks how long each peer has been
// silent. Any frame from the peer counts as life — data flow is its own
// heartbeat — so pings only matter on idle or black-holed links. A peer
// silent past the deadline fails the transport with a PeerError wrapping
// ErrHeartbeat, which is how a partition (sockets open, nothing moving)
// surfaces within a bounded time instead of as a hang.
func (t *Transport) heartbeatLoop(interval, deadline time.Duration) {
	defer t.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-t.closed:
			return
		case <-t.dead:
			return
		}
		now := time.Now().UnixNano()
		for peer, l := range t.links {
			silent := time.Duration(now - l.lastRecv.Load())
			if silent > interval {
				atomic.AddInt64(&t.hbMisses, 1)
			}
			if silent > deadline {
				t.fail(peer, fmt.Errorf("%w: no traffic from proc %d for %v (deadline %v)",
					ErrHeartbeat, peer, silent.Round(time.Millisecond), deadline))
				return
			}
			frame := framePool.Get().([]byte)[:0]
			frame = append(frame, make([]byte, wire.HeaderSize)...)
			wire.PutHeader(frame, wire.Header{
				Kind: wire.KindPing, From: uint32(t.cfg.Self), Dest: uint32(peer), Epoch: t.epoch,
			})
			select {
			case l.outQ <- frame:
			default:
				// Writer queue full: the link is moving real frames, which
				// already proves liveness to the peer.
				framePool.Put(frame[:0])
			}
		}
	}
}

// fail records the first link failure and releases every blocked call.
func (t *Transport) fail(peer int, err error) {
	t.deadOnce.Do(func() {
		t.err = &transport.PeerError{Proc: peer, Err: err}
		close(t.dead)
	})
}

// Err returns the transport failure, if any.
func (t *Transport) Err() error {
	select {
	case <-t.dead:
		return t.err
	default:
		return nil
	}
}

// writeLoop drains one link's frame queue onto the socket, applying the
// armed fault schedule per batch frame.
func (t *Transport) writeLoop(l *link) {
	defer t.wg.Done()
	defer t.wWg.Done()
	bw := bufio.NewWriterSize(l.conn, 1<<16)
	flushTimer := false
	for {
		var frame []byte
		if flushTimer {
			// Opportunistic flush: only block on the queue once buffered
			// frames are on the wire, so a quiet link never strands them.
			select {
			case frame = <-l.outQ:
			default:
				if err := bw.Flush(); err != nil {
					t.fail(l.proc, err)
					return
				}
				flushTimer = false
				continue
			}
		} else {
			select {
			case frame = <-l.outQ:
			case <-l.closed:
				// Graceful teardown: frames already queued (a collective
				// release, a final EOF) must reach the wire before Close
				// drops the socket — a peer still waiting on them would
				// otherwise see a spurious link death.
				for {
					select {
					case frame = <-l.outQ:
						if frame == nil {
							continue
						}
						if f := t.cfg.Faults; f != nil && f.Partitioned() {
							framePool.Put(frame[:0])
							continue
						}
						_, err := bw.Write(frame)
						framePool.Put(frame[:0]) //nolint:staticcheck // slice header boxing is fine here
						if err != nil {
							t.fail(l.proc, err)
							return
						}
					default:
						bw.Flush()
						return
					}
				}
			case <-t.dead:
				return
			}
		}
		if frame == nil {
			continue
		}
		if f := t.cfg.Faults; f != nil && frame[4] == wire.KindBatch {
			n := atomic.AddInt64(&f.frames, 1)
			switch {
			case f.plan.PartialWriteFrame > 0 && n == f.plan.PartialWriteFrame:
				bw.Write(frame[:len(frame)/2])
				bw.Flush()
				hardClose(l.conn)
				t.fail(l.proc, fmt.Errorf("%w (partial write)", errInjectedReset))
				return
			case f.plan.ResetAfterFrames > 0 && n == f.plan.ResetAfterFrames:
				hardClose(l.conn)
				t.fail(l.proc, errInjectedReset)
				return
			case f.plan.KillAfterFrames > 0 && n == f.plan.KillAfterFrames:
				bw.Write(frame)
				bw.Flush()
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			case f.plan.PartitionAfterFrames > 0 && n == f.plan.PartitionAfterFrames:
				f.Partition()
			}
		}
		if f := t.cfg.Faults; f != nil && f.Partitioned() {
			// Black-holed: the frame silently vanishes, the socket stays
			// open. The peer's only clue is its heartbeat deadline.
			framePool.Put(frame[:0])
			continue
		}
		_, err := bw.Write(frame)
		framePool.Put(frame[:0]) //nolint:staticcheck // slice header boxing is fine here
		if err != nil {
			t.fail(l.proc, err)
			return
		}
		flushTimer = true
	}
}

// hardClose drops the connection with an RST (SO_LINGER 0) so the peer
// observes a reset, not an orderly EOF — the fault the schedule asks for.
func hardClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// readLoop decodes one link's inbound frames: batches to the addressed
// rank's inbox (transport-level epoch fence first), collective frames to
// the reduce/release channels. A read error is the peer's death.
func (t *Transport) readLoop(l *link, br *bufio.Reader) {
	defer t.wg.Done()
	for {
		h, payload, err := readFrame(br)
		if err != nil {
			select {
			case <-t.closed:
			default:
				t.fail(l.proc, err)
			}
			return
		}
		if f := t.cfg.Faults; f != nil && f.Partitioned() {
			// The black-hole is symmetric: inbound frames vanish too, and
			// lastRecv stays stale so this side's own monitor also fires.
			continue
		}
		l.lastRecv.Store(time.Now().UnixNano())
		switch h.Kind {
		case wire.KindPing:
			// Pure liveness; lastRecv above is its entire effect.
			continue
		case wire.KindBatch:
			if h.Epoch != t.epoch {
				// A frame from another attempt — possible only through a
				// misrouted zombie connection, since links are epoch-scoped.
				// Drop it whole, loudly countable.
				atomic.AddInt64(&t.stale, 1)
				continue
			}
			n := len(payload) / 16
			var edges []graph.Edge
			if t.cfg.Pool != nil {
				edges = t.cfg.Pool.Get(n)
			} else {
				edges = make([]graph.Edge, 0, n)
			}
			edges, err = wire.DecodeBatchPayload(edges, h, payload)
			if err != nil {
				if t.cfg.Pool != nil {
					t.cfg.Pool.Put(edges)
				}
				t.fail(l.proc, err)
				return
			}
			b := transport.Batch{
				From: int(h.From), Dest: int(h.Dest),
				Epoch: h.Epoch, Tile: int(h.Tile),
				Edges: edges, EOF: h.EOF(),
			}
			dest := int(h.Dest) - t.lo
			if dest < 0 || dest >= len(t.inboxes) {
				t.fail(l.proc, fmt.Errorf("tcp: frame for rank %d, local range [%d,%d)", h.Dest, t.lo, t.hi))
				return
			}
			select {
			case t.inboxes[dest] <- b:
				if d := int64(len(t.inboxes[dest])); d > 0 {
					atomicMax(&t.maxDepth, d)
				}
			case <-t.closed:
				return
			case <-t.dead:
				return
			}
		case wire.KindReduce:
			select {
			case t.reduceCh <- redFrame{seq: h.Tile, val: int64(binary.LittleEndian.Uint64(payload))}:
			case <-t.closed:
				return
			}
		case wire.KindRelease:
			select {
			case t.releaseCh <- redFrame{seq: h.Tile, val: int64(binary.LittleEndian.Uint64(payload))}:
			case <-t.closed:
				return
			}
		default:
			t.fail(l.proc, fmt.Errorf("tcp: unexpected frame kind %d mid-run", h.Kind))
			return
		}
	}
}

// R implements Transport.
func (t *Transport) R() int { return t.r }

// Local implements Transport.
func (t *Transport) Local() (lo, hi int) { return t.lo, t.hi }

// Epoch returns the attempt epoch the mesh was built for.
func (t *Transport) Epoch() int64 { return t.epoch }

// SendBatch implements Transport. Local destinations are delivered
// through the in-process inboxes exactly like the chan transport;
// remote ones serialize onto the peer link's writer queue, after which
// the staging buffer is recycled to the pool — the wire owns the bytes.
func (t *Transport) SendBatch(ctx context.Context, b transport.Batch, progress func(transport.Batch)) error {
	select {
	case <-t.dead:
		// A failed mesh refuses new work immediately: without this check
		// a send could still slip onto a dead link's queue (its writer is
		// gone) and look delivered, masking the failure until the queue
		// fills.
		return t.err
	default:
	}
	if b.Dest == b.From {
		progress(b)
		return nil
	}
	own := t.inboxes[b.From-t.lo]
	if t.rankProc[b.Dest] == t.cfg.Self {
		inbox := t.inboxes[b.Dest-t.lo]
		for {
			select {
			case inbox <- b:
				if d := int64(len(inbox)); d > 0 {
					atomicMax(&t.maxDepth, d)
				}
				return nil
			case m := <-own:
				progress(m)
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-t.dead:
				return t.err
			}
		}
	}
	l := t.links[t.rankProc[b.Dest]]
	frame := wire.AppendBatch(framePool.Get().([]byte)[:0],
		uint32(b.From), uint32(b.Dest), b.Epoch, int64(b.Tile), b.Edges, b.EOF)
	for {
		select {
		case l.outQ <- frame:
			// The frame owns the bytes now; the staging buffer goes back
			// to the pool for the next flush.
			if t.cfg.Pool != nil {
				t.cfg.Pool.Put(b.Edges)
			}
			return nil
		case m := <-own:
			progress(m)
		case <-ctx.Done():
			framePool.Put(frame[:0])
			return context.Cause(ctx)
		case <-t.dead:
			framePool.Put(frame[:0])
			return t.err
		}
	}
}

// TrySendBatch implements transport.TrySender: a non-blocking SendBatch.
// Local destinations are accepted only when the in-process inbox has
// room; remote ones only when the peer link's writer queue does. On
// refusal the batch stays unserialized with the caller (the frame built
// for a refused remote send goes straight back to the frame pool), so a
// later retry re-encodes — refusals are rare enough that re-encoding is
// cheaper than holding frames hostage to queue pressure.
func (t *Transport) TrySendBatch(b transport.Batch) (bool, error) {
	select {
	case <-t.dead:
		return false, t.err
	default:
	}
	if b.Dest == b.From {
		return false, nil
	}
	if t.rankProc[b.Dest] == t.cfg.Self {
		inbox := t.inboxes[b.Dest-t.lo]
		select {
		case inbox <- b:
			if d := int64(len(inbox)); d > 0 {
				atomicMax(&t.maxDepth, d)
			}
			return true, nil
		default:
			return false, nil
		}
	}
	l := t.links[t.rankProc[b.Dest]]
	frame := wire.AppendBatch(framePool.Get().([]byte)[:0],
		uint32(b.From), uint32(b.Dest), b.Epoch, int64(b.Tile), b.Edges, b.EOF)
	select {
	case l.outQ <- frame:
		if t.cfg.Pool != nil {
			t.cfg.Pool.Put(b.Edges)
		}
		return true, nil
	default:
		framePool.Put(frame[:0])
		return false, nil
	}
}

// TryRecv implements Transport.
func (t *Transport) TryRecv(rank int) (transport.Batch, bool) {
	select {
	case b := <-t.inboxes[rank-t.lo]:
		return b, true
	default:
		return transport.Batch{}, false
	}
}

// Recv implements Transport.
func (t *Transport) Recv(ctx context.Context, rank int) (transport.Batch, error) {
	select {
	case b := <-t.inboxes[rank-t.lo]:
		return b, nil
	case <-ctx.Done():
		return transport.Batch{}, context.Cause(ctx)
	case <-t.dead:
		// Batches a peer sent before closing are already in the inbox
		// (per-link FIFO): deliver them with priority so a graceful peer
		// shutdown after its last send never eats a delivered batch.
		select {
		case b := <-t.inboxes[rank-t.lo]:
			return b, nil
		default:
			return transport.Batch{}, t.err
		}
	}
}

// Barrier implements Transport.
func (t *Transport) Barrier(ctx context.Context, rank int) error {
	_, err := t.collective(ctx, 0)
	return err
}

// AllReduceSum implements Transport.
func (t *Transport) AllReduceSum(ctx context.Context, rank int, v int64) (int64, error) {
	return t.collective(ctx, v)
}

// collective combines the local ranks' contributions, then the last
// local arriver runs the cross-process star phase and publishes the
// grand total to the waiting ranks.
func (t *Transport) collective(ctx context.Context, v int64) (int64, error) {
	c := &t.coll
	nLocal := t.hi - t.lo
	c.mu.Lock()
	c.acc += v
	c.cnt++
	if c.cnt < nLocal {
		ch := c.gen
		c.mu.Unlock()
		// A mesh death while waiting does not abort the wait: the last
		// local arriver may still complete this collective from frames a
		// peer sent before closing (they are already buffered locally —
		// per-link FIFO), and if the death was real it publishes t.err
		// through the same channel. Only ctx bounds the wait.
		deadCh := t.dead
		for {
			select {
			case <-ch:
				return c.total, c.err
			case <-ctx.Done():
				c.mu.Lock()
				select {
				case <-ch:
					c.mu.Unlock()
					return c.total, c.err
				default:
				}
				c.cnt--
				c.acc -= v
				c.mu.Unlock()
				return 0, context.Cause(ctx)
			case <-deadCh:
				deadCh = nil // noted; keep waiting for the publication
			}
		}
	}
	sum, seq := c.acc, c.seq
	c.cnt, c.acc = 0, 0
	c.mu.Unlock()
	total, err := t.netReduce(ctx, seq, sum)
	c.mu.Lock()
	c.total, c.err = total, err
	c.seq++
	ch := c.gen
	c.gen = make(chan struct{})
	close(ch)
	c.mu.Unlock()
	return total, err
}

// netReduce is the cross-process phase: workers send their local sum to
// proc 0 and wait for the release; proc 0 collects every contribution
// for this sequence number (buffering early arrivals for the next one)
// and broadcasts the total.
func (t *Transport) netReduce(ctx context.Context, seq, sum int64) (int64, error) {
	if len(t.cfg.Procs) == 1 {
		return sum, nil
	}
	var payload [8]byte
	if t.cfg.Self != 0 {
		binary.LittleEndian.PutUint64(payload[:], uint64(sum))
		if err := t.sendSmall(ctx, 0, wire.KindReduce, seq, payload[:]); err != nil {
			return 0, err
		}
		deadCh := t.dead
		for {
			select {
			case m := <-t.releaseCh:
				if m.seq == seq {
					return m.val, nil
				}
				// An older release is residue of a generation this proc
				// already left (possible only across a Reset); drop it.
			case <-ctx.Done():
				return 0, context.Cause(ctx)
			case <-deadCh:
				// The mesh died — but a release sent before the peer
				// closed is already in the channel (per-link FIFO), so
				// drain it with priority before declaring the failure.
				for {
					select {
					case m := <-t.releaseCh:
						if m.seq == seq {
							return m.val, nil
						}
					default:
						return 0, t.err
					}
				}
			}
		}
	}
	total := sum
	need := len(t.cfg.Procs) - 1
	fold := func(m redFrame) {
		switch {
		case m.seq == seq:
			total += m.val
			need--
		case m.seq > seq:
			t.pending[m.seq] = append(t.pending[m.seq], m.val)
		}
	}
	for _, v := range t.pending[seq] {
		total += v
		need--
	}
	delete(t.pending, seq)
	deadCh := t.dead
collect:
	for need > 0 {
		select {
		case m := <-t.reduceCh:
			fold(m)
		case <-ctx.Done():
			return 0, context.Cause(ctx)
		case <-deadCh:
			// Contributions sent before a peer's close are already
			// buffered (per-link FIFO); drain them with priority, and
			// fail only if a needed one is genuinely missing.
			for need > 0 {
				select {
				case m := <-t.reduceCh:
					fold(m)
				default:
					return 0, t.err
				}
			}
			break collect
		}
	}
	binary.LittleEndian.PutUint64(payload[:], uint64(total))
	for peer := range t.links {
		if err := t.sendSmall(ctx, peer, wire.KindRelease, seq, payload[:]); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// sendSmall queues one fixed-payload frame on a peer link.
func (t *Transport) sendSmall(ctx context.Context, peer int, kind uint8, seq int64, payload []byte) error {
	frame := framePool.Get().([]byte)[:0]
	n := len(frame)
	frame = append(frame, make([]byte, wire.HeaderSize+len(payload))...)
	wire.PutHeader(frame[n:], wire.Header{
		Kind: kind, From: uint32(t.cfg.Self), Dest: uint32(peer),
		Epoch: t.epoch, Tile: seq, PayloadLen: uint32(len(payload)),
	})
	copy(frame[n+wire.HeaderSize:], payload)
	select {
	case t.links[peer].outQ <- frame:
		return nil
	case <-ctx.Done():
		framePool.Put(frame[:0])
		return context.Cause(ctx)
	case <-t.dead:
		framePool.Put(frame[:0])
		return t.err
	}
}

// Reset implements Transport: drains local inboxes and rewinds the
// local collective stage. Cluster mode builds a fresh mesh per attempt
// instead of resetting, so this only serves single-process use of the
// TCP transport (benchmarks, conformance).
func (t *Transport) Reset(release func(transport.Batch)) {
	for _, ch := range t.inboxes {
	drain:
		for {
			select {
			case b := <-ch:
				if release != nil {
					release(b)
				}
			default:
				break drain
			}
		}
	}
	t.coll.mu.Lock()
	t.coll.cnt, t.coll.acc = 0, 0
	t.coll.mu.Unlock()
	atomic.StoreInt64(&t.maxDepth, 0)
}

// Close implements Transport: tears down every link and joins the
// reader/writer goroutines. Safe to call more than once.
func (t *Transport) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
	}
	close(t.closed)
	// Writers first: they drain queued frames and flush on t.closed, so a
	// release or EOF already queued reaches the peer before the socket
	// drops. A writer blocked on a dead peer exits via the write error.
	t.wWg.Wait()
	for _, l := range t.links {
		l.conn.Close()
	}
	t.wg.Wait()
	return nil
}

// MaxDepth reports the deepest observed inbox backlog, in batches.
func (t *Transport) MaxDepth() int64 { return atomic.LoadInt64(&t.maxDepth) }

// StaleFrames reports batch frames dropped by the transport-level epoch
// fence.
func (t *Transport) StaleFrames() int64 { return atomic.LoadInt64(&t.stale) }

// HeartbeatMisses reports heartbeat intervals that elapsed with no
// traffic from some peer — early smoke for a link going quiet, whether
// or not it later crossed the deadline.
func (t *Transport) HeartbeatMisses() int64 { return atomic.LoadInt64(&t.hbMisses) }

// Inject enqueues a batch directly into a local destination inbox — the
// conformance suite's hook for forging residue from another attempt.
func (t *Transport) Inject(b transport.Batch) { t.inboxes[b.Dest-t.lo] <- b }

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// readFrame reads one complete frame (header + payload). The returned
// payload aliases a per-call allocation sized by the header.
func readFrame(br *bufio.Reader) (wire.Header, []byte, error) {
	var hdr [wire.HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return wire.Header{}, nil, err
	}
	h, err := wire.ParseHeader(hdr[:])
	if err != nil {
		return wire.Header{}, nil, err
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return wire.Header{}, nil, fmt.Errorf("tcp: torn frame: %w", err)
	}
	return h, payload, nil
}

// readFrameCtx is readFrame bounded by ctx via short read deadlines —
// for handshake reads, where the peer may answer much later (deferred
// ack) or never (refused).
func readFrameCtx(ctx context.Context, conn net.Conn, br *bufio.Reader) (wire.Header, []byte, error) {
	for {
		conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		h, payload, err := readFrame(br)
		if err == nil {
			conn.SetReadDeadline(time.Time{})
			return h, payload, nil
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() && ctx.Err() == nil {
			continue
		}
		if ctx.Err() != nil {
			return wire.Header{}, nil, context.Cause(ctx)
		}
		return wire.Header{}, nil, err
	}
}

// writeSmallFrame writes one small frame straight to the connection.
func writeSmallFrame(conn net.Conn, kind uint8, from, dest int, epoch, tile int64, payload []byte) error {
	buf := make([]byte, wire.HeaderSize+len(payload))
	wire.PutHeader(buf, wire.Header{
		Kind: kind, From: uint32(from), Dest: uint32(dest),
		Epoch: epoch, Tile: tile, PayloadLen: uint32(len(payload)),
	})
	copy(buf[wire.HeaderSize:], payload)
	_, err := conn.Write(buf)
	return err
}

// writeAck writes a handshake ack (status + optional error text).
func writeAck(conn net.Conn, from, dest int, epoch int64, status byte, msg string) error {
	payload := append([]byte{status}, msg...)
	return writeSmallFrame(conn, wire.KindAck, from, dest, epoch, 0, payload)
}

// CtrlConn is a persistent control link carrying JSON-bodied frames —
// the worker↔head channel cluster mode coordinates attempts over.
type CtrlConn struct {
	conn net.Conn
	br   *bufio.Reader
	self int
	Peer int // the proc index at the other end

	wmu sync.Mutex

	// hbDeadline, when positive, bounds how long Recv tolerates total
	// silence before declaring the peer dead. hbStop ends the pinger.
	hbDeadline time.Duration
	hbOnce     sync.Once
	hbStop     chan struct{}
	closeOnce  sync.Once
}

func newCtrlConn(conn net.Conn, br *bufio.Reader, self, peer int) *CtrlConn {
	return &CtrlConn{conn: conn, br: br, self: self, Peer: peer, hbStop: make(chan struct{})}
}

// DialControl opens a control connection to the head. dialTimeout bounds
// each underlying dial attempt (≤ 0 means 10s); ctx bounds the whole
// exchange including the deferred ack.
func DialControl(ctx context.Context, addr string, self int, planHash uint64, dialTimeout time.Duration) (*CtrlConn, error) {
	conn, br, err := dialPeer(ctx, addr, self, 0, -1, planHash, purposeCtrl, nil, dialTimeout)
	if err != nil {
		return nil, err
	}
	return newCtrlConn(conn, br, self, 0), nil
}

// StartHeartbeat arms liveness on the control link: a pinger sends
// KindPing every interval, and Recv starts refusing to wait longer than
// deadline (≤ 0 means 5× interval) for any frame. Both ends must arm —
// each side's pings feed the other side's deadline. Safe to call once;
// Close stops the pinger.
func (cc *CtrlConn) StartHeartbeat(interval, deadline time.Duration) {
	if interval <= 0 {
		return
	}
	if deadline <= 0 {
		deadline = 5 * interval
	}
	cc.hbOnce.Do(func() {
		cc.hbDeadline = deadline
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					cc.wmu.Lock()
					err := writeSmallFrame(cc.conn, wire.KindPing, cc.self, cc.Peer, 0, 0, nil)
					cc.wmu.Unlock()
					if err != nil {
						return // Recv surfaces the death; pinging is pointless now
					}
				case <-cc.hbStop:
					return
				}
			}
		}()
	})
}

// Send JSON-encodes v into one control frame.
func (cc *CtrlConn) Send(v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return writeSmallFrame(cc.conn, wire.KindControl, cc.self, cc.Peer, 0, 0, body)
}

// Recv blocks for the next control frame and decodes it into v.
// Heartbeat frames are consumed silently as proof of life; with
// StartHeartbeat armed, total silence past the deadline returns a
// PeerError wrapping ErrHeartbeat instead of blocking forever on a
// black-holed link.
func (cc *CtrlConn) Recv(ctx context.Context, v any) error {
	for {
		rctx := ctx
		var cancel context.CancelFunc
		if d := cc.hbDeadline; d > 0 {
			rctx, cancel = context.WithTimeoutCause(ctx, d,
				&transport.PeerError{Proc: cc.Peer, Err: fmt.Errorf("%w: control link silent for %v", ErrHeartbeat, d)})
		}
		h, payload, err := readFrameCtx(rctx, cc.conn, cc.br)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			return err
		}
		if h.Kind == wire.KindPing {
			continue
		}
		if h.Kind != wire.KindControl {
			return fmt.Errorf("tcp: control link got frame kind %d", h.Kind)
		}
		return json.Unmarshal(payload, v)
	}
}

// Close closes the control connection and stops its heartbeat pinger.
func (cc *CtrlConn) Close() error {
	cc.closeOnce.Do(func() { close(cc.hbStop) })
	return cc.conn.Close()
}
