package tcp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kronlab/internal/dist/transport"
	"kronlab/internal/graph"
)

const testHash = 0x6b726f6e6c616221

// mesh builds an n-proc loopback cluster inside the test process, with
// an optional fault schedule per proc.
func mesh(t *testing.T, r, nprocs int, epoch int64, faults map[int]*FaultState) []*Transport {
	return meshHB(t, r, nprocs, epoch, faults, 0, 0)
}

// meshHB is mesh with application heartbeats armed at the given
// interval/deadline (zero interval disables them, as in Config).
func meshHB(t *testing.T, r, nprocs int, epoch int64, faults map[int]*FaultState, hbInterval, hbDeadline time.Duration) []*Transport {
	t.Helper()
	nodes := make([]*Node, nprocs)
	addrs := make([]string, nprocs)
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0", i, testHash)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	procs := transport.SplitRanks(addrs, r)
	ts := make([]*Transport, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for i := range ts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts[i], errs[i] = Connect(context.Background(), nodes[i],
				Config{Procs: procs, Self: i, PlanHash: testHash, Faults: faults[i],
					HeartbeatInterval: hbInterval, HeartbeatDeadline: hbDeadline}, epoch)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("connect proc %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	})
	return ts
}

// TestHandshakePlanHashRefused asserts a dialer with a different plan
// hash is refused loudly, with the acceptor's expectation in the error.
func TestHandshakePlanHashRefused(t *testing.T) {
	n0, err := NewNode("127.0.0.1:0", 0, testHash)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewNode("127.0.0.1:0", 1, testHash+1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	procs := []transport.Proc{{Addr: n0.Addr(), Lo: 0, Hi: 2}, {Addr: n1.Addr(), Lo: 2, Hi: 4}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = Connect(ctx, n1, Config{Procs: procs, Self: 1, PlanHash: testHash + 1}, 0)
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("Connect with mismatched plan hash returned %v, want %v", err, ErrHandshake)
	}
}

// TestHandshakeEpochParking asserts a dialer one epoch ahead is parked
// (not refused) until the acceptor's process reaches that attempt —
// the respawn/recovery rendezvous.
func TestHandshakeEpochParking(t *testing.T) {
	n0, err := NewNode("127.0.0.1:0", 0, testHash)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewNode("127.0.0.1:0", 1, testHash)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	procs := []transport.Proc{{Addr: n0.Addr(), Lo: 0, Hi: 1}, {Addr: n1.Addr(), Lo: 1, Hi: 2}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	type res struct {
		tr  *Transport
		err error
	}
	dialed := make(chan res, 1)
	go func() {
		tr, err := Connect(ctx, n1, Config{Procs: procs, Self: 1, PlanHash: testHash}, 5)
		dialed <- res{tr, err}
	}()
	// The dialer must still be parked: proc 0 has not entered epoch 5.
	select {
	case r := <-dialed:
		t.Fatalf("dialer released before acceptor reached the epoch: %v %v", r.tr, r.err)
	case <-time.After(200 * time.Millisecond):
	}
	t0, err := Connect(ctx, n0, Config{Procs: procs, Self: 0, PlanHash: testHash}, 5)
	if err != nil {
		t.Fatalf("acceptor connect: %v", err)
	}
	defer t0.Close()
	r := <-dialed
	if r.err != nil {
		t.Fatalf("parked dialer failed: %v", r.err)
	}
	defer r.tr.Close()
}

// sendUntilError pushes batches from rank `from` to rank `dest` until
// the transport reports a failure, returning the error and the number
// of successful sends.
func sendUntilError(ctx context.Context, tr *Transport, from, dest int, epoch int64) (int, error) {
	for i := 0; ; i++ {
		b := transport.Batch{
			From: from, Dest: dest, Epoch: epoch, Tile: i,
			Edges: []graph.Edge{{U: int64(i), V: int64(i)}},
		}
		if err := tr.SendBatch(ctx, b, func(transport.Batch) {}); err != nil {
			return i, err
		}
		if i > 10000 {
			return i, nil
		}
	}
}

// TestFaultConnectionReset arms ResetAfterFrames and asserts both ends
// of the link surface a PeerError naming the right proc.
func TestFaultConnectionReset(t *testing.T) {
	faults := map[int]*FaultState{1: NewFaultState(transport.TCPFaults{ResetAfterFrames: 3})}
	ts := mesh(t, 2, 2, 1, faults)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	recvErr := make(chan error, 1)
	go func() {
		for {
			if _, err := ts[0].Recv(ctx, 0); err != nil {
				recvErr <- err
				return
			}
		}
	}()
	_, sendErr := sendUntilError(ctx, ts[1], 1, 0, 1)
	var pe *transport.PeerError
	if !errors.As(sendErr, &pe) || pe.Proc != 0 {
		t.Fatalf("sender error = %v, want PeerError{Proc: 0}", sendErr)
	}
	select {
	case err := <-recvErr:
		if !errors.As(err, &pe) || pe.Proc != 1 {
			t.Fatalf("receiver error = %v, want PeerError{Proc: 1}", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never observed the reset")
	}
}

// TestFaultPartialWrite arms PartialWriteFrame and asserts the torn
// frame is rejected by the peer's decoder — a loud link death, never a
// misparsed batch.
func TestFaultPartialWrite(t *testing.T) {
	faults := map[int]*FaultState{1: NewFaultState(transport.TCPFaults{PartialWriteFrame: 2})}
	ts := mesh(t, 2, 2, 1, faults)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	type recvRes struct {
		n   int
		err error
	}
	recvCh := make(chan recvRes, 1)
	go func() {
		n := 0
		for {
			b, err := ts[0].Recv(ctx, 0)
			if err != nil {
				recvCh <- recvRes{n, err}
				return
			}
			if len(b.Edges) != 1 || b.Edges[0].U != int64(b.Tile) {
				recvCh <- recvRes{n, errors.New("torn frame decoded as a batch")}
				return
			}
			n++
		}
	}()
	if _, err := sendUntilError(ctx, ts[1], 1, 0, 1); err == nil {
		t.Fatal("sender never observed the partial-write death")
	}
	r := <-recvCh
	var pe *transport.PeerError
	if !errors.As(r.err, &pe) {
		t.Fatalf("receiver error = %v, want PeerError", r.err)
	}
	if r.n >= 2 {
		t.Fatalf("receiver decoded %d whole batches out of a stream torn at frame 2", r.n)
	}
}

// TestStaleFrameFence asserts the wire-level epoch fence: a batch frame
// stamped with another epoch is dropped at the receiving reader and
// counted, never delivered.
func TestStaleFrameFence(t *testing.T) {
	ts := mesh(t, 2, 2, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	stale := transport.Batch{From: 1, Dest: 0, Epoch: 3, Tile: 9,
		Edges: []graph.Edge{{U: 1, V: 1}}}
	if err := ts[1].SendBatch(ctx, stale, func(transport.Batch) {}); err != nil {
		t.Fatal(err)
	}
	sentinel := transport.Batch{From: 1, Dest: 0, Epoch: 4, Tile: 10}
	if err := ts[1].SendBatch(ctx, sentinel, func(transport.Batch) {}); err != nil {
		t.Fatal(err)
	}
	b, err := ts[0].Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Tile != 10 {
		t.Fatalf("received tile %d; stale batch leaked through the fence", b.Tile)
	}
	if n := ts[0].StaleFrames(); n != 1 {
		t.Fatalf("StaleFrames = %d, want 1", n)
	}
}

// TestDialDelayFault asserts the DialDelay fault actually delays mesh
// establishment (a slow peer coming up).
func TestDialDelayFault(t *testing.T) {
	start := time.Now()
	faults := map[int]*FaultState{1: NewFaultState(transport.TCPFaults{DialDelay: 150 * time.Millisecond})}
	mesh(t, 2, 2, 1, faults)
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("mesh up in %v despite a 150ms dial delay", d)
	}
}

// TestHeartbeatIdleLinkStaysAlive pins the liveness half of the
// heartbeat contract: an armed but completely idle mesh must NOT be
// declared dead — the pings themselves are the traffic that proves the
// peer alive. (The detection half is the partition suite below.)
func TestHeartbeatIdleLinkStaysAlive(t *testing.T) {
	ts := meshHB(t, 2, 2, 1, nil, 20*time.Millisecond, 100*time.Millisecond)
	time.Sleep(400 * time.Millisecond) // many deadlines' worth of idle
	for i, tr := range ts {
		if err := tr.Err(); err != nil {
			t.Fatalf("idle heartbeated proc %d failed: %v", i, err)
		}
	}
	// The link must still carry traffic.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b := transport.Batch{From: 1, Dest: 0, Epoch: 1, Tile: 3,
		Edges: []graph.Edge{{U: 7, V: 8}}}
	if err := ts[1].SendBatch(ctx, b, func(transport.Batch) {}); err != nil {
		t.Fatalf("send after idle: %v", err)
	}
	got, err := ts[0].Recv(ctx, 0)
	if err != nil {
		t.Fatalf("recv after idle: %v", err)
	}
	if got.Tile != 3 {
		t.Fatalf("got tile %d, want 3", got.Tile)
	}
}

// TestPartitionSoakTCP is the partition soak: repeatedly build a
// heartbeated mesh, black-hole one side mid-traffic at a varying frame
// count (sockets stay open — no RST, no FIN), and require BOTH sides to
// surface a PeerError naming the other proc. Run under -race, the soak
// also shakes the heartbeat/partition state machine for data races.
func TestPartitionSoakTCP(t *testing.T) {
	const rounds = 6
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			faults := map[int]*FaultState{
				1: NewFaultState(transport.TCPFaults{PartitionAfterFrames: int64(2 + round)}),
			}
			ts := meshHB(t, 2, 2, 1, faults, 10*time.Millisecond, 60*time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()

			recvErr := make(chan error, 1)
			go func() {
				for {
					if _, err := ts[0].Recv(ctx, 0); err != nil {
						recvErr <- err
						return
					}
				}
			}()
			sendErr := make(chan error, 1)
			go func() {
				for i := 0; ; i++ {
					b := transport.Batch{From: 1, Dest: 0, Epoch: 1, Tile: i,
						Edges: []graph.Edge{{U: int64(i), V: int64(i)}}}
					if err := ts[1].SendBatch(ctx, b, func(transport.Batch) {}); err != nil {
						sendErr <- err
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
			var pe *transport.PeerError
			select {
			case err := <-recvErr:
				if !errors.As(err, &pe) || pe.Proc != 1 {
					t.Fatalf("observer error = %v, want PeerError{Proc: 1}", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("observer never detected the partition")
			}
			select {
			case err := <-sendErr:
				if !errors.As(err, &pe) || pe.Proc != 0 {
					t.Fatalf("partitioned side error = %v, want PeerError{Proc: 0}", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("partitioned side never detected its own isolation")
			}
			if n := ts[0].HeartbeatMisses(); n == 0 {
				t.Fatal("observer counted no heartbeat misses across a detected partition")
			}
		})
	}
}

// TestControlConn round-trips JSON over a control link in both
// directions, the channel cluster supervision runs on.
func TestControlConn(t *testing.T) {
	n0, err := NewNode("127.0.0.1:0", 0, testHash)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	type msg struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}
	done := make(chan error, 1)
	go func() {
		cc, err := DialControl(ctx, n0.Addr(), 2, testHash, 0)
		if err != nil {
			done <- err
			return
		}
		defer cc.Close()
		if err := cc.Send(msg{Kind: "report", N: 41}); err != nil {
			done <- err
			return
		}
		var reply msg
		if err := cc.Recv(ctx, &reply); err != nil {
			done <- err
			return
		}
		if reply.Kind != "begin" || reply.N != 42 {
			done <- errors.New("reply mangled")
			return
		}
		done <- nil
	}()
	cc, err := n0.AcceptControl(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if cc.Peer != 2 {
		t.Fatalf("control peer = %d, want 2", cc.Peer)
	}
	var m msg
	if err := cc.Recv(ctx, &m); err != nil {
		t.Fatal(err)
	}
	if m.Kind != "report" || m.N != 41 {
		t.Fatalf("control message mangled: %+v", m)
	}
	if err := cc.Send(msg{Kind: "begin", N: 42}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
