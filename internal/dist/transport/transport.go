// Package transport defines the rank-to-rank link under the distributed
// engine's Exchange: a Transport delivers tile-framed edge batches
// between ranks and runs the two collectives (barrier, all-reduce sum)
// the engine's teardown integrity check needs. The engine in
// internal/dist is written against this interface only, so the same
// Plan→Expand→Route→Sink code runs over goroutine channels in one
// process (transport/chan) or over length-prefixed TCP between processes
// (transport/tcp) — the paper's actual deployment shape (MPI on Sequoia,
// PAPER.md §2), with only the link layer swapped.
//
// Contract highlights (the conformance suite in internal/dist asserts
// these against every implementation):
//
//   - Per-link FIFO: batches from rank s to rank d are delivered in the
//     order s sent them. Cross-link order is unspecified.
//   - SendBatch may block; while it does, the implementation must keep
//     delivering batches addressed to the *sending* rank through the
//     progress callback — the inline receive progress that makes a
//     bufferless all-to-all deadlock-free (any rank blocked sending is
//     itself one recv away from freeing a peer).
//   - A blocked SendBatch/Recv/collective returns the cancellation cause
//     of ctx when the run is torn down, never hangs.
//   - Ownership of Batch.Edges passes to the transport on a successful
//     SendBatch only: an in-process transport hands the very slice to
//     the receiver (zero copy), a wire transport serializes it and
//     returns it to the BufferPool. On an error return the buffer stays
//     with the caller (the engine's abort path recycles it exactly once).
package transport

import (
	"context"
	"fmt"
	"time"

	"kronlab/internal/graph"
)

// Batch is one unit of rank-to-rank traffic: a tile-framed run of
// product edges from one sender, or a bare EOF marker ending the
// sender's stream for the exchange. Epoch is the run attempt the batch
// belongs to; receivers fence on it so residue from a torn-down attempt
// can never be double-applied.
type Batch struct {
	From  int
	Dest  int
	Epoch int64
	Tile  int
	Edges []graph.Edge
	EOF   bool
}

// BufferPool recycles edge batch buffers across the transport boundary,
// so a wire transport's decode path and serialize-then-discard path
// stay in the engine's pooled-buffer accounting instead of allocating
// per batch.
type BufferPool interface {
	// Get returns an empty buffer with capacity for about n edges.
	Get(n int) []graph.Edge
	// Put recycles a buffer the transport is done with.
	Put(b []graph.Edge)
}

// Transport is the rank-to-rank link under the engine's Exchange. All
// rank arguments are global rank IDs in [0, R); Recv/TryRecv may only be
// called for local ranks. Implementations must be safe for concurrent
// use by all local ranks (one goroutine per rank).
type Transport interface {
	// R returns the total number of ranks across the whole cluster.
	R() int
	// Local returns the contiguous rank range [lo, hi) hosted by this
	// process. In-process transports host every rank: (0, R).
	Local() (lo, hi int)
	// SendBatch delivers b to rank b.Dest, blocking until accepted.
	// While blocked it delivers batches addressed to rank b.From through
	// progress. It returns ctx's cancellation cause when the run is torn
	// down, or a transport failure (e.g. a dead peer link) — either way
	// the batch was not delivered and its buffer stays with the caller.
	SendBatch(ctx context.Context, b Batch, progress func(Batch)) error
	// TryRecv pops one pending batch for a local rank without blocking.
	TryRecv(rank int) (Batch, bool)
	// Recv blocks until a batch for a local rank arrives, returning
	// ctx's cancellation cause or the transport failure otherwise.
	Recv(ctx context.Context, rank int) (Batch, error)
	// Barrier blocks rank until every rank of every process has entered
	// the same barrier generation, or returns the cancellation cause.
	Barrier(ctx context.Context, rank int) error
	// AllReduceSum adds v across every rank of every process and returns
	// the total to each, or the cancellation cause.
	AllReduceSum(ctx context.Context, rank int, v int64) (int64, error)
	// Reset drains locally buffered residue (handing each drained batch
	// to release) and rewinds collective state, returning the transport
	// to a runnable state between run attempts.
	Reset(release func(Batch))
	// Close tears the transport down; blocked calls return errors.
	Close() error
}

// TrySender is the optional non-blocking send surface a Transport can
// offer. The exchange uses it for double-buffered sends: when a staged
// batch would block, the shipper parks it as the destination's one
// in-flight pending batch and keeps expanding instead of stalling on
// the transport.
//
// Contract (asserted by the conformance suite alongside the blocking
// one):
//
//   - TrySendBatch(b) == (true, nil) means the batch was accepted
//     exactly as a successful SendBatch would have accepted it —
//     ownership of b.Edges passes to the transport, per-link FIFO order
//     is preserved relative to every other accepted send from b.From to
//     b.Dest.
//   - (false, nil) means the transport is momentarily full; nothing was
//     delivered and the buffer stays with the caller, who may retry
//     later. A transport must not reorder: a batch refused now and
//     retried later still lands after every batch accepted before it
//     and before every batch accepted after it, because the caller is
//     single-threaded per (from, dest) link.
//   - (false, err) reports a dead link or torn-down run: the buffer
//     stays with the caller and subsequent sends will fail too.
//
// TrySendBatch never blocks and never invokes receive progress; callers
// interleave their own progress polling between attempts.
type TrySender interface {
	TrySendBatch(b Batch) (bool, error)
}

// PeerError reports the death of a peer process's link mid-run — the
// cluster-mode analogue of a rank crash. It carries the peer's proc
// index so a supervisor can blame the right process and wait for its
// respawn.
type PeerError struct {
	Proc int
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("transport: link to proc %d failed: %v", e.Proc, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Proc names one process of a static cluster: its listen address and the
// contiguous global rank range [Lo, Hi) it hosts.
type Proc struct {
	Addr   string
	Lo, Hi int
}

// Ranks returns the number of ranks the process hosts.
func (p Proc) Ranks() int { return p.Hi - p.Lo }

// SplitRanks assigns r ranks contiguously and near-evenly across the
// given addresses — the static peer layout of cluster mode. Process i
// owns [i·r/n, (i+1)·r/n).
func SplitRanks(addrs []string, r int) []Proc {
	n := len(addrs)
	procs := make([]Proc, n)
	for i, a := range addrs {
		procs[i] = Proc{Addr: a, Lo: i * r / n, Hi: (i + 1) * r / n}
	}
	return procs
}

// TCPFaults schedules wire-level fault injection for the TCP transport —
// the cluster-mode counterpart of the link faults dist.FaultPlan injects
// on the simulated transport. The zero value injects nothing. Frame
// counters are process-wide across links, so a schedule stays
// deterministic regardless of how traffic interleaves across peers.
type TCPFaults struct {
	// DialDelay delays every outbound dial — a slow peer coming up.
	DialDelay time.Duration
	// ResetAfterFrames hard-closes (RST) the link that writes the Nth
	// outbound batch frame of this process, mid-exchange.
	ResetAfterFrames int64
	// PartialWriteFrame writes only a prefix of the Nth outbound batch
	// frame before hard-closing the link — a torn frame the peer's
	// decoder must reject loudly.
	PartialWriteFrame int64
	// KillAfterFrames SIGKILLs the whole process after writing the Nth
	// outbound batch frame — a real process death, buffered state lost,
	// for the crash-then-recover suites.
	KillAfterFrames int64
	// PartitionAfterFrames black-holes this process after it writes the
	// Nth outbound batch frame: every socket stays open, but outbound
	// frames are silently discarded and inbound frames silently dropped —
	// the half-open network partition only a heartbeat deadline can
	// surface.
	PartitionAfterFrames int64
}
