// Conformance suite: every Transport implementation is held to the same
// contract the engine's Exchange depends on — per-link FIFO, inline
// receive progress, EOF drain, cancellation-cause propagation, epoch
// integrity, and whole-cluster collectives. The chan transport runs as
// one in-process fixture; the TCP transport runs as a 2-process mesh
// folded into this test process (two Nodes on loopback, two Transports,
// each hosting half the ranks).
package transport_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kronlab/internal/dist/transport"
	chantransport "kronlab/internal/dist/transport/chan"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/graph"
)

const confEpoch = int64(7)

// fixture is one implementation under test: the rank space [0, r) and
// the transport hosting each rank (the same one r times for chan, one
// per proc for tcp).
type fixture struct {
	name   string
	r      int
	byRank []transport.Transport
	// inject smuggles a batch into the destination's inbox, bypassing
	// the send path — for forging residue of another attempt.
	inject func(b transport.Batch)
}

func (f *fixture) tr(rank int) transport.Transport { return f.byRank[rank] }

// newFixtures builds a fresh fixture per implementation; fixtures are
// torn down via t.Cleanup. A fresh set per test keeps cancellation
// poison from leaking across tests.
func newFixtures(t *testing.T, r int) []*fixture {
	t.Helper()
	var fs []*fixture

	ch := chantransport.New(r)
	chf := &fixture{name: "chan", r: r, byRank: make([]transport.Transport, r)}
	for i := range chf.byRank {
		chf.byRank[i] = ch
	}
	chf.inject = ch.Inject
	fs = append(fs, chf)

	const nprocs = 2
	const hash = 0xfeedfacecafef00d
	nodes := make([]*tcp.Node, nprocs)
	addrs := make([]string, nprocs)
	for i := range nodes {
		n, err := tcp.NewNode("127.0.0.1:0", i, hash)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	procs := transport.SplitRanks(addrs, r)
	ts := make([]*tcp.Transport, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for i := range ts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts[i], errs[i] = tcp.Connect(context.Background(), nodes[i],
				tcp.Config{Procs: procs, Self: i, PlanHash: hash}, confEpoch)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("connect proc %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	})
	tf := &fixture{name: "tcp", r: r, byRank: make([]transport.Transport, r)}
	for pi, p := range procs {
		for rk := p.Lo; rk < p.Hi; rk++ {
			tf.byRank[rk] = ts[pi]
		}
	}
	tf.inject = func(b transport.Batch) { ts[procForRank(procs, b.Dest)].Inject(b) }
	fs = append(fs, tf)

	return fs
}

func procForRank(procs []transport.Proc, rank int) int {
	for i, p := range procs {
		if rank >= p.Lo && rank < p.Hi {
			return i
		}
	}
	return -1
}

func nopProgress(transport.Batch) {}

// TestConformanceFIFO asserts per-link ordering: batches from rank 0 to
// the highest rank (a cross-process link in the tcp fixture) arrive in
// send order with their payloads intact.
func TestConformanceFIFO(t *testing.T) {
	const r, k = 4, 200
	for _, f := range newFixtures(t, r) {
		t.Run(f.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			dest := r - 1
			done := make(chan error, 1)
			go func() {
				for i := 0; i < k; i++ {
					b, err := f.tr(dest).Recv(ctx, dest)
					if err != nil {
						done <- err
						return
					}
					if b.Tile != i {
						done <- errorf("batch %d arrived with tile %d", i, b.Tile)
						return
					}
					if len(b.Edges) != 1 || b.Edges[0].U != int64(i) || b.Edges[0].V != int64(-i) {
						done <- errorf("batch %d payload corrupted: %v", i, b.Edges)
						return
					}
				}
				done <- nil
			}()
			for i := 0; i < k; i++ {
				b := transport.Batch{
					From: 0, Dest: dest, Epoch: confEpoch, Tile: i,
					Edges: []graph.Edge{{U: int64(i), V: int64(-i)}},
				}
				if err := f.tr(0).SendBatch(ctx, b, nopProgress); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceEOFDrain runs the engine's teardown shape: every rank
// sends an EOF to every other rank, then drains until it has seen all
// r-1 — counting both blocking Recvs and batches handed back through
// the SendBatch progress callback, exactly as the exchange does.
func TestConformanceEOFDrain(t *testing.T) {
	const r = 4
	for _, f := range newFixtures(t, r) {
		t.Run(f.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			errs := make(chan error, r)
			for rk := 0; rk < r; rk++ {
				go func(rk int) {
					tr := f.tr(rk)
					seen := make(map[int]bool)
					prog := func(b transport.Batch) {
						if b.EOF {
							seen[b.From] = true
						}
					}
					for to := 0; to < r; to++ {
						if to == rk {
							continue
						}
						b := transport.Batch{From: rk, Dest: to, Epoch: confEpoch, EOF: true}
						if err := tr.SendBatch(ctx, b, prog); err != nil {
							errs <- err
							return
						}
					}
					for len(seen) < r-1 {
						b, err := tr.Recv(ctx, rk)
						if err != nil {
							errs <- err
							return
						}
						prog(b)
					}
					for from := 0; from < r; from++ {
						if from != rk && !seen[from] {
							errs <- errorf("rank %d never saw EOF from %d", rk, from)
							return
						}
					}
					errs <- nil
				}(rk)
			}
			for i := 0; i < r; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestConformanceCancellationCause asserts a blocked Recv and a blocked
// Barrier both return the run's cancellation *cause*, not a bare
// context.Canceled — the engine surfaces that cause as the run error.
func TestConformanceCancellationCause(t *testing.T) {
	const r = 4
	cause := errors.New("rank 2 exploded")
	for _, f := range newFixtures(t, r) {
		t.Run(f.name+"/recv", func(t *testing.T) {
			ctx, cancel := context.WithCancelCause(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := f.tr(1).Recv(ctx, 1)
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			cancel(cause)
			if err := waitErr(t, done); !errors.Is(err, cause) {
				t.Fatalf("Recv returned %v, want %v", err, cause)
			}
		})
		t.Run(f.name+"/barrier", func(t *testing.T) {
			ctx, cancel := context.WithCancelCause(context.Background())
			done := make(chan error, 1)
			go func() { done <- f.tr(0).Barrier(ctx, 0) }()
			time.Sleep(10 * time.Millisecond)
			cancel(cause)
			if err := waitErr(t, done); !errors.Is(err, cause) {
				t.Fatalf("Barrier returned %v, want %v", err, cause)
			}
		})
	}
}

// TestConformanceStaleEpoch sends a batch stamped with another attempt's
// epoch down a real link, then a valid sentinel on the same link. The
// contract: the stale batch is either dropped by the transport (tcp's
// wire-level fence) or delivered with its Epoch intact so the engine's
// receiver can fence it (chan) — never silently relabeled as current.
func TestConformanceStaleEpoch(t *testing.T) {
	const r = 4
	const staleEpoch = confEpoch + 99
	for _, f := range newFixtures(t, r) {
		t.Run(f.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			dest := r - 1
			stale := transport.Batch{
				From: 0, Dest: dest, Epoch: staleEpoch, Tile: 1,
				Edges: []graph.Edge{{U: 666, V: 666}},
			}
			if err := f.tr(0).SendBatch(ctx, stale, nopProgress); err != nil {
				t.Fatalf("stale send: %v", err)
			}
			sentinel := transport.Batch{From: 0, Dest: dest, Epoch: confEpoch, Tile: 2}
			if err := f.tr(0).SendBatch(ctx, sentinel, nopProgress); err != nil {
				t.Fatalf("sentinel send: %v", err)
			}
			for {
				b, err := f.tr(dest).Recv(ctx, dest)
				if err != nil {
					t.Fatal(err)
				}
				if b.Tile == 2 {
					break // sentinel: FIFO means the stale batch's fate is sealed
				}
				if b.Epoch != staleEpoch {
					t.Fatalf("stale batch delivered with rewritten epoch %d", b.Epoch)
				}
			}
		})
	}
}

// TestConformanceInjectedResidue drains a batch smuggled directly into
// an inbox (the recovery suites forge stale residue this way) and
// asserts the Epoch survives verbatim.
func TestConformanceInjectedResidue(t *testing.T) {
	const r = 4
	for _, f := range newFixtures(t, r) {
		t.Run(f.name, func(t *testing.T) {
			f.inject(transport.Batch{From: 0, Dest: 1, Epoch: 3, Tile: 5})
			b, ok := f.tr(1).TryRecv(1)
			if !ok {
				t.Fatal("injected batch not delivered")
			}
			if b.Epoch != 3 || b.Tile != 5 {
				t.Fatalf("injected batch mangled: %+v", b)
			}
			if _, ok := f.tr(1).TryRecv(1); ok {
				t.Fatal("phantom batch after drain")
			}
		})
	}
}

// TestConformanceCollectives runs Barrier then AllReduceSum across every
// rank of every process and asserts each rank observes the same grand
// total — the engine's teardown integrity check depends on exactly this.
func TestConformanceCollectives(t *testing.T) {
	const r = 4
	for _, f := range newFixtures(t, r) {
		t.Run(f.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			const rounds = 3
			want := int64(r * (r + 1) / 2)
			errs := make(chan error, r)
			for rk := 0; rk < r; rk++ {
				go func(rk int) {
					tr := f.tr(rk)
					for round := 0; round < rounds; round++ {
						if err := tr.Barrier(ctx, rk); err != nil {
							errs <- err
							return
						}
						got, err := tr.AllReduceSum(ctx, rk, int64(rk+1))
						if err != nil {
							errs <- err
							return
						}
						if got != want {
							errs <- errorf("rank %d round %d: reduce = %d, want %d", rk, round, got, want)
							return
						}
					}
					errs <- nil
				}(rk)
			}
			for i := 0; i < r; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestConformanceFailureDetection holds both implementations to the
// partition contract: a peer that goes silent with its links still open
// (a black-holed network partition — no RST, no FIN, nothing to trip
// on) must surface as a loud *transport.PeerError naming the silent
// peer within the armed failure-detection deadline, released through
// blocked Recvs and subsequent sends. The chan fixture uses the
// simulated detector (EnableFailureDetection + Partition); the tcp
// fixture uses real application heartbeats and a FaultState partition.
func TestConformanceFailureDetection(t *testing.T) {
	const r = 4
	type impl struct {
		name string
		// build returns the observer's transport (hosting rank 0), the
		// rank/proc expected in the PeerError, and the partition trigger.
		build func(t *testing.T) (transport.Transport, int, func())
	}
	impls := []impl{
		{name: "chan", build: func(t *testing.T) (transport.Transport, int, func()) {
			ch := chantransport.New(r)
			t.Cleanup(func() { ch.Close() })
			ch.EnableFailureDetection(10*time.Millisecond, 80*time.Millisecond)
			return ch, 1, func() { ch.Partition(1) }
		}},
		{name: "tcp", build: func(t *testing.T) (transport.Transport, int, func()) {
			const nprocs = 2
			const hash = 0xfeedfacecafef00d
			nodes := make([]*tcp.Node, nprocs)
			addrs := make([]string, nprocs)
			for i := range nodes {
				n, err := tcp.NewNode("127.0.0.1:0", i, hash)
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
				nodes[i] = n
				addrs[i] = n.Addr()
			}
			procs := transport.SplitRanks(addrs, r)
			fs := tcp.NewFaultState(transport.TCPFaults{})
			faults := map[int]*tcp.FaultState{1: fs}
			ts := make([]*tcp.Transport, nprocs)
			errs := make([]error, nprocs)
			var wg sync.WaitGroup
			for i := range ts {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ts[i], errs[i] = tcp.Connect(context.Background(), nodes[i], tcp.Config{
						Procs: procs, Self: i, PlanHash: hash, Faults: faults[i],
						HeartbeatInterval: 20 * time.Millisecond,
						HeartbeatDeadline: 120 * time.Millisecond,
					}, confEpoch)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("connect proc %d: %v", i, err)
				}
			}
			t.Cleanup(func() {
				for _, tr := range ts {
					tr.Close()
				}
				for _, n := range nodes {
					n.Close()
				}
			})
			return ts[0], 1, fs.Partition
		}},
	}
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			tr, silent, partition := im.build(t)
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()

			recvErr := make(chan error, 1)
			go func() {
				for {
					if _, err := tr.Recv(ctx, 0); err != nil {
						recvErr <- err
						return
					}
				}
			}()
			start := time.Now()
			partition()
			var err error
			select {
			case err = <-recvErr:
			case <-time.After(10 * time.Second):
				t.Fatal("blocked Recv never observed the partition — an undetected black hole")
			}
			elapsed := time.Since(start)
			var pe *transport.PeerError
			if !errors.As(err, &pe) {
				t.Fatalf("Recv error = %v, want *transport.PeerError", err)
			}
			if pe.Proc != silent {
				t.Fatalf("PeerError names proc %d, want the partitioned peer %d", pe.Proc, silent)
			}
			// The deadlines above are ≤120ms; allow generous scheduler
			// slop but insist detection is prompt, not eventual.
			if elapsed > 5*time.Second {
				t.Fatalf("partition surfaced after %v — far beyond the armed deadline", elapsed)
			}
			// The verdict must also poison later sends on the dead link.
			b := transport.Batch{From: 0, Dest: r - 1, Epoch: confEpoch, Tile: 1,
				Edges: []graph.Edge{{U: 1, V: 2}}}
			if err := tr.SendBatch(ctx, b, nopProgress); err == nil {
				t.Fatal("SendBatch to the partitioned peer succeeded after the verdict")
			}
		})
	}
}

func waitErr(t *testing.T, ch <-chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("blocked call never returned after cancellation")
		return nil
	}
}

func errorf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestConformanceTrySend holds TrySender implementations to the
// exchange's double-buffering contract. Accepted batches (true, nil)
// transfer ownership and stay FIFO with batches sent through the
// blocking path on the same link; refused batches (false, nil) remain
// with the caller, who may retry or fall back to a blocking SendBatch
// with no reordering — exactly the shipper's pending-completion dance.
// Self-sends must always refuse (the engine loops those back locally,
// bypassing the transport's in-flight machinery).
func TestConformanceTrySend(t *testing.T) {
	const r, k = 4, 200
	for _, f := range newFixtures(t, r) {
		t.Run(f.name, func(t *testing.T) {
			ts, ok := f.tr(0).(transport.TrySender)
			if !ok {
				t.Fatalf("%s transport does not implement transport.TrySender", f.name)
			}

			// Self-send: refusal without error, buffer untouched.
			self := transport.Batch{From: 0, Dest: 0, Epoch: confEpoch,
				Edges: []graph.Edge{{U: 9, V: 9}}}
			if acc, err := ts.TrySendBatch(self); acc || err != nil {
				t.Fatalf("self TrySendBatch = (%v, %v), want refusal (false, nil)", acc, err)
			}
			if len(self.Edges) != 1 || self.Edges[0].U != 9 {
				t.Fatal("refused batch's payload was disturbed")
			}

			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			dest := r - 1 // a cross-process link in the tcp fixture
			done := make(chan error, 1)
			go func() {
				for i := 0; i < k; i++ {
					b, err := f.tr(dest).Recv(ctx, dest)
					if err != nil {
						done <- err
						return
					}
					if b.Tile != i {
						done <- errorf("batch %d arrived with tile %d — try path reordered the link", i, b.Tile)
						return
					}
					if len(b.Edges) != 1 || b.Edges[0].U != int64(i) || b.Edges[0].V != int64(-i) {
						done <- errorf("batch %d payload corrupted: %v", i, b.Edges)
						return
					}
				}
				done <- nil
			}()

			var accepted, refused, blocking int
			for i := 0; i < k; i++ {
				b := transport.Batch{
					From: 0, Dest: dest, Epoch: confEpoch, Tile: i,
					Edges: []graph.Edge{{U: int64(i), V: int64(-i)}},
				}
				if i%3 == 2 {
					// Interleave the blocking path: FIFO must hold across
					// both, since the shipper mixes them freely.
					if err := f.tr(0).SendBatch(ctx, b, nopProgress); err != nil {
						t.Fatalf("blocking send %d: %v", i, err)
					}
					blocking++
					continue
				}
				if acc, err := ts.TrySendBatch(b); err != nil {
					t.Fatalf("try send %d: %v", i, err)
				} else if acc {
					accepted++
					continue
				}
				// Refused: the batch is still ours; complete it blocking,
				// as the exchange does when a pending slot must drain.
				if err := f.tr(0).SendBatch(ctx, b, nopProgress); err != nil {
					t.Fatalf("fallback send %d: %v", i, err)
				}
				refused++
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if accepted == 0 {
				t.Fatalf("no TrySendBatch was ever accepted (%d refused, %d blocking) — the fast path is dead", refused, blocking)
			}
			t.Logf("%s: %d accepted, %d refused, %d blocking", f.name, accepted, refused, blocking)
		})
	}
}
