// Package chantransport is the in-process Transport: R ranks in one
// address space exchanging batches over buffered Go channels — the
// simulated cluster the repo ran on before cluster mode existed, now as
// one implementation of the transport contract. Delivery is zero-copy
// (the receiver gets the sender's very slice), per-link FIFO follows
// from channel semantics, and the collectives are a generation-counted
// channel barrier shared by all ranks.
package chantransport

import (
	"context"
	"sync"
	"sync/atomic"

	"kronlab/internal/dist/transport"
)

// Transport is the in-process channel transport for r ranks.
type Transport struct {
	r       int
	inboxes []chan transport.Batch

	// maxDepth tracks the deepest observed inbox backlog, the
	// simulated-cluster load metric surfaced as Stats.MaxInboxDepth.
	maxDepth int64

	// Collective state: one accumulator and one generation channel,
	// closed when the r-th rank arrives. total is written under mu
	// before the close, so waiters reading it after <-gen observe it via
	// the close's happens-before edge; a later generation cannot
	// overwrite it until every waiter of this one has re-entered.
	mu    sync.Mutex
	cnt   int
	acc   int64
	total int64
	gen   chan struct{}
}

// New returns a transport hosting all r ranks in-process. Inboxes are
// buffered (4r+16 batches) so the generate-then-drain pattern keeps
// senders and receivers loosely coupled without unbounded memory.
func New(r int) *Transport {
	t := &Transport{r: r, inboxes: make([]chan transport.Batch, r), gen: make(chan struct{})}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan transport.Batch, 4*r+16)
	}
	return t
}

// R implements Transport.
func (t *Transport) R() int { return t.r }

// Local implements Transport: every rank is local.
func (t *Transport) Local() (lo, hi int) { return 0, t.r }

// SendBatch implements Transport. A self-addressed batch is applied
// through progress directly, as an MPI rank does for local traffic.
// While a cross-rank send blocks on a full inbox, batches addressed to
// the sender are delivered through progress instead of spinning — the
// inline progress that makes the all-to-all deadlock-free.
func (t *Transport) SendBatch(ctx context.Context, b transport.Batch, progress func(transport.Batch)) error {
	if b.Dest == b.From {
		progress(b)
		return nil
	}
	own := t.inboxes[b.From]
	for {
		select {
		case t.inboxes[b.Dest] <- b:
			if d := int64(len(t.inboxes[b.Dest])); d > 0 {
				atomicMax(&t.maxDepth, d)
			}
			return nil
		case m := <-own:
			progress(m)
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
}

// TryRecv implements Transport.
func (t *Transport) TryRecv(rank int) (transport.Batch, bool) {
	select {
	case b := <-t.inboxes[rank]:
		return b, true
	default:
		return transport.Batch{}, false
	}
}

// Recv implements Transport.
func (t *Transport) Recv(ctx context.Context, rank int) (transport.Batch, error) {
	select {
	case b := <-t.inboxes[rank]:
		return b, nil
	case <-ctx.Done():
		return transport.Batch{}, context.Cause(ctx)
	}
}

// Barrier implements Transport.
func (t *Transport) Barrier(ctx context.Context, rank int) error {
	_, err := t.collective(ctx, 0)
	return err
}

// AllReduceSum implements Transport.
func (t *Transport) AllReduceSum(ctx context.Context, rank int, v int64) (int64, error) {
	return t.collective(ctx, v)
}

// collective is the shared body of both collectives: add v, and either
// complete the generation (last arriver) or wait for its channel to
// close. A rank that withdraws on cancellation un-counts itself, so the
// collective state stays consistent for Reset and later generations.
func (t *Transport) collective(ctx context.Context, v int64) (int64, error) {
	t.mu.Lock()
	t.acc += v
	t.cnt++
	if t.cnt == t.r {
		t.total = t.acc
		t.cnt, t.acc = 0, 0
		ch := t.gen
		t.gen = make(chan struct{})
		total := t.total
		close(ch)
		t.mu.Unlock()
		return total, nil
	}
	ch := t.gen
	t.mu.Unlock()
	select {
	case <-ch:
		return t.total, nil
	case <-ctx.Done():
		t.mu.Lock()
		select {
		case <-ch:
			// Completed while we were acquiring the lock: honor it.
			t.mu.Unlock()
			return t.total, nil
		default:
		}
		t.cnt--
		t.acc -= v
		t.mu.Unlock()
		return 0, context.Cause(ctx)
	}
}

// Reset implements Transport: drains every inbox through release and
// rewinds the collective state. Must not be called concurrently with a
// run.
func (t *Transport) Reset(release func(transport.Batch)) {
	for _, ch := range t.inboxes {
	drain:
		for {
			select {
			case b := <-ch:
				if release != nil {
					release(b)
				}
			default:
				break drain
			}
		}
	}
	t.mu.Lock()
	t.cnt, t.acc, t.total = 0, 0, 0
	t.mu.Unlock()
	atomic.StoreInt64(&t.maxDepth, 0)
}

// Close implements Transport. The channel transport holds no external
// resources; inboxes are left for the GC so concurrent stragglers from
// an aborted run can never send on a closed channel.
func (t *Transport) Close() error { return nil }

// MaxDepth reports the deepest observed inbox backlog, in batches.
func (t *Transport) MaxDepth() int64 { return atomic.LoadInt64(&t.maxDepth) }

// Depth reports the current backlog of one rank's inbox — test and
// diagnostics surface, not part of the Transport contract.
func (t *Transport) Depth(rank int) int { return len(t.inboxes[rank]) }

// Inject enqueues a batch directly into its destination inbox, skipping
// fault injection and flow control — the smuggling hook the epoch-fence
// and conformance tests use to forge residue from another attempt.
func (t *Transport) Inject(b transport.Batch) { t.inboxes[b.Dest] <- b }

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}
