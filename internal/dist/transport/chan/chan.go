// Package chantransport is the in-process Transport: R ranks in one
// address space exchanging batches over buffered Go channels — the
// simulated cluster the repo ran on before cluster mode existed, now as
// one implementation of the transport contract. Delivery is zero-copy
// (the receiver gets the sender's very slice), per-link FIFO follows
// from channel semantics, and the collectives are a generation-counted
// channel barrier shared by all ranks.
package chantransport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kronlab/internal/dist/transport"
)

// ErrHeartbeat marks a failure-detection verdict: a partitioned rank
// went silent past the armed deadline. It is always wrapped in a
// *transport.PeerError naming the silent rank, mirroring the TCP
// transport's heartbeat posture so callers handle both identically.
var ErrHeartbeat = errors.New("chan: failure-detection deadline exceeded")

// Transport is the in-process channel transport for r ranks.
type Transport struct {
	r       int
	inboxes []chan transport.Batch

	// maxDepth tracks the deepest observed inbox backlog, the
	// simulated-cluster load metric surfaced as Stats.MaxInboxDepth.
	maxDepth int64

	// Partition simulation: a partitioned rank's traffic is silently
	// black-holed — sends involving it "succeed" without delivering,
	// with every channel still open — so, exactly as with a real
	// network partition, only the failure detector can surface it.
	partitioned []atomic.Bool
	// voided holds black-holed batches so Reset can hand their pooled
	// buffers back through release; a partition must not leak buffers.
	voidMu sync.Mutex
	voided []transport.Batch

	// Failure detection (EnableFailureDetection): dead is closed — with
	// deadErr, a *transport.PeerError, written first — when a
	// partitioned rank stays silent past the deadline. Every blocking
	// call selects on it, so a black-holed cluster fails loudly instead
	// of hanging on channels that will never fill.
	dead     chan struct{}
	deadOnce sync.Once
	deadErr  error
	fdStop   chan struct{}
	fdOnce   sync.Once
	fdDone   chan struct{} // non-nil once a detector was started; closed on its exit
	hbMisses int64

	// Collective state: one accumulator and one generation channel,
	// closed when the r-th rank arrives. total is written under mu
	// before the close, so waiters reading it after <-gen observe it via
	// the close's happens-before edge; a later generation cannot
	// overwrite it until every waiter of this one has re-entered.
	mu    sync.Mutex
	cnt   int
	acc   int64
	total int64
	gen   chan struct{}
}

// New returns a transport hosting all r ranks in-process. Inboxes are
// buffered (4r+16 batches) so the generate-then-drain pattern keeps
// senders and receivers loosely coupled without unbounded memory.
func New(r int) *Transport {
	t := &Transport{r: r, inboxes: make([]chan transport.Batch, r),
		partitioned: make([]atomic.Bool, r),
		dead:        make(chan struct{}), fdStop: make(chan struct{}),
		gen: make(chan struct{})}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan transport.Batch, 4*r+16)
	}
	return t
}

// R implements Transport.
func (t *Transport) R() int { return t.r }

// Local implements Transport: every rank is local.
func (t *Transport) Local() (lo, hi int) { return 0, t.r }

// SendBatch implements Transport. A self-addressed batch is applied
// through progress directly, as an MPI rank does for local traffic.
// While a cross-rank send blocks on a full inbox, batches addressed to
// the sender are delivered through progress instead of spinning — the
// inline progress that makes the all-to-all deadlock-free.
func (t *Transport) SendBatch(ctx context.Context, b transport.Batch, progress func(transport.Batch)) error {
	select {
	case <-t.dead:
		return t.deadErr
	default:
	}
	if b.Dest == b.From {
		progress(b)
		return nil
	}
	if t.partitioned[b.From].Load() || t.partitioned[b.Dest].Load() {
		// Black-hole: the send "succeeds" (the channel is open, the
		// caller cannot tell) but nothing is delivered. The batch is
		// parked for Reset so its pooled buffer is not leaked.
		t.voidMu.Lock()
		t.voided = append(t.voided, b)
		t.voidMu.Unlock()
		return nil
	}
	own := t.inboxes[b.From]
	for {
		select {
		case t.inboxes[b.Dest] <- b:
			if d := int64(len(t.inboxes[b.Dest])); d > 0 {
				atomicMax(&t.maxDepth, d)
			}
			return nil
		case m := <-own:
			progress(m)
		case <-t.dead:
			return t.deadErr
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
}

// TrySendBatch implements transport.TrySender: a non-blocking SendBatch.
// It accepts the batch only when the destination inbox has room right
// now; a full inbox returns (false, nil) with the buffer left with the
// caller, who retries after making progress. Self-addressed batches are
// refused — the caller's inline receive path handles those without the
// transport. Partition black-holing and the failure-detector verdict
// behave exactly as in SendBatch, so double-buffered runs see the same
// fault surface as blocking ones.
func (t *Transport) TrySendBatch(b transport.Batch) (bool, error) {
	select {
	case <-t.dead:
		return false, t.deadErr
	default:
	}
	if b.Dest == b.From {
		return false, nil
	}
	if t.partitioned[b.From].Load() || t.partitioned[b.Dest].Load() {
		t.voidMu.Lock()
		t.voided = append(t.voided, b)
		t.voidMu.Unlock()
		return true, nil
	}
	select {
	case t.inboxes[b.Dest] <- b:
		if d := int64(len(t.inboxes[b.Dest])); d > 0 {
			atomicMax(&t.maxDepth, d)
		}
		return true, nil
	default:
		return false, nil
	}
}

// TryRecv implements Transport.
func (t *Transport) TryRecv(rank int) (transport.Batch, bool) {
	select {
	case b := <-t.inboxes[rank]:
		return b, true
	default:
		return transport.Batch{}, false
	}
}

// Recv implements Transport.
func (t *Transport) Recv(ctx context.Context, rank int) (transport.Batch, error) {
	select {
	case b := <-t.inboxes[rank]:
		return b, nil
	case <-t.dead:
		return transport.Batch{}, t.deadErr
	case <-ctx.Done():
		return transport.Batch{}, context.Cause(ctx)
	}
}

// Barrier implements Transport.
func (t *Transport) Barrier(ctx context.Context, rank int) error {
	_, err := t.collective(ctx, 0)
	return err
}

// AllReduceSum implements Transport.
func (t *Transport) AllReduceSum(ctx context.Context, rank int, v int64) (int64, error) {
	return t.collective(ctx, v)
}

// collective is the shared body of both collectives: add v, and either
// complete the generation (last arriver) or wait for its channel to
// close. A rank that withdraws on cancellation un-counts itself, so the
// collective state stays consistent for Reset and later generations.
func (t *Transport) collective(ctx context.Context, v int64) (int64, error) {
	t.mu.Lock()
	t.acc += v
	t.cnt++
	if t.cnt == t.r {
		t.total = t.acc
		t.cnt, t.acc = 0, 0
		ch := t.gen
		t.gen = make(chan struct{})
		total := t.total
		close(ch)
		t.mu.Unlock()
		return total, nil
	}
	ch := t.gen
	t.mu.Unlock()
	select {
	case <-ch:
		return t.total, nil
	case <-t.dead:
		// Withdraw as on cancellation: a detector verdict must not
		// strand the collective's count for later generations.
		t.mu.Lock()
		select {
		case <-ch:
			t.mu.Unlock()
			return t.total, nil
		default:
		}
		t.cnt--
		t.acc -= v
		t.mu.Unlock()
		return 0, t.deadErr
	case <-ctx.Done():
		t.mu.Lock()
		select {
		case <-ch:
			// Completed while we were acquiring the lock: honor it.
			t.mu.Unlock()
			return t.total, nil
		default:
		}
		t.cnt--
		t.acc -= v
		t.mu.Unlock()
		return 0, context.Cause(ctx)
	}
}

// Reset implements Transport: drains every inbox through release and
// rewinds the collective state. Partitions heal and the failure
// detector is disarmed — a supervised replay starts on an intact
// network, matching fault.go's one-shot posture (the partition that
// killed attempt N does not re-fire on attempt N+1); re-arm detection
// with EnableFailureDetection if the next run wants it. Must not be
// called concurrently with a run.
func (t *Transport) Reset(release func(transport.Batch)) {
	t.stopDetector()
	for _, ch := range t.inboxes {
	drain:
		for {
			select {
			case b := <-ch:
				if release != nil {
					release(b)
				}
			default:
				break drain
			}
		}
	}
	t.voidMu.Lock()
	voided := t.voided
	t.voided = nil
	t.voidMu.Unlock()
	for _, b := range voided {
		if release != nil {
			release(b)
		}
	}
	for i := range t.partitioned {
		t.partitioned[i].Store(false)
	}
	t.dead = make(chan struct{})
	t.deadOnce = sync.Once{}
	t.deadErr = nil
	t.fdStop = make(chan struct{})
	t.fdOnce = sync.Once{}
	t.fdDone = nil
	t.mu.Lock()
	t.cnt, t.acc, t.total = 0, 0, 0
	t.mu.Unlock()
	atomic.StoreInt64(&t.maxDepth, 0)
}

// Close implements Transport. The channel transport holds no external
// resources — inboxes are left for the GC so concurrent stragglers from
// an aborted run can never send on a closed channel — but a running
// failure detector is stopped.
func (t *Transport) Close() error {
	t.stopDetector()
	return nil
}

// EnableFailureDetection arms the simulated failure detector: a monitor
// that stands in for the TCP transport's application heartbeats. Each
// interval tick counts as "traffic heard" from every reachable rank; a
// rank black-holed by Partition stops being heard from, and once its
// silence exceeds deadline (≤0 defaults to 5× interval) the whole
// transport fails with a *transport.PeerError naming that rank —
// released through every blocked SendBatch, Recv and collective, so a
// partitioned run dies loudly within the deadline instead of hanging.
// Call before the run starts; a second call while a detector is armed
// is a no-op.
func (t *Transport) EnableFailureDetection(interval, deadline time.Duration) {
	if interval <= 0 || t.fdDone != nil {
		return
	}
	if deadline <= 0 {
		deadline = 5 * interval
	}
	done := make(chan struct{})
	t.fdDone = done
	stop := t.fdStop
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		last := make([]time.Time, t.r)
		now := time.Now()
		for i := range last {
			last[i] = now
		}
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				for i := range last {
					if !t.partitioned[i].Load() {
						last[i] = now
						continue
					}
					silent := now.Sub(last[i])
					if silent > interval {
						atomic.AddInt64(&t.hbMisses, 1)
					}
					if silent > deadline {
						t.fail(i, fmt.Errorf("%w: no traffic from rank %d for %v (deadline %v)",
							ErrHeartbeat, i, silent.Round(time.Millisecond), deadline))
						return
					}
				}
			}
		}
	}()
}

// stopDetector halts a running failure-detection monitor and waits for
// it to exit, so Reset can rebuild detector state without racing it.
func (t *Transport) stopDetector() {
	t.fdOnce.Do(func() { close(t.fdStop) })
	if t.fdDone != nil {
		<-t.fdDone
	}
}

// fail records the detector's verdict exactly once and releases every
// blocked call.
func (t *Transport) fail(rank int, err error) {
	t.deadOnce.Do(func() {
		t.deadErr = &transport.PeerError{Proc: rank, Err: err}
		close(t.dead)
	})
}

// Partition black-holes one rank: from now on every cross-rank send
// from or to it is silently discarded with all channels left open — the
// sockets-open network partition. Nothing surfaces it except an armed
// failure detector (EnableFailureDetection); without one the run will
// simply hang waiting on batches that never arrive, exactly like an
// undetected real partition. Reset heals all partitions.
func (t *Transport) Partition(rank int) { t.partitioned[rank].Store(true) }

// Partitioned reports whether rank is currently black-holed.
func (t *Transport) Partitioned(rank int) bool { return t.partitioned[rank].Load() }

// HeartbeatMisses reports how many detector ticks found a partitioned
// rank silent past the interval — the chan-transport analogue of the
// TCP transport's heartbeat-miss counter.
func (t *Transport) HeartbeatMisses() int64 { return atomic.LoadInt64(&t.hbMisses) }

// MaxDepth reports the deepest observed inbox backlog, in batches.
func (t *Transport) MaxDepth() int64 { return atomic.LoadInt64(&t.maxDepth) }

// Depth reports the current backlog of one rank's inbox — test and
// diagnostics surface, not part of the Transport contract.
func (t *Transport) Depth(rank int) int { return len(t.inboxes[rank]) }

// Inject enqueues a batch directly into its destination inbox, skipping
// fault injection and flow control — the smuggling hook the epoch-fence
// and conformance tests use to forge residue from another attempt.
func (t *Transport) Inject(b transport.Batch) { t.inboxes[b.Dest] <- b }

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}
