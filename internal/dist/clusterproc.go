package dist

// Cluster mode: the Plan→Expand→Route→Sink engine spread across N OS
// processes over the TCP transport. Every process deterministically
// reconstructs the same Plan from the factor files, hosts a contiguous
// rank range from the static peer list, and runs the very runAttempt the
// in-process engine runs — only the transport under it differs.
//
// Process 0 (the head) doubles as the run supervisor: it owns the
// tile-checkpoint table, assigns each attempt's uncommitted tiles and
// skip prefixes over persistent control connections, and collects
// per-attempt reports. Recovery extends PR 4's posture from a killed
// goroutine to a killed *process*:
//
//   - A worker that dies (SIGKILL, OOM, a yanked cable) surfaces as a
//     broken control connection at the head and as PeerErrors on the
//     survivors' mesh links; everyone's attempt tears down loudly.
//   - The dead worker's durable output is gone with it — a respawned
//     process's ShardWriter truncates its shard files on open — so the
//     head zeroes the dead proc's ranks in every tile's stored counts
//     and recomputes tile commitment non-stickily: a tile whose stored
//     edges lived on the dead proc un-commits and replays.
//   - Survivors keep their sinks open across attempts and fence the
//     already-stored prefix of every replayed tile substream, exactly
//     as in-process recovery does, so delivery stays exactly-once.
//   - The respawned worker re-dials the head's control port, is handed
//     the next epoch's assignment, and its mesh dials park at each peer
//     until that peer enters the same epoch (tcp.Node's claim protocol).
//
// The head itself is no longer a single point of failure. With
// ClusterConfig.LedgerPath set, the head journals its supervision state
// — run identity, head generations, epochs, per-(tile, rank) stored
// prefixes, tile commitments — to an append-only checksummed ledger
// (internal/dist/ledger), fsynced at every state change. A respawned
// head replays the ledger, refuses a different run's ledger by
// identity, bumps the head generation, and resumes at the next epoch.
// Workers whose control connection breaks do not tear down terminally:
// they park and re-dial with jittered exponential backoff under the
// ClusterConfig.HeadRetries budget, keeping their sinks open, and
// announce their cumulative per-(rank, tile) stored prefixes in a join
// message on every (re)connect. Those joins overwrite the replayed
// table — the worker's own durable state is ground truth for its ranks
// — so prefix fencing stays exactly-once even across a head generation
// change where the ledger lags the workers' shards. Application-level
// heartbeats on control and mesh links turn a black-holed peer into a
// loud PeerError within a configured deadline instead of a hang.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist/ledger"
	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// ClusterConfig places one process in a static cluster.
type ClusterConfig struct {
	// Procs is the cluster layout — every process must derive the same
	// list (same addresses, same rank split). See transport.SplitRanks.
	Procs []transport.Proc
	// Self is this process's index in Procs; index 0 is the head.
	Self int
	// Node is the process's persistent listening endpoint, shared across
	// run attempts (NewNode with this proc's address and the plan hash).
	Node *tcp.Node
	// DialTimeout bounds mesh establishment per attempt; ≤ 0 means 10s.
	DialTimeout time.Duration
	// ReportTimeout bounds how long the head waits for a worker's
	// post-attempt report before declaring the worker dead; ≤ 0 means
	// 30s. By the time the head collects, its own attempt has finished —
	// the final collective synchronizes every live proc — so only a dead
	// worker ever runs the timeout down.
	ReportTimeout time.Duration
	// LedgerPath, when non-empty on the head, arms the durable run
	// ledger: supervision state is journaled there at every state change,
	// and a respawned head resumes from it instead of restarting the run.
	// Workers ignore it.
	LedgerPath string
	// HeadRetries is how many times a worker re-dials a broken head
	// control link (with jittered exponential backoff) before giving up.
	// 0 restores the old posture — the head's death fails the worker on
	// the first break.
	HeadRetries int
	// HeartbeatInterval is the application heartbeat period on control
	// and mesh links. 0 means 2s; negative disables heartbeats (and with
	// them deadline-based partition detection).
	HeartbeatInterval time.Duration
	// HeartbeatDeadline is how long a link may stay silent before its
	// peer is declared dead; ≤ 0 means 5× the interval.
	HeartbeatDeadline time.Duration
}

func (cc ClusterConfig) reportTimeout() time.Duration {
	if cc.ReportTimeout > 0 {
		return cc.ReportTimeout
	}
	return 30 * time.Second
}

func (cc ClusterConfig) dialTimeout() time.Duration {
	if cc.DialTimeout > 0 {
		return cc.DialTimeout
	}
	return 10 * time.Second
}

func (cc ClusterConfig) heartbeatInterval() time.Duration {
	switch {
	case cc.HeartbeatInterval > 0:
		return cc.HeartbeatInterval
	case cc.HeartbeatInterval < 0:
		return 0 // disabled
	}
	return 2 * time.Second
}

func (cc ClusterConfig) heartbeatDeadline() time.Duration {
	if cc.HeartbeatDeadline > 0 {
		return cc.HeartbeatDeadline
	}
	return 5 * cc.heartbeatInterval()
}

// PlanHash fingerprints a plan for the cluster handshake: rank count,
// product size, the chain's factor dimensions, and every tile's
// identity, head-arc window and tail-factor shapes. Two processes that
// derive different plans from what should be the same inputs refuse each
// other's connections instead of silently exchanging misrouted batches.
// Chain depth is part of the fingerprint, so a k=3 head never handshakes
// with a k=2 worker even when both products have the same vertex count.
func PlanHash(p Plan) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	w(int64(p.R))
	w(p.NC)
	w(int64(len(p.Dims)))
	for _, d := range p.Dims {
		w(d)
	}
	for _, tiles := range p.Tiles {
		w(int64(len(tiles)))
		for _, t := range tiles {
			w(int64(t.ID))
			// The stream window is part of the tile's identity: two procs
			// slicing the same plan at different offsets must refuse each
			// other (their checkpoint accounting would disagree).
			w(t.Skip)
			w(t.Take)
			w(int64(len(t.AArcs)))
			for _, e := range t.AArcs {
				w(e.U)
				w(e.V)
			}
			w(int64(len(t.Tail)))
			for _, g := range t.Tail {
				w(g.NumVertices())
				w(g.NumArcs())
			}
		}
	}
	return h.Sum64()
}

// Control protocol: JSON messages over the persistent worker→head
// connections. One struct, discriminated by Kind, keeps the codec dumb.
const (
	ctrlJoin   = "join"   // worker → head: first message on every (re)connect
	ctrlBegin  = "begin"  // head → worker: run one attempt
	ctrlReport = "report" // worker → head: attempt outcome
	ctrlDone   = "done"   // head → worker: run over, finalize sinks
	ctrlBye    = "bye"    // worker → head: sinks flushed and closed
)

type ctrlMsg struct {
	Kind  string `json:"kind"`
	Epoch int64  `json:"epoch,omitempty"`

	// begin: the attempt's tile assignment (tile IDs per rank; tiles are
	// resolved against the locally reconstructed plan) and the
	// skip prefixes each rank's fenced sink must suppress.
	Tiles map[int][]int         `json:"tiles,omitempty"`
	Skip  map[int]map[int]int64 `json:"skip,omitempty"`

	// done: the run's final error, empty on success.
	Err string `json:"err,omitempty"`

	// report: per-(rank, tile) edges newly stored this attempt, the
	// duplicates suppressed, per-rank engine counters, traffic totals,
	// and the attempt's error with its recovery classification.
	// join reuses Stored with different semantics: the worker's
	// *cumulative* per-(rank, tile) stored prefixes, absolute, which the
	// head applies as ground truth for that proc's ranks (overwriting the
	// table — a fresh respawn's empty join zeroes them, exactly what its
	// truncated shards demand).
	Stored      map[int]map[int]int64 `json:"stored,omitempty"`
	Skipped     int64                 `json:"skipped,omitempty"`
	Gen         map[int]int64         `json:"gen,omitempty"`
	StoredN     map[int]int64         `json:"stored_n,omitempty"`
	Traffic     trafficStats          `json:"traffic,omitempty"`
	RunErr      string                `json:"run_err,omitempty"`
	Recoverable bool                  `json:"recoverable,omitempty"`
}

type trafficStats struct {
	Generated int64 `json:"generated,omitempty"`
	Routed    int64 `json:"routed,omitempty"`
	Bytes     int64 `json:"bytes,omitempty"`
	Messages  int64 `json:"messages,omitempty"`
	Stale     int64 `json:"stale,omitempty"`
	MaxDepth  int64 `json:"max_depth,omitempty"`
	HBMisses  int64 `json:"hb_misses,omitempty"`
}

// errMeshDown marks a failed mesh establishment whose cause was a peer
// being down or slow — the recoverable between-attempts face of a
// process death (the respawned peer simply has not come back yet).
var errMeshDown = errors.New("dist: cluster mesh establishment failed")

// clusterRecoverable classifies a cluster attempt error: peer-link
// deaths, in-proc injected faults and mesh-establishment failures are
// the detect-and-reexecute faults; everything else (a sink error, a
// handshake refusal, a bad plan) stays loud.
func clusterRecoverable(err error) bool {
	if err == nil {
		return false
	}
	var pe *transport.PeerError
	var rc *RankCrashError
	var ml *MessageLostError
	return errors.As(err, &pe) || errors.As(err, &rc) || errors.As(err, &ml) ||
		errors.Is(err, errMeshDown)
}

// latePool adapts the engine's accounted buffer pool for the TCP
// transport. The Cluster it charges get/put to is created only after the
// mesh is up (NewClusterOn needs the transport), so the pointer is set
// late; until then — and for the handful of frames that may decode
// before the attempt starts — it falls back to bare allocation.
type latePool struct {
	c atomic.Pointer[Cluster]
}

func (p *latePool) Get(n int) []graph.Edge {
	if c := p.c.Load(); c != nil {
		// No rank context on the decode path; the spread in putBuf keeps
		// the shards balanced, so any home shard works — use 0.
		return c.getBuf(0, n)
	}
	return make([]graph.Edge, 0, n)
}

func (p *latePool) Put(b []graph.Edge) {
	if c := p.c.Load(); c != nil {
		c.putBuf(b)
	}
}

// procState is one process's cross-attempt state in a cluster run.
type procState struct {
	cc       ClusterConfig
	cfg      Config
	r        int
	lo, hi   int
	planHash uint64
	faults   *tcp.FaultState
	byID     map[int]Tile
	sinks    []*fencedRankSink // local ranks, indexed rank-lo

	// cum is this process's cumulative per-(rank, tile) stored prefixes
	// across all attempts — the durable truth a worker announces in its
	// join message after every control (re)dial, and the floor under
	// every fence it accepts from the head. It is what keeps delivery
	// exactly-once across a head generation change: a respawned head's
	// ledger may lag the worker's shards, but the worker never fences
	// below what it already stored.
	cum map[int]map[int]int64
}

func newProcState(cc ClusterConfig, cfg Config) *procState {
	p := cc.Procs[cc.Self]
	ps := &procState{
		cc: cc, cfg: cfg,
		r:        cfg.Plan.R,
		lo:       p.Lo,
		hi:       p.Hi,
		planHash: PlanHash(cfg.Plan),
		byID:     make(map[int]Tile),
	}
	for _, tiles := range cfg.Plan.Tiles {
		for _, t := range tiles {
			ps.byID[t.ID] = t
		}
	}
	if cfg.Faults != nil && cfg.Faults.TCP != (transport.TCPFaults{}) {
		// Armed once per process lifetime: the frame countdowns must keep
		// counting across attempts, like the in-proc one-shot crash
		// counters, so a fault that fired stays fired on the replay.
		ps.faults = tcp.NewFaultState(cfg.Faults.TCP)
	}
	ps.sinks = make([]*fencedRankSink, p.Hi-p.Lo)
	ps.cum = make(map[int]map[int]int64, p.Hi-p.Lo)
	for i := range ps.sinks {
		ps.sinks[i] = &fencedRankSink{rank: p.Lo + i, curTile: -1}
		ps.cum[p.Lo+i] = make(map[int]int64)
	}
	return ps
}

// joinMsg is the worker's opening announcement on every control
// (re)connect: its cumulative stored prefixes, absolute.
func (ps *procState) joinMsg() ctrlMsg {
	m := ctrlMsg{Kind: ctrlJoin, Stored: make(map[int]map[int]int64, len(ps.cum))}
	for rk, tiles := range ps.cum {
		cp := make(map[int]int64, len(tiles))
		for id, n := range tiles {
			cp[id] = n
		}
		m.Stored[rk] = cp
	}
	return m
}

func (ps *procState) sinkFor(rk *Rank) (attemptSink, error) {
	f := ps.sinks[rk.ID()-ps.lo]
	if f.under == nil {
		rs, err := ps.cfg.Sink.Rank(rk)
		if err != nil {
			return nil, err
		}
		f.under = rs
		f.bs, _ = rs.(BlockStorer)
		f.tbs, _ = rs.(TileBlockStorer)
	}
	return f, nil
}

// resolveTiles turns a begin message's tile-ID assignment into the
// engine's per-rank tile arrays (local ranks only — runAttempt never
// touches remote ranks' entries).
func (ps *procState) resolveTiles(ids map[int][]int) ([][]Tile, error) {
	assigned := make([][]Tile, ps.r)
	for rk := ps.lo; rk < ps.hi; rk++ {
		for _, id := range ids[rk] {
			t, ok := ps.byID[id]
			if !ok {
				return nil, fmt.Errorf("dist: cluster assignment names unknown tile %d", id)
			}
			assigned[rk] = append(assigned[rk], t)
		}
	}
	return assigned, nil
}

// attempt runs one epoch of the engine on this process: build the mesh,
// run the local rank range, harvest the fenced sinks, tear the mesh
// down. The returned report is ready to send (or, on the head, to fold
// directly).
func (ps *procState) attempt(ctx context.Context, epoch int64, assigned [][]Tile, skip map[int]map[int]int64) ctrlMsg {
	rep := ctrlMsg{Kind: ctrlReport, Epoch: epoch}
	fail := func(err error) ctrlMsg {
		rep.RunErr = err.Error()
		rep.Recoverable = clusterRecoverable(err)
		return rep
	}
	for i, f := range ps.sinks {
		rk := ps.lo + i
		f.skip = make(map[int]int64, len(skip[rk]))
		for id, n := range skip[rk] {
			f.skip[id] = n
		}
		// Fence floor: never below what this process already stored. A
		// head generation whose ledger lagged the shards can only ask for
		// too little suppression; the local cumulative count corrects it.
		for id, c := range ps.cum[rk] {
			if c > f.skip[id] {
				f.skip[id] = c
			}
		}
		f.stored = make(map[int]int64)
		f.skipped = 0
		f.curTile = -1
	}
	pool := &latePool{}
	tr, err := tcp.Connect(ctx, ps.cc.Node, tcp.Config{
		Procs: ps.cc.Procs, Self: ps.cc.Self, PlanHash: ps.planHash,
		Pool: pool, Faults: ps.faults, DialTimeout: ps.cc.DialTimeout,
		HeartbeatInterval: ps.cc.heartbeatInterval(),
		HeartbeatDeadline: ps.cc.heartbeatDeadline(),
	}, epoch)
	if err != nil {
		// A peer that is down during mesh establishment is the same
		// recoverable fault as one that dies mid-run — unless the peer
		// refused the handshake (a different plan is a config error no
		// retry can fix) or the run itself was cancelled.
		if ctx.Err() == nil && !errors.Is(err, tcp.ErrHandshake) {
			err = fmt.Errorf("%w: %v", errMeshDown, err)
		}
		return fail(err)
	}
	c, err := NewClusterOn(tr)
	if err != nil {
		tr.Close()
		return fail(err)
	}
	pool.c.Store(c)
	c.epoch = epoch

	perGen := make([]int64, ps.r)
	perStored := make([]int64, ps.r)
	runErr := runAttempt(ctx, c, ps.cfg.Owner, assigned, ps.sinkFor, perGen, perStored, ps.cfg.batchSize())
	st := c.Stats()

	rep.Stored = make(map[int]map[int]int64, len(ps.sinks))
	rep.Gen = make(map[int]int64, len(ps.sinks))
	rep.StoredN = make(map[int]int64, len(ps.sinks))
	for i, f := range ps.sinks {
		rk := ps.lo + i
		f.flushCur()
		m := make(map[int]int64, len(f.stored))
		for id, n := range f.stored {
			if n > 0 {
				m[id] = n
				ps.cum[rk][id] += n
			}
		}
		rep.Stored[rk] = m
		rep.Skipped += f.skipped
		rep.Gen[rk] = perGen[rk]
		rep.StoredN[rk] = perStored[rk]
	}
	rep.Traffic = trafficStats{
		Generated: st.EdgesGenerated, Routed: st.EdgesRouted,
		Bytes: st.BytesSent, Messages: st.Messages,
		Stale: st.StaleBatches + tr.StaleFrames(), MaxDepth: st.MaxInboxDepth,
		HBMisses: tr.HeartbeatMisses(),
	}
	// Drain inbox residue back to the pool before the mesh dies, then
	// tear it down — the next attempt builds a fresh one at its epoch.
	c.Reset()
	tr.Close()
	if runErr != nil {
		rep.RunErr = runErr.Error()
		rep.Recoverable = clusterRecoverable(runErr)
	}
	return rep
}

// finalize closes every locally created RankSink exactly once.
func (ps *procState) finalize() error {
	var first error
	for _, f := range ps.sinks {
		if f.under == nil {
			continue
		}
		if err := f.under.Close(); err != nil && first == nil {
			first = err
		}
		f.under = nil
	}
	return first
}

// foldReport merges one proc's attempt report into the aggregate stats.
func foldReport(agg *Stats, rep *ctrlMsg) {
	agg.EdgesGenerated += rep.Traffic.Generated
	agg.EdgesRouted += rep.Traffic.Routed
	agg.BytesSent += rep.Traffic.Bytes
	agg.Messages += rep.Traffic.Messages
	agg.StaleBatches += rep.Traffic.Stale
	if rep.Traffic.MaxDepth > agg.MaxInboxDepth {
		agg.MaxInboxDepth = rep.Traffic.MaxDepth
	}
	agg.HeartbeatMisses += rep.Traffic.HBMisses
	agg.DuplicatesSkipped += rep.Skipped
	for rk, n := range rep.Gen {
		agg.PerRankGenerated[rk] += n
	}
	for rk, n := range rep.StoredN {
		agg.PerRankStored[rk] += n
	}
}

// RunCluster executes one engine run across the static cluster in cc:
// the head (proc 0) supervises, workers execute. Every process must call
// it with an identical Plan (PlanHash enforces this at every connection)
// and a Sink able to host its local rank range. Config.Recovery arms
// process-level recovery exactly as it arms rank-level recovery
// in-process; Config.Faults contributes only its TCP schedule here (the
// in-proc crash/link fields govern simulated clusters).
//
// On the head the returned Stats aggregate the whole cluster across all
// attempts; workers return their local share. The error (or nil) is
// consistent across processes: workers learn the run's outcome from the
// head's done message.
func RunCluster(ctx context.Context, cc ClusterConfig, cfg Config) (Stats, error) {
	if cc.Self < 0 || cc.Self >= len(cc.Procs) {
		return Stats{}, fmt.Errorf("dist: cluster self index %d out of range [0,%d)", cc.Self, len(cc.Procs))
	}
	if got := cc.Procs[len(cc.Procs)-1].Hi; got != cfg.Plan.R {
		return Stats{}, fmt.Errorf("dist: cluster hosts %d ranks, plan has %d", got, cfg.Plan.R)
	}
	ps := newProcState(cc, cfg)
	if cc.Self == 0 {
		return runClusterHead(ctx, ps)
	}
	return runClusterWorker(ctx, ps)
}

// sleepJitter sleeps an exponentially growing, jittered backoff (retry
// counts from 1): base·2^(retry-1), capped at maxBackoff, scaled by a
// uniform factor in [0.5, 1.5) so a whole cluster of workers re-dialing
// a respawned head doesn't arrive as a thundering herd.
func sleepJitter(ctx context.Context, rng *rand.Rand, base time.Duration, retry int) error {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << (retry - 1)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + rng.Float64()))
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// runClusterWorker is the non-head process loop: obey begin/done from
// the head until the run concludes. A broken head control link is no
// longer terminal: the worker parks with its sinks open and re-dials
// under the HeadRetries budget — jittered exponential backoff — opening
// each (re)connection with a join message that announces its cumulative
// stored prefixes. A head that never comes back exhausts the budget and
// fails loudly; a worker must never hang on a silent cluster.
func runClusterWorker(ctx context.Context, ps *procState) (Stats, error) {
	rng := rand.New(rand.NewSource(int64(ps.planHash) ^ int64(ps.cc.Self)<<32 ^ time.Now().UnixNano()))
	dial := func() (*tcp.CtrlConn, error) {
		dctx, cancel := context.WithTimeout(ctx, ps.cc.dialTimeout())
		defer cancel()
		cc, err := tcp.DialControl(dctx, ps.cc.Procs[0].Addr, ps.cc.Self, ps.planHash, ps.cc.DialTimeout)
		if err != nil {
			return nil, err
		}
		cc.StartHeartbeat(ps.cc.heartbeatInterval(), ps.cc.heartbeatDeadline())
		if err := cc.Send(ps.joinMsg()); err != nil {
			cc.Close()
			return nil, err
		}
		return cc, nil
	}
	cc, err := dial()
	if err != nil {
		return Stats{}, fmt.Errorf("dist: worker %d joining head: %w", ps.cc.Self, err)
	}
	defer func() { cc.Close() }()
	agg := Stats{PerRankGenerated: make([]int64, ps.r), PerRankStored: make([]int64, ps.r)}
	redials := 0
	// park re-dials the head after a control-link break, consuming the
	// budget; on success the loop continues with the fresh connection
	// (whose join already told the new head generation where we stand).
	park := func(cause error) error {
		cc.Close()
		for {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			if redials >= ps.cc.HeadRetries {
				return cause
			}
			redials++
			if err := sleepJitter(ctx, rng, ps.cfg.Backoff, redials); err != nil {
				return err
			}
			ncc, err := dial()
			if err != nil {
				cause = err
				continue
			}
			cc = ncc
			return nil
		}
	}
	for {
		var m ctrlMsg
		if err := cc.Recv(ctx, &m); err != nil {
			if perr := park(err); perr != nil {
				_ = ps.finalize()
				return agg, fmt.Errorf("dist: worker %d lost head control link: %w", ps.cc.Self, perr)
			}
			continue
		}
		switch m.Kind {
		case ctrlBegin:
			assigned, err := ps.resolveTiles(m.Tiles)
			var rep ctrlMsg
			if err != nil {
				rep = ctrlMsg{Kind: ctrlReport, Epoch: m.Epoch, RunErr: err.Error()}
			} else {
				rep = ps.attempt(ctx, m.Epoch, assigned, m.Skip)
			}
			foldReport(&agg, &rep)
			if err := cc.Send(rep); err != nil {
				// The head died before taking the report. The stored edges
				// are safe on disk and in ps.cum; re-dial and let the next
				// head generation reassign from our join.
				if perr := park(err); perr != nil {
					ps.finalize()
					return agg, fmt.Errorf("dist: worker %d reporting to head: %w", ps.cc.Self, perr)
				}
			}
		case ctrlDone:
			ferr := ps.finalize()
			_ = cc.Send(ctrlMsg{Kind: ctrlBye})
			if m.Err != "" {
				return agg, errors.New(m.Err)
			}
			return agg, ferr
		default:
			ps.finalize()
			return agg, fmt.Errorf("dist: worker %d: unexpected control message %q", ps.cc.Self, m.Kind)
		}
	}
}

// configDigest fingerprints the run configuration beyond the plan —
// layout, routing mode, batch size — for the ledger's identity record:
// resuming a ledger written under a different configuration must refuse,
// not silently mix accounting regimes.
func (ps *procState) configDigest() uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	w(int64(len(ps.cc.Procs)))
	for _, p := range ps.cc.Procs {
		w(int64(p.Lo))
		w(int64(p.Hi))
	}
	if ps.cfg.Owner != nil {
		w(1)
	} else {
		w(0)
	}
	w(int64(ps.cfg.batchSize()))
	return h.Sum64()
}

// ledgerRotateBytes triggers compaction of the head's ledger: past this
// size the file is atomically replaced by a snapshot of the live table.
const ledgerRotateBytes = 1 << 20

// runClusterHead is the supervising process: it owns the checkpoint
// table, drives attempts over the control connections, participates in
// each attempt with its own rank range, and decides the run's outcome.
// With a ledger armed, every state change is journaled durably, and a
// respawned head resumes from the replayed table instead of restarting.
func runClusterHead(ctx context.Context, ps *procState) (Stats, error) {
	n := len(ps.cc.Procs)

	// The checkpoint table, exactly the in-process supervisor's, but
	// per-proc instead of per-goroutine on the recovery side.
	var tiles []*tileState
	byID := make(map[int]*tileState)
	for rk, ts := range ps.cfg.Plan.Tiles {
		for _, t := range ts {
			st := &tileState{tile: t, owner: rk, stored: make([]int64, ps.r)}
			tiles = append(tiles, st)
			byID[t.ID] = st
		}
	}

	// Durable run ledger (optional): replay, validate identity, seed the
	// table, open the next head generation.
	var led *ledger.Ledger
	headGen, epochBase := int64(1), int64(0)
	if path := ps.cc.LedgerPath; path != "" {
		l, lst, err := ledger.Open(path)
		if err != nil {
			return Stats{}, fmt.Errorf("dist: head ledger %s: %w", path, err)
		}
		digest := ps.configDigest()
		if lst.Identity != nil {
			if lst.Identity.PlanHash != ps.planHash || lst.Identity.Digest != digest ||
				lst.Identity.Procs != n || lst.Identity.Ranks != ps.r {
				l.Close()
				return Stats{}, fmt.Errorf("%w: %s holds plan %016x cfg %016x (%d procs, %d ranks); this run is plan %016x cfg %016x (%d procs, %d ranks)",
					ledger.ErrIdentity, path,
					lst.Identity.PlanHash, lst.Identity.Digest, lst.Identity.Procs, lst.Identity.Ranks,
					ps.planHash, digest, n, ps.r)
			}
			// Resume: the replayed prefixes seed the table. The head's own
			// ranks are zeroed — this process's ShardWriters truncate their
			// shards on open, so whatever the dead generation stored at
			// them is gone. Workers' rows are provisional until their joins
			// overwrite them with the live truth.
			for _, ts := range tiles {
				for rk, cnt := range lst.Stored[ts.tile.ID] {
					if rk >= 0 && rk < ps.r {
						ts.stored[rk] = cnt
					}
				}
				for rk := ps.lo; rk < ps.hi; rk++ {
					ts.stored[rk] = 0
				}
			}
		} else {
			if err := l.Append(ledger.Record{Kind: ledger.KindIdentity,
				PlanHash: ps.planHash, Digest: digest, Procs: n, Ranks: ps.r}); err != nil {
				l.Close()
				return Stats{}, fmt.Errorf("dist: head ledger %s: %w", path, err)
			}
		}
		headGen = lst.Gen + 1
		epochBase = lst.LastEpoch + 1
		lerr := l.Append(ledger.Record{Kind: ledger.KindGen, Gen: headGen})
		if lerr == nil {
			lerr = l.Commit()
		}
		if lerr != nil {
			l.Close()
			return Stats{}, fmt.Errorf("dist: head ledger %s: %w", path, lerr)
		}
		led = l
		defer led.Close()
	}
	// logged mirrors what the ledger already holds, so each attempt
	// journals only the (tile, rank) prefixes and commitments that moved.
	logged := make(map[int][]int64, len(tiles))
	loggedCommit := make(map[int]bool, len(tiles))
	if led != nil {
		for _, ts := range tiles {
			logged[ts.tile.ID] = append([]int64(nil), ts.stored...)
		}
	}
	logState := func(lastEpoch int64) error {
		if led == nil {
			return nil
		}
		for _, ts := range tiles {
			id := ts.tile.ID
			for rk, cnt := range ts.stored {
				if logged[id][rk] != cnt {
					if err := led.Append(ledger.Record{Kind: ledger.KindStored, Tile: id, Rank: rk, Count: cnt}); err != nil {
						return err
					}
					logged[id][rk] = cnt
				}
			}
			if loggedCommit[id] != ts.committed {
				if err := led.Append(ledger.Record{Kind: ledger.KindCommit, Tile: id, On: ts.committed}); err != nil {
					return err
				}
				loggedCommit[id] = ts.committed
			}
		}
		if err := led.Commit(); err != nil {
			return err
		}
		if led.Size() > ledgerRotateBytes {
			st := ledger.State{
				Identity: &ledger.Record{Kind: ledger.KindIdentity,
					PlanHash: ps.planHash, Digest: ps.configDigest(), Procs: n, Ranks: ps.r},
				Gen: headGen, LastEpoch: lastEpoch,
				Stored:    make(map[int]map[int]int64, len(tiles)),
				Committed: make(map[int]bool, len(tiles)),
			}
			for _, ts := range tiles {
				m := make(map[int]int64)
				for rk, cnt := range ts.stored {
					if cnt != 0 {
						m[rk] = cnt
					}
				}
				st.Stored[ts.tile.ID] = m
				if ts.committed {
					st.Committed[ts.tile.ID] = true
				}
			}
			if err := led.Rotate(st); err != nil {
				return err
			}
		}
		return nil
	}

	conns := make([]*tcp.CtrlConn, n)
	defer func() {
		for _, cc := range conns {
			if cc != nil {
				cc.Close()
			}
		}
	}()
	// applyJoin folds a worker's announced cumulative prefixes into the
	// table as ground truth for that proc's ranks: zero the rows (a fresh
	// respawn's truncated shards really hold nothing), then overwrite
	// with the announced absolutes.
	applyJoin := func(peer int, jm *ctrlMsg) {
		pr := ps.cc.Procs[peer]
		for _, ts := range tiles {
			for d := pr.Lo; d < pr.Hi; d++ {
				ts.stored[d] = 0
			}
		}
		for rk, m := range jm.Stored {
			if rk < pr.Lo || rk >= pr.Hi {
				continue // a worker only speaks for its own ranks
			}
			for id, cnt := range m {
				if st := byID[id]; st != nil {
					st.stored[rk] = cnt
				}
			}
		}
	}
	// ensureWorkers blocks until every worker has a live control
	// connection that has completed its join — at startup, and again
	// after a death while the external supervisor (script, orchestrator)
	// respawns the process.
	ensureWorkers := func() error {
		for {
			missing := false
			for p := 1; p < n; p++ {
				if conns[p] == nil {
					missing = true
				}
			}
			if !missing {
				return nil
			}
			cc, err := ps.cc.Node.AcceptControl(ctx)
			if err != nil {
				return fmt.Errorf("dist: head waiting for workers: %w", err)
			}
			if cc.Peer < 1 || cc.Peer >= n {
				cc.Close()
				continue
			}
			cc.StartHeartbeat(ps.cc.heartbeatInterval(), ps.cc.heartbeatDeadline())
			jctx, cancel := context.WithTimeout(ctx, ps.cc.reportTimeout())
			var jm ctrlMsg
			jerr := cc.Recv(jctx, &jm)
			cancel()
			if jerr != nil || jm.Kind != ctrlJoin {
				cc.Close()
				continue
			}
			applyJoin(cc.Peer, &jm)
			if old := conns[cc.Peer]; old != nil {
				old.Close() // superseded by a redial
			}
			conns[cc.Peer] = cc
		}
	}

	routed := ps.cfg.Owner != nil
	agg := Stats{
		PerRankGenerated: make([]int64, ps.r),
		PerRankStored:    make([]int64, ps.r),
		RetriesPerRank:   make([]int64, ps.r),
		HeadGeneration:   headGen,
	}
	var runErr error
	for attempt := 0; ; attempt++ {
		if err := ensureWorkers(); err != nil {
			runErr = err
			break
		}
		// Commitment is recomputed, never sticky: joins may have zeroed a
		// respawned proc's rows since the last check, un-committing tiles
		// whose edges lived there.
		for _, ts := range tiles {
			ts.committed = ts.storedTotal() == ts.tile.Arcs()
		}
		// Assignment: every uncommitted tile at its owner, with the skip
		// prefixes recovery fencing needs at each destination.
		assignIDs := make(map[int][]int)
		skip := make(map[int]map[int]int64)
		addSkip := func(rank, tile int, cnt int64) {
			if skip[rank] == nil {
				skip[rank] = make(map[int]int64)
			}
			skip[rank][tile] = cnt
		}
		for _, ts := range tiles {
			if ts.committed {
				continue
			}
			assignIDs[ts.owner] = append(assignIDs[ts.owner], ts.tile.ID)
			if routed {
				for d, cnt := range ts.stored {
					if cnt > 0 {
						addSkip(d, ts.tile.ID, cnt)
					}
				}
			} else if cnt := ts.storedTotal(); cnt > 0 {
				addSkip(ts.owner, ts.tile.ID, cnt)
			}
		}
		epoch := epochBase + int64(attempt)
		agg.LastEpoch = epoch
		// The epoch transition goes durable before any worker acts at it,
		// so a head respawned after this instant resumes strictly above it.
		if led != nil {
			lerr := led.Append(ledger.Record{Kind: ledger.KindEpoch, Epoch: epoch})
			if lerr == nil {
				lerr = logState(epoch)
			}
			if lerr != nil {
				runErr = fmt.Errorf("dist: head ledger: %w", lerr)
				break
			}
		}
		begin := ctrlMsg{Kind: ctrlBegin, Epoch: epoch, Tiles: assignIDs, Skip: skip}
		for p := 1; p < n; p++ {
			if err := conns[p].Send(begin); err != nil {
				// Died between attempts; the attempt proceeds and fails
				// recoverably, and ensureWorkers picks up the respawn.
				conns[p].Close()
				conns[p] = nil
			}
		}

		assigned, err := ps.resolveTiles(assignIDs)
		if err != nil {
			runErr = err
			break
		}
		rep0 := ps.attempt(ctx, epoch, assigned, skip)

		// Collect: the final collective synchronized every live proc with
		// the head's own attempt, so live workers report promptly; only a
		// dead one runs the timeout down.
		reports := make([]*ctrlMsg, n)
		reports[0] = &rep0
		var deadProcs []int
		for p := 1; p < n; p++ {
			if conns[p] == nil {
				deadProcs = append(deadProcs, p)
				continue
			}
			rctx, cancel := context.WithTimeout(ctx, ps.cc.reportTimeout())
			var m ctrlMsg
			err := conns[p].Recv(rctx, &m)
			cancel()
			if err != nil || m.Kind != ctrlReport {
				conns[p].Close()
				conns[p] = nil
				deadProcs = append(deadProcs, p)
				continue
			}
			reports[p] = &m
		}

		// Harvest into the checkpoint table; fold stats.
		ok := true
		var attemptErr error
		recoverable := true
		for _, rep := range reports {
			if rep == nil {
				ok = false
				continue
			}
			foldReport(&agg, rep)
			for rk, m := range rep.Stored {
				for id, cnt := range m {
					byID[id].stored[rk] += cnt
				}
			}
			if rep.RunErr != "" {
				ok = false
				if attemptErr == nil || !rep.Recoverable {
					attemptErr = errors.New(rep.RunErr)
				}
				if !rep.Recoverable {
					recoverable = false
				}
			}
		}
		// A dead proc's durable output dies with it: its ShardWriters
		// truncate on respawn, so every stored count at its ranks resets.
		for _, p := range deadProcs {
			pr := ps.cc.Procs[p]
			for _, ts := range tiles {
				for d := pr.Lo; d < pr.Hi; d++ {
					ts.stored[d] = 0
				}
			}
		}
		// Commitment is recomputed, not sticky: a tile whose edges lived
		// on a dead proc un-commits and replays.
		for _, ts := range tiles {
			ts.committed = ts.storedTotal() == ts.tile.Arcs()
		}
		// The harvest goes durable — stored prefixes and commitment flips
		// — before the outcome is decided, so a head death from here on
		// costs at most the joins' worth of re-announcement, never a
		// committed tile.
		if err := logState(epoch); err != nil {
			runErr = fmt.Errorf("dist: head ledger: %w", err)
			break
		}
		if ok {
			if attempt > 0 || headGen > 1 {
				agg.RecoveredRuns = 1
			}
			break
		}
		if len(deadProcs) > 0 && attemptErr == nil {
			attemptErr = fmt.Errorf("dist: proc(s) %v died mid-attempt", deadProcs)
		}
		runErr = attemptErr
		if !recoverable || attempt >= ps.cfg.MaxRetries {
			break
		}
		// Attribute the retry to the first blamed proc's first rank (or
		// rank 0 for in-run faults the reports did not localize).
		blameRank := 0
		if len(deadProcs) > 0 {
			blameRank = ps.cc.Procs[deadProcs[0]].Lo
		}
		agg.RetriesPerRank[blameRank]++
		runErr = nil
		if err := sleepBackoff(ctx, ps.cfg.Backoff, attempt+1); err != nil {
			runErr = err
			break
		}
	}

	// Conclude: tell every reachable worker, wait for their sinks to
	// flush (bye) so on-disk output is complete before the caller
	// finalizes a manifest, then close local sinks.
	done := ctrlMsg{Kind: ctrlDone}
	if runErr != nil {
		done.Err = runErr.Error()
	}
	for p := 1; p < n; p++ {
		if conns[p] == nil {
			continue
		}
		if err := conns[p].Send(done); err != nil {
			conns[p].Close()
			conns[p] = nil
		}
	}
	for p := 1; p < n; p++ {
		if conns[p] == nil {
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, ps.cc.reportTimeout())
		var m ctrlMsg
		_ = conns[p].Recv(rctx, &m)
		cancel()
	}
	if ferr := ps.finalize(); runErr == nil {
		runErr = ferr
	}
	if led != nil {
		rec := ledger.Record{Kind: ledger.KindDone}
		if runErr != nil {
			rec.Err = runErr.Error()
		}
		if err := led.Append(rec); err == nil {
			err = led.Commit()
			if err != nil && runErr == nil {
				runErr = fmt.Errorf("dist: head ledger: %w", err)
			}
		}
	}
	return agg, runErr
}

// GenerateClusterToStore is the cluster-mode generateToStore: every
// process streams its local ranks' owned edges to shard files under the
// shared dir (shard index = global rank, so the processes never
// collide), and the head finalizes the manifest from the shard files
// themselves once every worker has flushed — store.Recover derives the
// exact counts, which stays correct even when a respawned worker
// truncated and rewrote its shards mid-run. Workers return a nil store.
func GenerateClusterToStore(ctx context.Context, a, b *graph.Graph, dir string, twoD bool, cc ClusterConfig, rec Recovery) (*store.Store, Stats, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	return GenerateChainClusterToStore(ctx, ch, dir, twoD, cc, rec)
}

// GenerateChainClusterToStore is GenerateClusterToStore over a factor
// chain A₁⊗…⊗Aₖ: the same head-supervised attempts, checkpoint table
// and respawn recovery, with every process expanding chain tiles. The
// plan hash covers the chain's dimensions, so mixed-depth clusters
// refuse to form.
func GenerateChainClusterToStore(ctx context.Context, ch *core.Chain, dir string, twoD bool, cc ClusterConfig, rec Recovery) (*store.Store, Stats, error) {
	return GenerateChainClusterToStoreFrom(ctx, ch, dir, twoD, 0, -1, cc, rec)
}

// GenerateChainClusterToStoreFrom is GenerateChainClusterToStore over a
// contiguous window of the stream (see GenerateChainToStoreFrom). Every
// process must pass the same offset and limit: the window is folded into
// the tiles before planning, so PlanHash covers it and a cluster whose
// processes sliced at different positions refuses to form instead of
// silently mixing windows.
func GenerateChainClusterToStoreFrom(ctx context.Context, ch *core.Chain, dir string, twoD bool, offset, limit int64, cc ClusterConfig, rec Recovery) (*store.Store, Stats, error) {
	return GenerateChainClusterToStoreOpts(ctx, ch, dir, twoD, offset, limit, cc, rec, nil)
}

// GenerateChainClusterToStoreOpts is GenerateChainClusterToStoreFrom
// with an optional fault plan — the chaos suites' and the smoke
// script's entry point for arming this process's TCP fault schedule
// (kill, reset, partition) on a real cluster run.
func GenerateChainClusterToStoreOpts(ctx context.Context, ch *core.Chain, dir string, twoD bool, offset, limit int64, cc ClusterConfig, rec Recovery, faults *FaultPlan) (*store.Store, Stats, error) {
	r := cc.Procs[len(cc.Procs)-1].Hi
	plan, err := sliceForChain(ch, r, twoD, offset, limit)
	if err != nil {
		return nil, Stats{}, err
	}
	cfg := Config{
		Plan:     plan,
		Owner:    OwnerBySource,
		Sink:     NewStoreSink(dir, r),
		Recovery: rec,
		Faults:   faults,
	}
	st, err := RunCluster(ctx, cc, cfg)
	if err != nil {
		return nil, st, err
	}
	if cc.Self != 0 {
		return nil, st, nil
	}
	s, err := store.Recover(dir, plan.NC)
	if err != nil {
		return nil, st, fmt.Errorf("dist: finalizing cluster store: %w", err)
	}
	return s, st, nil
}
