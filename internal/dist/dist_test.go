package dist

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("0-rank cluster should error")
	}
	c, err := NewCluster(4)
	if err != nil || c.Size() != 4 {
		t.Fatalf("NewCluster(4): %v, size %d", err, c.Size())
	}
}

func TestBarrier(t *testing.T) {
	c, _ := NewCluster(8)
	var phase1 int64
	err := c.Run(func(rk *Rank) error {
		atomic.AddInt64(&phase1, 1)
		rk.Barrier()
		if atomic.LoadInt64(&phase1) != 8 {
			t.Errorf("rank %d passed barrier before all arrived", rk.ID())
		}
		// Reusability: a second barrier round.
		rk.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	c, _ := NewCluster(6)
	err := c.Run(func(rk *Rank) error {
		total := rk.AllReduceSum(int64(rk.ID()))
		if total != 15 { // 0+1+...+5
			t.Errorf("rank %d: reduce = %d, want 15", rk.ID(), total)
		}
		// Second reduction must not see stale state.
		total2 := rk.AllReduceSum(1)
		if total2 != 6 {
			t.Errorf("rank %d: second reduce = %d, want 6", rk.ID(), total2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeAllToAll(t *testing.T) {
	const R = 5
	c, _ := NewCluster(R)
	received := make([][]graph.Edge, R)
	err := c.Run(func(rk *Rank) error {
		var got []graph.Edge
		rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
			// Every rank sends one edge (id, to) to every rank.
			for to := 0; to < R; to++ {
				emit(to, graph.Edge{U: int64(rk.ID()), V: int64(to)})
			}
		}, func(e graph.Edge) {
			got = append(got, e)
		})
		received[rk.ID()] = got
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for to := 0; to < R; to++ {
		if len(received[to]) != R {
			t.Fatalf("rank %d received %d edges, want %d", to, len(received[to]), R)
		}
		seen := make(map[int64]bool)
		for _, e := range received[to] {
			if e.V != int64(to) {
				t.Fatalf("rank %d received misrouted edge %v", to, e)
			}
			seen[e.U] = true
		}
		if len(seen) != R {
			t.Fatalf("rank %d missing senders: %v", to, seen)
		}
	}
}

func TestExchangeLargeVolume(t *testing.T) {
	// Push well past batch size to exercise flushing.
	const R = 3
	c, _ := NewCluster(R)
	var total int64
	err := c.Run(func(rk *Rank) error {
		var count int64
		rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
			for i := 0; i < 5000; i++ {
				emit(i%R, graph.Edge{U: int64(i), V: int64(rk.ID())})
			}
		}, func(e graph.Edge) {
			count++
		})
		atomic.AddInt64(&total, count)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3*5000 {
		t.Fatalf("delivered %d, want %d", total, 3*5000)
	}
}

func TestPartitionArcs(t *testing.T) {
	arcs := make([]graph.Edge, 10)
	parts := PartitionArcs(arcs, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	var total int
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Errorf("partition lost arcs: %d", total)
	}
	// More parts than arcs → trailing empties, no panic.
	parts = PartitionArcs(arcs[:2], 5)
	var nonEmpty int
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Errorf("nonEmpty = %d, want 2", nonEmpty)
	}
}

// The central correctness property: distributed generation produces
// exactly the serial product, for every rank count and both partitioning
// schemes and all owner functions.
func TestGenerateMatchesSerial(t *testing.T) {
	a := gen.ER(9, 0.4, 1).WithFullSelfLoops()
	b := gen.PrefAttach(7, 2, 2)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]OwnerFunc{
		"bySource": OwnerBySource,
		"byEdge":   OwnerByEdge,
		"byBlock":  OwnerByBlock(a.NumVertices() * b.NumVertices()),
	}
	for name, owner := range owners {
		for _, r := range []int{1, 2, 3, 4, 7, 16} {
			res1, err := Generate1D(a, b, r, owner)
			if err != nil {
				t.Fatalf("%s R=%d 1D: %v", name, r, err)
			}
			got1, err := res1.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if !got1.Equal(want) {
				t.Fatalf("%s R=%d: 1D product differs from serial", name, r)
			}
			res2, err := Generate2D(a, b, r, owner)
			if err != nil {
				t.Fatalf("%s R=%d 2D: %v", name, r, err)
			}
			got2, err := res2.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if !got2.Equal(want) {
				t.Fatalf("%s R=%d: 2D product differs from serial", name, r)
			}
		}
	}
}

// Property: for random small factors and random R, 1D and 2D agree with
// serial generation.
func TestPropertyDistributedEqualsSerial(t *testing.T) {
	f := func(seedA, seedB int64, rRaw uint8) bool {
		r := int(rRaw%12) + 1
		a := gen.ER(6, 0.5, seedA)
		b := gen.ER(5, 0.5, seedB)
		if a.NumArcs() == 0 || b.NumArcs() == 0 {
			return true
		}
		want, err := core.Product(a, b)
		if err != nil {
			return false
		}
		res1, err := Generate1D(a, b, r, nil)
		if err != nil {
			return false
		}
		g1, err := res1.Collect()
		if err != nil {
			return false
		}
		res2, err := Generate2D(a, b, r, nil)
		if err != nil {
			return false
		}
		g2, err := res2.Collect()
		if err != nil {
			return false
		}
		return g1.Equal(want) && g2.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	a := gen.ER(8, 0.5, 3)
	b := gen.ER(8, 0.5, 4)
	res, err := Generate1D(a, b, 4, OwnerBySource)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EdgesGenerated != a.NumArcs()*b.NumArcs() {
		t.Errorf("generated %d, want %d", res.Stats.EdgesGenerated, a.NumArcs()*b.NumArcs())
	}
	if res.TotalStored() != res.Stats.EdgesGenerated {
		t.Errorf("stored %d != generated %d", res.TotalStored(), res.Stats.EdgesGenerated)
	}
	if res.Stats.BytesSent != res.Stats.EdgesRouted*16 {
		t.Errorf("bytes %d != 16·routed %d", res.Stats.BytesSent, res.Stats.EdgesRouted)
	}
	if res.MaxRankStorage() > res.TotalStored() || res.MaxRankStorage() == 0 {
		t.Errorf("MaxRankStorage %d out of range", res.MaxRankStorage())
	}
	// R=1: nothing is routed off-rank.
	res1, err := Generate1D(a, b, 1, OwnerBySource)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.EdgesRouted != 0 {
		t.Errorf("R=1 routed %d edges off-rank", res1.Stats.EdgesRouted)
	}
}

func TestCountOnly(t *testing.T) {
	a := gen.ER(10, 0.4, 5)
	b := gen.ER(9, 0.4, 6)
	want := a.NumArcs() * b.NumArcs()
	for _, r := range []int{1, 3, 8} {
		for _, twoD := range []bool{false, true} {
			got, err := CountOnly(a, b, r, twoD)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("R=%d twoD=%v: counted %d, want %d", r, twoD, got, want)
			}
		}
	}
}

func TestGrid2D(t *testing.T) {
	cases := []struct{ r, rh, q int }{
		{1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {5, 3, 2}, {9, 3, 3}, {10, 4, 3},
	}
	for _, c := range cases {
		g := NewGrid2D(c.r)
		if g.RHalf != c.rh || g.Q != c.q {
			t.Errorf("Grid2D(%d) = %+v, want (%d,%d)", c.r, g, c.rh, c.q)
		}
		if g.Tiles() < c.r {
			t.Errorf("Grid2D(%d): %d tiles < %d ranks", c.r, g.Tiles(), c.r)
		}
		// Tile coordinates are a bijection onto the grid.
		seen := make(map[[2]int]bool)
		for t0 := 0; t0 < g.Tiles(); t0++ {
			a, b := g.TileOf(t0)
			if a < 0 || a >= g.RHalf || b < 0 || b >= g.Q {
				t.Fatalf("tile %d out of grid: (%d,%d)", t0, a, b)
			}
			seen[[2]int{a, b}] = true
		}
		if len(seen) != g.Tiles() {
			t.Errorf("Grid2D(%d): tile map not injective", c.r)
		}
	}
}

// Rem. 1's point: with R > |arcs_A|, 1D parallelism saturates while 2D
// keeps more ranks busy.
func TestEffectiveParallelism(t *testing.T) {
	a := gen.ER(6, 0.3, 7) // few arcs
	b := gen.ER(30, 0.3, 8)
	r := int(a.NumArcs()) * 4
	if EffectiveParallelism1D(a, r) != int(a.NumArcs()) {
		t.Errorf("1D parallelism should cap at |arcs_A| = %d", a.NumArcs())
	}
	if e2 := EffectiveParallelism2D(a, b, r); e2 <= int(a.NumArcs()) {
		t.Errorf("2D parallelism %d should exceed the 1D cap %d", e2, a.NumArcs())
	}
}

func TestGenerateInvalidR(t *testing.T) {
	a := gen.ER(4, 0.5, 9)
	if _, err := Generate1D(a, a, 0, nil); err == nil {
		t.Error("R=0 should error")
	}
	if _, err := Generate2D(a, a, -1, nil); err == nil {
		t.Error("R<0 should error")
	}
	if _, err := CountOnly(a, a, 0, false); err == nil {
		t.Error("CountOnly R=0 should error")
	}
}

// GenerateOwned must produce exactly the serial product with zero
// communication, and per-rank arc sets must match the OwnerByBlock map.
func TestGenerateOwnedMatchesSerial(t *testing.T) {
	a := gen.PrefAttach(9, 2, 1).WithFullSelfLoops()
	b := gen.ER(7, 0.5, 2)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nC := a.NumVertices() * b.NumVertices()
	for _, r := range []int{1, 2, 3, 5, 8, 64} {
		res, err := GenerateOwned(a, b, r)
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		got, err := res.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("R=%d: owned generation differs from serial", r)
		}
		if res.Stats.EdgesRouted != 0 || res.Stats.BytesSent != 0 {
			t.Fatalf("R=%d: owned generation must not communicate, got %+v", r, res.Stats)
		}
		// Each stored arc's source must belong to the rank's block.
		owner := OwnerByBlock(nC)
		for rank, arcs := range res.PerRank {
			for _, e := range arcs {
				if owner(e.U, e.V, r) != rank {
					t.Fatalf("R=%d: arc %v stored on rank %d, owner %d",
						r, e, rank, owner(e.U, e.V, r))
				}
			}
		}
	}
}

// Property: owned == routed-with-block-owner for random factors and R.
func TestPropertyOwnedEqualsRouted(t *testing.T) {
	f := func(seedA, seedB int64, rRaw uint8) bool {
		r := int(rRaw%10) + 1
		a := gen.ER(6, 0.5, seedA)
		b := gen.ER(5, 0.5, seedB)
		nC := a.NumVertices() * b.NumVertices()
		owned, err := GenerateOwned(a, b, r)
		if err != nil {
			return false
		}
		routed, err := Generate1D(a, b, r, OwnerByBlock(nC))
		if err != nil {
			return false
		}
		for rank := range owned.PerRank {
			g1, err := graph.New(nC, owned.PerRank[rank])
			if err != nil {
				return false
			}
			g2, err := graph.New(nC, routed.PerRank[rank])
			if err != nil {
				return false
			}
			if !g1.Equal(g2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Generate1DToStore must stream exactly the serial product to disk with
// zero in-memory accumulation of C.
func TestGenerate1DToStore(t *testing.T) {
	a := gen.PrefAttach(10, 2, 11)
	b := gen.ER(8, 0.5, 12)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 3, 5} {
		dir := t.TempDir()
		st, stats, err := Generate1DToStore(a, b, r, dir)
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		if st.TotalEdges() != want.NumArcs() {
			t.Fatalf("R=%d: stored %d arcs, want %d", r, st.TotalEdges(), want.NumArcs())
		}
		if stats.EdgesGenerated != want.NumArcs() {
			t.Fatalf("R=%d: generated %d, want %d", r, stats.EdgesGenerated, want.NumArcs())
		}
		got, err := st.LoadGraph()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("R=%d: on-disk product differs from serial", r)
		}
		// Shard i must contain only edges owned by rank i.
		for i := 0; i < r; i++ {
			if err := st.IterShard(i, func(u, v int64) bool {
				if OwnerBySource(u, v, r) != i {
					t.Fatalf("R=%d: edge (%d,%d) in wrong shard %d", r, u, v, i)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}
