package dist

// Fault injection for the simulated cluster. At Sequoia scale the MPI
// layer absorbs slow links, dropped packets and dying ranks; the paper's
// validation workflow only trusts generated ground truth because every
// such failure mode either completes correctly or fails loudly. A
// FaultPlan arms the transport with exactly those faults — per-link
// delivery delay, probabilistic message drop with bounded redelivery,
// and rank crashes at the points a real job dies at — deterministically
// for a given Seed, so a failing chaos schedule replays exactly.
//
// The invariant the chaos soak (chaos_test.go) asserts against armed
// clusters is the verifiability contract: every run either produces the
// exact reference edge set or returns the injected fault as its error —
// no hangs, no partial silent success.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// FaultPoint identifies where in a run an injected rank crash fires.
type FaultPoint int

const (
	// FaultNone disables crash injection (the zero value).
	FaultNone FaultPoint = iota
	// FaultBeforeSinkSetup crashes the rank before its sink is created.
	FaultBeforeSinkSetup
	// FaultMidExpansion crashes the rank while it expands its tiles.
	FaultMidExpansion
	// FaultMidExchange crashes the rank as it sends an exchange message.
	FaultMidExchange
	// FaultInCollective crashes the rank as it enters a collective.
	FaultInCollective
)

func (p FaultPoint) String() string {
	switch p {
	case FaultNone:
		return "none"
	case FaultBeforeSinkSetup:
		return "before-sink-setup"
	case FaultMidExpansion:
		return "mid-expansion"
	case FaultMidExchange:
		return "mid-exchange"
	case FaultInCollective:
		return "in-collective"
	default:
		return fmt.Sprintf("FaultPoint(%d)", int(p))
	}
}

// RankCrashError is the loud failure a crashed rank reports. The run's
// error chain carries it so callers can tell an injected (or simulated
// real) rank death apart from ordinary cancellation.
type RankCrashError struct {
	Rank  int
	Point FaultPoint
}

func (e *RankCrashError) Error() string {
	return fmt.Sprintf("dist: rank %d crashed (%s)", e.Rank, e.Point)
}

// ErrMessageLost marks a message whose bounded redelivery budget was
// exhausted. The transport cancels the run with it as the cause rather
// than silently losing an edge batch — a lost batch must never look like
// a successful generation with fewer edges.
var ErrMessageLost = errors.New("dist: message lost")

// Link names one directed rank-to-rank connection.
type Link struct{ From, To int }

// LinkFault describes the failure behavior of one link (or, as
// FaultPlan.Link, the default for every cross-rank link).
type LinkFault struct {
	// MaxDelay makes each delivery sleep a seeded-random duration in
	// [0, MaxDelay] before entering the destination inbox.
	MaxDelay time.Duration
	// DropProb is the probability that each delivery attempt is dropped.
	DropProb float64
}

// FaultPlan is a deterministic schedule of transport and rank faults for
// one cluster run. The zero value injects nothing. Arm a cluster with
// Cluster.InjectFaults (or an engine run with Config.Faults) before the
// run starts; Cluster.Reset re-arms the schedule from its seed.
type FaultPlan struct {
	// Seed drives every probabilistic decision (delays and drops), keyed
	// additionally by the sending rank so schedules stay deterministic
	// under concurrency.
	Seed int64

	// Link is the default fault behavior of every cross-rank link.
	// Self-deliveries are never faulted: local delivery does not
	// traverse the network.
	Link LinkFault
	// Links overrides Link for specific directed links.
	Links map[Link]LinkFault
	// MaxRedeliver bounds retries after a dropped delivery attempt.
	// When all 1+MaxRedeliver attempts drop, the message is declared
	// lost and the run fails with ErrMessageLost as its cause.
	MaxRedeliver int

	// CrashRank and CrashPoint schedule one rank death; CrashPoint ==
	// FaultNone disables it. CrashAfter is how many hits of the point
	// the rank survives before dying (0 = die at the first hit).
	CrashRank  int
	CrashPoint FaultPoint
	CrashAfter int64
}

// faultState is the armed form of a FaultPlan inside a Cluster.
type faultState struct {
	plan FaultPlan
	// rngs are per sending rank and touched only by that rank's body
	// goroutine (the only goroutine that sends), so no locking is needed.
	rngs      []*rand.Rand
	crashLeft int64 // atomic countdown to the scheduled crash
}

func newFaultState(plan FaultPlan, r int) *faultState {
	s := &faultState{plan: plan, rngs: make([]*rand.Rand, r)}
	s.reset()
	return s
}

// reset re-seeds the rngs and the crash countdown so a Reset cluster
// replays the identical fault schedule.
func (s *faultState) reset() {
	for i := range s.rngs {
		s.rngs[i] = rand.New(rand.NewSource(s.plan.Seed*0x9e3779b9 + int64(i)))
	}
	atomic.StoreInt64(&s.crashLeft, s.plan.CrashAfter+1)
}

// crash reports the scheduled RankCrashError when rank hits the armed
// injection point, nil otherwise.
func (s *faultState) crash(rank int, p FaultPoint) error {
	if s.plan.CrashPoint != p || s.plan.CrashRank != rank {
		return nil
	}
	if atomic.AddInt64(&s.crashLeft, -1) > 0 {
		return nil
	}
	return &RankCrashError{Rank: rank, Point: p}
}

func (s *faultState) linkFor(from, to int) LinkFault {
	if lf, ok := s.plan.Links[Link{From: from, To: to}]; ok {
		return lf
	}
	return s.plan.Link
}

// deliver applies link faults to one cross-rank message: a seeded delay
// (interruptible by run teardown) followed by drop/redelivery. It
// reports whether delivery should proceed; a non-nil error is a
// permanent loss after the redelivery budget ran out.
func (s *faultState) deliver(ctx context.Context, from, to int) (bool, error) {
	lf := s.linkFor(from, to)
	rng := s.rngs[from]
	if lf.MaxDelay > 0 {
		if d := time.Duration(rng.Int63n(int64(lf.MaxDelay) + 1)); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return false, nil
			}
		}
	}
	if lf.DropProb > 0 {
		for attempt := 0; rng.Float64() < lf.DropProb; attempt++ {
			if attempt >= s.plan.MaxRedeliver {
				return false, fmt.Errorf("dist: message %d→%d dropped %d times, redelivery budget %d exhausted: %w",
					from, to, attempt+1, s.plan.MaxRedeliver, ErrMessageLost)
			}
		}
	}
	return true, nil
}
