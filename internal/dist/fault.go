package dist

// Fault injection for the simulated cluster. At Sequoia scale the MPI
// layer absorbs slow links, dropped packets and dying ranks; the paper's
// validation workflow only trusts generated ground truth because every
// such failure mode either completes correctly or fails loudly. A
// FaultPlan arms the transport with exactly those faults — per-link
// delivery delay, probabilistic message drop with bounded redelivery,
// deterministic permanent message loss, and rank crashes at the points a
// real job dies at — deterministically for a given Seed, so a failing
// chaos schedule replays exactly.
//
// The invariant the chaos soak (chaos_test.go) asserts against armed
// clusters is the verifiability contract: every run either produces the
// exact reference edge set or returns the injected fault as its error —
// no hangs, no partial silent success. Under supervision (supervisor.go)
// the contract strengthens for recoverable schedules: the exact edge set
// *despite* the fault, because crashes and losses are one-shot — a
// machine that died does not re-die identically on the replay attempt,
// just as a real dropped packet is not re-dropped deterministically.
// That is why the one-shot counters (crash countdowns, the lose-delivery
// window) are lifetime state surviving Cluster.Reset, while the seeded
// probabilistic faults re-arm on Reset and replay identically.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"kronlab/internal/dist/transport"
)

// FaultPoint identifies where in a run an injected rank crash fires.
type FaultPoint int

const (
	// FaultNone disables crash injection (the zero value).
	FaultNone FaultPoint = iota
	// FaultBeforeSinkSetup crashes the rank before its sink is created.
	FaultBeforeSinkSetup
	// FaultMidExpansion crashes the rank while it expands its tiles.
	FaultMidExpansion
	// FaultMidExchange crashes the rank as it sends an exchange message.
	FaultMidExchange
	// FaultInCollective crashes the rank as it enters a collective.
	FaultInCollective
)

func (p FaultPoint) String() string {
	switch p {
	case FaultNone:
		return "none"
	case FaultBeforeSinkSetup:
		return "before-sink-setup"
	case FaultMidExpansion:
		return "mid-expansion"
	case FaultMidExchange:
		return "mid-exchange"
	case FaultInCollective:
		return "in-collective"
	default:
		return fmt.Sprintf("FaultPoint(%d)", int(p))
	}
}

// RankCrashError is the loud failure a crashed rank reports. The run's
// error chain carries it so callers can tell an injected (or simulated
// real) rank death apart from ordinary cancellation — and so the run
// supervisor knows which rank to respawn or strip of its tiles.
type RankCrashError struct {
	Rank  int
	Point FaultPoint
}

func (e *RankCrashError) Error() string {
	return fmt.Sprintf("dist: rank %d crashed (%s)", e.Rank, e.Point)
}

// ErrMessageLost marks a message whose delivery was permanently lost
// (redelivery budget exhausted, or a scheduled deterministic loss). The
// transport cancels the run with it as the cause rather than silently
// losing an edge batch — a lost batch must never look like a successful
// generation with fewer edges.
var ErrMessageLost = errors.New("dist: message lost")

// MessageLostError is the structured form of ErrMessageLost: it names the
// link that lost the message so the supervisor can attribute the retry.
// errors.Is(err, ErrMessageLost) matches it.
type MessageLostError struct {
	From, To int
	Attempts int // delivery attempts made before declaring the loss
}

func (e *MessageLostError) Error() string {
	return fmt.Sprintf("dist: message %d→%d lost after %d delivery attempt(s)", e.From, e.To, e.Attempts)
}

func (e *MessageLostError) Unwrap() error { return ErrMessageLost }

// Link names one directed rank-to-rank connection.
type Link struct{ From, To int }

// LinkFault describes the failure behavior of one link (or, as
// FaultPlan.Link, the default for every cross-rank link).
type LinkFault struct {
	// MaxDelay makes each delivery sleep a seeded-random duration in
	// [0, MaxDelay] before entering the destination inbox.
	MaxDelay time.Duration
	// DropProb is the probability that each delivery attempt is dropped.
	DropProb float64
}

// CrashSpec schedules one rank death at an injection point. After is how
// many hits of the point the rank survives before dying (0 = die at the
// first hit). A crash is one-shot — the hit that exhausts the countdown
// fires it, later hits pass — unless Repeat marks the rank permanently
// broken, in which case every hit past the countdown crashes it again
// (the scenario tile reassignment recovers from and respawning cannot).
type CrashSpec struct {
	Rank   int
	Point  FaultPoint
	After  int64
	Repeat bool
}

// FaultPlan is a deterministic schedule of transport and rank faults for
// one cluster run. The zero value injects nothing. Arm a cluster with
// Cluster.InjectFaults (or an engine run with Config.Faults) before the
// run starts. Cluster.Reset re-seeds the probabilistic faults from Seed;
// the one-shot counters (crash countdowns, the lose window) deliberately
// keep counting across Reset so a supervised replay does not re-suffer a
// fault that already fired.
type FaultPlan struct {
	// Seed drives every probabilistic decision (delays and drops), keyed
	// additionally by the sending rank so schedules stay deterministic
	// under concurrency.
	Seed int64

	// Link is the default fault behavior of every cross-rank link.
	// Self-deliveries are never faulted: local delivery does not
	// traverse the network.
	Link LinkFault
	// Links overrides Link for specific directed links.
	Links map[Link]LinkFault
	// MaxRedeliver bounds retries after a dropped delivery attempt.
	// When all 1+MaxRedeliver attempts drop, the message is declared
	// lost and the run fails with a MessageLostError as its cause.
	MaxRedeliver int

	// LoseAfter and LoseDeliveries schedule deterministic permanent
	// message loss: across the cluster's lifetime, cross-rank delivery
	// attempts LoseAfter+1 .. LoseAfter+LoseDeliveries are lost outright
	// (no redelivery), each failing the run with a MessageLostError.
	// The sequence counter survives Reset, so a supervised retry gets
	// the batch through — exactly one loss per scheduled slot.
	LoseAfter      int64
	LoseDeliveries int64

	// Crashes schedules any number of rank deaths (see CrashSpec).
	Crashes []CrashSpec

	// PartitionRank and PartitionAfterSends schedule a simulated network
	// partition on the in-process transport: after the cluster's
	// PartitionAfterSends-th cross-rank delivery attempt, PartitionRank
	// is black-holed — its traffic silently discarded with every channel
	// still open — so only a failure detector can surface it. Zero
	// PartitionAfterSends disables the fault. The partition is one-shot
	// lifetime state like the lose window: it does not re-fire after
	// Reset, and Reset heals the network, so a supervised replay runs on
	// an intact cluster (the partition "healed" before the retry).
	PartitionRank       int
	PartitionAfterSends int64

	// FDInterval and FDDeadline configure the failure detector armed
	// alongside a scheduled partition (zero values: 2ms interval, 5×
	// deadline) — the in-process stand-in for cluster mode's heartbeats.
	FDInterval time.Duration
	FDDeadline time.Duration

	// TCP schedules wire-level faults for cluster mode (RunCluster): dial
	// delays, mid-exchange connection resets, torn frames and whole-process
	// kills, applied by the TCP transport of the process whose FaultPlan
	// carries them. The in-process fields above govern the simulated
	// transport only and are ignored by cluster mode; TCP is ignored by
	// in-process runs.
	TCP transport.TCPFaults

	// CrashRank, CrashPoint and CrashAfter are the legacy single-crash
	// form, folded into Crashes when CrashPoint != FaultNone.
	CrashRank  int
	CrashPoint FaultPoint
	CrashAfter int64
}

// faultState is the armed form of a FaultPlan inside a Cluster.
type faultState struct {
	plan  FaultPlan
	specs []CrashSpec
	// rngs are per sending rank and touched only by that rank's body
	// goroutine (the only goroutine that sends), so no locking is needed.
	rngs      []*rand.Rand
	crashLeft []int64 // atomic countdowns, one per spec; lifetime state
	loseSeq   int64   // atomic cross-rank delivery sequence; lifetime state

	// partition, when non-nil, black-holes a rank on the armed transport
	// (wired by Cluster.InjectFaults when the transport supports it).
	// partSeq counts cross-rank delivery attempts toward the scheduled
	// partition; lifetime state, so the fault fires exactly once.
	partition func(rank int)
	partSeq   int64
}

func newFaultState(plan FaultPlan, r int) *faultState {
	specs := append([]CrashSpec(nil), plan.Crashes...)
	if plan.CrashPoint != FaultNone {
		specs = append(specs, CrashSpec{Rank: plan.CrashRank, Point: plan.CrashPoint, After: plan.CrashAfter})
	}
	s := &faultState{plan: plan, specs: specs,
		rngs: make([]*rand.Rand, r), crashLeft: make([]int64, len(specs))}
	for i, sp := range specs {
		s.crashLeft[i] = sp.After + 1
	}
	s.reset()
	return s
}

// reset re-seeds the probabilistic rngs so a Reset cluster replays the
// identical delay/drop schedule. The one-shot counters (crash countdowns,
// lose window) are NOT re-armed: a crash or scheduled loss that already
// fired stays fired across attempts, which is what lets the supervisor's
// replay succeed where the first attempt died.
func (s *faultState) reset() {
	for i := range s.rngs {
		s.rngs[i] = rand.New(rand.NewSource(s.plan.Seed*0x9e3779b9 + int64(i)))
	}
}

// crash reports a scheduled RankCrashError when rank hits an armed
// injection point, nil otherwise. One-shot specs fire on exactly the hit
// that exhausts their countdown; Repeat specs fire on that hit and every
// later one.
func (s *faultState) crash(rank int, p FaultPoint) error {
	for i, sp := range s.specs {
		if sp.Point != p || sp.Rank != rank {
			continue
		}
		left := atomic.AddInt64(&s.crashLeft[i], -1)
		if left == 0 || (sp.Repeat && left < 0) {
			return &RankCrashError{Rank: rank, Point: p}
		}
	}
	return nil
}

func (s *faultState) linkFor(from, to int) LinkFault {
	if lf, ok := s.plan.Links[Link{From: from, To: to}]; ok {
		return lf
	}
	return s.plan.Link
}

// deliver applies link faults to one cross-rank message: a scheduled
// permanent loss, then a seeded delay (interruptible by run teardown),
// then drop/redelivery. It reports whether delivery should proceed; a
// non-nil error is a permanent loss.
func (s *faultState) deliver(ctx context.Context, from, to int) (bool, error) {
	if s.plan.PartitionAfterSends > 0 && s.partition != nil {
		if seq := atomic.AddInt64(&s.partSeq, 1); seq == s.plan.PartitionAfterSends {
			s.partition(s.plan.PartitionRank)
		}
	}
	if s.plan.LoseDeliveries > 0 {
		seq := atomic.AddInt64(&s.loseSeq, 1)
		if seq > s.plan.LoseAfter && seq <= s.plan.LoseAfter+s.plan.LoseDeliveries {
			return false, &MessageLostError{From: from, To: to, Attempts: 1}
		}
	}
	lf := s.linkFor(from, to)
	rng := s.rngs[from]
	if lf.MaxDelay > 0 {
		if d := time.Duration(rng.Int63n(int64(lf.MaxDelay) + 1)); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return false, nil
			}
		}
	}
	if lf.DropProb > 0 {
		for attempt := 0; rng.Float64() < lf.DropProb; attempt++ {
			if attempt >= s.plan.MaxRedeliver {
				return false, &MessageLostError{From: from, To: to, Attempts: attempt + 1}
			}
		}
	}
	return true, nil
}
