// Package dist implements the paper's distributed Kronecker generator
// (Sec. III and Rem. 1) on a simulated cluster: R ranks run as goroutines
// and exchange edge batches over channels. The partitioning, expansion and
// owner-routing code paths are exactly those of the MPI implementation the
// paper describes (HavoqGT on Sequoia); only the transport differs, and
// the cluster accounts messages and bytes so communication volume can be
// reported in the benchmarks.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kronlab/internal/graph"
)

// edgeWireBytes is the accounting size of one edge on the wire: two
// int64 endpoints.
const edgeWireBytes = 16

// Message is a batch of edges sent between ranks; eof marks the end of the
// sender's stream for the current exchange.
type Message struct {
	From  int
	Edges []graph.Edge
	EOF   bool
}

// Stats aggregates traffic counters across an exchange. All fields are
// totals over all ranks.
type Stats struct {
	EdgesGenerated int64 // product edges produced by expansion
	EdgesRouted    int64 // edges sent to a different rank for storage
	BytesSent      int64 // edgeWireBytes per routed edge
	Messages       int64 // batches sent (including EOF markers)
}

// Cluster is a simulated machine with R communicating ranks.
type Cluster struct {
	r       int
	inboxes []chan Message
	stats   Stats

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierCnt  int
	barrierGen  int

	reduceMu  sync.Mutex
	reduceAcc int64
}

// NewCluster returns a cluster of r ranks. Inbox channels are buffered so
// the generate-then-drain pattern cannot deadlock as long as each rank
// runs its receiver concurrently with its producer (see Rank.Exchange).
func NewCluster(r int) (*Cluster, error) {
	if r < 1 {
		return nil, fmt.Errorf("dist: cluster needs ≥ 1 rank, got %d", r)
	}
	c := &Cluster{r: r, inboxes: make([]chan Message, r)}
	for i := range c.inboxes {
		c.inboxes[i] = make(chan Message, 4*r+16)
	}
	c.barrierCond = sync.NewCond(&c.barrierMu)
	return c, nil
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.r }

// Stats returns a snapshot of the traffic counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		EdgesGenerated: atomic.LoadInt64(&c.stats.EdgesGenerated),
		EdgesRouted:    atomic.LoadInt64(&c.stats.EdgesRouted),
		BytesSent:      atomic.LoadInt64(&c.stats.BytesSent),
		Messages:       atomic.LoadInt64(&c.stats.Messages),
	}
}

// Run executes body once per rank concurrently and waits for all ranks;
// the first non-nil error is returned.
func (c *Cluster) Run(body func(rk *Rank) error) error {
	errs := make([]error, c.r)
	var wg sync.WaitGroup
	for id := 0; id < c.r; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = body(&Rank{id: id, c: c})
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank is one simulated processor inside a Cluster.Run body.
type Rank struct {
	id int
	c  *Cluster
}

// ID returns this rank's index in [0, Size).
func (rk *Rank) ID() int { return rk.id }

// Size returns the cluster size R.
func (rk *Rank) Size() int { return rk.c.r }

// send delivers a message to rank `to`, updating traffic counters.
func (rk *Rank) send(to int, m Message) {
	atomic.AddInt64(&rk.c.stats.Messages, 1)
	if len(m.Edges) > 0 && to != rk.id {
		atomic.AddInt64(&rk.c.stats.EdgesRouted, int64(len(m.Edges)))
		atomic.AddInt64(&rk.c.stats.BytesSent, int64(len(m.Edges))*edgeWireBytes)
	}
	rk.c.inboxes[to] <- m
}

// Barrier blocks until all ranks have entered it.
func (rk *Rank) Barrier() {
	c := rk.c
	c.barrierMu.Lock()
	gen := c.barrierGen
	c.barrierCnt++
	if c.barrierCnt == c.r {
		c.barrierCnt = 0
		c.barrierGen++
		c.barrierCond.Broadcast()
	} else {
		for gen == c.barrierGen {
			c.barrierCond.Wait()
		}
	}
	c.barrierMu.Unlock()
}

// AllReduceSum adds v across all ranks and returns the total to each.
// The barriers establish the happens-before edges that make the shared
// accumulator race-free: all additions precede the first barrier, all
// reads sit between the first and second, and the reset follows the
// second.
func (rk *Rank) AllReduceSum(v int64) int64 {
	c := rk.c
	c.reduceMu.Lock()
	c.reduceAcc += v
	c.reduceMu.Unlock()
	rk.Barrier()
	total := c.reduceAcc
	rk.Barrier()
	if rk.id == 0 {
		c.reduceAcc = 0
	}
	rk.Barrier()
	return total
}
