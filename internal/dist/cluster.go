// Package dist implements the paper's distributed Kronecker generator
// (Sec. III and Rem. 1) over a pluggable rank-to-rank transport. The
// default cluster is simulated: R ranks run as goroutines and exchange
// edge batches over channels (transport/chan). Cluster mode runs the
// same code across processes over length-prefixed TCP (transport/tcp,
// see RunClusterProc). The partitioning, expansion and owner-routing
// code paths are exactly those of the MPI implementation the paper
// describes (HavoqGT on Sequoia); only the transport differs, and the
// cluster accounts messages and bytes so communication volume can be
// reported in the benchmarks.
//
// All generation paths are wrappers over one Plan→Expand→Route→Sink
// engine (engine.go): a Plan decomposes the factors into per-rank tiles,
// the Expand stage streams each tile's share of C, an optional OwnerFunc
// routes edges over the all-to-all Exchange, and a pluggable Sink stores
// them (in memory, on disk, to a streaming consumer, or as a count).
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kronlab/internal/dist/transport"
	chantransport "kronlab/internal/dist/transport/chan"
	"kronlab/internal/graph"
)

// edgeWireBytes is the accounting size of one edge on the wire: two
// int64 endpoints (store.RecordSize, which is also what the TCP framing
// actually serializes per edge).
const edgeWireBytes = 16

// Message is a batch of edges sent between ranks — an alias for the
// transport-layer Batch so the engine and the transports share one
// framing type. EOF marks the end of the sender's stream for the
// current exchange. Epoch is the run attempt the batch belongs to
// (stamped by send, checked by the receiver's epoch fence); Tile is the
// plan tile that produced every edge in the batch — exchangeTiles
// flushes at tile boundaries so a batch never mixes tiles, which is
// what lets recovering sinks deduplicate per tile stream.
type Message = transport.Batch

// Stats aggregates traffic counters across an exchange. The scalar fields
// are totals over all ranks; the per-rank slices expose load skew (the
// paper's Rem. 1 crossover) and are populated by the engine, not by the
// raw transport.
type Stats struct {
	EdgesGenerated int64 // product edges produced by expansion
	EdgesRouted    int64 // edges sent to a different rank for storage
	BytesSent      int64 // edgeWireBytes per routed edge
	Messages       int64 // batches sent (including EOF markers)
	MaxInboxDepth  int64 // deepest observed inbox backlog, in messages
	StaleBatches   int64 // batches dropped by the receiver's epoch fence

	PerRankGenerated []int64 // edges expanded by each rank (engine runs)
	PerRankStored    []int64 // edges stored by each rank's sink (engine runs)

	// Supervised-recovery counters (populated by supervise; zero on
	// unsupervised runs). EdgesGenerated/PerRankGenerated then include
	// replayed expansion work, while stored counts remain exactly-once.
	RetriesPerRank    []int64 // attempts re-run, attributed to the faulty rank
	TilesReassigned   int64   // tiles moved off a crashed rank to survivors
	RecoveredRuns     int64   // 1 when the run succeeded only after retries
	DuplicatesSkipped int64   // replayed edges suppressed by checkpoint fencing

	// Cluster-mode robustness counters (populated by RunCluster; zero
	// elsewhere). HeadGeneration counts head incarnations across the run's
	// ledger (1 = the head never died); LastEpoch is the final attempt
	// epoch; HeartbeatMisses counts heartbeat intervals some peer spent
	// silent — early smoke for slow or partitioned links.
	HeadGeneration  int64
	LastEpoch       int64
	HeartbeatMisses int64

	// OutstandingBufs snapshots pooled batch buffers still checked out.
	// A clean (or supervised-and-drained) run ends at 0; the chaos suite
	// asserts it as the buffer-leak probe.
	OutstandingBufs int64
}

// TotalRetries sums the per-rank retry counts.
func (st Stats) TotalRetries() int64 {
	var t int64
	for _, r := range st.RetriesPerRank {
		t += r
	}
	return t
}

// MaxGenerated returns the largest per-rank generated count, or 0 when
// per-rank counters were not collected.
func (st Stats) MaxGenerated() int64 { return maxOf(st.PerRankGenerated) }

// MaxStored returns the largest per-rank stored count, or 0 when per-rank
// counters were not collected.
func (st Stats) MaxStored() int64 { return maxOf(st.PerRankStored) }

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Cluster is a machine with R communicating ranks over a Transport. A
// cluster is one-shot: it runs exactly one Run/RunContext (a second
// attempt returns ErrClusterUsed), because an aborted run can leave
// cancelled context state and stale transport residue that would
// misroute batches into a later exchange. Reset returns a finished
// cluster to a runnable state by draining that residue.
type Cluster struct {
	r      int
	lo, hi int // local rank range [lo, hi) hosted by this process
	tr     transport.Transport
	stats  Stats
	used   atomic.Bool

	// epoch is the current run attempt, stamped on every outgoing
	// message and checked by the receiver's epoch fence. Written by the
	// supervisor strictly between attempts (happens-before the rank
	// goroutines via RunContext's spawn), read by rank goroutines.
	epoch int64

	// Run context: cancelled (with cause) when any rank's body returns an
	// error, so ranks blocked in Exchange tear down instead of waiting for
	// EOF markers that will never arrive.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// faults, when non-nil, is the armed fault-injection schedule
	// (see fault.go) consulted by the transport and the collectives.
	faults *faultState

	// bufsOut counts pooled batch buffers currently checked out by this
	// cluster; it must return to the number of stale inbox messages after
	// teardown (zero after Reset), which is how the abort-path leak
	// regression is asserted. The buffers themselves live in the
	// package-level edgeBufPool.
	bufsOut int64
}

// ErrClusterUsed reports a second run on a one-shot cluster. Build a
// fresh cluster per run, or call Reset to drain the previous run's
// residue first.
var ErrClusterUsed = errors.New("dist: cluster already ran; NewCluster or Reset before running again")

// NewCluster returns a simulated cluster of r ranks on the in-process
// channel transport: all ranks local, zero-copy delivery, buffered
// inboxes so the generate-then-drain pattern cannot deadlock as long as
// each rank runs its inline receive progress (see Rank.Exchange).
func NewCluster(r int) (*Cluster, error) {
	if r < 1 {
		return nil, fmt.Errorf("dist: cluster needs ≥ 1 rank, got %d", r)
	}
	return NewClusterOn(chantransport.New(r))
}

// NewClusterOn returns a cluster over an existing transport — the
// cluster-mode entry point, where the transport is a TCP mesh hosting
// only this process's rank range. RunContext then spawns bodies for the
// local ranks only; collectives and routed batches span the whole
// cluster through the transport.
func NewClusterOn(tr transport.Transport) (*Cluster, error) {
	r := tr.R()
	if r < 1 {
		return nil, fmt.Errorf("dist: transport reports %d ranks, need ≥ 1", r)
	}
	lo, hi := tr.Local()
	if lo < 0 || hi > r || lo >= hi {
		return nil, fmt.Errorf("dist: transport local range [%d,%d) invalid for R=%d", lo, hi, r)
	}
	c := &Cluster{r: r, lo: lo, hi: hi, tr: tr}
	c.ctx, c.cancel = context.WithCancelCause(context.Background())
	return c, nil
}

// Size returns the number of ranks across the whole cluster.
func (c *Cluster) Size() int { return c.r }

// Local returns the contiguous rank range [lo, hi) this process hosts.
func (c *Cluster) Local() (lo, hi int) { return c.lo, c.hi }

// Transport exposes the cluster's rank-to-rank link (for stats and
// cluster-mode control traffic).
func (c *Cluster) Transport() transport.Transport { return c.tr }

// InjectFaults arms the cluster with a fault-injection schedule. It must
// be called before the run starts. The schedule survives Reset: its
// probabilistic faults are re-seeded (so a reset cluster replays delays
// and drops identically), while one-shot faults — crash countdowns and
// the scheduled-loss window — keep their lifetime counters, so a
// supervised replay does not re-suffer a fault that already fired.
//
// A scheduled partition (PartitionAfterSends > 0) additionally arms the
// transport's failure detector, when the transport supports partitions
// (the in-process chan transport does; cluster mode's TCP transport is
// partitioned through TCPFaults and real heartbeats instead). On a
// transport without partition support the partition fields are ignored.
func (c *Cluster) InjectFaults(plan FaultPlan) {
	c.faults = newFaultState(plan, c.r)
	if plan.PartitionAfterSends > 0 {
		type partitioner interface {
			Partition(rank int)
			EnableFailureDetection(interval, deadline time.Duration)
		}
		if p, ok := c.tr.(partitioner); ok {
			c.faults.partition = p.Partition
			iv := plan.FDInterval
			if iv <= 0 {
				iv = 2 * time.Millisecond
			}
			p.EnableFailureDetection(iv, plan.FDDeadline)
		}
	}
}

// Reset returns a finished cluster to a runnable state: stale batches
// left behind by an aborted exchange are drained from the transport
// (their pooled batch buffers recycled), traffic stats and collective
// state are zeroed, any armed fault schedule is re-seeded (see
// InjectFaults for what survives), and a fresh run context is
// installed. It must not be called concurrently with a run.
func (c *Cluster) Reset() {
	c.tr.Reset(func(b Message) { c.putBuf(b.Edges) })
	c.stats = Stats{}
	if c.faults != nil {
		c.faults.reset()
	}
	c.cancel(nil) // retire the previous run's context
	c.ctx, c.cancel = context.WithCancelCause(context.Background())
	c.used.Store(false)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cluster) Stats() Stats {
	var depth int64
	if d, ok := c.tr.(interface{ MaxDepth() int64 }); ok {
		depth = d.MaxDepth()
	}
	return Stats{
		EdgesGenerated:  atomic.LoadInt64(&c.stats.EdgesGenerated),
		EdgesRouted:     atomic.LoadInt64(&c.stats.EdgesRouted),
		BytesSent:       atomic.LoadInt64(&c.stats.BytesSent),
		Messages:        atomic.LoadInt64(&c.stats.Messages),
		MaxInboxDepth:   depth,
		StaleBatches:    atomic.LoadInt64(&c.stats.StaleBatches),
		OutstandingBufs: atomic.LoadInt64(&c.bufsOut),
	}
}

// Run executes body once per local rank concurrently and waits for all
// of them; the first non-nil error is returned.
func (c *Cluster) Run(body func(rk *Rank) error) error {
	return c.RunContext(context.Background(), body)
}

// RunContext is Run with cancellation: when ctx is cancelled, or any
// local rank's body returns an error, every rank blocked in Exchange
// (sending or waiting for EOF markers) is released. The root cause — the
// first rank error, or the external cancellation — is returned in
// preference to the secondary context errors the other ranks observe.
// On a multi-process transport only the local rank range runs here;
// remote failures surface as transport errors on blocked calls.
func (c *Cluster) RunContext(ctx context.Context, body func(rk *Rank) error) error {
	if !c.used.CompareAndSwap(false, true) {
		return ErrClusterUsed
	}
	ctx, cancel := context.WithCancelCause(ctx)
	c.ctx, c.cancel = ctx, cancel
	defer cancel(nil)
	n := c.hi - c.lo
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := c.lo; id < c.hi; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id-c.lo] = body(&Rank{id: id, c: c})
			if errs[id-c.lo] != nil {
				cancel(errs[id-c.lo])
			}
		}(id)
	}
	wg.Wait()
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// edgeBufPool recycles per-destination batch buffers between flushes so
// a long exchange allocates O(R + inflight) buffers, not O(messages).
// It is a package-level freelist rather than a per-cluster sync.Pool for
// two measured reasons: short-lived clusters (one per generation run)
// reuse each other's buffers instead of paying O(R²) cold-start
// allocations every run, and pushing a plain slice header onto a slice
// stack does not box it into an interface the way sync.Pool.Put does —
// that box was one heap object per flushed batch, the single largest
// allocation source in the routed engine.
//
// The freelist is sharded by rank so ranks running on different cores
// never serialize on one mutex: rank ρ fills from and spills to shard
// ρ mod poolShards, in bulk only (the per-batch recycle path is the
// shipper's lock-free spare stack). A rank whose own shard runs dry
// steals a bulk grab from the other shards before allocating, which
// preserves the cross-run warmth the single freelist had — buffers
// spilled by an R=4 run are found by an R=16 run's ranks regardless of
// which shard they landed in. Each shard is padded to its own cache
// line. Per-cluster accounting stays in Cluster.bufsOut, which nets
// zero for any get/put pair regardless of which cluster's run (or
// shard) originally held the buffer.
const poolShards = 8 // power of two; shardFor masks with poolShards-1

// edgeBufPoolShardCap bounds each shard; buffers recycled beyond it are
// dropped for the GC. poolShards shards × 512 buffers of the default
// batch size is 64 MiB total — comfortably above the in-flight peak of
// any simulated cluster size the repo runs (R² staged + inbox backlog
// at R=32 is ~1.3k buffers).
const edgeBufPoolShardCap = 512

type bufShard struct {
	mu   sync.Mutex
	free [][]graph.Edge
	_    [64]byte // pad shards onto separate cache lines
}

var edgeBufPool [poolShards]bufShard

// shardFor maps a rank to its home freelist shard.
func shardFor(rank int) int { return rank & (poolShards - 1) }

// putBufSpread is the shard cursor for recycles with no rank context
// (Reset's stale-inbox drain): spreading them round-robin keeps a long
// recovery run from piling every drained buffer onto shard 0.
var putBufSpread atomic.Int64

// poolFill pops up to k recycled buffers onto dst, trying the caller's
// home shard first (one lock in steady state) and stealing bulk grabs
// from the other shards only when it runs dry — a cold pool walks all
// shards once and then allocates.
func poolFill(shard int, dst [][]graph.Edge, k int) [][]graph.Edge {
	for i := 0; i < poolShards && k > 0; i++ {
		p := &edgeBufPool[(shard+i)&(poolShards-1)]
		p.mu.Lock()
		for n := len(p.free); k > 0 && n > 0; k-- {
			n--
			dst = append(dst, p.free[n])
			p.free[n] = nil
			p.free = p.free[:n]
		}
		p.mu.Unlock()
	}
	return dst
}

// poolSpill pushes every buffer in src back onto the caller's home shard
// under one lock; src is cleared for its owner. Overflow beyond the
// shard cap is dropped for the GC rather than walked onto other shards —
// spills are bulk and rare, and a full home shard means the pool is
// already warm.
func poolSpill(shard int, src [][]graph.Edge) {
	if len(src) == 0 {
		return
	}
	p := &edgeBufPool[shard&(poolShards-1)]
	p.mu.Lock()
	for i, b := range src {
		if len(p.free) < edgeBufPoolShardCap {
			p.free = append(p.free, b[:0])
		}
		src[i] = nil
	}
	p.mu.Unlock()
}

// getBuf returns an empty edge buffer for an n-edge batch, reusing a
// recycled one when available — from the home shard of the given rank,
// stealing across shards on a miss. A recycled buffer may have any
// capacity (batch sizes vary across runs); append growth re-sizes it and
// the grown buffer returns to the freelist, so capacities converge
// upward. The exchange hot path recycles through rank-local spare stacks
// instead (see shipper.getBuf) and only hits the shared shards to fill,
// spill or cross runs.
func (c *Cluster) getBuf(rank, n int) []graph.Edge {
	atomic.AddInt64(&c.bufsOut, 1)
	shard := shardFor(rank)
	for i := 0; i < poolShards; i++ {
		p := &edgeBufPool[(shard+i)&(poolShards-1)]
		p.mu.Lock()
		if k := len(p.free); k > 0 {
			b := p.free[k-1]
			p.free[k-1] = nil
			p.free = p.free[:k-1]
			p.mu.Unlock()
			return b
		}
		p.mu.Unlock()
	}
	return make([]graph.Edge, 0, n)
}

// putBuf recycles a delivered batch buffer with no rank context; the
// spread cursor picks a shard round-robin.
func (c *Cluster) putBuf(s []graph.Edge) {
	if cap(s) == 0 {
		return
	}
	atomic.AddInt64(&c.bufsOut, -1)
	p := &edgeBufPool[int(putBufSpread.Add(1))&(poolShards-1)]
	p.mu.Lock()
	if len(p.free) < edgeBufPoolShardCap {
		p.free = append(p.free, s[:0])
	}
	p.mu.Unlock()
}

// outstandingBufs reports pooled batch buffers currently checked out.
// Once a run has torn down and Reset has drained stale inboxes it must
// be zero — the pooled-buffer leak regression asserts exactly that.
func (c *Cluster) outstandingBufs() int64 { return atomic.LoadInt64(&c.bufsOut) }

// Rank is one processor inside a Cluster.Run body.
type Rank struct {
	id int
	c  *Cluster
}

// ID returns this rank's global index in [0, Size).
func (rk *Rank) ID() int { return rk.id }

// Size returns the cluster size R.
func (rk *Rank) Size() int { return rk.c.r }

// Context returns the run's context; it is cancelled when any rank fails
// or the RunContext caller's context is cancelled.
func (rk *Rank) Context() context.Context { return rk.c.ctx }

// crashAt consults the armed fault schedule (if any) for a scheduled
// crash of this rank at injection point p. The fast path is a nil check.
func (rk *Rank) crashAt(p FaultPoint) error {
	if rk.c.faults == nil {
		return nil
	}
	return rk.c.faults.crash(rk.id, p)
}

// Barrier blocks until all ranks have entered it, or until the run is
// torn down — a rank that dies before arriving would otherwise leave
// every peer waiting forever. Callers that must distinguish completion
// from teardown use BarrierContext.
func (rk *Rank) Barrier() { _ = rk.BarrierContext() }

// BarrierContext is Barrier observing the run's cancellation: it returns
// nil once all ranks (across every process) have arrived, or the run's
// cancellation cause when the run is torn down while waiting (that
// barrier generation can then never complete).
func (rk *Rank) BarrierContext() error {
	if err := rk.crashAt(FaultInCollective); err != nil {
		return err
	}
	return rk.c.tr.Barrier(rk.c.ctx, rk.id)
}

// AllReduceSum adds v across all ranks and returns the total to each.
// Releases (with a meaningless partial total) when the run is torn down;
// use AllReduceSumContext to observe the failure.
func (rk *Rank) AllReduceSum(v int64) int64 {
	total, _ := rk.AllReduceSumContext(v)
	return total
}

// AllReduceSumContext adds v across all ranks and returns the total to
// each, or the run's cancellation cause if the collective cannot
// complete because the run was torn down. The reduce passes the
// in-collective fault injection point three times — the cadence of the
// three barrier entries the original shared-memory reduce made — so
// seeded chaos schedules keep their crash positions across transports.
func (rk *Rank) AllReduceSumContext(v int64) (int64, error) {
	if err := rk.crashAt(FaultInCollective); err != nil {
		return 0, err
	}
	total, err := rk.c.tr.AllReduceSum(rk.c.ctx, rk.id, v)
	if err != nil {
		return total, err
	}
	if err := rk.crashAt(FaultInCollective); err != nil {
		return total, err
	}
	if err := rk.crashAt(FaultInCollective); err != nil {
		return total, err
	}
	return total, nil
}
