// Package dist implements the paper's distributed Kronecker generator
// (Sec. III and Rem. 1) on a simulated cluster: R ranks run as goroutines
// and exchange edge batches over channels. The partitioning, expansion and
// owner-routing code paths are exactly those of the MPI implementation the
// paper describes (HavoqGT on Sequoia); only the transport differs, and
// the cluster accounts messages and bytes so communication volume can be
// reported in the benchmarks.
//
// All generation paths are wrappers over one Plan→Expand→Route→Sink
// engine (engine.go): a Plan decomposes the factors into per-rank tiles,
// the Expand stage streams each tile's share of C, an optional OwnerFunc
// routes edges over the all-to-all Exchange, and a pluggable Sink stores
// them (in memory, on disk, to a streaming consumer, or as a count).
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kronlab/internal/graph"
)

// edgeWireBytes is the accounting size of one edge on the wire: two
// int64 endpoints.
const edgeWireBytes = 16

// Message is a batch of edges sent between ranks; eof marks the end of the
// sender's stream for the current exchange.
type Message struct {
	From  int
	Edges []graph.Edge
	EOF   bool
}

// Stats aggregates traffic counters across an exchange. The scalar fields
// are totals over all ranks; the per-rank slices expose load skew (the
// paper's Rem. 1 crossover) and are populated by the engine, not by the
// raw transport.
type Stats struct {
	EdgesGenerated int64 // product edges produced by expansion
	EdgesRouted    int64 // edges sent to a different rank for storage
	BytesSent      int64 // edgeWireBytes per routed edge
	Messages       int64 // batches sent (including EOF markers)
	MaxInboxDepth  int64 // deepest observed inbox backlog, in messages

	PerRankGenerated []int64 // edges expanded by each rank (engine runs)
	PerRankStored    []int64 // edges stored by each rank's sink (engine runs)
}

// MaxGenerated returns the largest per-rank generated count, or 0 when
// per-rank counters were not collected.
func (st Stats) MaxGenerated() int64 { return maxOf(st.PerRankGenerated) }

// MaxStored returns the largest per-rank stored count, or 0 when per-rank
// counters were not collected.
func (st Stats) MaxStored() int64 { return maxOf(st.PerRankStored) }

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Cluster is a simulated machine with R communicating ranks.
type Cluster struct {
	r       int
	inboxes []chan Message
	stats   Stats

	// Run context: cancelled (with cause) when any rank's body returns an
	// error, so ranks blocked in Exchange tear down instead of waiting for
	// EOF markers that will never arrive.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// bufPool recycles per-destination batch buffers between flushes so a
	// long exchange allocates O(R + inflight) buffers, not O(messages).
	bufPool sync.Pool

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierCnt  int
	barrierGen  int

	reduceMu  sync.Mutex
	reduceAcc int64
}

// NewCluster returns a cluster of r ranks. Inbox channels are buffered so
// the generate-then-drain pattern cannot deadlock as long as each rank
// runs its receiver concurrently with its producer (see Rank.Exchange).
func NewCluster(r int) (*Cluster, error) {
	if r < 1 {
		return nil, fmt.Errorf("dist: cluster needs ≥ 1 rank, got %d", r)
	}
	c := &Cluster{r: r, inboxes: make([]chan Message, r)}
	for i := range c.inboxes {
		c.inboxes[i] = make(chan Message, 4*r+16)
	}
	c.ctx, c.cancel = context.WithCancelCause(context.Background())
	c.barrierCond = sync.NewCond(&c.barrierMu)
	return c, nil
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.r }

// Stats returns a snapshot of the traffic counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		EdgesGenerated: atomic.LoadInt64(&c.stats.EdgesGenerated),
		EdgesRouted:    atomic.LoadInt64(&c.stats.EdgesRouted),
		BytesSent:      atomic.LoadInt64(&c.stats.BytesSent),
		Messages:       atomic.LoadInt64(&c.stats.Messages),
		MaxInboxDepth:  atomic.LoadInt64(&c.stats.MaxInboxDepth),
	}
}

// Run executes body once per rank concurrently and waits for all ranks;
// the first non-nil error is returned.
func (c *Cluster) Run(body func(rk *Rank) error) error {
	return c.RunContext(context.Background(), body)
}

// RunContext is Run with cancellation: when ctx is cancelled, or any
// rank's body returns an error, every rank blocked in Exchange (sending or
// waiting for EOF markers) is released. The root cause — the first rank
// error, or the external cancellation — is returned in preference to the
// secondary context errors the other ranks observe.
func (c *Cluster) RunContext(ctx context.Context, body func(rk *Rank) error) error {
	ctx, cancel := context.WithCancelCause(ctx)
	c.ctx, c.cancel = ctx, cancel
	defer cancel(nil)
	errs := make([]error, c.r)
	var wg sync.WaitGroup
	for id := 0; id < c.r; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = body(&Rank{id: id, c: c})
			if errs[id] != nil {
				cancel(errs[id])
			}
		}(id)
	}
	wg.Wait()
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// getBuf returns an empty edge buffer with batchSize capacity, reusing a
// recycled one when available.
func (c *Cluster) getBuf() []graph.Edge {
	if v := c.bufPool.Get(); v != nil {
		return v.([]graph.Edge)[:0]
	}
	return make([]graph.Edge, 0, batchSize)
}

// putBuf recycles a delivered batch buffer.
func (c *Cluster) putBuf(s []graph.Edge) {
	if cap(s) > 0 {
		c.bufPool.Put(s[:0]) //nolint:staticcheck // slice headers are cheap to box
	}
}

// Rank is one simulated processor inside a Cluster.Run body.
type Rank struct {
	id int
	c  *Cluster
}

// ID returns this rank's index in [0, Size).
func (rk *Rank) ID() int { return rk.id }

// Size returns the cluster size R.
func (rk *Rank) Size() int { return rk.c.r }

// Context returns the run's context; it is cancelled when any rank fails
// or the RunContext caller's context is cancelled.
func (rk *Rank) Context() context.Context { return rk.c.ctx }

// send delivers a message to rank `to`, updating traffic counters. It
// returns false without delivering when the run is cancelled — the
// receiving rank may already be gone.
func (rk *Rank) send(to int, m Message) bool {
	select {
	case rk.c.inboxes[to] <- m:
	case <-rk.c.ctx.Done():
		return false
	}
	atomic.AddInt64(&rk.c.stats.Messages, 1)
	if len(m.Edges) > 0 && to != rk.id {
		atomic.AddInt64(&rk.c.stats.EdgesRouted, int64(len(m.Edges)))
		atomic.AddInt64(&rk.c.stats.BytesSent, int64(len(m.Edges))*edgeWireBytes)
	}
	if d := int64(len(rk.c.inboxes[to])); d > 0 {
		atomicMax(&rk.c.stats.MaxInboxDepth, d)
	}
	return true
}

// atomicMax raises *addr to v if v is larger.
func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// Barrier blocks until all ranks have entered it.
func (rk *Rank) Barrier() {
	c := rk.c
	c.barrierMu.Lock()
	gen := c.barrierGen
	c.barrierCnt++
	if c.barrierCnt == c.r {
		c.barrierCnt = 0
		c.barrierGen++
		c.barrierCond.Broadcast()
	} else {
		for gen == c.barrierGen {
			c.barrierCond.Wait()
		}
	}
	c.barrierMu.Unlock()
}

// AllReduceSum adds v across all ranks and returns the total to each.
// The barriers establish the happens-before edges that make the shared
// accumulator race-free: all additions precede the first barrier, all
// reads sit between the first and second, and the reset follows the
// second.
func (rk *Rank) AllReduceSum(v int64) int64 {
	c := rk.c
	c.reduceMu.Lock()
	c.reduceAcc += v
	c.reduceMu.Unlock()
	rk.Barrier()
	total := c.reduceAcc
	rk.Barrier()
	if rk.id == 0 {
		c.reduceAcc = 0
	}
	rk.Barrier()
	return total
}
