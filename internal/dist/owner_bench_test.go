package dist

import (
	"sync/atomic"
	"testing"
)

// legacyCachedBlockOwner reconstructs the retired OwnerByBlock
// implementation: the ⌈NC/r⌉ block size was memoized behind an
// atomic.Pointer so repeat calls with the same r could skip the
// division. The cache made every per-edge call pay an atomic load, a
// pointer chase and an r-match check — and the memo missed whenever two
// cluster sizes interleaved. It exists here only as the baseline the
// plan-time-bound BlockOwner (BlockOwner.Bind, a bare division per edge)
// is measured against.
func legacyCachedBlockOwner(nC int64) OwnerFunc {
	type memo struct {
		r   int
		per int64
	}
	var cache atomic.Pointer[memo]
	return func(u, _ int64, r int) int {
		m := cache.Load()
		if m == nil || m.r != r {
			m = &memo{r: r, per: (nC + int64(r) - 1) / int64(r)}
			cache.Store(m)
		}
		o := int(u / m.per)
		if o >= r {
			o = r - 1
		}
		return o
	}
}

// BenchmarkOwnerByBlock measures one owner-map evaluation per iteration —
// the unit of work the routed kernel pays once per generated edge — for
// the three OwnerByBlock generations: the retired atomic.Pointer cache,
// the current recompute-per-call OwnerFunc, and the plan-time-bound
// BlockOwner. The bound form is the one the engine routes with; the
// other two quantify what binding at plan time buys (satellite of the
// blocked-kernel PR: the cache was both slower per edge and wrong-ish —
// interleaved cluster sizes thrashed it).
func BenchmarkOwnerByBlock(b *testing.B) {
	const nC = int64(1) << 40
	const r = 16
	b.Run("legacyAtomicCache", func(b *testing.B) {
		f := legacyCachedBlockOwner(nC)
		var acc int
		for i := 0; i < b.N; i++ {
			acc += f(int64(i)&(nC-1), 0, r)
		}
		sinkOwner = acc
	})
	b.Run("unbound", func(b *testing.B) {
		f := OwnerByBlock(nC)
		var acc int
		for i := 0; i < b.N; i++ {
			acc += f(int64(i)&(nC-1), 0, r)
		}
		sinkOwner = acc
	})
	b.Run("bound", func(b *testing.B) {
		f := BlockOwner{NC: nC}.Bind(r)
		var acc int
		for i := 0; i < b.N; i++ {
			acc += f(int64(i)&(nC-1), 0)
		}
		sinkOwner = acc
	})
}

// sinkOwner defeats dead-code elimination of the benchmarked owner calls.
var sinkOwner int

// TestLegacyCachedBlockOwnerAgrees pins the three generations to the
// same routing decisions, so the benchmark compares implementations of
// one function rather than three different owner maps.
func TestLegacyCachedBlockOwnerAgrees(t *testing.T) {
	const nC = int64(1000)
	legacy := legacyCachedBlockOwner(nC)
	unbound := OwnerByBlock(nC)
	for _, r := range []int{1, 3, 16} {
		bound := BlockOwner{NC: nC}.Bind(r)
		for u := int64(0); u < nC; u += 7 {
			if l, ub, bd := legacy(u, 0, r), unbound(u, 0, r), bound(u, 0); l != ub || ub != bd {
				t.Fatalf("r=%d u=%d: legacy=%d unbound=%d bound=%d", r, u, l, ub, bd)
			}
		}
	}
}
