package dist

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// The sinks below are supervision-agnostic: under Recovery the engine
// wraps each RankSink in a fencing layer (supervisor.go) that suppresses
// replayed duplicates and defers Close to the end of the whole run, so a
// sink observes exactly the same Store/Close sequence a fault-free run
// would deliver. "Durable" in the simulation means the Go object
// survives the simulated rank's death — which it does, because a crashed
// rank is a returned goroutine, not a lost process image.

// BlockStorer is an optional RankSink fast path: the engine delivers a
// whole tile-framed batch in one call instead of per-edge Store calls.
// StoreBlock reports how many of the block's edges were durably stored
// before any error — exactly-once checkpoint accounting needs the exact
// count even on a partial failure. The block aliases an engine buffer
// recycled after the call returns; implementations must copy edges they
// retain (append of graph.Edge values copies).
type BlockStorer interface {
	StoreBlock(edges []graph.Edge) (int64, error)
}

// TileBlockStorer is the tile-aware variant of BlockStorer: the engine
// frames deliveries by tile already (batches never mix tiles), and a
// sink that needs the framing — the ordered stream sink flushes at tile
// boundaries so its consumer can interleave ranks in global tile order —
// implements this instead. When a RankSink implements both, the engine
// prefers TileBlockStorer.
type TileBlockStorer interface {
	StoreTileBlock(tile int, edges []graph.Edge) (int64, error)
}

// MemorySink collects each rank's owned edges in an in-memory slice —
// the Result-producing sink behind Generate1D/Generate2D.
type MemorySink struct {
	PerRank [][]graph.Edge
	// Hint, when > 0, pre-sizes each rank's buffer — typically the ideal
	// per-rank share |E_C|/R, which generation plans know exactly up
	// front (the paper's arc count is ground truth before expansion).
	// Skewed owner maps still grow past it by normal append doubling.
	Hint int64
	// Hints, when non-nil, pre-sizes rank i's buffer to Hints[i] and
	// overrides Hint — for owner maps whose exact per-rank loads are
	// ground truth too (product out-degrees factor as
	// deg_C(γ(i,k)) = deg_A(i)·deg_B(k), so source-keyed owners have
	// exactly computable storage; see generate).
	Hints []int64
}

// NewMemorySink returns a sink for r ranks.
func NewMemorySink(r int) *MemorySink {
	return &MemorySink{PerRank: make([][]graph.Edge, r)}
}

// Rank implements Sink.
func (s *MemorySink) Rank(rk *Rank) (RankSink, error) {
	m := &memRankSink{s: s, id: rk.ID()}
	hint := s.Hint
	if s.Hints != nil {
		hint = s.Hints[rk.ID()]
	}
	if hint > 0 {
		m.buf = make([]graph.Edge, 0, hint)
	}
	return m, nil
}

type memRankSink struct {
	s   *MemorySink
	id  int
	buf []graph.Edge
}

func (m *memRankSink) Store(e graph.Edge) error {
	m.buf = append(m.buf, e)
	return nil
}

// StoreBlock implements BlockStorer: one append per delivered batch.
func (m *memRankSink) StoreBlock(edges []graph.Edge) (int64, error) {
	m.buf = append(m.buf, edges...)
	return int64(len(edges)), nil
}

func (m *memRankSink) Close() error {
	m.s.PerRank[m.id] = m.buf
	return nil
}

// CountSink discards edges and counts them — the pure expansion
// throughput sink behind CountOnly (experiment E2). Use with a nil
// Owner so no routing traffic is simulated.
type CountSink struct {
	total int64
}

// Total returns the edges counted across all ranks.
func (s *CountSink) Total() int64 { return atomic.LoadInt64(&s.total) }

// Rank implements Sink.
func (s *CountSink) Rank(rk *Rank) (RankSink, error) {
	return &countRankSink{s: s}, nil
}

type countRankSink struct {
	s *CountSink
	n int64
}

func (c *countRankSink) Store(graph.Edge) error {
	c.n++
	return nil
}

// StoreBlock implements BlockStorer: counting a batch is one add.
func (c *countRankSink) StoreBlock(edges []graph.Edge) (int64, error) {
	c.n += int64(len(edges))
	return int64(len(edges)), nil
}

func (c *countRankSink) Close() error {
	atomic.AddInt64(&c.s.total, c.n)
	return nil
}

// StoreSink streams each rank's owned edges to its own shard of an
// on-disk store (one store.ShardWriter per rank), keeping per-rank memory
// O(batch) regardless of |E_C|. Route with an owner map that matches the
// shard layout (OwnerBySource, the store's BySource) so readers can
// address shards; Finalize writes the manifest once the run succeeds.
//
// Flushing is asynchronous: each rank's sink hands whole pooled blocks
// of contiguous 16-byte records to a per-shard writer goroutine
// (phase=sink-flush in profiles), so disk latency overlaps expansion
// instead of stalling it. The handoff queue is bounded — a rank that
// outruns its disk blocks on the enqueue, which is the backpressure. A
// write error is latched and surfaces on the next StoreBlock/Store call
// (tearing the run down through the engine's sink-error path) and again
// at Close, so a failed flush can never silently drop edges.
//
// Exactly-once under recovery follows the stream sink's precedent:
// edges count as stored once buffered, and both the staging block and
// the writer goroutine belong to the sink instance, which survives run
// attempts (supervision defers Close to the end of the whole run) — so
// every edge a checkpoint counted is either on disk or still in this
// pipeline, and replayed duplicates are fenced off before they reach it.
type StoreSink struct {
	Dir    string
	counts []int64
}

// NewStoreSink returns a sink writing r shards under dir.
func NewStoreSink(dir string, r int) *StoreSink {
	return &StoreSink{Dir: dir, counts: make([]int64, r)}
}

// sinkFlushRecords is the async sink's block size in edges: 4096 records
// is 64 KiB of contiguous bytes per flush — the shard writer's bufio
// size, so blocks pass through to the file in full-buffer writes.
const sinkFlushRecords = 4096

// sinkQueueDepth bounds the blocks in flight between a rank and its
// shard writer. Small on purpose: the queue exists to overlap, not to
// buffer the run — a rank more than sinkQueueDepth blocks ahead of its
// disk blocks on the handoff (backpressure), holding per-rank sink
// memory at O(sinkQueueDepth · sinkFlushRecords).
const sinkQueueDepth = 4

// Rank implements Sink; shard creation errors abort the run on all ranks.
func (s *StoreSink) Rank(rk *Rank) (RankSink, error) {
	sw, err := store.NewShardWriter(s.Dir, rk.ID())
	if err != nil {
		return nil, err
	}
	t := &storeRankSink{s: s, id: rk.ID(), sw: sw,
		ch:   make(chan []graph.Edge, sinkQueueDepth),
		free: make(chan []graph.Edge, sinkQueueDepth+1),
		done: make(chan struct{}),
		cur:  make([]graph.Edge, 0, sinkFlushRecords)}
	go t.writeLoop()
	return t, nil
}

// Finalize writes the manifest for a completed run and opens the store.
func (s *StoreSink) Finalize(nC int64) (*store.Store, error) {
	if err := store.WriteManifest(s.Dir, nC, s.counts); err != nil {
		return nil, err
	}
	return store.Open(s.Dir)
}

type storeRankSink struct {
	s  *StoreSink
	id int
	sw *store.ShardWriter

	ch   chan []graph.Edge // full blocks to the writer goroutine (FIFO)
	free chan []graph.Edge // drained blocks coming back for reuse
	done chan struct{}     // closed when the writer goroutine exits
	cur  []graph.Edge      // staging block, owned by the rank goroutine

	// werr is the writer goroutine's first error; it is written before
	// failed is set, so any goroutine observing failed == true also
	// observes werr (atomic store/load ordering).
	werr   error
	failed atomic.Bool
}

// writeLoop is the shard's flush goroutine: it drains whole blocks in
// handoff order — per-shard write order equals acceptance order, which
// is what keeps shard bytes deterministic — and keeps draining after an
// error so a blocked rank is always released; post-error blocks are
// discarded, the run is already doomed.
func (t *storeRankSink) writeLoop() {
	defer close(t.done)
	pprof.SetGoroutineLabels(sinkFlushLabels)
	for b := range t.ch {
		if !t.failed.Load() {
			if err := t.sw.AppendBlock(b); err != nil {
				t.werr = err
				t.failed.Store(true)
			}
		}
		select {
		case t.free <- b[:0]:
		default: // pool full; let the GC take it
		}
	}
}

// handoff queues the staging block for the writer and checks out a
// replacement. The enqueue blocks when the writer is sinkQueueDepth
// blocks behind — the sink's backpressure.
func (t *storeRankSink) handoff() error {
	if t.failed.Load() {
		return t.werr
	}
	if len(t.cur) == 0 {
		return nil
	}
	t.ch <- t.cur
	select {
	case b := <-t.free:
		t.cur = b
	default:
		t.cur = make([]graph.Edge, 0, sinkFlushRecords)
	}
	return nil
}

func (t *storeRankSink) Store(e graph.Edge) error {
	if t.failed.Load() {
		return t.werr
	}
	t.cur = append(t.cur, e)
	if len(t.cur) >= sinkFlushRecords {
		return t.handoff()
	}
	return nil
}

// StoreBlock implements BlockStorer, reporting how far a failing batch
// got so checkpoint accounting stays exact. Edges count as stored once
// staged (see the type comment); the block aliases an engine buffer, so
// it is copied into the staging block here.
func (t *storeRankSink) StoreBlock(edges []graph.Edge) (int64, error) {
	if t.failed.Load() {
		return 0, t.werr
	}
	var stored int64
	for len(edges) > 0 {
		n := sinkFlushRecords - len(t.cur)
		if n > len(edges) {
			n = len(edges)
		}
		t.cur = append(t.cur, edges[:n]...)
		stored += int64(n)
		edges = edges[n:]
		if len(t.cur) >= sinkFlushRecords {
			if err := t.handoff(); err != nil {
				return stored, err
			}
		}
	}
	return stored, nil
}

// Close drains the pipeline: the staging remainder is queued, the writer
// goroutine is joined, and only then is the shard flushed and counted —
// so a successful Close means every accepted edge is on disk.
func (t *storeRankSink) Close() error {
	if len(t.cur) > 0 && !t.failed.Load() {
		t.ch <- t.cur
	}
	t.cur = nil
	close(t.ch)
	<-t.done
	if t.failed.Load() {
		t.sw.Close()
		return t.werr
	}
	t.s.counts[t.id] = t.sw.Count()
	return t.sw.Close()
}

// streamBatch is one tile-framed delivery from an expander rank to the
// stream consumer.
type streamBatch struct {
	tile  int
	edges []graph.Edge
}

// streamSink feeds a single consumer from every expander rank through
// per-rank channels of tile-framed batches — the serving sink behind
// Stream. Per-rank channels (rather than one shared channel) are what
// make the stream deterministic: each rank's channel is FIFO and its
// tile sequence is ID-increasing, so the consumer can walk tiles in
// global ID order pulling each tile's batches from its owning rank,
// with backpressure (small channel depth) bounding how far ahead other
// ranks run. Batches are pooled; the consumer returns each batch after
// use via recycle, and the outstanding counter is the leak probe.
type streamSink struct {
	ctx   context.Context
	chans []chan streamBatch // one per rank
	batch int

	mu       sync.Mutex
	free     [][]graph.Edge
	residual []*streamBatch  // per-rank Close-time tail, delivered out of band
	done     []chan struct{} // closed by rank i's sink Close: residual[i] is ready

	outstanding int64 // buffers checked out and not yet recycled
	messages    int64
	routed      int64
	bytes       int64
}

// streamChanDepth is the per-rank channel depth: enough to decouple a
// rank's expansion from the consumer's emit without letting ahead-running
// ranks buffer unboundedly (per-rank stream memory stays O(batch)).
const streamChanDepth = 2

func newStreamSink(ctx context.Context, batch, ranks int) *streamSink {
	s := &streamSink{
		ctx:      ctx,
		chans:    make([]chan streamBatch, ranks),
		batch:    batch,
		residual: make([]*streamBatch, ranks),
		done:     make([]chan struct{}, ranks),
	}
	for i := range s.chans {
		s.chans[i] = make(chan streamBatch, streamChanDepth)
		s.done[i] = make(chan struct{})
	}
	return s
}

// setResidual parks a rank's Close-time tail for out-of-band pickup. Close
// cannot deliver through the channel: it may run at attempt teardown
// (consumer not draining this rank) or from the supervisor's sequential
// finalize loop (whose rank order can cross the consumer's global tile
// order), and a blocking send from either can deadlock. The consumer
// learns the residual is ready from the rank's done signal — closed
// after the park, so the handoff is ordered.
func (s *streamSink) setResidual(rank int, b streamBatch) {
	atomic.AddInt64(&s.messages, 1)
	atomic.AddInt64(&s.routed, int64(len(b.edges)))
	atomic.AddInt64(&s.bytes, int64(len(b.edges))*edgeWireBytes)
	s.mu.Lock()
	s.residual[rank] = &b
	s.mu.Unlock()
}

// takeResidual removes and returns rank's parked tail, or nil.
func (s *streamSink) takeResidual(rank int) *streamBatch {
	s.mu.Lock()
	b := s.residual[rank]
	s.residual[rank] = nil
	s.mu.Unlock()
	return b
}

func (s *streamSink) getBuf() []graph.Edge {
	atomic.AddInt64(&s.outstanding, 1)
	s.mu.Lock()
	if k := len(s.free); k > 0 {
		b := s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
		s.mu.Unlock()
		return b
	}
	s.mu.Unlock()
	return make([]graph.Edge, 0, s.batch)
}

// recycle returns a consumed batch to the pool. A freelist stack rather
// than a sync.Pool: pushing a slice header onto a slice does not box it
// into an interface, so recycling is allocation-free (see edgeBufPool).
func (s *streamSink) recycle(b []graph.Edge) {
	if cap(b) == 0 {
		return
	}
	atomic.AddInt64(&s.outstanding, -1)
	s.mu.Lock()
	s.free = append(s.free, b[:0])
	s.mu.Unlock()
}

// Rank implements Sink.
func (s *streamSink) Rank(rk *Rank) (RankSink, error) {
	return &streamRankSink{s: s, rk: rk, rank: rk.ID(), tile: -1, buf: s.getBuf()}, nil
}

// streamRankSink buffers one rank's edges between flushes, flushing at
// tile boundaries so every delivered batch carries a single tile. Under
// supervision the same instance spans run attempts: edges accepted (and
// checkpoint-counted) by a failed attempt stay in buf and reach the
// consumer on a later flush, which is what keeps a recovered stream
// exactly-once end to end.
type streamRankSink struct {
	s    *streamSink
	rk   *Rank // for the attempt context — flushes must not outlive teardown
	rank int
	tile int // tile the buffered edges belong to; -1 when empty
	buf  []graph.Edge
}

// Store is unreachable: the engine always prefers the StoreTileBlock
// fast path. It refuses rather than guessing a tile frame.
func (t *streamRankSink) Store(graph.Edge) error {
	return fmt.Errorf("dist: stream sink requires tile-framed block delivery")
}

// StoreTileBlock implements TileBlockStorer: a tile switch flushes the
// previous tile's remainder, then the batch is copied into the rank
// buffer in chunks that honor the flush threshold. Edges count as stored
// once buffered — buffered edges survive attempts (see the type comment),
// so this matches the fenced sinks' exactly-once accounting.
func (t *streamRankSink) StoreTileBlock(tile int, edges []graph.Edge) (int64, error) {
	if tile != t.tile {
		if err := t.flush(); err != nil {
			return 0, err
		}
		t.tile = tile
	}
	var stored int64
	for len(edges) > 0 {
		if room := t.s.batch - len(t.buf); room > 0 {
			n := len(edges)
			if n > room {
				n = room
			}
			t.buf = append(t.buf, edges[:n]...)
			stored += int64(n)
			edges = edges[n:]
		}
		if len(t.buf) >= t.s.batch {
			if err := t.flush(); err != nil {
				return stored, err
			}
		}
	}
	return stored, nil
}

// flush hands the current batch to the consumer, accounting it as routed
// traffic only on successful delivery — a batch dropped by cancellation
// is never counted. It runs on the rank goroutine during an attempt, so
// it also watches the attempt context: when another rank crashes, the
// consumer is waiting on that rank's channel in tile order and may never
// drain this one — the attempt teardown must be allowed to unblock the
// send, leaving the buffered edges in buf for the next attempt.
func (t *streamRankSink) flush() error {
	if len(t.buf) == 0 {
		return nil
	}
	select {
	case t.s.chans[t.rank] <- streamBatch{tile: t.tile, edges: t.buf}:
		atomic.AddInt64(&t.s.messages, 1)
		atomic.AddInt64(&t.s.routed, int64(len(t.buf)))
		atomic.AddInt64(&t.s.bytes, int64(len(t.buf))*edgeWireBytes)
		t.buf = t.s.getBuf()
		return nil
	case <-t.s.ctx.Done():
		return context.Cause(t.s.ctx)
	case <-t.rk.c.ctx.Done():
		return context.Cause(t.rk.c.ctx)
	}
}

// Close parks the final partial batch as the rank's residual instead of
// flushing: Close runs either at attempt teardown (where the consumer may
// not be draining this channel) or from the supervisor's sequential
// finalize loop (whose rank order can cross the consumer's global tile
// order), and a blocking send from either would deadlock. The consumer
// picks residuals up after the channels close. Either way the sink leaves
// no buffer checked out — the outstanding counter must return to zero on
// every path.
func (t *streamRankSink) Close() error {
	if len(t.buf) > 0 && t.tile >= 0 {
		t.s.setResidual(t.rank, streamBatch{tile: t.tile, edges: t.buf})
	} else if t.buf != nil {
		t.s.recycle(t.buf)
	}
	t.buf = nil
	close(t.s.done[t.rank]) // no more sends on this rank's channel
	return nil
}
