package dist

import (
	"context"
	"sync"
	"sync/atomic"

	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// The sinks below are supervision-agnostic: under Recovery the engine
// wraps each RankSink in a fencing layer (supervisor.go) that suppresses
// replayed duplicates and defers Close to the end of the whole run, so a
// sink observes exactly the same Store/Close sequence a fault-free run
// would deliver. "Durable" in the simulation means the Go object
// survives the simulated rank's death — which it does, because a crashed
// rank is a returned goroutine, not a lost process image.

// MemorySink collects each rank's owned edges in an in-memory slice —
// the Result-producing sink behind Generate1D/Generate2D.
type MemorySink struct {
	PerRank [][]graph.Edge
}

// NewMemorySink returns a sink for r ranks.
func NewMemorySink(r int) *MemorySink {
	return &MemorySink{PerRank: make([][]graph.Edge, r)}
}

// Rank implements Sink.
func (s *MemorySink) Rank(rk *Rank) (RankSink, error) {
	return &memRankSink{s: s, id: rk.ID()}, nil
}

type memRankSink struct {
	s   *MemorySink
	id  int
	buf []graph.Edge
}

func (m *memRankSink) Store(e graph.Edge) error {
	m.buf = append(m.buf, e)
	return nil
}

func (m *memRankSink) Close() error {
	m.s.PerRank[m.id] = m.buf
	return nil
}

// CountSink discards edges and counts them — the pure expansion
// throughput sink behind CountOnly (experiment E2). Use with a nil
// Owner so no routing traffic is simulated.
type CountSink struct {
	total int64
}

// Total returns the edges counted across all ranks.
func (s *CountSink) Total() int64 { return atomic.LoadInt64(&s.total) }

// Rank implements Sink.
func (s *CountSink) Rank(rk *Rank) (RankSink, error) {
	return &countRankSink{s: s}, nil
}

type countRankSink struct {
	s *CountSink
	n int64
}

func (c *countRankSink) Store(graph.Edge) error {
	c.n++
	return nil
}

func (c *countRankSink) Close() error {
	atomic.AddInt64(&c.s.total, c.n)
	return nil
}

// StoreSink streams each rank's owned edges to its own shard of an
// on-disk store (one store.ShardWriter per rank), keeping per-rank memory
// O(batch) regardless of |E_C|. Route with an owner map that matches the
// shard layout (OwnerBySource, the store's BySource) so readers can
// address shards; Finalize writes the manifest once the run succeeds.
type StoreSink struct {
	Dir    string
	counts []int64
}

// NewStoreSink returns a sink writing r shards under dir.
func NewStoreSink(dir string, r int) *StoreSink {
	return &StoreSink{Dir: dir, counts: make([]int64, r)}
}

// Rank implements Sink; shard creation errors abort the run on all ranks.
func (s *StoreSink) Rank(rk *Rank) (RankSink, error) {
	sw, err := store.NewShardWriter(s.Dir, rk.ID())
	if err != nil {
		return nil, err
	}
	return &storeRankSink{s: s, id: rk.ID(), sw: sw}, nil
}

// Finalize writes the manifest for a completed run and opens the store.
func (s *StoreSink) Finalize(nC int64) (*store.Store, error) {
	if err := store.WriteManifest(s.Dir, nC, s.counts); err != nil {
		return nil, err
	}
	return store.Open(s.Dir)
}

type storeRankSink struct {
	s  *StoreSink
	id int
	sw *store.ShardWriter
}

func (t *storeRankSink) Store(e graph.Edge) error {
	return t.sw.Append(e.U, e.V)
}

func (t *storeRankSink) Close() error {
	t.s.counts[t.id] = t.sw.Count()
	return t.sw.Close()
}

// streamSink fans every rank's edges into one buffered channel drained by
// a single consumer — the serving sink behind Stream. Batches are pooled:
// the consumer returns each batch after use via recycle.
type streamSink struct {
	ctx   context.Context
	ch    chan []graph.Edge
	batch int
	pool  sync.Pool

	messages int64
	routed   int64
	bytes    int64
}

func newStreamSink(ctx context.Context, batch, depth int) *streamSink {
	return &streamSink{ctx: ctx, ch: make(chan []graph.Edge, depth), batch: batch}
}

func (s *streamSink) getBuf() []graph.Edge {
	if v := s.pool.Get(); v != nil {
		return v.([]graph.Edge)[:0]
	}
	return make([]graph.Edge, 0, s.batch)
}

// recycle returns a consumed batch to the pool.
func (s *streamSink) recycle(b []graph.Edge) {
	if cap(b) > 0 {
		s.pool.Put(b[:0]) //nolint:staticcheck // slice headers are cheap to box
	}
}

// Rank implements Sink.
func (s *streamSink) Rank(rk *Rank) (RankSink, error) {
	return &streamRankSink{s: s, buf: s.getBuf()}, nil
}

// streamRankSink buffers one rank's edges between flushes. Under
// supervision the same instance spans run attempts: edges accepted (and
// checkpoint-counted) by a failed attempt stay in buf and reach the
// consumer on a later flush, which is what keeps a recovered stream
// exactly-once end to end.
type streamRankSink struct {
	s   *streamSink
	buf []graph.Edge
}

func (t *streamRankSink) Store(e graph.Edge) error {
	t.buf = append(t.buf, e)
	if len(t.buf) >= t.s.batch {
		return t.flush()
	}
	return nil
}

// flush hands the current batch to the consumer, accounting it as routed
// traffic only on successful delivery — a batch dropped by cancellation
// is never counted.
func (t *streamRankSink) flush() error {
	if len(t.buf) == 0 {
		return nil
	}
	select {
	case t.s.ch <- t.buf:
		atomic.AddInt64(&t.s.messages, 1)
		atomic.AddInt64(&t.s.routed, int64(len(t.buf)))
		atomic.AddInt64(&t.s.bytes, int64(len(t.buf))*edgeWireBytes)
		t.buf = t.s.getBuf()
		return nil
	case <-t.s.ctx.Done():
		return context.Cause(t.s.ctx)
	}
}

// Close performs the final flush; its result is propagated so a batch
// dropped at teardown is reported rather than silently counted. On the
// abort path the undelivered batch is recycled instead of leaking.
func (t *streamRankSink) Close() error {
	err := t.flush()
	if err != nil && t.buf != nil {
		t.s.recycle(t.buf)
		t.buf = nil
	}
	return err
}
