package dist

// Stream index: the expansion order of a plan is deterministic (tiles in
// ascending ID order, each tile's arcs in the kernel's fixed order), and
// every tile's arc count is closed-form ground truth (Tile.Arcs), so the
// concatenated stream has an index — the tile and in-tile offset of
// global edge i are computable in O(tiles), without generating edges
// 0..i-1. Plan.Locate seeks to an offset; Plan.Slice derives a plan whose
// tiles are windowed (Tile.Skip/Take) to generate exactly a contiguous
// range of the stream. Under 1D partitioning the stream order equals the
// serial chain enumeration (core.Chain.Arcs); under 2D it is the
// deterministic tile-grid order — either way the layout plus rank count
// fully determine the byte stream, which is what makes resume exact.

import (
	"fmt"
	"sort"

	"kronlab/internal/core"
)

// orderedTiles returns every tile of the plan in ascending ID order —
// the canonical stream order. Per-rank tile lists are already
// ID-increasing (Plan1D: one tile per rank, ID = rank; Plan2D:
// round-robin assignment appends in increasing tile ID), so the global
// sort is a merge of sorted lists; sort.Slice handles the general case.
func (p Plan) orderedTiles() []Tile {
	var out []Tile
	for _, ts := range p.Tiles {
		out = append(out, ts...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalArcs returns the number of arcs the plan generates — the sum of
// the (windowed) tile counts, overflow-checked.
func (p Plan) TotalArcs() (int64, error) {
	var total int64
	for _, ts := range p.Tiles {
		for _, t := range ts {
			n := t.Arcs()
			if total+n < total {
				return 0, fmt.Errorf("dist: plan arc count overflows int64")
			}
			total += n
		}
	}
	return total, nil
}

// Locate seeks to a global stream offset in the plan: the ID of the tile
// containing edge offset and the edge's position within that tile's
// (windowed) expansion stream. O(tiles) — no edge is generated. An
// offset equal to the stream length returns the last tile with within
// == its arc count (the exhausted position); anything outside [0,total]
// is an error.
func (p Plan) Locate(offset int64) (tileID int, within int64, err error) {
	if offset < 0 {
		return 0, 0, fmt.Errorf("dist: seek offset %d is negative", offset)
	}
	tiles := p.orderedTiles()
	rem := offset
	for i, t := range tiles {
		n := t.Arcs()
		if rem < n || (rem == n && i == len(tiles)-1) {
			return t.ID, rem, nil
		}
		rem -= n
	}
	return 0, 0, fmt.Errorf("dist: seek offset %d past stream end", offset)
}

// Slice returns a derived plan generating exactly limit arcs of the
// stream starting at offset (limit < 0 = through the end): tiles fully
// before the window are dropped, the boundary tiles are windowed via
// Tile.Skip/Take, and rank count and tile IDs are preserved — so the
// sliced plan runs on the same rank/process layout, and every process
// of a cluster deriving the same (offset, limit) derives the same plan
// (PlanHash covers the windows). Slicing an already-sliced plan
// composes the windows.
func (p Plan) Slice(offset, limit int64) (Plan, error) {
	total, err := p.TotalArcs()
	if err != nil {
		return Plan{}, err
	}
	if offset < 0 || offset > total {
		return Plan{}, fmt.Errorf("dist: slice offset %d out of range [0,%d]", offset, total)
	}
	if limit < 0 || limit > total-offset {
		limit = total - offset
	}
	out := Plan{R: p.R, NC: p.NC, Dims: p.Dims, Tiles: make([][]Tile, p.R)}
	// Walk tiles in stream order to window them, but emit each kept tile
	// into its owning rank's list (stream order within a rank follows
	// from the per-rank lists being ID-increasing).
	owner := make(map[int]int, len(p.Tiles))
	for rk, ts := range p.Tiles {
		for _, t := range ts {
			owner[t.ID] = rk
		}
	}
	skip, take := offset, limit
	for _, t := range p.orderedTiles() {
		n := t.Arcs()
		if skip >= n {
			skip -= n
			continue
		}
		if take == 0 {
			break
		}
		w := t // window the copy; the source plan stays intact
		w.Skip += skip
		keep := n - skip
		skip = 0
		if keep > take {
			keep = take
		}
		w.Take = keep
		take -= keep
		rk := owner[w.ID]
		out.Tiles[rk] = append(out.Tiles[rk], w)
	}
	return out, nil
}

// sliceForChain builds the windowed plan for a chain stream: plan the
// chain at the given layout, then slice [offset, offset+limit).
func sliceForChain(ch *core.Chain, r int, twoD bool, offset, limit int64) (Plan, error) {
	plan, err := planForChain(ch, r, twoD)
	if err != nil {
		return Plan{}, err
	}
	if offset == 0 && limit < 0 {
		return plan, nil
	}
	return plan.Slice(offset, limit)
}
