package dist

import (
	"context"
	"fmt"
	"sync/atomic"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// Tile is one unit of expansion work: a slice of A-arcs crossed with a
// B-factor (the whole of B under 1D partitioning, a B-part under 2D).
type Tile struct {
	AArcs []graph.Edge
	B     *graph.Graph
}

// Plan is the decomposition stage of the engine: the per-rank tile lists
// produced by 1D (Sec. III) or 2D (Rem. 1) partitioning. Plans are inert
// data — building one does not start a cluster — so they can be inspected,
// rebalanced or logged before running.
type Plan struct {
	R     int
	NC    int64    // product vertex count n_A·n_B
	Tiles [][]Tile // Tiles[rank] is rank's expansion work
}

// Plan1D builds the Sec. III decomposition: B is replicated on every rank
// and the arcs of A are evenly distributed, so rank ρ expands the single
// tile A_ρ ⊗ B. Per-rank replicated storage is O(|E_A|/R + |E_B|).
func Plan1D(a, b *graph.Graph, r int) (Plan, error) {
	if r < 1 {
		return Plan{}, fmt.Errorf("dist: plan needs ≥ 1 rank, got %d", r)
	}
	parts := PartitionArcs(a.ArcList(), r)
	tiles := make([][]Tile, r)
	for rk := 0; rk < r; rk++ {
		tiles[rk] = []Tile{{AArcs: parts[rk], B: b}}
	}
	return Plan{R: r, NC: a.NumVertices() * b.NumVertices(), Tiles: tiles}, nil
}

// Plan2D builds the Rem. 1 decomposition: A is split into R½ parts and B
// into Q parts (see Grid2D), and the R½·Q tiles A_i ⊗ B_j are assigned
// round-robin to ranks. Per-rank replicated storage drops to
// O(|E_A|/R½ + |E_B|/Q), enabling weak scaling to O(|E_C|) processors.
func Plan2D(a, b *graph.Graph, r int) (Plan, error) {
	if r < 1 {
		return Plan{}, fmt.Errorf("dist: plan needs ≥ 1 rank, got %d", r)
	}
	grid := NewGrid2D(r)
	aParts := PartitionArcs(a.ArcList(), grid.RHalf)
	bParts := PartitionArcs(b.ArcList(), grid.Q)
	// Pre-build each B-part as a Graph so expansion can stream against
	// CSR; vertex count is preserved so γ indices stay global.
	bGraphs := make([]*graph.Graph, grid.Q)
	for j := range bGraphs {
		bg, err := graph.New(b.NumVertices(), bParts[j])
		if err != nil {
			return Plan{}, fmt.Errorf("dist: building B part %d: %w", j, err)
		}
		bGraphs[j] = bg
	}
	tiles := make([][]Tile, r)
	for t := 0; t < grid.Tiles(); t++ {
		ai, bj := grid.TileOf(t)
		tiles[t%r] = append(tiles[t%r], Tile{AArcs: aParts[ai], B: bGraphs[bj]})
	}
	return Plan{R: r, NC: a.NumVertices() * b.NumVertices(), Tiles: tiles}, nil
}

// planFor dispatches between the two decompositions.
func planFor(a, b *graph.Graph, r int, twoD bool) (Plan, error) {
	if twoD {
		return Plan2D(a, b, r)
	}
	return Plan1D(a, b, r)
}

// RankSink consumes the edges owned by one rank. Store and Close are
// called from that rank's goroutines only; a Sink that aggregates across
// ranks must synchronize in Close (or use atomics).
type RankSink interface {
	// Store accepts one owned edge. An error aborts the whole run.
	Store(e graph.Edge) error
	// Close flushes the rank's output; it is called exactly once, after
	// the rank's exchange (or direct expansion) has finished — even when
	// the run is being cancelled.
	Close() error
}

// Sink fans a generation run out to per-rank consumers. Rank is called
// once per rank, inside the rank's goroutine, before expansion starts; an
// error aborts the run on every rank (no deadlock: the other ranks'
// exchanges are cancelled rather than left waiting for EOF markers).
type Sink interface {
	Rank(rk *Rank) (RankSink, error)
}

// Config describes one engine run.
type Config struct {
	Plan Plan
	// Owner routes each generated edge to the rank that stores it, over
	// the batched all-to-all Exchange. A nil Owner skips the Route stage
	// entirely: every edge goes straight to the generating rank's sink
	// with zero communication (count-only and streaming runs).
	Owner OwnerFunc
	Sink  Sink
	// Faults, when non-nil, arms the run's cluster with an injected
	// fault schedule (see fault.go) — chaos testing of the teardown and
	// redelivery paths. Nil injects nothing.
	Faults *FaultPlan
}

// Run executes the Plan→Expand→Route→Sink engine: every rank expands its
// planned tiles (the package's sole call into core's streaming product),
// routes each edge through Config.Owner over the Exchange (or locally
// when Owner is nil), and hands owned edges to its RankSink.
//
// Cancelling ctx tears the run down mid-exchange on every rank; the first
// real error (a failed sink, or the cancellation cause) is returned.
// The returned Stats carry the transport counters plus per-rank
// generated/stored counts and the deepest inbox backlog observed.
func Run(ctx context.Context, cfg Config) (Stats, error) {
	p := cfg.Plan
	c, err := NewCluster(p.R)
	if err != nil {
		return Stats{}, err
	}
	if cfg.Faults != nil {
		c.InjectFaults(*cfg.Faults)
	}
	perGen := make([]int64, p.R)
	perStored := make([]int64, p.R)
	runErr := c.RunContext(ctx, func(rk *Rank) error {
		if err := rk.crashAt(FaultBeforeSinkSetup); err != nil {
			return err
		}
		rs, err := cfg.Sink.Rank(rk)
		if err != nil {
			return fmt.Errorf("dist: rank %d sink: %w", rk.ID(), err)
		}
		var generated, stored int64
		var sinkErr, crashErr error
		// store hands one owned edge to the rank's sink. Under routing it
		// runs on the exchange's receiver goroutine; sinkErr is read back
		// only after Exchange returns (happens-before via its done
		// channel), and the cancel tears down the producing ranks.
		store := func(e graph.Edge) {
			if sinkErr != nil {
				return
			}
			if err := rs.Store(e); err != nil {
				sinkErr = err
				rk.c.cancel(err)
				return
			}
			stored++
		}
		// expand streams this rank's tiles — the engine's Expand stage.
		// A scheduled mid-expansion crash cancels the run immediately:
		// a dead process stops sending, it does not flush EOF markers.
		expand := func(yield func(e graph.Edge) bool) {
			for _, t := range p.Tiles[rk.ID()] {
				ok := true
				core.StreamProductArcs(t.AArcs, t.B, func(u, v int64) bool {
					if err := rk.crashAt(FaultMidExpansion); err != nil {
						crashErr = err
						rk.c.cancel(err)
						ok = false
						return false
					}
					generated++
					ok = yield(graph.Edge{U: u, V: v})
					return ok
				})
				if !ok {
					return
				}
			}
		}
		var xErr error
		if cfg.Owner != nil {
			owner := cfg.Owner
			xErr = rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
				expand(func(e graph.Edge) bool {
					return emit(owner(e.U, e.V, p.R), e)
				})
			}, store)
		} else {
			expand(func(e graph.Edge) bool {
				store(e)
				if sinkErr != nil {
					return false
				}
				// Unrouted sinks may never error (count-only); poll the
				// run context once per batch so cancellation still lands.
				if generated%batchSize == 0 {
					select {
					case <-rk.c.ctx.Done():
						xErr = context.Cause(rk.c.ctx)
						return false
					default:
					}
				}
				return true
			})
		}
		atomic.AddInt64(&rk.c.stats.EdgesGenerated, generated)
		perGen[rk.ID()] = generated
		perStored[rk.ID()] = stored
		closeErr := rs.Close()
		switch {
		case sinkErr != nil:
			return sinkErr
		case crashErr != nil:
			return crashErr
		case xErr != nil:
			return xErr
		case closeErr != nil:
			return closeErr
		}
		// Teardown collective: every rank must report a balanced run
		// before the engine declares success — an edge batch that went
		// missing without an error would otherwise be a silent partial
		// result. The reduce doubles as the in-collective fault
		// injection point, and because a rank that died earlier never
		// arrives, it completes for the survivors only through
		// BarrierContext's cancellation awareness.
		delta, rerr := rk.AllReduceSumContext(generated - stored)
		if rerr != nil {
			return rerr
		}
		if delta != 0 {
			return fmt.Errorf("dist: run imbalance: %d generated edges unaccounted for across ranks", delta)
		}
		return nil
	})
	st := c.Stats()
	st.PerRankGenerated = perGen
	st.PerRankStored = perStored
	return st, runErr
}
