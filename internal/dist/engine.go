package dist

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// Phase label contexts for runtime/pprof goroutine labels: profiles of an
// engine run attribute samples to the kernel stage (phase=expand|route|
// store) that was executing. Built once — SetGoroutineLabels per block is
// a pointer swap, so labeling costs nothing measurable on the hot path.
var (
	expandLabels = pprof.WithLabels(context.Background(), pprof.Labels("phase", "expand"))
	routeLabels  = pprof.WithLabels(context.Background(), pprof.Labels("phase", "route"))
	storeLabels  = pprof.WithLabels(context.Background(), pprof.Labels("phase", "store"))
	// sinkFlushLabels marks the async store sink's writer goroutines
	// (sinks.go), so disk-flush time shows up as its own phase instead of
	// blending into the expanding ranks' store samples.
	sinkFlushLabels = pprof.WithLabels(context.Background(), pprof.Labels("phase", "sink-flush"))
)

// Tile is one unit of expansion work: a slice of head-factor arcs
// crossed with the chain's tail factors (the whole tail under 1D
// partitioning; under 2D the first tail factor is a part and the rest
// ride whole). For a two-factor product the tail is just [B]. ID is the
// tile's plan-wide identity: it is stable across run attempts and across
// reassignment to another rank, which is what checkpoints and the
// exactly-once sink fence key on — at any chain depth, because the tail
// expansion order is the deterministic lexicographic odometer order of
// core.TailCursor.
type Tile struct {
	ID    int
	AArcs []graph.Edge
	Tail  []*graph.Graph // replicated tail factors A₂⊗…⊗Aₖ (len ≥ 1)

	// Skip and Take window the tile's deterministic expansion stream:
	// the kernel starts Skip arcs into the tile (locating the position in
	// O(1), never generating the skipped prefix) and stops after Take
	// arcs (0 = no cap). Plan.Slice sets them to serve a contiguous
	// range of the global stream; whole-stream plans leave them zero.
	Skip, Take int64
}

// FullArcs returns the number of product arcs the unwindowed tile
// expands to — deterministic ground truth (|A_i|·Π|E_{T_d}|).
func (t Tile) FullArcs() int64 {
	n := int64(len(t.AArcs))
	for _, g := range t.Tail {
		n *= g.NumArcs()
	}
	return n
}

// Arcs returns the number of product arcs the tile generates — FullArcs
// less the Skip prefix, capped by Take. Checkpoints compare stored
// totals against this count, so a windowed tile commits when its window
// (not the whole tile) has been delivered.
func (t Tile) Arcs() int64 {
	n := t.FullArcs() - t.Skip
	if n < 0 {
		n = 0
	}
	if t.Take > 0 && n > t.Take {
		n = t.Take
	}
	return n
}

// Plan is the decomposition stage of the engine: the per-rank tile lists
// produced by 1D (Sec. III) or 2D (Rem. 1) partitioning of a factor
// chain. Plans are inert data — building one does not start a cluster —
// so they can be inspected, rebalanced or logged before running. Tile
// IDs are unique within a plan.
type Plan struct {
	R     int
	NC    int64    // product vertex count Π n_d, overflow-checked at build
	Dims  []int64  // per-factor vertex counts (head first)
	Tiles [][]Tile // Tiles[rank] is rank's expansion work
}

// identityTail is the 1-vertex full-self-loop graph I₁: A ⊗ I₁ = A, so a
// single-factor chain plans as head × [I₁] and every tile keeps a
// non-empty tail.
func identityTail() *graph.Graph {
	g, err := graph.New(1, []graph.Edge{{U: 0, V: 0}})
	if err != nil {
		panic(err)
	}
	return g
}

// PlanChain1D builds the Sec. III decomposition of a factor chain: the
// tail A₂⊗…⊗Aₖ is replicated on every rank and the arcs of the head A₁
// are evenly distributed, so rank ρ expands the single tile
// A₁,ρ ⊗ (A₂⊗…⊗Aₖ). Per-rank replicated storage is O(|E_A₁|/R + Σ|E_T|)
// — the tail is held as factors, never materialized.
func PlanChain1D(ch *core.Chain, r int) (Plan, error) {
	if r < 1 {
		return Plan{}, fmt.Errorf("dist: plan needs ≥ 1 rank, got %d", r)
	}
	head := ch.Head()
	tail := ch.Tail()
	if len(tail) == 0 {
		tail = []*graph.Graph{identityTail()}
	}
	// ArcSlice shares the factor's cached flat arc list: tiles only read
	// their head-arc windows, so no per-plan copy is needed.
	parts := PartitionArcs(head.ArcSlice(), r)
	tiles := make([][]Tile, r)
	for rk := 0; rk < r; rk++ {
		tiles[rk] = []Tile{{ID: rk, AArcs: parts[rk], Tail: tail}}
	}
	return Plan{R: r, NC: ch.NumVertices(), Dims: ch.Index().Dims(), Tiles: tiles}, nil
}

// PlanChain2D builds the Rem. 1 decomposition of a chain: the head is
// split into R½ parts and the first tail factor into Q parts (see
// Grid2D); deeper tail factors are replicated whole — they are already
// the smallest replicated state, and splitting them would multiply tile
// counts without reducing the O(|E_A₁|/R½ + |E_A₂|/Q + Σ|E_rest|)
// per-rank storage term that matters. The R½·Q tiles are assigned
// round-robin to ranks.
func PlanChain2D(ch *core.Chain, r int) (Plan, error) {
	if r < 1 {
		return Plan{}, fmt.Errorf("dist: plan needs ≥ 1 rank, got %d", r)
	}
	head := ch.Head()
	tail := ch.Tail()
	if len(tail) == 0 {
		tail = []*graph.Graph{identityTail()}
	}
	b, rest := tail[0], tail[1:]
	grid := NewGrid2D(r)
	aParts := PartitionArcs(head.ArcSlice(), grid.RHalf)
	bParts := PartitionArcs(b.ArcSlice(), grid.Q)
	// Pre-build each B-part as a Graph so expansion can stream against
	// CSR; vertex count is preserved so the mixed-radix indices stay
	// global. Each part's tile tail shares one [part, rest...] slice.
	tails := make([][]*graph.Graph, grid.Q)
	for j := range tails {
		bg, err := graph.New(b.NumVertices(), bParts[j])
		if err != nil {
			return Plan{}, fmt.Errorf("dist: building tail part %d: %w", j, err)
		}
		tails[j] = append([]*graph.Graph{bg}, rest...)
	}
	tiles := make([][]Tile, r)
	for t := 0; t < grid.Tiles(); t++ {
		ai, bj := grid.TileOf(t)
		tiles[t%r] = append(tiles[t%r], Tile{ID: t, AArcs: aParts[ai], Tail: tails[bj]})
	}
	return Plan{R: r, NC: ch.NumVertices(), Dims: ch.Index().Dims(), Tiles: tiles}, nil
}

// Plan1D is the k = 2 special case of PlanChain1D, preserved as the
// two-factor API of Sec. III.
func Plan1D(a, b *graph.Graph, r int) (Plan, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return Plan{}, err
	}
	return PlanChain1D(ch, r)
}

// Plan2D is the k = 2 special case of PlanChain2D (Rem. 1).
func Plan2D(a, b *graph.Graph, r int) (Plan, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return Plan{}, err
	}
	return PlanChain2D(ch, r)
}

// planForChain dispatches between the two decompositions.
func planForChain(ch *core.Chain, r int, twoD bool) (Plan, error) {
	if twoD {
		return PlanChain2D(ch, r)
	}
	return PlanChain1D(ch, r)
}

// planFor is planForChain for a two-factor product.
func planFor(a, b *graph.Graph, r int, twoD bool) (Plan, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return Plan{}, err
	}
	return planForChain(ch, r, twoD)
}

// RankSink consumes the edges owned by one rank. Store and Close are
// called from that rank's goroutines only; a Sink that aggregates across
// ranks must synchronize in Close (or use atomics). Under supervision
// (Recovery.MaxRetries > 0) a rank's RankSink lives across run attempts —
// Store may be called from a later attempt's goroutines (attempt
// boundaries give happens-before) and Close still happens exactly once,
// after the final attempt.
type RankSink interface {
	// Store accepts one owned edge. An error aborts the whole run.
	Store(e graph.Edge) error
	// Close flushes the rank's output; it is called exactly once, after
	// the rank's exchange (or direct expansion) has finished — even when
	// the run is being cancelled.
	Close() error
}

// Sink fans a generation run out to per-rank consumers. Rank is called
// once per rank, inside the rank's goroutine, before expansion starts; an
// error aborts the run on every rank (no deadlock: the other ranks'
// exchanges are cancelled rather than left waiting for EOF markers).
type Sink interface {
	Rank(rk *Rank) (RankSink, error)
}

// Recovery tunes the run supervisor (supervisor.go). The zero value
// disables supervision entirely: the run fails loudly on the first fault,
// the pre-recovery behavior.
type Recovery struct {
	// MaxRetries bounds re-run attempts after a recoverable fault (a
	// rank crash or a lost message). The run makes at most 1+MaxRetries
	// attempts; exhausting the budget surfaces the last injected fault
	// loudly, exactly like an unsupervised run.
	MaxRetries int
	// Backoff is the base delay before a retry; attempt n waits
	// Backoff·2^(n-1), capped at one second. Zero retries immediately.
	Backoff time.Duration
	// Reassign moves a crashed rank's unfinished tiles to the surviving
	// ranks instead of respawning the same assignment — recovery
	// completes even when a rank is permanently broken (at the cost of
	// load skew). Without it the crashed rank is respawned with its
	// original tiles.
	Reassign bool
}

// Config describes one engine run.
type Config struct {
	Plan Plan
	// Owner routes each generated edge to the rank that stores it, over
	// the batched all-to-all exchange. It is bound once per attempt
	// (Owner.Bind(R)), so r-dependent owner parameters resolve at plan
	// time, not per edge. A nil Owner skips the Route stage entirely:
	// every edge goes straight to the generating rank's sink with zero
	// communication (count-only and streaming runs).
	Owner Owner
	Sink  Sink
	// BatchSize is the per-destination edge count a routed exchange
	// buffers before flushing a message (and the cadence of cancellation
	// polls during fault-armed expansion). ≤ 0 selects DefaultBatchSize
	// (1024, the benchmarked default). Correct for any value ≥ 1; per-rank
	// staging memory is O(R·BatchSize).
	BatchSize int
	// Faults, when non-nil, arms the run's cluster with an injected
	// fault schedule (see fault.go) — chaos testing of the teardown,
	// redelivery and recovery paths. Nil injects nothing.
	Faults *FaultPlan
	// Recovery (embedded: MaxRetries, Backoff, Reassign) arms the run
	// supervisor; see the Recovery type.
	Recovery
}

// attemptSink is the engine-internal per-rank sink used by one run
// attempt: a tile-aware block store plus an end-of-attempt hook. The
// plain adapter forwards to a RankSink and closes it when the attempt
// ends; the supervisor's fenced sink suppresses replayed duplicate
// prefixes and keeps the underlying RankSink open across attempts.
type attemptSink interface {
	// storeBlock accepts one tile-framed batch of owned edges. stored
	// reports how many of them were appended to the underlying sink
	// (fewer: a replayed prefix was suppressed, or a store failed partway
	// — checkpoint accounting needs the exact count either way). The
	// block aliases an engine buffer recycled after the call returns.
	storeBlock(tile int, edges []graph.Edge) (stored int64, err error)
	// endAttempt runs after the rank's exchange (or direct expansion)
	// has finished — even on teardown. It returns the number of
	// duplicates suppressed this attempt (the balance collective's
	// adjustment) and any close/flush error.
	endAttempt() (skipped int64, err error)
}

// plainAttemptSink adapts a RankSink for an unsupervised single-attempt
// run: every edge stores, and the attempt's end closes the sink.
type plainAttemptSink struct {
	rs  RankSink
	bs  BlockStorer     // non-nil when rs implements the block fast path
	tbs TileBlockStorer // preferred over bs when rs needs the tile framing
}

func newPlainAttemptSink(rs RankSink) plainAttemptSink {
	bs, _ := rs.(BlockStorer)
	tbs, _ := rs.(TileBlockStorer)
	return plainAttemptSink{rs: rs, bs: bs, tbs: tbs}
}

func (p plainAttemptSink) storeBlock(tile int, edges []graph.Edge) (int64, error) {
	if p.tbs != nil {
		return p.tbs.StoreTileBlock(tile, edges)
	}
	if p.bs != nil {
		return p.bs.StoreBlock(edges)
	}
	for i, e := range edges {
		if err := p.rs.Store(e); err != nil {
			return int64(i), err
		}
	}
	return int64(len(edges)), nil
}

func (p plainAttemptSink) endAttempt() (int64, error) { return 0, p.rs.Close() }

// Run executes the Plan→Expand→Route→Sink engine: every rank expands its
// planned tiles through the blocked kernel (core.ExpandBlock, one A-arc
// against all of B per block), routes whole blocks through Config.Owner
// over the batched exchange (or locally when Owner is nil), and hands
// owned edge batches to its RankSink — via BlockStorer when the sink
// implements it, per-edge Store otherwise.
//
// Cancelling ctx tears the run down mid-exchange on every rank; the first
// real error (a failed sink, or the cancellation cause) is returned.
// The returned Stats carry the transport counters plus per-rank
// generated/stored counts and the deepest inbox backlog observed.
//
// With Recovery.MaxRetries > 0 the run is supervised: a rank crash or
// lost message triggers a bounded-backoff replay from tile-level
// checkpoints instead of a loud failure, with epoch-fenced sinks keeping
// delivery exactly-once (see supervisor.go).
func Run(ctx context.Context, cfg Config) (Stats, error) {
	if cfg.MaxRetries > 0 {
		return supervise(ctx, cfg)
	}
	p := cfg.Plan
	c, err := NewCluster(p.R)
	if err != nil {
		return Stats{}, err
	}
	if cfg.Faults != nil {
		c.InjectFaults(*cfg.Faults)
	}
	perGen := make([]int64, p.R)
	perStored := make([]int64, p.R)
	runErr := runAttempt(ctx, c, cfg.Owner, p.Tiles, func(rk *Rank) (attemptSink, error) {
		rs, err := cfg.Sink.Rank(rk)
		if err != nil {
			return nil, err
		}
		return newPlainAttemptSink(rs), nil
	}, perGen, perStored, cfg.batchSize())
	st := c.Stats()
	st.PerRankGenerated = perGen
	st.PerRankStored = perStored
	return st, runErr
}

// batchSize resolves Config.BatchSize against the default.
func (cfg Config) batchSize() int {
	if cfg.BatchSize > 0 {
		return cfg.BatchSize
	}
	return DefaultBatchSize
}

// runAttempt executes one attempt of the engine on an already-built
// cluster: every rank expands the tiles assigned to it through the
// blocked kernel (core.ExpandBlock into a reused scratch block), routes
// whole blocks via the plan-bound owner over the epoch-fenced exchange
// (or stores them locally when owner is nil), and hands owned batches to
// the attemptSink sinkFor returns for it. perGen/perStored receive this
// attempt's per-rank counters.
//
// Expansion order is exactly the reference order — head arcs in tile
// order, each crossed with the tail's composed arcs in lexicographic CSR
// order (StreamProductArcs for k = 2, core.Chain.Arcs generally) — and
// blocks are partitioned into per-destination batches in encounter
// order, so the per-(tile, destination) substream is byte-identical
// across attempts. That determinism is what tile checkpoints and
// prefix-dedup recovery key on; the blocked kernel changes batching
// granularity, never order.
func runAttempt(ctx context.Context, c *Cluster, owner Owner, tiles [][]Tile, sinkFor func(*Rank) (attemptSink, error), perGen, perStored []int64, batch int) error {
	var bound BoundOwnerFunc
	if owner != nil {
		bound = owner.Bind(c.r)
	}
	return c.RunContext(ctx, func(rk *Rank) error {
		if err := rk.crashAt(FaultBeforeSinkSetup); err != nil {
			return err
		}
		as, err := sinkFor(rk)
		if err != nil {
			return fmt.Errorf("dist: rank %d sink: %w", rk.ID(), err)
		}
		var generated, stored int64
		var sinkErr, crashErr, xErr error
		// Fault-armed runs take the per-edge reference cadence below so
		// crash countdowns keep edge granularity; clean runs never branch
		// into it.
		faulty := c.faults != nil
		// Scratch block reused across every A-arc of every tile. A-arcs
		// expand against B in chunks of ≤ batch arcs, so the scratch is
		// the exchange's buffer size class and checks out of the same
		// freelist — expansion allocates nothing in steady state and
		// per-rank memory stays O(|E_A|/R + |E_B| + R·batch) even when
		// this rank's B factor is large.
		scratch := c.getBuf(rk.ID(), batch)
		// poll checks for run teardown: sends only notice a torn-down run
		// when a flush fails, and the buffered inboxes can absorb a lot
		// before one does — poll once per block (or per batch of edges on
		// the fault-armed path) so cancellation stops expansion promptly.
		poll := func() bool {
			select {
			case <-rk.c.ctx.Done():
				xErr = context.Cause(rk.c.ctx)
				return true
			default:
				return false
			}
		}
		// perEdge drives a block through edge-granular fault windows — the
		// cadence the chaos schedules count mid-expansion crash hits in. A
		// scheduled crash cancels the run immediately: a dead process
		// stops sending, it does not flush EOF markers. f receives
		// one-edge sub-blocks so both paths share the block plumbing.
		perEdge := func(tile int, block []graph.Edge, f func(tile int, es []graph.Edge) bool) bool {
			for i := range block {
				if err := rk.crashAt(FaultMidExpansion); err != nil {
					crashErr = err
					rk.c.cancel(err)
					return false
				}
				generated++
				if !f(tile, block[i:i+1:i+1]) {
					return false
				}
				if generated%int64(batch) == 0 && poll() {
					return false
				}
			}
			return true
		}
		// expandTiles is the Expand stage: each A-arc of each tile expands
		// against the tile's tail factors into the scratch block, and
		// handleBlock routes or stores it. handleBlock returns false to
		// stop early (teardown, sink failure, or an injected crash).
		//
		// A single-factor tail (the k = 2 product) takes the direct
		// ArcSlice path — byte-for-byte the pre-chain kernel, so the
		// two-factor allocation and throughput budgets are untouched.
		// Deeper tails are folded lazily through a core.TailCursor: the
		// composed tail arcs are generated block-by-block in lexicographic
		// CSR order (what a materialized tail's ArcSlice order would be),
		// never materialized, and the inner loop stays the kernel's two
		// adds + append.
		expandTiles := func(handleBlock func(tile int, block []graph.Edge) bool) {
			for _, t := range tiles[rk.ID()] {
				// rem is the tile's windowed arc budget; Skip locates the
				// start position arithmetically (A-arc index + in-tail
				// offset) so the skipped prefix is never generated — the
				// seek cost is independent of Skip's magnitude.
				rem := t.Arcs()
				if rem == 0 {
					continue
				}
				if len(t.Tail) == 1 {
					b := t.Tail[0]
					bArcs := b.ArcSlice()
					nB := b.NumVertices()
					nTail := int64(len(bArcs))
					aStart := int(t.Skip / nTail)
					tailPos := int(t.Skip % nTail)
					for ai := aStart; ai < len(t.AArcs) && rem > 0; ai++ {
						aArc := t.AArcs[ai]
						lo := 0
						if ai == aStart {
							lo = tailPos
						}
						for ; lo < len(bArcs) && rem > 0; lo += batch {
							hi := lo + batch
							if hi > len(bArcs) {
								hi = len(bArcs)
							}
							pprof.SetGoroutineLabels(expandLabels)
							// Chunks walk bArcs in CSR order, so the
							// reference expansion order is preserved exactly.
							block := core.ExpandBlock(aArc, bArcs[lo:hi], nB, scratch)
							if int64(len(block)) > rem {
								block = block[:rem]
							}
							rem -= int64(len(block))
							scratch = block[:0]
							if !handleBlock(t.ID, block) {
								return
							}
						}
					}
					continue
				}
				cur := core.NewTailCursor(t.Tail)
				nT := cur.NumVertices()
				nTail := cur.Total()
				aStart := int(t.Skip / nTail)
				tailPos := t.Skip % nTail
				for ai := aStart; ai < len(t.AArcs) && rem > 0; ai++ {
					aArc := t.AArcs[ai]
					if ai == aStart {
						cur.SeekTo(tailPos)
					} else {
						cur.Reset()
					}
					uBase, vBase := aArc.U*nT, aArc.V*nT
					for rem > 0 {
						pprof.SetGoroutineLabels(expandLabels)
						max := batch
						if rem < int64(max) {
							max = int(rem)
						}
						block := cur.ExpandNext(uBase, vBase, scratch, max)
						if len(block) == 0 {
							break
						}
						rem -= int64(len(block))
						scratch = block[:0]
						if !handleBlock(t.ID, block) {
							return
						}
					}
				}
			}
		}
		// deliver hands one owned batch to the rank's sink. Under routing
		// it runs inline from the exchange's progress engine — same
		// goroutine as expansion — and the cancel tears down the other
		// ranks' producers.
		deliver := func(tile int, edges []graph.Edge) bool {
			if sinkErr != nil {
				return false
			}
			n, err := as.storeBlock(tile, edges)
			stored += n
			if err != nil {
				sinkErr = err
				rk.c.cancel(err)
				return false
			}
			return true
		}
		if owner != nil {
			xErr = rk.exchangeBlocks(batch, func(s *shipper) {
				stageOne := func(tile int, es []graph.Edge) bool {
					e := es[0]
					return s.stage(bound(e.U, e.V), tile, e)
				}
				expandTiles(func(tile int, block []graph.Edge) bool {
					pprof.SetGoroutineLabels(routeLabels)
					if faulty {
						return perEdge(tile, block, stageOne)
					}
					if !s.route(tile, block, bound) {
						return false
					}
					generated += int64(len(block))
					return !poll()
				})
			}, func(tile int, edges []graph.Edge) {
				// Delivery runs inline on this goroutine (progress on
				// send), so the store label is swapped in per batch; the
				// next block's expand/route labels swap it back out.
				pprof.SetGoroutineLabels(storeLabels)
				deliver(tile, edges)
			})
		} else {
			expandTiles(func(tile int, block []graph.Edge) bool {
				pprof.SetGoroutineLabels(storeLabels)
				if faulty {
					return perEdge(tile, block, deliver)
				}
				generated += int64(len(block))
				if !deliver(tile, block) {
					return false
				}
				return !poll()
			})
		}
		c.putBuf(scratch)
		atomic.AddInt64(&rk.c.stats.EdgesGenerated, generated)
		perGen[rk.ID()] = generated
		perStored[rk.ID()] = stored
		skipped, closeErr := as.endAttempt()
		switch {
		case sinkErr != nil:
			return sinkErr
		case crashErr != nil:
			return crashErr
		case xErr != nil:
			return xErr
		case closeErr != nil:
			return closeErr
		}
		// Teardown collective: every rank must report a balanced run
		// before the engine declares success — an edge batch that went
		// missing without an error would otherwise be a silent partial
		// result. Replayed duplicates a fenced sink suppressed count as
		// accounted for. The reduce doubles as the in-collective fault
		// injection point, and because a rank that died earlier never
		// arrives, it completes for the survivors only through
		// BarrierContext's cancellation awareness.
		delta, rerr := rk.AllReduceSumContext(generated - stored - skipped)
		if rerr != nil {
			return rerr
		}
		if delta != 0 {
			return fmt.Errorf("dist: run imbalance: %d generated edges unaccounted for across ranks", delta)
		}
		return nil
	})
}
