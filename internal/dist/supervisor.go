package dist

// Run supervision: bounded-retry recovery for engine runs. The paper's
// expansion is embarrassingly parallel over factor tile pairs, so a
// crashed rank's work is safely re-executable — the detect-and-reexecute
// posture MapReduce-lineage systems take for idempotent partitioned work.
// The supervisor makes that concrete for the simulated cluster:
//
//   - Checkpoints are tile-level and deterministic: for each plan tile
//     the supervisor tracks how many of its edges each rank's sink has
//     durably stored. A tile is committed once the stored total reaches
//     its known ground-truth arc count (Tile.Arcs — computable up front,
//     in the paper's spirit of properties known before generation).
//   - On a recoverable fault (RankCrashError, MessageLostError) the
//     failed attempt's partial progress is harvested, the faulty rank is
//     respawned — or, with Recovery.Reassign, stripped of its unfinished
//     tiles, which are moved round-robin to the survivors — and the
//     uncommitted tiles are replayed after an exponential backoff.
//   - Replay is exactly-once by deterministic prefix deduplication: a
//     tile's expansion order is fixed, owner routing is pure, and
//     per-sender channel delivery is FIFO, so the substream of a tile
//     arriving at one rank is identical across attempts and the stored
//     count is always a prefix of it. Each attempt the fenced sinks
//     suppress exactly that prefix, and the epoch fence in exchangeBlocks
//     drops any straggler batch from a previous attempt outright.
//   - Exhausting Recovery.MaxRetries degrades to the unsupervised loud
//     failure: the last injected fault is returned unchanged.

import (
	"context"
	"errors"
	"time"

	"kronlab/internal/dist/transport"
	"kronlab/internal/graph"
)

// maxBackoff caps the supervisor's exponential backoff so a large retry
// budget cannot stall a run for minutes.
const maxBackoff = time.Second

// tileState is the supervisor's checkpoint record for one plan tile.
type tileState struct {
	tile  Tile
	owner int // rank currently assigned to expand the tile
	// stored[d] counts the tile's edges durably stored by rank d's sink —
	// the destination rank under owner routing, the producing rank on
	// unrouted runs. Written only between attempts (harvest).
	stored    []int64
	committed bool
}

func (ts *tileState) storedTotal() int64 {
	var t int64
	for _, n := range ts.stored {
		t += n
	}
	return t
}

// fencedRankSink is the supervised attemptSink of one rank: it suppresses
// the already-stored prefix of each tile's substream and keeps the
// underlying RankSink open across attempts (Close happens exactly once,
// in finalize). All per-attempt state is touched by one goroutine at a
// time — the rank's receiver (routed) or body (unrouted) within an
// attempt, the supervisor between attempts, with happens-before through
// RunContext's spawn and join.
type fencedRankSink struct {
	rank  int
	under RankSink        // created lazily once, reused across attempts
	bs    BlockStorer     // under's block fast path, when it has one
	tbs   TileBlockStorer // preferred over bs when under needs tile framing

	skip    map[int]int64 // remaining prefix to suppress this attempt, per tile
	stored  map[int]int64 // edges newly stored this attempt, per tile
	skipped int64         // duplicates suppressed this attempt

	// Hot-path cache of the current tile's counters; batches arrive
	// tile-framed, so tile switches are rare and the per-batch cost is an
	// int compare instead of two map lookups.
	curTile int
	curSkip int64
	curNew  int64
}

func (f *fencedRankSink) setTile(tile int) {
	f.flushCur()
	f.curTile = tile
	f.curSkip = f.skip[tile]
	f.curNew = 0
}

func (f *fencedRankSink) flushCur() {
	if f.curTile >= 0 {
		f.skip[f.curTile] = f.curSkip
		f.stored[f.curTile] += f.curNew
	}
	f.curTile = -1
}

// storeBlock suppresses the tile substream's replayed prefix — batching
// preserves substream order, so the prefix is simply the leading
// min(curSkip, len) edges of however many batches it spans — and stores
// the remainder through the block fast path when the sink has one.
func (f *fencedRankSink) storeBlock(tile int, edges []graph.Edge) (int64, error) {
	if tile != f.curTile {
		f.setTile(tile)
	}
	if f.curSkip > 0 {
		n := int64(len(edges))
		if n > f.curSkip {
			n = f.curSkip
		}
		f.curSkip -= n
		f.skipped += n
		edges = edges[n:]
		if len(edges) == 0 {
			return 0, nil
		}
	}
	var stored int64
	var err error
	if f.tbs != nil {
		stored, err = f.tbs.StoreTileBlock(tile, edges)
	} else if f.bs != nil {
		stored, err = f.bs.StoreBlock(edges)
	} else {
		for _, e := range edges {
			if err = f.under.Store(e); err != nil {
				break
			}
			stored++
		}
	}
	f.curNew += stored
	return stored, err
}

func (f *fencedRankSink) endAttempt() (int64, error) {
	f.flushCur()
	return f.skipped, nil // underlying sink stays open across attempts
}

// supervision is the cross-attempt state of one supervised run.
type supervision struct {
	cfg    Config
	routed bool
	tiles  []*tileState
	byID   map[int]*tileState
	sinks  []*fencedRankSink
}

func newSupervision(cfg Config) *supervision {
	p := cfg.Plan
	s := &supervision{cfg: cfg, routed: cfg.Owner != nil, byID: make(map[int]*tileState)}
	for rk, ts := range p.Tiles {
		for _, t := range ts {
			st := &tileState{tile: t, owner: rk, stored: make([]int64, p.R)}
			s.tiles = append(s.tiles, st)
			s.byID[t.ID] = st
		}
	}
	s.sinks = make([]*fencedRankSink, p.R)
	for i := range s.sinks {
		s.sinks[i] = &fencedRankSink{rank: i, curTile: -1}
	}
	return s
}

// sinkFor is the engine's per-rank sink factory under supervision: the
// underlying RankSink is created on the rank's first surviving attempt
// and then reused, so a replay appends to the same durable output.
func (s *supervision) sinkFor(rk *Rank) (attemptSink, error) {
	f := s.sinks[rk.ID()]
	if f.under == nil {
		rs, err := s.cfg.Sink.Rank(rk)
		if err != nil {
			return nil, err
		}
		f.under = rs
		f.bs, _ = rs.(BlockStorer)
		f.tbs, _ = rs.(TileBlockStorer)
	}
	return f, nil
}

// beginAttempt installs each rank's skip prefixes from the checkpoint
// table. Routed runs skip per (tile, destination); unrouted runs skip the
// tile's full stored total at its current producer (previously stored
// edges may live in another rank's sink after reassignment — verification
// merges per-rank outputs, so placement does not matter, only the count).
func (s *supervision) beginAttempt() {
	for _, f := range s.sinks {
		f.skip = make(map[int]int64, len(s.byID))
		f.stored = make(map[int]int64, len(s.byID))
		f.skipped = 0
		f.curTile = -1
	}
	for _, ts := range s.tiles {
		if ts.committed {
			continue
		}
		if s.routed {
			for d, n := range ts.stored {
				if n > 0 {
					s.sinks[d].skip[ts.tile.ID] = n
				}
			}
		} else if n := ts.storedTotal(); n > 0 {
			s.sinks[ts.owner].skip[ts.tile.ID] = n
		}
	}
}

// harvest folds the finished attempt's per-tile stored counts into the
// checkpoint table, marks tiles whose stored total reached their ground
// truth as committed, and returns the duplicates suppressed this attempt.
// Partial progress from a failed attempt counts: those edges reached the
// sinks before the teardown.
func (s *supervision) harvest() int64 {
	var skipped int64
	for _, f := range s.sinks {
		f.flushCur() // no-op after endAttempt; covers ranks that died early
		for id, n := range f.stored {
			if n > 0 {
				s.byID[id].stored[f.rank] += n
			}
		}
		skipped += f.skipped
	}
	for _, ts := range s.tiles {
		if !ts.committed && ts.storedTotal() == ts.tile.Arcs() {
			ts.committed = true
		}
	}
	return skipped
}

// nextAssignment builds the replay's per-rank tile lists: committed tiles
// drop out, and with Recovery.Reassign the blamed rank's remaining tiles
// move round-robin to the other ranks (counted in the return value).
func (s *supervision) nextAssignment(blame int) ([][]Tile, int64) {
	r := s.cfg.Plan.R
	assigned := make([][]Tile, r)
	var moved int64
	rr := 0
	for _, ts := range s.tiles {
		if ts.committed {
			continue
		}
		if s.cfg.Reassign && ts.owner == blame && r > 1 {
			if rr == blame {
				rr = (rr + 1) % r
			}
			ts.owner = rr
			rr = (rr + 1) % r
			moved++
		}
		assigned[ts.owner] = append(assigned[ts.owner], ts.tile)
	}
	return assigned, moved
}

// finalize closes every underlying RankSink exactly once, after the last
// attempt. Ranks whose sink was never created (every attempt died before
// setup) have nothing to close.
func (s *supervision) finalize() error {
	var first error
	for _, f := range s.sinks {
		if f.under == nil {
			continue
		}
		if err := f.under.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// classify splits run errors into recoverable faults with a blamed rank
// (a crashed rank, the sender of a lost message, or a rank the failure
// detector declared partitioned) and everything else. A PeerError is
// recoverable because Reset heals the simulated partition — the replay
// runs on an intact network, while the blamed rank's uncommitted tiles
// are replayed exactly-once like any other fault's.
func classify(err error) (int, bool) {
	var rc *RankCrashError
	if errors.As(err, &rc) {
		return rc.Rank, true
	}
	var ml *MessageLostError
	if errors.As(err, &ml) {
		return ml.From, true
	}
	var pe *transport.PeerError
	if errors.As(err, &pe) {
		return pe.Proc, true
	}
	return 0, false
}

// sleepBackoff waits base·2^(retry-1), capped at maxBackoff, before the
// given retry (1-based); cancelling ctx cuts the wait short and returns
// its cause.
func sleepBackoff(ctx context.Context, base time.Duration, retry int) error {
	if err := context.Cause(ctx); err != nil {
		return err
	}
	if base <= 0 {
		return nil
	}
	d := base << (retry - 1)
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// supervise is Run's supervised form: one cluster is reused across up to
// 1+MaxRetries attempts (Reset between them), with the attempt number as
// the transport epoch. Stats aggregate across attempts — generated and
// traffic counters include replayed work, stored counts stay exactly-once
// — and the recovery counters (RetriesPerRank, TilesReassigned,
// RecoveredRuns, DuplicatesSkipped) record what the supervisor did.
func supervise(ctx context.Context, cfg Config) (Stats, error) {
	p := cfg.Plan
	c, err := NewCluster(p.R)
	if err != nil {
		return Stats{}, err
	}
	if cfg.Faults != nil {
		c.InjectFaults(*cfg.Faults)
	}
	s := newSupervision(cfg)
	agg := Stats{
		PerRankGenerated: make([]int64, p.R),
		PerRankStored:    make([]int64, p.R),
		RetriesPerRank:   make([]int64, p.R),
	}
	assigned := p.Tiles
	var runErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.Reset()
			// Written strictly between attempts: Reset joined the previous
			// attempt's goroutines, RunContext's spawns order this write
			// before the next attempt's reads in send/exchangeTiles.
			c.epoch = int64(attempt)
		}
		s.beginAttempt()
		perGen := make([]int64, p.R)
		perStored := make([]int64, p.R)
		runErr = runAttempt(ctx, c, cfg.Owner, assigned, s.sinkFor, perGen, perStored, cfg.batchSize())
		st := c.Stats()
		agg.EdgesGenerated += st.EdgesGenerated
		agg.EdgesRouted += st.EdgesRouted
		agg.BytesSent += st.BytesSent
		agg.Messages += st.Messages
		agg.StaleBatches += st.StaleBatches
		if st.MaxInboxDepth > agg.MaxInboxDepth {
			agg.MaxInboxDepth = st.MaxInboxDepth
		}
		for i := range perGen {
			agg.PerRankGenerated[i] += perGen[i]
			agg.PerRankStored[i] += perStored[i]
		}
		agg.DuplicatesSkipped += s.harvest()
		if runErr == nil {
			if attempt > 0 {
				agg.RecoveredRuns = 1
			}
			break
		}
		blame, recoverable := classify(runErr)
		if !recoverable || attempt >= cfg.MaxRetries {
			break // budget exhausted (or unrecoverable): stay loud
		}
		agg.RetriesPerRank[blame]++
		var moved int64
		assigned, moved = s.nextAssignment(blame)
		agg.TilesReassigned += moved
		if err := sleepBackoff(ctx, cfg.Backoff, attempt+1); err != nil {
			runErr = err
			break
		}
	}
	if cerr := s.finalize(); runErr == nil && cerr != nil {
		runErr = cerr
	}
	// Drain any stale inbox residue the last attempt left behind, then
	// snapshot the leak probe: a supervised run must hand back every
	// pooled buffer no matter how many attempts it took.
	c.Reset()
	agg.OutstandingBufs = c.outstandingBufs()
	return agg, runErr
}
