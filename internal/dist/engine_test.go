package dist

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

func TestPlanValidation(t *testing.T) {
	a := gen.Ring(4)
	if _, err := Plan1D(a, a, 0); err == nil {
		t.Error("Plan1D with 0 ranks should error")
	}
	if _, err := Plan2D(a, a, -3); err == nil {
		t.Error("Plan2D with negative ranks should error")
	}
	p, err := Plan2D(a, a, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.R != 6 || p.NC != 16 {
		t.Errorf("Plan2D(6) = R=%d NC=%d", p.R, p.NC)
	}
	// Every tile of the grid is assigned to exactly one rank.
	var tiles int
	for _, ts := range p.Tiles {
		tiles += len(ts)
	}
	if grid := NewGrid2D(6); tiles != grid.Tiles() {
		t.Errorf("plan assigns %d tiles, grid has %d", tiles, grid.Tiles())
	}
}

// randFactor builds a random factor graph: directed or undirected arcs,
// optionally saturated with full self loops.
func randFactor(n int64, seed int64, undirected, loops bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var arcs []graph.Edge
	for i := 0; i < 3*int(n); i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if u == v {
			continue
		}
		arcs = append(arcs, graph.Edge{U: u, V: v})
		if undirected {
			arcs = append(arcs, graph.Edge{U: v, V: u})
		}
	}
	g, err := graph.New(n, arcs)
	if err != nil {
		panic(err)
	}
	if loops {
		g = g.WithFullSelfLoops()
	}
	return g
}

// The cross-path equivalence property: for random small factors
// (directed/undirected, with/without self loops) every generation path —
// Generate1D, Generate2D, Stream, Generate1DToStore, Generate2DToStore —
// yields the identical edge set of A ⊗ B, under each OwnerFunc where the
// path takes one. Run under -race in CI.
func TestPropertyAllPathsEquivalent(t *testing.T) {
	f := func(seedA, seedB int64, rRaw uint8, undirected, loops bool) bool {
		r := int(rRaw%9) + 1
		a := randFactor(5, seedA, undirected, loops)
		b := randFactor(4, seedB, !undirected, loops)
		want, err := core.Product(a, b)
		if err != nil {
			return false
		}
		nC := a.NumVertices() * b.NumVertices()
		owners := []OwnerFunc{OwnerBySource, OwnerByEdge, OwnerByBlock(nC)}
		for _, owner := range owners {
			for _, twoD := range []bool{false, true} {
				res, err := generate(a, b, r, owner, twoD)
				if err != nil {
					return false
				}
				g, err := res.Collect()
				if err != nil || !g.Equal(want) {
					return false
				}
			}
		}
		var streamed []graph.Edge
		if _, err := Stream(context.Background(), a, b, r, true, 32, Recovery{}, func(batch []graph.Edge) error {
			streamed = append(streamed, batch...)
			return nil
		}); err != nil {
			return false
		}
		gs, err := graph.New(nC, streamed)
		if err != nil || !gs.Equal(want) {
			return false
		}
		for _, twoD := range []bool{false, true} {
			st, _, err := generateToStore(a, b, r, t.TempDir(), twoD)
			if err != nil {
				return false
			}
			g, err := st.LoadGraph()
			if err != nil || !g.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Generate2DToStore must stream exactly the serial product to disk, with
// each shard holding only its rank's owned edges — the path that "falls
// out for free" from the unified engine.
func TestGenerate2DToStore(t *testing.T) {
	a := gen.PrefAttach(10, 2, 21)
	b := gen.ER(8, 0.5, 22)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 3, 6} {
		dir := t.TempDir()
		st, stats, err := Generate2DToStore(a, b, r, dir)
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		if st.TotalEdges() != want.NumArcs() || stats.EdgesGenerated != want.NumArcs() {
			t.Fatalf("R=%d: stored %d, generated %d, want %d",
				r, st.TotalEdges(), stats.EdgesGenerated, want.NumArcs())
		}
		got, err := st.LoadGraph()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("R=%d: on-disk 2D product differs from serial", r)
		}
		for i := 0; i < r; i++ {
			if err := st.IterShard(i, func(u, v int64) bool {
				if OwnerBySource(u, v, r) != i {
					t.Fatalf("R=%d: edge (%d,%d) in wrong shard %d", r, u, v, i)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// failSink fails setup on one rank while the others proceed into the
// exchange — the regression shape for the pre-Exchange deadlock: before
// engine cancellation, the healthy ranks would block forever waiting for
// the failed rank's EOF markers.
type failSink struct {
	inner  Sink
	failID int
	err    error
}

func (s *failSink) Rank(rk *Rank) (RankSink, error) {
	if rk.ID() == s.failID {
		return nil, s.err
	}
	return s.inner.Rank(rk)
}

func TestRankSinkFailureDoesNotDeadlock(t *testing.T) {
	a := gen.ER(20, 0.5, 31)
	b := gen.ER(20, 0.5, 32)
	plan, err := Plan1D(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink setup boom")
	sink := &failSink{inner: NewMemorySink(4), failID: 1, err: boom}
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), Config{Plan: plan, Owner: OwnerBySource, Sink: sink})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("want sink setup error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster deadlocked after rank sink setup failure")
	}
}

// The user-visible variant: an unwritable store directory (a path under a
// regular file) must propagate the error from every ToStore wrapper
// instead of hanging the cluster.
func TestGenerateToStoreBadDirPropagates(t *testing.T) {
	a := gen.ER(10, 0.5, 33)
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(file, "store")
	done := make(chan error, 2)
	go func() {
		_, _, err := Generate1DToStore(a, a, 3, bad)
		done <- err
	}()
	go func() {
		_, _, err := Generate2DToStore(a, a, 3, bad)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("unwritable store dir must error")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("ToStore deadlocked on unwritable store dir")
		}
	}
}

// cancelSink cancels the run context mid-generation from inside Store —
// exercising end-to-end teardown of a routed exchange.
type cancelSink struct {
	cancel context.CancelFunc
	after  int64
	seen   int64
}

func (s *cancelSink) Rank(rk *Rank) (RankSink, error) { return s, nil }
func (s *cancelSink) Store(graph.Edge) error {
	if s.seen++; s.seen == s.after {
		s.cancel()
	}
	return nil
}
func (s *cancelSink) Close() error { return nil }

func TestRunCancellationTearsDownExchange(t *testing.T) {
	a := gen.ER(40, 0.5, 41)
	b := gen.ER(40, 0.5, 42)
	plan, err := Plan1D(a, b, 1) // single rank: sink is single-goroutine
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelSink{cancel: cancel, after: 500}
	done := make(chan struct{})
	var st Stats
	var runErr error
	go func() {
		defer close(done)
		st, runErr = Run(ctx, Config{Plan: plan, Owner: OwnerBySource, Sink: sink})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not tear down")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", runErr)
	}
	if total := a.NumArcs() * b.NumArcs(); st.EdgesGenerated >= total {
		t.Errorf("cancellation did not stop expansion: generated %d of %d", st.EdgesGenerated, total)
	}
}

func TestPerRankStatsAndInboxDepth(t *testing.T) {
	a := gen.ER(12, 0.5, 51)
	b := gen.ER(12, 0.5, 52)
	const r = 4
	res, err := Generate1D(a, b, r, OwnerBySource)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if len(st.PerRankGenerated) != r || len(st.PerRankStored) != r {
		t.Fatalf("per-rank slices missing: %+v", st)
	}
	var gen, stored int64
	for rk := 0; rk < r; rk++ {
		gen += st.PerRankGenerated[rk]
		stored += st.PerRankStored[rk]
		if int64(len(res.PerRank[rk])) != st.PerRankStored[rk] {
			t.Errorf("rank %d: stored %d edges but counter says %d",
				rk, len(res.PerRank[rk]), st.PerRankStored[rk])
		}
	}
	if gen != st.EdgesGenerated {
		t.Errorf("per-rank generated sums to %d, total %d", gen, st.EdgesGenerated)
	}
	if stored != res.TotalStored() {
		t.Errorf("per-rank stored sums to %d, total %d", stored, res.TotalStored())
	}
	if st.MaxGenerated() < st.EdgesGenerated/r {
		t.Errorf("MaxGenerated %d below ideal %d", st.MaxGenerated(), st.EdgesGenerated/r)
	}
	if st.MaxInboxDepth < 0 {
		t.Errorf("negative MaxInboxDepth %d", st.MaxInboxDepth)
	}
	// CountOnly populates per-rank counters through the same engine.
	plan, err := Plan2D(a, b, 6)
	if err != nil {
		t.Fatal(err)
	}
	cs := &CountSink{}
	cst, err := Run(context.Background(), Config{Plan: plan, Sink: cs})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Total() != a.NumArcs()*b.NumArcs() {
		t.Errorf("count sink total %d, want %d", cs.Total(), a.NumArcs()*b.NumArcs())
	}
	var perStored int64
	for _, n := range cst.PerRankStored {
		perStored += n
	}
	if perStored != cs.Total() {
		t.Errorf("per-rank stored %d != counted %d", perStored, cs.Total())
	}
}
