package dist

import (
	"math/rand"
	"sync"
	"testing"

	"kronlab/internal/graph"
)

// TestClusterBufPoolStress hammers the sharded package freelist with the
// engine's three concurrent access patterns at once: the single
// get/recycle path (Cluster.getBuf/putBuf), the shipper's bulk
// refill/spill (poolFill/poolSpill through a rank-local spare stack),
// and cross-shard stealing — more simulated ranks than poolShards, so
// home shards collide and the steal-on-miss walk runs hot. Meant for
// -race (the cluster CI job runs it there): an unguarded shard mutation
// or a double-handed-out buffer shows up as a race or as payload
// corruption. Afterwards every checked-out buffer must be back
// (OutstandingBufs exactly zero).
func TestClusterBufPoolStress(t *testing.T) {
	const (
		ranks = 4 * poolShards // force home-shard collisions
		iters = 500
	)
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan string, ranks)
	for rk := 0; rk < ranks; rk++ {
		wg.Add(1)
		go func(rk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + rk)))
			shard := shardFor(rk)
			stamp := int64(rk) << 32

			// Buffers checked out via getBuf, each stamped with an
			// owner-unique sentinel so a buffer handed to two goroutines
			// at once is caught as corruption even outside a race window.
			var held [][]graph.Edge
			// The shipper economy: shard → spare (poolFill, unaccounted),
			// spare → shard (poolSpill). Kept disjoint from held, exactly
			// as the exchange keeps them.
			var spare [][]graph.Edge

			for i := 0; i < iters; i++ {
				switch op := rng.Intn(10); {
				case op < 4: // check out and stamp
					b := c.getBuf(rk, DefaultBatchSize)
					if len(b) != 0 {
						fail <- "getBuf returned a non-reset buffer"
						return
					}
					b = append(b, graph.Edge{U: stamp + int64(i), V: stamp - int64(i)})
					held = append(held, b)
				case op < 8: // verify stamp and recycle
					if len(held) == 0 {
						continue
					}
					j := rng.Intn(len(held))
					b := held[j]
					if b[0].U>>32 != int64(rk) || b[0].U+b[0].V != 2*stamp {
						fail <- "recycled buffer carries another owner's stamp — pool handed one buffer out twice"
						return
					}
					held[j] = held[len(held)-1]
					held = held[:len(held)-1]
					c.putBuf(b)
				case op < 9: // bulk refill, the shipper's spare-stack fill
					if len(spare) < 8 {
						spare = append(spare, poolFill(shard, nil, 8)...)
					}
				default: // bulk spill back to the home shard
					if len(spare) > 0 {
						poolSpill(shard, spare)
						spare = nil
					}
				}
			}
			for _, b := range held {
				c.putBuf(b)
			}
			poolSpill(shard, spare)
		}(rk)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	if out := c.Stats().OutstandingBufs; out != 0 {
		t.Fatalf("pool stress leaked %d checked-out buffers", out)
	}
}
