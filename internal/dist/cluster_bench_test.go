package dist

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/graph"
)

// Raw exchange throughput of the TCP transport over loopback, by cluster
// size — the cluster-mode counterpart of BenchmarkExchangeThroughput.
// Two processes' worth of ranks live in this one test process, split
// across two real tcp.Nodes, so every cross-proc batch pays the full
// wire cost (encode, frame, kernel socket round-trip, decode). Each
// iteration rebuilds the mesh at a fresh epoch, exactly like one cluster
// run attempt; mesh dial cost on loopback is microseconds against the
// megabytes exchanged, so edges/s reflects the data path.
func BenchmarkTCPExchangeThroughput(b *testing.B) {
	const nprocs = 2
	const hash = 0x6b726f6e // arbitrary; both nodes must just agree
	for _, r := range []int{2, 8} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			nodes := make([]*tcp.Node, nprocs)
			addrs := make([]string, nprocs)
			for i := range nodes {
				n, err := tcp.NewNode("127.0.0.1:0", i, hash)
				if err != nil {
					b.Fatal(err)
				}
				defer n.Close()
				nodes[i] = n
				addrs[i] = n.Addr()
			}
			procs := transport.SplitRanks(addrs, r)
			ctx := context.Background()

			const per = 20_000
			b.SetBytes(int64(r) * per * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				epoch := int64(i)
				errs := make([]error, nprocs)
				var wg sync.WaitGroup
				for p := 0; p < nprocs; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						pool := &latePool{}
						tr, err := tcp.Connect(ctx, nodes[p], tcp.Config{
							Procs: procs, Self: p, PlanHash: hash, Pool: pool,
						}, epoch)
						if err != nil {
							errs[p] = err
							return
						}
						c, err := NewClusterOn(tr)
						if err != nil {
							tr.Close()
							errs[p] = err
							return
						}
						pool.c.Store(c)
						c.epoch = epoch
						err = c.Run(func(rk *Rank) error {
							var got int
							rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
								for j := 0; j < per; j++ {
									emit(j%r, graph.Edge{U: int64(j), V: int64(rk.ID())})
								}
							}, func(e graph.Edge) {
								got++
							})
							return nil
						})
						c.Reset()
						if cerr := tr.Close(); err == nil {
							err = cerr
						}
						errs[p] = err
					}(p)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(r)*per*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}
