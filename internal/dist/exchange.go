package dist

import (
	"context"
	"sync/atomic"

	"kronlab/internal/graph"
)

// batchSize is the number of edges buffered per destination before a
// message is flushed, mirroring the aggregation HPC generators use to
// amortize message overhead.
const batchSize = 1024

// Exchange runs one all-to-all edge exchange on this rank. produce is
// called with an emit function that routes a single edge to a destination
// rank; handle receives every edge delivered to this rank (from any rank,
// including itself). Exchange returns when this rank has produced all its
// edges and received the EOF markers of every rank, or with the
// cancellation cause when the run is torn down mid-exchange (another rank
// failed, or RunContext's context was cancelled).
//
// emit reports whether the edge was accepted; it returns false once the
// exchange is cancelled, after which produce should stop generating.
// Batch buffers are pooled: a delivered Message's Edges slice is recycled
// after handle has seen its edges, so handle must copy any edge it
// retains (graph.Edge values are copied by normal assignment/append).
func (rk *Rank) Exchange(produce func(emit func(to int, e graph.Edge) bool), handle func(e graph.Edge)) error {
	return rk.exchangeTiles(func(emit func(to, tile int, e graph.Edge) bool) {
		produce(func(to int, e graph.Edge) bool { return emit(to, 0, e) })
	}, func(_ int, e graph.Edge) { handle(e) })
}

// exchangeTiles is Exchange with tile framing and epoch fencing — the
// transport the supervised engine runs on. Every batch carries the plan
// tile its edges came from (emit's tile argument; buffers flush at tile
// boundaries so batches never mix tiles) and the run epoch stamped by
// send. The receiver drops whole batches from another epoch — residue a
// previous attempt could in principle leave behind — counting them in
// Stats.StaleBatches, so a recovering run can never double-apply or
// misattribute a stale batch. Within one attempt all epochs match and the
// fence is a single comparison per batch.
//
// Internally the receiver runs concurrently with the producer so inbox
// buffers drain while expansion is still running — the same overlap of
// generation and communication an asynchronous MPI implementation gets.
func (rk *Rank) exchangeTiles(produce func(emit func(to, tile int, e graph.Edge) bool), handle func(tile int, e graph.Edge)) error {
	c := rk.c
	epoch := c.epoch
	done := make(chan struct{})
	go func() {
		defer close(done)
		eofs := 0
		for eofs < c.r {
			select {
			case m := <-c.inboxes[rk.id]:
				if m.Epoch != epoch {
					// Epoch fence: a batch from another attempt is dropped
					// whole (its EOF marker included — the attempt it ends
					// is already torn down).
					atomic.AddInt64(&c.stats.StaleBatches, 1)
					c.putBuf(m.Edges)
					continue
				}
				for _, e := range m.Edges {
					handle(m.Tile, e)
				}
				if m.EOF {
					eofs++
				}
				c.putBuf(m.Edges)
			case <-c.ctx.Done():
				return
			}
		}
	}()

	aborted := false
	buf := make([][]graph.Edge, c.r)
	cur := make([]int, c.r) // tile of the staged batch, per destination
	flush := func(to int, eof bool) bool {
		if len(buf[to]) == 0 && !eof {
			return true
		}
		if !rk.send(to, Message{From: rk.id, Tile: cur[to], Edges: buf[to], EOF: eof}) {
			return false
		}
		buf[to] = nil
		return true
	}
	emit := func(to, tile int, e graph.Edge) bool {
		if aborted {
			return false
		}
		if buf[to] != nil && cur[to] != tile {
			// Tile boundary: ship the previous tile's batch so a batch
			// never mixes tiles. Boundaries are rare (tiles are large),
			// so the partial flush costs nothing on the hot path.
			if !flush(to, false) {
				aborted = true
				return false
			}
		}
		if buf[to] == nil {
			buf[to] = c.getBuf()
			cur[to] = tile
		}
		buf[to] = append(buf[to], e)
		if len(buf[to]) >= batchSize && !flush(to, false) {
			aborted = true
			return false
		}
		return true
	}
	produce(emit)
	for to := 0; to < c.r && !aborted; to++ {
		if !flush(to, true) {
			aborted = true
		}
	}
	<-done
	if aborted || c.ctx.Err() != nil {
		// Nothing will deliver the staged batches now; recycle them or
		// they leak from the pool on every aborted run.
		for to := range buf {
			if buf[to] != nil {
				c.putBuf(buf[to])
				buf[to] = nil
			}
		}
		return context.Cause(c.ctx)
	}
	return nil
}

// OwnerFunc maps a product edge to the rank that stores it. The paper
// leaves the storage mapping open ("some mapping scheme"); the functions
// below provide the common choices.
type OwnerFunc func(u, v int64, r int) int

// OwnerBySource assigns edges to ranks by a multiplicative hash of the
// source endpoint — 1D vertex partitioning of the product graph.
func OwnerBySource(u, _ int64, r int) int {
	h := uint64(u) * 0x9e3779b97f4a7c15
	return int(h % uint64(r))
}

// OwnerByEdge hashes both endpoints, spreading even a single hub vertex's
// edges across ranks (2D-style edge partitioning).
func OwnerByEdge(u, v int64, r int) int {
	h := uint64(u)*0x9e3779b97f4a7c15 ^ (uint64(v)*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9)
	return int(h % uint64(r))
}

// blockParams caches the per-rank block size for one cluster size r, so
// the hot per-edge closure does a single division instead of recomputing
// ⌈nC/r⌉ on every call.
type blockParams struct {
	r   int
	per int64
}

// OwnerByBlock assigns contiguous source-vertex blocks of size nC/r —
// the layout a CSR-partitioned distributed graph store would use.
func OwnerByBlock(nC int64) OwnerFunc {
	var cache atomic.Pointer[blockParams]
	return func(u, _ int64, r int) int {
		p := cache.Load()
		if p == nil || p.r != r {
			p = &blockParams{r: r, per: (nC + int64(r) - 1) / int64(r)}
			cache.Store(p)
		}
		o := int(u / p.per)
		if o >= r {
			o = r - 1
		}
		return o
	}
}
